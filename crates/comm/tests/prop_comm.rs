//! Property tests for the message-passing runtime: delivery, ordering and
//! collective semantics must hold for arbitrary rank counts, tag patterns
//! and payloads.

use proptest::prelude::*;

use lbm_comm::{CostModel, Universe};

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, .. ProptestConfig::default() })]

    /// Every payload sent around a ring arrives intact, any size/pattern.
    #[test]
    fn ring_delivery_preserves_payloads(
        ranks in 2usize..6,
        len in 1usize..64,
        seed in any::<u64>(),
    ) {
        let out = Universe::run(ranks, CostModel::free(), |comm| {
            let mut state = seed ^ (comm.rank() as u64) | 1;
            let payload: Vec<f64> = (0..len).map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state % 1000) as f64
            }).collect();
            let right = (comm.rank() + 1) % comm.size();
            let left = (comm.rank() + comm.size() - 1) % comm.size();
            comm.send(right, 5, payload.clone()).unwrap();
            let got = comm.recv(left, 5).unwrap();
            // Reconstruct what the left neighbour must have sent.
            let mut lstate = seed ^ (left as u64) | 1;
            let expect: Vec<f64> = (0..len).map(|_| {
                lstate ^= lstate << 13;
                lstate ^= lstate >> 7;
                lstate ^= lstate << 17;
                (lstate % 1000) as f64
            }).collect();
            got == expect && payload.len() == len
        });
        prop_assert!(out.into_iter().all(|ok| ok));
    }

    /// FIFO per (src, dst, tag) regardless of how many messages pile up.
    #[test]
    fn per_tag_fifo_holds(
        count in 1usize..30,
        tag in any::<u64>(),
    ) {
        let ok = Universe::run(2, CostModel::free(), |comm| {
            if comm.rank() == 0 {
                for k in 0..count {
                    comm.send(1, tag, vec![k as f64]).unwrap();
                }
                true
            } else {
                (0..count).all(|k| comm.recv(0, tag).unwrap() == vec![k as f64])
            }
        });
        prop_assert!(ok[1]);
    }

    /// Interleaved tags never cross-match: each tag stream is independently
    /// FIFO even when the receiver waits in a different global order.
    #[test]
    fn interleaved_tags_do_not_cross(
        per_tag in 1usize..8,
        ntags in 2usize..5,
    ) {
        let ok = Universe::run(2, CostModel::free(), |comm| {
            if comm.rank() == 0 {
                // Interleave: m0t0, m0t1, ..., m1t0, m1t1, ...
                for m in 0..per_tag {
                    for t in 0..ntags {
                        comm.send(1, t as u64, vec![(t * 1000 + m) as f64]).unwrap();
                    }
                }
                true
            } else {
                // Drain tags in reverse order; each must still be FIFO.
                (0..ntags).rev().all(|t| {
                    (0..per_tag).all(|m| {
                        comm.recv(0, t as u64).unwrap() == vec![(t * 1000 + m) as f64]
                    })
                })
            }
        });
        prop_assert!(ok[1]);
    }

    /// allreduce results agree on every rank and equal the serial reduction.
    #[test]
    fn allreduce_matches_serial(
        ranks in 1usize..6,
        vals_seed in any::<u64>(),
        len in 1usize..8,
    ) {
        let per_rank: Vec<Vec<f64>> = (0..ranks).map(|r| {
            let mut s = vals_seed ^ r as u64 | 1;
            (0..len).map(|_| {
                s ^= s << 13; s ^= s >> 7; s ^= s << 17;
                ((s % 2000) as f64) - 1000.0
            }).collect()
        }).collect();
        let expect_sum: Vec<f64> = (0..len)
            .map(|i| per_rank.iter().map(|v| v[i]).sum())
            .collect();
        let expect_max: Vec<f64> = (0..len)
            .map(|i| per_rank.iter().map(|v| v[i]).fold(f64::NEG_INFINITY, f64::max))
            .collect();
        let pr = &per_rank;
        let out = Universe::run(ranks, CostModel::free(), move |comm| {
            let mine = &pr[comm.rank()];
            (comm.allreduce_sum(mine), comm.allreduce_max(mine))
        });
        for (s, m) in out {
            for i in 0..len {
                prop_assert!((s[i] - expect_sum[i]).abs() < 1e-9, "sum[{}]", i);
                prop_assert_eq!(m[i], expect_max[i], "max[{}]", i);
            }
        }
    }

    /// gather_all returns every rank's data in rank order on every rank.
    #[test]
    fn gather_is_rank_ordered(ranks in 1usize..6) {
        let out = Universe::run(ranks, CostModel::free(), |comm| {
            let mine = vec![comm.rank() as f64; comm.rank() + 1];
            comm.gather_all(mine)
        });
        for all in out {
            for (r, v) in all.iter().enumerate() {
                prop_assert_eq!(v.len(), r + 1);
                prop_assert!(v.iter().all(|&x| x == r as f64));
            }
        }
    }

    /// Message and byte counters are exact.
    #[test]
    fn send_counters_are_exact(msgs in 0usize..20, len in 0usize..50) {
        let out = Universe::run(2, CostModel::free(), |comm| {
            if comm.rank() == 0 {
                for k in 0..msgs {
                    comm.send(1, k as u64, vec![0.0; len]).unwrap();
                }
                (comm.timers().messages_sent, comm.timers().doubles_sent)
            } else {
                for k in 0..msgs {
                    let _ = comm.recv(0, k as u64).unwrap();
                }
                (0, 0)
            }
        });
        prop_assert_eq!(out[0], (msgs as u64, (msgs * len) as u64));
    }
}
