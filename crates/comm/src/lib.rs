//! # lbm-comm
//!
//! A thread-backed message-passing runtime standing in for MPI in the
//! IPDPS'13 LBM reproduction (see DESIGN.md §1 for the substitution
//! rationale).
//!
//! Each **rank** is an OS thread launched by [`Universe::run`]. Ranks share
//! nothing except the [`fabric`]: typed, tagged point-to-point messages with
//! *nonblocking* post/complete semantics ([`Comm::isend`] / [`Comm::irecv`] /
//! [`Comm::wait`] / [`Comm::waitall`]) plus barrier / allreduce / gather
//! collectives — the exact call surface the paper's C code uses
//! (`MPI_Irecv`, `MPI_Isend`, `MPI_Waitall`, §V-E).
//!
//! Two features make it a usable experimental substitute for a Blue Gene
//! torus rather than a toy:
//!
//! * **Link-cost injection** ([`cost::CostModel`]): message completion can be
//!   delayed by `α + bytes/β`, with a deterministic per-rank skew emulating
//!   torus placement/contention imbalance — the mechanism behind the paper's
//!   Fig. 9 min/median/max communication-time analysis and the latency the
//!   deep-halo rung (Fig. 10) trades computation against.
//! * **Per-rank communication timers** ([`timing::CommTimers`]): every
//!   blocked nanosecond in `wait`/`waitall`/`barrier` is attributed, like the
//!   paper's per-node communication-time measurements.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod comm;
pub mod cost;
pub mod error;
pub mod fabric;
pub mod timing;
pub mod universe;

pub use comm::{Comm, RecvRequest, SendRequest};
pub use cost::CostModel;
pub use error::{CommError, CommResult};
pub use timing::{CommStats, CommTimers};
pub use universe::Universe;
