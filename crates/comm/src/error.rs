//! Error type for the communication runtime.

use std::fmt;

/// Errors surfaced by the communication runtime.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommError {
    /// Rank index out of range.
    BadRank {
        /// The offending rank.
        rank: usize,
        /// Communicator size.
        size: usize,
    },
    /// A peer disconnected (its thread ended) while a receive was pending.
    Disconnected {
        /// The peer whose channel closed.
        from: usize,
    },
    /// Invalid configuration (zero ranks, non-finite bandwidth, …).
    BadConfig(String),
}

impl fmt::Display for CommError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommError::BadRank { rank, size } => {
                write!(
                    f,
                    "rank {rank} out of range for communicator of size {size}"
                )
            }
            CommError::Disconnected { from } => {
                write!(f, "peer rank {from} disconnected with receive pending")
            }
            CommError::BadConfig(m) => write!(f, "bad comm config: {m}"),
        }
    }
}

impl std::error::Error for CommError {}

/// Result alias.
pub type CommResult<T> = Result<T, CommError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = CommError::BadRank { rank: 9, size: 4 };
        assert!(e.to_string().contains("rank 9"));
        assert!(CommError::Disconnected { from: 2 }
            .to_string()
            .contains("rank 2"));
        assert!(CommError::BadConfig("x".into()).to_string().contains('x'));
    }
}
