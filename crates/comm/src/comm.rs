//! Per-rank communicator handle.

use std::collections::HashMap;
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::Receiver;

use crate::error::{CommError, CommResult};
use crate::fabric::{Fabric, Message};
use crate::timing::CommTimers;

/// Handle to a completed (buffered) send. Exists so call sites read like the
/// paper's `MPI_Isend` schedule; completion is immediate because the fabric
/// buffers eagerly.
#[derive(Debug)]
#[must_use = "isend returns a request; drop it intentionally or track it"]
pub struct SendRequest {
    _bytes: usize,
}

/// A posted receive awaiting a `(src, tag)` match.
#[derive(Debug)]
#[must_use = "a posted receive must be waited on"]
pub struct RecvRequest {
    src: usize,
    tag: u64,
}

/// One rank's endpoint into the fabric: nonblocking point-to-point plus
/// collectives, with all blocked time accounted in [`CommTimers`].
pub struct Comm {
    rank: usize,
    fabric: Arc<Fabric>,
    /// Receive endpoints, one per source rank.
    rx: Vec<Receiver<Message>>,
    /// Out-of-order messages parked until their `(src, tag)` is waited on.
    pending: HashMap<(usize, u64), VecDeque<Message>>,
    timers: CommTimers,
}

impl Comm {
    /// Create the endpoint for `rank` (called by [`crate::Universe`]).
    pub(crate) fn new(fabric: Arc<Fabric>, rank: usize) -> Self {
        let rx = fabric.take_receivers(rank);
        Self {
            rank,
            fabric,
            rx,
            pending: HashMap::new(),
            timers: CommTimers::default(),
        }
    }

    /// This rank's id.
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Communicator size.
    #[inline]
    pub fn size(&self) -> usize {
        self.fabric.size()
    }

    /// Accumulated communication timers.
    pub fn timers(&self) -> &CommTimers {
        &self.timers
    }

    /// Reset and return the timers (e.g. after warmup steps).
    pub fn take_timers(&mut self) -> CommTimers {
        std::mem::take(&mut self.timers)
    }

    /// Nonblocking tagged send of a double payload to `dst`.
    ///
    /// Buffered-eager semantics: the payload is handed to the fabric at once
    /// and the call never blocks; the *receiver* observes the link-cost
    /// model's `α + bytes/β` delay.
    pub fn isend(&mut self, dst: usize, tag: u64, data: Vec<f64>) -> CommResult<SendRequest> {
        if dst >= self.size() {
            return Err(CommError::BadRank {
                rank: dst,
                size: self.size(),
            });
        }
        let bytes = data.len() * 8;
        let delay = self.fabric.cost().delay(self.rank, bytes);
        let msg = Message {
            src: self.rank,
            tag,
            arrival: Instant::now() + delay,
            data,
        };
        self.timers.messages_sent += 1;
        self.timers.doubles_sent += (bytes / 8) as u64;
        self.fabric
            .sender(self.rank, dst)
            .send(msg)
            .map_err(|_| CommError::Disconnected { from: dst })?;
        Ok(SendRequest { _bytes: bytes })
    }

    /// Blocking send (buffered, so identical to [`Comm::isend`] in practice).
    pub fn send(&mut self, dst: usize, tag: u64, data: Vec<f64>) -> CommResult<()> {
        self.isend(dst, tag, data).map(|_| ())
    }

    /// Post a receive for `(src, tag)`.
    pub fn irecv(&self, src: usize, tag: u64) -> CommResult<RecvRequest> {
        if src >= self.size() {
            return Err(CommError::BadRank {
                rank: src,
                size: self.size(),
            });
        }
        Ok(RecvRequest { src, tag })
    }

    /// Complete one posted receive, blocking until the matching message has
    /// *arrived* (cost-model delay included). Blocked time is accounted.
    pub fn wait(&mut self, req: RecvRequest) -> CommResult<Vec<f64>> {
        let start = Instant::now();
        let msg = self.match_message(req.src, req.tag)?;
        sleep_until(msg.arrival);
        self.timers.wait += start.elapsed();
        Ok(msg.data)
    }

    /// Complete a set of receives (the paper's `MPI_Waitall`), returning
    /// payloads in request order.
    pub fn waitall(&mut self, reqs: Vec<RecvRequest>) -> CommResult<Vec<Vec<f64>>> {
        let start = Instant::now();
        // Match everything first, then realise the latest arrival — multiple
        // in-flight messages overlap like on a real NIC.
        let mut msgs = Vec::with_capacity(reqs.len());
        for r in reqs {
            msgs.push(self.match_message(r.src, r.tag)?);
        }
        if let Some(latest) = msgs.iter().map(|m| m.arrival).max() {
            sleep_until(latest);
        }
        self.timers.wait += start.elapsed();
        Ok(msgs.into_iter().map(|m| m.data).collect())
    }

    /// Blocking receive: post + wait.
    pub fn recv(&mut self, src: usize, tag: u64) -> CommResult<Vec<f64>> {
        let req = self.irecv(src, tag)?;
        self.wait(req)
    }

    fn match_message(&mut self, src: usize, tag: u64) -> CommResult<Message> {
        if let Some(dq) = self.pending.get_mut(&(src, tag)) {
            if let Some(m) = dq.pop_front() {
                return Ok(m);
            }
        }
        loop {
            let msg = self.rx[src]
                .recv()
                .map_err(|_| CommError::Disconnected { from: src })?;
            if msg.tag == tag {
                return Ok(msg);
            }
            self.pending
                .entry((src, msg.tag))
                .or_default()
                .push_back(msg);
        }
    }

    /// Synchronise all ranks; blocked time is accounted separately from
    /// point-to-point waits.
    pub fn barrier(&mut self) {
        let start = Instant::now();
        self.fabric.barrier_wait();
        self.timers.barrier += start.elapsed();
    }

    /// Element-wise sum across ranks (everyone gets the result).
    pub fn allreduce_sum(&mut self, vals: &[f64]) -> Vec<f64> {
        self.collective(vals, |a, b| a + b)
    }

    /// Element-wise max across ranks.
    pub fn allreduce_max(&mut self, vals: &[f64]) -> Vec<f64> {
        self.collective(vals, f64::max)
    }

    /// Element-wise min across ranks.
    pub fn allreduce_min(&mut self, vals: &[f64]) -> Vec<f64> {
        self.collective(vals, f64::min)
    }

    fn collective(&mut self, vals: &[f64], op: fn(f64, f64) -> f64) -> Vec<f64> {
        let start = Instant::now();
        let out = self.fabric.allreduce(vals, op);
        self.timers.collective += start.elapsed();
        out
    }

    /// Gather every rank's vector (rank-ordered) on all ranks.
    pub fn gather_all(&mut self, mine: Vec<f64>) -> Vec<Vec<f64>> {
        let start = Instant::now();
        let out = self.fabric.gather_all(self.rank, mine);
        self.timers.collective += start.elapsed();
        out
    }
}

/// Sleep until `deadline` with sub-millisecond tail spinning (coarse sleeps
/// alone overshoot by a scheduler quantum, which would distort the Fig. 9 /
/// Fig. 10 timing experiments).
fn sleep_until(deadline: Instant) {
    loop {
        let now = Instant::now();
        if now >= deadline {
            return;
        }
        let remain = deadline - now;
        if remain > Duration::from_micros(500) {
            std::thread::sleep(remain - Duration::from_micros(300));
        } else {
            std::hint::spin_loop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostModel;

    fn pair() -> (Comm, Comm) {
        let fabric = Fabric::new(2, CostModel::free());
        (Comm::new(fabric.clone(), 0), Comm::new(fabric, 1))
    }

    #[test]
    fn send_recv_same_thread_pair() {
        let (mut a, mut b) = pair();
        a.send(1, 42, vec![1.0, 2.0, 3.0]).unwrap();
        let got = b.recv(0, 42).unwrap();
        assert_eq!(got, vec![1.0, 2.0, 3.0]);
        assert_eq!(a.timers().messages_sent, 1);
        assert_eq!(a.timers().doubles_sent, 3);
    }

    #[test]
    fn tags_match_out_of_order() {
        let (mut a, mut b) = pair();
        a.send(1, 1, vec![1.0]).unwrap();
        a.send(1, 2, vec![2.0]).unwrap();
        a.send(1, 3, vec![3.0]).unwrap();
        assert_eq!(b.recv(0, 3).unwrap(), vec![3.0]);
        assert_eq!(b.recv(0, 1).unwrap(), vec![1.0]);
        assert_eq!(b.recv(0, 2).unwrap(), vec![2.0]);
    }

    #[test]
    fn same_tag_is_fifo() {
        let (mut a, mut b) = pair();
        for k in 0..5 {
            a.send(1, 9, vec![k as f64]).unwrap();
        }
        for k in 0..5 {
            assert_eq!(b.recv(0, 9).unwrap(), vec![k as f64]);
        }
    }

    #[test]
    fn waitall_returns_in_request_order() {
        let (mut a, mut b) = pair();
        a.send(1, 10, vec![10.0]).unwrap();
        a.send(1, 11, vec![11.0]).unwrap();
        let r1 = b.irecv(0, 11).unwrap();
        let r2 = b.irecv(0, 10).unwrap();
        let out = b.waitall(vec![r1, r2]).unwrap();
        assert_eq!(out, vec![vec![11.0], vec![10.0]]);
    }

    #[test]
    fn bad_rank_is_rejected() {
        let (mut a, _b) = pair();
        assert!(matches!(
            a.send(5, 0, vec![]),
            Err(CommError::BadRank { rank: 5, size: 2 })
        ));
        assert!(a.irecv(9, 0).is_err());
    }

    #[test]
    fn cost_model_delays_completion() {
        let fabric = Fabric::new(
            2,
            CostModel::uniform(Duration::from_millis(20), f64::INFINITY),
        );
        let mut a = Comm::new(fabric.clone(), 0);
        let mut b = Comm::new(fabric, 1);
        a.send(1, 0, vec![1.0]).unwrap();
        let t0 = Instant::now();
        let _ = b.recv(0, 0).unwrap();
        let waited = t0.elapsed();
        assert!(waited >= Duration::from_millis(18), "{waited:?}");
        assert!(b.timers().wait >= Duration::from_millis(18));
    }

    #[test]
    fn overlap_is_free_when_waiting_late() {
        // If the receiver does 30 ms of "work" before waiting on a 20 ms
        // message, the wait should be ~instant — the overlap property GC-C
        // exploits.
        let fabric = Fabric::new(
            2,
            CostModel::uniform(Duration::from_millis(20), f64::INFINITY),
        );
        let mut a = Comm::new(fabric.clone(), 0);
        let mut b = Comm::new(fabric, 1);
        a.send(1, 0, vec![1.0]).unwrap();
        std::thread::sleep(Duration::from_millis(30));
        let t0 = Instant::now();
        let _ = b.recv(0, 0).unwrap();
        assert!(t0.elapsed() < Duration::from_millis(5));
    }

    #[test]
    fn take_timers_resets() {
        let (mut a, mut b) = pair();
        a.send(1, 0, vec![0.0; 10]).unwrap();
        let _ = b.recv(0, 0).unwrap();
        let t = a.take_timers();
        assert_eq!(t.messages_sent, 1);
        assert_eq!(a.timers().messages_sent, 0);
    }
}
