//! Launching a set of ranks.

use std::sync::Arc;

use crate::comm::Comm;
use crate::cost::CostModel;
use crate::fabric::Fabric;

/// Launches `ranks` OS threads, each running the given closure with its own
/// [`Comm`] endpoint — the `mpirun` of this runtime.
pub struct Universe;

impl Universe {
    /// A standalone size-1 communicator for in-process incremental use
    /// (driving one rank step by step without spawning a universe of
    /// threads). Point-to-point self-sends and all collectives work; there
    /// are no peers.
    pub fn solo(cost: CostModel) -> Comm {
        Comm::new(Fabric::new(1, cost), 0)
    }

    /// Persistent endpoints for all ranks of one universe, in rank order,
    /// for callers that drive the ranks with their own threads and keep
    /// per-rank state alive *between* calls (e.g. an incremental multi-rank
    /// simulation engine that steps, checkpoints and resumes). The fabric is
    /// shared by the returned endpoints and lives as long as any of them.
    pub fn endpoints(ranks: usize, cost: CostModel) -> Vec<Comm> {
        assert!(ranks > 0, "need at least one rank");
        let fabric = Fabric::new(ranks, cost);
        (0..ranks)
            .map(|rank| Comm::new(fabric.clone(), rank))
            .collect()
    }

    /// Run `f` on `ranks` ranks over a fabric with the given cost model and
    /// return the per-rank results in rank order.
    ///
    /// # Panics
    /// Propagates any rank's panic after all threads have been joined.
    pub fn run<T, F>(ranks: usize, cost: CostModel, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(&mut Comm) -> T + Sync,
    {
        assert!(ranks > 0, "need at least one rank");
        let fabric: Arc<Fabric> = Fabric::new(ranks, cost);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..ranks)
                .map(|rank| {
                    let fabric = fabric.clone();
                    let f = &f;
                    std::thread::Builder::new()
                        .name(format!("rank-{rank}"))
                        .spawn_scoped(scope, move || {
                            let mut comm = Comm::new(fabric, rank);
                            f(&mut comm)
                        })
                        .expect("failed to spawn rank thread")
                })
                .collect();
            handles
                .into_iter()
                .enumerate()
                .map(|(rank, h)| match h.join() {
                    Ok(v) => v,
                    Err(e) => std::panic::resume_unwind(Box::new((rank, e))),
                })
                .collect()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;

    #[test]
    fn solo_comm_supports_collectives_and_self_sends() {
        let mut comm = Universe::solo(CostModel::free());
        assert_eq!(comm.rank(), 0);
        assert_eq!(comm.size(), 1);
        assert_eq!(comm.allreduce_sum(&[2.5]), vec![2.5]);
        comm.barrier();
        comm.send(0, 7, vec![1.0, 2.0]).unwrap();
        assert_eq!(comm.recv(0, 7).unwrap(), vec![1.0, 2.0]);
    }

    #[test]
    fn endpoints_share_one_fabric_and_exchange() {
        let mut comms = Universe::endpoints(2, CostModel::free());
        assert_eq!(comms.len(), 2);
        // Drive both endpoints from scoped threads, like a persistent engine.
        let out: Vec<f64> = std::thread::scope(|scope| {
            let handles: Vec<_> = comms
                .iter_mut()
                .map(|comm| {
                    scope.spawn(move || {
                        let peer = 1 - comm.rank();
                        comm.send(peer, 9, vec![comm.rank() as f64]).unwrap();
                        comm.recv(peer, 9).unwrap()[0]
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(out, vec![1.0, 0.0]);
    }

    #[test]
    fn results_come_back_in_rank_order() {
        let out = Universe::run(6, CostModel::free(), |comm| comm.rank() * 10);
        assert_eq!(out, vec![0, 10, 20, 30, 40, 50]);
    }

    #[test]
    fn ring_pass_around() {
        // Each rank sends its id right and receives from the left; after
        // `size` hops every rank has its own id back.
        let n = 5;
        let out = Universe::run(n, CostModel::free(), |comm| {
            let mut token = vec![comm.rank() as f64];
            let right = (comm.rank() + 1) % comm.size();
            let left = (comm.rank() + comm.size() - 1) % comm.size();
            for hop in 0..comm.size() {
                comm.send(right, hop as u64, token).unwrap();
                token = comm.recv(left, hop as u64).unwrap();
            }
            token[0] as usize
        });
        assert_eq!(out, (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn barrier_actually_synchronises() {
        let counter = AtomicUsize::new(0);
        Universe::run(4, CostModel::free(), |comm| {
            counter.fetch_add(1, Ordering::SeqCst);
            comm.barrier();
            // After the barrier every rank must observe all 4 increments.
            assert_eq!(counter.load(Ordering::SeqCst), 4);
            comm.barrier();
        });
    }

    #[test]
    fn allreduce_across_universe() {
        let out = Universe::run(4, CostModel::free(), |comm| {
            let s = comm.allreduce_sum(&[comm.rank() as f64, 1.0]);
            let mx = comm.allreduce_max(&[comm.rank() as f64]);
            let mn = comm.allreduce_min(&[comm.rank() as f64]);
            (s, mx, mn)
        });
        for (s, mx, mn) in out {
            assert_eq!(s, vec![6.0, 4.0]);
            assert_eq!(mx, vec![3.0]);
            assert_eq!(mn, vec![0.0]);
        }
    }

    #[test]
    fn skewed_cost_spreads_wait_times() {
        // With a steep skew ramp, the last rank's sends arrive late, so its
        // right neighbour (rank 0) waits visibly longer than rank 1 does.
        let n = 4;
        let cost = CostModel::torus_ramp(Duration::from_millis(10), f64::INFINITY, n, 6.0);
        let waits = Universe::run(n, cost, |comm| {
            let right = (comm.rank() + 1) % comm.size();
            let left = (comm.rank() + comm.size() - 1) % comm.size();
            comm.send(right, 0, vec![0.0]).unwrap();
            let _ = comm.recv(left, 0).unwrap();
            comm.timers().wait
        });
        // Rank 0 receives from rank n-1 (slowest link), rank 1 from rank 0
        // (fastest link).
        assert!(waits[0] > waits[1], "expected skewed waits, got {waits:?}");
    }

    #[test]
    #[should_panic]
    fn rank_panic_propagates() {
        let _ = Universe::run(2, CostModel::free(), |comm| {
            if comm.rank() == 1 {
                panic!("boom");
            }
            comm.rank()
        });
    }
}
