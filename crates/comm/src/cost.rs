//! Injectable link-cost model — the Blue Gene torus substitute.
//!
//! A real 3-D torus gives every message a latency floor and a bandwidth
//! ceiling, and placement/contention make some ranks' links effectively
//! slower than others (the paper's Fig. 9 shows a node spending 4.8 s in
//! communication while another spends 40 s in `MPI_Waitall`). The model here
//! delays each message's *completion* (not its posting — sends stay
//! nonblocking) by
//!
//! `delay = skew(src) · (α + payload_bytes / β)`
//!
//! with `skew` a deterministic per-rank ramp. Delays are wall-clock-realised
//! at the receiver when it waits, so overlap behaves like a real NIC: a
//! message posted early is "in flight" during the sender's subsequent
//! computation, and a receiver that waits late enough pays nothing.

use std::time::Duration;

/// Link cost parameters (per message, applied at completion time).
#[derive(Debug, Clone, PartialEq)]
pub struct CostModel {
    /// Per-message latency floor α.
    pub alpha: Duration,
    /// Link bandwidth β in bytes/second (`f64::INFINITY` for latency-only).
    pub beta_bytes_per_sec: f64,
    /// Per-rank multiplier applied to the whole delay; `skew[src]`.
    /// Empty means uniform 1.0.
    pub skew: Vec<f64>,
}

impl CostModel {
    /// No injected cost: pure thread/channel speed.
    pub fn free() -> Self {
        Self {
            alpha: Duration::ZERO,
            beta_bytes_per_sec: f64::INFINITY,
            skew: Vec::new(),
        }
    }

    /// Uniform α–β model without skew.
    pub fn uniform(alpha: Duration, beta_bytes_per_sec: f64) -> Self {
        Self {
            alpha,
            beta_bytes_per_sec,
            skew: Vec::new(),
        }
    }

    /// α–β model with a linear skew ramp: rank `r` of `n` pays
    /// `1 + (ramp − 1) · r/(n−1)` times the base delay — rank 0 is the
    /// fastest link, the last rank's link is `ramp`× slower. This is the
    /// deterministic stand-in for torus placement imbalance.
    pub fn torus_ramp(alpha: Duration, beta_bytes_per_sec: f64, ranks: usize, ramp: f64) -> Self {
        let skew = if ranks <= 1 {
            vec![1.0; ranks]
        } else {
            (0..ranks)
                .map(|r| 1.0 + (ramp - 1.0) * r as f64 / (ranks - 1) as f64)
                .collect()
        };
        Self {
            alpha,
            beta_bytes_per_sec,
            skew,
        }
    }

    /// True when the model injects nothing.
    pub fn is_free(&self) -> bool {
        self.alpha.is_zero() && self.beta_bytes_per_sec.is_infinite() && self.skew.is_empty()
    }

    /// Completion delay for a `bytes`-byte message sent by `src`.
    pub fn delay(&self, src: usize, bytes: usize) -> Duration {
        let base = self.alpha.as_secs_f64()
            + if self.beta_bytes_per_sec.is_finite() {
                bytes as f64 / self.beta_bytes_per_sec
            } else {
                0.0
            };
        let skew = self.skew.get(src).copied().unwrap_or(1.0);
        Duration::from_secs_f64(base * skew)
    }
}

impl Default for CostModel {
    fn default() -> Self {
        Self::free()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn free_model_has_zero_delay() {
        let m = CostModel::free();
        assert!(m.is_free());
        assert_eq!(m.delay(0, 1 << 20), Duration::ZERO);
    }

    #[test]
    fn uniform_model_charges_alpha_plus_size() {
        let m = CostModel::uniform(Duration::from_micros(100), 1e9);
        // 1 MB at 1 GB/s = 1 ms, plus 100 µs.
        let d = m.delay(3, 1_000_000);
        assert!((d.as_secs_f64() - 0.0011).abs() < 1e-9, "{d:?}");
    }

    #[test]
    fn ramp_spans_one_to_ramp() {
        let m = CostModel::torus_ramp(Duration::from_millis(1), f64::INFINITY, 5, 8.0);
        assert_eq!(m.skew.len(), 5);
        assert!((m.skew[0] - 1.0).abs() < 1e-12);
        assert!((m.skew[4] - 8.0).abs() < 1e-12);
        assert!(m.delay(4, 0) > m.delay(0, 0));
        // Monotone in rank.
        for r in 1..5 {
            assert!(m.delay(r, 0) >= m.delay(r - 1, 0));
        }
    }

    #[test]
    fn single_rank_ramp_does_not_divide_by_zero() {
        let m = CostModel::torus_ramp(Duration::from_millis(1), 1e9, 1, 4.0);
        assert_eq!(m.skew, vec![1.0]);
    }
}
