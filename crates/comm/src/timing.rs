//! Per-rank communication timers and cross-rank summaries.
//!
//! The paper's Fig. 9 plots, per optimization level, the time spent in
//! communication by the nodes with the minimum, median and maximum such time
//! — that is exactly what [`CommTimers`] (per rank) plus [`CommStats`]
//! (cross-rank reduction) produce.

use std::time::Duration;

/// Communication-time accounting for one rank.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CommTimers {
    /// Time blocked in `wait`/`waitall` for receives (includes simulated
    /// link delay) — the `MPI_Waitall` time of the paper.
    pub wait: Duration,
    /// Time blocked in barriers.
    pub barrier: Duration,
    /// Time blocked in collectives (allreduce/gather).
    pub collective: Duration,
    /// Point-to-point messages sent.
    pub messages_sent: u64,
    /// Payload doubles sent.
    pub doubles_sent: u64,
}

impl CommTimers {
    /// Total blocked time (the paper's "time in communication").
    pub fn total(&self) -> Duration {
        self.wait + self.barrier + self.collective
    }

    /// Payload bytes sent (8 bytes per double).
    pub fn bytes_sent(&self) -> u64 {
        self.doubles_sent * 8
    }
}

/// Min/median/max of per-rank communication times (paper Fig. 9 axes).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CommStats {
    /// Smallest per-rank total.
    pub min: Duration,
    /// Median per-rank total.
    pub median: Duration,
    /// Largest per-rank total.
    pub max: Duration,
}

impl CommStats {
    /// Reduce a set of per-rank timers.
    ///
    /// # Panics
    /// Panics on an empty slice.
    pub fn from_timers(timers: &[CommTimers]) -> Self {
        assert!(!timers.is_empty(), "no timers to summarise");
        let mut totals: Vec<Duration> = timers.iter().map(|t| t.total()).collect();
        totals.sort_unstable();
        Self {
            min: totals[0],
            median: totals[totals.len() / 2],
            max: totals[totals.len() - 1],
        }
    }

    /// Max−min spread: the imbalance the GC-C optimization collapses.
    pub fn spread(&self) -> Duration {
        self.max - self.min
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> CommTimers {
        CommTimers {
            wait: Duration::from_millis(ms),
            ..Default::default()
        }
    }

    #[test]
    fn totals_add_up() {
        let timers = CommTimers {
            wait: Duration::from_millis(5),
            barrier: Duration::from_millis(2),
            collective: Duration::from_millis(1),
            messages_sent: 3,
            doubles_sent: 100,
        };
        assert_eq!(timers.total(), Duration::from_millis(8));
        assert_eq!(timers.bytes_sent(), 800);
    }

    #[test]
    fn stats_pick_min_median_max() {
        let s = CommStats::from_timers(&[t(30), t(10), t(20), t(40), t(50)]);
        assert_eq!(s.min, Duration::from_millis(10));
        assert_eq!(s.median, Duration::from_millis(30));
        assert_eq!(s.max, Duration::from_millis(50));
        assert_eq!(s.spread(), Duration::from_millis(40));
    }

    #[test]
    #[should_panic(expected = "no timers")]
    fn stats_reject_empty() {
        let _ = CommStats::from_timers(&[]);
    }
}
