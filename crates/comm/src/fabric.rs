//! The shared fabric: per-pair message channels and monitor-based
//! collectives.
//!
//! One [`Fabric`] is shared (via `Arc`) by all ranks of a [`crate::Universe`].
//! Point-to-point transport is a dense matrix of unbounded crossbeam
//! channels, so sends never block (buffered-send semantics, like eager-mode
//! MPI). Collectives use a generation-counted monitor so they are reusable
//! without teardown.

use std::sync::Arc;
use std::time::Instant;

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::{Condvar, Mutex};

use crate::cost::CostModel;

/// A tagged point-to-point message.
#[derive(Debug)]
pub struct Message {
    /// Sender rank.
    pub src: usize,
    /// Match tag.
    pub tag: u64,
    /// Simulated arrival instant (cost model applied).
    pub arrival: Instant,
    /// Payload.
    pub data: Vec<f64>,
}

/// Shared state for one universe of `n` ranks.
pub struct Fabric {
    size: usize,
    cost: CostModel,
    /// `senders[dst][src]`: channel into dst's mailbox, one per source.
    senders: Vec<Vec<Sender<Message>>>,
    /// `receivers[dst][src]`, taken by rank dst at startup.
    receivers: Vec<Vec<Mutex<Option<Receiver<Message>>>>>,
    /// Keep-alive clones so buffered sends never observe a disconnect even
    /// after a rank has finished and dropped its endpoints (a rank posting
    /// its final exchange must not fail because its neighbour already
    /// exited — matches MPI buffered-send semantics).
    _keepalive: Vec<Receiver<Message>>,
    barrier: Monitor<()>,
    reduce: Monitor<Vec<f64>>,
    gather: Monitor<Vec<Vec<f64>>>,
}

impl Fabric {
    /// Build a fabric for `size` ranks with the given link-cost model.
    pub fn new(size: usize, cost: CostModel) -> Arc<Self> {
        assert!(size > 0, "fabric needs at least one rank");
        let mut senders: Vec<Vec<Sender<Message>>> = (0..size).map(|_| Vec::new()).collect();
        let mut receivers: Vec<Vec<Mutex<Option<Receiver<Message>>>>> =
            (0..size).map(|_| Vec::new()).collect();
        let mut keepalive = Vec::with_capacity(size * size);
        for dst in 0..size {
            for _src in 0..size {
                let (tx, rx) = unbounded();
                senders[dst].push(tx);
                keepalive.push(rx.clone());
                receivers[dst].push(Mutex::new(Some(rx)));
            }
        }
        Arc::new(Self {
            size,
            cost,
            senders,
            receivers,
            _keepalive: keepalive,
            barrier: Monitor::new(size, ()),
            reduce: Monitor::new(size, Vec::new()),
            gather: Monitor::new(size, Vec::new()),
        })
    }

    /// Communicator size.
    pub fn size(&self) -> usize {
        self.size
    }

    /// The cost model in force.
    pub fn cost(&self) -> &CostModel {
        &self.cost
    }

    /// Sender endpoint for `src → dst`.
    pub(crate) fn sender(&self, src: usize, dst: usize) -> Sender<Message> {
        self.senders[dst][src].clone()
    }

    /// Take rank `dst`'s receive endpoints (one per source); callable once.
    pub(crate) fn take_receivers(&self, dst: usize) -> Vec<Receiver<Message>> {
        self.receivers[dst]
            .iter()
            .map(|m| m.lock().take().expect("receivers already taken for rank"))
            .collect()
    }

    /// Generation-counted barrier.
    pub(crate) fn barrier_wait(&self) {
        self.barrier.phase(|_| {}, |_| ());
    }

    /// All-reduce a vector of doubles with `op` (elementwise).
    pub(crate) fn allreduce(&self, mine: &[f64], op: fn(f64, f64) -> f64) -> Vec<f64> {
        self.reduce.phase(
            |acc| {
                if acc.is_empty() {
                    *acc = mine.to_vec();
                } else {
                    assert_eq!(acc.len(), mine.len(), "allreduce length mismatch");
                    for (a, m) in acc.iter_mut().zip(mine) {
                        *a = op(*a, *m);
                    }
                }
            },
            |acc| acc.clone(),
        )
    }

    /// Gather every rank's vector, returned to all ranks in rank order.
    pub(crate) fn gather_all(&self, rank: usize, mine: Vec<f64>) -> Vec<Vec<f64>> {
        let size = self.size;
        self.gather.phase(
            move |slots| {
                if slots.len() != size {
                    slots.clear();
                    slots.resize(size, Vec::new());
                }
                slots[rank] = mine.clone();
            },
            |slots| slots.clone(),
        )
    }
}

/// A reusable monitor: all `n` participants run `deposit` on the shared
/// accumulator; the last arrival seals the phase; everyone then reads the
/// result with `collect` and the accumulator resets for the next phase.
struct Monitor<T: Default> {
    n: usize,
    state: Mutex<MonitorState<T>>,
    cv: Condvar,
}

struct MonitorState<T> {
    generation: u64,
    arrived: usize,
    acc: T,
    /// Result of the sealed generation, kept until all have collected.
    sealed: Option<(u64, usize)>,
    sealed_acc: T,
}

impl<T: Default + Clone> Monitor<T> {
    fn new(n: usize, initial: T) -> Self {
        Self {
            n,
            state: Mutex::new(MonitorState {
                generation: 0,
                arrived: 0,
                acc: initial,
                sealed: None,
                sealed_acc: T::default(),
            }),
            cv: Condvar::new(),
        }
    }

    fn phase<R>(&self, deposit: impl FnOnce(&mut T), collect: impl FnOnce(&T) -> R) -> R {
        let mut st = self.state.lock();
        // Wait until the previous generation has fully drained.
        while st.sealed.is_some() && st.arrived == 0 && st.sealed.as_ref().unwrap().1 < self.n {
            // A sealed phase still being collected and we are from the next
            // generation: wait for it to drain before depositing.
            self.cv.wait(&mut st);
        }
        let my_gen = st.generation;
        deposit(&mut st.acc);
        st.arrived += 1;
        if st.arrived == self.n {
            // Seal: move acc into sealed slot, advance generation.
            st.sealed_acc = std::mem::take(&mut st.acc);
            st.sealed = Some((my_gen, 0));
            st.arrived = 0;
            st.generation += 1;
            self.cv.notify_all();
        } else {
            while !matches!(st.sealed, Some((g, _)) if g == my_gen) {
                self.cv.wait(&mut st);
            }
        }
        let out = collect(&st.sealed_acc);
        if let Some((g, ref mut taken)) = st.sealed {
            debug_assert_eq!(g, my_gen);
            *taken += 1;
            if *taken == self.n {
                st.sealed = None;
                st.sealed_acc = T::default();
                self.cv.notify_all();
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn fabric_builds_and_hands_out_endpoints_once() {
        let f = Fabric::new(3, CostModel::free());
        assert_eq!(f.size(), 3);
        let rx = f.take_receivers(1);
        assert_eq!(rx.len(), 3);
        let tx = f.sender(0, 1);
        tx.send(Message {
            src: 0,
            tag: 7,
            arrival: Instant::now(),
            data: vec![1.0, 2.0],
        })
        .unwrap();
        let got = rx[0].recv_timeout(Duration::from_secs(1)).unwrap();
        assert_eq!(got.tag, 7);
        assert_eq!(got.data, vec![1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "already taken")]
    fn receivers_cannot_be_taken_twice() {
        let f = Fabric::new(2, CostModel::free());
        let _a = f.take_receivers(0);
        let _b = f.take_receivers(0);
    }

    #[test]
    fn monitor_reduces_across_threads() {
        let f = Fabric::new(4, CostModel::free());
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|r| {
                    let f = &f;
                    s.spawn(move || f.allreduce(&[r as f64, 1.0], |a, b| a + b))
                })
                .collect();
            for h in handles {
                let out = h.join().unwrap();
                assert_eq!(out, vec![6.0, 4.0]);
            }
        });
    }

    #[test]
    fn monitor_is_reusable_across_generations() {
        let f = Fabric::new(2, CostModel::free());
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..2)
                .map(|r| {
                    let f = &f;
                    s.spawn(move || {
                        let mut outs = Vec::new();
                        for round in 0..5 {
                            let v = f.allreduce(&[(r + round) as f64], f64::max);
                            outs.push(v[0]);
                        }
                        outs
                    })
                })
                .collect();
            for h in handles {
                assert_eq!(h.join().unwrap(), vec![1.0, 2.0, 3.0, 4.0, 5.0]);
            }
        });
    }

    #[test]
    fn gather_returns_rank_order() {
        let f = Fabric::new(3, CostModel::free());
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..3)
                .map(|r| {
                    let f = &f;
                    s.spawn(move || f.gather_all(r, vec![r as f64; r + 1]))
                })
                .collect();
            for h in handles {
                let all = h.join().unwrap();
                assert_eq!(all.len(), 3);
                assert_eq!(all[0], vec![0.0]);
                assert_eq!(all[1], vec![1.0, 1.0]);
                assert_eq!(all[2], vec![2.0, 2.0, 2.0]);
            }
        });
    }
}
