//! Property-based tests for the physical invariants of the model layer:
//! equilibrium moments, BGK fixed points, Guo forcing, boundary mass
//! conservation, and H-theorem-adjacent monotonicity.

use proptest::prelude::*;

use lbm_core::boundary::{ChannelWalls, WallKind};
use lbm_core::collision::{guo_source_i, half_force_velocity, Bgk};
use lbm_core::equilibrium::{feq, feq_i, EqOrder};
use lbm_core::field::DistField;
use lbm_core::index::Dim3;
use lbm_core::kernels::{reference, KernelCtx, MAX_Q};
use lbm_core::lattice::{Lattice, LatticeKind};
use lbm_core::moments::Moments;

fn arb_kind() -> impl Strategy<Value = LatticeKind> {
    prop_oneof![
        Just(LatticeKind::D3Q15),
        Just(LatticeKind::D3Q19),
        Just(LatticeKind::D3Q27),
        Just(LatticeKind::D3Q39),
    ]
}

fn small_u() -> impl Strategy<Value = [f64; 3]> {
    (-0.08f64..0.08, -0.08f64..0.08, -0.08f64..0.08).prop_map(|(a, b, c)| [a, b, c])
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, .. ProptestConfig::default() })]

    /// Σ f^eq = ρ and Σ f^eq c = ρu for arbitrary (ρ, u), both orders.
    #[test]
    fn equilibrium_moments_exact(
        kind in arb_kind(),
        rho in 0.2f64..3.0,
        u in small_u(),
        third in any::<bool>(),
    ) {
        let lat = Lattice::new(kind);
        let order = if third && kind == LatticeKind::D3Q39 {
            EqOrder::Third
        } else {
            EqOrder::Second
        };
        let mut f = vec![0.0; lat.q()];
        feq(&lat, order, rho, u, &mut f);
        let m = Moments::of_cell(&lat, &f);
        prop_assert!((m.rho - rho).abs() < 1e-12 * rho);
        for a in 0..3 {
            prop_assert!((m.u[a] - u[a]).abs() < 1e-12, "axis {}: {} vs {}", a, m.u[a], u[a]);
        }
    }

    /// Equilibrium is a BGK fixed point: collide(f^eq) = f^eq for any ω.
    #[test]
    fn equilibrium_is_bgk_fixed_point(
        kind in arb_kind(),
        rho in 0.5f64..2.0,
        u in small_u(),
        tau in 0.51f64..3.0,
    ) {
        let order = if kind == LatticeKind::D3Q39 { EqOrder::Third } else { EqOrder::Second };
        let ctx = KernelCtx::new(kind, order, Bgk::new(tau).unwrap());
        let lat = &ctx.lat;
        let mut f = vec![0.0; lat.q()];
        feq(lat, order, rho, u, &mut f);
        let m = Moments::of_cell(lat, &f);
        for (i, fi) in f.iter().enumerate() {
            let fe = feq_i(lat, order, i, m.rho, m.u);
            let post = fi + ctx.omega * (fe - fi);
            prop_assert!((post - fi).abs() < 1e-13, "i={}", i);
        }
    }

    /// BGK collision contracts the distance to equilibrium for ω ∈ (0, 1]
    /// (and overshoots but stays bounded for ω ∈ (1, 2)).
    #[test]
    fn bgk_contracts_toward_equilibrium(
        kind in arb_kind(),
        tau in 0.51f64..4.0,
        seed in any::<u64>(),
    ) {
        let order = if kind == LatticeKind::D3Q39 { EqOrder::Third } else { EqOrder::Second };
        let ctx = KernelCtx::new(kind, order, Bgk::new(tau).unwrap());
        let lat = &ctx.lat;
        let q = lat.q();
        let mut state = seed | 1;
        let mut f = vec![0.0; q];
        for v in &mut f {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            *v = 0.05 + (state % 100) as f64 / 150.0;
        }
        let m = Moments::of_cell(lat, &f);
        let mut feq_v = vec![0.0; q];
        feq(lat, order, m.rho, m.u, &mut feq_v);
        let dist_before: f64 = f.iter().zip(&feq_v).map(|(a, b)| (a - b).abs()).sum();
        let omega = ctx.omega;
        let post: Vec<f64> = f.iter().zip(&feq_v).map(|(a, b)| a + omega * (b - a)).collect();
        // Conserved moments unchanged ⇒ same equilibrium after collision.
        let dist_after: f64 = post.iter().zip(&feq_v).map(|(a, b)| (a - b).abs()).sum();
        let contraction = (1.0f64 - omega).abs() + 1e-12;
        prop_assert!(dist_after <= contraction * dist_before + 1e-12,
            "dist {} -> {} (factor {})", dist_before, dist_after, contraction);
    }

    /// Guo source: zero net mass, (1 − ω/2)·G net momentum, any state.
    #[test]
    fn guo_forcing_moments(
        kind in arb_kind(),
        u in small_u(),
        g in (-1e-3f64..1e-3, -1e-3f64..1e-3, -1e-3f64..1e-3).prop_map(|(a, b, c)| [a, b, c]),
        tau in 0.51f64..3.0,
    ) {
        let lat = Lattice::new(kind);
        let omega = 1.0 / tau;
        let mass: f64 = (0..lat.q()).map(|i| guo_source_i(&lat, i, u, g, omega)).sum();
        prop_assert!(mass.abs() < 1e-15);
        for a in 0..3 {
            let mom: f64 = (0..lat.q())
                .map(|i| guo_source_i(&lat, i, u, g, omega) * lat.velocities()[i][a] as f64)
                .sum();
            let want = (1.0 - 0.5 * omega) * g[a];
            prop_assert!((mom - want).abs() < 1e-14, "axis {}: {} vs {}", a, mom, want);
        }
    }

    /// half_force_velocity inverts: ρu − G/2 recovers the bare momentum.
    #[test]
    fn half_force_velocity_inverts(
        rho in 0.3f64..3.0,
        m in (-0.2f64..0.2, -0.2f64..0.2, -0.2f64..0.2).prop_map(|(a, b, c)| [a, b, c]),
        g in (-1e-2f64..1e-2, -1e-2f64..1e-2, -1e-2f64..1e-2).prop_map(|(a, b, c)| [a, b, c]),
    ) {
        let u = half_force_velocity(m, rho, g);
        for a in 0..3 {
            let back = u[a] * rho - 0.5 * g[a];
            prop_assert!((back - m[a]).abs() < 1e-12);
        }
    }

    /// Walls conserve total mass for any wall kind and field.
    #[test]
    fn walls_conserve_mass(
        kind in arb_kind(),
        which in 0usize..3,
        seed in any::<u64>(),
    ) {
        let order = if kind == LatticeKind::D3Q39 { EqOrder::Third } else { EqOrder::Second };
        let ctx = KernelCtx::new(kind, order, Bgk::new(1.0).unwrap());
        let k = ctx.lat.reach();
        let dims = Dim3::new(3, 4 + 2 * k, 4);
        let mut f = DistField::new(ctx.lat.q(), dims, 0).unwrap();
        let mut state = seed | 1;
        for v in f.as_mut_slice() {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            *v = 0.02 + (state % 512) as f64 / 600.0;
        }
        let wall = match which {
            0 => WallKind::BounceBack,
            1 => WallKind::Moving { u: [0.03, 0.0, 0.0], rho: 1.0 },
            _ => WallKind::Diffuse { u: [0.0; 3] },
        };
        let walls = ChannelWalls { low: wall, high: wall, layers: k };
        let before: f64 = f.as_slice().iter().sum();
        walls.apply(&ctx, &mut f, 0, dims.nx);
        let after: f64 = f.as_slice().iter().sum();
        // Moving walls inject momentum but not mass (the ±c pairs cancel).
        prop_assert!((before - after).abs() < 1e-10 * before.abs(),
            "{:?} wall {:?}: {} -> {}", kind, wall, before, after);
    }

    /// A full reference step conserves mass and momentum exactly
    /// (periodic box, no force).
    #[test]
    fn reference_step_conserves_invariants(
        kind in arb_kind(),
        n in 4usize..7,
        tau in 0.6f64..2.0,
        seed in any::<u64>(),
    ) {
        let order = if kind == LatticeKind::D3Q39 { EqOrder::Third } else { EqOrder::Second };
        let ctx = KernelCtx::new(kind, order, Bgk::new(tau).unwrap());
        let dims = Dim3::cube(n);
        let mut f = DistField::new(ctx.lat.q(), dims, 0).unwrap();
        let mut state = seed | 1;
        for v in f.as_mut_slice() {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            *v = 0.03 + (state % 256) as f64 / 400.0;
        }
        let q = ctx.lat.q();
        let mut cell = [0.0f64; MAX_Q];
        let mut mass0 = 0.0;
        let mut mom0 = [0.0f64; 3];
        for lin in 0..dims.len() {
            f.gather_cell(lin, &mut cell[..q]);
            let m = Moments::of_cell(&ctx.lat, &cell[..q]);
            mass0 += m.rho;
            for a in 0..3 { mom0[a] += m.rho * m.u[a]; }
        }
        let mut tmp = DistField::new(q, dims, 0).unwrap();
        reference::step_periodic(&ctx, &mut f, &mut tmp);
        let mut mass1 = 0.0;
        let mut mom1 = [0.0f64; 3];
        for lin in 0..dims.len() {
            f.gather_cell(lin, &mut cell[..q]);
            let m = Moments::of_cell(&ctx.lat, &cell[..q]);
            mass1 += m.rho;
            for a in 0..3 { mom1[a] += m.rho * m.u[a]; }
        }
        prop_assert!((mass0 - mass1).abs() < 1e-9 * mass0);
        for a in 0..3 {
            prop_assert!((mom0[a] - mom1[a]).abs() < 1e-9 * mass0, "axis {}", a);
        }
    }
}
