//! Property-based tests for the kernel ladder: every optimization rung must
//! compute the same stream permutation and the same BGK update as the naive
//! oracle, for arbitrary fields, shapes and x-range splits.

use proptest::prelude::*;

use lbm_core::boundary::{BoundarySpec, ChannelWalls, SectionMask, WallKind};
use lbm_core::collision::Bgk;
use lbm_core::equilibrium::EqOrder;
use lbm_core::field::DistField;
use lbm_core::index::Dim3;
use lbm_core::kernels::{self, KernelCtx, OptLevel, StreamTables};
use lbm_core::lattice::LatticeKind;

fn ctx_for(kind: LatticeKind, tau: f64) -> KernelCtx {
    let order = if kind == LatticeKind::D3Q39 {
        EqOrder::Third
    } else {
        EqOrder::Second
    };
    KernelCtx::new(kind, order, Bgk::new(tau).unwrap())
}

/// Deterministic pseudo-random positive field from a seed.
fn seeded_field(q: usize, dims: Dim3, halo: usize, seed: u64) -> DistField {
    let mut f = DistField::new(q, dims, halo).unwrap();
    let mut state = seed | 1;
    for v in f.as_mut_slice() {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        *v = 0.01 + (state % 2048) as f64 / 2500.0;
    }
    f
}

fn arb_kind() -> impl Strategy<Value = LatticeKind> {
    prop_oneof![
        Just(LatticeKind::D3Q15),
        Just(LatticeKind::D3Q19),
        Just(LatticeKind::D3Q27),
        Just(LatticeKind::D3Q39),
    ]
}

fn arb_order() -> impl Strategy<Value = EqOrder> {
    prop_oneof![Just(EqOrder::Second), Just(EqOrder::Third)]
}

fn arb_wall() -> impl Strategy<Value = WallKind> {
    prop_oneof![
        Just(WallKind::BounceBack),
        Just(WallKind::Moving {
            u: [0.04, 0.0, -0.02],
            rho: 1.0
        }),
        Just(WallKind::Diffuse { u: [0.0; 3] }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, .. ProptestConfig::default() })]

    /// All stream variants produce bitwise-identical owned regions.
    #[test]
    fn stream_variants_agree_bitwise(
        kind in arb_kind(),
        nx in 1usize..6,
        ny in 7usize..12,
        nz in 7usize..12,
        seed in any::<u64>(),
    ) {
        let ctx = ctx_for(kind, 0.9);
        let k = ctx.lat.reach();
        let dims = Dim3::new(nx, ny, nz);
        let src = seeded_field(ctx.lat.q(), dims, k, seed);
        let tables = StreamTables::new(ny, nz);
        let mut base: Option<DistField> = None;
        for level in [OptLevel::Gc, OptLevel::Dh, OptLevel::Cf, OptLevel::LoBr, OptLevel::Simd] {
            let mut out = DistField::new(ctx.lat.q(), dims, k).unwrap();
            kernels::stream(level, &ctx, &tables, &src, &mut out, k, k + nx);
            match &base {
                None => base = Some(out),
                Some(b) => prop_assert_eq!(
                    b.max_abs_diff_owned(&out), 0.0,
                    "{:?} level {:?}", kind, level
                ),
            }
        }
    }

    /// All collide variants agree with the naive oracle within
    /// reassociation/FMA tolerance, and conserve mass and momentum.
    #[test]
    fn collide_variants_agree_and_conserve(
        kind in arb_kind(),
        nx in 1usize..5,
        ny in 2usize..6,
        nz in 2usize..70,
        tau in 0.55f64..2.0,
        seed in any::<u64>(),
    ) {
        let ctx = ctx_for(kind, tau);
        let dims = Dim3::new(nx, ny, nz);
        let orig = seeded_field(ctx.lat.q(), dims, 0, seed);

        let mut oracle = orig.clone();
        kernels::collide(OptLevel::Orig, &ctx, &mut oracle, 0, nx);

        // Mass / momentum conservation of the oracle itself.
        let pre_mass = orig.owned_mass();
        let post_mass = oracle.owned_mass();
        prop_assert!((pre_mass - post_mass).abs() < 1e-9 * pre_mass.abs());

        for level in [OptLevel::Dh, OptLevel::Cf, OptLevel::LoBr, OptLevel::Simd] {
            let mut out = orig.clone();
            kernels::collide(level, &ctx, &mut out, 0, nx);
            let diff = oracle.max_abs_diff_owned(&out);
            prop_assert!(diff < 1e-12, "{:?} level {:?}: diff={}", kind, level, diff);
        }
    }

    /// Collide over [0,nx) equals collide over any split [0,s) ∪ [s,nx) —
    /// the invariant the deep-halo region schedule depends on.
    #[test]
    fn collide_is_split_invariant(
        kind in arb_kind(),
        nx in 2usize..7,
        split in 1usize..6,
        nz in 3usize..40,
        seed in any::<u64>(),
    ) {
        let split = split.min(nx - 1);
        let ctx = ctx_for(kind, 0.8);
        let dims = Dim3::new(nx, 4, nz);
        let orig = seeded_field(ctx.lat.q(), dims, 0, seed);
        for level in [OptLevel::Orig, OptLevel::Dh, OptLevel::LoBr, OptLevel::Simd] {
            let mut whole = orig.clone();
            kernels::collide(level, &ctx, &mut whole, 0, nx);
            let mut parts = orig.clone();
            kernels::collide(level, &ctx, &mut parts, 0, split);
            kernels::collide(level, &ctx, &mut parts, split, nx);
            prop_assert_eq!(whole.max_abs_diff_owned(&parts), 0.0, "{:?} {:?}", kind, level);
        }
    }

    /// The fused single-pass kernels (scalar, SIMD, rayon-parallel) agree
    /// with the split stream-then-collide reference within FP-reassociation
    /// tolerance, across all four lattices and both equilibrium orders.
    #[test]
    fn fused_variants_match_split_reference(
        kind in arb_kind(),
        order in arb_order(),
        nx in 1usize..5,
        ny in 7usize..11,
        nz in 7usize..40,
        tau in 0.55f64..2.0,
        seed in any::<u64>(),
    ) {
        let ctx = KernelCtx::new(kind, order, lbm_core::collision::Bgk::new(tau).unwrap());
        let k = ctx.lat.reach();
        let dims = Dim3::new(nx, ny, nz);
        let src = seeded_field(ctx.lat.q(), dims, k, seed);
        let tables = StreamTables::new(ny, nz);

        // Split reference: DH stream followed by DH collide.
        let mut split = DistField::new(ctx.lat.q(), dims, k).unwrap();
        kernels::stream(OptLevel::Dh, &ctx, &tables, &src, &mut split, k, k + nx);
        kernels::collide(OptLevel::Dh, &ctx, &mut split, k, k + nx);

        // Scalar fused is reassociation-identical to the split pair.
        let mut scalar = DistField::new(ctx.lat.q(), dims, k).unwrap();
        kernels::fused::stream_collide(&ctx, &tables, &src, &mut scalar, k, k + nx);
        prop_assert_eq!(
            split.max_abs_diff_owned(&scalar), 0.0,
            "{:?}/{:?} scalar fused", kind, order
        );

        // SIMD fused differs only by FMA re-rounding.
        let mut vec = DistField::new(ctx.lat.q(), dims, k).unwrap();
        kernels::stream_collide(OptLevel::Fused, &ctx, &tables, &src, &mut vec, k, k + nx);
        let diff = split.max_abs_diff_owned(&vec);
        prop_assert!(diff < 1e-12, "{:?}/{:?} simd fused: diff={}", kind, order, diff);

        // The parallel driver is bitwise-identical to its serial kernel.
        let mut par = DistField::new(ctx.lat.q(), dims, k).unwrap();
        kernels::par::stream_collide_par(&ctx, &tables, &src, &mut par, k, k + nx);
        prop_assert_eq!(
            vec.max_abs_diff_owned(&par), 0.0,
            "{:?}/{:?} parallel fused", kind, order
        );
    }

    /// Fused over [lo,hi) equals fused over any split of the range — the
    /// invariant the distributed overlap schedule (borders first, interior
    /// later) depends on.
    #[test]
    fn fused_is_x_split_invariant(
        kind in arb_kind(),
        nx in 2usize..7,
        split in 1usize..6,
        nz in 7usize..40,
        seed in any::<u64>(),
    ) {
        let split = split.min(nx - 1);
        let ctx = ctx_for(kind, 0.8);
        let k = ctx.lat.reach();
        let dims = Dim3::new(nx, 8, nz);
        let src = seeded_field(ctx.lat.q(), dims, k, seed);
        let tables = StreamTables::new(8, nz);
        let mut whole = DistField::new(ctx.lat.q(), dims, k).unwrap();
        kernels::stream_collide(OptLevel::Fused, &ctx, &tables, &src, &mut whole, k, k + nx);
        let mut parts = DistField::new(ctx.lat.q(), dims, k).unwrap();
        kernels::stream_collide(OptLevel::Fused, &ctx, &tables, &src, &mut parts, k, k + split);
        kernels::stream_collide(
            OptLevel::Fused, &ctx, &tables, &src, &mut parts, k + split, k + nx,
        );
        prop_assert_eq!(whole.max_abs_diff_owned(&parts), 0.0, "{:?}", kind);
    }

    /// The forced/walled scenario kernels — scalar cell-operator body, AVX2
    /// split collide, scalar fused single pass, SIMD fused single pass, and
    /// both rayon drivers — agree with the split scenario reference
    /// (stream → boundary apply → scalar forced collide) across all four
    /// lattices, both equilibrium orders, every wall kind and an optional
    /// mask: bitwise for the scalar paths and serial≡rayon, within FMA
    /// re-rounding for the vectorized ones.
    #[test]
    fn forced_variants_match_split_scenario_reference(
        kind in arb_kind(),
        order in arb_order(),
        low in arb_wall(),
        high in arb_wall(),
        masked in any::<bool>(),
        nx in 1usize..5,
        ny_extra in 1usize..5,
        nz in 8usize..24,
        gx in -1e-4f64..1e-4,
        gz in -1e-4f64..1e-4,
        tau in 0.55f64..2.0,
        seed in any::<u64>(),
    ) {
        let ctx = KernelCtx::new(kind, order, Bgk::new(tau).unwrap());
        let k = ctx.lat.reach();
        let ny = 2 * k + 1 + ny_extra;
        let dims = Dim3::new(nx, ny, nz);
        let mut bounds = BoundarySpec::periodic().with_walls(ChannelWalls { low, high, layers: k });
        if masked {
            // A thick solid z-slab carved out of the fluid rows.
            bounds = bounds.with_mask(SectionMask::from_fn(ny, nz, |_y, z| z >= nz - 4));
        }
        let g = [gx, 0.0, gz];
        let src = seeded_field(ctx.lat.q(), dims, k, seed);
        let tables = StreamTables::new(ny, nz);

        // Split scenario reference: rung stream, boundary transform, scalar
        // forced collide (the Orig…LoBr scenario pipeline).
        let mut split = DistField::new(ctx.lat.q(), dims, k).unwrap();
        kernels::stream(OptLevel::Dh, &ctx, &tables, &src, &mut split, k, k + nx);
        bounds.apply(&ctx, &mut split, k, k + nx);
        kernels::forced::collide_forced(&ctx, &mut split, k, k + nx, g, &bounds);

        // Scalar fused scenario pass is bitwise the split pipeline.
        let mut fused_scalar = DistField::new(ctx.lat.q(), dims, k).unwrap();
        kernels::fused::stream_collide_cells(
            &ctx, &tables, &src, &mut fused_scalar, k, k + nx,
            kernels::GuoForced { g }, &bounds,
        );
        prop_assert_eq!(
            split.max_abs_diff_owned(&fused_scalar), 0.0,
            "{:?}/{:?} scalar fused scenario", kind, order
        );

        // SIMD fused scenario differs only by FMA re-rounding.
        let mut fused_vec = DistField::new(ctx.lat.q(), dims, k).unwrap();
        kernels::stream_collide_scenario(
            &ctx, &tables, &src, &mut fused_vec, k, k + nx, g, &bounds,
        );
        let diff = split.max_abs_diff_owned(&fused_vec);
        prop_assert!(diff < 1e-12, "{:?}/{:?} simd fused scenario: diff={}", kind, order, diff);

        // SIMD split collide (the Simd rung's scenario path) likewise.
        let mut simd_split = DistField::new(ctx.lat.q(), dims, k).unwrap();
        kernels::stream(OptLevel::Simd, &ctx, &tables, &src, &mut simd_split, k, k + nx);
        bounds.apply(&ctx, &mut simd_split, k, k + nx);
        kernels::collide_scenario(OptLevel::Simd, &ctx, &mut simd_split, k, k + nx, g, &bounds);
        let diff = split.max_abs_diff_owned(&simd_split);
        prop_assert!(diff < 1e-12, "{:?}/{:?} simd split scenario: diff={}", kind, order, diff);

        // The rayon drivers are bitwise identical to their serial kernels,
        // at both kernel classes and for the fused scenario pass.
        let mut par_scalar = DistField::new(ctx.lat.q(), dims, k).unwrap();
        kernels::stream(OptLevel::Dh, &ctx, &tables, &src, &mut par_scalar, k, k + nx);
        bounds.apply(&ctx, &mut par_scalar, k, k + nx);
        kernels::forced::collide_forced_par(&ctx, &mut par_scalar, k, k + nx, g, &bounds);
        prop_assert_eq!(
            split.max_abs_diff_owned(&par_scalar), 0.0,
            "{:?}/{:?} rayon scalar scenario", kind, order
        );

        let mut par_simd = DistField::new(ctx.lat.q(), dims, k).unwrap();
        kernels::stream(OptLevel::Simd, &ctx, &tables, &src, &mut par_simd, k, k + nx);
        bounds.apply(&ctx, &mut par_simd, k, k + nx);
        kernels::collide_scenario_par(OptLevel::Simd, &ctx, &mut par_simd, k, k + nx, g, &bounds);
        prop_assert_eq!(
            simd_split.max_abs_diff_owned(&par_simd), 0.0,
            "{:?}/{:?} rayon simd scenario", kind, order
        );

        let mut par_fused = DistField::new(ctx.lat.q(), dims, k).unwrap();
        kernels::stream_collide_scenario_par(
            &ctx, &tables, &src, &mut par_fused, k, k + nx, g, &bounds,
        );
        prop_assert_eq!(
            fused_vec.max_abs_diff_owned(&par_fused), 0.0,
            "{:?}/{:?} rayon fused scenario", kind, order
        );
    }

    /// Scenario fused over [lo,hi) equals scenario fused over any split of
    /// the range — the invariant the distributed border-first overlap
    /// schedule depends on for walled/forced flows.
    #[test]
    fn forced_fused_is_x_split_invariant(
        kind in arb_kind(),
        nx in 2usize..7,
        split in 1usize..6,
        nz in 8usize..24,
        seed in any::<u64>(),
    ) {
        let split = split.min(nx - 1);
        let ctx = ctx_for(kind, 0.8);
        let k = ctx.lat.reach();
        let ny = 2 * k + 4;
        let dims = Dim3::new(nx, ny, nz);
        let bounds = BoundarySpec::periodic().with_walls(ChannelWalls::no_slip(k));
        let g = [2e-5, 0.0, -1e-5];
        let src = seeded_field(ctx.lat.q(), dims, k, seed);
        let tables = StreamTables::new(ny, nz);
        let mut whole = DistField::new(ctx.lat.q(), dims, k).unwrap();
        kernels::stream_collide_scenario(&ctx, &tables, &src, &mut whole, k, k + nx, g, &bounds);
        let mut parts = DistField::new(ctx.lat.q(), dims, k).unwrap();
        kernels::stream_collide_scenario(&ctx, &tables, &src, &mut parts, k, k + split, g, &bounds);
        kernels::stream_collide_scenario(
            &ctx, &tables, &src, &mut parts, k + split, k + nx, g, &bounds,
        );
        prop_assert_eq!(whole.max_abs_diff_owned(&parts), 0.0, "{:?}", kind);
    }

    /// Streaming then streaming with every velocity reversed is the identity
    /// (pull with c then pull with −c undoes the permutation).
    #[test]
    fn stream_roundtrip_via_opposites(
        kind in arb_kind(),
        n in 7usize..10,
        seed in any::<u64>(),
    ) {
        let ctx = ctx_for(kind, 0.9);
        let dims = Dim3::cube(n);
        let f0 = seeded_field(ctx.lat.q(), dims, 0, seed);
        // Forward stream via the reference push (periodic, halo-free)…
        let mut fwd = DistField::new(ctx.lat.q(), dims, 0).unwrap();
        lbm_core::kernels::reference::stream_push_periodic(&ctx, &f0, &mut fwd);
        // …then push each population along the *opposite* velocity by
        // copying slab i into slab opp(i), streaming, and swapping back.
        let mut swapped = DistField::new(ctx.lat.q(), dims, 0).unwrap();
        for i in 0..ctx.lat.q() {
            let o = ctx.lat.opposite(i);
            let src = fwd.slab(i).to_vec();
            swapped.slab_mut(o).copy_from_slice(&src);
        }
        let mut back = DistField::new(ctx.lat.q(), dims, 0).unwrap();
        lbm_core::kernels::reference::stream_push_periodic(&ctx, &swapped, &mut back);
        for i in 0..ctx.lat.q() {
            let o = ctx.lat.opposite(i);
            prop_assert_eq!(back.slab(o), f0.slab(i), "{:?} slab {}", kind, i);
        }
    }

    /// Mass is exactly conserved by streaming for every variant (it is a
    /// permutation of each slab).
    #[test]
    fn stream_conserves_slab_multisets(
        kind in arb_kind(),
        nx in 1usize..4,
        seed in any::<u64>(),
    ) {
        let ctx = ctx_for(kind, 1.2);
        let k = ctx.lat.reach();
        let dims = Dim3::new(nx, 8, 9);
        let src = seeded_field(ctx.lat.q(), dims, k, seed);
        let tables = StreamTables::new(8, 9);
        let mut out = DistField::new(ctx.lat.q(), dims, k).unwrap();
        kernels::stream(OptLevel::LoBr, &ctx, &tables, &src, &mut out, k, k + nx);
        // Owned mass of dst equals the mass of the source region it pulled
        // from only in the aggregate-periodic case; here we check the weaker
        // but exact property that every output value exists in the source.
        for i in 0..ctx.lat.q() {
            let s = src.slab(i);
            let d = out.slab(i);
            let dims_a = out.alloc_dims();
            for x in out.owned_x() {
                for yz in 0..dims_a.plane() {
                    let v = d[dims_a.idx(x, 0, 0) + yz];
                    prop_assert!(s.contains(&v), "{:?}: value {} not from source", kind, v);
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// AA-pattern storage: the in-place even/odd pair must be the exact
// (slot-swapped / streamed) image of the two-grid pipeline for arbitrary
// fields, lattices, wall kinds, masks and forces — the kernel-level half of
// the `aa ≡ two_grid` parity contract (the multi-step distributed half
// lives in `tests/aa_storage.rs`).
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, .. ProptestConfig::default() })]

    /// The AA even step is the slot-swapped image of the two-grid cell rule
    /// (fluid collide + boundary transform): bitwise for the scalar tile,
    /// within FMA re-rounding for the AVX2 tile, and the rayon driver is
    /// bitwise its serial kernel.
    #[test]
    fn aa_even_step_is_the_swapped_two_grid_cell_rule(
        kind in arb_kind(),
        order in arb_order(),
        low in arb_wall(),
        high in arb_wall(),
        masked in any::<bool>(),
        nx in 1usize..5,
        ny_extra in 1usize..5,
        nz in 8usize..24,
        gx in -1e-4f64..1e-4,
        gz in -1e-4f64..1e-4,
        tau in 0.55f64..2.0,
        seed in any::<u64>(),
    ) {
        let ctx = KernelCtx::new(kind, order, Bgk::new(tau).unwrap());
        let k = ctx.lat.reach();
        let ny = 2 * k + 1 + ny_extra;
        let dims = Dim3::new(nx, ny, nz);
        let mut bounds = BoundarySpec::periodic().with_walls(ChannelWalls { low, high, layers: k });
        if masked {
            bounds = bounds.with_mask(SectionMask::from_fn(ny, nz, |_y, z| z >= nz - 4));
        }
        let g = [gx, 0.0, gz];
        let a0 = seeded_field(ctx.lat.q(), dims, 0, seed);

        // Two-grid cell rule on the same arrivals: collide the fluid cells,
        // then boundary-transform the solid ones (disjoint regions).
        let mut reference = a0.clone();
        kernels::collide_scenario(OptLevel::LoBr, &ctx, &mut reference, 0, nx, g, &bounds);
        bounds.apply(&ctx, &mut reference, 0, nx);

        // Scalar even step: expected value of slot m is reference[opp(m)].
        let mut aa_scalar = a0.clone();
        kernels::aa_even_scenario(OptLevel::LoBr, &ctx, &mut aa_scalar, 0, nx, g, &bounds);
        let da = aa_scalar.alloc_dims();
        for m in 0..ctx.lat.q() {
            let o = ctx.lat.opposite(m);
            for lin in 0..da.len() {
                prop_assert_eq!(
                    aa_scalar.slab(m)[lin], reference.slab(o)[lin],
                    "{:?}/{:?} slot {} lin {}", kind, order, m, lin
                );
            }
        }

        // AVX2 even step within FMA re-rounding of the scalar one.
        let mut aa_vec = a0.clone();
        kernels::aa_even_scenario(OptLevel::Fused, &ctx, &mut aa_vec, 0, nx, g, &bounds);
        let diff = aa_scalar.max_abs_diff_owned(&aa_vec);
        prop_assert!(diff < 1e-12, "{:?}/{:?} avx2 even: {}", kind, order, diff);

        // Rayon drivers bitwise-identical to serial, both classes.
        let mut aa_par = a0.clone();
        kernels::aa_even_scenario_par(OptLevel::LoBr, &ctx, &mut aa_par, 0, nx, g, &bounds);
        prop_assert_eq!(aa_scalar.max_abs_diff_owned(&aa_par), 0.0);
        let mut aa_par_vec = a0.clone();
        kernels::aa_even_scenario_par(OptLevel::Fused, &ctx, &mut aa_par_vec, 0, nx, g, &bounds);
        prop_assert_eq!(aa_vec.max_abs_diff_owned(&aa_par_vec), 0.0);
    }

    /// The AA odd step is the pull-stream of the boundary-aware fused pass
    /// applied to the unswapped field: bitwise for the scalar tile, within
    /// FMA re-rounding for the AVX2 tile, rayon bitwise serial.
    #[test]
    fn aa_odd_step_is_the_streamed_two_grid_pass(
        kind in arb_kind(),
        order in arb_order(),
        low in arb_wall(),
        high in arb_wall(),
        masked in any::<bool>(),
        nx in 1usize..5,
        ny_extra in 1usize..5,
        nz in 8usize..24,
        gx in -1e-4f64..1e-4,
        gz in -1e-4f64..1e-4,
        tau in 0.55f64..2.0,
        seed in any::<u64>(),
    ) {
        let ctx = KernelCtx::new(kind, order, Bgk::new(tau).unwrap());
        let k = ctx.lat.reach();
        let ny = 2 * k + 1 + ny_extra;
        let dims = Dim3::new(nx, ny, nz);
        let mut bounds = BoundarySpec::periodic().with_walls(ChannelWalls { low, high, layers: k });
        if masked {
            bounds = bounds.with_mask(SectionMask::from_fn(ny, nz, |_y, z| z >= nz - 4));
        }
        let g = [gx, 0.0, gz];
        let tables = StreamTables::new(ny, nz);
        // Post-even AA state: swapped storage with 2k halo planes so the
        // odd writers [k, alloc−k) have gather margin.
        let b = seeded_field(ctx.lat.q(), dims, 2 * k, seed);
        let alloc_nx = b.alloc_dims().nx;

        // Unswap to the natural two-grid representation.
        let mut n = b.clone();
        for i in 0..ctx.lat.q() {
            let o = ctx.lat.opposite(i);
            n.slab_mut(i).copy_from_slice(b.slab(o));
        }

        // Two-grid: fused scenario pass, then a pure pull-stream.
        let mut fused_out = DistField::new(ctx.lat.q(), dims, 2 * k).unwrap();
        kernels::fused::stream_collide_cells(
            &ctx, &tables, &n, &mut fused_out, k, alloc_nx - k,
            kernels::GuoForced { g }, &bounds,
        );
        let mut expect = DistField::new(ctx.lat.q(), dims, 2 * k).unwrap();
        kernels::stream(OptLevel::Dh, &ctx, &tables, &fused_out, &mut expect, 2 * k, alloc_nx - 2 * k);

        // AA odd step in place.
        let mut aa_scalar = b.clone();
        kernels::aa_odd_scenario(
            OptLevel::LoBr, &ctx, &tables, &mut aa_scalar, k, alloc_nx - k, g, &bounds,
        );
        // Central planes [2k, alloc−2k) are complete — compare those.
        let d = aa_scalar.alloc_dims();
        for i in 0..ctx.lat.q() {
            for x in 2 * k..alloc_nx - 2 * k {
                let base = d.idx(x, 0, 0);
                for p in 0..d.plane() {
                    prop_assert_eq!(
                        aa_scalar.slab(i)[base + p], expect.slab(i)[base + p],
                        "{:?}/{:?} slab {} x {} p {}", kind, order, i, x, p
                    );
                }
            }
        }

        // AVX2 odd step within FMA re-rounding.
        let mut aa_vec = b.clone();
        kernels::aa_odd_scenario(
            OptLevel::Fused, &ctx, &tables, &mut aa_vec, k, alloc_nx - k, g, &bounds,
        );
        let diff = aa_scalar.max_abs_diff_owned(&aa_vec);
        prop_assert!(diff < 1e-12, "{:?}/{:?} avx2 odd: {}", kind, order, diff);

        // Rayon drivers bitwise-identical to serial.
        let mut aa_par = b.clone();
        kernels::aa_odd_scenario_par(
            OptLevel::LoBr, &ctx, &tables, &mut aa_par, k, alloc_nx - k, g, &bounds,
        );
        prop_assert_eq!(aa_scalar.max_abs_diff_owned(&aa_par), 0.0);
        let mut aa_par_vec = b.clone();
        kernels::aa_odd_scenario_par(
            OptLevel::Fused, &ctx, &tables, &mut aa_par_vec, k, alloc_nx - k, g, &bounds,
        );
        prop_assert_eq!(aa_vec.max_abs_diff_owned(&aa_par_vec), 0.0);
    }
}

// ---------------------------------------------------------------------------
// AA tuning knobs and the periodic x-wrap are scheduling-only: every tune
// combination must be bitwise-identical to its reference configuration, and
// the wrap sweep bitwise-identical to the margin sweep over periodically
// filled ghosts — for arbitrary lattices, wall kinds, masks, forces, fields.
// ---------------------------------------------------------------------------

use lbm_core::kernels::aa::{self, AaTune};
use lbm_core::kernels::GuoForced;

/// First allocation index (if any) where two fields differ in bits — the
/// whole-allocation bitwise oracle (halo slots included, unlike
/// `max_abs_diff_owned`).
fn first_bit_mismatch(a: &DistField, b: &DistField) -> Option<usize> {
    a.as_slice()
        .iter()
        .zip(b.as_slice())
        .position(|(x, y)| x.to_bits() != y.to_bits())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, .. ProptestConfig::default() })]

    /// Non-temporal stores never change a bit anywhere in the allocation:
    /// for both kernel classes, the even step, the margin odd step and the
    /// periodic odd step produce identical fields with `nt` on and off.
    #[test]
    fn aa_nt_stores_change_no_bits(
        kind in arb_kind(),
        order in arb_order(),
        low in arb_wall(),
        high in arb_wall(),
        masked in any::<bool>(),
        simd in any::<bool>(),
        nx in 1usize..5,
        ny_extra in 1usize..5,
        nz in 8usize..24,
        gx in -1e-4f64..1e-4,
        tau in 0.55f64..2.0,
        seed in any::<u64>(),
    ) {
        let ctx = KernelCtx::new(kind, order, Bgk::new(tau).unwrap());
        let k = ctx.lat.reach();
        let ny = 2 * k + 1 + ny_extra;
        let dims = Dim3::new(nx, ny, nz);
        let mut bounds = BoundarySpec::periodic().with_walls(ChannelWalls { low, high, layers: k });
        if masked {
            bounds = bounds.with_mask(SectionMask::from_fn(ny, nz, |_y, z| z >= nz - 4));
        }
        let op = GuoForced { g: [gx, 0.0, -0.5 * gx] };
        let tables = StreamTables::new(ny, nz);
        let plain = AaTune { simd, nt: false };
        let nt = AaTune { simd, nt: true };

        // Even step (halo-free field, all planes are writers).
        let e0 = seeded_field(ctx.lat.q(), dims, 0, seed);
        let mut a = e0.clone();
        aa::even_cells(&ctx, &mut a, 0, nx, op, &bounds, plain);
        let mut b = e0.clone();
        aa::even_cells(&ctx, &mut b, 0, nx, op, &bounds, nt);
        prop_assert_eq!(
            first_bit_mismatch(&a, &b), None,
            "{:?}/{:?} even simd={}", kind, order, simd
        );

        // Margin odd step (2k halo, writers extended k planes into it).
        let b0 = seeded_field(ctx.lat.q(), dims, 2 * k, seed ^ 0x9e3779b97f4a7c15);
        let alloc_nx = b0.alloc_dims().nx;
        let mut a = b0.clone();
        aa::odd_cells(&ctx, &tables, &mut a, k, alloc_nx - k, op, &bounds, plain);
        let mut b = b0.clone();
        aa::odd_cells(&ctx, &tables, &mut b, k, alloc_nx - k, op, &bounds, nt);
        prop_assert_eq!(
            first_bit_mismatch(&a, &b), None,
            "{:?}/{:?} odd simd={}", kind, order, simd
        );

        // Periodic odd step (halo-free, the x-shift wraps in place).
        let p0 = seeded_field(ctx.lat.q(), dims, 0, seed ^ 0x6a09e667f3bcc909);
        let mut a = p0.clone();
        aa::odd_cells_periodic(&ctx, &tables, &mut a, 0, nx, op, &bounds, plain);
        let mut b = p0.clone();
        aa::odd_cells_periodic(&ctx, &tables, &mut b, 0, nx, op, &bounds, nt);
        prop_assert_eq!(
            first_bit_mismatch(&a, &b), None,
            "{:?}/{:?} periodic odd simd={}", kind, order, simd
        );
    }

    /// The periodic wrap sweep is bitwise the margin sweep over periodically
    /// filled ghost planes (the decomposed single-rank path it replaced),
    /// and the rayon periodic driver is bitwise its serial kernel — across
    /// lattices, wall kinds, masks, forces and both kernel classes.
    #[test]
    fn aa_periodic_wrap_matches_margin_bitwise(
        kind in arb_kind(),
        order in arb_order(),
        low in arb_wall(),
        high in arb_wall(),
        masked in any::<bool>(),
        simd in any::<bool>(),
        nx in 1usize..5,
        ny_extra in 1usize..5,
        nz in 8usize..24,
        gx in -1e-4f64..1e-4,
        tau in 0.55f64..2.0,
        seed in any::<u64>(),
    ) {
        let ctx = KernelCtx::new(kind, order, Bgk::new(tau).unwrap());
        let q = ctx.lat.q();
        let k = ctx.lat.reach();
        let h = 2 * k;
        let ny = 2 * k + 1 + ny_extra;
        let dims = Dim3::new(nx, ny, nz);
        let mut bounds = BoundarySpec::periodic().with_walls(ChannelWalls { low, high, layers: k });
        if masked {
            bounds = bounds.with_mask(SectionMask::from_fn(ny, nz, |_y, z| z >= nz - 4));
        }
        let op = GuoForced { g: [gx, 0.0, -0.5 * gx] };
        let tables = StreamTables::new(ny, nz);
        let tune = AaTune { simd, nt: false };
        let m0 = seeded_field(q, dims, h, seed);
        let da = m0.alloc_dims();
        let plane = ny * nz;

        // Periodic sweep on the halo-free image of the same state.
        let mut p = DistField::new(q, dims, 0).unwrap();
        let dp = p.alloc_dims();
        for i in 0..q {
            for x in 0..nx {
                let s = da.idx(x + h, 0, 0);
                let t = dp.idx(x, 0, 0);
                p.slab_mut(i)[t..t + plane].copy_from_slice(&m0.slab(i)[s..s + plane]);
            }
        }
        aa::odd_cells_periodic(&ctx, &tables, &mut p, 0, nx, op, &bounds, tune);

        // Rayon periodic driver bitwise serial.
        let mut p_par = DistField::new(q, dims, 0).unwrap();
        for i in 0..q {
            p_par.slab_mut(i).copy_from_slice({
                // Rebuild the pre-sweep image (p was updated in place).
                &{
                    let mut tmp = vec![0.0f64; p.slab(i).len()];
                    for x in 0..nx {
                        let s = da.idx(x + h, 0, 0);
                        let t = dp.idx(x, 0, 0);
                        tmp[t..t + plane].copy_from_slice(&m0.slab(i)[s..s + plane]);
                    }
                    tmp
                }
            });
        }
        kernels::par::aa_odd_cells_periodic_par(
            &ctx, &tables, &mut p_par, 0, nx, op, &bounds, tune,
        );
        prop_assert_eq!(
            first_bit_mismatch(&p, &p_par), None,
            "{:?}/{:?} rayon periodic simd={}", kind, order, simd
        );

        // Margin sweep with periodically filled ghosts, writers extended k
        // planes into them, exactly as the decomposed solver runs it. Each
        // ghost plane is filled from the pristine owned plane of its
        // periodic image (valid for any nx, including nx < 2k).
        let mut m = m0.clone();
        for i in 0..q {
            for dst in (0..h).chain(h + nx..h + nx + h) {
                let xo = (dst as isize - h as isize).rem_euclid(nx as isize) as usize;
                let s = da.idx(h + xo, 0, 0);
                let row: Vec<f64> = m0.slab(i)[s..s + plane].to_vec();
                let t = da.idx(dst, 0, 0);
                m.slab_mut(i)[t..t + plane].copy_from_slice(&row);
            }
        }
        aa::odd_cells(&ctx, &tables, &mut m, h - k, h + nx + k, op, &bounds, tune);

        // Owned planes must agree bitwise.
        for i in 0..q {
            for x in 0..nx {
                let sp = dp.idx(x, 0, 0);
                let sm = da.idx(x + h, 0, 0);
                for off in 0..plane {
                    prop_assert_eq!(
                        p.slab(i)[sp + off].to_bits(), m.slab(i)[sm + off].to_bits(),
                        "{:?}/{:?} slab {} x {} off {} simd={}", kind, order, i, x, off, simd
                    );
                }
            }
        }
    }
}
