//! Distribution-function and macroscopic-field storage.
//!
//! [`DistField`] is the paper's *collision-optimized* layout (§IV, citing
//! Wellein/Pohl/Rüde): a two-dimensional arrangement
//! `f[velocity][z + y·nz + x·nz·ny]` in contiguous memory — structure of
//! arrays with one *slab* per discrete velocity. The x-extent is enlarged by
//! a halo of ghost planes on each side (the ghost-cell pattern of §V-A);
//! y and z carry no halos because the decomposition is one-dimensional.
//!
//! How many instances a solver holds is the [`StorageMode`]'s business:
//! [`StorageMode::TwoGrid`] keeps the `distr`/`distr_adv` double buffer of
//! the paper's Fig. 2 (two resident populations, swapped each step), while
//! [`StorageMode::InPlaceAa`] streams in place over a *single* resident
//! population using the AA access pattern (even step: read-local/write-local
//! collide; odd step: gather-swapped, collide, scatter-swapped — see
//! [`crate::kernels::aa`]), halving resident population memory.

use crate::align::AlignedBuf;
use crate::error::{Error, Result};
use crate::index::Dim3;

/// How the particle distribution is resident in memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum StorageMode {
    /// The paper's layout: two full population arrays (`distr`/`distr_adv`),
    /// swapped every step. Every rung of the optimization ladder runs on it.
    #[default]
    TwoGrid,
    /// AA-pattern in-place streaming: one population array, updated in place
    /// by the alternating even/odd access pattern of
    /// [`crate::kernels::aa`]. Half the resident population memory of
    /// [`StorageMode::TwoGrid`] and `2·Q·8` bytes of model traffic per cell
    /// update instead of the paper's `3·Q·8`.
    InPlaceAa,
}

impl StorageMode {
    /// Both modes, two-grid first.
    pub const ALL: [StorageMode; 2] = [StorageMode::TwoGrid, StorageMode::InPlaceAa];

    /// Stable label (`"two_grid"` / `"aa"`), used by benches and reports.
    pub const fn name(self) -> &'static str {
        match self {
            StorageMode::TwoGrid => "two_grid",
            StorageMode::InPlaceAa => "aa",
        }
    }

    /// Parse a label (case-insensitive; accepts `two_grid`/`twogrid`/`tg`
    /// and `aa`/`in_place_aa`).
    pub fn parse(s: &str) -> Option<Self> {
        let t: String = s
            .trim()
            .chars()
            .filter(|c| *c != '-' && *c != '_')
            .collect::<String>()
            .to_ascii_lowercase();
        Some(match t.as_str() {
            "twogrid" | "tg" | "two" => StorageMode::TwoGrid,
            "aa" | "inplaceaa" | "inplace" => StorageMode::InPlaceAa,
            _ => return None,
        })
    }

    /// Resident population arrays a solver holds in this mode.
    pub const fn resident_grids(self) -> usize {
        match self {
            StorageMode::TwoGrid => 2,
            StorageMode::InPlaceAa => 1,
        }
    }
}

/// Structure-of-arrays storage for the particle distribution on one rank's
/// subdomain, halo-extended along x.
#[derive(Debug, Clone)]
pub struct DistField {
    q: usize,
    /// Allocated dims: `alloc.nx = owned.nx + 2*halo`.
    alloc: Dim3,
    owned_nx: usize,
    halo: usize,
    slab_len: usize,
    slab_stride: usize,
    data: AlignedBuf,
}

/// Distance in points between consecutive velocity slabs: `len` rounded up
/// to a 64-byte boundary, then padded so the byte stride is an *odd*
/// multiple of the cache-line size. Grid boxes with power-of-two planes
/// otherwise make every slab's row `(x, y)` land on the same L1/L2 set
/// (the stride is a multiple of 4 KiB), so the Q-row working set of the
/// structure-of-arrays kernels thrashes a single associativity set; an odd
/// line offset walks successive slabs across all 64 line slots of a page.
fn pad_stride(len: usize) -> usize {
    let mut stride = len.next_multiple_of(8);
    if (stride / 8) % 2 == 0 {
        stride += 8;
    }
    stride
}

impl DistField {
    /// Allocate a zeroed field for `q` velocities over `owned` lattice points
    /// plus `halo` ghost planes on each side of the x axis.
    pub fn new(q: usize, owned: Dim3, halo: usize) -> Result<Self> {
        if owned.is_empty() {
            return Err(Error::BadDimensions(format!(
                "empty owned region {owned:?}"
            )));
        }
        if q == 0 {
            return Err(Error::BadDimensions("q == 0".into()));
        }
        let alloc = Dim3::new(owned.nx + 2 * halo, owned.ny, owned.nz);
        let slab_len = alloc.len();
        let slab_stride = pad_stride(slab_len);
        let data = AlignedBuf::new(q * slab_stride);
        Ok(Self {
            q,
            alloc,
            owned_nx: owned.nx,
            halo,
            slab_len,
            slab_stride,
            data,
        })
    }

    /// Number of velocity slabs.
    #[inline]
    pub fn q(&self) -> usize {
        self.q
    }

    /// Halo width (lattice planes per side).
    #[inline]
    pub fn halo(&self) -> usize {
        self.halo
    }

    /// Allocated dimensions (including halos).
    #[inline]
    pub fn alloc_dims(&self) -> Dim3 {
        self.alloc
    }

    /// Owned dimensions (excluding halos).
    #[inline]
    pub fn owned_dims(&self) -> Dim3 {
        Dim3::new(self.owned_nx, self.alloc.ny, self.alloc.nz)
    }

    /// Allocation-local x range of the owned region: `halo .. halo+owned_nx`.
    #[inline]
    pub fn owned_x(&self) -> std::ops::Range<usize> {
        self.halo..self.halo + self.owned_nx
    }

    /// Points per slab (allocated lattice points, pad excluded).
    #[inline]
    pub fn slab_len(&self) -> usize {
        self.slab_len
    }

    /// Distance in points between consecutive slab starts in the backing
    /// storage — `slab_len` plus the anti-aliasing pad (see [`pad_stride`]).
    /// Raw-pointer kernels must use this, not [`Self::slab_len`], when
    /// computing `i · stride + idx` offsets.
    #[inline]
    pub fn slab_stride(&self) -> usize {
        self.slab_stride
    }

    /// Linear index inside a slab for allocation-local coordinates.
    #[inline(always)]
    pub fn idx(&self, x: usize, y: usize, z: usize) -> usize {
        self.alloc.idx(x, y, z)
    }

    /// Velocity slab `i` (read).
    #[inline]
    pub fn slab(&self, i: usize) -> &[f64] {
        &self.data[i * self.slab_stride..i * self.slab_stride + self.slab_len]
    }

    /// Velocity slab `i` (write).
    #[inline]
    pub fn slab_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.slab_stride..i * self.slab_stride + self.slab_len]
    }

    /// All slabs as disjoint mutable slices (for per-velocity parallelism).
    pub fn slabs_mut(&mut self) -> impl Iterator<Item = &mut [f64]> {
        let len = self.slab_len;
        self.data
            .chunks_exact_mut(self.slab_stride)
            .map(move |c| &mut c[..len])
    }

    /// The whole backing storage (read).
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// The whole backing storage (write).
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Raw pointer to the backing storage — used by the (audited) rayon
    /// kernel drivers that split work into disjoint x-chunks.
    #[inline]
    pub fn as_mut_ptr(&mut self) -> *mut f64 {
        self.data.as_mut_ptr()
    }

    /// Bytes of resident population storage backing this field.
    #[inline]
    pub fn resident_bytes(&self) -> u64 {
        (self.data.len() * std::mem::size_of::<f64>()) as u64
    }

    /// Gather the Q populations of one cell into `out`.
    #[inline]
    pub fn gather_cell(&self, lin: usize, out: &mut [f64]) {
        debug_assert_eq!(out.len(), self.q);
        for (i, o) in out.iter_mut().enumerate() {
            *o = self.data[i * self.slab_stride + lin];
        }
    }

    /// Scatter Q populations of one cell from `vals`.
    #[inline]
    pub fn scatter_cell(&mut self, lin: usize, vals: &[f64]) {
        debug_assert_eq!(vals.len(), self.q);
        for (i, v) in vals.iter().enumerate() {
            self.data[i * self.slab_stride + lin] = *v;
        }
    }

    /// Total mass over the owned region (diagnostic; halo excluded).
    pub fn owned_mass(&self) -> f64 {
        let d = self.alloc;
        let mut m = 0.0;
        for i in 0..self.q {
            let s = self.slab(i);
            for x in self.owned_x() {
                let base = d.idx(x, 0, 0);
                m += s[base..base + d.plane()].iter().sum::<f64>();
            }
        }
        m
    }

    /// Copy every owned plane and halo plane from `other` (shape must match).
    pub fn copy_from(&mut self, other: &DistField) -> Result<()> {
        if self.q != other.q || self.alloc != other.alloc || self.halo != other.halo {
            return Err(Error::Mismatch("DistField shapes differ".into()));
        }
        self.data.copy_from_slice(&other.data);
        Ok(())
    }

    /// Maximum absolute difference over owned regions (test/diagnostic aid).
    pub fn max_abs_diff_owned(&self, other: &DistField) -> f64 {
        assert_eq!(self.q, other.q);
        assert_eq!(self.owned_dims(), other.owned_dims());
        let mut m: f64 = 0.0;
        let da = self.alloc;
        let db = other.alloc;
        for i in 0..self.q {
            let sa = self.slab(i);
            let sb = other.slab(i);
            for (oa, ob) in self.owned_x().zip(other.owned_x()) {
                let ba = da.idx(oa, 0, 0);
                let bb = db.idx(ob, 0, 0);
                for k in 0..da.plane() {
                    m = m.max((sa[ba + k] - sb[bb + k]).abs());
                }
            }
        }
        m
    }
}

/// A scalar field over a (halo-free) box — densities, error maps, images.
#[derive(Debug, Clone)]
pub struct ScalarField {
    dims: Dim3,
    data: AlignedBuf,
}

impl ScalarField {
    /// Allocate zeroed.
    pub fn new(dims: Dim3) -> Self {
        Self {
            dims,
            data: AlignedBuf::new(dims.len()),
        }
    }

    /// Extents.
    #[inline]
    pub fn dims(&self) -> Dim3 {
        self.dims
    }

    /// Read `(x,y,z)`.
    #[inline]
    pub fn get(&self, x: usize, y: usize, z: usize) -> f64 {
        self.data[self.dims.idx(x, y, z)]
    }

    /// Write `(x,y,z)`.
    #[inline]
    pub fn set(&mut self, x: usize, y: usize, z: usize, v: f64) {
        let i = self.dims.idx(x, y, z);
        self.data[i] = v;
    }

    /// Raw values.
    #[inline]
    pub fn values(&self) -> &[f64] {
        &self.data
    }

    /// Raw values, mutable.
    #[inline]
    pub fn values_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }
}

/// A 3-component vector field over a box (velocity output).
#[derive(Debug, Clone)]
pub struct VectorField {
    dims: Dim3,
    data: AlignedBuf, // 3 consecutive component slabs
}

impl VectorField {
    /// Allocate zeroed.
    pub fn new(dims: Dim3) -> Self {
        Self {
            dims,
            data: AlignedBuf::new(3 * dims.len()),
        }
    }

    /// Extents.
    #[inline]
    pub fn dims(&self) -> Dim3 {
        self.dims
    }

    /// Component slab `a ∈ 0..3`.
    #[inline]
    pub fn component(&self, a: usize) -> &[f64] {
        let n = self.dims.len();
        &self.data[a * n..(a + 1) * n]
    }

    /// Read the vector at `(x,y,z)`.
    #[inline]
    pub fn get(&self, x: usize, y: usize, z: usize) -> [f64; 3] {
        let n = self.dims.len();
        let i = self.dims.idx(x, y, z);
        [self.data[i], self.data[n + i], self.data[2 * n + i]]
    }

    /// Write the vector at `(x,y,z)`.
    #[inline]
    pub fn set(&mut self, x: usize, y: usize, z: usize, v: [f64; 3]) {
        let n = self.dims.len();
        let i = self.dims.idx(x, y, z);
        self.data[i] = v[0];
        self.data[n + i] = v[1];
        self.data[2 * n + i] = v[2];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocation_shape() {
        let f = DistField::new(19, Dim3::new(8, 4, 4), 2).unwrap();
        assert_eq!(f.q(), 19);
        assert_eq!(f.alloc_dims(), Dim3::new(12, 4, 4));
        assert_eq!(f.owned_dims(), Dim3::new(8, 4, 4));
        assert_eq!(f.owned_x(), 2..10);
        assert_eq!(f.slab_len(), 12 * 16);
        // 192 points is an even number of cache lines, so the stride pads
        // to the next odd line count (192 + 8 = 25 lines of 8 doubles).
        assert_eq!(f.slab_stride(), 12 * 16 + 8);
        assert_eq!(f.as_slice().len(), 19 * (12 * 16 + 8));
    }

    #[test]
    fn slab_stride_is_an_odd_number_of_cache_lines() {
        for (nx, ny, nz, halo) in [(8, 4, 4, 2), (64, 48, 48, 0), (5, 3, 7, 1), (1, 1, 1, 0)] {
            let f = DistField::new(19, Dim3::new(nx, ny, nz), halo).unwrap();
            let stride = f.slab_stride();
            assert!(stride >= f.slab_len());
            assert_eq!(stride % 8, 0, "slab starts stay 64-byte aligned");
            assert_eq!(
                (stride / 8) % 2,
                1,
                "byte stride must be an odd multiple of 64 to break set aliasing"
            );
            assert!(stride - f.slab_len() < 16, "pad stays below two lines");
        }
    }

    #[test]
    fn storage_mode_labels_round_trip() {
        for m in StorageMode::ALL {
            assert_eq!(StorageMode::parse(m.name()), Some(m), "{}", m.name());
        }
        assert_eq!(StorageMode::parse("TWO_GRID"), Some(StorageMode::TwoGrid));
        assert_eq!(
            StorageMode::parse("in-place-aa"),
            Some(StorageMode::InPlaceAa)
        );
        assert_eq!(StorageMode::parse("bogus"), None);
        assert_eq!(StorageMode::TwoGrid.resident_grids(), 2);
        assert_eq!(StorageMode::InPlaceAa.resident_grids(), 1);
        assert_eq!(StorageMode::default(), StorageMode::TwoGrid);
    }

    #[test]
    fn resident_bytes_counts_the_allocation() {
        let f = DistField::new(19, Dim3::new(8, 4, 4), 2).unwrap();
        assert_eq!(f.resident_bytes(), (19 * (12 * 16 + 8) * 8) as u64);
    }

    #[test]
    fn rejects_degenerate_shapes() {
        assert!(DistField::new(0, Dim3::cube(4), 1).is_err());
        assert!(DistField::new(19, Dim3::new(0, 4, 4), 1).is_err());
    }

    #[test]
    fn slabs_are_disjoint_and_contiguous() {
        let mut f = DistField::new(3, Dim3::cube(2), 0).unwrap();
        f.slab_mut(1).fill(7.0);
        assert!(f.slab(0).iter().all(|&v| v == 0.0));
        assert!(f.slab(1).iter().all(|&v| v == 7.0));
        assert!(f.slab(2).iter().all(|&v| v == 0.0));
        let n: usize = f.slabs_mut().map(|s| s.len()).sum();
        assert_eq!(n, 3 * 8);
    }

    #[test]
    fn gather_scatter_round_trip() {
        let mut f = DistField::new(5, Dim3::cube(3), 1).unwrap();
        let lin = f.idx(2, 1, 1);
        let vals = [1.0, 2.0, 3.0, 4.0, 5.0];
        f.scatter_cell(lin, &vals);
        let mut out = [0.0; 5];
        f.gather_cell(lin, &mut out);
        assert_eq!(out, vals);
    }

    #[test]
    fn owned_mass_ignores_halo() {
        let mut f = DistField::new(1, Dim3::new(2, 2, 2), 1).unwrap();
        // Put 1.0 in a halo plane (x=0) and 2.0 in an owned cell (x=1).
        let h = f.idx(0, 0, 0);
        let o = f.idx(1, 0, 0);
        f.slab_mut(0)[h] = 1.0;
        f.slab_mut(0)[o] = 2.0;
        assert_eq!(f.owned_mass(), 2.0);
    }

    #[test]
    fn copy_from_requires_same_shape() {
        let mut a = DistField::new(2, Dim3::cube(3), 1).unwrap();
        let b = DistField::new(2, Dim3::cube(3), 1).unwrap();
        let c = DistField::new(2, Dim3::cube(4), 1).unwrap();
        assert!(a.copy_from(&b).is_ok());
        assert!(a.copy_from(&c).is_err());
    }

    #[test]
    fn max_abs_diff_owned_sees_only_owned() {
        let mut a = DistField::new(1, Dim3::new(2, 1, 1), 1).unwrap();
        let mut b = DistField::new(1, Dim3::new(2, 1, 1), 1).unwrap();
        let halo_lin = a.idx(0, 0, 0);
        a.slab_mut(0)[halo_lin] = 100.0; // halo difference is invisible
        assert_eq!(a.max_abs_diff_owned(&b), 0.0);
        let lin = b.idx(1, 0, 0);
        b.slab_mut(0)[lin] = 0.5;
        assert_eq!(a.max_abs_diff_owned(&b), 0.5);
    }

    #[test]
    fn scalar_and_vector_fields() {
        let mut s = ScalarField::new(Dim3::cube(3));
        s.set(1, 2, 0, 9.0);
        assert_eq!(s.get(1, 2, 0), 9.0);
        assert_eq!(s.values().len(), 27);

        let mut v = VectorField::new(Dim3::cube(2));
        v.set(1, 0, 1, [1.0, 2.0, 3.0]);
        assert_eq!(v.get(1, 0, 1), [1.0, 2.0, 3.0]);
        assert_eq!(v.component(2).iter().sum::<f64>(), 3.0);
    }
}
