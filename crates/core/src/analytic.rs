//! Analytic reference solutions used for physics validation.

/// Force-driven plane Poiseuille profile between no-slip walls at `y = 0`
/// and `y = h` (continuous coordinates): `u(y) = g/(2ν) · y (h − y)`.
pub fn poiseuille(g: f64, nu: f64, h: f64, y: f64) -> f64 {
    g / (2.0 * nu) * y * (h - y)
}

/// Peak (centreline) Poiseuille velocity `g h² / (8ν)`.
pub fn poiseuille_peak(g: f64, nu: f64, h: f64) -> f64 {
    g * h * h / (8.0 * nu)
}

/// Poiseuille profile with first-order Maxwell slip `u_s = λ (du/dy)|wall`
/// (accommodation 1): `u(y) = g/(2ν) [ y(h−y) + λ h ]`.
///
/// The slip term `g h λ / (2ν)` is what a kinetic (diffuse) wall adds at
/// finite Knudsen number — the quantity the microchannel example measures.
pub fn poiseuille_slip(g: f64, nu: f64, h: f64, lambda: f64, y: f64) -> f64 {
    g / (2.0 * nu) * (y * (h - y) + lambda * h)
}

/// Plane Couette profile: wall at `y=0` fixed, wall at `y=h` moving with
/// `u_w`: `u(y) = u_w · y/h`.
pub fn couette(u_w: f64, h: f64, y: f64) -> f64 {
    u_w * y / h
}

/// Amplitude decay factor of a Taylor–Green / shear-wave mode with
/// wavenumbers `kx, ky` after time `t`: `exp(−ν (kx² + ky²) t)`.
pub fn viscous_decay(nu: f64, kx: f64, ky: f64, t: f64) -> f64 {
    (-nu * (kx * kx + ky * ky) * t).exp()
}

/// Effective viscosity inferred from the measured amplitude ratio of a mode
/// with wavenumbers `kx, ky` over `t` steps: inverse of [`viscous_decay`].
pub fn viscosity_from_decay(amplitude_ratio: f64, kx: f64, ky: f64, t: f64) -> f64 {
    -amplitude_ratio.ln() / ((kx * kx + ky * ky) * t)
}

/// Womersley number `α = R √(ω/ν)` for pulsatile pipe flow (the regime
/// parameter of the aorta example).
pub fn womersley(radius: f64, omega: f64, nu: f64) -> f64 {
    radius * (omega / nu).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poiseuille_is_symmetric_parabola() {
        let (g, nu, h) = (1e-5, 0.1, 20.0);
        assert!(poiseuille(g, nu, h, 0.0).abs() < 1e-18);
        assert!(poiseuille(g, nu, h, h).abs() < 1e-18);
        let quarter = poiseuille(g, nu, h, h / 4.0);
        let mirror = poiseuille(g, nu, h, 3.0 * h / 4.0);
        assert!((quarter - mirror).abs() < 1e-18);
        let peak = poiseuille(g, nu, h, h / 2.0);
        assert!((peak - poiseuille_peak(g, nu, h)).abs() < 1e-18);
        assert!(peak > quarter);
    }

    #[test]
    fn slip_profile_exceeds_no_slip_everywhere() {
        let (g, nu, h, lam) = (1e-5, 0.05, 16.0, 1.5);
        for i in 0..=16 {
            let y = i as f64;
            assert!(poiseuille_slip(g, nu, h, lam, y) > poiseuille(g, nu, h, y) - 1e-18);
        }
        // At the wall the slip velocity is g·h·λ/(2ν).
        let ws = poiseuille_slip(g, nu, h, lam, 0.0);
        assert!((ws - g * h * lam / (2.0 * nu)).abs() < 1e-18);
    }

    #[test]
    fn couette_is_linear() {
        assert_eq!(couette(0.1, 10.0, 0.0), 0.0);
        assert_eq!(couette(0.1, 10.0, 10.0), 0.1);
        assert!((couette(0.1, 10.0, 5.0) - 0.05).abs() < 1e-18);
    }

    #[test]
    fn decay_round_trip() {
        let nu = 0.031;
        let (kx, ky) = (0.3, 0.2);
        let t = 175.0;
        let ratio = viscous_decay(nu, kx, ky, t);
        let back = viscosity_from_decay(ratio, kx, ky, t);
        assert!((back - nu).abs() < 1e-12);
    }

    #[test]
    fn womersley_scales() {
        let a = womersley(10.0, 0.01, 0.1);
        let b = womersley(20.0, 0.01, 0.1);
        assert!((b / a - 2.0).abs() < 1e-12);
    }
}
