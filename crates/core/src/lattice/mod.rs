//! Discrete velocity models.
//!
//! The paper studies two models (its Table I):
//!
//! * **D3Q19** — the common 19-speed cubic lattice reaching first and second
//!   neighbours, `c_s² = 1/3`, fourth-order isotropic: sufficient for the
//!   second-order Hermite equilibrium that recovers Navier–Stokes.
//! * **D3Q39** — the 39-point Gauss–Hermite quadrature of Shan, Yuan & Chen,
//!   reaching up to the fifth-nearest neighbour, `c_s² = 2/3`, sixth-order
//!   isotropic: required by the third-order equilibrium that captures
//!   finite-Knudsen physics beyond Navier–Stokes.
//!
//! D3Q15 and D3Q27 are included as well — the conventional “up to 27
//! neighbours” family the introduction refers to — and double as negative
//! controls in the isotropy tests (neither supports the third-order
//! expansion).
//!
//! **Paper erratum handled here.** The paper's Table I prints the (2,2,0)
//! shell weight as `1/142`; the Shan–Yuan–Chen value is `1/432`, and only the
//! latter makes the weights sum to 1 and reproduces `c_s² = 2/3` second
//! moments. We use `1/432` (verified by `weights_*` unit tests and the
//! Hermite isotropy checks).
//!
//! **Ordering convention.** Following the paper (“the 19th and 39th values
//! are for the lattice point itself”), the rest velocity is stored **last**.

pub mod d3q15;
pub mod d3q19;
pub mod d3q27;
pub mod d3q39;
pub mod hermite;

use crate::equilibrium::EqOrder;

/// Identifies one of the supported discrete velocity models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LatticeKind {
    /// 15-velocity cubic lattice (conventional).
    D3Q15,
    /// 19-velocity cubic lattice (the paper's continuum-flow model).
    D3Q19,
    /// 27-velocity cubic lattice (conventional, full first-neighbour cube).
    D3Q27,
    /// 39-velocity Gauss–Hermite lattice (the paper's beyond-Navier-Stokes model).
    D3Q39,
}

impl LatticeKind {
    /// All supported kinds, for sweeps and tests.
    pub const ALL: [LatticeKind; 4] = [
        LatticeKind::D3Q15,
        LatticeKind::D3Q19,
        LatticeKind::D3Q27,
        LatticeKind::D3Q39,
    ];

    /// Human-readable name (`"D3Q19"` …).
    pub const fn name(self) -> &'static str {
        match self {
            LatticeKind::D3Q15 => "D3Q15",
            LatticeKind::D3Q19 => "D3Q19",
            LatticeKind::D3Q27 => "D3Q27",
            LatticeKind::D3Q39 => "D3Q39",
        }
    }

    /// Number of discrete velocities.
    pub const fn q(self) -> usize {
        match self {
            LatticeKind::D3Q15 => 15,
            LatticeKind::D3Q19 => 19,
            LatticeKind::D3Q27 => 27,
            LatticeKind::D3Q39 => 39,
        }
    }

    /// Parse `"q19"`, `"d3q39"`, `"D3Q19"`, `"39"` and similar spellings.
    pub fn parse(s: &str) -> Option<Self> {
        let t = s.trim().to_ascii_lowercase();
        match t.as_str() {
            "d3q15" | "q15" | "15" => Some(LatticeKind::D3Q15),
            "d3q19" | "q19" | "19" => Some(LatticeKind::D3Q19),
            "d3q27" | "q27" | "27" => Some(LatticeKind::D3Q27),
            "d3q39" | "q39" | "39" => Some(LatticeKind::D3Q39),
            _ => None,
        }
    }
}

/// One shell of the velocity set, as listed per row in the paper's Table I.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Shell {
    /// Representative velocity of the shell, e.g. `(2, 2, 0)`.
    pub representative: [i32; 3],
    /// Quadrature weight shared by every member of the shell.
    pub weight: f64,
    /// Neighbour order as counted in the paper's Table I (0 = rest).
    pub neighbor_order: usize,
    /// Euclidean distance of the shell from the origin.
    pub distance: f64,
    /// Number of velocities in the shell.
    pub multiplicity: usize,
}

/// A fully-materialised discrete velocity model.
///
/// Construction is cheap (a few hundred bytes); kernels borrow it immutably.
/// All derived tables (opposites, per-axis maxima, shells) are precomputed so
/// the hot loops only index into slices.
#[derive(Debug, Clone)]
pub struct Lattice {
    kind: LatticeKind,
    cs2: f64,
    velocities: Vec<[i32; 3]>,
    weights: Vec<f64>,
    opposite: Vec<usize>,
    shells: Vec<Shell>,
    reach: usize,
}

impl Lattice {
    /// Materialise the lattice for `kind`.
    pub fn new(kind: LatticeKind) -> Self {
        let (cs2, velocities, weights): (f64, Vec<[i32; 3]>, Vec<f64>) = match kind {
            LatticeKind::D3Q15 => d3q15::tables(),
            LatticeKind::D3Q19 => d3q19::tables(),
            LatticeKind::D3Q27 => d3q27::tables(),
            LatticeKind::D3Q39 => d3q39::tables(),
        };
        debug_assert_eq!(velocities.len(), kind.q());
        debug_assert_eq!(weights.len(), kind.q());

        let opposite = velocities
            .iter()
            .map(|c| {
                let neg = [-c[0], -c[1], -c[2]];
                velocities
                    .iter()
                    .position(|v| *v == neg)
                    .expect("velocity set must be symmetric under inversion")
            })
            .collect::<Vec<_>>();

        let reach = velocities
            .iter()
            .flat_map(|c| c.iter().map(|v| v.unsigned_abs() as usize))
            .max()
            .unwrap_or(0);

        let shells = Self::group_shells(&velocities, &weights);

        Self {
            kind,
            cs2,
            velocities,
            weights,
            opposite,
            shells,
            reach,
        }
    }

    fn group_shells(velocities: &[[i32; 3]], weights: &[f64]) -> Vec<Shell> {
        // A shell is the set of velocities sharing the same sorted |component|
        // signature (and hence the same weight for these isotropic lattices).
        let mut shells: Vec<(Vec<usize>, Shell)> = Vec::new();
        for (i, c) in velocities.iter().enumerate() {
            let mut sig = [
                c[0].unsigned_abs() as usize,
                c[1].unsigned_abs() as usize,
                c[2].unsigned_abs() as usize,
            ];
            sig.sort_unstable();
            let key = sig.to_vec();
            match shells.iter_mut().find(|(k, _)| *k == key) {
                Some((_, sh)) => sh.multiplicity += 1,
                None => {
                    let d2 = (c[0] * c[0] + c[1] * c[1] + c[2] * c[2]) as f64;
                    shells.push((
                        key,
                        Shell {
                            representative: *c,
                            weight: weights[i],
                            neighbor_order: 0, // assigned below
                            distance: d2.sqrt(),
                            multiplicity: 1,
                        },
                    ));
                }
            }
        }
        let mut out: Vec<Shell> = shells.into_iter().map(|(_, s)| s).collect();
        out.sort_by(|a, b| a.distance.total_cmp(&b.distance));
        for (ord, s) in out.iter_mut().enumerate() {
            s.neighbor_order = ord; // 0 = rest, then by distance, as in Table I
        }
        out
    }

    /// Which model this is.
    #[inline]
    pub fn kind(&self) -> LatticeKind {
        self.kind
    }

    /// Model name, e.g. `"D3Q39"`.
    #[inline]
    pub fn name(&self) -> &'static str {
        self.kind.name()
    }

    /// Number of discrete velocities Q.
    #[inline]
    pub fn q(&self) -> usize {
        self.velocities.len()
    }

    /// Squared lattice speed of sound `c_s²`.
    #[inline]
    pub fn cs2(&self) -> f64 {
        self.cs2
    }

    /// The discrete velocities `c_i` (rest velocity last, per the paper).
    #[inline]
    pub fn velocities(&self) -> &[[i32; 3]] {
        &self.velocities
    }

    /// Quadrature weights `w_i`, aligned with [`Lattice::velocities`].
    #[inline]
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Index of the velocity opposite to `i` (`c_opp = -c_i`).
    #[inline]
    pub fn opposite(&self, i: usize) -> usize {
        self.opposite[i]
    }

    /// Velocity shells in neighbour order (paper Table I rows).
    #[inline]
    pub fn shells(&self) -> &[Shell] {
        &self.shells
    }

    /// Maximum |velocity component|: how many planes a particle can cross per
    /// step along a coordinate axis. This is the paper's `k`: the fundamental
    /// ghost-cell unit. 1 for D3Q15/19/27, **3** for D3Q39.
    ///
    /// (The paper's prose says D3Q39 particles move “up to two points” per
    /// step, but its own Table I lists the (3,0,0) shell; correctness
    /// requires `k = 3`, see DESIGN.md.)
    #[inline]
    pub fn reach(&self) -> usize {
        self.reach
    }

    /// Highest equilibrium truncation order this lattice supports, from its
    /// quadrature isotropy (4th-order isotropy → 2nd-order equilibrium,
    /// 6th-order → 3rd-order equilibrium).
    pub fn max_eq_order(&self) -> EqOrder {
        if hermite::supports_order(self, 3) {
            EqOrder::Third
        } else {
            EqOrder::Second
        }
    }

    /// Bytes moved to/from memory per lattice-point update under the paper's
    /// accounting (§III-B): two loads and one store per velocity, 8 bytes
    /// each → `3·Q·8`. 456 B for D3Q19, 936 B for D3Q39.
    #[inline]
    pub fn bytes_per_cell(&self) -> usize {
        3 * self.q() * 8
    }

    /// Nominal floating-point operations per lattice-point update, as counted
    /// by the paper for its implementation: 178 (D3Q19) and 190 (D3Q39).
    /// For the other lattices we extrapolate with the same per-velocity cost
    /// model the paper's two data points imply.
    pub fn flops_per_cell(&self) -> usize {
        match self.kind {
            LatticeKind::D3Q19 => 178,
            LatticeKind::D3Q39 => 190,
            // Paper gives no number; interpolate linearly in Q between its
            // two anchors (178 @ 19, 190 @ 39 → slope 0.6/velocity).
            k => (178.0 + 0.6 * (k.q() as f64 - 19.0)).round() as usize,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lat(k: LatticeKind) -> Lattice {
        Lattice::new(k)
    }

    #[test]
    fn q_matches_kind() {
        for k in LatticeKind::ALL {
            assert_eq!(lat(k).q(), k.q(), "{}", k.name());
        }
    }

    #[test]
    fn weights_sum_to_one() {
        for k in LatticeKind::ALL {
            let l = lat(k);
            let s: f64 = l.weights().iter().sum();
            assert!((s - 1.0).abs() < 1e-14, "{}: sum={s}", l.name());
        }
    }

    #[test]
    fn weights_are_positive() {
        for k in LatticeKind::ALL {
            assert!(lat(k).weights().iter().all(|&w| w > 0.0));
        }
    }

    #[test]
    fn velocities_are_unique() {
        for k in LatticeKind::ALL {
            let l = lat(k);
            for (i, a) in l.velocities().iter().enumerate() {
                for b in l.velocities().iter().skip(i + 1) {
                    assert_ne!(a, b, "{}", l.name());
                }
            }
        }
    }

    #[test]
    fn rest_velocity_is_last_per_paper_convention() {
        for k in LatticeKind::ALL {
            let l = lat(k);
            assert_eq!(l.velocities()[l.q() - 1], [0, 0, 0], "{}", l.name());
        }
    }

    #[test]
    fn opposite_is_involution_and_inverts_velocity() {
        for k in LatticeKind::ALL {
            let l = lat(k);
            for i in 0..l.q() {
                let o = l.opposite(i);
                assert_eq!(l.opposite(o), i);
                let c = l.velocities()[i];
                let co = l.velocities()[o];
                assert_eq!([-c[0], -c[1], -c[2]], co);
                // Opposite velocities share a weight.
                assert_eq!(l.weights()[i], l.weights()[o]);
            }
        }
    }

    #[test]
    fn first_moment_vanishes() {
        for k in LatticeKind::ALL {
            let l = lat(k);
            for a in 0..3 {
                let m: f64 = l
                    .velocities()
                    .iter()
                    .zip(l.weights())
                    .map(|(c, w)| w * c[a] as f64)
                    .sum();
                assert!(m.abs() < 1e-14, "{} axis {a}: {m}", l.name());
            }
        }
    }

    #[test]
    fn second_moment_is_cs2_identity() {
        for k in LatticeKind::ALL {
            let l = lat(k);
            for a in 0..3 {
                for b in 0..3 {
                    let m: f64 = l
                        .velocities()
                        .iter()
                        .zip(l.weights())
                        .map(|(c, w)| w * (c[a] * c[b]) as f64)
                        .sum();
                    let expect = if a == b { l.cs2() } else { 0.0 };
                    assert!(
                        (m - expect).abs() < 1e-13,
                        "{} ({a},{b}): {m} vs {expect}",
                        l.name()
                    );
                }
            }
        }
    }

    #[test]
    fn reach_matches_paper_k() {
        assert_eq!(lat(LatticeKind::D3Q19).reach(), 1);
        assert_eq!(lat(LatticeKind::D3Q15).reach(), 1);
        assert_eq!(lat(LatticeKind::D3Q27).reach(), 1);
        assert_eq!(lat(LatticeKind::D3Q39).reach(), 3);
    }

    #[test]
    fn bytes_per_cell_match_paper_table2_inputs() {
        assert_eq!(lat(LatticeKind::D3Q19).bytes_per_cell(), 456);
        assert_eq!(lat(LatticeKind::D3Q39).bytes_per_cell(), 936);
    }

    #[test]
    fn flops_per_cell_match_paper() {
        assert_eq!(lat(LatticeKind::D3Q19).flops_per_cell(), 178);
        assert_eq!(lat(LatticeKind::D3Q39).flops_per_cell(), 190);
    }

    #[test]
    fn d3q19_shells_match_table1() {
        let l = lat(LatticeKind::D3Q19);
        let sh = l.shells();
        assert_eq!(sh.len(), 3);
        assert_eq!(sh[0].representative, [0, 0, 0]);
        assert!((sh[0].weight - 1.0 / 3.0).abs() < 1e-15);
        assert_eq!(sh[0].multiplicity, 1);
        assert!((sh[1].weight - 1.0 / 18.0).abs() < 1e-15);
        assert_eq!(sh[1].multiplicity, 6);
        assert!((sh[1].distance - 1.0).abs() < 1e-15);
        assert!((sh[2].weight - 1.0 / 36.0).abs() < 1e-15);
        assert_eq!(sh[2].multiplicity, 12);
        assert!((sh[2].distance - 2f64.sqrt()).abs() < 1e-15);
    }

    #[test]
    fn d3q39_shells_match_table1_with_weight_erratum() {
        let l = lat(LatticeKind::D3Q39);
        let sh = l.shells();
        assert_eq!(sh.len(), 6);
        let expect: [(f64, usize, f64); 6] = [
            (1.0 / 12.0, 1, 0.0),           // rest
            (1.0 / 12.0, 6, 1.0),           // (1,0,0)
            (1.0 / 27.0, 8, 3f64.sqrt()),   // (1,1,1)
            (2.0 / 135.0, 6, 2.0),          // (2,0,0)
            (1.0 / 432.0, 12, 8f64.sqrt()), // (2,2,0)  — paper's misprinted 1/142
            (1.0 / 1620.0, 6, 3.0),         // (3,0,0)
        ];
        for (s, (w, m, d)) in sh.iter().zip(expect) {
            assert!((s.weight - w).abs() < 1e-15, "{s:?}");
            assert_eq!(s.multiplicity, m, "{s:?}");
            assert!((s.distance - d).abs() < 1e-12, "{s:?}");
        }
        assert!((l.cs2() - 2.0 / 3.0).abs() < 1e-15);
    }

    #[test]
    fn shell_weights_and_multiplicities_reassemble_unity() {
        for k in LatticeKind::ALL {
            let l = lat(k);
            let s: f64 = l
                .shells()
                .iter()
                .map(|s| s.weight * s.multiplicity as f64)
                .sum();
            assert!((s - 1.0).abs() < 1e-14, "{}", l.name());
            let q: usize = l.shells().iter().map(|s| s.multiplicity).sum();
            assert_eq!(q, l.q());
        }
    }

    #[test]
    fn parse_accepts_spellings() {
        assert_eq!(LatticeKind::parse("d3q39"), Some(LatticeKind::D3Q39));
        assert_eq!(LatticeKind::parse("Q19"), Some(LatticeKind::D3Q19));
        assert_eq!(LatticeKind::parse(" 27 "), Some(LatticeKind::D3Q27));
        assert_eq!(LatticeKind::parse("nope"), None);
    }

    #[test]
    fn max_eq_order_by_isotropy() {
        assert_eq!(lat(LatticeKind::D3Q19).max_eq_order(), EqOrder::Second);
        assert_eq!(lat(LatticeKind::D3Q15).max_eq_order(), EqOrder::Second);
        assert_eq!(lat(LatticeKind::D3Q27).max_eq_order(), EqOrder::Second);
        assert_eq!(lat(LatticeKind::D3Q39).max_eq_order(), EqOrder::Third);
    }
}
