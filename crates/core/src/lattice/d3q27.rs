//! The D3Q27 lattice (conventional family, full first-neighbour cube).
//!
//! The paper's introduction notes that traditional LBM simulations use models
//! "of up to 27 neighbors" — this is that upper member. 6 faces (2/27),
//! 12 edges (1/54), 8 corners (1/216), rest (8/27), `c_s² = 1/3`.
//! Despite its size it is *not* sixth-order isotropic (its Σw·c_x⁶ moment is
//! wrong), so like D3Q15/19 it supports only the second-order equilibrium —
//! the reason the beyond-NS extension needs the multi-speed D3Q39 instead of
//! simply "more neighbours". This property is exercised by the Hermite tests.

/// Squared speed of sound.
pub const CS2: f64 = 1.0 / 3.0;
/// Weight of the six face velocities.
pub const W_FACE: f64 = 2.0 / 27.0;
/// Weight of the twelve edge velocities.
pub const W_EDGE: f64 = 1.0 / 54.0;
/// Weight of the eight corner velocities.
pub const W_CORNER: f64 = 1.0 / 216.0;
/// Weight of the rest velocity.
pub const W_REST: f64 = 8.0 / 27.0;

/// Build `(cs2, velocities, weights)` with the rest velocity last.
pub(crate) fn tables() -> (f64, Vec<[i32; 3]>, Vec<f64>) {
    let mut v: Vec<[i32; 3]> = Vec::with_capacity(27);
    let mut w: Vec<f64> = Vec::with_capacity(27);
    for x in [-1i32, 0, 1] {
        for y in [-1i32, 0, 1] {
            for z in [-1i32, 0, 1] {
                if (x, y, z) == (0, 0, 0) {
                    continue; // rest goes last
                }
                v.push([x, y, z]);
                w.push(match x * x + y * y + z * z {
                    1 => W_FACE,
                    2 => W_EDGE,
                    3 => W_CORNER,
                    _ => unreachable!(),
                });
            }
        }
    }
    v.push([0, 0, 0]);
    w.push(W_REST);
    (CS2, v, w)
}

#[cfg(test)]
mod tests {
    #[test]
    fn twenty_seven_velocities_weights_sum() {
        let (_, v, w) = super::tables();
        assert_eq!(v.len(), 27);
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-15);
    }

    #[test]
    fn shell_counts() {
        let (_, v, _) = super::tables();
        let count = |d2: i32| {
            v.iter()
                .filter(|c| c.iter().map(|x| x * x).sum::<i32>() == d2)
                .count()
        };
        assert_eq!(count(1), 6);
        assert_eq!(count(2), 12);
        assert_eq!(count(3), 8);
    }
}
