//! Gauss–Hermite quadrature verification machinery.
//!
//! A discrete velocity set recovers the moments of the Maxwell–Boltzmann
//! distribution up to order *N* exactly when its quadrature is exact for all
//! polynomial moments of degree ≤ 2N (Shan, Yuan & Chen 2006; paper §II).
//! The second-order equilibrium (paper Eq. 2) therefore needs fourth-order
//! quadrature isotropy; the third-order equilibrium (paper Eq. 3) needs
//! sixth-order — which is precisely why the extension beyond Navier–Stokes
//! forces the jump from D3Q19 (degree-5 quadrature) to the multi-speed D3Q39
//! (degree-7), with all its bandwidth and halo-depth consequences.
//!
//! This module computes discrete lattice moments, the corresponding exact
//! Gaussian moments, and the resulting quadrature degree, so the claim above
//! is *checked* rather than assumed.

use super::Lattice;

/// Exact moment `E[c_x^px · c_y^py · c_z^pz]` of an isotropic Gaussian with
/// variance `cs2` per axis.
///
/// Zero when any exponent is odd; otherwise the product of per-axis
/// double-factorial moments `(p−1)!! · cs2^{p/2}`.
pub fn gaussian_moment(cs2: f64, powers: [usize; 3]) -> f64 {
    let mut m = 1.0;
    for p in powers {
        if p % 2 == 1 {
            return 0.0;
        }
        m *= double_factorial_odd(p) * cs2.powi((p / 2) as i32);
    }
    m
}

/// `(p−1)!!` for even `p` (1 for p=0, 1 for p=2, 3 for p=4, 15 for p=6, …).
fn double_factorial_odd(p: usize) -> f64 {
    let mut v = 1.0;
    let mut k = p as i64 - 1;
    while k > 1 {
        v *= k as f64;
        k -= 2;
    }
    v
}

/// Discrete lattice moment `Σ_i w_i · c_ix^px · c_iy^py · c_iz^pz`.
pub fn lattice_moment(lat: &Lattice, powers: [usize; 3]) -> f64 {
    lat.velocities()
        .iter()
        .zip(lat.weights())
        .map(|(c, w)| {
            let mut t = *w;
            for a in 0..3 {
                t *= (c[a] as f64).powi(powers[a] as i32);
            }
            t
        })
        .sum()
}

/// Maximum total polynomial degree `D ≤ max_degree` for which every lattice
/// moment of degree ≤ D equals the Gaussian moment (relative tolerance
/// `1e-11` against the moment scale).
pub fn quadrature_degree(lat: &Lattice, max_degree: usize) -> usize {
    let mut degree = 0;
    for d in 1..=max_degree {
        if degree_exact(lat, d) {
            degree = d;
        } else {
            break;
        }
    }
    degree
}

/// Check exactness of every moment of total degree exactly `d`.
fn degree_exact(lat: &Lattice, d: usize) -> bool {
    let cs2 = lat.cs2();
    for px in 0..=d {
        for py in 0..=(d - px) {
            let pz = d - px - py;
            let got = lattice_moment(lat, [px, py, pz]);
            let want = gaussian_moment(cs2, [px, py, pz]);
            let scale = want.abs().max(cs2.powi((d / 2) as i32)).max(1e-300);
            if (got - want).abs() > 1e-11 * scale {
                return false;
            }
        }
    }
    true
}

/// Whether the lattice quadrature supports a Hermite equilibrium truncated
/// at order `n` (requires quadrature degree ≥ 2n).
pub fn supports_order(lat: &Lattice, n: usize) -> bool {
    quadrature_degree(lat, 2 * n) >= 2 * n
}

/// Evaluate the (probabilists', `cs2`-scaled) Hermite polynomial of order
/// `n ∈ 0..=3` in one velocity component: used to express the equilibrium as
/// the expansion the paper's Eq. 2/3 truncates.
///
/// * H⁰ = 1
/// * H¹ = c
/// * H² = c² − cs2
/// * H³ = c³ − 3·cs2·c
pub fn hermite_1d(n: usize, c: f64, cs2: f64) -> f64 {
    match n {
        0 => 1.0,
        1 => c,
        2 => c * c - cs2,
        3 => c * (c * c - 3.0 * cs2),
        _ => panic!("hermite_1d supports orders 0..=3 (got {n})"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lattice::LatticeKind;

    #[test]
    fn gaussian_moments_reference_values() {
        let cs2 = 0.5;
        assert_eq!(gaussian_moment(cs2, [0, 0, 0]), 1.0);
        assert_eq!(gaussian_moment(cs2, [1, 0, 0]), 0.0);
        assert_eq!(gaussian_moment(cs2, [2, 0, 0]), cs2);
        assert_eq!(gaussian_moment(cs2, [4, 0, 0]), 3.0 * cs2 * cs2);
        assert_eq!(gaussian_moment(cs2, [2, 2, 0]), cs2 * cs2);
        assert_eq!(gaussian_moment(cs2, [6, 0, 0]), 15.0 * cs2.powi(3));
        assert_eq!(gaussian_moment(cs2, [4, 2, 0]), 3.0 * cs2.powi(3));
        assert_eq!(gaussian_moment(cs2, [2, 2, 2]), cs2.powi(3));
        assert_eq!(gaussian_moment(cs2, [3, 2, 0]), 0.0);
    }

    #[test]
    fn conventional_lattices_are_degree_five() {
        // All of D3Q15/19/27 satisfy fourth-order isotropy (degree-5
        // quadrature, odd degrees vanishing by inversion symmetry) but fail
        // at degree 6 — the structural reason "more neighbours" (D3Q27)
        // cannot substitute for the multi-speed D3Q39.
        assert_eq!(quadrature_degree(&Lattice::new(LatticeKind::D3Q15), 9), 5);
        assert_eq!(quadrature_degree(&Lattice::new(LatticeKind::D3Q19), 9), 5);
        assert_eq!(quadrature_degree(&Lattice::new(LatticeKind::D3Q27), 9), 5);
    }

    #[test]
    fn d3q39_is_degree_seven() {
        assert_eq!(quadrature_degree(&Lattice::new(LatticeKind::D3Q39), 9), 7);
    }

    #[test]
    fn supports_order_matches_paper_requirements() {
        // Paper §II: third-order truncation requires sixth-order isotropy,
        // second-order requires fourth-order.
        assert!(supports_order(&Lattice::new(LatticeKind::D3Q19), 2));
        assert!(!supports_order(&Lattice::new(LatticeKind::D3Q19), 3));
        assert!(!supports_order(&Lattice::new(LatticeKind::D3Q27), 3));
        assert!(supports_order(&Lattice::new(LatticeKind::D3Q39), 3));
        assert!(supports_order(&Lattice::new(LatticeKind::D3Q39), 2));
    }

    #[test]
    fn hermite_polynomials_are_quadrature_orthogonal_on_d3q39() {
        // Σ_i w_i H^m(c_ix) H^n(c_ix) = 0 for m≠n, m+n ≤ 6 — the property
        // that makes the truncated expansion's coefficients independent.
        let lat = Lattice::new(LatticeKind::D3Q39);
        let cs2 = lat.cs2();
        for m in 0..=3usize {
            for n in 0..=3usize {
                if m == n || m + n > 6 {
                    continue;
                }
                let s: f64 = lat
                    .velocities()
                    .iter()
                    .zip(lat.weights())
                    .map(|(c, w)| {
                        w * hermite_1d(m, c[0] as f64, cs2) * hermite_1d(n, c[0] as f64, cs2)
                    })
                    .sum();
                assert!(s.abs() < 1e-12, "H{m}·H{n} = {s}");
            }
        }
    }

    #[test]
    fn lattice_moment_agrees_with_manual_sum() {
        let lat = Lattice::new(LatticeKind::D3Q19);
        // Σ w cx² directly.
        let manual: f64 = lat
            .velocities()
            .iter()
            .zip(lat.weights())
            .map(|(c, w)| w * (c[0] * c[0]) as f64)
            .sum();
        assert!((lattice_moment(&lat, [2, 0, 0]) - manual).abs() < 1e-15);
    }
}
