//! The D3Q39 lattice — the paper's beyond-Navier-Stokes model.
//!
//! The 39-point, sixth-order-isotropic Gauss–Hermite quadrature of
//! Shan, Yuan & Chen (J. Fluid Mech. 550, 2006), as used by the paper for
//! finite-Knudsen flows. Shells (paper Table I, right half):
//!
//! | shell     | count | weight  | distance |
//! |-----------|-------|---------|----------|
//! | (0,0,0)   | 1     | 1/12    | 0        |
//! | (1,0,0)   | 6     | 1/12    | 1        |
//! | (1,1,1)   | 8     | 1/27    | √3       |
//! | (2,0,0)   | 6     | 2/135   | 2        |
//! | (2,2,0)   | 12    | 1/432¹  | 2√2      |
//! | (3,0,0)   | 6     | 1/1620  | 3        |
//!
//! with `c_s² = 2/3`. ¹ The paper's Table I misprints this weight as 1/142;
//! 1/432 is the Shan–Yuan–Chen value and the only one for which Σw = 1 and
//! Σw·c_α c_β = c_s² δ_αβ hold (unit-tested in `lattice::mod`).
//!
//! Because the (3,0,0) shell moves three planes per step, the fundamental
//! ghost-cell unit for this model is **k = 3** (see `Lattice::reach`).

/// Squared speed of sound.
pub const CS2: f64 = 2.0 / 3.0;

/// Weight of the rest velocity.
pub const W_REST: f64 = 1.0 / 12.0;
/// Weight of the (1,0,0) shell.
pub const W_100: f64 = 1.0 / 12.0;
/// Weight of the (1,1,1) shell.
pub const W_111: f64 = 1.0 / 27.0;
/// Weight of the (2,0,0) shell.
pub const W_200: f64 = 2.0 / 135.0;
/// Weight of the (2,2,0) shell (paper misprint: 1/142).
pub const W_220: f64 = 1.0 / 432.0;
/// Weight of the (3,0,0) shell.
pub const W_300: f64 = 1.0 / 1620.0;

/// Build `(cs2, velocities, weights)` with the rest velocity last.
pub(crate) fn tables() -> (f64, Vec<[i32; 3]>, Vec<f64>) {
    let mut v: Vec<[i32; 3]> = Vec::with_capacity(39);
    let mut w: Vec<f64> = Vec::with_capacity(39);

    let axis_shell = |m: i32, weight: f64, v: &mut Vec<[i32; 3]>, w: &mut Vec<f64>| {
        for a in 0..3 {
            for s in [1i32, -1] {
                let mut c = [0i32; 3];
                c[a] = s * m;
                v.push(c);
                w.push(weight);
            }
        }
    };

    // (±1,0,0) — 6 velocities.
    axis_shell(1, W_100, &mut v, &mut w);
    // (±1,±1,±1) — 8 velocities.
    for sx in [1i32, -1] {
        for sy in [1i32, -1] {
            for sz in [1i32, -1] {
                v.push([sx, sy, sz]);
                w.push(W_111);
            }
        }
    }
    // (±2,0,0) — 6 velocities.
    axis_shell(2, W_200, &mut v, &mut w);
    // (±2,±2,0) — 12 velocities over the three axis pairs.
    for (a, b) in [(0usize, 1usize), (0, 2), (1, 2)] {
        for sa in [1i32, -1] {
            for sb in [1i32, -1] {
                let mut c = [0i32; 3];
                c[a] = 2 * sa;
                c[b] = 2 * sb;
                v.push(c);
                w.push(W_220);
            }
        }
    }
    // (±3,0,0) — 6 velocities.
    axis_shell(3, W_300, &mut v, &mut w);
    // Rest velocity last (paper: "the 39th value is the lattice point itself").
    v.push([0, 0, 0]);
    w.push(W_REST);

    (CS2, v, w)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thirty_nine_velocities() {
        let (_, v, w) = tables();
        assert_eq!(v.len(), 39);
        assert_eq!(w.len(), 39);
    }

    #[test]
    fn shell_populations() {
        let (_, v, _) = tables();
        let count = |d2: i32| {
            v.iter()
                .filter(|c| c.iter().map(|x| x * x).sum::<i32>() == d2)
                .count()
        };
        assert_eq!(count(0), 1);
        assert_eq!(count(1), 6);
        assert_eq!(count(3), 8);
        assert_eq!(count(4), 6);
        assert_eq!(count(8), 12);
        assert_eq!(count(9), 6);
    }

    #[test]
    fn max_component_is_three() {
        let (_, v, _) = tables();
        let m = v.iter().flat_map(|c| c.iter().map(|x| x.abs())).max();
        assert_eq!(m, Some(3));
    }

    #[test]
    fn fourth_moment_isotropy_axis_vs_mixed() {
        // Σ w cx⁴ = 3 cs⁴ and Σ w cx²cy² = cs⁴ — sixth-order quadratures
        // satisfy these exactly; a direct spot check before the generic
        // Hermite machinery runs.
        let (cs2, v, w) = tables();
        let cs4 = cs2 * cs2;
        let x4: f64 = v
            .iter()
            .zip(&w)
            .map(|(c, w)| w * (c[0] as f64).powi(4))
            .sum();
        let x2y2: f64 = v
            .iter()
            .zip(&w)
            .map(|(c, w)| w * (c[0] as f64).powi(2) * (c[1] as f64).powi(2))
            .sum();
        assert!((x4 - 3.0 * cs4).abs() < 1e-13, "{x4}");
        assert!((x2y2 - cs4).abs() < 1e-13, "{x2y2}");
    }
}
