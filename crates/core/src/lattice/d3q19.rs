//! The D3Q19 lattice — the paper's continuum-flow (Navier–Stokes) model.
//!
//! 19 velocities: 6 face neighbours (distance 1), 12 edge neighbours
//! (distance √2) and the rest particle, with `c_s² = 1/3` and weights
//! 1/18, 1/36, 1/3 respectively (paper Table I, left half).

/// Squared speed of sound.
pub const CS2: f64 = 1.0 / 3.0;

/// Weight of the six first-neighbour (face) velocities.
pub const W_FACE: f64 = 1.0 / 18.0;
/// Weight of the twelve second-neighbour (edge) velocities.
pub const W_EDGE: f64 = 1.0 / 36.0;
/// Weight of the rest velocity.
pub const W_REST: f64 = 1.0 / 3.0;

/// Build `(cs2, velocities, weights)` with the rest velocity last.
pub(crate) fn tables() -> (f64, Vec<[i32; 3]>, Vec<f64>) {
    let mut v: Vec<[i32; 3]> = Vec::with_capacity(19);
    let mut w: Vec<f64> = Vec::with_capacity(19);

    // Face neighbours: permutations of (±1, 0, 0).
    for a in 0..3 {
        for s in [1i32, -1] {
            let mut c = [0i32; 3];
            c[a] = s;
            v.push(c);
            w.push(W_FACE);
        }
    }
    // Edge neighbours: (±1, ±1, 0) over the three axis pairs.
    for (a, b) in [(0usize, 1usize), (0, 2), (1, 2)] {
        for sa in [1i32, -1] {
            for sb in [1i32, -1] {
                let mut c = [0i32; 3];
                c[a] = sa;
                c[b] = sb;
                v.push(c);
                w.push(W_EDGE);
            }
        }
    }
    // Rest velocity last (paper: "the 19th value is the lattice point itself").
    v.push([0, 0, 0]);
    w.push(W_REST);

    (CS2, v, w)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nineteen_velocities() {
        let (_, v, w) = tables();
        assert_eq!(v.len(), 19);
        assert_eq!(w.len(), 19);
    }

    #[test]
    fn shell_populations() {
        let (_, v, _) = tables();
        let faces = v
            .iter()
            .filter(|c| c.iter().map(|x| x * x).sum::<i32>() == 1);
        let edges = v
            .iter()
            .filter(|c| c.iter().map(|x| x * x).sum::<i32>() == 2);
        assert_eq!(faces.count(), 6);
        assert_eq!(edges.count(), 12);
    }

    #[test]
    fn no_velocity_exceeds_second_neighbour() {
        let (_, v, _) = tables();
        assert!(v.iter().all(|c| c.iter().map(|x| x * x).sum::<i32>() <= 2));
    }
}
