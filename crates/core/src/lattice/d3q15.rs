//! The D3Q15 lattice (conventional family, smallest 3-D member).
//!
//! 6 face neighbours (w = 1/9), 8 corner neighbours (w = 1/72) and the rest
//! particle (w = 2/9), `c_s² = 1/3`. Fourth-order isotropic: supports the
//! second-order (Navier–Stokes) equilibrium only.

/// Squared speed of sound.
pub const CS2: f64 = 1.0 / 3.0;
/// Weight of the six face velocities.
pub const W_FACE: f64 = 1.0 / 9.0;
/// Weight of the eight corner velocities.
pub const W_CORNER: f64 = 1.0 / 72.0;
/// Weight of the rest velocity.
pub const W_REST: f64 = 2.0 / 9.0;

/// Build `(cs2, velocities, weights)` with the rest velocity last.
pub(crate) fn tables() -> (f64, Vec<[i32; 3]>, Vec<f64>) {
    let mut v: Vec<[i32; 3]> = Vec::with_capacity(15);
    let mut w: Vec<f64> = Vec::with_capacity(15);
    for a in 0..3 {
        for s in [1i32, -1] {
            let mut c = [0i32; 3];
            c[a] = s;
            v.push(c);
            w.push(W_FACE);
        }
    }
    for sx in [1i32, -1] {
        for sy in [1i32, -1] {
            for sz in [1i32, -1] {
                v.push([sx, sy, sz]);
                w.push(W_CORNER);
            }
        }
    }
    v.push([0, 0, 0]);
    w.push(W_REST);
    (CS2, v, w)
}

#[cfg(test)]
mod tests {
    #[test]
    fn fifteen_velocities_weights_sum() {
        let (_, v, w) = super::tables();
        assert_eq!(v.len(), 15);
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-15);
    }
}
