//! BGK collision operator (paper §II) and the Guo body-force extension.
//!
//! The paper uses the Bhatnagar–Gross–Krook single-relaxation-time operator:
//! `f ← f − ω Δt (f − f^eq)` with `ω = 1/τ`, giving kinematic viscosity
//! `ν = c_s² (τ − ½)` in lattice units. The performance experiments need
//! nothing else; the physics examples (force-driven channel and microchannel
//! flows) additionally use Guo et al.'s second-order forcing term, which is
//! the standard way to drive a periodic Poiseuille flow without inflow
//! boundaries.

use crate::error::{Error, Result};
use crate::lattice::Lattice;

/// BGK single-relaxation-time collision parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bgk {
    tau: f64,
}

impl Bgk {
    /// Create from the relaxation time `τ` (must exceed ½ for positive
    /// viscosity and linear stability).
    pub fn new(tau: f64) -> Result<Self> {
        if !(tau > 0.5) || !tau.is_finite() {
            return Err(Error::BadParameter(format!(
                "BGK requires tau > 0.5, got {tau}"
            )));
        }
        Ok(Self { tau })
    }

    /// Create from a kinematic viscosity `ν` (lattice units) on a lattice
    /// with sound speed squared `cs2`: `τ = ν/c_s² + ½`.
    pub fn from_viscosity(nu: f64, cs2: f64) -> Result<Self> {
        if !(nu > 0.0) || !nu.is_finite() {
            return Err(Error::BadParameter(format!(
                "viscosity must be positive, got {nu}"
            )));
        }
        Self::new(nu / cs2 + 0.5)
    }

    /// Relaxation time τ.
    #[inline]
    pub fn tau(&self) -> f64 {
        self.tau
    }

    /// Relaxation rate ω = 1/τ.
    #[inline]
    pub fn omega(&self) -> f64 {
        1.0 / self.tau
    }

    /// Kinematic viscosity `ν = c_s²(τ − ½)` on a lattice with the given `cs2`.
    #[inline]
    pub fn viscosity(&self, cs2: f64) -> f64 {
        cs2 * (self.tau - 0.5)
    }
}

/// One BGK relaxation: `f + ω (f^eq − f)`.
#[inline(always)]
pub fn bgk_relax(f: f64, feq: f64, omega: f64) -> f64 {
    f + omega * (feq - f)
}

/// A constant body force per unit mass (lattice units).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct BodyForce {
    /// Force vector.
    pub g: [f64; 3],
}

impl BodyForce {
    /// Force along +x (the channel-flow driver used by the examples).
    pub fn along_x(g: f64) -> Self {
        Self { g: [g, 0.0, 0.0] }
    }

    /// True if the force is exactly zero.
    pub fn is_zero(&self) -> bool {
        self.g == [0.0; 3]
    }
}

/// Guo et al. source term for velocity `i`, to be *added* to the
/// post-collision population:
///
/// `S_i = (1 − ω/2) w_i [ (c−u)/c_s² + (c·u) c / c_s⁴ ] · G`
///
/// Used together with the half-force velocity shift
/// `u = (Σ f c + G/2)/ρ` (see [`half_force_velocity`]).
#[inline]
pub fn guo_source_i(lat: &Lattice, i: usize, u: [f64; 3], g: [f64; 3], omega: f64) -> f64 {
    let cs2 = lat.cs2();
    let c = lat.velocities()[i];
    let cf = [c[0] as f64, c[1] as f64, c[2] as f64];
    let cu = cf[0] * u[0] + cf[1] * u[1] + cf[2] * u[2];
    let mut s = 0.0;
    for a in 0..3 {
        s += ((cf[a] - u[a]) / cs2 + cu * cf[a] / (cs2 * cs2)) * g[a];
    }
    (1.0 - 0.5 * omega) * lat.weights()[i] * s
}

/// The force-shifted macroscopic velocity `u = (Σ f c + G/2) / ρ` required
/// by the Guo scheme for second-order accuracy.
#[inline]
pub fn half_force_velocity(momentum: [f64; 3], rho: f64, g: [f64; 3]) -> [f64; 3] {
    let inv = 1.0 / rho;
    [
        (momentum[0] + 0.5 * g[0]) * inv,
        (momentum[1] + 0.5 * g[1]) * inv,
        (momentum[2] + 0.5 * g[2]) * inv,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lattice::LatticeKind;

    #[test]
    fn tau_must_exceed_half() {
        assert!(Bgk::new(0.5).is_err());
        assert!(Bgk::new(0.49).is_err());
        assert!(Bgk::new(f64::NAN).is_err());
        assert!(Bgk::new(0.51).is_ok());
    }

    #[test]
    fn viscosity_round_trip() {
        let cs2 = 1.0 / 3.0;
        let b = Bgk::from_viscosity(0.02, cs2).unwrap();
        assert!((b.viscosity(cs2) - 0.02).abs() < 1e-15);
        assert!((b.tau() - (0.02 / cs2 + 0.5)).abs() < 1e-15);
        assert!((b.omega() * b.tau() - 1.0).abs() < 1e-15);
    }

    #[test]
    fn relax_moves_toward_equilibrium() {
        let f = 1.0;
        let feq = 2.0;
        assert!((bgk_relax(f, feq, 1.0) - feq).abs() < 1e-15); // omega=1 lands on feq
        let half = bgk_relax(f, feq, 0.5);
        assert!((half - 1.5).abs() < 1e-15);
    }

    #[test]
    fn guo_source_conserves_mass_and_injects_momentum() {
        for kind in [LatticeKind::D3Q19, LatticeKind::D3Q39] {
            let lat = Lattice::new(kind);
            let omega = 1.25;
            let u = [0.02, -0.01, 0.03];
            let g = [1e-4, 2e-4, -5e-5];
            let m0: f64 = (0..lat.q())
                .map(|i| guo_source_i(&lat, i, u, g, omega))
                .sum();
            assert!(m0.abs() < 1e-16, "{kind:?}: mass source {m0}");
            for a in 0..3 {
                let m1: f64 = (0..lat.q())
                    .map(|i| guo_source_i(&lat, i, u, g, omega) * lat.velocities()[i][a] as f64)
                    .sum();
                let want = (1.0 - 0.5 * omega) * g[a];
                assert!(
                    (m1 - want).abs() < 1e-15,
                    "{kind:?} axis {a}: {m1} vs {want}"
                );
            }
        }
    }

    #[test]
    fn half_force_velocity_shifts_by_g_over_two_rho() {
        let u = half_force_velocity([0.2, 0.0, 0.0], 2.0, [0.1, 0.0, 0.0]);
        assert!((u[0] - (0.2 + 0.05) / 2.0).abs() < 1e-15);
        assert_eq!(u[1], 0.0);
    }

    #[test]
    fn body_force_helpers() {
        let f = BodyForce::along_x(1e-5);
        assert_eq!(f.g, [1e-5, 0.0, 0.0]);
        assert!(!f.is_zero());
        assert!(BodyForce::default().is_zero());
    }
}
