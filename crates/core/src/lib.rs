//! # lbm-core
//!
//! Core lattice Boltzmann machinery for the reproduction of
//! *“Performance Analysis of the Lattice Boltzmann Model Beyond Navier-Stokes”*
//! (Randles, Kale, Hammond, Gropp, Kaxiras — IPDPS 2013).
//!
//! This crate contains everything that runs *inside* one rank:
//!
//! * the discrete velocity models ([`lattice`]): the conventional
//!   [`lattice::d3q19`] model recovering Navier–Stokes hydrodynamics and the
//!   extended 39-velocity Gauss–Hermite model [`lattice::d3q39`] that captures
//!   finite-Knudsen (beyond Navier–Stokes) physics, plus D3Q15/D3Q27 for the
//!   conventional family the paper's introduction references;
//! * truncated Hermite [`equilibrium`] distributions at second order
//!   (paper Eq. 2) and third order (paper Eq. 3);
//! * the BGK [`collision`] operator (with a Guo body-force extension used by
//!   the channel-flow examples);
//! * the structure-of-arrays distribution storage ([`field`]) in the paper's
//!   collision-optimized layout `f[velocity][x][y][z]` over 64-byte aligned
//!   memory ([`align`]);
//! * the 1-D [`domain`] decomposition and ghost-region bookkeeping;
//! * the full optimization ladder of compute kernels ([`kernels`]):
//!   `Orig → GC → DH → CF → LoBr → SIMD` exactly mirroring §V of the paper
//!   (the `NB-C` and `GC-C` rungs are communication-schedule changes and live
//!   in `lbm-sim`);
//! * wall [`boundary`] conditions (half-way/full-way bounce-back, moving
//!   wall, Maxwell diffuse reflection for finite-Kn microchannels);
//! * macroscopic [`moments`] including the higher kinetic moments that the
//!   extended model resolves;
//! * [`knudsen`] number relations, [`analytic`] reference solutions and
//!   [`perf`] counters in the paper's MFlup/s metric.
//!
//! The crate is deliberately framework-free: kernels operate on plain slabs
//! and index ranges so that `lbm-sim` can drive them serially, under rayon
//! threading, or inside the deep-halo distributed schedule.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod align;
pub mod analytic;
pub mod boundary;
pub mod collision;
pub mod domain;
pub mod equilibrium;
pub mod error;
pub mod field;
pub mod geometry;
pub mod index;
pub mod init;
pub mod kernels;
pub mod knudsen;
pub mod lattice;
pub mod moments;
pub mod perf;
pub mod snapshot;
pub mod validate;

pub use collision::Bgk;
pub use domain::{Decomp1d, Subdomain};
pub use equilibrium::EqOrder;
pub use error::{Error, Result};
pub use field::{DistField, ScalarField, StorageMode, VectorField};
pub use geometry::{Geometry, SparseTiles};
pub use index::Dim3;
pub use kernels::{KernelCtx, OptLevel};
pub use lattice::{Lattice, LatticeKind};

/// Convenience prelude: `use lbm_core::prelude::*;`.
pub mod prelude {
    pub use crate::collision::Bgk;
    pub use crate::domain::{Decomp1d, Subdomain};
    pub use crate::equilibrium::EqOrder;
    pub use crate::field::{DistField, ScalarField, StorageMode, VectorField};
    pub use crate::geometry::Geometry;
    pub use crate::index::Dim3;
    pub use crate::kernels::{KernelCtx, OptLevel};
    pub use crate::lattice::{Lattice, LatticeKind};
    pub use crate::moments::Moments;
    pub use crate::perf::PerfCounters;
}
