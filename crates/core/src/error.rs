//! Error type shared by the core crate.

use std::fmt;

/// Errors produced by configuration and setup paths of the core crate.
///
/// Hot paths (kernels) never return `Result`; invalid geometry is rejected at
/// construction time so the inner loops can stay branch-free.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A domain dimension was zero or otherwise unusable.
    BadDimensions(String),
    /// The decomposition does not fit the domain (e.g. more ranks than planes).
    BadDecomposition(String),
    /// A ghost/halo request is invalid (e.g. depth 0, or exceeds the subdomain).
    BadHalo(String),
    /// A physical parameter is out of range (e.g. `tau <= 0.5`).
    BadParameter(String),
    /// Mismatched operands (field shapes, lattice sizes, …).
    Mismatch(String),
    /// A serialized artifact (checkpoint, snapshot) failed to decode.
    Corrupt(String),
    /// An underlying I/O operation failed (message carries the OS error).
    Io(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::BadDimensions(m) => write!(f, "bad dimensions: {m}"),
            Error::BadDecomposition(m) => write!(f, "bad decomposition: {m}"),
            Error::BadHalo(m) => write!(f, "bad halo: {m}"),
            Error::BadParameter(m) => write!(f, "bad parameter: {m}"),
            Error::Mismatch(m) => write!(f, "mismatch: {m}"),
            Error::Corrupt(m) => write!(f, "corrupt data: {m}"),
            Error::Io(m) => write!(f, "i/o error: {m}"),
        }
    }
}

impl std::error::Error for Error {}

/// Result alias for the core crate.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_category_and_message() {
        let e = Error::BadHalo("depth 0".into());
        let s = e.to_string();
        assert!(s.contains("bad halo"), "{s}");
        assert!(s.contains("depth 0"), "{s}");
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&Error::BadParameter("tau".into()));
    }

    #[test]
    fn errors_compare_by_value() {
        assert_eq!(Error::Mismatch("a".into()), Error::Mismatch("a".into()));
        assert_ne!(
            Error::Mismatch("a".into()),
            Error::BadDimensions("a".into())
        );
    }
}
