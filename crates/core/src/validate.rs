//! Error norms and comparison helpers for validation runs.

/// Relative L2 error `‖a − b‖₂ / ‖b‖₂` (b is the reference).
pub fn l2_error(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "l2_error: length mismatch");
    let mut num = 0.0;
    let mut den = 0.0;
    for (x, y) in a.iter().zip(b) {
        num += (x - y) * (x - y);
        den += y * y;
    }
    if den == 0.0 {
        num.sqrt()
    } else {
        (num / den).sqrt()
    }
}

/// Maximum absolute difference.
pub fn max_abs_error(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "max_abs_error: length mismatch");
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

/// Observed order of convergence from errors at two resolutions
/// (`h` halved: `log2(e_coarse/e_fine)`).
pub fn convergence_order(e_coarse: f64, e_fine: f64) -> f64 {
    (e_coarse / e_fine).log2()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn l2_of_identical_is_zero() {
        let a = [1.0, 2.0, 3.0];
        assert_eq!(l2_error(&a, &a), 0.0);
    }

    #[test]
    fn l2_is_relative() {
        let a = [2.0, 0.0];
        let b = [1.0, 0.0];
        assert!((l2_error(&a, &b) - 1.0).abs() < 1e-15);
    }

    #[test]
    fn l2_handles_zero_reference() {
        let a = [3.0, 4.0];
        let b = [0.0, 0.0];
        assert!((l2_error(&a, &b) - 5.0).abs() < 1e-15);
    }

    #[test]
    fn max_abs_picks_worst() {
        let a = [1.0, 5.0, 2.0];
        let b = [1.0, 2.0, 2.5];
        assert_eq!(max_abs_error(&a, &b), 3.0);
    }

    #[test]
    fn second_order_convergence_reads_two() {
        assert!((convergence_order(4e-3, 1e-3) - 2.0).abs() < 1e-12);
    }
}
