//! Binary codec for [`DistField`] snapshots — the payload layer of the
//! checkpoint/restart format.
//!
//! A snapshot must restore a trajectory *bitwise*, so the populations are
//! written as raw little-endian `f64` bits (no text round trip) behind a
//! fixed-layout header, and guarded by an FNV-1a checksum so a truncated or
//! bit-rotted file is rejected instead of silently resuming garbage:
//!
//! ```text
//! u32  codec version        (FIELD_CODEC_VERSION)
//! u32  q                    (velocity count)
//! u64  nx, ny, nz           (owned dims)
//! u64  halo                 (ghost planes per x side)
//! u64  n                    (f64 count = q · alloc_len)
//! n×f64 payload             (slab-major, the field's memory order)
//! u64  FNV-1a over the payload bytes
//! ```
//!
//! The container format (file magic, config header, per-rank framing) lives
//! with the simulation layer; this module only moves fields to and from
//! bytes.

use crate::error::{Error, Result};
use crate::field::DistField;
use crate::index::Dim3;

/// Version of the field byte layout (bump on any layout change).
pub const FIELD_CODEC_VERSION: u32 = 1;

const FNV_OFFSET: u64 = 0xcbf29ce484222325;
const FNV_PRIME: u64 = 0x100000001b3;

/// FNV-1a over a byte slice (the snapshot integrity check).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn take<const N: usize>(buf: &[u8], pos: &mut usize, what: &str) -> Result<[u8; N]> {
    let end = pos
        .checked_add(N)
        .filter(|&e| e <= buf.len())
        .ok_or_else(|| Error::Corrupt(format!("snapshot truncated reading {what}")))?;
    let mut a = [0u8; N];
    a.copy_from_slice(&buf[*pos..end]);
    *pos = end;
    Ok(a)
}

fn take_u32(buf: &[u8], pos: &mut usize, what: &str) -> Result<u32> {
    Ok(u32::from_le_bytes(take::<4>(buf, pos, what)?))
}

fn take_u64(buf: &[u8], pos: &mut usize, what: &str) -> Result<u64> {
    Ok(u64::from_le_bytes(take::<8>(buf, pos, what)?))
}

/// Append the binary encoding of `f` (header + raw payload + checksum).
pub fn encode_field(f: &DistField, out: &mut Vec<u8>) {
    let owned = f.owned_dims();
    put_u32(out, FIELD_CODEC_VERSION);
    put_u32(out, f.q() as u32);
    put_u64(out, owned.nx as u64);
    put_u64(out, owned.ny as u64);
    put_u64(out, owned.nz as u64);
    put_u64(out, f.halo() as u64);
    // Slab by slab: the in-memory anti-aliasing pad between slabs is a
    // layout detail, not state, so the payload stays `q · alloc_len`
    // points regardless of the stride the allocator chose.
    let n = f.q() * f.slab_len();
    put_u64(out, n as u64);
    let start = out.len();
    out.reserve(n * 8);
    for i in 0..f.q() {
        for v in f.slab(i) {
            out.extend_from_slice(&v.to_le_bytes());
        }
    }
    let sum = fnv1a(&out[start..]);
    put_u64(out, sum);
}

/// One field's parsed frame header plus the byte range of its payload.
struct FieldFrame {
    q: usize,
    owned: Dim3,
    halo: usize,
    /// Payload byte range inside the buffer (`n` f64s, little-endian).
    payload: std::ops::Range<usize>,
}

/// Read and cross-check one frame header starting at `*pos*`, leaving
/// `*pos` at the first payload byte. Every declared size is validated with
/// checked arithmetic *and* bounded by the remaining buffer before anything
/// trusts it, so a bit-flipped dimension can never trigger a huge
/// allocation — it is [`Error::Corrupt`] like any other damage.
fn read_frame(buf: &[u8], pos: &mut usize) -> Result<FieldFrame> {
    let version = take_u32(buf, pos, "codec version")?;
    if version != FIELD_CODEC_VERSION {
        return Err(Error::Corrupt(format!(
            "field codec version {version} (supported: {FIELD_CODEC_VERSION})"
        )));
    }
    let q = take_u32(buf, pos, "q")? as usize;
    let nx = take_u64(buf, pos, "nx")? as usize;
    let ny = take_u64(buf, pos, "ny")? as usize;
    let nz = take_u64(buf, pos, "nz")? as usize;
    let halo = take_u64(buf, pos, "halo")? as usize;
    let n = take_u64(buf, pos, "payload length")? as usize;
    // Bound `n` by the buffer first: payload bytes plus trailing checksum
    // must fit in what is actually there.
    let bytes = n
        .checked_mul(8)
        .and_then(|b| b.checked_add(8))
        .and_then(|b| pos.checked_add(b))
        .filter(|&end| end <= buf.len())
        .map(|_| n * 8)
        .ok_or_else(|| Error::Corrupt("snapshot truncated reading payload".into()))?;
    // Then require the declared shape to reproduce exactly that length.
    let expected = halo
        .checked_mul(2)
        .and_then(|h2| nx.checked_add(h2))
        .and_then(|ax| q.checked_mul(ax))
        .and_then(|v| v.checked_mul(ny))
        .and_then(|v| v.checked_mul(nz));
    if expected != Some(n) {
        return Err(Error::Corrupt(format!(
            "payload length {n} does not match {q}×({nx}+2·{halo})×{ny}×{nz}"
        )));
    }
    let payload = *pos..*pos + bytes;
    *pos = payload.end;
    Ok(FieldFrame {
        q,
        owned: Dim3::new(nx, ny, nz),
        halo,
        payload,
    })
}

/// Verify the trailing checksum of a frame whose payload is `payload`.
fn check_sum(buf: &[u8], pos: &mut usize, payload: &std::ops::Range<usize>) -> Result<()> {
    let want = fnv1a(&buf[payload.clone()]);
    let got = take_u64(buf, pos, "checksum")?;
    if got != want {
        return Err(Error::Corrupt(format!(
            "payload checksum mismatch: stored {got:#018x}, computed {want:#018x}"
        )));
    }
    Ok(())
}

/// Decode one field starting at `*pos`, advancing `*pos` past it. The
/// payload is restored bit-for-bit; version, shape and checksum mismatches
/// are rejected as [`Error::Corrupt`].
pub fn decode_field(buf: &[u8], pos: &mut usize) -> Result<DistField> {
    let frame = read_frame(buf, pos)?;
    let mut f = DistField::new(frame.q, frame.owned, frame.halo)?;
    debug_assert_eq!(f.q() * f.slab_len() * 8, frame.payload.len());
    let payload = &buf[frame.payload.clone()];
    let mut chunks = payload.chunks_exact(8);
    for i in 0..frame.q {
        for v in f.slab_mut(i) {
            let chunk = chunks.next().expect("payload length checked by frame");
            *v = f64::from_le_bytes(chunk.try_into().expect("chunk of 8"));
        }
    }
    check_sum(buf, pos, &frame.payload)?;
    Ok(f)
}

/// Walk one field frame starting at `*pos` and verify its framing and
/// FNV-1a checksum *without* allocating a [`DistField`]. This is the cheap
/// integrity probe behind checkpoint validation: callers can scan a whole
/// container for damage before committing to a resume.
pub fn validate_field(buf: &[u8], pos: &mut usize) -> Result<()> {
    let frame = read_frame(buf, pos)?;
    check_sum(buf, pos, &frame.payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DistField {
        let mut f = DistField::new(3, Dim3::new(4, 2, 2), 1).unwrap();
        for (i, v) in f.as_mut_slice().iter_mut().enumerate() {
            // Awkward bit patterns: subnormals, negatives, non-dyadic.
            *v = (i as f64 + 0.1) * if i % 2 == 0 { 1.0 } else { -1e-310 };
        }
        f
    }

    #[test]
    fn round_trip_is_bitwise() {
        let f = sample();
        let mut buf = Vec::new();
        encode_field(&f, &mut buf);
        let mut pos = 0;
        let g = decode_field(&buf, &mut pos).unwrap();
        assert_eq!(pos, buf.len());
        assert_eq!(g.q(), f.q());
        assert_eq!(g.owned_dims(), f.owned_dims());
        assert_eq!(g.halo(), f.halo());
        for i in 0..f.q() {
            for (a, b) in f.slab(i).iter().zip(g.slab(i)) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn multiple_fields_concatenate() {
        let f = sample();
        let mut buf = Vec::new();
        encode_field(&f, &mut buf);
        encode_field(&f, &mut buf);
        let mut pos = 0;
        let a = decode_field(&buf, &mut pos).unwrap();
        let b = decode_field(&buf, &mut pos).unwrap();
        assert_eq!(pos, buf.len());
        assert_eq!(a.max_abs_diff_owned(&b), 0.0);
    }

    #[test]
    fn corruption_is_detected() {
        let f = sample();
        let mut buf = Vec::new();
        encode_field(&f, &mut buf);
        // Flip one payload bit.
        let mid = buf.len() / 2;
        buf[mid] ^= 1;
        let mut pos = 0;
        assert!(matches!(
            decode_field(&buf, &mut pos),
            Err(Error::Corrupt(_))
        ));
    }

    #[test]
    fn truncation_is_detected() {
        let f = sample();
        let mut buf = Vec::new();
        encode_field(&f, &mut buf);
        buf.truncate(buf.len() - 9);
        let mut pos = 0;
        assert!(matches!(
            decode_field(&buf, &mut pos),
            Err(Error::Corrupt(_))
        ));
    }

    #[test]
    fn validate_walks_without_allocating() {
        let f = sample();
        let mut buf = Vec::new();
        encode_field(&f, &mut buf);
        encode_field(&f, &mut buf);
        let mut pos = 0;
        validate_field(&buf, &mut pos).unwrap();
        validate_field(&buf, &mut pos).unwrap();
        assert_eq!(pos, buf.len());
        let mid = buf.len() / 2;
        buf[mid] ^= 0x10;
        let mut pos = 0;
        let a = validate_field(&buf, &mut pos);
        let b = validate_field(&buf, &mut pos);
        assert!(
            a.is_err() || b.is_err(),
            "a flipped payload bit must fail validation"
        );
    }

    #[test]
    fn absurd_declared_dims_are_corrupt_not_fatal() {
        // A bit flip in a dimension field must be rejected *before* any
        // allocation is sized from it — no OOM, no abort, just Corrupt.
        let f = sample();
        let mut clean = Vec::new();
        encode_field(&f, &mut clean);
        for bit in [40usize, 62, 63] {
            let mut buf = clean.clone();
            // nx starts at byte 8 (version u32 + q u32).
            buf[8 + bit / 8] ^= 1 << (bit % 8);
            let mut pos = 0;
            assert!(
                matches!(decode_field(&buf, &mut pos), Err(Error::Corrupt(_))),
                "nx bit {bit}"
            );
            let mut pos = 0;
            assert!(matches!(
                validate_field(&buf, &mut pos),
                Err(Error::Corrupt(_))
            ));
        }
    }

    #[test]
    fn wrong_version_is_rejected() {
        let f = sample();
        let mut buf = Vec::new();
        encode_field(&f, &mut buf);
        buf[0] = 99;
        let mut pos = 0;
        assert!(matches!(
            decode_field(&buf, &mut pos),
            Err(Error::Corrupt(_))
        ));
    }
}
