//! 64-byte aligned `f64` buffers with huge-page backing for large fields.
//!
//! The paper's SIMD rung (double-hummer on BG/P, QPX on BG/Q) requires 16- and
//! 32-byte aligned loads; AVX2 prefers 32 and a cache line is 64, so the slabs
//! backing [`crate::field::DistField`] are allocated on 64-byte boundaries.
//! Alignment also keeps every velocity slab starting on a fresh cache line,
//! which matters for the stream kernel's slab-at-a-time copies.
//!
//! Buffers of at least [`HUGE_BYTES`] are additionally aligned to a 2 MiB
//! boundary and advised towards transparent huge pages before first touch.
//! With 4 KiB pages only the low 12 address bits survive virtual→physical
//! translation, so which L2 sets two slabs collide in is decided by page
//! allocation luck and varies run to run; 2 MiB pages extend the identity
//! mapping to bit 20, making the cache-set geometry of a field deterministic
//! and letting the anti-aliasing slab pad (see [`crate::field`]) govern L2 as
//! well as L1. The advice is best-effort: on kernels without transparent huge
//! pages the syscall fails silently and plain pages are used.

use std::alloc::{alloc, dealloc, handle_alloc_error, Layout};
use std::ops::{Deref, DerefMut};

/// Cache-line alignment used for all numeric slabs (bytes).
pub const ALIGN: usize = 64;

/// Buffers of at least this many bytes are 2 MiB-aligned and madvised to
/// transparent huge pages (the x86-64 huge page size).
pub const HUGE_BYTES: usize = 2 * 1024 * 1024;

/// Best-effort `madvise(MADV_HUGEPAGE)` on `[ptr, ptr+bytes)`.
///
/// Issued as a raw syscall so the core crate stays dependency-free; advisory
/// only, so a failing or unsupported call changes nothing but performance.
#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
fn advise_huge(ptr: *mut u8, bytes: usize) {
    const SYS_MADVISE: usize = 28;
    const MADV_HUGEPAGE: usize = 14;
    let ret: isize;
    // SAFETY: madvise on an owned, mapped range; advisory semantics mean the
    // kernel either applies the hint or returns an error we ignore.
    unsafe {
        std::arch::asm!(
            "syscall",
            inlateout("rax") SYS_MADVISE => ret,
            in("rdi") ptr,
            in("rsi") bytes,
            in("rdx") MADV_HUGEPAGE,
            out("rcx") _,
            out("r11") _,
            options(nostack),
        );
    }
    let _ = ret;
}

#[cfg(not(all(target_os = "linux", target_arch = "x86_64")))]
fn advise_huge(_ptr: *mut u8, _bytes: usize) {}

/// A fixed-length, zero-initialised, 64-byte aligned `f64` buffer.
///
/// Unlike `Vec<f64>` this cannot grow; the length is fixed at allocation
/// time, matching the lifetime of a simulation field. Dereferences to
/// `[f64]`, so all slice APIs apply.
///
/// ```
/// use lbm_core::align::AlignedBuf;
/// let mut b = AlignedBuf::new(1024);
/// assert_eq!(b.len(), 1024);
/// assert_eq!(b.as_ptr() as usize % 64, 0);
/// b[3] = 2.5;
/// assert_eq!(b.iter().sum::<f64>(), 2.5);
/// ```
pub struct AlignedBuf {
    ptr: *mut f64,
    len: usize,
}

// SAFETY: AlignedBuf owns its allocation exclusively, like Box<[f64]>.
unsafe impl Send for AlignedBuf {}
// SAFETY: &AlignedBuf only allows shared reads of plain floats.
unsafe impl Sync for AlignedBuf {}

impl AlignedBuf {
    /// Allocate a zeroed buffer of `len` doubles on a 64-byte boundary.
    ///
    /// `len == 0` is allowed and performs no allocation.
    ///
    /// # Panics
    /// Panics (via `handle_alloc_error`) if the allocator fails.
    pub fn new(len: usize) -> Self {
        if len == 0 {
            return Self {
                ptr: std::ptr::NonNull::<f64>::dangling().as_ptr(),
                len: 0,
            };
        }
        let layout = Self::layout(len);
        // SAFETY: layout has non-zero size (len > 0) and valid alignment.
        let raw = unsafe { alloc(layout) };
        if raw.is_null() {
            handle_alloc_error(layout);
        }
        // Advise huge pages *before* first touch: the zeroing pass below then
        // faults the pages in under the hint, which is when the kernel decides
        // the page size.
        if layout.size() >= HUGE_BYTES {
            advise_huge(raw, layout.size());
        }
        // SAFETY: `raw` is a live allocation of `layout.size()` bytes.
        unsafe { std::ptr::write_bytes(raw, 0, layout.size()) };
        Self {
            ptr: raw.cast::<f64>(),
            len,
        }
    }

    fn layout(len: usize) -> Layout {
        let bytes = len * std::mem::size_of::<f64>();
        let align = if bytes >= HUGE_BYTES {
            HUGE_BYTES
        } else {
            ALIGN
        };
        Layout::from_size_align(bytes, align).expect("aligned layout overflow")
    }

    /// Number of doubles in the buffer.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the buffer holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Set every element to `v`.
    pub fn fill_with_value(&mut self, v: f64) {
        self.as_mut_slice().fill(v);
    }

    /// Shared slice view.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        // SAFETY: ptr/len describe a live, initialised allocation.
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }

    /// Mutable slice view.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        // SAFETY: ptr/len describe a live allocation owned uniquely by self.
        unsafe { std::slice::from_raw_parts_mut(self.ptr, self.len) }
    }
}

impl Drop for AlignedBuf {
    fn drop(&mut self) {
        if self.len != 0 {
            // SAFETY: allocated in `new` with the identical layout.
            unsafe { dealloc(self.ptr.cast::<u8>(), Self::layout(self.len)) }
        }
    }
}

impl Deref for AlignedBuf {
    type Target = [f64];
    #[inline]
    fn deref(&self) -> &[f64] {
        self.as_slice()
    }
}

impl DerefMut for AlignedBuf {
    #[inline]
    fn deref_mut(&mut self) -> &mut [f64] {
        self.as_mut_slice()
    }
}

impl Clone for AlignedBuf {
    fn clone(&self) -> Self {
        let mut out = Self::new(self.len);
        out.as_mut_slice().copy_from_slice(self.as_slice());
        out
    }
}

impl std::fmt::Debug for AlignedBuf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "AlignedBuf(len={}, align={})", self.len, ALIGN)
    }
}

impl PartialEq for AlignedBuf {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocation_is_aligned_and_zeroed() {
        for len in [1usize, 7, 64, 1023, 4096] {
            let b = AlignedBuf::new(len);
            assert_eq!(b.as_ptr() as usize % ALIGN, 0, "len={len}");
            assert_eq!(b.len(), len);
            assert!(b.iter().all(|&x| x == 0.0));
        }
    }

    #[test]
    fn huge_allocations_are_two_mebibyte_aligned_and_zeroed() {
        // One double past the threshold so layout().size() >= HUGE_BYTES.
        let len = HUGE_BYTES / std::mem::size_of::<f64>();
        let b = AlignedBuf::new(len);
        assert_eq!(b.as_ptr() as usize % HUGE_BYTES, 0);
        assert!(b.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn zero_length_buffer_is_fine() {
        let b = AlignedBuf::new(0);
        assert!(b.is_empty());
        assert_eq!(b.as_slice(), &[] as &[f64]);
        let c = b.clone();
        assert!(c.is_empty());
    }

    #[test]
    fn clone_copies_contents_to_new_allocation() {
        let mut a = AlignedBuf::new(128);
        for (i, v) in a.iter_mut().enumerate() {
            *v = i as f64;
        }
        let b = a.clone();
        assert_eq!(a, b);
        assert_ne!(a.as_ptr(), b.as_ptr());
    }

    #[test]
    fn fill_with_value_sets_everything() {
        let mut a = AlignedBuf::new(100);
        a.fill_with_value(3.25);
        assert!(a.iter().all(|&x| x == 3.25));
    }

    #[test]
    fn deref_mut_allows_slice_ops() {
        let mut a = AlignedBuf::new(10);
        a[9] = 1.0;
        a.swap(0, 9);
        assert_eq!(a[0], 1.0);
        assert_eq!(a[9], 0.0);
    }

    #[test]
    fn send_sync_bounds_hold() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<AlignedBuf>();
    }
}
