//! 1-D domain decomposition (paper §IV).
//!
//! The paper deliberately restricts the study to a cubic, periodic fluid
//! volume decomposed along one dimension so the ghost-cell-depth analysis is
//! not confounded by boundary handling. We mirror that: the global box is
//! cut into contiguous x-slabs, one per rank, with left/right periodic
//! neighbours.

use crate::error::{Error, Result};
use crate::index::Dim3;

/// A 1-D (x-axis) decomposition of a global periodic box over `ranks` ranks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Decomp1d {
    /// Global domain extents.
    pub global: Dim3,
    /// Number of ranks.
    pub ranks: usize,
}

impl Decomp1d {
    /// Create a decomposition; every rank must receive at least one plane.
    pub fn new(global: Dim3, ranks: usize) -> Result<Self> {
        if global.is_empty() {
            return Err(Error::BadDimensions(format!(
                "empty global domain {global:?}"
            )));
        }
        if ranks == 0 || ranks > global.nx {
            return Err(Error::BadDecomposition(format!(
                "need 1..=nx ranks (nx={}, ranks={ranks})",
                global.nx
            )));
        }
        Ok(Self { global, ranks })
    }

    /// Subdomain owned by `rank` (balanced split: the first `nx % ranks`
    /// ranks get one extra plane).
    pub fn subdomain(&self, rank: usize) -> Subdomain {
        assert!(rank < self.ranks, "rank {rank} out of {}", self.ranks);
        let base = self.global.nx / self.ranks;
        let extra = self.global.nx % self.ranks;
        let nx = base + usize::from(rank < extra);
        let x_start = rank * base + rank.min(extra);
        Subdomain {
            global: self.global,
            rank,
            ranks: self.ranks,
            x_start,
            nx,
        }
    }

    /// All subdomains in rank order.
    pub fn subdomains(&self) -> Vec<Subdomain> {
        (0..self.ranks).map(|r| self.subdomain(r)).collect()
    }

    /// The paper's “lattice points per processor” ratio **R** (Table III/IV):
    /// planes of the decomposed dimension per rank (they sweep “the size of
    /// the dimension being partitioned” and divide by processor count).
    pub fn points_per_rank(&self) -> f64 {
        self.global.nx as f64 / self.ranks as f64
    }
}

/// The contiguous x-slab of the global box owned by one rank.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Subdomain {
    /// Global extents.
    pub global: Dim3,
    /// This rank.
    pub rank: usize,
    /// Total ranks.
    pub ranks: usize,
    /// First owned global x-plane.
    pub x_start: usize,
    /// Number of owned x-planes.
    pub nx: usize,
}

impl Subdomain {
    /// Owned extents as a box.
    pub fn owned(&self) -> Dim3 {
        Dim3::new(self.nx, self.global.ny, self.global.nz)
    }

    /// Left (lower-x) periodic neighbour rank.
    pub fn left(&self) -> usize {
        (self.rank + self.ranks - 1) % self.ranks
    }

    /// Right (higher-x) periodic neighbour rank.
    pub fn right(&self) -> usize {
        (self.rank + 1) % self.ranks
    }

    /// Global x of an allocation-local x given halo width.
    pub fn global_x(&self, local_x: usize, halo: usize) -> usize {
        let gx = self.x_start as isize + local_x as isize - halo as isize;
        gx.rem_euclid(self.global.nx as isize) as usize
    }

    /// Validate a halo width: the deep-halo exchange copies the outermost
    /// `halo` *owned* planes to the neighbour, so `halo ≤ nx` is required
    /// (this is exactly the out-of-memory wall the paper hits at GC=4 on the
    /// 133k D3Q19 case — too few owned planes per rank for the halo depth).
    pub fn validate_halo(&self, halo: usize) -> Result<()> {
        if halo == 0 {
            return Err(Error::BadHalo("halo width must be ≥ 1".into()));
        }
        if halo > self.nx {
            return Err(Error::BadHalo(format!(
                "halo {halo} exceeds owned planes {} on rank {}",
                self.nx, self.rank
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balanced_split_covers_domain_exactly() {
        for (nx, ranks) in [(16usize, 4usize), (17, 4), (19, 4), (7, 7), (100, 8)] {
            let d = Decomp1d::new(Dim3::new(nx, 4, 4), ranks).unwrap();
            let subs = d.subdomains();
            let total: usize = subs.iter().map(|s| s.nx).sum();
            assert_eq!(total, nx, "nx={nx} ranks={ranks}");
            // Contiguous and ordered.
            let mut next = 0;
            for s in &subs {
                assert_eq!(s.x_start, next);
                next += s.nx;
                assert!(s.nx >= nx / ranks);
                assert!(s.nx <= nx / ranks + 1);
            }
        }
    }

    #[test]
    fn neighbours_wrap_periodically() {
        let d = Decomp1d::new(Dim3::new(12, 2, 2), 4).unwrap();
        let s0 = d.subdomain(0);
        let s3 = d.subdomain(3);
        assert_eq!(s0.left(), 3);
        assert_eq!(s0.right(), 1);
        assert_eq!(s3.right(), 0);
        assert_eq!(s3.left(), 2);
    }

    #[test]
    fn single_rank_is_own_neighbour() {
        let d = Decomp1d::new(Dim3::cube(8), 1).unwrap();
        let s = d.subdomain(0);
        assert_eq!(s.left(), 0);
        assert_eq!(s.right(), 0);
    }

    #[test]
    fn global_x_maps_halo_coordinates() {
        let d = Decomp1d::new(Dim3::new(12, 2, 2), 3).unwrap();
        let s = d.subdomain(1); // owns x 4..8
        assert_eq!(s.x_start, 4);
        // local 2 with halo 2 is the first owned plane.
        assert_eq!(s.global_x(2, 2), 4);
        // local 0 with halo 2 is two planes left: global 2.
        assert_eq!(s.global_x(0, 2), 2);
        // rank 0's left halo wraps around.
        let s0 = d.subdomain(0);
        assert_eq!(s0.global_x(0, 2), 10);
    }

    #[test]
    fn rejects_bad_configs() {
        assert!(Decomp1d::new(Dim3::new(0, 4, 4), 1).is_err());
        assert!(Decomp1d::new(Dim3::new(4, 4, 4), 0).is_err());
        assert!(Decomp1d::new(Dim3::new(4, 4, 4), 5).is_err());
    }

    #[test]
    fn halo_validation() {
        let d = Decomp1d::new(Dim3::new(8, 2, 2), 4).unwrap();
        let s = d.subdomain(0); // owns 2 planes
        assert!(s.validate_halo(0).is_err());
        assert!(s.validate_halo(1).is_ok());
        assert!(s.validate_halo(2).is_ok());
        assert!(s.validate_halo(3).is_err());
    }

    #[test]
    fn points_per_rank_ratio() {
        let d = Decomp1d::new(Dim3::new(128, 4, 4), 8).unwrap();
        assert_eq!(d.points_per_rank(), 16.0);
    }
}
