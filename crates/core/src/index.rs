//! Dimension and linear-index helpers.
//!
//! Memory order follows the paper (§IV): within one velocity slab, the linear
//! index is `z + y*nz + x*nz*ny` — `z` fastest, then `y`, then `x`. The 1-D
//! domain decomposition therefore cuts along `x`, so a halo plane is one
//! contiguous `ny*nz` run of doubles, which is what makes the paper's
//! message aggregation (one message per neighbour carrying all velocities)
//! cheap to pack.

/// Extents of a 3-D box of lattice points.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Dim3 {
    /// Extent along x (the decomposed axis).
    pub nx: usize,
    /// Extent along y.
    pub ny: usize,
    /// Extent along z (fastest-varying in memory).
    pub nz: usize,
}

impl Dim3 {
    /// Construct extents.
    pub const fn new(nx: usize, ny: usize, nz: usize) -> Self {
        Self { nx, ny, nz }
    }

    /// A cube of side `n`.
    pub const fn cube(n: usize) -> Self {
        Self::new(n, n, n)
    }

    /// Total number of lattice points.
    #[inline]
    pub const fn len(&self) -> usize {
        self.nx * self.ny * self.nz
    }

    /// True when any extent is zero.
    #[inline]
    pub const fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of points in one x-plane (`ny*nz`) — the halo-plane size.
    #[inline]
    pub const fn plane(&self) -> usize {
        self.ny * self.nz
    }

    /// Linear index of `(x, y, z)`.
    #[inline(always)]
    pub const fn idx(&self, x: usize, y: usize, z: usize) -> usize {
        (x * self.ny + y) * self.nz + z
    }

    /// Inverse of [`Dim3::idx`].
    #[inline]
    pub const fn coords(&self, i: usize) -> (usize, usize, usize) {
        let z = i % self.nz;
        let r = i / self.nz;
        let y = r % self.ny;
        let x = r / self.ny;
        (x, y, z)
    }

    /// Iterate all `(x, y, z)` coordinates in memory order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, usize)> + '_ {
        let d = *self;
        (0..d.nx).flat_map(move |x| (0..d.ny).flat_map(move |y| (0..d.nz).map(move |z| (x, y, z))))
    }
}

/// Wrap a signed offset from `i` into `[0, n)` (periodic boundary).
///
/// `off` may have any magnitude smaller than `n`, which covers every discrete
/// velocity component of the supported lattices (|c| ≤ 3) for domains of at
/// least 4 points.
#[inline(always)]
pub fn wrap(i: usize, off: i32, n: usize) -> usize {
    debug_assert!(
        n > 0 && (off.unsigned_abs() as usize) < n,
        "offset magnitude exceeds extent"
    );
    let j = i as isize + off as isize;
    let n = n as isize;
    (((j % n) + n) % n) as usize
}

/// Precomputed periodic source-index table for a pull-stream along one axis.
///
/// `table[i] = wrap(i, -c, n)`: the source coordinate that streams into `i`
/// for a velocity component `c`. Used by the branch-reduced (LoBr) kernels to
/// replace the inner-loop `if` wrap checks of the naive kernel with a lookup,
/// the same trick as the paper's Fig. 6 index arrays.
#[derive(Debug, Clone)]
pub struct WrapTable {
    table: Vec<u32>,
}

impl WrapTable {
    /// Build the table for axis length `n` and velocity component `c`.
    pub fn new(n: usize, c: i32) -> Self {
        let table = (0..n).map(|i| wrap(i, -c, n) as u32).collect();
        Self { table }
    }

    /// Source index for destination index `i`.
    #[inline(always)]
    pub fn src(&self, i: usize) -> usize {
        self.table[i] as usize
    }

    /// Length of the axis.
    #[inline]
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// True when the axis has zero length.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idx_is_z_fastest() {
        let d = Dim3::new(4, 3, 5);
        assert_eq!(d.idx(0, 0, 0), 0);
        assert_eq!(d.idx(0, 0, 1), 1);
        assert_eq!(d.idx(0, 1, 0), 5);
        assert_eq!(d.idx(1, 0, 0), 15);
        assert_eq!(d.idx(3, 2, 4), d.len() - 1);
    }

    #[test]
    fn coords_inverts_idx() {
        let d = Dim3::new(3, 4, 5);
        for i in 0..d.len() {
            let (x, y, z) = d.coords(i);
            assert_eq!(d.idx(x, y, z), i);
        }
    }

    #[test]
    fn iter_visits_memory_order() {
        let d = Dim3::new(2, 2, 2);
        let seq: Vec<_> = d.iter().collect();
        assert_eq!(seq.len(), 8);
        assert_eq!(seq[0], (0, 0, 0));
        assert_eq!(seq[1], (0, 0, 1));
        assert_eq!(seq[2], (0, 1, 0));
        assert_eq!(seq[4], (1, 0, 0));
        for (k, &(x, y, z)) in seq.iter().enumerate() {
            assert_eq!(d.idx(x, y, z), k);
        }
    }

    #[test]
    fn plane_is_ny_nz() {
        assert_eq!(Dim3::new(7, 3, 5).plane(), 15);
    }

    #[test]
    fn wrap_handles_all_velocity_reaches() {
        let n = 8;
        for c in -3i32..=3 {
            for i in 0..n {
                let w = wrap(i, c, n);
                assert!(w < n);
                let expect = ((i as i32 + c).rem_euclid(n as i32)) as usize;
                assert_eq!(w, expect, "i={i} c={c}");
            }
        }
    }

    #[test]
    fn wrap_table_matches_wrap() {
        for c in -3i32..=3 {
            let t = WrapTable::new(10, c);
            assert_eq!(t.len(), 10);
            for i in 0..10 {
                assert_eq!(t.src(i), wrap(i, -c, 10));
            }
        }
    }

    #[test]
    fn cube_and_len() {
        let d = Dim3::cube(6);
        assert_eq!(d.len(), 216);
        assert!(!d.is_empty());
        assert!(Dim3::new(0, 5, 5).is_empty());
    }
}
