//! Wall boundary conditions.
//!
//! The paper's performance study is deliberately all-periodic (§IV); walls
//! exist here for the *physics* examples that motivate the models:
//! channel/microchannel flows bounded in y. Walls are realised as `k` solid
//! layers at each y extreme of the box (k = lattice reach, so even D3Q39's
//! (3,0,0) particles land inside solid). After each stream step the solid
//! layers transform the populations that just arrived:
//!
//! * [`WallKind::BounceBack`] — full-way bounce-back: every population is
//!   reversed and re-enters the fluid on a later step (no-slip, wall sits
//!   half-way into the first solid layer up to the usual O(ν) correction).
//! * [`WallKind::Moving`] — bounce-back plus the `2 w_i ρ_w (c_i·u_w)/c_s²`
//!   momentum correction (Couette / lid-driven flows).
//! * [`WallKind::Diffuse`] — full Maxwell diffuse reflection: arriving mass
//!   is re-emitted as a wall-equilibrium distribution. This is the kinetic
//!   boundary condition appropriate for finite-Knudsen microchannels, where
//!   bounce-back's no-slip is wrong and slip emerges naturally.

use crate::equilibrium::{feq_i, EqOrder};
use crate::field::DistField;
use crate::kernels::{KernelCtx, MAX_Q};

/// What a wall does to populations that stream into it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WallKind {
    /// Full-way bounce-back (no-slip).
    BounceBack,
    /// Bounce-back from a wall moving with the given velocity at density
    /// `rho` (tangential motion only for physical sense).
    Moving {
        /// Wall velocity.
        u: [f64; 3],
        /// Wall-adjacent fluid density used in the momentum correction.
        rho: f64,
    },
    /// Maxwell diffuse reflection: re-emit all arriving mass as equilibrium
    /// at the wall velocity (full accommodation).
    Diffuse {
        /// Wall velocity.
        u: [f64; 3],
    },
}

/// A pair of y-walls bounding the fluid, realised as solid layers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChannelWalls {
    /// Wall at low y.
    pub low: WallKind,
    /// Wall at high y.
    pub high: WallKind,
    /// Solid layers per side (must be ≥ lattice reach).
    pub layers: usize,
}

impl ChannelWalls {
    /// No-slip channel with `layers` solid layers per side.
    pub fn no_slip(layers: usize) -> Self {
        Self {
            low: WallKind::BounceBack,
            high: WallKind::BounceBack,
            layers,
        }
    }

    /// Diffuse-reflecting (kinetic) channel at rest.
    pub fn diffuse(layers: usize) -> Self {
        Self {
            low: WallKind::Diffuse { u: [0.0; 3] },
            high: WallKind::Diffuse { u: [0.0; 3] },
            layers,
        }
    }

    /// Fluid y range for an allocated y extent `ny`.
    pub fn fluid_y(&self, ny: usize) -> std::ops::Range<usize> {
        self.layers..ny - self.layers
    }

    /// Number of fluid rows for an allocated y extent `ny`.
    pub fn fluid_height(&self, ny: usize) -> usize {
        ny - 2 * self.layers
    }

    /// Apply both walls to the post-stream field over planes
    /// `x ∈ [x_lo, x_hi)`.
    pub fn apply(&self, ctx: &KernelCtx, f: &mut DistField, x_lo: usize, x_hi: usize) {
        let ny = f.alloc_dims().ny;
        assert!(
            self.layers >= ctx.lat.reach(),
            "walls need at least `reach` solid layers"
        );
        assert!(ny > 2 * self.layers, "no fluid rows left");
        for layer in 0..self.layers {
            apply_wall_row(ctx, f, self.low, layer, x_lo, x_hi);
            apply_wall_row(ctx, f, self.high, ny - 1 - layer, x_lo, x_hi);
        }
    }
}

/// Transform the populations of one solid y-row.
fn apply_wall_row(
    ctx: &KernelCtx,
    f: &mut DistField,
    kind: WallKind,
    y: usize,
    x_lo: usize,
    x_hi: usize,
) {
    let d = f.alloc_dims();
    let q = ctx.lat.q();
    let cs2 = ctx.lat.cs2();
    let mut cell = [0.0f64; MAX_Q];
    let mut out = [0.0f64; MAX_Q];
    for x in x_lo..x_hi {
        for z in 0..d.nz {
            let lin = d.idx(x, y, z);
            f.gather_cell(lin, &mut cell[..q]);
            match kind {
                WallKind::BounceBack => {
                    for i in 0..q {
                        out[i] = cell[ctx.lat.opposite(i)];
                    }
                }
                WallKind::Moving { u, rho } => {
                    for i in 0..q {
                        let c = ctx.lat.velocities()[i];
                        let cu = c[0] as f64 * u[0] + c[1] as f64 * u[1] + c[2] as f64 * u[2];
                        out[i] =
                            cell[ctx.lat.opposite(i)] + 2.0 * ctx.lat.weights()[i] * rho * cu / cs2;
                    }
                }
                WallKind::Diffuse { u } => {
                    let mass: f64 = cell[..q].iter().sum();
                    for (i, o) in out[..q].iter_mut().enumerate() {
                        // feq sums to its density argument, so emitting
                        // feq(mass, u_wall) conserves the arriving mass.
                        *o = feq_i(&ctx.lat, EqOrder::Second, i, mass, u);
                    }
                }
            }
            f.scatter_cell(lin, &out[..q]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collision::Bgk;
    use crate::index::Dim3;
    use crate::lattice::LatticeKind;

    fn ctx(kind: LatticeKind) -> KernelCtx {
        let order = if kind == LatticeKind::D3Q39 {
            EqOrder::Third
        } else {
            EqOrder::Second
        };
        KernelCtx::new(kind, order, Bgk::new(1.0).unwrap())
    }

    fn filled_field(c: &KernelCtx, dims: Dim3) -> DistField {
        let mut f = DistField::new(c.lat.q(), dims, 0).unwrap();
        let mut s = 9u64;
        for v in f.as_mut_slice() {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            *v = 0.01 + (s % 499) as f64 / 700.0;
        }
        f
    }

    #[test]
    fn bounce_back_reverses_populations_and_conserves_mass() {
        let c = ctx(LatticeKind::D3Q19);
        let dims = Dim3::new(3, 6, 4);
        let mut f = filled_field(&c, dims);
        let walls = ChannelWalls::no_slip(1);
        let before_mass: f64 = f.as_slice().iter().sum();
        let lin = dims.idx(1, 0, 2); // a low-wall solid cell
        let mut pre = [0.0; MAX_Q];
        f.gather_cell(lin, &mut pre[..c.lat.q()]);
        walls.apply(&c, &mut f, 0, dims.nx);
        let mut post = [0.0; MAX_Q];
        f.gather_cell(lin, &mut post[..c.lat.q()]);
        for i in 0..c.lat.q() {
            assert_eq!(post[i], pre[c.lat.opposite(i)], "i={i}");
        }
        let after_mass: f64 = f.as_slice().iter().sum();
        assert!((before_mass - after_mass).abs() < 1e-12);
    }

    #[test]
    fn diffuse_wall_conserves_mass_per_cell() {
        let c = ctx(LatticeKind::D3Q39);
        let dims = Dim3::new(2, 8, 3);
        let mut f = filled_field(&c, dims);
        let walls = ChannelWalls::diffuse(3); // k = 3 for D3Q39
        let lin = dims.idx(0, 7, 1); // top solid row
        let mut pre = [0.0; MAX_Q];
        f.gather_cell(lin, &mut pre[..c.lat.q()]);
        let pre_mass: f64 = pre[..c.lat.q()].iter().sum();
        walls.apply(&c, &mut f, 0, dims.nx);
        let mut post = [0.0; MAX_Q];
        f.gather_cell(lin, &mut post[..c.lat.q()]);
        let post_mass: f64 = post[..c.lat.q()].iter().sum();
        assert!((pre_mass - post_mass).abs() < 1e-13);
        // And the emitted distribution carries no net tangential momentum.
        let mx: f64 = post[..c.lat.q()]
            .iter()
            .zip(c.lat.velocities())
            .map(|(f, v)| f * v[0] as f64)
            .sum();
        assert!(mx.abs() < 1e-13, "{mx}");
    }

    #[test]
    fn moving_wall_injects_tangential_momentum() {
        let c = ctx(LatticeKind::D3Q19);
        let dims = Dim3::new(2, 5, 3);
        let mut f = filled_field(&c, dims);
        let uw = [0.05, 0.0, 0.0];
        let walls = ChannelWalls {
            low: WallKind::BounceBack,
            high: WallKind::Moving { u: uw, rho: 1.0 },
            layers: 1,
        };
        let lin = dims.idx(0, 4, 0);
        let mut pre = [0.0; MAX_Q];
        f.gather_cell(lin, &mut pre[..c.lat.q()]);
        let pre_mx: f64 = pre[..c.lat.q()]
            .iter()
            .zip(c.lat.velocities())
            .map(|(f, v)| f * v[0] as f64)
            .sum();
        walls.apply(&c, &mut f, 0, dims.nx);
        let mut post = [0.0; MAX_Q];
        f.gather_cell(lin, &mut post[..c.lat.q()]);
        let post_mx: f64 = post[..c.lat.q()]
            .iter()
            .zip(c.lat.velocities())
            .map(|(f, v)| f * v[0] as f64)
            .sum();
        // Reversal negates the momentum; the correction adds 2·ρ·u_w·Σw c_x²/cs².
        let expect = -pre_mx + 2.0 * 1.0 * uw[0]; // Σ w_i c_x²/c_s² = 1
        assert!((post_mx - expect).abs() < 1e-12, "{post_mx} vs {expect}");
    }

    #[test]
    fn walls_require_enough_layers() {
        let c = ctx(LatticeKind::D3Q39);
        let dims = Dim3::new(2, 10, 3);
        let mut f = filled_field(&c, dims);
        let walls = ChannelWalls::no_slip(1); // too thin for k=3
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            walls.apply(&c, &mut f, 0, dims.nx);
        }));
        assert!(result.is_err());
    }

    #[test]
    fn fluid_range_helpers() {
        let w = ChannelWalls::no_slip(2);
        assert_eq!(w.fluid_y(10), 2..8);
        assert_eq!(w.fluid_height(10), 6);
    }
}
