//! Wall boundary conditions.
//!
//! The paper's performance study is deliberately all-periodic (§IV); walls
//! exist here for the *physics* examples that motivate the models:
//! channel/microchannel flows bounded in y. Walls are realised as `k` solid
//! layers at each y extreme of the box (k = lattice reach, so even D3Q39's
//! (3,0,0) particles land inside solid). After each stream step the solid
//! layers transform the populations that just arrived:
//!
//! * [`WallKind::BounceBack`] — full-way bounce-back: every population is
//!   reversed and re-enters the fluid on a later step (no-slip, wall sits
//!   half-way into the first solid layer up to the usual O(ν) correction).
//! * [`WallKind::Moving`] — bounce-back plus the `2 w_i ρ_w (c_i·u_w)/c_s²`
//!   momentum correction (Couette / lid-driven flows).
//! * [`WallKind::Diffuse`] — full Maxwell diffuse reflection: arriving mass
//!   is re-emitted as a wall-equilibrium distribution. This is the kinetic
//!   boundary condition appropriate for finite-Knudsen microchannels, where
//!   bounce-back's no-slip is wrong and slip emerges naturally.

use crate::equilibrium::{feq_i, EqOrder};
use crate::error::{Error, Result};
use crate::field::DistField;
use crate::index::Dim3;
use crate::kernels::{KernelCtx, MAX_Q};
use crate::lattice::Lattice;

/// What a wall does to populations that stream into it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WallKind {
    /// Full-way bounce-back (no-slip).
    BounceBack,
    /// Bounce-back from a wall moving with the given velocity at density
    /// `rho` (tangential motion only for physical sense).
    Moving {
        /// Wall velocity.
        u: [f64; 3],
        /// Wall-adjacent fluid density used in the momentum correction.
        rho: f64,
    },
    /// Maxwell diffuse reflection: re-emit all arriving mass as equilibrium
    /// at the wall velocity (full accommodation).
    Diffuse {
        /// Wall velocity.
        u: [f64; 3],
    },
}

/// A pair of y-walls bounding the fluid, realised as solid layers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChannelWalls {
    /// Wall at low y.
    pub low: WallKind,
    /// Wall at high y.
    pub high: WallKind,
    /// Solid layers per side (must be ≥ lattice reach).
    pub layers: usize,
}

impl ChannelWalls {
    /// No-slip channel with `layers` solid layers per side.
    pub fn no_slip(layers: usize) -> Self {
        Self {
            low: WallKind::BounceBack,
            high: WallKind::BounceBack,
            layers,
        }
    }

    /// Diffuse-reflecting (kinetic) channel at rest.
    pub fn diffuse(layers: usize) -> Self {
        Self {
            low: WallKind::Diffuse { u: [0.0; 3] },
            high: WallKind::Diffuse { u: [0.0; 3] },
            layers,
        }
    }

    /// Fluid y range for an allocated y extent `ny`.
    pub fn fluid_y(&self, ny: usize) -> std::ops::Range<usize> {
        self.layers..ny - self.layers
    }

    /// The wall transform owning allocated row `y` (`None` for fluid rows).
    pub fn row_kind(&self, ny: usize, y: usize) -> Option<WallKind> {
        if y < self.layers {
            Some(self.low)
        } else if y >= ny - self.layers {
            Some(self.high)
        } else {
            None
        }
    }

    /// Number of fluid rows for an allocated y extent `ny`.
    pub fn fluid_height(&self, ny: usize) -> usize {
        ny - 2 * self.layers
    }

    /// Apply both walls to the post-stream field over planes
    /// `x ∈ [x_lo, x_hi)`.
    pub fn apply(&self, ctx: &KernelCtx, f: &mut DistField, x_lo: usize, x_hi: usize) {
        let ny = f.alloc_dims().ny;
        assert!(
            self.layers >= ctx.lat.reach(),
            "walls need at least `reach` solid layers"
        );
        assert!(ny > 2 * self.layers, "no fluid rows left");
        for layer in 0..self.layers {
            apply_wall_row(ctx, f, self.low, layer, x_lo, x_hi);
            apply_wall_row(ctx, f, self.high, ny - 1 - layer, x_lo, x_hi);
        }
    }
}

/// A solid mask over the (y, z) cross-section, applied at every x-plane
/// (`true` = solid). Masked cells perform full-way bounce-back on the
/// populations that stream into them, which is how pipe-like geometries
/// (the aorta illustration) and side walls (lid-driven cavity) are carved
/// out of the periodic box.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SectionMask {
    ny: usize,
    nz: usize,
    solid: Vec<bool>,
}

impl SectionMask {
    /// Build a mask for an allocated `ny × nz` cross-section from a
    /// predicate over (y, z).
    pub fn from_fn<F>(ny: usize, nz: usize, mut is_solid: F) -> Self
    where
        F: FnMut(usize, usize) -> bool,
    {
        let mut solid = vec![false; ny * nz];
        for y in 0..ny {
            for z in 0..nz {
                solid[y * nz + z] = is_solid(y, z);
            }
        }
        Self { ny, nz, solid }
    }

    /// Cross-section extents `(ny, nz)` this mask was built for.
    pub fn dims(&self) -> (usize, usize) {
        (self.ny, self.nz)
    }

    /// Whether cell (y, z) is solid.
    #[inline]
    pub fn is_solid(&self, y: usize, z: usize) -> bool {
        self.solid[y * self.nz + z]
    }

    /// Number of solid cells in the cross-section.
    pub fn solid_count(&self) -> usize {
        self.solid.iter().filter(|s| **s).count()
    }

    /// Bounce back the post-stream populations of every masked cell over
    /// planes `x ∈ [x_lo, x_hi)` and rows `y ∈ y_range` (rows outside
    /// `y_range` — the y-wall layers — are owned by [`ChannelWalls`]).
    pub fn apply(
        &self,
        ctx: &KernelCtx,
        f: &mut DistField,
        x_lo: usize,
        x_hi: usize,
        y_range: std::ops::Range<usize>,
    ) {
        let d = f.alloc_dims();
        assert_eq!(
            (d.ny, d.nz),
            (self.ny, self.nz),
            "mask/field shape mismatch"
        );
        let q = ctx.lat.q();
        let mut cell = [0.0f64; MAX_Q];
        let mut out = [0.0f64; MAX_Q];
        for x in x_lo..x_hi {
            for y in y_range.clone() {
                for z in 0..d.nz {
                    if !self.is_solid(y, z) {
                        continue;
                    }
                    let lin = d.idx(x, y, z);
                    f.gather_cell(lin, &mut cell[..q]);
                    for i in 0..q {
                        out[i] = cell[ctx.lat.opposite(i)];
                    }
                    f.scatter_cell(lin, &out[..q]);
                }
            }
        }
    }
}

/// The full boundary configuration of a scenario: optional y-walls plus an
/// optional (y, z) solid mask, over an otherwise periodic box (x is always
/// periodic — it is the decomposed flow direction).
///
/// This is the unit the distributed solver plumbs through its kernels: both
/// pieces are rank-local (the 1-D decomposition cuts x only), so every rank
/// applies the identical transform to its own planes — halo planes included,
/// which is what keeps deep-halo ghost computation consistent with the
/// neighbouring rank's owned computation.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BoundarySpec {
    y_walls: Option<ChannelWalls>,
    mask: Option<SectionMask>,
}

impl BoundarySpec {
    /// Fully periodic box (the paper's performance-study configuration).
    pub fn periodic() -> Self {
        Self::default()
    }

    /// Bound the box in y with the given walls.
    #[must_use]
    pub fn with_walls(mut self, walls: ChannelWalls) -> Self {
        self.y_walls = Some(walls);
        self
    }

    /// Carve solid cells out of the (y, z) cross-section.
    #[must_use]
    pub fn with_mask(mut self, mask: SectionMask) -> Self {
        self.mask = Some(mask);
        self
    }

    /// Whether the box is fully periodic (no walls, no mask).
    pub fn is_periodic(&self) -> bool {
        self.y_walls.is_none() && self.mask.is_none()
    }

    /// The y-walls, if any.
    pub fn walls(&self) -> Option<&ChannelWalls> {
        self.y_walls.as_ref()
    }

    /// The cross-section mask, if any.
    pub fn mask(&self) -> Option<&SectionMask> {
        self.mask.as_ref()
    }

    /// Fluid y range for an allocated y extent `ny` (all rows when there are
    /// no walls).
    pub fn fluid_y(&self, ny: usize) -> std::ops::Range<usize> {
        match &self.y_walls {
            Some(w) => w.fluid_y(ny),
            None => 0..ny,
        }
    }

    /// The wall transform owning allocated row `y`, if `y` is a solid wall
    /// row (the per-row dispatch of the fused scenario kernels).
    pub fn wall_row_kind(&self, ny: usize, y: usize) -> Option<WallKind> {
        self.y_walls.as_ref().and_then(|w| w.row_kind(ny, y))
    }

    /// Whether cell (y, z) collides as fluid (inside the fluid y range and
    /// not masked solid).
    pub fn is_fluid(&self, ny: usize, y: usize, z: usize) -> bool {
        self.fluid_y(ny).contains(&y) && !self.mask.as_ref().is_some_and(|m| m.is_solid(y, z))
    }

    /// Apply the boundary transforms to the post-stream field over planes
    /// `x ∈ [x_lo, x_hi)`: wall rows first, then the mask over the fluid
    /// rows. Call between the stream and collide halves of a step.
    pub fn apply(&self, ctx: &KernelCtx, f: &mut DistField, x_lo: usize, x_hi: usize) {
        let ny = f.alloc_dims().ny;
        if let Some(w) = &self.y_walls {
            w.apply(ctx, f, x_lo, x_hi);
        }
        if let Some(m) = &self.mask {
            m.apply(ctx, f, x_lo, x_hi, self.fluid_y(ny));
        }
    }

    /// Check the spec against a lattice and a global box: wall layers must
    /// cover the lattice reach, some fluid rows must remain, and the mask
    /// shape must match the cross-section.
    pub fn validate(&self, lat: &Lattice, global: Dim3) -> Result<()> {
        let k = lat.reach();
        if let Some(w) = &self.y_walls {
            if w.layers < k {
                return Err(Error::BadParameter(format!(
                    "walls need ≥ {k} solid layers for {}, got {}",
                    lat.name(),
                    w.layers
                )));
            }
            if global.ny <= 2 * w.layers {
                return Err(Error::BadDimensions(format!(
                    "no fluid rows: ny = {} with 2×{} wall layers",
                    global.ny, w.layers
                )));
            }
        }
        if let Some(m) = &self.mask {
            if m.dims() != (global.ny, global.nz) {
                return Err(Error::BadDimensions(format!(
                    "mask shape {:?} does not match cross-section ({}, {})",
                    m.dims(),
                    global.ny,
                    global.nz
                )));
            }
            self.check_mask_tunneling(lat, global, m)?;
        }
        Ok(())
    }

    /// Reject masks with solid features too thin for the lattice reach.
    ///
    /// Full-way bounce-back only transforms the cell a population *lands*
    /// on. A hop whose (y, z) displacement has gcd g > 1 — e.g. D3Q39's
    /// (0, 2, 0), (0, 2, 2) or (0, 3, 0) shells — passes over g − 1
    /// intermediate lattice points; if both endpoints are fluid but an
    /// intermediate is masked solid, the population tunnels straight
    /// through the wall and the geometry is silently wrong. The mask is
    /// x-invariant, so checking the (y, z) cross-section covers every hop.
    fn check_mask_tunneling(&self, lat: &Lattice, global: Dim3, m: &SectionMask) -> Result<()> {
        fn gcd(a: usize, b: usize) -> usize {
            if b == 0 {
                a
            } else {
                gcd(b, a % b)
            }
        }
        let fluid_y = self.fluid_y(global.ny);
        let (ny, nz) = (global.ny as isize, global.nz as isize);
        // Without y-walls the stream wraps y periodically, so the check
        // must follow hops across the y seam too; with walls, rows outside
        // the fluid range belong to the (separately validated) wall layers.
        let y_periodic = self.y_walls.is_none();
        let is_fluid = |y: isize, z: isize| -> bool {
            let y = if y_periodic { y.rem_euclid(ny) } else { y };
            (0..ny).contains(&y)
                && fluid_y.contains(&(y as usize))
                && !m.is_solid(y as usize, z.rem_euclid(nz) as usize)
        };
        for i in 0..lat.q() {
            let c = lat.velocities()[i];
            let (cy, cz) = (c[1] as isize, c[2] as isize);
            let g = gcd(cy.unsigned_abs(), cz.unsigned_abs());
            if g <= 1 {
                continue;
            }
            let (sy, sz) = (cy / g as isize, cz / g as isize);
            for y in fluid_y.clone() {
                for z in 0..global.nz {
                    let (y, z) = (y as isize, z as isize);
                    if !is_fluid(y, z) || !is_fluid(y + cy, z + cz) {
                        continue;
                    }
                    for s in 1..g as isize {
                        if !is_fluid(y + sy * s, z + sz * s) {
                            return Err(Error::BadParameter(format!(
                                "mask feature too thin for {}: the ({}, {cy}, {cz}) hop \
                                 from fluid (y={y}, z={z}) tunnels through solid — solid \
                                 features must be ≥ reach {} cells thick",
                                lat.name(),
                                c[0],
                                lat.reach()
                            )));
                        }
                    }
                }
            }
        }
        Ok(())
    }
}

/// Transform the populations of one solid y-row.
fn apply_wall_row(
    ctx: &KernelCtx,
    f: &mut DistField,
    kind: WallKind,
    y: usize,
    x_lo: usize,
    x_hi: usize,
) {
    let d = f.alloc_dims();
    let q = ctx.lat.q();
    let cs2 = ctx.lat.cs2();
    let mut cell = [0.0f64; MAX_Q];
    let mut out = [0.0f64; MAX_Q];
    for x in x_lo..x_hi {
        for z in 0..d.nz {
            let lin = d.idx(x, y, z);
            f.gather_cell(lin, &mut cell[..q]);
            match kind {
                WallKind::BounceBack => {
                    for i in 0..q {
                        out[i] = cell[ctx.lat.opposite(i)];
                    }
                }
                WallKind::Moving { u, rho } => {
                    for i in 0..q {
                        let c = ctx.lat.velocities()[i];
                        let cu = c[0] as f64 * u[0] + c[1] as f64 * u[1] + c[2] as f64 * u[2];
                        out[i] =
                            cell[ctx.lat.opposite(i)] + 2.0 * ctx.lat.weights()[i] * rho * cu / cs2;
                    }
                }
                WallKind::Diffuse { u } => {
                    let mass: f64 = cell[..q].iter().sum();
                    for (i, o) in out[..q].iter_mut().enumerate() {
                        // feq sums to its density argument, so emitting
                        // feq(mass, u_wall) conserves the arriving mass.
                        *o = feq_i(&ctx.lat, EqOrder::Second, i, mass, u);
                    }
                }
            }
            f.scatter_cell(lin, &out[..q]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collision::Bgk;
    use crate::index::Dim3;
    use crate::lattice::LatticeKind;

    fn ctx(kind: LatticeKind) -> KernelCtx {
        let order = if kind == LatticeKind::D3Q39 {
            EqOrder::Third
        } else {
            EqOrder::Second
        };
        KernelCtx::new(kind, order, Bgk::new(1.0).unwrap())
    }

    fn filled_field(c: &KernelCtx, dims: Dim3) -> DistField {
        let mut f = DistField::new(c.lat.q(), dims, 0).unwrap();
        let mut s = 9u64;
        for v in f.as_mut_slice() {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            *v = 0.01 + (s % 499) as f64 / 700.0;
        }
        f
    }

    #[test]
    fn bounce_back_reverses_populations_and_conserves_mass() {
        let c = ctx(LatticeKind::D3Q19);
        let dims = Dim3::new(3, 6, 4);
        let mut f = filled_field(&c, dims);
        let walls = ChannelWalls::no_slip(1);
        let before_mass: f64 = f.as_slice().iter().sum();
        let lin = dims.idx(1, 0, 2); // a low-wall solid cell
        let mut pre = [0.0; MAX_Q];
        f.gather_cell(lin, &mut pre[..c.lat.q()]);
        walls.apply(&c, &mut f, 0, dims.nx);
        let mut post = [0.0; MAX_Q];
        f.gather_cell(lin, &mut post[..c.lat.q()]);
        for i in 0..c.lat.q() {
            assert_eq!(post[i], pre[c.lat.opposite(i)], "i={i}");
        }
        let after_mass: f64 = f.as_slice().iter().sum();
        assert!((before_mass - after_mass).abs() < 1e-12);
    }

    #[test]
    fn diffuse_wall_conserves_mass_per_cell() {
        let c = ctx(LatticeKind::D3Q39);
        let dims = Dim3::new(2, 8, 3);
        let mut f = filled_field(&c, dims);
        let walls = ChannelWalls::diffuse(3); // k = 3 for D3Q39
        let lin = dims.idx(0, 7, 1); // top solid row
        let mut pre = [0.0; MAX_Q];
        f.gather_cell(lin, &mut pre[..c.lat.q()]);
        let pre_mass: f64 = pre[..c.lat.q()].iter().sum();
        walls.apply(&c, &mut f, 0, dims.nx);
        let mut post = [0.0; MAX_Q];
        f.gather_cell(lin, &mut post[..c.lat.q()]);
        let post_mass: f64 = post[..c.lat.q()].iter().sum();
        assert!((pre_mass - post_mass).abs() < 1e-13);
        // And the emitted distribution carries no net tangential momentum.
        let mx: f64 = post[..c.lat.q()]
            .iter()
            .zip(c.lat.velocities())
            .map(|(f, v)| f * v[0] as f64)
            .sum();
        assert!(mx.abs() < 1e-13, "{mx}");
    }

    #[test]
    fn moving_wall_injects_tangential_momentum() {
        let c = ctx(LatticeKind::D3Q19);
        let dims = Dim3::new(2, 5, 3);
        let mut f = filled_field(&c, dims);
        let uw = [0.05, 0.0, 0.0];
        let walls = ChannelWalls {
            low: WallKind::BounceBack,
            high: WallKind::Moving { u: uw, rho: 1.0 },
            layers: 1,
        };
        let lin = dims.idx(0, 4, 0);
        let mut pre = [0.0; MAX_Q];
        f.gather_cell(lin, &mut pre[..c.lat.q()]);
        let pre_mx: f64 = pre[..c.lat.q()]
            .iter()
            .zip(c.lat.velocities())
            .map(|(f, v)| f * v[0] as f64)
            .sum();
        walls.apply(&c, &mut f, 0, dims.nx);
        let mut post = [0.0; MAX_Q];
        f.gather_cell(lin, &mut post[..c.lat.q()]);
        let post_mx: f64 = post[..c.lat.q()]
            .iter()
            .zip(c.lat.velocities())
            .map(|(f, v)| f * v[0] as f64)
            .sum();
        // Reversal negates the momentum; the correction adds 2·ρ·u_w·Σw c_x²/cs².
        let expect = -pre_mx + 2.0 * 1.0 * uw[0]; // Σ w_i c_x²/c_s² = 1
        assert!((post_mx - expect).abs() < 1e-12, "{post_mx} vs {expect}");
    }

    #[test]
    fn walls_require_enough_layers() {
        let c = ctx(LatticeKind::D3Q39);
        let dims = Dim3::new(2, 10, 3);
        let mut f = filled_field(&c, dims);
        let walls = ChannelWalls::no_slip(1); // too thin for k=3
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            walls.apply(&c, &mut f, 0, dims.nx);
        }));
        assert!(result.is_err());
    }

    #[test]
    fn fluid_range_helpers() {
        let w = ChannelWalls::no_slip(2);
        assert_eq!(w.fluid_y(10), 2..8);
        assert_eq!(w.fluid_height(10), 6);
    }

    #[test]
    fn section_mask_bounces_masked_cells_only() {
        let c = ctx(LatticeKind::D3Q19);
        let dims = Dim3::new(2, 5, 4);
        let mut f = filled_field(&c, dims);
        let before = f.clone();
        let mask = SectionMask::from_fn(5, 4, |_y, z| z == 0);
        assert_eq!(mask.solid_count(), 5);
        mask.apply(&c, &mut f, 0, dims.nx, 0..5);
        let mut pre = [0.0; MAX_Q];
        let mut post = [0.0; MAX_Q];
        // Masked column: reversed.
        let lin = dims.idx(1, 2, 0);
        before.gather_cell(lin, &mut pre[..c.lat.q()]);
        f.gather_cell(lin, &mut post[..c.lat.q()]);
        for i in 0..c.lat.q() {
            assert_eq!(post[i], pre[c.lat.opposite(i)]);
        }
        // Unmasked column: untouched.
        let lin = dims.idx(1, 2, 1);
        before.gather_cell(lin, &mut pre[..c.lat.q()]);
        f.gather_cell(lin, &mut post[..c.lat.q()]);
        assert_eq!(&pre[..c.lat.q()], &post[..c.lat.q()]);
    }

    #[test]
    fn boundary_spec_periodic_is_a_no_op() {
        let c = ctx(LatticeKind::D3Q19);
        let dims = Dim3::new(2, 5, 4);
        let mut f = filled_field(&c, dims);
        let before = f.clone();
        let spec = BoundarySpec::periodic();
        assert!(spec.is_periodic());
        assert_eq!(spec.fluid_y(5), 0..5);
        spec.apply(&c, &mut f, 0, dims.nx);
        assert_eq!(f.max_abs_diff_owned(&before), 0.0);
    }

    #[test]
    fn boundary_spec_applies_walls_then_mask_and_conserves_mass() {
        let c = ctx(LatticeKind::D3Q19);
        let dims = Dim3::new(3, 6, 5);
        let mut f = filled_field(&c, dims);
        let before_mass: f64 = f.as_slice().iter().sum();
        let spec = BoundarySpec::periodic()
            .with_walls(ChannelWalls::no_slip(1))
            .with_mask(SectionMask::from_fn(6, 5, |_y, z| z == 4));
        assert!(!spec.is_periodic());
        assert_eq!(spec.fluid_y(6), 1..5);
        assert!(spec.is_fluid(6, 2, 1));
        assert!(!spec.is_fluid(6, 0, 1), "wall row is not fluid");
        assert!(!spec.is_fluid(6, 2, 4), "masked column is not fluid");
        spec.apply(&c, &mut f, 0, dims.nx);
        let after_mass: f64 = f.as_slice().iter().sum();
        assert!((before_mass - after_mass).abs() < 1e-12);
    }

    #[test]
    fn boundary_spec_validation_catches_misconfiguration() {
        let q39 = Lattice::new(LatticeKind::D3Q39);
        let q19 = Lattice::new(LatticeKind::D3Q19);
        let thin = BoundarySpec::periodic().with_walls(ChannelWalls::no_slip(1));
        assert!(thin.validate(&q39, Dim3::new(4, 12, 8)).is_err());
        assert!(thin.validate(&q19, Dim3::new(4, 12, 8)).is_ok());
        let no_fluid = BoundarySpec::periodic().with_walls(ChannelWalls::no_slip(4));
        assert!(no_fluid.validate(&q19, Dim3::new(4, 8, 8)).is_err());
        let bad_mask = BoundarySpec::periodic().with_mask(SectionMask::from_fn(4, 4, |_, _| false));
        assert!(bad_mask.validate(&q19, Dim3::new(4, 8, 8)).is_err());
        assert!(BoundarySpec::periodic()
            .validate(&q39, Dim3::new(4, 8, 8))
            .is_ok());
    }

    #[test]
    fn mask_features_too_thin_for_the_reach_are_rejected() {
        let q39 = Lattice::new(LatticeKind::D3Q39);
        let q19 = Lattice::new(LatticeKind::D3Q19);
        let g = Dim3::new(4, 12, 12);
        // A 1-cell solid plane at z = 5 with fluid on both sides: D3Q39's
        // (0, 0, ±2) and (0, 0, ±3) hops jump straight over it.
        let spec = BoundarySpec::periodic().with_mask(SectionMask::from_fn(12, 12, |_y, z| z == 5));
        assert!(spec.validate(&q19, g).is_ok(), "reach 1 cannot tunnel");
        let err = spec.validate(&q39, g).unwrap_err();
        assert!(format!("{err:?}").contains("tunnels"), "{err:?}");
        // A reach-thick slab is fine on both lattices.
        let slab = BoundarySpec::periodic()
            .with_mask(SectionMask::from_fn(12, 12, |_y, z| (4..7).contains(&z)));
        assert!(slab.validate(&q39, g).is_ok());
        // Side walls as thick as the reach (the cavity layout) are fine too,
        // and solid columns adjacent to the y-walls stay legal.
        let cavity = BoundarySpec::periodic()
            .with_walls(ChannelWalls::no_slip(3))
            .with_mask(SectionMask::from_fn(12, 12, |_y, z| !(3..9).contains(&z)));
        assert!(cavity.validate(&q39, g).is_ok());
        // Without y-walls, y streams periodically: a thin solid plane at the
        // y wrap seam must be rejected just like one in the interior.
        let seam = BoundarySpec::periodic().with_mask(SectionMask::from_fn(12, 12, |y, _z| y == 0));
        assert!(seam.validate(&q19, g).is_ok());
        let err = seam.validate(&q39, g).unwrap_err();
        assert!(format!("{err:?}").contains("tunnels"), "{err:?}");
        let seam_band =
            BoundarySpec::periodic()
                .with_mask(SectionMask::from_fn(12, 12, |y, _z| !(3..9).contains(&y)));
        assert!(seam_band.validate(&q39, g).is_ok());
    }
}
