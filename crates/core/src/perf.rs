//! Performance accounting in the paper's metric (§III-B).
//!
//! The paper argues flop/s is the wrong metric for LBM and uses **MFlup/s** —
//! million fluid lattice-point updates per second (its Eq. 4):
//! `P = s · N_fl / (T(s) · 10⁶)`. [`PerfCounters`] implements exactly that,
//! plus derived bandwidth/flop figures from a per-cell traffic accounting.
//!
//! The bytes-per-cell constant depends on the [`StorageMode`]: the paper's
//! `B = 3·Q·8` (two loads + one store per velocity) assumes the two-grid
//! `distr`/`distr_adv` double buffer; AA-pattern in-place streaming touches
//! each population once for read and once for write in the *same* array,
//! `B = 2·Q·8` — see [`model_bytes_per_cell`].

use crate::field::StorageMode;
use std::time::{Duration, Instant};

/// The model bytes moved to/from main memory per lattice-point update for a
/// `q`-velocity BGK step under the given storage mode (paper Eq. 5's `B`,
/// storage-parameterized): `3·Q·8` for [`StorageMode::TwoGrid`] (load src,
/// load+store dst with write-allocate), `2·Q·8` for
/// [`StorageMode::InPlaceAa`] (one read + one in-place write per velocity).
pub const fn model_bytes_per_cell(storage: StorageMode, q: usize) -> usize {
    match storage {
        StorageMode::TwoGrid => 3 * q * 8,
        StorageMode::InPlaceAa => 2 * q * 8,
    }
}

/// Per-tile metadata the sparse gather walks each streaming step: the
/// 27-entry `i32` neighbour row plus the `u64` fluid bitmap. The shared
/// `GatherTable` (and its merged segment plan) is a few KB reused by every
/// tile, so it lives in cache and is excluded — like the dense kernels'
/// lattice constants.
pub const SPARSE_TILE_META_BYTES: usize = 27 * 4 + 8;

/// [`model_bytes_per_cell`] for the sparse tiled backend: the same
/// per-population traffic as the dense storage mode plus the tile metadata
/// amortized over the 64 cells of a tile (rounded up). Two-grid walks the
/// neighbour table every step (+2 B/cell); AA only on odd steps
/// (+1 B/cell per-step average). The near-identity with the dense model is
/// the model's claim: sparse addressing costs *instructions and latency*,
/// not main-store bytes — which is why the measured per-fluid-cell gap is
/// closable at all.
pub const fn model_bytes_per_cell_sparse(storage: StorageMode, q: usize) -> usize {
    let meta = match storage {
        StorageMode::TwoGrid => SPARSE_TILE_META_BYTES.div_ceil(64),
        StorageMode::InPlaceAa => SPARSE_TILE_META_BYTES.div_ceil(128),
    };
    model_bytes_per_cell(storage, q) + meta
}

/// Parity of an AA-pattern step — the two alternating access patterns of
/// [`StorageMode::InPlaceAa`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AaParity {
    /// First step of a pair: read-local/write-local velocity-pair update.
    Even,
    /// Second step: gather-swapped / scatter-swapped double-shifted sweep.
    Odd,
}

/// The model bytes per lattice-point update of **one AA step of the given
/// parity**. With the tile-free even step and the in-place pair-swap odd
/// step, *both* parities read each population exactly once from main memory
/// and write it exactly once in the same array — a uniform `2·Q·8` with no
/// gather-tile round trip on either side. (Each step's second pass over a
/// z-block's rows — the pair-relax after the moment pass — re-reads from
/// L1, which the main-store model deliberately excludes.) The per-pair
/// average therefore equals the aggregate
/// [`model_bytes_per_cell`]`(InPlaceAa, q)`.
pub const fn model_bytes_per_cell_aa(parity: AaParity, q: usize) -> usize {
    match parity {
        AaParity::Even | AaParity::Odd => 2 * q * 8,
    }
}

/// Accumulates lattice updates and wall time; reports MFlup/s.
#[derive(Debug, Clone, Default)]
pub struct PerfCounters {
    /// Fluid-cell updates performed (s · N_fl, *owned* cells only).
    pub updates: u64,
    /// Extra updates spent on ghost/halo cells (the deep-halo overhead the
    /// paper's model deliberately excludes — tracked separately, as its §VI
    /// discussion of the GC gap suggests).
    pub ghost_updates: u64,
    /// Wall time attributed to computation.
    pub elapsed: Duration,
}

impl PerfCounters {
    /// New, zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record `cells` owned-cell updates plus `ghost` halo updates over `dt`.
    pub fn record(&mut self, cells: u64, ghost: u64, dt: Duration) {
        self.updates += cells;
        self.ghost_updates += ghost;
        self.elapsed += dt;
    }

    /// Paper Eq. 4: million fluid lattice updates per second, counting only
    /// owned cells (ghost updates are overhead, exactly as in the paper's
    /// model-vs-measured comparison).
    pub fn mflups(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs == 0.0 {
            return 0.0;
        }
        self.updates as f64 / secs / 1e6
    }

    /// MFlup/s counting ghost updates as useful work (upper curve; the gap
    /// to [`PerfCounters::mflups`] is the deep-halo overhead).
    pub fn mflups_including_ghost(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs == 0.0 {
            return 0.0;
        }
        (self.updates + self.ghost_updates) as f64 / secs / 1e6
    }

    /// Fraction of all updates spent on ghost cells.
    pub fn ghost_fraction(&self) -> f64 {
        let total = self.updates + self.ghost_updates;
        if total == 0 {
            return 0.0;
        }
        self.ghost_updates as f64 / total as f64
    }

    /// Effective memory traffic in GB/s under a per-update bytes accounting
    /// (use [`model_bytes_per_cell`] for the storage-mode-correct constant).
    pub fn effective_bandwidth_gbs(&self, bytes_per_cell: usize) -> f64 {
        self.mflups_including_ghost() * 1e6 * bytes_per_cell as f64 / 1e9
    }

    /// Effective GFlop/s under the paper's F flops-per-cell accounting.
    pub fn effective_gflops(&self, flops_per_cell: usize) -> f64 {
        self.mflups_including_ghost() * 1e6 * flops_per_cell as f64 / 1e9
    }

    /// Merge another counter set (e.g. across ranks).
    pub fn merge_max_time(&mut self, other: &PerfCounters) {
        self.updates += other.updates;
        self.ghost_updates += other.ghost_updates;
        // Parallel ranks overlap in time: wall time is the max, not the sum.
        self.elapsed = self.elapsed.max(other.elapsed);
    }
}

/// Scoped timer: measures one phase and records into counters on drop.
pub struct FlupTimer<'a> {
    counters: &'a mut PerfCounters,
    cells: u64,
    ghost: u64,
    start: Instant,
}

impl<'a> FlupTimer<'a> {
    /// Start timing a phase that will update `cells` owned and `ghost` halo
    /// cells.
    pub fn start(counters: &'a mut PerfCounters, cells: u64, ghost: u64) -> Self {
        Self {
            counters,
            cells,
            ghost,
            start: Instant::now(),
        }
    }
}

impl Drop for FlupTimer<'_> {
    fn drop(&mut self) {
        self.counters
            .record(self.cells, self.ghost, self.start.elapsed());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traffic_model_is_storage_parameterized() {
        // Two-grid keeps the paper's constants; AA cuts them by a third.
        assert_eq!(model_bytes_per_cell(StorageMode::TwoGrid, 19), 456);
        assert_eq!(model_bytes_per_cell(StorageMode::TwoGrid, 39), 936);
        assert_eq!(model_bytes_per_cell(StorageMode::InPlaceAa, 19), 304);
        assert_eq!(model_bytes_per_cell(StorageMode::InPlaceAa, 39), 624);
    }

    #[test]
    fn sparse_traffic_adds_amortized_tile_metadata() {
        // +2 B/cell (two-grid, every step) or +1 B/cell (AA, odd steps
        // only) on top of the dense constants — a <1% perturbation.
        assert_eq!(model_bytes_per_cell_sparse(StorageMode::TwoGrid, 19), 458);
        assert_eq!(model_bytes_per_cell_sparse(StorageMode::TwoGrid, 39), 938);
        assert_eq!(model_bytes_per_cell_sparse(StorageMode::InPlaceAa, 19), 305);
        assert_eq!(model_bytes_per_cell_sparse(StorageMode::InPlaceAa, 39), 625);
    }

    #[test]
    fn aa_parity_model_is_uniform_and_consistent_with_the_aggregate() {
        // Both parities are pure 2·Q·8 (tile-free even, in-place pair-swap
        // odd), so the per-pair mean reproduces the aggregate AA constant.
        for q in [15usize, 19, 27, 39] {
            let even = model_bytes_per_cell_aa(AaParity::Even, q);
            let odd = model_bytes_per_cell_aa(AaParity::Odd, q);
            assert_eq!(even, 2 * q * 8);
            assert_eq!(odd, even);
            assert_eq!(
                (even + odd) / 2,
                model_bytes_per_cell(StorageMode::InPlaceAa, q)
            );
        }
    }

    #[test]
    fn mflups_matches_eq4() {
        let mut p = PerfCounters::new();
        // 10⁶ updates in 1 s = 1 MFlup/s.
        p.record(1_000_000, 0, Duration::from_secs(1));
        assert!((p.mflups() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ghost_updates_are_separate() {
        let mut p = PerfCounters::new();
        p.record(800, 200, Duration::from_millis(1));
        assert!(p.mflups_including_ghost() > p.mflups());
        assert!((p.ghost_fraction() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn zero_time_reports_zero_not_inf() {
        let p = PerfCounters::new();
        assert_eq!(p.mflups(), 0.0);
        assert_eq!(p.mflups_including_ghost(), 0.0);
        assert_eq!(p.ghost_fraction(), 0.0);
    }

    #[test]
    fn derived_bandwidth_and_flops() {
        let mut p = PerfCounters::new();
        p.record(1_000_000, 0, Duration::from_secs(1));
        // 1 MFlup/s × 456 B = 0.456 GB/s; × 178 flops = 0.178 GFlop/s.
        assert!((p.effective_bandwidth_gbs(456) - 0.456).abs() < 1e-9);
        assert!((p.effective_gflops(178) - 0.178).abs() < 1e-9);
    }

    #[test]
    fn merge_takes_max_time_sum_updates() {
        let mut a = PerfCounters::new();
        a.record(100, 0, Duration::from_millis(10));
        let mut b = PerfCounters::new();
        b.record(200, 50, Duration::from_millis(30));
        a.merge_max_time(&b);
        assert_eq!(a.updates, 300);
        assert_eq!(a.ghost_updates, 50);
        assert_eq!(a.elapsed, Duration::from_millis(30));
    }

    #[test]
    fn timer_records_on_drop() {
        let mut p = PerfCounters::new();
        {
            let _t = FlupTimer::start(&mut p, 42, 7);
        }
        assert_eq!(p.updates, 42);
        assert_eq!(p.ghost_updates, 7);
        assert!(p.elapsed > Duration::ZERO);
    }
}
