//! Voxel geometry and sparse fluid-tile bookkeeping.
//!
//! Everything the dense stack runs is a box: [`crate::boundary::SectionMask`]
//! marks solid cells but still pays full storage and bandwidth for them. This
//! module is the geometry half of the sparse tiled backend: a voxel
//! [`Geometry`] (built from analytic shapes — pipe, bifurcation, porous bed —
//! or any predicate) is chunked into fixed 4×4×4 **tiles**, and only tiles
//! that contain fluid *or touch a fluid tile* are allocated into a packed
//! tile list ([`SparseTiles`]). Streaming across tile boundaries is resolved
//! through a per-tile 27-entry neighbour table (indirect addressing); a
//! missing neighbour (`-1`) reads as vacuum (`0.0`), which is exact because
//! the rim-allocation rule guarantees fluid cells never reference an
//! unallocated tile (lattice reach ≤ 3 < 4 = tile edge).
//!
//! The compute side (tile-major population storage + gather/bounce/collide
//! drivers) lives in [`crate::kernels::sparse`].

use crate::boundary::SectionMask;
use crate::error::{Error, Result};
use crate::index::{wrap, Dim3};
use crate::lattice::Lattice;
use crate::snapshot::fnv1a;

/// Tile edge length in cells. Fixed: the neighbour table covers offsets
/// −1..=1 per axis, which is sufficient exactly because every lattice
/// velocity component is ≤ 3 < `TILE_B`.
pub const TILE_B: usize = 4;
/// Cells per tile (`TILE_B`³).
pub const TILE_CELLS: usize = TILE_B * TILE_B * TILE_B;
/// Neighbour-table entries per tile (3³ including self at the centre slot).
pub const TILE_NEIGHBORS: usize = 27;

/// Magic prefix of an encoded geometry frame (see [`Geometry::encode_frame`]).
pub const GEOMETRY_FRAME_MAGIC: &[u8; 8] = b"LBMGEOM1";

/// [`wrap`] with the `isize` offsets tile arithmetic naturally produces.
#[inline(always)]
fn wrapc(i: usize, off: isize, n: usize) -> usize {
    wrap(i, off as i32, n)
}

/// Linear cell index inside a tile: x-major, z fastest — matching the dense
/// [`Dim3`] convention at tile scale.
#[inline(always)]
pub fn tile_cell(lx: usize, ly: usize, lz: usize) -> usize {
    (lx * TILE_B + ly) * TILE_B + lz
}

/// Neighbour-table slot for a tile offset with each component in −1..=1.
#[inline(always)]
pub fn neighbor_slot(dx: isize, dy: isize, dz: isize) -> usize {
    (((dx + 1) * 3 + (dy + 1)) * 3 + (dz + 1)) as usize
}

/// A voxelized fluid/solid map over a global box, periodic on every axis.
///
/// `true` = fluid (collides), `false` = solid (full-way bounce-back, exactly
/// the dense `SectionMask` treatment). Storage is x-major/z-fastest in
/// [`Dim3`] index order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Geometry {
    dims: Dim3,
    fluid: Vec<bool>,
}

impl Geometry {
    /// Build from a predicate evaluated at every voxel.
    pub fn from_fn(dims: Dim3, f: impl Fn(usize, usize, usize) -> bool) -> Result<Self> {
        if dims.nx == 0 || dims.ny == 0 || dims.nz == 0 {
            return Err(Error::BadDimensions(format!(
                "geometry dims must be nonzero, got {}x{}x{}",
                dims.nx, dims.ny, dims.nz
            )));
        }
        let mut fluid = vec![false; dims.nx * dims.ny * dims.nz];
        for x in 0..dims.nx {
            for y in 0..dims.ny {
                for z in 0..dims.nz {
                    fluid[dims.idx(x, y, z)] = f(x, y, z);
                }
            }
        }
        Ok(Self { dims, fluid })
    }

    /// An x-invariant circular pipe centred in the (y, z) cross-section.
    pub fn pipe(dims: Dim3, radius: f64) -> Result<Self> {
        let cy = (dims.ny as f64 - 1.0) / 2.0;
        let cz = (dims.nz as f64 - 1.0) / 2.0;
        Self::pipe_at(dims, cy, cz, radius)
    }

    /// An x-invariant circular pipe centred at `(cy, cz)`.
    pub fn pipe_at(dims: Dim3, cy: f64, cz: f64, radius: f64) -> Result<Self> {
        if radius <= 0.0 {
            return Err(Error::BadParameter(format!("pipe radius {radius} <= 0")));
        }
        let r2 = radius * radius;
        Self::from_fn(dims, |_, y, z| {
            let dy = y as f64 - cy;
            let dz = z as f64 - cz;
            dy * dy + dz * dz <= r2
        })
    }

    /// A trunk pipe that splits into two diverging branches at `x = nx/2`
    /// — a cartoon of the vascular bifurcations the paper's target
    /// geometries are made of. Fully 3-D (not expressible as a
    /// `SectionMask`).
    pub fn bifurcation(dims: Dim3, trunk_r: f64, branch_r: f64) -> Result<Self> {
        if trunk_r <= 0.0 || branch_r <= 0.0 {
            return Err(Error::BadParameter(format!(
                "bifurcation radii must be positive, got trunk {trunk_r} branch {branch_r}"
            )));
        }
        let cy = (dims.ny as f64 - 1.0) / 2.0;
        let cz = (dims.nz as f64 - 1.0) / 2.0;
        let xs = dims.nx / 2;
        let sep_max = (cy - branch_r - 1.0).max(0.0);
        let span = (dims.nx - xs).max(1) as f64;
        let tr2 = trunk_r * trunk_r;
        let br2 = branch_r * branch_r;
        Self::from_fn(dims, |x, y, z| {
            let dz = z as f64 - cz;
            if x < xs {
                let dy = y as f64 - cy;
                dy * dy + dz * dz <= tr2
            } else {
                let sep = sep_max * (x - xs + 1) as f64 / span;
                let da = y as f64 - (cy - sep);
                let db = y as f64 - (cy + sep);
                da * da + dz * dz <= br2 || db * db + dz * dz <= br2
            }
        })
    }

    /// A random-but-deterministic porous bed: fluid blobs of radius
    /// `blob_r` are deposited (periodically wrapped) at LCG-driven centres
    /// until the fluid fraction reaches `target_fluid`. Clumped fluid keeps
    /// the tile set sparse at low fractions, unlike per-voxel noise.
    pub fn porous(dims: Dim3, blob_r: f64, target_fluid: f64, seed: u64) -> Result<Self> {
        if blob_r <= 0.0 {
            return Err(Error::BadParameter(format!("porous blob_r {blob_r} <= 0")));
        }
        if !(0.0..=1.0).contains(&target_fluid) || target_fluid == 0.0 {
            return Err(Error::BadParameter(format!(
                "porous target_fluid {target_fluid} outside (0, 1]"
            )));
        }
        let mut g = Self::from_fn(dims, |_, _, _| false)?;
        let total = g.fluid.len();
        let mut fluid_count = 0usize;
        let mut state = seed ^ 0x9e37_79b9_7f4a_7c15;
        let mut draw = |n: usize| -> usize {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) % n as u64) as usize
        };
        let rb = blob_r.ceil() as isize;
        let r2 = blob_r * blob_r;
        // Each blob deposits ≥ 1 voxel, so this terminates.
        while (fluid_count as f64) < target_fluid * total as f64 {
            let (cx, cy, cz) = (draw(dims.nx), draw(dims.ny), draw(dims.nz));
            for dx in -rb..=rb {
                for dy in -rb..=rb {
                    for dz in -rb..=rb {
                        let d2 = (dx * dx + dy * dy + dz * dz) as f64;
                        if d2 > r2 {
                            continue;
                        }
                        let x = wrapc(cx, dx, dims.nx);
                        let y = wrapc(cy, dy, dims.ny);
                        let z = wrapc(cz, dz, dims.nz);
                        let i = g.dims.idx(x, y, z);
                        if !g.fluid[i] {
                            g.fluid[i] = true;
                            fluid_count += 1;
                        }
                    }
                }
            }
        }
        Ok(g)
    }

    /// Extrude a dense cross-section mask along x: fluid wherever the mask
    /// is *not* solid.
    pub fn from_mask(nx: usize, mask: &SectionMask) -> Result<Self> {
        let (ny, nz) = mask.dims();
        Self::from_fn(Dim3 { nx, ny, nz }, |_, y, z| !mask.is_solid(y, z))
    }

    /// The equivalent `SectionMask` if this geometry is x-invariant
    /// (`None` otherwise) — the bridge to the dense masked path used by the
    /// equivalence tests.
    pub fn to_section_mask(&self) -> Option<SectionMask> {
        for x in 1..self.dims.nx {
            for y in 0..self.dims.ny {
                for z in 0..self.dims.nz {
                    if self.fluid[self.dims.idx(x, y, z)] != self.fluid[self.dims.idx(0, y, z)] {
                        return None;
                    }
                }
            }
        }
        let d = self.dims;
        Some(SectionMask::from_fn(d.ny, d.nz, |y, z| {
            !self.fluid[d.idx(0, y, z)]
        }))
    }

    /// Global box dimensions.
    pub fn dims(&self) -> Dim3 {
        self.dims
    }

    /// Whether voxel `(x, y, z)` is fluid.
    #[inline(always)]
    pub fn is_fluid(&self, x: usize, y: usize, z: usize) -> bool {
        self.fluid[self.dims.idx(x, y, z)]
    }

    /// Number of fluid voxels.
    pub fn fluid_count(&self) -> u64 {
        self.fluid.iter().filter(|&&f| f).count() as u64
    }

    /// Fluid voxels over total voxels.
    pub fn fluid_fraction(&self) -> f64 {
        self.fluid_count() as f64 / self.fluid.len() as f64
    }

    /// Check the constraints the tiled backend needs: every dimension a
    /// multiple of [`TILE_B`] and at least one fluid voxel.
    pub fn validate_tiles(&self) -> Result<()> {
        let d = self.dims;
        if d.nx % TILE_B != 0 || d.ny % TILE_B != 0 || d.nz % TILE_B != 0 {
            return Err(Error::BadDimensions(format!(
                "sparse tiles need dims divisible by {TILE_B}, got {}x{}x{}",
                d.nx, d.ny, d.nz
            )));
        }
        if !self.fluid.iter().any(|&f| f) {
            return Err(Error::BadParameter("geometry has no fluid voxels".into()));
        }
        Ok(())
    }

    /// Reject geometries where a multi-cell hop (gcd > 1 velocity, D3Q39
    /// shells (2,0,0)/(2,2,0)/(3,0,0)) connects two fluid voxels across a
    /// solid intermediate — the 3-D analogue of the dense
    /// `SectionMask` tunnelling check: bounce-back is applied at the
    /// streaming *endpoints*, so such a hop would leak through the wall.
    pub fn check_tunneling(&self, lat: &Lattice) -> Result<()> {
        let mut hops: Vec<([isize; 3], [isize; 3], isize)> = Vec::new();
        for c in lat.velocities() {
            let g = gcd3(
                c[0].unsigned_abs(),
                c[1].unsigned_abs(),
                c[2].unsigned_abs(),
            );
            if g > 1 {
                let gi = g as isize;
                let c = [c[0] as isize, c[1] as isize, c[2] as isize];
                hops.push((c, [c[0] / gi, c[1] / gi, c[2] / gi], gi));
            }
        }
        if hops.is_empty() {
            return Ok(());
        }
        let d = self.dims;
        for x in 0..d.nx {
            for y in 0..d.ny {
                for z in 0..d.nz {
                    if !self.fluid[d.idx(x, y, z)] {
                        continue;
                    }
                    for (c, e, g) in &hops {
                        let qx = wrapc(x, c[0], d.nx);
                        let qy = wrapc(y, c[1], d.ny);
                        let qz = wrapc(z, c[2], d.nz);
                        if !self.fluid[d.idx(qx, qy, qz)] {
                            continue;
                        }
                        for s in 1..*g {
                            let ix = wrapc(x, e[0] * s, d.nx);
                            let iy = wrapc(y, e[1] * s, d.ny);
                            let iz = wrapc(z, e[2] * s, d.nz);
                            if !self.fluid[d.idx(ix, iy, iz)] {
                                return Err(Error::BadParameter(format!(
                                    "lattice {} hop ({},{},{}) from fluid ({x},{y},{z}) \
                                     tunnels through solid ({ix},{iy},{iz})",
                                    lat.name(),
                                    c[0],
                                    c[1],
                                    c[2]
                                )));
                            }
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Append the self-describing RLE frame used by the checkpoint
    /// container: magic, dims, run-length-encoded voxels, FNV-1a checksum.
    pub fn encode_frame(&self, out: &mut Vec<u8>) {
        let start = out.len();
        out.extend_from_slice(GEOMETRY_FRAME_MAGIC);
        for n in [self.dims.nx, self.dims.ny, self.dims.nz] {
            out.extend_from_slice(&(n as u64).to_le_bytes());
        }
        out.push(u8::from(self.fluid[0]));
        let mut runs: Vec<u64> = Vec::new();
        let mut cur = self.fluid[0];
        let mut len = 0u64;
        for &v in &self.fluid {
            if v == cur {
                len += 1;
            } else {
                runs.push(len);
                cur = v;
                len = 1;
            }
        }
        runs.push(len);
        out.extend_from_slice(&(runs.len() as u64).to_le_bytes());
        for r in &runs {
            out.extend_from_slice(&r.to_le_bytes());
        }
        let sum = fnv1a(&out[start..]);
        out.extend_from_slice(&sum.to_le_bytes());
    }

    /// Decode a frame written by [`Self::encode_frame`], advancing `pos`.
    pub fn decode_frame(buf: &[u8], pos: &mut usize) -> Result<Self> {
        let (dims, first, runs, end) = Self::parse_frame(buf, *pos)?;
        let total = dims.nx * dims.ny * dims.nz;
        let mut fluid = Vec::with_capacity(total);
        let mut v = first;
        for r in runs {
            for _ in 0..r {
                fluid.push(v);
            }
            v = !v;
        }
        *pos = end;
        Ok(Self { dims, fluid })
    }

    /// Write this geometry as a standalone `.lbmgeo` voxel file: exactly one
    /// [`Self::encode_frame`] — magic, dims, RLE runs, FNV-1a checksum —
    /// and nothing else, so the on-disk format *is* the checkpoint
    /// container's geometry frame (same codec, same validator).
    pub fn to_file(&self, path: impl AsRef<std::path::Path>) -> Result<()> {
        let mut buf = Vec::new();
        self.encode_frame(&mut buf);
        std::fs::write(path.as_ref(), &buf)
            .map_err(|e| Error::Io(format!("write {}: {e}", path.as_ref().display())))
    }

    /// Load a `.lbmgeo` file written by [`Self::to_file`]. Trailing bytes
    /// after the frame are rejected, so a concatenation or a partially
    /// overwritten file cannot be silently mistaken for a valid geometry.
    pub fn from_file(path: impl AsRef<std::path::Path>) -> Result<Self> {
        let buf = std::fs::read(path.as_ref())
            .map_err(|e| Error::Io(format!("read {}: {e}", path.as_ref().display())))?;
        let mut pos = 0usize;
        let g = Self::decode_frame(&buf, &mut pos)?;
        if pos != buf.len() {
            return Err(Error::Corrupt(format!(
                "geometry file: {} trailing bytes after frame",
                buf.len() - pos
            )));
        }
        Ok(g)
    }

    /// Walk and checksum a frame without materialising the voxels.
    pub fn validate_frame(buf: &[u8], pos: &mut usize) -> Result<()> {
        let (_, _, _, end) = Self::parse_frame(buf, *pos)?;
        *pos = end;
        Ok(())
    }

    /// Shared frame parser: returns (dims, first value, run lengths, end
    /// offset) after verifying magic, bounds, run sum and checksum.
    #[allow(clippy::type_complexity)]
    fn parse_frame(buf: &[u8], start: usize) -> Result<(Dim3, bool, Vec<u64>, usize)> {
        let corrupt = |m: &str| Error::Corrupt(format!("geometry frame: {m}"));
        let mut pos = start;
        let take = |pos: &mut usize, n: usize| -> Result<&[u8]> {
            let s = buf
                .get(*pos..*pos + n)
                .ok_or_else(|| corrupt("truncated"))?;
            *pos += n;
            Ok(s)
        };
        let u64_at = |pos: &mut usize| -> Result<u64> {
            let b = take(pos, 8)?;
            Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
        };
        if take(&mut pos, 8)? != GEOMETRY_FRAME_MAGIC {
            return Err(corrupt("bad magic"));
        }
        let nx = u64_at(&mut pos)?;
        let ny = u64_at(&mut pos)?;
        let nz = u64_at(&mut pos)?;
        let total = nx
            .checked_mul(ny)
            .and_then(|p| p.checked_mul(nz))
            .filter(|&t| t > 0 && t <= 1 << 32)
            .ok_or_else(|| corrupt("absurd dimensions"))?;
        let first = match take(&mut pos, 1)?[0] {
            0 => false,
            1 => true,
            _ => return Err(corrupt("bad first-run value")),
        };
        let nruns = u64_at(&mut pos)?;
        if nruns == 0 || nruns as usize > buf.len().saturating_sub(pos) / 8 {
            return Err(corrupt("bad run count"));
        }
        let mut runs = Vec::with_capacity(nruns as usize);
        let mut sum = 0u64;
        for _ in 0..nruns {
            let r = u64_at(&mut pos)?;
            if r == 0 {
                return Err(corrupt("zero-length run"));
            }
            sum = sum.checked_add(r).ok_or_else(|| corrupt("run overflow"))?;
            runs.push(r);
        }
        if sum != total {
            return Err(corrupt("runs do not cover the box"));
        }
        let body_sum = fnv1a(&buf[start..pos]);
        let stored = u64_at(&mut pos)?;
        if stored != body_sum {
            return Err(corrupt("checksum mismatch"));
        }
        let dims = Dim3 {
            nx: nx as usize,
            ny: ny as usize,
            nz: nz as usize,
        };
        Ok((dims, first, runs, pos))
    }
}

/// gcd of three non-negative components.
fn gcd3(a: u32, b: u32, c: u32) -> u32 {
    fn gcd(mut a: u32, mut b: u32) -> u32 {
        while b != 0 {
            let t = a % b;
            a = b;
            b = t;
        }
        a
    }
    gcd(gcd(a, b), c)
}

/// One allocated tile of the packed list.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TileInfo {
    /// Tile coordinate (local to the owning [`SparseTiles`] grid).
    pub tx: usize,
    /// Tile y coordinate.
    pub ty: usize,
    /// Tile z coordinate.
    pub tz: usize,
    /// Fluid bitmap: bit [`tile_cell`]`(lx, ly, lz)` set ⇔ that cell is
    /// fluid. All-zero for rim tiles allocated only to back bounce-back.
    pub fluid: u64,
}

/// The packed fluid-tile list for one rank (or the whole box): which tiles
/// are allocated, their fluid bitmaps, and the 27-entry neighbour table that
/// resolves cross-tile streaming by indirect addressing.
///
/// Allocation rule: a tile is allocated iff it **or any of its 26 periodic
/// neighbours** contains fluid. The rim tiles hold the solid cells whose
/// bounce-back state feeds adjacent fluid; everything further from the fluid
/// is never touched and reads as vacuum through `-1` neighbour entries.
///
/// Packed order: owned tiles first (local coordinate order), then ghost
/// tiles — so owned tiles are the contiguous prefix `0..owned_tiles`.
#[derive(Clone, Debug)]
pub struct SparseTiles {
    /// Local tile-grid dimensions (owned columns plus ghost columns).
    pub tdims: Dim3,
    /// Packed allocated tiles.
    pub tiles: Vec<TileInfo>,
    /// Per-packed-tile neighbour table indexed by [`neighbor_slot`]:
    /// packed index of the neighbouring tile or `-1` if unallocated.
    pub neighbors: Vec<[i32; TILE_NEIGHBORS]>,
    /// Dense local tile grid → packed index or `-1`.
    pub tile_of: Vec<i32>,
    /// Count of owned (computed) tiles — the prefix of `tiles`.
    pub owned_tiles: usize,
    /// Fluid cells inside owned tiles.
    pub owned_fluid_cells: u64,
    /// Global tile column of the first *owned* local column.
    pub col_lo: usize,
    /// Ghost columns per side (0 serial; ≥ 1 distributed — two-grid needs
    /// 1, in-place AA needs `ceil(2·reach / TILE_B)`).
    pub ghost_cols: usize,
    /// Packed indices of owned boundary tiles shipped left: the outermost
    /// `ghost_cols` owned columns, ascending column then (ty, tz).
    pub send_left: Vec<usize>,
    /// Packed indices of owned boundary tiles shipped right.
    pub send_right: Vec<usize>,
    /// Packed indices of the left ghost tiles, in the matching order
    /// (ascending global column then (ty, tz)).
    pub recv_left: Vec<usize>,
    /// Packed indices of the right ghost tiles.
    pub recv_right: Vec<usize>,
    /// Per-packed-tile fast-path class: `true` iff the fluid bitmap is
    /// all-ones **and** all 27 neighbour entries are allocated, so a step
    /// can run the direct-addressed full-tile body with no per-cell mask
    /// or vacuum test.
    pub fast: Vec<bool>,
    /// Owned fast-class tiles, packed (z-local) order.
    pub fast_owned: Vec<usize>,
    /// Owned slow-class tiles (partial/rim), packed order. Together with
    /// [`Self::fast_owned`] this partitions `0..owned_tiles`.
    pub slow_owned: Vec<usize>,
    /// AA even-pass work lists: owned tiles containing fluid (rim tiles
    /// are strict no-ops in the in-place pattern), split by class.
    pub aa_even_fast: Vec<usize>,
    /// Slow-class half of the AA even-pass list.
    pub aa_even_slow: Vec<usize>,
    /// AA odd-pass work lists: the even-pass tiles plus the "ghost writer"
    /// tiles in the ghost columns adjacent to the owned span (local
    /// `tx == ghost_cols − 1` or `tx == ghost_cols + n_cols`), whose
    /// shallow cells deterministically duplicate the neighbour rank's
    /// scatter into our boundary slots.
    pub aa_odd_fast: Vec<usize>,
    /// Slow-class half of the AA odd-pass list.
    pub aa_odd_slow: Vec<usize>,
}

impl SparseTiles {
    /// Build the whole-box (serial) tile list: every column owned, no
    /// ghosts, neighbour table periodic on all axes.
    pub fn build_serial(geom: &Geometry) -> Result<Self> {
        let gcols = geom.dims().nx / TILE_B;
        Self::build(geom, 0, gcols, 0)
    }

    /// Build the tile list for one rank owning global tile columns
    /// `[col_lo, col_lo + n_cols)`. With `ghost_cols > 0`, that many ghost
    /// columns are appended on each side (periodically wrapped) and the
    /// exchange index lists are populated; tile allocation is always
    /// decided from the *global* geometry so every rank agrees on which
    /// boundary tiles exist.
    pub fn build(geom: &Geometry, col_lo: usize, n_cols: usize, ghost_cols: usize) -> Result<Self> {
        geom.validate_tiles()?;
        let d = geom.dims();
        let gt = Dim3 {
            nx: d.nx / TILE_B,
            ny: d.ny / TILE_B,
            nz: d.nz / TILE_B,
        };
        if n_cols == 0 || col_lo + n_cols > gt.nx {
            return Err(Error::BadDecomposition(format!(
                "tile columns [{col_lo}, {}) outside 0..{}",
                col_lo + n_cols,
                gt.nx
            )));
        }
        if ghost_cols > 0 && n_cols < ghost_cols {
            return Err(Error::BadDecomposition(format!(
                "rank owns {n_cols} tile column(s) but the halo protocol \
                 ships {ghost_cols} — widen the rank's span"
            )));
        }
        // Per-global-tile fluid bitmaps, then the rim-allocation decision.
        let mut masks = vec![0u64; gt.nx * gt.ny * gt.nz];
        for (i, m) in masks.iter_mut().enumerate() {
            let (tx, ty, tz) = gt.coords(i);
            *m = tile_mask(geom, tx, ty, tz);
        }
        let allocated = |tx: usize, ty: usize, tz: usize| -> bool {
            for dx in -1isize..=1 {
                for dy in -1isize..=1 {
                    for dz in -1isize..=1 {
                        let nx = wrapc(tx, dx, gt.nx);
                        let ny = wrapc(ty, dy, gt.ny);
                        let nz = wrapc(tz, dz, gt.nz);
                        if masks[gt.idx(nx, ny, nz)] != 0 {
                            return true;
                        }
                    }
                }
            }
            false
        };
        let g = ghost_cols;
        let tdims = Dim3 {
            nx: n_cols + 2 * g,
            ny: gt.ny,
            nz: gt.nz,
        };
        // Local tile-x → global tile column (ghosts wrap periodically).
        let global_tx = |ltx: usize| -> usize { wrapc(col_lo, ltx as isize - g as isize, gt.nx) };
        let mut tile_of = vec![-1i32; tdims.nx * tdims.ny * tdims.nz];
        let mut tiles: Vec<TileInfo> = Vec::new();
        let mut owned_fluid_cells = 0u64;
        // Owned pass, then ghost pass, each in local coordinate order.
        for pass in 0..2 {
            for ltx in 0..tdims.nx {
                let owned = ltx >= g && ltx < g + n_cols;
                if (pass == 0) != owned {
                    continue;
                }
                let gtx = global_tx(ltx);
                for ty in 0..tdims.ny {
                    for tz in 0..tdims.nz {
                        if !allocated(gtx, ty, tz) {
                            continue;
                        }
                        let mask = masks[gt.idx(gtx, ty, tz)];
                        tile_of[tdims.idx(ltx, ty, tz)] = tiles.len() as i32;
                        if owned {
                            owned_fluid_cells += u64::from(mask.count_ones());
                        }
                        tiles.push(TileInfo {
                            tx: ltx,
                            ty,
                            tz,
                            fluid: mask,
                        });
                    }
                }
            }
            if pass == 0 && tiles.is_empty() {
                return Err(Error::BadDecomposition(format!(
                    "tile columns [{col_lo}, {}) allocate no tiles",
                    col_lo + n_cols
                )));
            }
        }
        let owned_tiles = tiles
            .iter()
            .position(|t| t.tx < g || t.tx >= g + n_cols)
            .unwrap_or(tiles.len());
        // Neighbour tables. Owned tiles are the only computed ones, but the
        // table is filled for every packed tile; x never wraps locally when
        // ghost columns are present (owned tiles always have both sides in
        // range), and out-of-grid entries stay -1.
        let mut neighbors = vec![[-1i32; TILE_NEIGHBORS]; tiles.len()];
        for (p, t) in tiles.iter().enumerate() {
            for dx in -1isize..=1 {
                let ltx = t.tx as isize + dx;
                let ltx = if g > 0 {
                    if ltx < 0 || ltx >= tdims.nx as isize {
                        continue;
                    }
                    ltx as usize
                } else {
                    wrapc(t.tx, dx, tdims.nx)
                };
                for dy in -1isize..=1 {
                    let ty = wrapc(t.ty, dy, tdims.ny);
                    for dz in -1isize..=1 {
                        let tz = wrapc(t.tz, dz, tdims.nz);
                        neighbors[p][neighbor_slot(dx, dy, dz)] = tile_of[tdims.idx(ltx, ty, tz)];
                    }
                }
            }
        }
        let column = |ltx: usize| -> Vec<usize> {
            let mut v: Vec<usize> = (0..tiles.len()).filter(|&p| tiles[p].tx == ltx).collect();
            v.sort_unstable_by_key(|&p| (tiles[p].ty, tiles[p].tz));
            v
        };
        // Multi-column exchange sets concatenate ascending columns so that
        // this rank's send_left enumerates the same global (column, ty, tz)
        // sequence as the left neighbour's recv_right, tile for tile.
        let columns =
            |lo: usize, n: usize| -> Vec<usize> { (lo..lo + n).flat_map(column).collect() };
        let (send_left, send_right, recv_left, recv_right) = if g > 0 {
            (
                columns(g, g),
                columns(n_cols, g),
                columns(0, g),
                columns(g + n_cols, g),
            )
        } else {
            (Vec::new(), Vec::new(), Vec::new(), Vec::new())
        };
        // Build-time tile classification: a full-fluid tile with every
        // neighbour allocated runs the direct-addressed fast body; anything
        // touching a rim or vacuum keeps the per-cell gather walk.
        let fast: Vec<bool> = (0..tiles.len())
            .map(|p| tiles[p].fluid == u64::MAX && neighbors[p].iter().all(|&n| n >= 0))
            .collect();
        let split =
            |list: &[usize]| -> (Vec<usize>, Vec<usize>) { list.iter().partition(|&&p| fast[p]) };
        let owned_list: Vec<usize> = (0..owned_tiles).collect();
        let (fast_owned, slow_owned) = split(&owned_list);
        let aa_even_list: Vec<usize> = owned_list
            .iter()
            .copied()
            .filter(|&p| tiles[p].fluid != 0)
            .collect();
        let (aa_even_fast, aa_even_slow) = split(&aa_even_list);
        // Ghost writers: the ghost columns touching the owned span. Lattice
        // reach ≤ 3 < TILE_B, so only these columns hold cells whose odd
        // scatter reaches owned slots.
        let aa_odd_list: Vec<usize> = aa_even_list
            .iter()
            .copied()
            .chain((owned_tiles..tiles.len()).filter(|&p| {
                let tx = tiles[p].tx;
                tiles[p].fluid != 0 && (tx + 1 == g || tx == g + n_cols)
            }))
            .collect();
        let (aa_odd_fast, aa_odd_slow) = split(&aa_odd_list);
        Ok(Self {
            tdims,
            tiles,
            neighbors,
            tile_of,
            owned_tiles,
            owned_fluid_cells,
            col_lo,
            ghost_cols: g,
            send_left,
            send_right,
            recv_left,
            recv_right,
            fast,
            fast_owned,
            slow_owned,
            aa_even_fast,
            aa_even_slow,
            aa_odd_fast,
            aa_odd_slow,
        })
    }

    /// Packed tile count (owned + ghost).
    pub fn tile_count(&self) -> usize {
        self.tiles.len()
    }

    /// Global cell x of local cell x (owned region starts after the ghost
    /// columns), on a global box of `gnx` cells.
    pub fn global_cell_x(&self, local_x: usize, gnx: usize) -> usize {
        let base = self.col_lo * TILE_B;
        wrapc(
            base,
            local_x as isize - (self.ghost_cols * TILE_B) as isize,
            gnx,
        )
    }
}

/// Fluid bitmap of global tile `(tx, ty, tz)`.
fn tile_mask(geom: &Geometry, tx: usize, ty: usize, tz: usize) -> u64 {
    let mut m = 0u64;
    for lx in 0..TILE_B {
        for ly in 0..TILE_B {
            for lz in 0..TILE_B {
                if geom.is_fluid(tx * TILE_B + lx, ty * TILE_B + ly, tz * TILE_B + lz) {
                    m |= 1u64 << tile_cell(lx, ly, lz);
                }
            }
        }
    }
    m
}

/// Fluid-cell count per tile column (groups of [`TILE_B`] x-planes) — the
/// weights the rank decomposition balances instead of slab extent.
pub fn column_fluid_counts(geom: &Geometry) -> Vec<u64> {
    let d = geom.dims();
    let cols = d.nx / TILE_B;
    let mut counts = vec![0u64; cols];
    for x in 0..cols * TILE_B {
        for y in 0..d.ny {
            for z in 0..d.nz {
                if geom.is_fluid(x, y, z) {
                    counts[x / TILE_B] += 1;
                }
            }
        }
    }
    counts
}

/// Split tile columns into `ranks` contiguous ranges balanced by fluid-cell
/// count. Every rank gets at least one column; errors if `ranks` exceeds the
/// column count. Deterministic greedy sweep over the prefix sums.
pub fn partition_columns(counts: &[u64], ranks: usize) -> Result<Vec<(usize, usize)>> {
    if ranks == 0 {
        return Err(Error::BadDecomposition("0 ranks".into()));
    }
    if ranks > counts.len() {
        return Err(Error::BadDecomposition(format!(
            "{ranks} ranks > {} tile columns",
            counts.len()
        )));
    }
    let total: u64 = counts.iter().sum();
    let mut out = Vec::with_capacity(ranks);
    let mut lo = 0usize;
    let mut used = 0u64;
    for r in 0..ranks {
        let remaining_ranks = ranks - r;
        let mut hi = lo + 1;
        let mut acc = counts[lo];
        // Leave enough columns for the ranks after us; stop once we reach
        // an even share of what's left.
        let target = (total - used).div_ceil(remaining_ranks as u64);
        while hi < counts.len() - (remaining_ranks - 1) && acc < target {
            acc += counts[hi];
            hi += 1;
        }
        if r == ranks - 1 {
            while hi < counts.len() {
                acc += counts[hi];
                hi += 1;
            }
        }
        used += acc;
        out.push((lo, hi));
        lo = hi;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lattice::LatticeKind;

    fn dims(nx: usize, ny: usize, nz: usize) -> Dim3 {
        Dim3 { nx, ny, nz }
    }

    #[test]
    fn pipe_is_x_invariant_and_round_trips_mask() {
        let g = Geometry::pipe(dims(16, 24, 24), 8.0).unwrap();
        assert!(g.fluid_count() > 0);
        let mask = g.to_section_mask().expect("pipe is x-invariant");
        let back = Geometry::from_mask(16, &mask).unwrap();
        assert_eq!(g, back);
    }

    #[test]
    fn bifurcation_is_not_x_invariant() {
        let g = Geometry::bifurcation(dims(32, 32, 16), 6.0, 4.0).unwrap();
        assert!(g.to_section_mask().is_none());
        assert!(g.fluid_count() > 0);
    }

    #[test]
    fn porous_hits_target_fraction_deterministically() {
        let a = Geometry::porous(dims(24, 24, 24), 3.0, 0.1, 7).unwrap();
        let b = Geometry::porous(dims(24, 24, 24), 3.0, 0.1, 7).unwrap();
        assert_eq!(a, b);
        assert!(a.fluid_fraction() >= 0.1);
        assert!(a.fluid_fraction() < 0.3, "{}", a.fluid_fraction());
    }

    #[test]
    fn frame_round_trips_and_detects_corruption() {
        let g = Geometry::porous(dims(16, 16, 16), 2.5, 0.2, 3).unwrap();
        let mut buf = vec![0xAA; 3]; // leading junk the frame sits after
        let start = buf.len();
        g.encode_frame(&mut buf);
        let mut pos = start;
        let back = Geometry::decode_frame(&buf, &mut pos).unwrap();
        assert_eq!(pos, buf.len());
        assert_eq!(g, back);
        let mut pos = start;
        Geometry::validate_frame(&buf, &mut pos).unwrap();
        assert_eq!(pos, buf.len());
        // Any flipped bit anywhere in the frame must be caught.
        for byte in [start, start + 9, buf.len() - 1, buf.len() - 20] {
            let mut bad = buf.clone();
            bad[byte] ^= 0x10;
            let mut pos = start;
            assert!(
                Geometry::decode_frame(&bad, &mut pos).is_err(),
                "flip at {byte} undetected"
            );
        }
        let mut pos = start;
        assert!(Geometry::validate_frame(&buf[..buf.len() - 4], &mut pos).is_err());
    }

    #[test]
    fn lbmgeo_file_round_trips_and_rejects_damage() {
        let g = Geometry::bifurcation(dims(32, 32, 16), 6.0, 4.0).unwrap();
        let path = std::env::temp_dir().join(format!("lbmgeo-rt-{}.lbmgeo", std::process::id()));
        g.to_file(&path).unwrap();
        let back = Geometry::from_file(&path).unwrap();
        assert_eq!(g, back);

        // Corruption anywhere in the file fails the checksum walk.
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        assert!(Geometry::from_file(&path).is_err());

        // A valid frame with trailing garbage is not a valid file.
        bytes[mid] ^= 0x01;
        bytes.push(0);
        std::fs::write(&path, &bytes).unwrap();
        assert!(Geometry::from_file(&path).is_err());

        std::fs::remove_file(&path).unwrap();
        assert!(Geometry::from_file(&path).is_err(), "missing file is Err");
    }

    #[test]
    fn tiles_allocate_fluid_plus_rim_only() {
        // One fluid cell in the middle of a 16³ box: its tile plus the 26
        // surrounding rim tiles are allocated, the rest are not.
        let g = Geometry::from_fn(dims(16, 16, 16), |x, y, z| (x, y, z) == (8, 8, 8)).unwrap();
        let t = SparseTiles::build_serial(&g).unwrap();
        assert_eq!(t.tile_count(), 27);
        assert_eq!(t.owned_tiles, 27);
        assert_eq!(t.owned_fluid_cells, 1);
        // The fluid tile has all 27 neighbour entries allocated.
        let centre = t.tile_of[t.tdims.idx(2, 2, 2)];
        assert!(centre >= 0);
        let nbrs = t.neighbors[centre as usize];
        assert!(nbrs.iter().all(|&n| n >= 0));
        // A rim corner tile has unallocated entries.
        let corner = t.tile_of[t.tdims.idx(1, 1, 1)];
        assert!(corner >= 0);
        assert!(t.neighbors[corner as usize].contains(&-1));
        // Far tiles unallocated.
        assert_eq!(t.tile_of[t.tdims.idx(0, 0, 0)], -1);
    }

    #[test]
    fn all_solid_box_rejected_and_full_box_dense() {
        let g = Geometry::from_fn(dims(8, 8, 8), |_, _, _| false).unwrap();
        assert!(SparseTiles::build_serial(&g).is_err());
        let g = Geometry::from_fn(dims(8, 8, 8), |_, _, _| true).unwrap();
        let t = SparseTiles::build_serial(&g).unwrap();
        assert_eq!(t.tile_count(), 8);
        assert_eq!(t.owned_fluid_cells, 512);
    }

    #[test]
    fn indivisible_dims_rejected() {
        let g = Geometry::from_fn(dims(10, 8, 8), |_, _, _| true).unwrap();
        assert!(matches!(
            SparseTiles::build_serial(&g),
            Err(Error::BadDimensions(_))
        ));
    }

    #[test]
    fn ghost_build_mirrors_global_allocation() {
        let g = Geometry::pipe(dims(32, 16, 16), 6.0).unwrap();
        let serial = SparseTiles::build_serial(&g);
        let serial = serial.unwrap();
        let cols = 32 / TILE_B;
        let counts = column_fluid_counts(&g);
        let parts = partition_columns(&counts, 2).unwrap();
        let mut owned_sum = 0;
        for &(lo, hi) in &parts {
            let t = SparseTiles::build(&g, lo, hi - lo, 1).unwrap();
            owned_sum += t.owned_fluid_cells;
            assert_eq!(t.tdims.nx, hi - lo + 2);
            // Boundary send sets match the ghost recv sets of the
            // periodic neighbour by construction from the same geometry.
            assert_eq!(t.send_left.len(), t.recv_left.len());
            assert!(!t.send_left.is_empty());
            // Ghost tiles sit after every owned tile in packed order.
            assert!(t
                .tiles
                .iter()
                .skip(t.owned_tiles)
                .all(|ti| ti.tx == 0 || ti.tx == t.tdims.nx - 1));
        }
        assert_eq!(owned_sum, serial.owned_fluid_cells);
        assert_eq!(parts.last().unwrap().1, cols);
    }

    #[test]
    fn partition_balances_fluid_not_extent() {
        // All fluid concentrated in the first two columns: the split must
        // give rank 0 far fewer columns than rank 1.
        let counts = vec![1000, 1000, 1, 1, 1, 1, 1, 1];
        let parts = partition_columns(&counts, 2).unwrap();
        assert_eq!(parts[0], (0, 2));
        assert_eq!(parts[1], (2, 8));
        assert!(partition_columns(&counts, 9).is_err());
        let one = partition_columns(&counts, 1).unwrap();
        assert_eq!(one, vec![(0, 8)]);
    }

    #[test]
    fn tunneling_check_matches_lattice_reach() {
        // A 1-cell slit: fine for D3Q19 (unit hops), tunnels for D3Q39.
        let g = Geometry::from_fn(dims(8, 8, 8), |_, y, _| y != 3 && y != 5).unwrap();
        let q19 = Lattice::new(LatticeKind::D3Q19);
        let q39 = Lattice::new(LatticeKind::D3Q39);
        g.check_tunneling(&q19).unwrap();
        assert!(g.check_tunneling(&q39).is_err());
        // A 3-cell-thick wall stops even the (3,0,0) hop.
        let g = Geometry::from_fn(dims(8, 8, 8), |_, y, _| !(3..6).contains(&y)).unwrap();
        g.check_tunneling(&q39).unwrap();
    }

    #[test]
    fn global_cell_x_maps_ghosts_periodically() {
        let g = Geometry::pipe(dims(32, 16, 16), 6.0).unwrap();
        let t = SparseTiles::build(&g, 0, 4, 1).unwrap();
        assert_eq!(t.global_cell_x(4, 32), 0); // first owned cell
        assert_eq!(t.global_cell_x(0, 32), 28); // left ghost wraps
        assert_eq!(t.global_cell_x(4 + 16, 32), 16); // right ghost
    }

    #[test]
    fn fast_classification_partitions_owned_tiles() {
        // A wide pipe has all-fluid interior tiles (fast) and rim/partial
        // boundary tiles (slow); the two lists partition the owned prefix.
        let g = Geometry::pipe(dims(16, 24, 24), 10.0).unwrap();
        let t = SparseTiles::build_serial(&g).unwrap();
        assert!(!t.fast_owned.is_empty(), "wide pipe has interior tiles");
        assert!(!t.slow_owned.is_empty(), "pipe wall makes slow tiles");
        let mut all: Vec<usize> = t.fast_owned.iter().chain(&t.slow_owned).copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..t.owned_tiles).collect::<Vec<_>>());
        for &p in &t.fast_owned {
            assert_eq!(t.tiles[p].fluid, u64::MAX);
            assert!(t.neighbors[p].iter().all(|&n| n >= 0));
            assert!(t.fast[p]);
        }
        for &p in &t.slow_owned {
            assert!(!t.fast[p]);
        }
        // AA even lists: owned fluid tiles only; rim tiles excluded.
        let fluid_tiles = (0..t.owned_tiles)
            .filter(|&p| t.tiles[p].fluid != 0)
            .count();
        assert_eq!(t.aa_even_fast.len() + t.aa_even_slow.len(), fluid_tiles);
        // Serial build: no ghost writers, odd list == even list.
        assert_eq!(t.aa_odd_fast, t.aa_even_fast);
        assert_eq!(t.aa_odd_slow, t.aa_even_slow);
    }

    #[test]
    fn multi_ghost_column_exchange_sets_correspond() {
        // All-fluid 32³ box split in two: with 2 ghost columns each rank
        // ships its outermost 2 owned columns, and rank 0's send_left must
        // enumerate the same global tiles as rank 1's recv_right.
        let g = Geometry::from_fn(dims(32, 16, 16), |_, _, _| true).unwrap();
        let a = SparseTiles::build(&g, 0, 4, 2).unwrap();
        let b = SparseTiles::build(&g, 4, 4, 2).unwrap();
        assert_eq!(a.tdims.nx, 8);
        for t in [&a, &b] {
            for list in [&t.send_left, &t.send_right, &t.recv_left, &t.recv_right] {
                assert_eq!(list.len(), 2 * 4 * 4);
            }
        }
        let globals = |t: &SparseTiles, list: &[usize]| -> Vec<(usize, usize, usize)> {
            list.iter()
                .map(|&p| {
                    let ti = t.tiles[p];
                    let gx = t.global_cell_x(ti.tx * TILE_B, 32) / TILE_B;
                    (gx, ti.ty, ti.tz)
                })
                .collect()
        };
        // a's left boundary wraps to b's right ghosts and vice versa.
        assert_eq!(globals(&a, &a.send_left), globals(&b, &b.recv_right));
        assert_eq!(globals(&a, &a.send_right), globals(&b, &b.recv_left));
        assert_eq!(globals(&b, &b.send_left), globals(&a, &a.recv_right));
        // Ghost writers: only the adjacent ghost columns join the odd list.
        let odd: Vec<usize> = a
            .aa_odd_fast
            .iter()
            .chain(&a.aa_odd_slow)
            .copied()
            .collect();
        let even_len = a.aa_even_fast.len() + a.aa_even_slow.len();
        assert!(odd.len() > even_len);
        for &p in &odd {
            let tx = a.tiles[p].tx;
            assert!((2..6).contains(&tx) || tx == 1 || tx == 6, "tx {tx}");
        }
        // A rank narrower than the halo is rejected.
        assert!(SparseTiles::build(&g, 0, 1, 2).is_err());
    }
}
