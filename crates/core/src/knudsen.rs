//! Knudsen-number relations.
//!
//! The paper's motivation (§I): continuum CFD is valid for Kn ∈ [0, 0.1],
//! where `Kn = λ/L` with λ the mean free path and L the macroscopic length.
//! In BGK-LBM the mean free path is tied to the relaxation time; we adopt
//! the common convention `λ = c_s (τ − ½)` (the relaxation length travelled
//! at the sound speed), which makes `Kn = c_s (τ − ½) / L` — the same
//! scaling used by Shan–Yuan–Chen [11] and Zhang–Shan–Chen [5] up to an
//! O(1) constant. Regime classification follows the standard bands.

use crate::error::{Error, Result};

/// Flow regime by Knudsen number (standard classification; the paper's
/// continuum limit Kn ≤ 0.1 separates `Continuum`+`Slip` from the rest).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Regime {
    /// Kn < 0.001 — Navier–Stokes with no-slip walls.
    Continuum,
    /// 0.001 ≤ Kn < 0.1 — Navier–Stokes with slip corrections.
    Slip,
    /// 0.1 ≤ Kn < 10 — transition regime: beyond Navier–Stokes.
    Transition,
    /// Kn ≥ 10 — free molecular flow.
    FreeMolecular,
}

/// Mean free path `λ = c_s (τ − ½)` in lattice units.
pub fn mean_free_path(tau: f64, cs2: f64) -> f64 {
    cs2.sqrt() * (tau - 0.5)
}

/// Knudsen number of a flow with characteristic length `l` (lattice units).
pub fn knudsen(tau: f64, cs2: f64, l: f64) -> f64 {
    mean_free_path(tau, cs2) / l
}

/// Relaxation time that realises Knudsen number `kn` over length `l`.
pub fn tau_for_knudsen(kn: f64, cs2: f64, l: f64) -> Result<f64> {
    if !(kn > 0.0) || !(l > 0.0) {
        return Err(Error::BadParameter(format!(
            "knudsen and length must be positive (kn={kn}, l={l})"
        )));
    }
    Ok(0.5 + kn * l / cs2.sqrt())
}

/// Classify the regime for `kn`.
pub fn regime(kn: f64) -> Regime {
    if kn < 1e-3 {
        Regime::Continuum
    } else if kn < 0.1 {
        Regime::Slip
    } else if kn < 10.0 {
        Regime::Transition
    } else {
        Regime::FreeMolecular
    }
}

/// Whether a flow at `kn` is inside the paper's stated validity window for
/// conventional (Navier–Stokes) models, Kn ∈ [0, 0.1].
pub fn navier_stokes_valid(kn: f64) -> bool {
    kn <= 0.1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tau_knudsen_round_trip() {
        let cs2 = 2.0 / 3.0;
        let l = 40.0;
        for kn in [0.01, 0.1, 0.5, 2.0] {
            let tau = tau_for_knudsen(kn, cs2, l).unwrap();
            assert!(tau > 0.5);
            assert!((knudsen(tau, cs2, l) - kn).abs() < 1e-13);
        }
    }

    #[test]
    fn regime_bands() {
        assert_eq!(regime(1e-4), Regime::Continuum);
        assert_eq!(regime(0.01), Regime::Slip);
        assert_eq!(regime(0.5), Regime::Transition);
        assert_eq!(regime(50.0), Regime::FreeMolecular);
    }

    #[test]
    fn paper_validity_window() {
        assert!(navier_stokes_valid(0.05));
        assert!(navier_stokes_valid(0.1));
        assert!(!navier_stokes_valid(0.11));
    }

    #[test]
    fn rejects_nonpositive_inputs() {
        assert!(tau_for_knudsen(0.0, 1.0 / 3.0, 10.0).is_err());
        assert!(tau_for_knudsen(0.1, 1.0 / 3.0, 0.0).is_err());
    }

    #[test]
    fn mean_free_path_scales_with_tau() {
        let cs2 = 1.0 / 3.0;
        assert!(mean_free_path(0.5, cs2).abs() < 1e-15);
        let a = mean_free_path(0.6, cs2);
        let b = mean_free_path(0.7, cs2);
        assert!((b / a - 2.0).abs() < 1e-12);
    }
}
