//! Truncated Hermite equilibria (paper Eq. 2 and Eq. 3).
//!
//! The local equilibrium is a truncated Hermite expansion of the local
//! Maxwellian with density ρ and velocity **u** (paper §II):
//!
//! * **Second order** (Eq. 2, recovers Navier–Stokes):
//!   `f_i^eq = w_i ρ [1 + ξ/c_s² + ξ²/(2c_s⁴) − u²/(2c_s²)]`, `ξ = c_i·u`.
//! * **Third order** (Eq. 3, beyond Navier–Stokes):
//!   adds `ξ/(6c_s⁴) · (ξ²/c_s² − 3u²)` — the term related to the
//!   velocity-dependent viscosity, requiring a sixth-order isotropic lattice.
//!
//! (The paper's typeset equations drop two exponents — `u²/c_s` should be
//! `u²/c_s²` — we implement the standard Hermite forms, which its reference
//! [5] (Zhang, Shan & Chen 2006) states correctly.)

use crate::lattice::Lattice;

/// Truncation order of the Hermite equilibrium expansion.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EqOrder {
    /// Second-order truncation (paper Eq. 2) — Navier–Stokes hydrodynamics.
    Second,
    /// Third-order truncation (paper Eq. 3) — finite-Knudsen corrections.
    Third,
}

impl EqOrder {
    /// The natural order for a lattice: third order where the quadrature
    /// supports it (D3Q39), second otherwise.
    pub fn natural_for(lat: &Lattice) -> Self {
        lat.max_eq_order()
    }

    /// Short label used in reports ("O2"/"O3").
    pub const fn label(self) -> &'static str {
        match self {
            EqOrder::Second => "O2",
            EqOrder::Third => "O3",
        }
    }
}

/// Precomputed per-lattice equilibrium constants, shared by all kernel
/// variants past the `Orig` rung (the paper's DH optimization replaces
/// repeated divisions with multiplications by these reciprocals).
#[derive(Debug, Clone)]
pub struct EqConsts {
    /// Discrete velocities as f64 triples.
    pub c: Vec<[f64; 3]>,
    /// Quadrature weights.
    pub w: Vec<f64>,
    /// `1 / c_s²`.
    pub inv_cs2: f64,
    /// `1 / (2 c_s⁴)`.
    pub inv_2cs4: f64,
    /// `1 / (6 c_s⁶)`.
    pub inv_6cs6: f64,
    /// `1 / (2 c_s²)`.
    pub inv_2cs2: f64,
    /// `c_s²` itself (used by the third-order term).
    pub cs2: f64,
}

impl EqConsts {
    /// Precompute constants for `lat`.
    pub fn new(lat: &Lattice) -> Self {
        let cs2 = lat.cs2();
        Self {
            c: lat
                .velocities()
                .iter()
                .map(|c| [c[0] as f64, c[1] as f64, c[2] as f64])
                .collect(),
            w: lat.weights().to_vec(),
            inv_cs2: 1.0 / cs2,
            inv_2cs4: 1.0 / (2.0 * cs2 * cs2),
            inv_6cs6: 1.0 / (6.0 * cs2 * cs2 * cs2),
            inv_2cs2: 1.0 / (2.0 * cs2),
            cs2,
        }
    }

    /// Number of velocities.
    #[inline]
    pub fn q(&self) -> usize {
        self.w.len()
    }
}

/// Equilibrium distribution for one velocity index.
///
/// Straightforward (division-containing) form used by the `Orig` kernel and
/// as the oracle in tests; the optimized kernels inline the reciprocal form
/// via [`EqConsts`].
pub fn feq_i(lat: &Lattice, order: EqOrder, i: usize, rho: f64, u: [f64; 3]) -> f64 {
    let cs2 = lat.cs2();
    let c = lat.velocities()[i];
    let cf = [c[0] as f64, c[1] as f64, c[2] as f64];
    let xi = cf[0] * u[0] + cf[1] * u[1] + cf[2] * u[2];
    let u2 = u[0] * u[0] + u[1] * u[1] + u[2] * u[2];
    let mut poly = 1.0 + xi / cs2 + (xi * xi) / (2.0 * cs2 * cs2) - u2 / (2.0 * cs2);
    if order == EqOrder::Third {
        poly += xi / (6.0 * cs2 * cs2) * ((xi * xi) / cs2 - 3.0 * u2);
    }
    lat.weights()[i] * rho * poly
}

/// Fill `out[0..q]` with the equilibrium populations for `(rho, u)`.
pub fn feq(lat: &Lattice, order: EqOrder, rho: f64, u: [f64; 3], out: &mut [f64]) {
    assert_eq!(out.len(), lat.q(), "feq output slice must have length Q");
    for (i, o) in out.iter_mut().enumerate() {
        *o = feq_i(lat, order, i, rho, u);
    }
}

/// Reciprocal-form equilibrium used by the optimized kernels: identical
/// mathematics to [`feq_i`], expressed with precomputed constants so the hot
/// loop contains no division (paper §V-B).
#[inline(always)]
pub fn feq_i_consts(k: &EqConsts, third_order: bool, i: usize, rho: f64, u: [f64; 3]) -> f64 {
    let c = k.c[i];
    let xi = c[0] * u[0] + c[1] * u[1] + c[2] * u[2];
    let u2 = u[0] * u[0] + u[1] * u[1] + u[2] * u[2];
    let mut poly = 1.0 + xi * k.inv_cs2 + xi * xi * k.inv_2cs4 - u2 * k.inv_2cs2;
    if third_order {
        poly += xi * (xi * xi - 3.0 * k.cs2 * u2) * k.inv_6cs6;
    }
    k.w[i] * rho * poly
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lattice::LatticeKind;

    fn moments_of_feq(lat: &Lattice, order: EqOrder, rho: f64, u: [f64; 3]) -> (f64, [f64; 3]) {
        let mut f = vec![0.0; lat.q()];
        feq(lat, order, rho, u, &mut f);
        let m0: f64 = f.iter().sum();
        let mut m1 = [0.0; 3];
        for (fi, c) in f.iter().zip(lat.velocities()) {
            for a in 0..3 {
                m1[a] += fi * c[a] as f64;
            }
        }
        (m0, m1)
    }

    #[test]
    fn equilibrium_conserves_density_and_momentum() {
        for kind in LatticeKind::ALL {
            let lat = Lattice::new(kind);
            let orders: &[EqOrder] = if kind == LatticeKind::D3Q39 {
                &[EqOrder::Second, EqOrder::Third]
            } else {
                &[EqOrder::Second]
            };
            for &order in orders {
                let rho = 1.13;
                let u = [0.03, -0.02, 0.05];
                let (m0, m1) = moments_of_feq(&lat, order, rho, u);
                assert!((m0 - rho).abs() < 1e-13, "{kind:?} {order:?}: {m0}");
                for a in 0..3 {
                    assert!(
                        (m1[a] - rho * u[a]).abs() < 1e-13,
                        "{kind:?} {order:?} axis {a}: {} vs {}",
                        m1[a],
                        rho * u[a]
                    );
                }
            }
        }
    }

    #[test]
    fn at_rest_equilibrium_is_weights_times_rho() {
        for kind in LatticeKind::ALL {
            let lat = Lattice::new(kind);
            let mut f = vec![0.0; lat.q()];
            feq(&lat, EqOrder::Second, 2.0, [0.0; 3], &mut f);
            for (fi, w) in f.iter().zip(lat.weights()) {
                assert!((fi - 2.0 * w).abs() < 1e-15);
            }
        }
    }

    #[test]
    fn second_moment_is_pressure_plus_advection() {
        // Σ f_i^eq c_a c_b = ρ (c_s² δ_ab + u_a u_b) exactly, both orders,
        // because both lattices are at least fourth-order isotropic.
        for (kind, order) in [
            (LatticeKind::D3Q19, EqOrder::Second),
            (LatticeKind::D3Q39, EqOrder::Third),
        ] {
            let lat = Lattice::new(kind);
            let rho = 0.97;
            let u = [0.04, 0.01, -0.03];
            let mut f = vec![0.0; lat.q()];
            feq(&lat, order, rho, u, &mut f);
            for a in 0..3 {
                for b in 0..3 {
                    let m: f64 = f
                        .iter()
                        .zip(lat.velocities())
                        .map(|(fi, c)| fi * (c[a] * c[b]) as f64)
                        .sum();
                    let want = rho * (lat.cs2() * ((a == b) as u8 as f64) + u[a] * u[b]);
                    assert!(
                        (m - want).abs() < 1e-12,
                        "{kind:?} ({a},{b}): {m} vs {want}"
                    );
                }
            }
        }
    }

    #[test]
    fn third_moment_correct_only_at_third_order_on_d3q39() {
        // Σ f^eq c c c = ρ[c_s²(u δ)_sym + u u u]. The third-order term
        // exists precisely to fix this moment (velocity-dependent viscosity,
        // paper §II); second-order truncation misses the u³ part.
        let lat = Lattice::new(LatticeKind::D3Q39);
        let rho = 1.0;
        let u = [0.1, 0.0, 0.0];
        let want_xxx = rho * (3.0 * lat.cs2() * u[0] + u[0].powi(3));

        let mut f3 = vec![0.0; lat.q()];
        feq(&lat, EqOrder::Third, rho, u, &mut f3);
        let m3: f64 = f3
            .iter()
            .zip(lat.velocities())
            .map(|(fi, c)| fi * (c[0] * c[0] * c[0]) as f64)
            .sum();
        assert!((m3 - want_xxx).abs() < 1e-12, "O3: {m3} vs {want_xxx}");

        let mut f2 = vec![0.0; lat.q()];
        feq(&lat, EqOrder::Second, rho, u, &mut f2);
        let m2: f64 = f2
            .iter()
            .zip(lat.velocities())
            .map(|(fi, c)| fi * (c[0] * c[0] * c[0]) as f64)
            .sum();
        let err2 = (m2 - want_xxx).abs();
        assert!(
            (err2 - u[0].powi(3)).abs() < 1e-12,
            "O2 should miss exactly the u³ term: err={err2}"
        );
    }

    #[test]
    fn consts_form_matches_division_form() {
        for kind in [LatticeKind::D3Q19, LatticeKind::D3Q39] {
            let lat = Lattice::new(kind);
            let k = EqConsts::new(&lat);
            for &order in &[EqOrder::Second, EqOrder::Third] {
                let rho = 1.21;
                let u = [0.06, -0.04, 0.02];
                for i in 0..lat.q() {
                    let a = feq_i(&lat, order, i, rho, u);
                    let b = feq_i_consts(&k, order == EqOrder::Third, i, rho, u);
                    assert!(
                        (a - b).abs() < 1e-14 * a.abs().max(1.0),
                        "{kind:?} {order:?} i={i}: {a} vs {b}"
                    );
                }
            }
        }
    }

    #[test]
    fn order_labels() {
        assert_eq!(EqOrder::Second.label(), "O2");
        assert_eq!(EqOrder::Third.label(), "O3");
    }
}
