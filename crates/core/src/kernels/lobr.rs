//! `LoBr` — loop restructuring and branch reduction (paper §V-D, Fig. 6).
//!
//! Two ideas from the paper, translated to this code base:
//!
//! * **Region separation.** The paper splits the x loops into the ghost-low /
//!   interior / ghost-high groups; in `lbm-sim` the deep-halo driver already
//!   passes those disjoint x ranges. *Within* the kernel the same idea is
//!   applied to the y axis: the rows whose pull-source wraps around (at most
//!   `|c_y|` at each end) are split off, so the bulk of the y loop runs with
//!   direct `y − c_y` indexing and **zero** wrap lookups or branches.
//! * **Branch elimination by specialization.** The paper replaces inner-loop
//!   `if`s with precomputed index arrays. Here the moment-accumulation loop
//!   is monomorphised per velocity-component mask, so velocities with zero
//!   components contribute with no multiply at all and no test inside the
//!   z loop (adding `+0.0` terms is what the other rungs do; skipping them is
//!   bit-identical because the accumulators start at `+0.0`).

use crate::field::DistField;
use crate::kernels::dh::ZB;
use crate::kernels::{KernelCtx, StreamTables};

/// LoBr stream: rotate-copy rows with the y loop split into
/// wrap-head / bulk / wrap-tail regions (no per-row table lookups in bulk).
pub fn stream(
    ctx: &KernelCtx,
    tables: &StreamTables,
    src: &DistField,
    dst: &mut DistField,
    x_lo: usize,
    x_hi: usize,
) {
    let dims = src.alloc_dims();
    debug_assert!(x_lo >= ctx.lat.reach());
    debug_assert!(x_hi + ctx.lat.reach() <= dims.nx);
    let nz = dims.nz;
    let ny = dims.ny;
    for i in 0..ctx.lat.q() {
        let c = ctx.lat.velocities()[i];
        let (cx, cy, cz) = (c[0], c[1], c[2]);
        let src_slab = src.slab(i);
        let dst_slab = dst.slab_mut(i);
        // Bulk rows: ys = y - cy stays in [0, ny).
        let bulk_lo = cy.max(0) as usize;
        let bulk_hi = (ny as i32 + cy.min(0)) as usize;
        let ty = tables.y_for(cy);
        for x in x_lo..x_hi {
            let xs = (x as isize - cx as isize) as usize;
            // Head region (wrapping rows below bulk_lo).
            for y in 0..bulk_lo {
                copy_row(dst_slab, src_slab, dims, x, y, xs, ty.src(y), cz, nz);
            }
            // Bulk: additive row bases, no lookups, no branches.
            let mut db = dims.idx(x, bulk_lo, 0);
            let mut sb = dims.idx(xs, (bulk_lo as i32 - cy) as usize, 0);
            for _y in bulk_lo..bulk_hi {
                rotate_copy(&mut dst_slab[db..db + nz], &src_slab[sb..sb + nz], cz);
                db += nz;
                sb += nz;
            }
            // Tail region (wrapping rows at the top).
            for y in bulk_hi..ny {
                copy_row(dst_slab, src_slab, dims, x, y, xs, ty.src(y), cz, nz);
            }
        }
    }
}

#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn copy_row(
    dst_slab: &mut [f64],
    src_slab: &[f64],
    dims: crate::index::Dim3,
    x: usize,
    y: usize,
    xs: usize,
    ys: usize,
    cz: i32,
    nz: usize,
) {
    let db = dims.idx(x, y, 0);
    let sb = dims.idx(xs, ys, 0);
    rotate_copy(&mut dst_slab[db..db + nz], &src_slab[sb..sb + nz], cz);
}

/// `dst[z] = src[z − cz]` with periodic wrap, as at most two memcpy's.
#[inline(always)]
fn rotate_copy(dst: &mut [f64], src: &[f64], cz: i32) {
    let nz = dst.len();
    if cz == 0 {
        dst.copy_from_slice(src);
    } else if cz > 0 {
        let m = cz as usize;
        dst[m..].copy_from_slice(&src[..nz - m]);
        dst[..m].copy_from_slice(&src[nz - m..]);
    } else {
        let m = (-cz) as usize;
        dst[..nz - m].copy_from_slice(&src[m..]);
        dst[nz - m..].copy_from_slice(&src[..m]);
    }
}

/// LoBr collide: CF's pointer discipline plus component-mask specialization
/// of the moment-accumulation pass.
pub fn collide(ctx: &KernelCtx, f: &mut DistField, x_lo: usize, x_hi: usize) {
    if ctx.third_order() {
        collide_impl::<true>(ctx, f, x_lo, x_hi);
    } else {
        collide_impl::<false>(ctx, f, x_lo, x_hi);
    }
}

/// Accumulate one slab segment into the moment lines, compile-time
/// specialised on which velocity components are nonzero.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
unsafe fn accumulate<const CX: bool, const CY: bool, const CZ: bool>(
    p: *const f64,
    blk: usize,
    c: [f64; 3],
    rho: &mut [f64; ZB],
    mx: &mut [f64; ZB],
    my: &mut [f64; ZB],
    mz: &mut [f64; ZB],
) {
    for j in 0..blk {
        // SAFETY: caller guarantees p..p+blk in bounds.
        let fv = unsafe { *p.add(j) };
        rho[j] += fv;
        if CX {
            mx[j] += fv * c[0];
        }
        if CY {
            my[j] += fv * c[1];
        }
        if CZ {
            mz[j] += fv * c[2];
        }
    }
}

fn collide_impl<const THIRD: bool>(ctx: &KernelCtx, f: &mut DistField, x_lo: usize, x_hi: usize) {
    let d = f.alloc_dims();
    let q = ctx.lat.q();
    let k = &ctx.consts;
    let omega = ctx.omega;
    let slab_len = f.slab_stride();
    let data = f.as_mut_slice();
    let base_ptr = data.as_mut_ptr();
    let total = data.len();

    // Component masks hoisted out of all spatial loops (branch reduction).
    let masks: Vec<(bool, bool, bool)> =
        k.c.iter()
            .map(|c| (c[0] != 0.0, c[1] != 0.0, c[2] != 0.0))
            .collect();

    let mut rho = [0.0f64; ZB];
    let mut mx = [0.0f64; ZB];
    let mut my = [0.0f64; ZB];
    let mut mz = [0.0f64; ZB];
    let mut ux = [0.0f64; ZB];
    let mut uy = [0.0f64; ZB];
    let mut uz = [0.0f64; ZB];
    let mut u2 = [0.0f64; ZB];

    for x in x_lo..x_hi {
        for y in 0..d.ny {
            let base = d.idx(x, y, 0);
            let mut z0 = 0;
            while z0 < d.nz {
                let blk = (d.nz - z0).min(ZB);
                rho[..blk].fill(0.0);
                mx[..blk].fill(0.0);
                my[..blk].fill(0.0);
                mz[..blk].fill(0.0);
                for i in 0..q {
                    let c = k.c[i];
                    let off = i * slab_len + base + z0;
                    debug_assert!(off + blk <= total);
                    // SAFETY: off+blk within the allocation (see CF kernel).
                    let p = unsafe { base_ptr.add(off) as *const f64 };
                    // SAFETY: p..p+blk in bounds, per above.
                    unsafe {
                        match masks[i] {
                            (false, false, false) => {
                                accumulate::<false, false, false>(
                                    p, blk, c, &mut rho, &mut mx, &mut my, &mut mz,
                                );
                            }
                            (true, false, false) => {
                                accumulate::<true, false, false>(
                                    p, blk, c, &mut rho, &mut mx, &mut my, &mut mz,
                                );
                            }
                            (false, true, false) => {
                                accumulate::<false, true, false>(
                                    p, blk, c, &mut rho, &mut mx, &mut my, &mut mz,
                                );
                            }
                            (false, false, true) => {
                                accumulate::<false, false, true>(
                                    p, blk, c, &mut rho, &mut mx, &mut my, &mut mz,
                                );
                            }
                            (true, true, false) => {
                                accumulate::<true, true, false>(
                                    p, blk, c, &mut rho, &mut mx, &mut my, &mut mz,
                                );
                            }
                            (true, false, true) => {
                                accumulate::<true, false, true>(
                                    p, blk, c, &mut rho, &mut mx, &mut my, &mut mz,
                                );
                            }
                            (false, true, true) => {
                                accumulate::<false, true, true>(
                                    p, blk, c, &mut rho, &mut mx, &mut my, &mut mz,
                                );
                            }
                            (true, true, true) => {
                                accumulate::<true, true, true>(
                                    p, blk, c, &mut rho, &mut mx, &mut my, &mut mz,
                                );
                            }
                        }
                    }
                }
                for j in 0..blk {
                    let inv = 1.0 / rho[j];
                    ux[j] = mx[j] * inv;
                    uy[j] = my[j] * inv;
                    uz[j] = mz[j] * inv;
                    u2[j] = ux[j] * ux[j] + uy[j] * uy[j] + uz[j] * uz[j];
                }
                for i in 0..q {
                    let c = k.c[i];
                    let w = k.w[i];
                    let off = i * slab_len + base + z0;
                    debug_assert!(off + blk <= total);
                    // SAFETY: as above.
                    let p = unsafe { base_ptr.add(off) };
                    for j in 0..blk {
                        let xi = c[0] * ux[j] + c[1] * uy[j] + c[2] * uz[j];
                        let mut poly =
                            1.0 + xi * k.inv_cs2 + xi * xi * k.inv_2cs4 - u2[j] * k.inv_2cs2;
                        if THIRD {
                            poly += xi * (xi * xi - 3.0 * k.cs2 * u2[j]) * k.inv_6cs6;
                        }
                        let feq = w * rho[j] * poly;
                        // SAFETY: j < blk ≤ in-bounds run.
                        unsafe {
                            let fv = *p.add(j);
                            *p.add(j) = fv + omega * (feq - fv);
                        }
                    }
                }
                z0 += blk;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collision::Bgk;
    use crate::equilibrium::EqOrder;
    use crate::index::Dim3;
    use crate::kernels::{cf, dh};
    use crate::lattice::LatticeKind;

    fn ctx(kind: LatticeKind) -> KernelCtx {
        let order = if kind == LatticeKind::D3Q39 {
            EqOrder::Third
        } else {
            EqOrder::Second
        };
        KernelCtx::new(kind, order, Bgk::new(0.66).unwrap())
    }

    fn random_field(q: usize, dims: Dim3, halo: usize, seed: u64) -> DistField {
        let mut f = DistField::new(q, dims, halo).unwrap();
        let mut state = seed | 1;
        for v in f.as_mut_slice() {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            *v = 0.03 + (state % 883) as f64 / 1100.0;
        }
        f
    }

    #[test]
    fn lobr_stream_bitwise_equals_dh_stream() {
        for kind in [LatticeKind::D3Q19, LatticeKind::D3Q39] {
            let c = ctx(kind);
            let k = c.lat.reach();
            // ny barely larger than 2*reach exercises head/bulk/tail splits.
            let dims = Dim3::new(7, 7, 8);
            let src = random_field(c.lat.q(), dims, k, 31);
            let tables = StreamTables::new(dims.ny, dims.nz);
            let mut a = DistField::new(c.lat.q(), dims, k).unwrap();
            let mut b = DistField::new(c.lat.q(), dims, k).unwrap();
            dh::stream(&c, &tables, &src, &mut a, k, k + dims.nx);
            stream(&c, &tables, &src, &mut b, k, k + dims.nx);
            assert_eq!(a.max_abs_diff_owned(&b), 0.0, "{kind:?}");
        }
    }

    #[test]
    fn lobr_collide_bitwise_equals_cf_collide() {
        for kind in [LatticeKind::D3Q19, LatticeKind::D3Q39] {
            let c = ctx(kind);
            let dims = Dim3::new(3, 4, 67);
            let mut a = random_field(c.lat.q(), dims, 0, 13);
            let mut b = a.clone();
            cf::collide(&c, &mut a, 0, dims.nx);
            collide(&c, &mut b, 0, dims.nx);
            assert_eq!(a.max_abs_diff_owned(&b), 0.0, "{kind:?}");
        }
    }

    #[test]
    fn rotate_copy_small_cases() {
        let src = [1.0, 2.0, 3.0, 4.0, 5.0];
        let mut dst = [0.0; 5];
        rotate_copy(&mut dst, &src, 0);
        assert_eq!(dst, src);
        rotate_copy(&mut dst, &src, 2); // dst[z] = src[z-2]
        assert_eq!(dst, [4.0, 5.0, 1.0, 2.0, 3.0]);
        rotate_copy(&mut dst, &src, -1); // dst[z] = src[z+1]
        assert_eq!(dst, [2.0, 3.0, 4.0, 5.0, 1.0]);
        rotate_copy(&mut dst, &src, -3);
        assert_eq!(dst, [4.0, 5.0, 1.0, 2.0, 3.0]);
    }
}
