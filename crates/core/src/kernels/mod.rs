//! The optimization ladder of stream/collide kernels (paper §V, Fig. 8).
//!
//! Each rung of the paper's cumulative optimization study maps to a concrete
//! kernel variant here (the two communication rungs change the *schedule*,
//! not the compute kernel, and live in `lbm-sim`):
//!
//! | Rung    | Paper §V               | Compute kernel                      | Comm schedule (lbm-sim) |
//! |---------|------------------------|-------------------------------------|-------------------------|
//! | `Orig`  | naive implementation   | [`naive`] — branchy wrap, divisions | blocking, every step    |
//! | `Gc`    | ghost cells (V-A)      | [`ghost`] — branch-free via tables  | blocking, end of step   |
//! | `Dh`    | data handling (V-B)    | [`dh`] — slab-order stream, line-blocked collide, reciprocals | blocking, end of step |
//! | `Cf`    | compiler opts (V-C)    | [`cf`] — bounds-check-elided, force-inlined (the Rust analogue of O5/IPA) | blocking, end of step |
//! | `LoBr`  | loop/branch restr. (V-D)| [`lobr`] — region-split loops, hoisted index arithmetic | blocking, end of step |
//! | `NbC`   | nonblocking comm (V-E) | [`lobr`]                            | nonblocking             |
//! | `GcC`   | ghost-collide (V-F)    | [`lobr`]                            | overlapped (Fig. 7)     |
//! | `Simd`  | SIMD (V-G)             | [`simd`] — AVX2+FMA collide         | overlapped (Fig. 7)     |
//! | `Fused` | §VII future work       | [`fused`]/[`fused_simd`] — single-pass stream+collide, AVX2+FMA | overlapped (Fig. 7) |
//!
//! The `Fused` rung goes past the paper's ladder: it implements the
//! conclusion's "reduce the memory accesses per lattice update" direction by
//! merging the two sweeps into one pass (`2·Q·8` bytes/cell instead of the
//! split pipeline's `4·Q·8`), with the same SIMD vectorization and the same
//! overlapped communication schedule as the `Simd` rung. Split `stream`/
//! `collide` calls at this level fall back to the `Simd`-rung kernels; the
//! single-pass path is reached through [`stream_collide`].
//!
//! All variants compute the *same* stream and BGK update; the naive pair is
//! the semantic oracle (property-tested against [`reference`]); the optimized
//! pairs must agree within floating-point reassociation tolerance.
//!
//! Orthogonal to the ladder, the **storage dimension**
//! ([`crate::field::StorageMode`]) selects how the populations are
//! resident: the two-grid double buffer every rung above runs on, or the
//! AA-pattern single array of [`aa`] (in-place even/odd steps, half the
//! resident memory, `2·Q·8` model traffic). The AA dispatchers below
//! ([`aa_even_scenario`], [`aa_odd_scenario`] and their `_par` forms) map
//! the rung's kernel class onto the AA drivers: scalar classes run the
//! shared scalar tile body, `Simd`/`Fused` the AVX2+FMA tile.

pub mod aa;
pub mod cf;
pub mod dh;
pub mod forced;
pub mod fused;
pub mod fused_simd;
pub mod ghost;
pub mod lobr;
pub mod naive;
pub mod op;
pub mod par;
pub mod reference;
pub mod simd;
pub mod sparse;

pub use op::{CollideOp, GuoForced, PlainBgk};

use crate::boundary::BoundarySpec;
use crate::collision::Bgk;
use crate::equilibrium::{EqConsts, EqOrder};
use crate::field::DistField;
use crate::index::WrapTable;
use crate::lattice::{Lattice, LatticeKind};

/// Largest velocity count across supported lattices (stack-buffer bound).
pub const MAX_Q: usize = 39;

/// The cumulative optimization levels of the paper's Fig. 8 x-axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum OptLevel {
    /// Naive implementation (paper Fig. 2-4).
    Orig,
    /// + ghost cells (§V-A).
    Gc,
    /// + data handling: loop order, temporaries, reciprocals (§V-B).
    Dh,
    /// + compiler-optimization analogue: bounds-check elision, inlining (§V-C).
    Cf,
    /// + loop restructuring and branch reduction (§V-D).
    LoBr,
    /// + nonblocking communication (§V-E; schedule change only).
    NbC,
    /// + separate ghost-cell collide overlap (§V-F; schedule change only).
    GcC,
    /// + SIMD vectorization (§V-G).
    Simd,
    /// + fused single-pass stream+collide (§VII future work): halves
    ///   the memory traffic per lattice update.
    Fused,
}

impl OptLevel {
    /// The ladder in paper order, extended by the fused top rung.
    pub const ALL: [OptLevel; 9] = [
        OptLevel::Orig,
        OptLevel::Gc,
        OptLevel::Dh,
        OptLevel::Cf,
        OptLevel::LoBr,
        OptLevel::NbC,
        OptLevel::GcC,
        OptLevel::Simd,
        OptLevel::Fused,
    ];

    /// Label as used on the paper's Fig. 8 axis.
    pub const fn name(self) -> &'static str {
        match self {
            OptLevel::Orig => "Orig",
            OptLevel::Gc => "GC",
            OptLevel::Dh => "DH",
            OptLevel::Cf => "CF",
            OptLevel::LoBr => "LoBr",
            OptLevel::NbC => "NB-C",
            OptLevel::GcC => "GC_C",
            OptLevel::Simd => "SIMD",
            OptLevel::Fused => "Fused",
        }
    }

    /// Parse a Fig. 8 label (case-insensitive, `-`/`_` ignored).
    pub fn parse(s: &str) -> Option<Self> {
        let t: String = s
            .trim()
            .chars()
            .filter(|c| *c != '-' && *c != '_')
            .collect::<String>()
            .to_ascii_lowercase();
        Some(match t.as_str() {
            "orig" => OptLevel::Orig,
            "gc" => OptLevel::Gc,
            "dh" => OptLevel::Dh,
            "cf" => OptLevel::Cf,
            "lobr" => OptLevel::LoBr,
            "nbc" => OptLevel::NbC,
            "gcc" => OptLevel::GcC,
            "simd" => OptLevel::Simd,
            "fused" => OptLevel::Fused,
            _ => return None,
        })
    }

    /// Which compute-kernel implementation this rung runs (the NB-C and GC-C
    /// rungs reuse the LoBr kernels).
    pub const fn kernel_class(self) -> KernelClass {
        match self {
            OptLevel::Orig => KernelClass::Naive,
            OptLevel::Gc => KernelClass::Ghost,
            OptLevel::Dh => KernelClass::Dh,
            OptLevel::Cf => KernelClass::Cf,
            OptLevel::LoBr | OptLevel::NbC | OptLevel::GcC => KernelClass::LoBr,
            OptLevel::Simd => KernelClass::Simd,
            OptLevel::Fused => KernelClass::Fused,
        }
    }
}

/// Distinct compute-kernel implementations behind the ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelClass {
    /// Branchy per-cell loops, division-form equilibrium.
    Naive,
    /// Branch-free wrap via index tables, naive collide.
    Ghost,
    /// Slab-ordered stream, line-blocked two-pass collide, reciprocals.
    Dh,
    /// Dh with bounds checks elided and helpers force-inlined.
    Cf,
    /// Cf with region-split loops and hoisted index arithmetic.
    LoBr,
    /// LoBr stream with an AVX2+FMA vectorized collide (scalar fallback).
    Simd,
    /// Single-pass fused stream+collide, AVX2+FMA with scalar fallback.
    /// Split `stream`/`collide` calls at this level run the `Simd` kernels.
    Fused,
}

/// Everything a kernel invocation needs besides the fields themselves.
#[derive(Debug, Clone)]
pub struct KernelCtx {
    /// The discrete velocity model.
    pub lat: Lattice,
    /// Precomputed equilibrium constants (reciprocal form).
    pub consts: EqConsts,
    /// Equilibrium truncation order.
    pub order: EqOrder,
    /// BGK relaxation rate ω.
    pub omega: f64,
}

impl KernelCtx {
    /// Build a context for `kind` with truncation `order` and collision `bgk`.
    pub fn new(kind: LatticeKind, order: EqOrder, bgk: Bgk) -> Self {
        let lat = Lattice::new(kind);
        let consts = EqConsts::new(&lat);
        Self {
            lat,
            consts,
            order,
            omega: bgk.omega(),
        }
    }

    /// Whether the third-order equilibrium term is active.
    #[inline]
    pub fn third_order(&self) -> bool {
        self.order == EqOrder::Third
    }
}

/// Periodic wrap tables for the y and z axes, one per velocity-component
/// offset in `-3..=3` (indexed by `c + 3`). Built once per field shape.
#[derive(Debug, Clone)]
pub struct StreamTables {
    /// y-axis tables.
    pub y: Vec<WrapTable>,
    /// z-axis tables.
    pub z: Vec<WrapTable>,
}

impl StreamTables {
    /// Build tables for a field with `ny`×`nz` cross-section.
    pub fn new(ny: usize, nz: usize) -> Self {
        let y = (-3..=3).map(|c| WrapTable::new(ny, c)).collect();
        let z = (-3..=3).map(|c| WrapTable::new(nz, c)).collect();
        Self { y, z }
    }

    /// Table for y-offset `c`.
    #[inline(always)]
    pub fn y_for(&self, c: i32) -> &WrapTable {
        &self.y[(c + 3) as usize]
    }

    /// Table for z-offset `c`.
    #[inline(always)]
    pub fn z_for(&self, c: i32) -> &WrapTable {
        &self.z[(c + 3) as usize]
    }
}

/// Pull-stream `dst[x] ← src[x−c]` for allocation-local planes
/// `x ∈ [x_lo, x_hi)`, selecting the variant for `level`.
///
/// For every level above `Orig` the caller must guarantee that
/// `src` is valid on `[x_lo − k, x_hi + k)` (halo filled); `Orig`
/// additionally tolerates halo-free single-rank fields by wrapping x.
pub fn stream(
    level: OptLevel,
    ctx: &KernelCtx,
    tables: &StreamTables,
    src: &DistField,
    dst: &mut DistField,
    x_lo: usize,
    x_hi: usize,
) {
    debug_assert!(x_hi <= dst.alloc_dims().nx);
    match level.kernel_class() {
        KernelClass::Naive => naive::stream(ctx, src, dst, x_lo, x_hi),
        KernelClass::Ghost => ghost::stream(ctx, tables, src, dst, x_lo, x_hi),
        KernelClass::Dh => dh::stream(ctx, tables, src, dst, x_lo, x_hi),
        KernelClass::Cf | KernelClass::Simd | KernelClass::Fused => {
            cf::stream(ctx, tables, src, dst, x_lo, x_hi)
        }
        KernelClass::LoBr => lobr::stream(ctx, tables, src, dst, x_lo, x_hi),
    }
}

/// In-place BGK collide over planes `x ∈ [x_lo, x_hi)`, selecting the variant
/// for `level`.
pub fn collide(level: OptLevel, ctx: &KernelCtx, f: &mut DistField, x_lo: usize, x_hi: usize) {
    debug_assert!(x_hi <= f.alloc_dims().nx);
    match level.kernel_class() {
        KernelClass::Naive | KernelClass::Ghost => naive::collide(ctx, f, x_lo, x_hi),
        KernelClass::Dh => dh::collide(ctx, f, x_lo, x_hi),
        KernelClass::Cf => cf::collide(ctx, f, x_lo, x_hi),
        KernelClass::LoBr => lobr::collide(ctx, f, x_lo, x_hi),
        KernelClass::Simd | KernelClass::Fused => simd::collide(ctx, f, x_lo, x_hi),
    }
}

/// One full lattice update `dst ← collide(pull(src))` over planes
/// `x ∈ [x_lo, x_hi)`, selecting the variant for `level`.
///
/// The `Fused` rung runs the single-pass kernel (`2·Q·8` bytes/cell,
/// AVX2+FMA when available); every other rung performs its split
/// stream-then-collide pair into `dst` (`4·Q·8` bytes/cell). Halo contract
/// as for [`stream`]: `src` must be valid on `[x_lo − k, x_hi + k)`.
pub fn stream_collide(
    level: OptLevel,
    ctx: &KernelCtx,
    tables: &StreamTables,
    src: &DistField,
    dst: &mut DistField,
    x_lo: usize,
    x_hi: usize,
) {
    if level.kernel_class() == KernelClass::Fused {
        fused_simd::stream_collide(ctx, tables, src, dst, x_lo, x_hi);
    } else {
        stream(level, ctx, tables, src, dst, x_lo, x_hi);
        collide(level, ctx, dst, x_lo, x_hi);
    }
}

/// Scenario collide at `level`'s kernel class: BGK with optional Guo
/// forcing `g` over the fluid cells of `bounds` (wall rows and masked
/// cells untouched), in place over planes `x ∈ [x_lo, x_hi)`.
///
/// The scalar classes run the shared [`op`] cell-operator body; the
/// `Simd`/`Fused` classes run the AVX2+FMA variant (runtime-detected,
/// scalar fallback). With `g = 0` every class monomorphizes to the plain
/// fluid-row-restricted BGK update.
pub fn collide_scenario(
    level: OptLevel,
    ctx: &KernelCtx,
    f: &mut DistField,
    x_lo: usize,
    x_hi: usize,
    g: [f64; 3],
    bounds: &BoundarySpec,
) {
    match level.kernel_class() {
        KernelClass::Simd | KernelClass::Fused => {
            op::with_op!(g, |rule| simd::collide_cells(
                ctx, f, x_lo, x_hi, rule, bounds
            ));
        }
        _ => forced::collide_forced(ctx, f, x_lo, x_hi, g, bounds),
    }
}

/// Rayon-parallel [`collide_scenario`]: disjoint x-plane chunks, each
/// running the identical per-class kernel — bit-identical to serial.
pub fn collide_scenario_par(
    level: OptLevel,
    ctx: &KernelCtx,
    f: &mut DistField,
    x_lo: usize,
    x_hi: usize,
    g: [f64; 3],
    bounds: &BoundarySpec,
) {
    let use_simd = matches!(level.kernel_class(), KernelClass::Simd | KernelClass::Fused);
    op::with_op!(g, |rule| par::collide_cells_par(
        ctx, f, x_lo, x_hi, rule, bounds, use_simd
    ));
}

/// Scenario fused stream+collide: one single pass computing
/// `dst ← boundary+collide(pull(src))` — fluid cells collided (with Guo
/// forcing `g` when nonzero), wall rows and masked cells transformed from
/// their gathered arrivals. AVX2+FMA when available, scalar fallback; halo
/// contract as for [`stream_collide`].
#[allow(clippy::too_many_arguments)]
pub fn stream_collide_scenario(
    ctx: &KernelCtx,
    tables: &StreamTables,
    src: &DistField,
    dst: &mut DistField,
    x_lo: usize,
    x_hi: usize,
    g: [f64; 3],
    bounds: &BoundarySpec,
) {
    op::with_op!(g, |rule| fused_simd::stream_collide_cells(
        ctx, tables, src, dst, x_lo, x_hi, rule, bounds
    ));
}

/// Rayon-parallel [`stream_collide_scenario`] (disjoint destination
/// x-chunks, bit-identical to serial).
#[allow(clippy::too_many_arguments)]
pub fn stream_collide_scenario_par(
    ctx: &KernelCtx,
    tables: &StreamTables,
    src: &DistField,
    dst: &mut DistField,
    x_lo: usize,
    x_hi: usize,
    g: [f64; 3],
    bounds: &BoundarySpec,
) {
    op::with_op!(g, |rule| par::stream_collide_cells_par(
        ctx, tables, src, dst, x_lo, x_hi, rule, bounds
    ));
}

/// Whether `level`'s kernel class runs the vectorized AA arithmetic (the
/// same class split as the two-grid ladder: AVX2+FMA at `Simd` and above).
/// The vector classes also get the NT-store path — see
/// [`aa::AaTune::for_class`].
const fn aa_use_simd(level: OptLevel) -> bool {
    matches!(level.kernel_class(), KernelClass::Simd | KernelClass::Fused)
}

/// AA-pattern **even** step at `level`'s kernel class: in-place
/// read-local/write-local collide (rule `g` on fluid cells, wall/mask
/// transforms in place) over planes `x ∈ [x_lo, x_hi)`. See
/// [`aa::even_cells`].
pub fn aa_even_scenario(
    level: OptLevel,
    ctx: &KernelCtx,
    f: &mut DistField,
    x_lo: usize,
    x_hi: usize,
    g: [f64; 3],
    bounds: &BoundarySpec,
) {
    op::with_op!(g, |rule| aa::even_cells(
        ctx,
        f,
        x_lo,
        x_hi,
        rule,
        bounds,
        aa::AaTune::for_class(aa_use_simd(level))
    ));
}

/// Rayon-parallel [`aa_even_scenario`] (disjoint x-plane chunks,
/// bit-identical to serial).
pub fn aa_even_scenario_par(
    level: OptLevel,
    ctx: &KernelCtx,
    f: &mut DistField,
    x_lo: usize,
    x_hi: usize,
    g: [f64; 3],
    bounds: &BoundarySpec,
) {
    op::with_op!(g, |rule| par::aa_even_cells_par(
        ctx,
        f,
        x_lo,
        x_hi,
        rule,
        bounds,
        aa::AaTune::for_class(aa_use_simd(level))
    ));
}

/// AA-pattern **odd** step at `level`'s kernel class: gather-swapped,
/// collide/transform, scatter-swapped, over writer planes
/// `x ∈ [x_lo, x_hi)` (requires `k` planes of margin). See
/// [`aa::odd_cells`].
#[allow(clippy::too_many_arguments)]
pub fn aa_odd_scenario(
    level: OptLevel,
    ctx: &KernelCtx,
    tables: &StreamTables,
    f: &mut DistField,
    x_lo: usize,
    x_hi: usize,
    g: [f64; 3],
    bounds: &BoundarySpec,
) {
    op::with_op!(g, |rule| aa::odd_cells(
        ctx,
        tables,
        f,
        x_lo,
        x_hi,
        rule,
        bounds,
        aa::AaTune::for_class(aa_use_simd(level))
    ));
}

/// AA-pattern **odd** step at `level`'s kernel class with the x-shift
/// wrapped inside `[x_lo, x_hi)` — the single-rank periodic sweep, which
/// needs no halo fill and no ghost writer planes. See
/// [`aa::odd_cells_periodic`].
#[allow(clippy::too_many_arguments)]
pub fn aa_odd_scenario_periodic(
    level: OptLevel,
    ctx: &KernelCtx,
    tables: &StreamTables,
    f: &mut DistField,
    x_lo: usize,
    x_hi: usize,
    g: [f64; 3],
    bounds: &BoundarySpec,
) {
    op::with_op!(g, |rule| aa::odd_cells_periodic(
        ctx,
        tables,
        f,
        x_lo,
        x_hi,
        rule,
        bounds,
        aa::AaTune::for_class(aa_use_simd(level))
    ));
}

/// Rayon-parallel [`aa_odd_scenario`]: writer cells are chunked by x-plane;
/// each writer owns exactly its own Q slots (the AA bijection), so chunked
/// execution is conflict-free and bit-identical to serial.
#[allow(clippy::too_many_arguments)]
pub fn aa_odd_scenario_par(
    level: OptLevel,
    ctx: &KernelCtx,
    tables: &StreamTables,
    f: &mut DistField,
    x_lo: usize,
    x_hi: usize,
    g: [f64; 3],
    bounds: &BoundarySpec,
) {
    op::with_op!(g, |rule| par::aa_odd_cells_par(
        ctx,
        tables,
        f,
        x_lo,
        x_hi,
        rule,
        bounds,
        aa::AaTune::for_class(aa_use_simd(level))
    ));
}

/// Rayon-parallel [`aa_odd_scenario_periodic`] (see
/// [`par::aa_odd_cells_periodic_par`]; bit-identical to serial).
#[allow(clippy::too_many_arguments)]
pub fn aa_odd_scenario_periodic_par(
    level: OptLevel,
    ctx: &KernelCtx,
    tables: &StreamTables,
    f: &mut DistField,
    x_lo: usize,
    x_hi: usize,
    g: [f64; 3],
    bounds: &BoundarySpec,
) {
    op::with_op!(g, |rule| par::aa_odd_cells_periodic_par(
        ctx,
        tables,
        f,
        x_lo,
        x_hi,
        rule,
        bounds,
        aa::AaTune::for_class(aa_use_simd(level))
    ));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_order_and_names() {
        let names: Vec<_> = OptLevel::ALL.iter().map(|l| l.name()).collect();
        assert_eq!(
            names,
            ["Orig", "GC", "DH", "CF", "LoBr", "NB-C", "GC_C", "SIMD", "Fused"]
        );
        // Cumulative: strictly ordered.
        for w in OptLevel::ALL.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn parse_round_trips() {
        for l in OptLevel::ALL {
            assert_eq!(OptLevel::parse(l.name()), Some(l), "{}", l.name());
        }
        assert_eq!(OptLevel::parse("nb-c"), Some(OptLevel::NbC));
        assert_eq!(OptLevel::parse("gc_c"), Some(OptLevel::GcC));
        assert_eq!(OptLevel::parse("FUSED"), Some(OptLevel::Fused));
        assert_eq!(OptLevel::parse("bogus"), None);
    }

    #[test]
    fn comm_rungs_reuse_lobr_kernels() {
        assert_eq!(OptLevel::NbC.kernel_class(), KernelClass::LoBr);
        assert_eq!(OptLevel::GcC.kernel_class(), KernelClass::LoBr);
        assert_eq!(OptLevel::LoBr.kernel_class(), KernelClass::LoBr);
        assert_eq!(OptLevel::Fused.kernel_class(), KernelClass::Fused);
        assert!(OptLevel::Simd < OptLevel::Fused, "Fused is the top rung");
    }

    #[test]
    fn stream_tables_cover_all_offsets() {
        let t = StreamTables::new(6, 9);
        for c in -3i32..=3 {
            assert_eq!(t.y_for(c).len(), 6);
            assert_eq!(t.z_for(c).len(), 9);
            assert_eq!(t.y_for(c).src(0), crate::index::wrap(0, -c, 6));
        }
    }
}
