//! `SIMD` — explicit short-vector collide (paper §V-G).
//!
//! The paper hand-coded double-hummer intrinsics (BG/P) and QPX quad-word
//! operations (BG/Q) for the collide function, on 16-byte-aligned data. The
//! host analogue is AVX2+FMA over 4-wide `f64` lanes: four consecutive
//! z-cells are collided at once — moment accumulation, one vector reciprocal,
//! equilibrium polynomial, and relaxation all in vector registers with fused
//! multiply-adds (the same `fpmadd` idea the paper invokes).
//!
//! The kernel is generic over the cell operator
//! ([`crate::kernels::op::CollideOp`]): the [`PlainBgk`] instantiation is
//! the periodic ladder rung, while [`GuoForced`](crate::kernels::op)
//! broadcasts the force vector into the vectorized moment accumulation
//! (half-force velocity shift) and adds the hoisted Guo source —
//! `sa_i − sb_i (u·G) + sc_i ξ_i` — in the relax pass, two extra fmas per
//! (lane group, velocity). Row dispatch is [`BoundarySpec`]-aware: wall rows
//! are skipped and masked cells excluded via fluid z-runs, each run swept
//! vector-first with a scalar tail, so walled/forced scenarios run the same
//! vectorized collide as the periodic flows.
//!
//! Feature detection happens at runtime; without AVX2+FMA the rung falls
//! back to the shared scalar cell-operator body (so the crate stays
//! portable, and the benchmark harness reports when the fallback was taken).
//! Streaming is already a memcpy exercise after LoBr, so this rung reuses
//! the CF/LoBr stream.

use crate::boundary::BoundarySpec;
use crate::field::DistField;
use crate::kernels::op::{self, CollideOp, OpConsts, PlainBgk};
use crate::kernels::KernelCtx;

/// True when the vectorized path is available on this CPU.
pub fn simd_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        static AVAIL: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
        *AVAIL.get_or_init(|| {
            std::arch::is_x86_feature_detected!("avx2")
                && std::arch::is_x86_feature_detected!("fma")
        })
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Vectorized BGK collide over planes `x ∈ [x_lo, x_hi)`; falls back to the
/// scalar cell-operator body when AVX2+FMA is unavailable.
pub fn collide(ctx: &KernelCtx, f: &mut DistField, x_lo: usize, x_hi: usize) {
    collide_cells(ctx, f, x_lo, x_hi, PlainBgk, &BoundarySpec::periodic());
}

/// Vectorized boundary-aware collide: the rule `op` applied to every fluid
/// cell of `bounds` over planes `x ∈ [x_lo, x_hi)` (wall rows and masked
/// cells untouched), AVX2+FMA when available with scalar fallback.
pub fn collide_cells<O: CollideOp>(
    ctx: &KernelCtx,
    f: &mut DistField,
    x_lo: usize,
    x_hi: usize,
    op: O,
    bounds: &BoundarySpec,
) {
    if x_lo >= x_hi {
        return;
    }
    let d = f.alloc_dims();
    debug_assert!(x_hi <= d.nx);
    let total = f.as_slice().len();
    let slab_len = f.slab_stride();
    let ptr = f.as_mut_ptr();
    let oc = OpConsts::new(ctx, &op);
    // SAFETY: exclusive &mut access to the whole field; offsets bounded by
    // the layout contract.
    unsafe { collide_cells_raw::<O>(ptr, total, slab_len, ctx, &oc, bounds, d, x_lo, x_hi) }
}

/// Raw-pointer dispatch shared with the rayon driver: AVX2+FMA when
/// available, the shared scalar body otherwise.
///
/// # Safety
/// Same contract as [`op::collide_cells_raw`].
#[allow(clippy::too_many_arguments)]
pub(crate) unsafe fn collide_cells_raw<O: CollideOp>(
    base_ptr: *mut f64,
    total: usize,
    slab_len: usize,
    ctx: &KernelCtx,
    oc: &OpConsts,
    bounds: &BoundarySpec,
    d: crate::index::Dim3,
    x_lo: usize,
    x_hi: usize,
) {
    #[cfg(target_arch = "x86_64")]
    {
        if simd_available() {
            // SAFETY: feature presence checked above; contract forwarded.
            unsafe {
                if ctx.third_order() {
                    collide_avx2::<true, O>(
                        base_ptr, total, slab_len, ctx, oc, bounds, d, x_lo, x_hi,
                    );
                } else {
                    collide_avx2::<false, O>(
                        base_ptr, total, slab_len, ctx, oc, bounds, d, x_lo, x_hi,
                    );
                }
            }
            return;
        }
    }
    // SAFETY: contract forwarded.
    unsafe { op::collide_cells_raw::<O>(base_ptr, total, slab_len, ctx, oc, bounds, d, x_lo, x_hi) }
}

/// # Safety
/// Caller must ensure AVX2+FMA are available and the layout/exclusivity
/// contract of [`op::collide_cells_raw`] holds.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
#[allow(clippy::too_many_arguments)]
unsafe fn collide_avx2<const THIRD: bool, O: CollideOp>(
    base_ptr: *mut f64,
    total: usize,
    slab_len: usize,
    ctx: &KernelCtx,
    oc: &OpConsts,
    bounds: &BoundarySpec,
    d: crate::index::Dim3,
    x_lo: usize,
    x_hi: usize,
) {
    use std::arch::x86_64::*;

    const LANES: usize = 4;
    let q = ctx.lat.q();
    let k = &ctx.consts;
    let omega = ctx.omega;
    let fluid_y = bounds.fluid_y(d.ny);
    let mask = bounds.mask();
    let hg = oc.half_g;
    let g = oc.g;

    // SAFETY: all pointer offsets below are i*slab_len + base + z with
    // z + LANES ≤ nz, hence within `total`; debug-asserted per row.
    unsafe {
        let v_one = _mm256_set1_pd(1.0);
        let v_omega = _mm256_set1_pd(omega);
        let v_inv_cs2 = _mm256_set1_pd(k.inv_cs2);
        let v_inv_2cs4 = _mm256_set1_pd(k.inv_2cs4);
        let v_inv_2cs2 = _mm256_set1_pd(k.inv_2cs2);
        let v_inv_6cs6 = _mm256_set1_pd(k.inv_6cs6);
        let v_3cs2 = _mm256_set1_pd(3.0 * k.cs2);
        let v_hg0 = _mm256_set1_pd(hg[0]);
        let v_hg1 = _mm256_set1_pd(hg[1]);
        let v_hg2 = _mm256_set1_pd(hg[2]);
        let v_g0 = _mm256_set1_pd(g[0]);
        let v_g1 = _mm256_set1_pd(g[1]);
        let v_g2 = _mm256_set1_pd(g[2]);

        for x in x_lo..x_hi {
            for y in fluid_y.clone() {
                let base = d.idx(x, y, 0);
                debug_assert!(base + d.nz <= slab_len);
                // Fluid z-runs of this row (one full run when there is no
                // mask), each run swept vector-first with a scalar tail.
                let mut zs = 0usize;
                while let Some((run_lo, run_hi)) = op::next_fluid_run(mask, y, d.nz, &mut zs) {
                    let run_len = run_hi - run_lo;
                    let vec_end = run_lo + (run_len - run_len % LANES);
                    let mut z = run_lo;
                    while z < vec_end {
                        let off = base + z;
                        // Pass 1: moments.
                        let mut vrho = _mm256_setzero_pd();
                        let mut vmx = _mm256_setzero_pd();
                        let mut vmy = _mm256_setzero_pd();
                        let mut vmz = _mm256_setzero_pd();
                        for i in 0..q {
                            let c = oc.cw[i];
                            debug_assert!(i * slab_len + off + LANES <= total);
                            let fv = _mm256_loadu_pd(base_ptr.add(i * slab_len + off));
                            vrho = _mm256_add_pd(vrho, fv);
                            if c[0] != 0.0 {
                                vmx = _mm256_fmadd_pd(fv, _mm256_set1_pd(c[0]), vmx);
                            }
                            if c[1] != 0.0 {
                                vmy = _mm256_fmadd_pd(fv, _mm256_set1_pd(c[1]), vmy);
                            }
                            if c[2] != 0.0 {
                                vmz = _mm256_fmadd_pd(fv, _mm256_set1_pd(c[2]), vmz);
                            }
                        }
                        let vinv = _mm256_div_pd(v_one, vrho);
                        if O::FORCED {
                            // Guo half-force shift of the momentum before the
                            // velocity division: u = (m + G/2)/ρ.
                            vmx = _mm256_add_pd(vmx, v_hg0);
                            vmy = _mm256_add_pd(vmy, v_hg1);
                            vmz = _mm256_add_pd(vmz, v_hg2);
                        }
                        let vux = _mm256_mul_pd(vmx, vinv);
                        let vuy = _mm256_mul_pd(vmy, vinv);
                        let vuz = _mm256_mul_pd(vmz, vinv);
                        let vu2 = _mm256_fmadd_pd(
                            vux,
                            vux,
                            _mm256_fmadd_pd(vuy, vuy, _mm256_mul_pd(vuz, vuz)),
                        );
                        let vug = if O::FORCED {
                            _mm256_fmadd_pd(
                                vux,
                                v_g0,
                                _mm256_fmadd_pd(vuy, v_g1, _mm256_mul_pd(vuz, v_g2)),
                            )
                        } else {
                            _mm256_setzero_pd()
                        };
                        // Pass 2: equilibrium + relax (+ Guo source).
                        for i in 0..q {
                            let c = oc.cw[i];
                            let mut vxi = _mm256_setzero_pd();
                            if c[0] != 0.0 {
                                vxi = _mm256_fmadd_pd(_mm256_set1_pd(c[0]), vux, vxi);
                            }
                            if c[1] != 0.0 {
                                vxi = _mm256_fmadd_pd(_mm256_set1_pd(c[1]), vuy, vxi);
                            }
                            if c[2] != 0.0 {
                                vxi = _mm256_fmadd_pd(_mm256_set1_pd(c[2]), vuz, vxi);
                            }
                            // poly = 1 + xi/cs2 + xi²/(2cs⁴) − u²/(2cs²) [+ third]
                            let mut vpoly = _mm256_fmadd_pd(vxi, v_inv_cs2, v_one);
                            vpoly = _mm256_fmadd_pd(_mm256_mul_pd(vxi, vxi), v_inv_2cs4, vpoly);
                            vpoly = _mm256_fnmadd_pd(vu2, v_inv_2cs2, vpoly);
                            if THIRD {
                                let t = _mm256_fnmadd_pd(v_3cs2, vu2, _mm256_mul_pd(vxi, vxi));
                                vpoly = _mm256_fmadd_pd(_mm256_mul_pd(vxi, t), v_inv_6cs6, vpoly);
                            }
                            let vfeq =
                                _mm256_mul_pd(_mm256_mul_pd(_mm256_set1_pd(c[3]), vrho), vpoly);
                            let p = base_ptr.add(i * slab_len + off);
                            let fv = _mm256_loadu_pd(p);
                            let mut out = _mm256_fmadd_pd(v_omega, _mm256_sub_pd(vfeq, fv), fv);
                            if O::FORCED {
                                // S_i = sa_i − sb_i (u·G) + sc_i ξ_i.
                                let vs = _mm256_fmadd_pd(
                                    _mm256_set1_pd(oc.sc[i]),
                                    vxi,
                                    _mm256_fnmadd_pd(
                                        _mm256_set1_pd(oc.sb[i]),
                                        vug,
                                        _mm256_set1_pd(oc.sa[i]),
                                    ),
                                );
                                out = _mm256_add_pd(out, vs);
                            }
                            _mm256_storeu_pd(p, out);
                        }
                        z += LANES;
                    }
                    // Scalar tail (run_len % 4 cells), reciprocal form.
                    while z < run_hi {
                        let off = base + z;
                        let mut rho = 0.0;
                        let mut m = [0.0f64; 3];
                        for i in 0..q {
                            let c = oc.cw[i];
                            let fv = *base_ptr.add(i * slab_len + off);
                            rho += fv;
                            m[0] += fv * c[0];
                            m[1] += fv * c[1];
                            m[2] += fv * c[2];
                        }
                        let inv = 1.0 / rho;
                        let u = if O::FORCED {
                            [
                                (m[0] + hg[0]) * inv,
                                (m[1] + hg[1]) * inv,
                                (m[2] + hg[2]) * inv,
                            ]
                        } else {
                            [m[0] * inv, m[1] * inv, m[2] * inv]
                        };
                        let u2 = u[0] * u[0] + u[1] * u[1] + u[2] * u[2];
                        let ug = u[0] * g[0] + u[1] * g[1] + u[2] * g[2];
                        for i in 0..q {
                            let c = oc.cw[i];
                            let xi = c[0] * u[0] + c[1] * u[1] + c[2] * u[2];
                            let mut poly =
                                1.0 + xi * k.inv_cs2 + xi * xi * k.inv_2cs4 - u2 * k.inv_2cs2;
                            if THIRD {
                                poly += xi * (xi * xi - 3.0 * k.cs2 * u2) * k.inv_6cs6;
                            }
                            let feq = c[3] * rho * poly;
                            let p = base_ptr.add(i * slab_len + off);
                            let fv = *p;
                            let mut next = fv + omega * (feq - fv);
                            if O::FORCED {
                                next += oc.sa[i] - oc.sb[i] * ug + oc.sc[i] * xi;
                            }
                            *p = next;
                        }
                        z += 1;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::boundary::{ChannelWalls, SectionMask};
    use crate::collision::Bgk;
    use crate::equilibrium::EqOrder;
    use crate::index::Dim3;
    use crate::kernels::dh;
    use crate::kernels::op::GuoForced;
    use crate::lattice::LatticeKind;

    fn ctx(kind: LatticeKind) -> KernelCtx {
        let order = if kind == LatticeKind::D3Q39 {
            EqOrder::Third
        } else {
            EqOrder::Second
        };
        KernelCtx::new(kind, order, Bgk::new(0.85).unwrap())
    }

    fn random_field(q: usize, dims: Dim3, seed: u64) -> DistField {
        let mut f = DistField::new(q, dims, 0).unwrap();
        let mut state = seed | 1;
        for v in f.as_mut_slice() {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            *v = 0.04 + (state % 769) as f64 / 1300.0;
        }
        f
    }

    #[test]
    fn simd_collide_matches_dh_within_fma_tolerance() {
        for kind in [LatticeKind::D3Q19, LatticeKind::D3Q39] {
            let c = ctx(kind);
            // nz = 11 forces a 3-cell scalar tail.
            let dims = Dim3::new(4, 3, 11);
            let mut a = random_field(c.lat.q(), dims, 71);
            let mut b = a.clone();
            dh::collide(&c, &mut a, 0, dims.nx);
            collide(&c, &mut b, 0, dims.nx);
            let diff = a.max_abs_diff_owned(&b);
            // FMA re-rounding only: differences are a few ulps of O(1) values.
            assert!(diff < 1e-13, "{kind:?}: {diff}");
        }
    }

    #[test]
    fn simd_collide_conserves_mass_exactly_enough() {
        let c = ctx(LatticeKind::D3Q39);
        let dims = Dim3::new(3, 3, 16);
        let mut f = random_field(c.lat.q(), dims, 5);
        let before = f.owned_mass();
        collide(&c, &mut f, 0, dims.nx);
        let after = f.owned_mass();
        assert!(
            (before - after).abs() < 1e-10 * before.abs(),
            "{before} vs {after}"
        );
    }

    #[test]
    fn forced_simd_matches_forced_scalar_within_fma_tolerance() {
        for kind in [LatticeKind::D3Q19, LatticeKind::D3Q39] {
            let c = ctx(kind);
            let dims = Dim3::new(3, 8, 11); // scalar tail + walls
            let bounds = BoundarySpec::periodic()
                .with_walls(ChannelWalls::no_slip(3))
                .with_mask(SectionMask::from_fn(8, 11, |_y, z| z == 5));
            let op = GuoForced {
                g: [4e-5, 0.0, -2e-5],
            };
            let mut a = random_field(c.lat.q(), dims, 77);
            let mut b = a.clone();
            op::collide_cells(&c, &mut a, 0, dims.nx, op, &bounds);
            collide_cells(&c, &mut b, 0, dims.nx, op, &bounds);
            let diff = a.max_abs_diff_owned(&b);
            assert!(diff < 1e-13, "{kind:?}: {diff}");
        }
    }

    #[test]
    fn forced_simd_skips_walls_and_mask() {
        let c = ctx(LatticeKind::D3Q19);
        let dims = Dim3::new(3, 6, 9);
        let bounds = BoundarySpec::periodic()
            .with_walls(ChannelWalls::no_slip(1))
            .with_mask(SectionMask::from_fn(6, 9, |_y, z| z == 4));
        let mut f = random_field(c.lat.q(), dims, 13);
        let before = f.clone();
        collide_cells(
            &c,
            &mut f,
            0,
            dims.nx,
            GuoForced {
                g: [1e-4, 0.0, 0.0],
            },
            &bounds,
        );
        let d = f.alloc_dims();
        for i in 0..c.lat.q() {
            for x in 0..dims.nx {
                for z in 0..dims.nz {
                    for y in [0usize, 5] {
                        let lin = d.idx(x, y, z);
                        assert_eq!(f.slab(i)[lin], before.slab(i)[lin], "wall row");
                    }
                    let lin = d.idx(x, 2, z);
                    if z == 4 {
                        assert_eq!(f.slab(i)[lin], before.slab(i)[lin], "masked");
                    }
                }
            }
        }
        assert!(f.max_abs_diff_owned(&before) > 0.0, "fluid must collide");
    }

    #[test]
    fn availability_probe_is_stable() {
        assert_eq!(simd_available(), simd_available());
    }
}
