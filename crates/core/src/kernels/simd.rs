//! `SIMD` — explicit short-vector collide (paper §V-G).
//!
//! The paper hand-coded double-hummer intrinsics (BG/P) and QPX quad-word
//! operations (BG/Q) for the collide function, on 16-byte-aligned data. The
//! host analogue is AVX2+FMA over 4-wide `f64` lanes: four consecutive
//! z-cells are collided at once — moment accumulation, one vector reciprocal,
//! equilibrium polynomial, and relaxation all in vector registers with fused
//! multiply-adds (the same `fpmadd` idea the paper invokes).
//!
//! Feature detection happens at runtime; without AVX2+FMA the rung falls back
//! to the CF collide (so the crate stays portable, and the benchmark harness
//! reports when the fallback was taken). Streaming is already a memcpy
//! exercise after LoBr, so this rung reuses the CF/LoBr stream.

use crate::field::DistField;
use crate::kernels::{cf, KernelCtx};

/// True when the vectorized path is available on this CPU.
pub fn simd_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        static AVAIL: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
        *AVAIL.get_or_init(|| {
            std::arch::is_x86_feature_detected!("avx2")
                && std::arch::is_x86_feature_detected!("fma")
        })
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Vectorized BGK collide over planes `x ∈ [x_lo, x_hi)`; falls back to the
/// CF collide when AVX2+FMA is unavailable.
pub fn collide(ctx: &KernelCtx, f: &mut DistField, x_lo: usize, x_hi: usize) {
    #[cfg(target_arch = "x86_64")]
    {
        if simd_available() {
            if ctx.third_order() {
                // SAFETY: feature presence checked above.
                unsafe { collide_avx2::<true>(ctx, f, x_lo, x_hi) };
            } else {
                // SAFETY: feature presence checked above.
                unsafe { collide_avx2::<false>(ctx, f, x_lo, x_hi) };
            }
            return;
        }
    }
    cf::collide(ctx, f, x_lo, x_hi);
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn collide_avx2<const THIRD: bool>(
    ctx: &KernelCtx,
    f: &mut DistField,
    x_lo: usize,
    x_hi: usize,
) {
    use std::arch::x86_64::*;

    const LANES: usize = 4;
    let d = f.alloc_dims();
    let q = ctx.lat.q();
    let k = &ctx.consts;
    let omega = ctx.omega;
    let slab_len = f.slab_len();
    let data = f.as_mut_slice();
    let base_ptr = data.as_mut_ptr();
    let total = data.len();

    // SAFETY: all pointer offsets below are i*slab_len + base + z with
    // z + LANES ≤ nz, hence within `total`; debug-asserted per row.
    unsafe {
        let v_one = _mm256_set1_pd(1.0);
        let v_omega = _mm256_set1_pd(omega);
        let v_inv_cs2 = _mm256_set1_pd(k.inv_cs2);
        let v_inv_2cs4 = _mm256_set1_pd(k.inv_2cs4);
        let v_inv_2cs2 = _mm256_set1_pd(k.inv_2cs2);
        let v_inv_6cs6 = _mm256_set1_pd(k.inv_6cs6);
        let v_3cs2 = _mm256_set1_pd(3.0 * k.cs2);

        for x in x_lo..x_hi {
            for y in 0..d.ny {
                let base = d.idx(x, y, 0);
                debug_assert!(base + d.nz <= slab_len);
                let vec_end = d.nz - d.nz % LANES;
                let mut z = 0;
                while z < vec_end {
                    let off = base + z;
                    // Pass 1: moments.
                    let mut vrho = _mm256_setzero_pd();
                    let mut vmx = _mm256_setzero_pd();
                    let mut vmy = _mm256_setzero_pd();
                    let mut vmz = _mm256_setzero_pd();
                    for i in 0..q {
                        let c = k.c[i];
                        debug_assert!(i * slab_len + off + LANES <= total);
                        let fv = _mm256_loadu_pd(base_ptr.add(i * slab_len + off));
                        vrho = _mm256_add_pd(vrho, fv);
                        if c[0] != 0.0 {
                            vmx = _mm256_fmadd_pd(fv, _mm256_set1_pd(c[0]), vmx);
                        }
                        if c[1] != 0.0 {
                            vmy = _mm256_fmadd_pd(fv, _mm256_set1_pd(c[1]), vmy);
                        }
                        if c[2] != 0.0 {
                            vmz = _mm256_fmadd_pd(fv, _mm256_set1_pd(c[2]), vmz);
                        }
                    }
                    let vinv = _mm256_div_pd(v_one, vrho);
                    let vux = _mm256_mul_pd(vmx, vinv);
                    let vuy = _mm256_mul_pd(vmy, vinv);
                    let vuz = _mm256_mul_pd(vmz, vinv);
                    let vu2 = _mm256_fmadd_pd(
                        vux,
                        vux,
                        _mm256_fmadd_pd(vuy, vuy, _mm256_mul_pd(vuz, vuz)),
                    );
                    // Pass 2: equilibrium + relax.
                    for i in 0..q {
                        let c = k.c[i];
                        let mut vxi = _mm256_setzero_pd();
                        if c[0] != 0.0 {
                            vxi = _mm256_fmadd_pd(_mm256_set1_pd(c[0]), vux, vxi);
                        }
                        if c[1] != 0.0 {
                            vxi = _mm256_fmadd_pd(_mm256_set1_pd(c[1]), vuy, vxi);
                        }
                        if c[2] != 0.0 {
                            vxi = _mm256_fmadd_pd(_mm256_set1_pd(c[2]), vuz, vxi);
                        }
                        // poly = 1 + xi/cs2 + xi²/(2cs⁴) − u²/(2cs²) [+ third]
                        let mut vpoly = _mm256_fmadd_pd(vxi, v_inv_cs2, v_one);
                        vpoly = _mm256_fmadd_pd(_mm256_mul_pd(vxi, vxi), v_inv_2cs4, vpoly);
                        vpoly = _mm256_fnmadd_pd(vu2, v_inv_2cs2, vpoly);
                        if THIRD {
                            let t = _mm256_fnmadd_pd(v_3cs2, vu2, _mm256_mul_pd(vxi, vxi));
                            vpoly = _mm256_fmadd_pd(_mm256_mul_pd(vxi, t), v_inv_6cs6, vpoly);
                        }
                        let vfeq =
                            _mm256_mul_pd(_mm256_mul_pd(_mm256_set1_pd(k.w[i]), vrho), vpoly);
                        let p = base_ptr.add(i * slab_len + off);
                        let fv = _mm256_loadu_pd(p);
                        let out = _mm256_fmadd_pd(v_omega, _mm256_sub_pd(vfeq, fv), fv);
                        _mm256_storeu_pd(p, out);
                    }
                    z += LANES;
                }
                // Scalar tail (nz % 4 cells), reciprocal form.
                while z < d.nz {
                    let off = base + z;
                    let mut rho = 0.0;
                    let mut m = [0.0f64; 3];
                    for i in 0..q {
                        let c = k.c[i];
                        let fv = *base_ptr.add(i * slab_len + off);
                        rho += fv;
                        m[0] += fv * c[0];
                        m[1] += fv * c[1];
                        m[2] += fv * c[2];
                    }
                    let inv = 1.0 / rho;
                    let u = [m[0] * inv, m[1] * inv, m[2] * inv];
                    let u2 = u[0] * u[0] + u[1] * u[1] + u[2] * u[2];
                    for i in 0..q {
                        let c = k.c[i];
                        let xi = c[0] * u[0] + c[1] * u[1] + c[2] * u[2];
                        let mut poly =
                            1.0 + xi * k.inv_cs2 + xi * xi * k.inv_2cs4 - u2 * k.inv_2cs2;
                        if THIRD {
                            poly += xi * (xi * xi - 3.0 * k.cs2 * u2) * k.inv_6cs6;
                        }
                        let feq = k.w[i] * rho * poly;
                        let p = base_ptr.add(i * slab_len + off);
                        let fv = *p;
                        *p = fv + omega * (feq - fv);
                    }
                    z += 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collision::Bgk;
    use crate::equilibrium::EqOrder;
    use crate::index::Dim3;
    use crate::kernels::dh;
    use crate::lattice::LatticeKind;

    fn ctx(kind: LatticeKind) -> KernelCtx {
        let order = if kind == LatticeKind::D3Q39 {
            EqOrder::Third
        } else {
            EqOrder::Second
        };
        KernelCtx::new(kind, order, Bgk::new(0.85).unwrap())
    }

    fn random_field(q: usize, dims: Dim3, seed: u64) -> DistField {
        let mut f = DistField::new(q, dims, 0).unwrap();
        let mut state = seed | 1;
        for v in f.as_mut_slice() {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            *v = 0.04 + (state % 769) as f64 / 1300.0;
        }
        f
    }

    #[test]
    fn simd_collide_matches_dh_within_fma_tolerance() {
        for kind in [LatticeKind::D3Q19, LatticeKind::D3Q39] {
            let c = ctx(kind);
            // nz = 11 forces a 3-cell scalar tail.
            let dims = Dim3::new(4, 3, 11);
            let mut a = random_field(c.lat.q(), dims, 71);
            let mut b = a.clone();
            dh::collide(&c, &mut a, 0, dims.nx);
            collide(&c, &mut b, 0, dims.nx);
            let diff = a.max_abs_diff_owned(&b);
            // FMA re-rounding only: differences are a few ulps of O(1) values.
            assert!(diff < 1e-13, "{kind:?}: {diff}");
        }
    }

    #[test]
    fn simd_collide_conserves_mass_exactly_enough() {
        let c = ctx(LatticeKind::D3Q39);
        let dims = Dim3::new(3, 3, 16);
        let mut f = random_field(c.lat.q(), dims, 5);
        let before = f.owned_mass();
        collide(&c, &mut f, 0, dims.nx);
        let after = f.owned_mass();
        assert!(
            (before - after).abs() < 1e-10 * before.abs(),
            "{before} vs {after}"
        );
    }

    #[test]
    fn availability_probe_is_stable() {
        assert_eq!(simd_available(), simd_available());
    }
}
