//! Sparse tiled stream+collide drivers — fluid-cell-cost compute over the
//! packed tile list of [`crate::geometry::SparseTiles`].
//!
//! Populations live in a **tile-major** [`SparseField`]: one contiguous
//! `q·64`-double frame per allocated tile (`data[(t·q + i)·64 + c]`), so a
//! tile's whole working set streams through cache together and a boundary
//! tile's frame is exactly the message payload of the distributed halo
//! exchange.
//!
//! One step is a fused pull-stream + boundary + collide into a second
//! buffer (two-grid): for every stored cell the streamed populations are
//! gathered through the per-tile neighbour table (an unallocated neighbour
//! reads as vacuum `0.0` — exact under the rim-allocation rule), then fluid
//! cells run the *identical* per-cell BGK/Guo arithmetic as the dense
//! [`crate::kernels::op`] drivers (same accumulation order, same reciprocal
//! form) while solid cells store the full-way bounce-back of their gathered
//! values — so on a shared geometry the sparse fluid trajectory is
//! **bitwise equal** to the dense masked path.
//!
//! Three drivers share the per-tile body: scalar, AVX2 (4-wide z-lines of a
//! tile; no FMA contractions, so it is bitwise equal to the scalar driver —
//! unlike the dense `Simd` rung, which trades exactness for fused
//! multiply-adds), and rayon (disjoint owned-tile chunks; bitwise equal to
//! serial since tiles are independent given `src`).

use rayon::prelude::*;

use crate::align::AlignedBuf;
use crate::equilibrium::feq_i;
use crate::error::{Error, Result};
use crate::geometry::{tile_cell, SparseTiles, TILE_B, TILE_CELLS, TILE_NEIGHBORS};
use crate::index::Dim3;
use crate::kernels::op::{with_op, CollideOp, OpConsts};
use crate::kernels::par::{chunk_bounds, SendPtr};
use crate::kernels::{KernelCtx, MAX_Q};
use crate::lattice::Lattice;

/// Tile-major population storage: `q · 64` doubles per allocated tile.
#[derive(Clone, Debug)]
pub struct SparseField {
    q: usize,
    tiles: usize,
    data: AlignedBuf,
}

impl SparseField {
    /// Allocate a zeroed field for `tiles` packed tiles of a `q`-velocity
    /// lattice.
    pub fn new(q: usize, tiles: usize) -> Result<Self> {
        if q == 0 || q > MAX_Q {
            return Err(Error::BadParameter(format!("q {q} outside 1..={MAX_Q}")));
        }
        if tiles == 0 {
            return Err(Error::BadParameter("sparse field with 0 tiles".into()));
        }
        Ok(Self {
            q,
            tiles,
            data: AlignedBuf::new(q * tiles * TILE_CELLS),
        })
    }

    /// Velocity count.
    pub fn q(&self) -> usize {
        self.q
    }

    /// Packed tile count.
    pub fn tile_count(&self) -> usize {
        self.tiles
    }

    /// Doubles per tile frame (`q · 64`).
    pub fn frame_len(&self) -> usize {
        self.q * TILE_CELLS
    }

    /// Tile `t`'s frame, velocity-major (`[i · 64 + c]`).
    #[inline]
    pub fn frame(&self, t: usize) -> &[f64] {
        let fl = self.frame_len();
        &self.data.as_slice()[t * fl..(t + 1) * fl]
    }

    /// Mutable tile frame.
    #[inline]
    pub fn frame_mut(&mut self, t: usize) -> &mut [f64] {
        let fl = self.frame_len();
        &mut self.data.as_mut_slice()[t * fl..(t + 1) * fl]
    }

    /// The whole storage as one slice (tile-major).
    pub fn as_slice(&self) -> &[f64] {
        self.data.as_slice()
    }

    /// Mutable whole-storage view.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        self.data.as_mut_slice()
    }

    /// Resident bytes of this buffer.
    pub fn resident_bytes(&self) -> u64 {
        (self.data.len() * std::mem::size_of::<f64>()) as u64
    }

    /// Copy the `q` populations of cell `c` in tile `t` into `out[..q]`.
    pub fn gather_cell(&self, t: usize, c: usize, out: &mut [f64]) {
        let f = self.frame(t);
        for (i, o) in out.iter_mut().enumerate().take(self.q) {
            *o = f[i * TILE_CELLS + c];
        }
    }
}

/// One merged unit-stride run of a gather row: `len` consecutive
/// destination cells starting at `dst` all pull from the same neighbour
/// `slot` at consecutive source cells starting at `src`. Because cells are
/// packed z-fastest and every velocity shift is a constant offset, a row's
/// 64 entries collapse into a handful of such segments — the full-tile fast
/// path replaces the per-cell table walk with one `copy_from_slice` per
/// segment.
#[derive(Clone, Copy, Debug)]
struct Seg {
    dst: u8,
    src: u8,
    slot: u8,
    len: u8,
}

/// Geometry-independent streaming table for one lattice: for every
/// `(velocity, destination cell)` pair, which neighbour-table slot the pull
/// source lives in and its cell index there. Valid because every velocity
/// component is ≤ 3 < [`TILE_B`], so the source is at most one tile away.
///
/// Alongside the per-cell entries it carries the merged segment plan
/// ([`Seg`]) driving the full-tile direct-addressed fast path; both views
/// describe the identical source addresses, so the fast path is bitwise
/// equal to the walk by construction.
#[derive(Clone, Debug)]
pub struct GatherTable {
    q: usize,
    /// `[i · 64 + c] = (neighbour slot, source cell)`.
    entries: Vec<(u8, u8)>,
    /// Merged segments, all velocities concatenated.
    segs: Vec<Seg>,
    /// `segs` range of velocity `i`: `seg_off[i]..seg_off[i + 1]`.
    seg_off: Vec<u32>,
}

impl GatherTable {
    /// Build the table for `lat`.
    pub fn new(lat: &Lattice) -> Self {
        let q = lat.q();
        let mut entries = vec![(0u8, 0u8); q * TILE_CELLS];
        let split = |s: isize| -> (isize, usize) {
            if s < 0 {
                (-1, (s + TILE_B as isize) as usize)
            } else if s >= TILE_B as isize {
                (1, (s - TILE_B as isize) as usize)
            } else {
                (0, s as usize)
            }
        };
        for (i, c) in lat.velocities().iter().enumerate() {
            for lx in 0..TILE_B {
                for ly in 0..TILE_B {
                    for lz in 0..TILE_B {
                        let (dx, ox) = split(lx as isize - c[0] as isize);
                        let (dy, oy) = split(ly as isize - c[1] as isize);
                        let (dz, oz) = split(lz as isize - c[2] as isize);
                        entries[i * TILE_CELLS + tile_cell(lx, ly, lz)] = (
                            crate::geometry::neighbor_slot(dx, dy, dz) as u8,
                            tile_cell(ox, oy, oz) as u8,
                        );
                    }
                }
            }
        }
        // Merge each row into unit-stride segments: extend while the next
        // destination cell pulls from the same slot at the next source cell.
        let mut segs = Vec::new();
        let mut seg_off = Vec::with_capacity(q + 1);
        seg_off.push(0u32);
        for i in 0..q {
            let row = &entries[i * TILE_CELLS..(i + 1) * TILE_CELLS];
            let mut c = 0usize;
            while c < TILE_CELLS {
                let (slot, src) = row[c];
                let mut len = 1usize;
                while c + len < TILE_CELLS {
                    let (s2, c2) = row[c + len];
                    if s2 != slot || c2 as usize != src as usize + len {
                        break;
                    }
                    len += 1;
                }
                segs.push(Seg {
                    dst: c as u8,
                    src,
                    slot,
                    len: len as u8,
                });
                c += len;
            }
            seg_off.push(segs.len() as u32);
        }
        Self {
            q,
            entries,
            segs,
            seg_off,
        }
    }

    /// The 64 `(slot, source cell)` entries of velocity `i`.
    #[inline]
    fn row(&self, i: usize) -> &[(u8, u8)] {
        &self.entries[i * TILE_CELLS..(i + 1) * TILE_CELLS]
    }

    /// The merged segments of velocity `i`'s row.
    #[inline]
    fn seg_row(&self, i: usize) -> &[Seg] {
        &self.segs[self.seg_off[i] as usize..self.seg_off[i + 1] as usize]
    }
}

/// Whether the AVX2 sparse collide is usable on this host.
pub fn sparse_simd_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// One serial sparse step `dst ← collide(bounce(pull(src)))` over the owned
/// tiles of `tiles`. `g` selects plain BGK (`[0; 3]`) or Guo forcing;
/// `use_simd` opts into the AVX2 tile collide (bitwise equal, see module
/// docs) when the host supports it.
pub fn step(
    ctx: &KernelCtx,
    tiles: &SparseTiles,
    gt: &GatherTable,
    src: &SparseField,
    dst: &mut SparseField,
    g: [f64; 3],
    use_simd: bool,
) {
    with_op!(g, |op| step_with(
        ctx, tiles, gt, src, dst, op, use_simd, false
    ));
}

/// Rayon-parallel sparse step: owned tiles are split into disjoint
/// contiguous chunks, each chunk running the serial tile body — bitwise
/// equal to [`step`] because every tile reads only `src` and writes only its
/// own `dst` frame. Call from inside the desired thread pool.
pub fn step_par(
    ctx: &KernelCtx,
    tiles: &SparseTiles,
    gt: &GatherTable,
    src: &SparseField,
    dst: &mut SparseField,
    g: [f64; 3],
    use_simd: bool,
) {
    with_op!(g, |op| step_with(
        ctx, tiles, gt, src, dst, op, use_simd, true
    ));
}

#[allow(clippy::too_many_arguments)]
fn step_with<O: CollideOp>(
    ctx: &KernelCtx,
    tiles: &SparseTiles,
    gt: &GatherTable,
    src: &SparseField,
    dst: &mut SparseField,
    op: O,
    use_simd: bool,
    parallel: bool,
) {
    let q = ctx.lat.q();
    assert_eq!(src.q(), q, "src q mismatch");
    assert_eq!(dst.q(), q, "dst q mismatch");
    assert_eq!(src.tile_count(), tiles.tile_count(), "src tile mismatch");
    assert_eq!(dst.tile_count(), tiles.tile_count(), "dst tile mismatch");
    assert_eq!(gt.q, q, "gather table lattice mismatch");
    let oc = OpConsts::new(ctx, &op);
    let simd = use_simd && sparse_simd_available();
    if ctx.third_order() {
        step_impl::<true, O>(ctx, tiles, gt, src, dst, &oc, simd, parallel);
    } else {
        step_impl::<false, O>(ctx, tiles, gt, src, dst, &oc, simd, parallel);
    }
}

#[allow(clippy::too_many_arguments)]
fn step_impl<const THIRD: bool, O: CollideOp>(
    ctx: &KernelCtx,
    tiles: &SparseTiles,
    gt: &GatherTable,
    src: &SparseField,
    dst: &mut SparseField,
    oc: &OpConsts,
    simd: bool,
    parallel: bool,
) {
    let q = ctx.lat.q();
    let frame = dst.frame_len();
    let total = dst.as_slice().len();
    let base = SendPtr(dst.as_mut_slice().as_mut_ptr());
    let src_data = src.as_slice();

    // Fast-class tiles (all-fluid, all neighbours allocated) replace the
    // per-cell table walk with the merged segment copies; the gathered
    // buffer is identical, so the collide output is bitwise equal. Both
    // lists are in packed (z-local) order.
    let run = move |list: &[usize], fast: bool| {
        let base = base; // capture the whole SendPtr, not its raw-ptr field
        let mut buf = [0.0f64; MAX_Q * TILE_CELLS];
        for (idx, &t) in list.iter().enumerate() {
            let nbrs = &tiles.neighbors[t];
            if let Some(&t_next) = list.get(idx + 1) {
                // The indirect gather defeats the hardware stride
                // prefetcher (the stream restarts at an arbitrary frame on
                // every tile), so touch the next tile's source frame — the
                // dominant gather source: every interior cell pulls from it
                // — and its neighbour row while this tile computes; the AA
                // and fused kernels' next-row pattern, adapted to tiles.
                prefetch_next_tile(src_data, tiles, t_next, frame);
            }
            if fast {
                gather_tile_fast(q, gt, nbrs, src_data, &mut buf);
            } else {
                gather_tile(q, gt, nbrs, src_data, &mut buf);
            }
            debug_assert!((t + 1) * frame <= total);
            // SAFETY: the fast/slow lists partition the owned tiles and
            // chunks partition each list; each task writes only its own
            // tiles' frames, which are disjoint slices of dst.
            let dstf = unsafe { std::slice::from_raw_parts_mut(base.0.add(t * frame), frame) };
            let fluid = tiles.tiles[t].fluid;
            #[cfg(target_arch = "x86_64")]
            if simd {
                // SAFETY: `simd` implies AVX2 was detected at runtime.
                unsafe { tile_cells_avx2::<THIRD, O>(ctx, oc, fluid, &buf, dstf) };
                continue;
            }
            let _ = simd;
            tile_cells_scalar::<THIRD, O>(ctx, oc, fluid, &buf, dstf);
        }
    };

    drive_tile_lists(&tiles.fast_owned, &tiles.slow_owned, parallel, run);
}

/// Run `work(sublist, is_fast)` over the fast and slow tile lists, either
/// serially or rayon-parallel. Chunks never straddle the class boundary, so
/// the branch-free fast body is not serialized behind rim tiles sharing its
/// chunk.
fn drive_tile_lists(
    fast: &[usize],
    slow: &[usize],
    parallel: bool,
    work: impl Fn(&[usize], bool) + Sync,
) {
    let n = fast.len() + slow.len();
    if !parallel || n <= 1 {
        work(fast, true);
        work(slow, false);
        return;
    }
    let chunks_of = |len: usize| -> usize {
        if len == 0 {
            0
        } else {
            (rayon::current_num_threads().max(1) * 4).min(len)
        }
    };
    let cf = chunks_of(fast.len());
    let cs = chunks_of(slow.len());
    (0..cf + cs).into_par_iter().for_each(|c| {
        let (list, chunks, c, is_fast) = if c < cf {
            (fast, cf, c, true)
        } else {
            (slow, cs, c - cf, false)
        };
        let (lo, hi) = chunk_bounds(0, list.len(), chunks, c);
        if lo < hi {
            work(&list[lo..hi], is_fast);
        }
    });
}

/// Software-prefetch the gather sources of tile `t_next`: its own source
/// frame (`q·TILE_CELLS` doubles — the self slot every interior cell pulls
/// through) and its neighbour-table row. Boundary cells also pull single
/// lines from adjacent frames; those are left to demand misses — touching
/// up to `TILE_NEIGHBORS` extra frames would evict more than it hides.
#[inline]
fn prefetch_next_tile(src: &[f64], tiles: &SparseTiles, t_next: usize, frame: usize) {
    #[cfg(target_arch = "x86_64")]
    {
        use std::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
        let nbr_ptr = std::ptr::from_ref(&tiles.neighbors[t_next]).cast::<i8>();
        // SAFETY: PREFETCHT0 is a hint and cannot fault; the offsets below
        // are clamped to the slice.
        unsafe { _mm_prefetch::<_MM_HINT_T0>(nbr_ptr) };
        let lo = t_next * frame;
        let hi = (lo + frame).min(src.len());
        let mut p = lo;
        while p < hi {
            // SAFETY: p < src.len() — in-bounds pointer, hint-only.
            unsafe { _mm_prefetch::<_MM_HINT_T0>(src.as_ptr().add(p).cast::<i8>()) };
            p += 8;
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = (src, tiles, t_next, frame);
}

/// Pull-stream one tile through the neighbour table into `buf[i·64 + c]`;
/// an unallocated neighbour (`-1`) contributes vacuum.
#[inline]
fn gather_tile(
    q: usize,
    gt: &GatherTable,
    nbrs: &[i32; TILE_NEIGHBORS],
    src: &[f64],
    buf: &mut [f64],
) {
    for i in 0..q {
        let row = gt.row(i);
        let out = &mut buf[i * TILE_CELLS..(i + 1) * TILE_CELLS];
        for (c, o) in out.iter_mut().enumerate() {
            let (slot, sc) = row[c];
            let t = nbrs[slot as usize];
            *o = if t < 0 {
                0.0
            } else {
                src[(t as usize * q + i) * TILE_CELLS + sc as usize]
            };
        }
    }
}

/// Direct-addressed pull-stream for a fast-class tile: every neighbour is
/// allocated, so each merged segment is one unit-stride block copy at a
/// constant intra-tile offset — no per-cell slot decode, no vacuum branch.
/// Produces the identical `buf` as [`gather_tile`] on such tiles.
#[inline]
fn gather_tile_fast(
    q: usize,
    gt: &GatherTable,
    nbrs: &[i32; TILE_NEIGHBORS],
    src: &[f64],
    buf: &mut [f64],
) {
    for i in 0..q {
        let out = &mut buf[i * TILE_CELLS..(i + 1) * TILE_CELLS];
        for s in gt.seg_row(i) {
            let t = nbrs[s.slot as usize] as usize;
            let (d, so, len) = (s.dst as usize, s.src as usize, s.len as usize);
            let lo = (t * q + i) * TILE_CELLS + so;
            out[d..d + len].copy_from_slice(&src[lo..lo + len]);
        }
    }
}

/// The streamed (pull) image of packed tile `t`: `buf[i·64 + c]` receives
/// exactly what the fused two-grid step would gather before bouncing and
/// colliding, vacuum zeros included. Sparse AA storage holds this image
/// directly at even-parity boundaries, so cross-storage equivalence checks
/// compare an AA frame against `streamed_tile` of the two-grid state.
pub fn streamed_tile(
    q: usize,
    gt: &GatherTable,
    tiles: &SparseTiles,
    f: &SparseField,
    t: usize,
    buf: &mut [f64],
) {
    gather_tile(q, gt, &tiles.neighbors[t], f.as_slice(), buf);
}

/// Scalar tile body: per-cell BGK/Guo collide on fluid cells (the exact
/// arithmetic of the dense `op::collide_cells` driver), full-way bounce-back
/// on solid cells.
fn tile_cells_scalar<const THIRD: bool, O: CollideOp>(
    ctx: &KernelCtx,
    oc: &OpConsts,
    fluid: u64,
    buf: &[f64],
    dst: &mut [f64],
) {
    let q = ctx.lat.q();
    let k = &ctx.consts;
    let omega = ctx.omega;
    let hg = oc.half_g;
    let g = oc.g;
    for c in 0..TILE_CELLS {
        if fluid & (1u64 << c) == 0 {
            for i in 0..q {
                dst[i * TILE_CELLS + c] = buf[oc.opp[i] * TILE_CELLS + c];
            }
            continue;
        }
        let mut rho = 0.0f64;
        let mut mx = 0.0f64;
        let mut my = 0.0f64;
        let mut mz = 0.0f64;
        for i in 0..q {
            let cc = oc.cw[i];
            let fv = buf[i * TILE_CELLS + c];
            rho += fv;
            mx += fv * cc[0];
            my += fv * cc[1];
            mz += fv * cc[2];
        }
        let inv = 1.0 / rho;
        let (ux, uy, uz, ug);
        if O::FORCED {
            ux = (mx + hg[0]) * inv;
            uy = (my + hg[1]) * inv;
            uz = (mz + hg[2]) * inv;
            ug = ux * g[0] + uy * g[1] + uz * g[2];
        } else {
            ux = mx * inv;
            uy = my * inv;
            uz = mz * inv;
            ug = 0.0;
        }
        let u2 = ux * ux + uy * uy + uz * uz;
        for i in 0..q {
            let cc = oc.cw[i];
            let w = cc[3];
            let xi = cc[0] * ux + cc[1] * uy + cc[2] * uz;
            let mut poly = 1.0 + xi * k.inv_cs2 + xi * xi * k.inv_2cs4 - u2 * k.inv_2cs2;
            if THIRD {
                poly += xi * (xi * xi - 3.0 * k.cs2 * u2) * k.inv_6cs6;
            }
            let feq = w * rho * poly;
            let fv = buf[i * TILE_CELLS + c];
            let mut next = fv + omega * (feq - fv);
            if O::FORCED {
                next += oc.sa[i] - oc.sb[i] * ug + oc.sc[i] * xi;
            }
            dst[i * TILE_CELLS + c] = next;
        }
    }
}

/// AVX2 tile body: 4-wide z-lines of the tile, **without** FMA contractions
/// — every lane performs the scalar driver's operation sequence, so the
/// result is bitwise equal to [`tile_cells_scalar`]. Mixed fluid/solid lines
/// blend the collide result with the bounce-back line by the fluid bitmap.
///
/// # Safety
/// Caller must ensure AVX2 is available.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn tile_cells_avx2<const THIRD: bool, O: CollideOp>(
    ctx: &KernelCtx,
    oc: &OpConsts,
    fluid: u64,
    buf: &[f64],
    dst: &mut [f64],
) {
    use std::arch::x86_64::*;

    const LANES: usize = 4;
    let q = ctx.lat.q();
    let k = &ctx.consts;
    let hg = oc.half_g;
    let g = oc.g;
    debug_assert!(buf.len() >= q * TILE_CELLS && dst.len() >= q * TILE_CELLS);
    let bp = buf.as_ptr();
    let dp = dst.as_mut_ptr();

    // SAFETY: all offsets are i·64 + line·4 with i < q and line < 16, hence
    // within the q·64 frames checked above.
    unsafe {
        let v_one = _mm256_set1_pd(1.0);
        let v_omega = _mm256_set1_pd(ctx.omega);
        let v_inv_cs2 = _mm256_set1_pd(k.inv_cs2);
        let v_inv_2cs4 = _mm256_set1_pd(k.inv_2cs4);
        let v_inv_2cs2 = _mm256_set1_pd(k.inv_2cs2);
        let v_inv_6cs6 = _mm256_set1_pd(k.inv_6cs6);
        let v_3cs2 = _mm256_set1_pd(3.0 * k.cs2);
        let v_hg0 = _mm256_set1_pd(hg[0]);
        let v_hg1 = _mm256_set1_pd(hg[1]);
        let v_hg2 = _mm256_set1_pd(hg[2]);
        let v_g0 = _mm256_set1_pd(g[0]);
        let v_g1 = _mm256_set1_pd(g[1]);
        let v_g2 = _mm256_set1_pd(g[2]);

        for line in 0..TILE_CELLS / LANES {
            let off = line * LANES;
            let bits = (fluid >> off) & 0xF;
            if bits == 0 {
                for i in 0..q {
                    let b = _mm256_loadu_pd(bp.add(oc.opp[i] * TILE_CELLS + off));
                    _mm256_storeu_pd(dp.add(i * TILE_CELLS + off), b);
                }
                continue;
            }
            // Moments, accumulated in the scalar order (no term skipping,
            // no FMA).
            let mut vrho = _mm256_setzero_pd();
            let mut vmx = _mm256_setzero_pd();
            let mut vmy = _mm256_setzero_pd();
            let mut vmz = _mm256_setzero_pd();
            for i in 0..q {
                let c = oc.cw[i];
                let fv = _mm256_loadu_pd(bp.add(i * TILE_CELLS + off));
                vrho = _mm256_add_pd(vrho, fv);
                vmx = _mm256_add_pd(vmx, _mm256_mul_pd(fv, _mm256_set1_pd(c[0])));
                vmy = _mm256_add_pd(vmy, _mm256_mul_pd(fv, _mm256_set1_pd(c[1])));
                vmz = _mm256_add_pd(vmz, _mm256_mul_pd(fv, _mm256_set1_pd(c[2])));
            }
            let vinv = _mm256_div_pd(v_one, vrho);
            let (vux, vuy, vuz);
            let mut vug = _mm256_setzero_pd();
            if O::FORCED {
                vux = _mm256_mul_pd(_mm256_add_pd(vmx, v_hg0), vinv);
                vuy = _mm256_mul_pd(_mm256_add_pd(vmy, v_hg1), vinv);
                vuz = _mm256_mul_pd(_mm256_add_pd(vmz, v_hg2), vinv);
                vug = _mm256_add_pd(
                    _mm256_add_pd(_mm256_mul_pd(vux, v_g0), _mm256_mul_pd(vuy, v_g1)),
                    _mm256_mul_pd(vuz, v_g2),
                );
            } else {
                vux = _mm256_mul_pd(vmx, vinv);
                vuy = _mm256_mul_pd(vmy, vinv);
                vuz = _mm256_mul_pd(vmz, vinv);
            }
            let vu2 = _mm256_add_pd(
                _mm256_add_pd(_mm256_mul_pd(vux, vux), _mm256_mul_pd(vuy, vuy)),
                _mm256_mul_pd(vuz, vuz),
            );
            let blend_mask = if bits == 0xF {
                _mm256_setzero_pd() // unused
            } else {
                let m = |b: u64| -> f64 {
                    if bits & (1 << b) != 0 {
                        f64::from_bits(1u64 << 63)
                    } else {
                        0.0
                    }
                };
                _mm256_setr_pd(m(0), m(1), m(2), m(3))
            };
            for i in 0..q {
                let c = oc.cw[i];
                let vxi = _mm256_add_pd(
                    _mm256_add_pd(
                        _mm256_mul_pd(_mm256_set1_pd(c[0]), vux),
                        _mm256_mul_pd(_mm256_set1_pd(c[1]), vuy),
                    ),
                    _mm256_mul_pd(_mm256_set1_pd(c[2]), vuz),
                );
                let mut vpoly = _mm256_sub_pd(
                    _mm256_add_pd(
                        _mm256_add_pd(v_one, _mm256_mul_pd(vxi, v_inv_cs2)),
                        _mm256_mul_pd(_mm256_mul_pd(vxi, vxi), v_inv_2cs4),
                    ),
                    _mm256_mul_pd(vu2, v_inv_2cs2),
                );
                if THIRD {
                    let inner = _mm256_sub_pd(_mm256_mul_pd(vxi, vxi), _mm256_mul_pd(v_3cs2, vu2));
                    vpoly =
                        _mm256_add_pd(vpoly, _mm256_mul_pd(_mm256_mul_pd(vxi, inner), v_inv_6cs6));
                }
                let vfeq = _mm256_mul_pd(_mm256_mul_pd(_mm256_set1_pd(c[3]), vrho), vpoly);
                let fv = _mm256_loadu_pd(bp.add(i * TILE_CELLS + off));
                let mut vnext = _mm256_add_pd(fv, _mm256_mul_pd(v_omega, _mm256_sub_pd(vfeq, fv)));
                if O::FORCED {
                    let src = _mm256_add_pd(
                        _mm256_sub_pd(
                            _mm256_set1_pd(oc.sa[i]),
                            _mm256_mul_pd(_mm256_set1_pd(oc.sb[i]), vug),
                        ),
                        _mm256_mul_pd(_mm256_set1_pd(oc.sc[i]), vxi),
                    );
                    vnext = _mm256_add_pd(vnext, src);
                }
                let out = if bits == 0xF {
                    vnext
                } else {
                    let b = _mm256_loadu_pd(bp.add(oc.opp[i] * TILE_CELLS + off));
                    _mm256_blendv_pd(b, vnext, blend_mask)
                };
                _mm256_storeu_pd(dp.add(i * TILE_CELLS + off), out);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// In-place AA-pattern storage: one frame per tile, no src/dst pair.
//
// Slot convention (the sparse transcription of `kernels::aa`): at *even*
// parity, slot `(P, i)` holds the post-stream population `f_i(P)` — the
// streamed image of the two-grid state. The even step collides each cell
// locally and stores the result velocity-swapped (`slot (P, opp(i)) ←
// f*_i(P)`); the odd step is the in-place stream+collide+stream: writer `x`
// gathers slot `(x − c_j, opp(j))` (= the streamed `f_j(x)`), collides, and
// scatters slot `(x + c_i, i) ← f**_i(x)`, restoring even parity.
//
// Correctness hinges on slot ownership: slot `(P, i)` is gathered by exactly
// the writer `x = P − c_i` and scattered by exactly the same `x`, so a
// writer's read set equals its write set and distinct writers touch disjoint
// slots — gather-before-scatter per tile makes the whole pass race-free
// across tiles, threads and ranks with no special wall handling. Solid
// cells are strict no-ops both phases (the even bounce + swapped store is
// the identity on their slots); a fluid writer's scatter into a solid
// neighbour's slot is the in-flight bounce-back storage that the same
// writer re-gathers next odd step — full-way bounce-back with the two-grid
// delay, bitwise.
// ---------------------------------------------------------------------------

/// Even (in-place, local) AA step over the owned fluid tiles: collide every
/// cell and store the result velocity-swapped into the same frame. Rim
/// tiles are untouched (the swapped bounce store is the identity there).
pub fn aa_even_step(
    ctx: &KernelCtx,
    tiles: &SparseTiles,
    f: &mut SparseField,
    g: [f64; 3],
    use_simd: bool,
) {
    with_op!(g, |op| aa_even_with(ctx, tiles, f, op, use_simd, false));
}

/// Rayon-parallel [`aa_even_step`]: bitwise equal — every tile touches only
/// its own frame. Call from inside the desired thread pool.
pub fn aa_even_step_par(
    ctx: &KernelCtx,
    tiles: &SparseTiles,
    f: &mut SparseField,
    g: [f64; 3],
    use_simd: bool,
) {
    with_op!(g, |op| aa_even_with(ctx, tiles, f, op, use_simd, true));
}

/// Odd (in-place, streaming) AA step: gather through the neighbour table at
/// the opposite velocity, collide, scatter velocity-forward. Computes the
/// owned fluid tiles plus the adjacent ghost-writer tiles (distributed
/// builds), whose shallow cells duplicate the neighbour rank's scatter into
/// our boundary slots.
pub fn aa_odd_step(
    ctx: &KernelCtx,
    tiles: &SparseTiles,
    gt: &GatherTable,
    f: &mut SparseField,
    g: [f64; 3],
    use_simd: bool,
) {
    with_op!(g, |op| aa_odd_with(ctx, tiles, gt, f, op, use_simd, false));
}

/// Rayon-parallel [`aa_odd_step`]: bitwise equal by the slot-ownership
/// argument in the section docs. Call from inside the desired thread pool.
pub fn aa_odd_step_par(
    ctx: &KernelCtx,
    tiles: &SparseTiles,
    gt: &GatherTable,
    f: &mut SparseField,
    g: [f64; 3],
    use_simd: bool,
) {
    with_op!(g, |op| aa_odd_with(ctx, tiles, gt, f, op, use_simd, true));
}

fn aa_even_with<O: CollideOp>(
    ctx: &KernelCtx,
    tiles: &SparseTiles,
    f: &mut SparseField,
    op: O,
    use_simd: bool,
    parallel: bool,
) {
    let q = ctx.lat.q();
    assert_eq!(f.q(), q, "field q mismatch");
    assert_eq!(f.tile_count(), tiles.tile_count(), "field tile mismatch");
    let oc = OpConsts::new(ctx, &op);
    let simd = use_simd && sparse_simd_available();
    if ctx.third_order() {
        aa_even_impl::<true, O>(ctx, tiles, f, &oc, simd, parallel);
    } else {
        aa_even_impl::<false, O>(ctx, tiles, f, &oc, simd, parallel);
    }
}

fn aa_even_impl<const THIRD: bool, O: CollideOp>(
    ctx: &KernelCtx,
    tiles: &SparseTiles,
    f: &mut SparseField,
    oc: &OpConsts,
    simd: bool,
    parallel: bool,
) {
    let q = ctx.lat.q();
    let frame = f.frame_len();
    let total = f.as_slice().len();
    let base = SendPtr(f.as_mut_slice().as_mut_ptr());

    let run = move |list: &[usize], _fast: bool| {
        let base = base;
        let mut out = [0.0f64; MAX_Q * TILE_CELLS];
        for &t in list {
            debug_assert!((t + 1) * frame <= total);
            let fluid = tiles.tiles[t].fluid;
            // SAFETY: the even step touches only the tile's own frame and
            // the work lists partition distinct tiles across tasks.
            let fr = unsafe { std::slice::from_raw_parts_mut(base.0.add(t * frame), frame) };
            let outf = &mut out[..frame];
            #[cfg(target_arch = "x86_64")]
            if simd {
                // SAFETY: `simd` implies AVX2 was detected at runtime.
                unsafe { tile_cells_avx2::<THIRD, O>(ctx, oc, fluid, fr, outf) };
                store_swapped(q, &oc.opp, outf, fr);
                continue;
            }
            let _ = simd;
            tile_cells_scalar::<THIRD, O>(ctx, oc, fluid, fr, outf);
            store_swapped(q, &oc.opp, outf, fr);
        }
    };
    drive_tile_lists(&tiles.aa_even_fast, &tiles.aa_even_slow, parallel, run);
}

/// `frame[opp(i)·64 ..] ← out[i·64 ..]` for all velocities — the AA
/// cross-store. On solid cells `out` holds the bounce copy
/// `frame[opp(i)·64 + c]`, so the swapped store is the identity there.
#[inline]
fn store_swapped(q: usize, opp: &[usize; MAX_Q], out: &[f64], frame: &mut [f64]) {
    for i in 0..q {
        let o = opp[i] * TILE_CELLS;
        frame[o..o + TILE_CELLS].copy_from_slice(&out[i * TILE_CELLS..(i + 1) * TILE_CELLS]);
    }
}

#[allow(clippy::too_many_arguments)]
fn aa_odd_with<O: CollideOp>(
    ctx: &KernelCtx,
    tiles: &SparseTiles,
    gt: &GatherTable,
    f: &mut SparseField,
    op: O,
    use_simd: bool,
    parallel: bool,
) {
    let q = ctx.lat.q();
    assert_eq!(f.q(), q, "field q mismatch");
    assert_eq!(f.tile_count(), tiles.tile_count(), "field tile mismatch");
    assert_eq!(gt.q, q, "gather table lattice mismatch");
    let oc = OpConsts::new(ctx, &op);
    let simd = use_simd && sparse_simd_available();
    if ctx.third_order() {
        aa_odd_impl::<true, O>(ctx, tiles, gt, f, &oc, simd, parallel);
    } else {
        aa_odd_impl::<false, O>(ctx, tiles, gt, f, &oc, simd, parallel);
    }
}

#[allow(clippy::too_many_arguments)]
fn aa_odd_impl<const THIRD: bool, O: CollideOp>(
    ctx: &KernelCtx,
    tiles: &SparseTiles,
    gt: &GatherTable,
    f: &mut SparseField,
    oc: &OpConsts,
    simd: bool,
    parallel: bool,
) {
    let q = ctx.lat.q();
    let frame = f.frame_len();
    let total = f.as_slice().len();
    let base = SendPtr(f.as_mut_slice().as_mut_ptr());

    let run = move |list: &[usize], fast: bool| {
        let base = base;
        let mut buf = [0.0f64; MAX_Q * TILE_CELLS];
        let mut out = [0.0f64; MAX_Q * TILE_CELLS];
        for (idx, &t) in list.iter().enumerate() {
            let nbrs = &tiles.neighbors[t];
            // SAFETY: slot `(P, i)` is read only by writer `P − c_i` and
            // written only by the same writer (section docs); the work
            // lists assign each writer cell to exactly one task and every
            // tile gathers all of its slots before scattering any, so no
            // location is concurrently read and written by different tasks.
            let src = unsafe { std::slice::from_raw_parts(base.0.cast_const(), total) };
            if let Some(&t_next) = list.get(idx + 1) {
                prefetch_next_tile(src, tiles, t_next, frame);
            }
            if fast {
                gather_tile_aa_fast(q, &oc.opp, gt, nbrs, src, &mut buf);
            } else {
                gather_tile_aa(q, &oc.opp, gt, nbrs, src, &mut buf);
            }
            let fluid = tiles.tiles[t].fluid;
            let outf = &mut out[..frame];
            #[cfg(target_arch = "x86_64")]
            if simd {
                // SAFETY: `simd` implies AVX2 was detected at runtime.
                unsafe { tile_cells_avx2::<THIRD, O>(ctx, oc, fluid, &buf, outf) };
            } else {
                tile_cells_scalar::<THIRD, O>(ctx, oc, fluid, &buf, outf);
            }
            #[cfg(not(target_arch = "x86_64"))]
            {
                let _ = simd;
                tile_cells_scalar::<THIRD, O>(ctx, oc, fluid, &buf, outf);
            }
            // SAFETY: scatter targets are the writer-owned slots above.
            unsafe {
                if fast {
                    scatter_tile_aa::<true>(q, &oc.opp, gt, nbrs, fluid, outf, base.0);
                } else {
                    scatter_tile_aa::<false>(q, &oc.opp, gt, nbrs, fluid, outf, base.0);
                }
            }
        }
    };
    drive_tile_lists(&tiles.aa_odd_fast, &tiles.aa_odd_slow, parallel, run);
}

/// Odd-step pull: `buf[j·64 + c] ← field[(x − c_j, opp(j))]` through the
/// neighbour table (vacuum for unallocated sources, which only ever feeds
/// discarded solid/deep-ghost outputs).
#[inline]
fn gather_tile_aa(
    q: usize,
    opp: &[usize; MAX_Q],
    gt: &GatherTable,
    nbrs: &[i32; TILE_NEIGHBORS],
    src: &[f64],
    buf: &mut [f64],
) {
    for i in 0..q {
        let row = gt.row(i);
        let oi = opp[i];
        let out = &mut buf[i * TILE_CELLS..(i + 1) * TILE_CELLS];
        for (c, o) in out.iter_mut().enumerate() {
            let (slot, sc) = row[c];
            let t = nbrs[slot as usize];
            *o = if t < 0 {
                0.0
            } else {
                src[(t as usize * q + oi) * TILE_CELLS + sc as usize]
            };
        }
    }
}

/// Segment-copy variant of [`gather_tile_aa`] for fast-class tiles.
#[inline]
fn gather_tile_aa_fast(
    q: usize,
    opp: &[usize; MAX_Q],
    gt: &GatherTable,
    nbrs: &[i32; TILE_NEIGHBORS],
    src: &[f64],
    buf: &mut [f64],
) {
    for i in 0..q {
        let oi = opp[i];
        let out = &mut buf[i * TILE_CELLS..(i + 1) * TILE_CELLS];
        for s in gt.seg_row(i) {
            let t = nbrs[s.slot as usize] as usize;
            let (d, so, len) = (s.dst as usize, s.src as usize, s.len as usize);
            let lo = (t * q + oi) * TILE_CELLS + so;
            out[d..d + len].copy_from_slice(&src[lo..lo + len]);
        }
    }
}

/// Odd-step push: `field[(x + c_i, i)] ← out[i·64 + c]` for the writer
/// cells. `FAST` scatters the whole tile by segment copies (all cells
/// fluid, all neighbours allocated); otherwise only fluid writers scatter,
/// and a `-1` target (deep ghost writer past the halo) is discarded — the
/// owning rank computes that slot itself.
///
/// # Safety
/// Caller must uphold the slot-ownership partition documented on the
/// section: the written slots belong exclusively to this tile's writers.
#[inline]
unsafe fn scatter_tile_aa<const FAST: bool>(
    q: usize,
    opp: &[usize; MAX_Q],
    gt: &GatherTable,
    nbrs: &[i32; TILE_NEIGHBORS],
    fluid: u64,
    out: &[f64],
    base: *mut f64,
) {
    for i in 0..q {
        let oi = opp[i];
        if FAST {
            for s in gt.seg_row(oi) {
                let t = nbrs[s.slot as usize] as usize;
                let (d, so, len) = (s.dst as usize, s.src as usize, s.len as usize);
                let lo = (t * q + i) * TILE_CELLS + so;
                // SAFETY: in-bounds by the frame layout; exclusivity per
                // the function contract.
                unsafe {
                    std::ptr::copy_nonoverlapping(
                        out.as_ptr().add(i * TILE_CELLS + d),
                        base.add(lo),
                        len,
                    );
                }
            }
        } else {
            let row = gt.row(oi);
            let mut bits = fluid;
            while bits != 0 {
                let c = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let (slot, sc) = row[c];
                let t = nbrs[slot as usize];
                if t >= 0 {
                    // SAFETY: as above.
                    unsafe {
                        *base.add((t as usize * q + i) * TILE_CELLS + sc as usize) =
                            out[i * TILE_CELLS + c];
                    }
                }
            }
        }
    }
}

/// Initialise a field to *even-parity AA state* — the streamed image of the
/// two-grid equilibrium init: slot `(P, i) ← feq_i(state(P − c_i))` when
/// the source cell's tile is allocated, else `0.0`. Matching
/// [`init_equilibrium`] + one pull-stream bitwise, so an AA run and a
/// two-grid run started from the same `state` stay comparable step for
/// step. Ghost frames get the same rule where the source is locally
/// addressable (they are overwritten by the halo exchange before first
/// use).
pub fn init_equilibrium_aa(
    ctx: &KernelCtx,
    tiles: &SparseTiles,
    f: &mut SparseField,
    gdims: Dim3,
    state: impl Fn(usize, usize, usize) -> (f64, [f64; 3]),
) {
    assert_eq!(f.tile_count(), tiles.tile_count());
    let td = tiles.tdims;
    let (lnx, lny, lnz) = (td.nx * TILE_B, td.ny * TILE_B, td.nz * TILE_B);
    let vels = ctx.lat.velocities().to_vec();
    for t in 0..tiles.tile_count() {
        let ti = tiles.tiles[t];
        let frame = f.frame_mut(t);
        for lx in 0..TILE_B {
            let x = ti.tx * TILE_B + lx;
            for ly in 0..TILE_B {
                let y = ti.ty * TILE_B + ly;
                for lz in 0..TILE_B {
                    let z = ti.tz * TILE_B + lz;
                    let c = tile_cell(lx, ly, lz);
                    for (i, cv) in vels.iter().enumerate() {
                        let sxi = x as isize - cv[0] as isize;
                        let sx = if tiles.ghost_cols == 0 {
                            Some(sxi.rem_euclid(lnx as isize) as usize)
                        } else if (0..lnx as isize).contains(&sxi) {
                            Some(sxi as usize)
                        } else {
                            None
                        };
                        let sy = (y as isize - cv[1] as isize).rem_euclid(lny as isize) as usize;
                        let sz = (z as isize - cv[2] as isize).rem_euclid(lnz as isize) as usize;
                        frame[i * TILE_CELLS + c] = match sx {
                            None => 0.0,
                            Some(sx) => {
                                let tt =
                                    tiles.tile_of[td.idx(sx / TILE_B, sy / TILE_B, sz / TILE_B)];
                                if tt < 0 {
                                    0.0
                                } else {
                                    let gx = tiles.global_cell_x(sx, gdims.nx);
                                    let (rho, u) = state(gx, sy, sz);
                                    feq_i(&ctx.lat, ctx.order, i, rho, u)
                                }
                            }
                        };
                    }
                }
            }
        }
    }
}

/// Initialise every stored cell of every packed tile to the equilibrium of
/// `state(gx, gy, gz)` — the same `feq_i` evaluation as the dense
/// [`crate::init::from_macroscopic`] — then zero the *escaping* slots of
/// owned tiles (slot `i` of cell `P` where `P + c_i` falls in an
/// unallocated tile). Nothing ever reads an escaping slot and each step
/// rewrites it to the vacuum pull (zero), so zeroing them at init makes the
/// stored mass exactly conserved from step 0.
pub fn init_equilibrium(
    ctx: &KernelCtx,
    tiles: &SparseTiles,
    gt: &GatherTable,
    f: &mut SparseField,
    gdims: Dim3,
    state: impl Fn(usize, usize, usize) -> (f64, [f64; 3]),
) {
    let q = ctx.lat.q();
    assert_eq!(f.tile_count(), tiles.tile_count());
    for t in 0..tiles.tile_count() {
        let ti = tiles.tiles[t];
        let frame = f.frame_mut(t);
        for lx in 0..TILE_B {
            let gx = tiles.global_cell_x(ti.tx * TILE_B + lx, gdims.nx);
            for ly in 0..TILE_B {
                let gy = ti.ty * TILE_B + ly;
                for lz in 0..TILE_B {
                    let gz = ti.tz * TILE_B + lz;
                    let (rho, u) = state(gx, gy, gz);
                    let c = tile_cell(lx, ly, lz);
                    for i in 0..q {
                        frame[i * TILE_CELLS + c] = feq_i(&ctx.lat, ctx.order, i, rho, u);
                    }
                }
            }
        }
    }
    zero_escaping_slots(ctx, tiles, gt, f);
}

/// Zero the escaping slots of the owned tiles (see [`init_equilibrium`]).
/// Ghost tiles are skipped: their frames are overwritten by the halo
/// exchange before every step.
pub fn zero_escaping_slots(
    ctx: &KernelCtx,
    tiles: &SparseTiles,
    gt: &GatherTable,
    f: &mut SparseField,
) {
    let q = ctx.lat.q();
    // Slot i of cell c escapes iff the *forward* target tile is
    // unallocated; the forward offset of i is the pull offset of opp(i),
    // so reuse the gather table rows of the opposites.
    let opp: Vec<usize> = (0..q).map(|i| ctx.lat.opposite(i)).collect();
    for t in 0..tiles.owned_tiles {
        let nbrs = tiles.neighbors[t];
        let frame = f.frame_mut(t);
        for (i, &oi) in opp.iter().enumerate() {
            let row = gt.row(oi);
            for (c, &(slot, _)) in row.iter().enumerate() {
                if nbrs[slot as usize] < 0 {
                    frame[i * TILE_CELLS + c] = 0.0;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collision::Bgk;
    use crate::equilibrium::EqOrder;
    use crate::geometry::Geometry;
    use crate::index::wrap;
    use crate::lattice::LatticeKind;

    fn ctx_for(kind: LatticeKind) -> KernelCtx {
        let order = if kind == LatticeKind::D3Q39 {
            EqOrder::Third
        } else {
            EqOrder::Second
        };
        KernelCtx::new(kind, order, Bgk::new(0.8).unwrap())
    }

    fn smooth_state(d: Dim3) -> impl Fn(usize, usize, usize) -> (f64, [f64; 3]) {
        move |x, y, z| {
            let tau = std::f64::consts::TAU;
            let fx = x as f64 / d.nx as f64 * tau;
            let fy = y as f64 / d.ny as f64 * tau;
            let fz = z as f64 / d.nz as f64 * tau;
            (
                1.0 + 0.05 * fx.sin() * fy.cos(),
                [0.02 * fy.sin(), -0.01 * fz.cos(), 0.015 * fx.sin()],
            )
        }
    }

    /// Textbook dense periodic reference on the full box: pull-stream with
    /// vacuum outside the allocated tile set, bounce solids, collide fluid
    /// with the identical scalar arithmetic. Ground truth for the packed
    /// indirect-addressing machinery.
    struct DenseRef {
        d: Dim3,
        q: usize,
        stored: Vec<bool>,
        fluid: Vec<bool>,
        f: Vec<f64>, // [cell * q + i]
    }

    impl DenseRef {
        fn new(ctx: &KernelCtx, geom: &Geometry, tiles: &SparseTiles) -> Self {
            let d = geom.dims();
            let q = ctx.lat.q();
            let mut stored = vec![false; d.nx * d.ny * d.nz];
            let mut fluid = vec![false; d.nx * d.ny * d.nz];
            for x in 0..d.nx {
                for y in 0..d.ny {
                    for z in 0..d.nz {
                        let t = tiles.tile_of[tiles.tdims.idx(x / TILE_B, y / TILE_B, z / TILE_B)];
                        stored[d.idx(x, y, z)] = t >= 0;
                        fluid[d.idx(x, y, z)] = geom.is_fluid(x, y, z);
                    }
                }
            }
            Self {
                d,
                q,
                stored,
                fluid,
                f: vec![0.0; d.nx * d.ny * d.nz * q],
            }
        }

        fn init(
            &mut self,
            ctx: &KernelCtx,
            state: &impl Fn(usize, usize, usize) -> (f64, [f64; 3]),
        ) {
            let (d, q) = (self.d, self.q);
            for x in 0..d.nx {
                for y in 0..d.ny {
                    for z in 0..d.nz {
                        let cell = d.idx(x, y, z);
                        if !self.stored[cell] {
                            continue;
                        }
                        let (rho, u) = state(x, y, z);
                        for i in 0..q {
                            self.f[cell * q + i] = feq_i(&ctx.lat, ctx.order, i, rho, u);
                        }
                    }
                }
            }
            // Zero escaping slots like the sparse init.
            let next = self.escape_zeroed(ctx);
            self.f = next;
        }

        fn escape_zeroed(&self, ctx: &KernelCtx) -> Vec<f64> {
            let (d, q) = (self.d, self.q);
            let mut out = self.f.clone();
            for x in 0..d.nx {
                for y in 0..d.ny {
                    for z in 0..d.nz {
                        let cell = d.idx(x, y, z);
                        if !self.stored[cell] {
                            continue;
                        }
                        for (i, c) in ctx.lat.velocities().iter().enumerate() {
                            let tx = wrap(x, c[0], d.nx);
                            let ty = wrap(y, c[1], d.ny);
                            let tz = wrap(z, c[2], d.nz);
                            if !self.stored[d.idx(tx, ty, tz)] {
                                out[cell * q + i] = 0.0;
                            }
                        }
                    }
                }
            }
            out
        }

        fn step(&mut self, ctx: &KernelCtx, g: [f64; 3]) {
            let (d, q) = (self.d, self.q);
            let k = &ctx.consts;
            let omega = ctx.omega;
            let third = ctx.third_order();
            let oc = with_op!(g, |op| OpConsts::new(ctx, &op));
            let forced = g != [0.0; 3];
            let src = self.f.clone();
            let mut streamed = vec![0.0f64; MAX_Q];
            for x in 0..d.nx {
                for y in 0..d.ny {
                    for z in 0..d.nz {
                        let cell = d.idx(x, y, z);
                        if !self.stored[cell] {
                            continue;
                        }
                        for (i, c) in ctx.lat.velocities().iter().enumerate() {
                            let sx = wrap(x, -c[0], d.nx);
                            let sy = wrap(y, -c[1], d.ny);
                            let sz = wrap(z, -c[2], d.nz);
                            let s = d.idx(sx, sy, sz);
                            streamed[i] = if self.stored[s] { src[s * q + i] } else { 0.0 };
                        }
                        if !self.fluid[cell] {
                            for i in 0..q {
                                self.f[cell * q + i] = streamed[oc.opp[i]];
                            }
                            continue;
                        }
                        let mut rho = 0.0;
                        let (mut mx, mut my, mut mz) = (0.0, 0.0, 0.0);
                        for i in 0..q {
                            let cc = oc.cw[i];
                            let fv = streamed[i];
                            rho += fv;
                            mx += fv * cc[0];
                            my += fv * cc[1];
                            mz += fv * cc[2];
                        }
                        let inv = 1.0 / rho;
                        let (ux, uy, uz, ug);
                        if forced {
                            ux = (mx + oc.half_g[0]) * inv;
                            uy = (my + oc.half_g[1]) * inv;
                            uz = (mz + oc.half_g[2]) * inv;
                            ug = ux * oc.g[0] + uy * oc.g[1] + uz * oc.g[2];
                        } else {
                            ux = mx * inv;
                            uy = my * inv;
                            uz = mz * inv;
                            ug = 0.0;
                        }
                        let u2 = ux * ux + uy * uy + uz * uz;
                        for i in 0..q {
                            let cc = oc.cw[i];
                            let xi = cc[0] * ux + cc[1] * uy + cc[2] * uz;
                            let mut poly =
                                1.0 + xi * k.inv_cs2 + xi * xi * k.inv_2cs4 - u2 * k.inv_2cs2;
                            if third {
                                poly += xi * (xi * xi - 3.0 * k.cs2 * u2) * k.inv_6cs6;
                            }
                            let feq = cc[3] * rho * poly;
                            let fv = streamed[i];
                            let mut next = fv + omega * (feq - fv);
                            if forced {
                                next += oc.sa[i] - oc.sb[i] * ug + oc.sc[i] * xi;
                            }
                            self.f[cell * q + i] = next;
                        }
                    }
                }
            }
        }
    }

    fn sparse_setup(
        ctx: &KernelCtx,
        geom: &Geometry,
    ) -> (SparseTiles, GatherTable, SparseField, SparseField) {
        let tiles = SparseTiles::build_serial(geom).unwrap();
        let gt = GatherTable::new(&ctx.lat);
        let q = ctx.lat.q();
        let mut f = SparseField::new(q, tiles.tile_count()).unwrap();
        let dst = SparseField::new(q, tiles.tile_count()).unwrap();
        init_equilibrium(
            ctx,
            &tiles,
            &gt,
            &mut f,
            geom.dims(),
            smooth_state(geom.dims()),
        );
        (tiles, gt, f, dst)
    }

    fn assert_matches_dense(kind: LatticeKind, geom: &Geometry, g: [f64; 3], steps: usize) {
        let ctx = ctx_for(kind);
        let (tiles, gt, mut f, mut tmp) = sparse_setup(&ctx, geom);
        let mut dref = DenseRef::new(&ctx, geom, &tiles);
        let state = smooth_state(geom.dims());
        dref.init(&ctx, &state);
        for _ in 0..steps {
            step(&ctx, &tiles, &gt, &f, &mut tmp, g, false);
            std::mem::swap(&mut f, &mut tmp);
            dref.step(&ctx, g);
        }
        let q = ctx.lat.q();
        let d = geom.dims();
        let mut cell = vec![0.0f64; q];
        let mut checked = 0usize;
        for (t, ti) in tiles.tiles.iter().enumerate() {
            for lx in 0..TILE_B {
                for ly in 0..TILE_B {
                    for lz in 0..TILE_B {
                        let (x, y, z) = (
                            ti.tx * TILE_B + lx,
                            ti.ty * TILE_B + ly,
                            ti.tz * TILE_B + lz,
                        );
                        f.gather_cell(t, tile_cell(lx, ly, lz), &mut cell);
                        for i in 0..q {
                            let want = dref.f[d.idx(x, y, z) * q + i];
                            assert!(
                                cell[i].to_bits() == want.to_bits(),
                                "{kind:?} cell ({x},{y},{z}) i={i}: sparse {} dense {}",
                                cell[i],
                                want
                            );
                        }
                        checked += 1;
                    }
                }
            }
        }
        assert!(checked > 0);
    }

    #[test]
    fn sparse_matches_dense_reference_pipe() {
        let geom = Geometry::pipe(
            Dim3 {
                nx: 8,
                ny: 16,
                nz: 16,
            },
            5.0,
        )
        .unwrap();
        assert_matches_dense(LatticeKind::D3Q19, &geom, [0.0; 3], 3);
        assert_matches_dense(LatticeKind::D3Q19, &geom, [1e-5, 0.0, 0.0], 3);
        assert_matches_dense(LatticeKind::D3Q39, &geom, [0.0; 3], 2);
        assert_matches_dense(LatticeKind::D3Q39, &geom, [1e-5, 2e-6, 0.0], 2);
    }

    #[test]
    fn sparse_matches_dense_reference_porous_and_bifurcation() {
        let d = Dim3 {
            nx: 16,
            ny: 16,
            nz: 16,
        };
        let geom = Geometry::porous(d, 2.5, 0.15, 11).unwrap();
        assert_matches_dense(LatticeKind::D3Q27, &geom, [0.0, 1e-5, 0.0], 2);
        let geom = Geometry::bifurcation(
            Dim3 {
                nx: 24,
                ny: 24,
                nz: 16,
            },
            6.0,
            3.5,
        )
        .unwrap();
        assert_matches_dense(LatticeKind::D3Q15, &geom, [1e-5, 0.0, 0.0], 2);
    }

    #[test]
    fn simd_and_par_are_bitwise_equal_to_scalar() {
        for kind in [LatticeKind::D3Q19, LatticeKind::D3Q39] {
            let ctx = ctx_for(kind);
            let geom = Geometry::pipe(
                Dim3 {
                    nx: 8,
                    ny: 16,
                    nz: 16,
                },
                6.0,
            )
            .unwrap();
            let g = [1e-5, 0.0, 3e-6];
            let (tiles, gt, f, _) = sparse_setup(&ctx, &geom);
            let n = tiles.tile_count();
            let q = ctx.lat.q();
            let mut scalar = SparseField::new(q, n).unwrap();
            let mut simd = SparseField::new(q, n).unwrap();
            let mut par = SparseField::new(q, n).unwrap();
            step(&ctx, &tiles, &gt, &f, &mut scalar, g, false);
            step(&ctx, &tiles, &gt, &f, &mut simd, g, true);
            step_par(&ctx, &tiles, &gt, &f, &mut par, g, false);
            for t in 0..tiles.owned_tiles {
                assert_eq!(
                    scalar.frame(t),
                    par.frame(t),
                    "{kind:?} par tile {t} differs"
                );
                if sparse_simd_available() {
                    for (a, b) in scalar.frame(t).iter().zip(simd.frame(t)) {
                        assert!(
                            a.to_bits() == b.to_bits(),
                            "{kind:?} simd differs: {a} vs {b}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn stored_mass_is_conserved_exactly_in_structure() {
        // With escaping slots zeroed at init, no stored slot ever streams
        // to nowhere: total stored mass moves only through collide roundoff.
        let ctx = ctx_for(LatticeKind::D3Q19);
        let geom = Geometry::porous(
            Dim3 {
                nx: 16,
                ny: 16,
                nz: 16,
            },
            2.0,
            0.1,
            5,
        )
        .unwrap();
        let (tiles, gt, mut f, mut tmp) = sparse_setup(&ctx, &geom);
        let mass = |f: &SparseField| -> f64 {
            (0..tiles.owned_tiles)
                .map(|t| f.frame(t).iter().sum::<f64>())
                .sum()
        };
        let m0 = mass(&f);
        for _ in 0..20 {
            step(&ctx, &tiles, &gt, &f, &mut tmp, [1e-5, 0.0, 0.0], false);
            std::mem::swap(&mut f, &mut tmp);
        }
        let m1 = mass(&f);
        assert!(
            ((m1 - m0) / m0).abs() < 1e-12,
            "stored mass drifted: {m0} -> {m1}"
        );
    }

    #[test]
    fn single_fluid_cell_tile_stays_finite_and_conservative() {
        let ctx = ctx_for(LatticeKind::D3Q19);
        let geom = Geometry::from_fn(
            Dim3 {
                nx: 8,
                ny: 8,
                nz: 8,
            },
            |x, y, z| (x, y, z) == (4, 4, 4),
        )
        .unwrap();
        let (tiles, gt, mut f, mut tmp) = sparse_setup(&ctx, &geom);
        assert_eq!(tiles.owned_fluid_cells, 1);
        let mass = |f: &SparseField| -> f64 {
            (0..tiles.owned_tiles)
                .map(|t| f.frame(t).iter().sum::<f64>())
                .sum()
        };
        let m0 = mass(&f);
        for _ in 0..10 {
            step(&ctx, &tiles, &gt, &f, &mut tmp, [0.0; 3], false);
            std::mem::swap(&mut f, &mut tmp);
        }
        assert!(f.as_slice().iter().all(|v| v.is_finite()));
        // The cell trades populations with its bounce-back rim, but the
        // total stored mass is exact.
        assert!(((mass(&f) - m0) / m0).abs() < 1e-12);
        // And the fluid cell itself stays near unit density.
        let mut cell = vec![0.0f64; ctx.lat.q()];
        let t = tiles.tile_of[tiles.tdims.idx(1, 1, 1)] as usize;
        f.gather_cell(t, tile_cell(0, 0, 0), &mut cell);
        let rho: f64 = cell.iter().sum();
        assert!((rho - 1.0).abs() < 0.05, "rho {rho}");
    }

    /// Clone with the fast path disabled: every tile classified slow, so
    /// the step runs the per-cell gather walk everywhere.
    fn force_slow(tiles: &SparseTiles) -> SparseTiles {
        let mut t = tiles.clone();
        let demote = |fast: &mut Vec<usize>, slow: &mut Vec<usize>| {
            let mut all: Vec<usize> = fast.drain(..).chain(slow.drain(..)).collect();
            all.sort_unstable();
            *slow = all;
        };
        let (ef, es) = (&mut t.aa_even_fast, &mut t.aa_even_slow);
        demote(ef, es);
        let (of, os) = (&mut t.aa_odd_fast, &mut t.aa_odd_slow);
        demote(of, os);
        let (ff, fs) = (&mut t.fast_owned, &mut t.slow_owned);
        demote(ff, fs);
        t
    }

    #[test]
    fn segments_reproduce_gather_rows() {
        for kind in [
            LatticeKind::D3Q15,
            LatticeKind::D3Q19,
            LatticeKind::D3Q27,
            LatticeKind::D3Q39,
        ] {
            let gt = GatherTable::new(&Lattice::new(kind));
            for i in 0..gt.q {
                let row = gt.row(i);
                let mut covered = 0usize;
                for s in gt.seg_row(i) {
                    for k in 0..s.len as usize {
                        let (slot, sc) = row[s.dst as usize + k];
                        assert_eq!(slot, s.slot);
                        assert_eq!(sc as usize, s.src as usize + k);
                        covered += 1;
                    }
                }
                assert_eq!(covered, TILE_CELLS, "{kind:?} i={i} segments leak");
            }
        }
    }

    #[test]
    fn fast_path_is_bitwise_equal_to_gather_path() {
        // Wide pipe: plenty of interior (fast) tiles plus wall (slow) ones.
        let d = Dim3 {
            nx: 8,
            ny: 24,
            nz: 24,
        };
        for (kind, g) in [
            (LatticeKind::D3Q15, [1e-5, 0.0, 0.0]),
            (LatticeKind::D3Q19, [0.0; 3]),
            (LatticeKind::D3Q27, [0.0, 2e-6, 0.0]),
            (LatticeKind::D3Q39, [1e-5, 0.0, 3e-6]),
        ] {
            let ctx = ctx_for(kind);
            let geom = Geometry::pipe(d, 10.0).unwrap();
            let (tiles, gt, f, _) = sparse_setup(&ctx, &geom);
            assert!(!tiles.fast_owned.is_empty(), "{kind:?} no fast tiles");
            let slow_tiles = force_slow(&tiles);
            let q = ctx.lat.q();
            let n = tiles.tile_count();
            let mut a = SparseField::new(q, n).unwrap();
            let mut b = SparseField::new(q, n).unwrap();
            for simd in [false, true] {
                step(&ctx, &tiles, &gt, &f, &mut a, g, simd);
                step(&ctx, &slow_tiles, &gt, &f, &mut b, g, simd);
                assert_eq!(a.as_slice(), b.as_slice(), "{kind:?} simd={simd}");
                step_par(&ctx, &tiles, &gt, &f, &mut b, g, simd);
                assert_eq!(a.as_slice(), b.as_slice(), "{kind:?} par simd={simd}");
            }
        }
    }

    /// Run `pairs` AA even/odd pairs in place.
    #[allow(clippy::too_many_arguments)]
    fn run_aa_pairs(
        ctx: &KernelCtx,
        tiles: &SparseTiles,
        gt: &GatherTable,
        f: &mut SparseField,
        g: [f64; 3],
        pairs: usize,
        simd: bool,
        par: bool,
    ) {
        for _ in 0..pairs {
            if par {
                aa_even_step_par(ctx, tiles, f, g, simd);
                aa_odd_step_par(ctx, tiles, gt, f, g, simd);
            } else {
                aa_even_step(ctx, tiles, f, g, simd);
                aa_odd_step(ctx, tiles, gt, f, g, simd);
            }
        }
    }

    #[test]
    fn aa_pairs_match_two_grid_streamed_image() {
        for (kind, geom, g) in [
            (
                LatticeKind::D3Q19,
                Geometry::pipe(
                    Dim3 {
                        nx: 8,
                        ny: 16,
                        nz: 16,
                    },
                    5.0,
                )
                .unwrap(),
                [1e-5, 0.0, 0.0],
            ),
            (
                LatticeKind::D3Q39,
                Geometry::pipe(
                    Dim3 {
                        nx: 8,
                        ny: 16,
                        nz: 16,
                    },
                    5.0,
                )
                .unwrap(),
                [0.0; 3],
            ),
            (
                LatticeKind::D3Q27,
                Geometry::porous(
                    Dim3 {
                        nx: 16,
                        ny: 16,
                        nz: 16,
                    },
                    2.5,
                    0.15,
                    11,
                )
                .unwrap(),
                [0.0, 1e-5, 0.0],
            ),
            (
                LatticeKind::D3Q15,
                Geometry::bifurcation(
                    Dim3 {
                        nx: 24,
                        ny: 24,
                        nz: 16,
                    },
                    6.0,
                    3.5,
                )
                .unwrap(),
                [1e-5, 0.0, 0.0],
            ),
        ] {
            let ctx = ctx_for(kind);
            let (tiles, gt, mut f, mut tmp) = sparse_setup(&ctx, &geom);
            let q = ctx.lat.q();
            let mut aa = SparseField::new(q, tiles.tile_count()).unwrap();
            init_equilibrium_aa(
                &ctx,
                &tiles,
                &mut aa,
                geom.dims(),
                smooth_state(geom.dims()),
            );
            let pairs = 3;
            for _ in 0..2 * pairs {
                step(&ctx, &tiles, &gt, &f, &mut tmp, g, false);
                std::mem::swap(&mut f, &mut tmp);
            }
            run_aa_pairs(&ctx, &tiles, &gt, &mut aa, g, pairs, false, false);
            // The AA field at even parity must equal the streamed image of
            // the two-grid field on every fluid cell's slots.
            let mut buf = [0.0f64; MAX_Q * TILE_CELLS];
            for t in 0..tiles.owned_tiles {
                let fluid = tiles.tiles[t].fluid;
                if fluid == 0 {
                    continue;
                }
                gather_tile(q, &gt, &tiles.neighbors[t], f.as_slice(), &mut buf);
                let frame = aa.frame(t);
                for c in 0..TILE_CELLS {
                    if fluid & (1 << c) == 0 {
                        continue;
                    }
                    for i in 0..q {
                        let (want, got) = (buf[i * TILE_CELLS + c], frame[i * TILE_CELLS + c]);
                        assert!(
                            (want - got).abs() <= 1e-11 * want.abs().max(1.0),
                            "{kind:?} tile {t} cell {c} i={i}: aa {got} vs streamed {want}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn aa_fast_simd_and_par_are_bitwise_equal() {
        for (kind, g) in [
            (LatticeKind::D3Q19, [1e-5, 0.0, 0.0]),
            (LatticeKind::D3Q39, [0.0; 3]),
        ] {
            let ctx = ctx_for(kind);
            let geom = Geometry::pipe(
                Dim3 {
                    nx: 8,
                    ny: 24,
                    nz: 24,
                },
                10.0,
            )
            .unwrap();
            let tiles = SparseTiles::build_serial(&geom).unwrap();
            assert!(!tiles.aa_even_fast.is_empty(), "{kind:?} no fast AA tiles");
            let slow_tiles = force_slow(&tiles);
            let gt = GatherTable::new(&ctx.lat);
            let q = ctx.lat.q();
            let mut reference = SparseField::new(q, tiles.tile_count()).unwrap();
            init_equilibrium_aa(
                &ctx,
                &tiles,
                &mut reference,
                geom.dims(),
                smooth_state(geom.dims()),
            );
            let variants: [(&SparseTiles, bool, bool); 4] = [
                (&tiles, false, false),    // fast path, scalar, serial
                (&tiles, true, false),     // fast path, simd
                (&tiles, false, true),     // fast path, threaded
                (&slow_tiles, true, true), // slow walk, simd, threaded
            ];
            let mut outputs = Vec::new();
            for (t, simd, par) in variants {
                let mut f = reference.clone();
                run_aa_pairs(&ctx, t, &gt, &mut f, g, 2, simd, par);
                outputs.push(f);
            }
            let head = outputs[0].as_slice();
            assert!(head.iter().all(|v| v.is_finite()));
            for (v, o) in outputs.iter().enumerate().skip(1) {
                for (a, b) in head.iter().zip(o.as_slice()) {
                    assert!(
                        a.to_bits() == b.to_bits(),
                        "{kind:?} variant {v}: {a} vs {b}"
                    );
                }
            }
        }
    }

    #[test]
    fn aa_stored_mass_is_conserved_exactly() {
        let ctx = ctx_for(LatticeKind::D3Q19);
        let geom = Geometry::porous(
            Dim3 {
                nx: 16,
                ny: 16,
                nz: 16,
            },
            2.0,
            0.1,
            5,
        )
        .unwrap();
        let tiles = SparseTiles::build_serial(&geom).unwrap();
        let gt = GatherTable::new(&ctx.lat);
        let mut f = SparseField::new(ctx.lat.q(), tiles.tile_count()).unwrap();
        init_equilibrium_aa(&ctx, &tiles, &mut f, geom.dims(), smooth_state(geom.dims()));
        let mass = |f: &SparseField| -> f64 {
            (0..tiles.owned_tiles)
                .map(|t| f.frame(t).iter().sum::<f64>())
                .sum()
        };
        let m0 = mass(&f);
        run_aa_pairs(
            &ctx,
            &tiles,
            &gt,
            &mut f,
            [1e-5, 0.0, 0.0],
            10,
            false,
            false,
        );
        let m1 = mass(&f);
        assert!(
            ((m1 - m0) / m0).abs() < 1e-12,
            "AA stored mass drifted: {m0} -> {m1}"
        );
    }

    #[test]
    fn gather_table_inverts_velocities() {
        let lat = Lattice::new(LatticeKind::D3Q39);
        let gt = GatherTable::new(&lat);
        // Pulling along i then pushing along i must return to the cell.
        for (i, c) in lat.velocities().iter().enumerate() {
            for lx in 0..TILE_B {
                for ly in 0..TILE_B {
                    for lz in 0..TILE_B {
                        let (slot, sc) = gt.row(i)[tile_cell(lx, ly, lz)];
                        let sc = sc as usize;
                        let (sx, sy, sz) = (sc / 16, (sc / 4) % 4, sc % 4);
                        // Reconstruct the absolute source coordinate from
                        // the slot's tile offset; it must equal dst - c.
                        let s = slot as isize;
                        let (dx, dy, dz) = (s / 9 - 1, (s / 3) % 3 - 1, s % 3 - 1);
                        assert_eq!(
                            dx * TILE_B as isize + sx as isize,
                            lx as isize - c[0] as isize
                        );
                        assert_eq!(
                            dy * TILE_B as isize + sy as isize,
                            ly as isize - c[1] as isize
                        );
                        assert_eq!(
                            dz * TILE_B as isize + sz as isize,
                            lz as isize - c[2] as isize
                        );
                    }
                }
            }
        }
    }
}
