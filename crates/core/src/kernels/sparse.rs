//! Sparse tiled stream+collide drivers — fluid-cell-cost compute over the
//! packed tile list of [`crate::geometry::SparseTiles`].
//!
//! Populations live in a **tile-major** [`SparseField`]: one contiguous
//! `q·64`-double frame per allocated tile (`data[(t·q + i)·64 + c]`), so a
//! tile's whole working set streams through cache together and a boundary
//! tile's frame is exactly the message payload of the distributed halo
//! exchange.
//!
//! One step is a fused pull-stream + boundary + collide into a second
//! buffer (two-grid): for every stored cell the streamed populations are
//! gathered through the per-tile neighbour table (an unallocated neighbour
//! reads as vacuum `0.0` — exact under the rim-allocation rule), then fluid
//! cells run the *identical* per-cell BGK/Guo arithmetic as the dense
//! [`crate::kernels::op`] drivers (same accumulation order, same reciprocal
//! form) while solid cells store the full-way bounce-back of their gathered
//! values — so on a shared geometry the sparse fluid trajectory is
//! **bitwise equal** to the dense masked path.
//!
//! Three drivers share the per-tile body: scalar, AVX2 (4-wide z-lines of a
//! tile; no FMA contractions, so it is bitwise equal to the scalar driver —
//! unlike the dense `Simd` rung, which trades exactness for fused
//! multiply-adds), and rayon (disjoint owned-tile chunks; bitwise equal to
//! serial since tiles are independent given `src`).

use rayon::prelude::*;

use crate::align::AlignedBuf;
use crate::equilibrium::feq_i;
use crate::error::{Error, Result};
use crate::geometry::{tile_cell, SparseTiles, TILE_B, TILE_CELLS, TILE_NEIGHBORS};
use crate::index::Dim3;
use crate::kernels::op::{with_op, CollideOp, OpConsts};
use crate::kernels::par::{chunk_bounds, SendPtr};
use crate::kernels::{KernelCtx, MAX_Q};
use crate::lattice::Lattice;

/// Tile-major population storage: `q · 64` doubles per allocated tile.
#[derive(Clone, Debug)]
pub struct SparseField {
    q: usize,
    tiles: usize,
    data: AlignedBuf,
}

impl SparseField {
    /// Allocate a zeroed field for `tiles` packed tiles of a `q`-velocity
    /// lattice.
    pub fn new(q: usize, tiles: usize) -> Result<Self> {
        if q == 0 || q > MAX_Q {
            return Err(Error::BadParameter(format!("q {q} outside 1..={MAX_Q}")));
        }
        if tiles == 0 {
            return Err(Error::BadParameter("sparse field with 0 tiles".into()));
        }
        Ok(Self {
            q,
            tiles,
            data: AlignedBuf::new(q * tiles * TILE_CELLS),
        })
    }

    /// Velocity count.
    pub fn q(&self) -> usize {
        self.q
    }

    /// Packed tile count.
    pub fn tile_count(&self) -> usize {
        self.tiles
    }

    /// Doubles per tile frame (`q · 64`).
    pub fn frame_len(&self) -> usize {
        self.q * TILE_CELLS
    }

    /// Tile `t`'s frame, velocity-major (`[i · 64 + c]`).
    #[inline]
    pub fn frame(&self, t: usize) -> &[f64] {
        let fl = self.frame_len();
        &self.data.as_slice()[t * fl..(t + 1) * fl]
    }

    /// Mutable tile frame.
    #[inline]
    pub fn frame_mut(&mut self, t: usize) -> &mut [f64] {
        let fl = self.frame_len();
        &mut self.data.as_mut_slice()[t * fl..(t + 1) * fl]
    }

    /// The whole storage as one slice (tile-major).
    pub fn as_slice(&self) -> &[f64] {
        self.data.as_slice()
    }

    /// Mutable whole-storage view.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        self.data.as_mut_slice()
    }

    /// Resident bytes of this buffer.
    pub fn resident_bytes(&self) -> u64 {
        (self.data.len() * std::mem::size_of::<f64>()) as u64
    }

    /// Copy the `q` populations of cell `c` in tile `t` into `out[..q]`.
    pub fn gather_cell(&self, t: usize, c: usize, out: &mut [f64]) {
        let f = self.frame(t);
        for (i, o) in out.iter_mut().enumerate().take(self.q) {
            *o = f[i * TILE_CELLS + c];
        }
    }
}

/// Geometry-independent streaming table for one lattice: for every
/// `(velocity, destination cell)` pair, which neighbour-table slot the pull
/// source lives in and its cell index there. Valid because every velocity
/// component is ≤ 3 < [`TILE_B`], so the source is at most one tile away.
#[derive(Clone, Debug)]
pub struct GatherTable {
    q: usize,
    /// `[i · 64 + c] = (neighbour slot, source cell)`.
    entries: Vec<(u8, u8)>,
}

impl GatherTable {
    /// Build the table for `lat`.
    pub fn new(lat: &Lattice) -> Self {
        let q = lat.q();
        let mut entries = vec![(0u8, 0u8); q * TILE_CELLS];
        let split = |s: isize| -> (isize, usize) {
            if s < 0 {
                (-1, (s + TILE_B as isize) as usize)
            } else if s >= TILE_B as isize {
                (1, (s - TILE_B as isize) as usize)
            } else {
                (0, s as usize)
            }
        };
        for (i, c) in lat.velocities().iter().enumerate() {
            for lx in 0..TILE_B {
                for ly in 0..TILE_B {
                    for lz in 0..TILE_B {
                        let (dx, ox) = split(lx as isize - c[0] as isize);
                        let (dy, oy) = split(ly as isize - c[1] as isize);
                        let (dz, oz) = split(lz as isize - c[2] as isize);
                        entries[i * TILE_CELLS + tile_cell(lx, ly, lz)] = (
                            crate::geometry::neighbor_slot(dx, dy, dz) as u8,
                            tile_cell(ox, oy, oz) as u8,
                        );
                    }
                }
            }
        }
        Self { q, entries }
    }

    /// The 64 `(slot, source cell)` entries of velocity `i`.
    #[inline]
    fn row(&self, i: usize) -> &[(u8, u8)] {
        &self.entries[i * TILE_CELLS..(i + 1) * TILE_CELLS]
    }
}

/// Whether the AVX2 sparse collide is usable on this host.
pub fn sparse_simd_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// One serial sparse step `dst ← collide(bounce(pull(src)))` over the owned
/// tiles of `tiles`. `g` selects plain BGK (`[0; 3]`) or Guo forcing;
/// `use_simd` opts into the AVX2 tile collide (bitwise equal, see module
/// docs) when the host supports it.
pub fn step(
    ctx: &KernelCtx,
    tiles: &SparseTiles,
    gt: &GatherTable,
    src: &SparseField,
    dst: &mut SparseField,
    g: [f64; 3],
    use_simd: bool,
) {
    with_op!(g, |op| step_with(
        ctx, tiles, gt, src, dst, op, use_simd, false
    ));
}

/// Rayon-parallel sparse step: owned tiles are split into disjoint
/// contiguous chunks, each chunk running the serial tile body — bitwise
/// equal to [`step`] because every tile reads only `src` and writes only its
/// own `dst` frame. Call from inside the desired thread pool.
pub fn step_par(
    ctx: &KernelCtx,
    tiles: &SparseTiles,
    gt: &GatherTable,
    src: &SparseField,
    dst: &mut SparseField,
    g: [f64; 3],
    use_simd: bool,
) {
    with_op!(g, |op| step_with(
        ctx, tiles, gt, src, dst, op, use_simd, true
    ));
}

#[allow(clippy::too_many_arguments)]
fn step_with<O: CollideOp>(
    ctx: &KernelCtx,
    tiles: &SparseTiles,
    gt: &GatherTable,
    src: &SparseField,
    dst: &mut SparseField,
    op: O,
    use_simd: bool,
    parallel: bool,
) {
    let q = ctx.lat.q();
    assert_eq!(src.q(), q, "src q mismatch");
    assert_eq!(dst.q(), q, "dst q mismatch");
    assert_eq!(src.tile_count(), tiles.tile_count(), "src tile mismatch");
    assert_eq!(dst.tile_count(), tiles.tile_count(), "dst tile mismatch");
    assert_eq!(gt.q, q, "gather table lattice mismatch");
    let oc = OpConsts::new(ctx, &op);
    let simd = use_simd && sparse_simd_available();
    if ctx.third_order() {
        step_impl::<true, O>(ctx, tiles, gt, src, dst, &oc, simd, parallel);
    } else {
        step_impl::<false, O>(ctx, tiles, gt, src, dst, &oc, simd, parallel);
    }
}

#[allow(clippy::too_many_arguments)]
fn step_impl<const THIRD: bool, O: CollideOp>(
    ctx: &KernelCtx,
    tiles: &SparseTiles,
    gt: &GatherTable,
    src: &SparseField,
    dst: &mut SparseField,
    oc: &OpConsts,
    simd: bool,
    parallel: bool,
) {
    let q = ctx.lat.q();
    let frame = dst.frame_len();
    let n = tiles.owned_tiles;
    let total = dst.as_slice().len();
    let base = SendPtr(dst.as_mut_slice().as_mut_ptr());
    let src_data = src.as_slice();

    let run = move |t_lo: usize, t_hi: usize| {
        let base = base; // capture the whole SendPtr, not its raw-ptr field
        let mut buf = [0.0f64; MAX_Q * TILE_CELLS];
        for t in t_lo..t_hi {
            let nbrs = &tiles.neighbors[t];
            if t + 1 < t_hi {
                // The indirect gather defeats the hardware stride
                // prefetcher (the stream restarts at an arbitrary frame on
                // every tile), so touch the next tile's source frame — the
                // dominant gather source: every interior cell pulls from it
                // — and its neighbour row while this tile computes; the AA
                // and fused kernels' next-row pattern, adapted to tiles.
                prefetch_next_tile(src_data, tiles, t + 1, frame);
            }
            gather_tile(q, gt, nbrs, src_data, &mut buf);
            debug_assert!((t + 1) * frame <= total);
            // SAFETY: owned-tile chunks partition [0, n); each task writes
            // only its own tiles' frames, which are disjoint slices of dst.
            let dstf = unsafe { std::slice::from_raw_parts_mut(base.0.add(t * frame), frame) };
            let fluid = tiles.tiles[t].fluid;
            #[cfg(target_arch = "x86_64")]
            if simd {
                // SAFETY: `simd` implies AVX2 was detected at runtime.
                unsafe { tile_cells_avx2::<THIRD, O>(ctx, oc, fluid, &buf, dstf) };
                continue;
            }
            let _ = simd;
            tile_cells_scalar::<THIRD, O>(ctx, oc, fluid, &buf, dstf);
        }
    };

    if parallel && n > 1 {
        let chunks = (rayon::current_num_threads().max(1) * 4).min(n).max(1);
        (0..chunks).into_par_iter().for_each(|c| {
            let (lo, hi) = chunk_bounds(0, n, chunks, c);
            if lo < hi {
                run(lo, hi);
            }
        });
    } else {
        run(0, n);
    }
}

/// Software-prefetch the gather sources of tile `t_next`: its own source
/// frame (`q·TILE_CELLS` doubles — the self slot every interior cell pulls
/// through) and its neighbour-table row. Boundary cells also pull single
/// lines from adjacent frames; those are left to demand misses — touching
/// up to `TILE_NEIGHBORS` extra frames would evict more than it hides.
#[inline]
fn prefetch_next_tile(src: &[f64], tiles: &SparseTiles, t_next: usize, frame: usize) {
    #[cfg(target_arch = "x86_64")]
    {
        use std::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
        let nbr_ptr = std::ptr::from_ref(&tiles.neighbors[t_next]).cast::<i8>();
        // SAFETY: PREFETCHT0 is a hint and cannot fault; the offsets below
        // are clamped to the slice.
        unsafe { _mm_prefetch::<_MM_HINT_T0>(nbr_ptr) };
        let lo = t_next * frame;
        let hi = (lo + frame).min(src.len());
        let mut p = lo;
        while p < hi {
            // SAFETY: p < src.len() — in-bounds pointer, hint-only.
            unsafe { _mm_prefetch::<_MM_HINT_T0>(src.as_ptr().add(p).cast::<i8>()) };
            p += 8;
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = (src, tiles, t_next, frame);
}

/// Pull-stream one tile through the neighbour table into `buf[i·64 + c]`;
/// an unallocated neighbour (`-1`) contributes vacuum.
#[inline]
fn gather_tile(
    q: usize,
    gt: &GatherTable,
    nbrs: &[i32; TILE_NEIGHBORS],
    src: &[f64],
    buf: &mut [f64],
) {
    for i in 0..q {
        let row = gt.row(i);
        let out = &mut buf[i * TILE_CELLS..(i + 1) * TILE_CELLS];
        for (c, o) in out.iter_mut().enumerate() {
            let (slot, sc) = row[c];
            let t = nbrs[slot as usize];
            *o = if t < 0 {
                0.0
            } else {
                src[(t as usize * q + i) * TILE_CELLS + sc as usize]
            };
        }
    }
}

/// Scalar tile body: per-cell BGK/Guo collide on fluid cells (the exact
/// arithmetic of the dense `op::collide_cells` driver), full-way bounce-back
/// on solid cells.
fn tile_cells_scalar<const THIRD: bool, O: CollideOp>(
    ctx: &KernelCtx,
    oc: &OpConsts,
    fluid: u64,
    buf: &[f64],
    dst: &mut [f64],
) {
    let q = ctx.lat.q();
    let k = &ctx.consts;
    let omega = ctx.omega;
    let hg = oc.half_g;
    let g = oc.g;
    for c in 0..TILE_CELLS {
        if fluid & (1u64 << c) == 0 {
            for i in 0..q {
                dst[i * TILE_CELLS + c] = buf[oc.opp[i] * TILE_CELLS + c];
            }
            continue;
        }
        let mut rho = 0.0f64;
        let mut mx = 0.0f64;
        let mut my = 0.0f64;
        let mut mz = 0.0f64;
        for i in 0..q {
            let cc = oc.cw[i];
            let fv = buf[i * TILE_CELLS + c];
            rho += fv;
            mx += fv * cc[0];
            my += fv * cc[1];
            mz += fv * cc[2];
        }
        let inv = 1.0 / rho;
        let (ux, uy, uz, ug);
        if O::FORCED {
            ux = (mx + hg[0]) * inv;
            uy = (my + hg[1]) * inv;
            uz = (mz + hg[2]) * inv;
            ug = ux * g[0] + uy * g[1] + uz * g[2];
        } else {
            ux = mx * inv;
            uy = my * inv;
            uz = mz * inv;
            ug = 0.0;
        }
        let u2 = ux * ux + uy * uy + uz * uz;
        for i in 0..q {
            let cc = oc.cw[i];
            let w = cc[3];
            let xi = cc[0] * ux + cc[1] * uy + cc[2] * uz;
            let mut poly = 1.0 + xi * k.inv_cs2 + xi * xi * k.inv_2cs4 - u2 * k.inv_2cs2;
            if THIRD {
                poly += xi * (xi * xi - 3.0 * k.cs2 * u2) * k.inv_6cs6;
            }
            let feq = w * rho * poly;
            let fv = buf[i * TILE_CELLS + c];
            let mut next = fv + omega * (feq - fv);
            if O::FORCED {
                next += oc.sa[i] - oc.sb[i] * ug + oc.sc[i] * xi;
            }
            dst[i * TILE_CELLS + c] = next;
        }
    }
}

/// AVX2 tile body: 4-wide z-lines of the tile, **without** FMA contractions
/// — every lane performs the scalar driver's operation sequence, so the
/// result is bitwise equal to [`tile_cells_scalar`]. Mixed fluid/solid lines
/// blend the collide result with the bounce-back line by the fluid bitmap.
///
/// # Safety
/// Caller must ensure AVX2 is available.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn tile_cells_avx2<const THIRD: bool, O: CollideOp>(
    ctx: &KernelCtx,
    oc: &OpConsts,
    fluid: u64,
    buf: &[f64],
    dst: &mut [f64],
) {
    use std::arch::x86_64::*;

    const LANES: usize = 4;
    let q = ctx.lat.q();
    let k = &ctx.consts;
    let hg = oc.half_g;
    let g = oc.g;
    debug_assert!(buf.len() >= q * TILE_CELLS && dst.len() >= q * TILE_CELLS);
    let bp = buf.as_ptr();
    let dp = dst.as_mut_ptr();

    // SAFETY: all offsets are i·64 + line·4 with i < q and line < 16, hence
    // within the q·64 frames checked above.
    unsafe {
        let v_one = _mm256_set1_pd(1.0);
        let v_omega = _mm256_set1_pd(ctx.omega);
        let v_inv_cs2 = _mm256_set1_pd(k.inv_cs2);
        let v_inv_2cs4 = _mm256_set1_pd(k.inv_2cs4);
        let v_inv_2cs2 = _mm256_set1_pd(k.inv_2cs2);
        let v_inv_6cs6 = _mm256_set1_pd(k.inv_6cs6);
        let v_3cs2 = _mm256_set1_pd(3.0 * k.cs2);
        let v_hg0 = _mm256_set1_pd(hg[0]);
        let v_hg1 = _mm256_set1_pd(hg[1]);
        let v_hg2 = _mm256_set1_pd(hg[2]);
        let v_g0 = _mm256_set1_pd(g[0]);
        let v_g1 = _mm256_set1_pd(g[1]);
        let v_g2 = _mm256_set1_pd(g[2]);

        for line in 0..TILE_CELLS / LANES {
            let off = line * LANES;
            let bits = (fluid >> off) & 0xF;
            if bits == 0 {
                for i in 0..q {
                    let b = _mm256_loadu_pd(bp.add(oc.opp[i] * TILE_CELLS + off));
                    _mm256_storeu_pd(dp.add(i * TILE_CELLS + off), b);
                }
                continue;
            }
            // Moments, accumulated in the scalar order (no term skipping,
            // no FMA).
            let mut vrho = _mm256_setzero_pd();
            let mut vmx = _mm256_setzero_pd();
            let mut vmy = _mm256_setzero_pd();
            let mut vmz = _mm256_setzero_pd();
            for i in 0..q {
                let c = oc.cw[i];
                let fv = _mm256_loadu_pd(bp.add(i * TILE_CELLS + off));
                vrho = _mm256_add_pd(vrho, fv);
                vmx = _mm256_add_pd(vmx, _mm256_mul_pd(fv, _mm256_set1_pd(c[0])));
                vmy = _mm256_add_pd(vmy, _mm256_mul_pd(fv, _mm256_set1_pd(c[1])));
                vmz = _mm256_add_pd(vmz, _mm256_mul_pd(fv, _mm256_set1_pd(c[2])));
            }
            let vinv = _mm256_div_pd(v_one, vrho);
            let (vux, vuy, vuz);
            let mut vug = _mm256_setzero_pd();
            if O::FORCED {
                vux = _mm256_mul_pd(_mm256_add_pd(vmx, v_hg0), vinv);
                vuy = _mm256_mul_pd(_mm256_add_pd(vmy, v_hg1), vinv);
                vuz = _mm256_mul_pd(_mm256_add_pd(vmz, v_hg2), vinv);
                vug = _mm256_add_pd(
                    _mm256_add_pd(_mm256_mul_pd(vux, v_g0), _mm256_mul_pd(vuy, v_g1)),
                    _mm256_mul_pd(vuz, v_g2),
                );
            } else {
                vux = _mm256_mul_pd(vmx, vinv);
                vuy = _mm256_mul_pd(vmy, vinv);
                vuz = _mm256_mul_pd(vmz, vinv);
            }
            let vu2 = _mm256_add_pd(
                _mm256_add_pd(_mm256_mul_pd(vux, vux), _mm256_mul_pd(vuy, vuy)),
                _mm256_mul_pd(vuz, vuz),
            );
            let blend_mask = if bits == 0xF {
                _mm256_setzero_pd() // unused
            } else {
                let m = |b: u64| -> f64 {
                    if bits & (1 << b) != 0 {
                        f64::from_bits(1u64 << 63)
                    } else {
                        0.0
                    }
                };
                _mm256_setr_pd(m(0), m(1), m(2), m(3))
            };
            for i in 0..q {
                let c = oc.cw[i];
                let vxi = _mm256_add_pd(
                    _mm256_add_pd(
                        _mm256_mul_pd(_mm256_set1_pd(c[0]), vux),
                        _mm256_mul_pd(_mm256_set1_pd(c[1]), vuy),
                    ),
                    _mm256_mul_pd(_mm256_set1_pd(c[2]), vuz),
                );
                let mut vpoly = _mm256_sub_pd(
                    _mm256_add_pd(
                        _mm256_add_pd(v_one, _mm256_mul_pd(vxi, v_inv_cs2)),
                        _mm256_mul_pd(_mm256_mul_pd(vxi, vxi), v_inv_2cs4),
                    ),
                    _mm256_mul_pd(vu2, v_inv_2cs2),
                );
                if THIRD {
                    let inner = _mm256_sub_pd(_mm256_mul_pd(vxi, vxi), _mm256_mul_pd(v_3cs2, vu2));
                    vpoly =
                        _mm256_add_pd(vpoly, _mm256_mul_pd(_mm256_mul_pd(vxi, inner), v_inv_6cs6));
                }
                let vfeq = _mm256_mul_pd(_mm256_mul_pd(_mm256_set1_pd(c[3]), vrho), vpoly);
                let fv = _mm256_loadu_pd(bp.add(i * TILE_CELLS + off));
                let mut vnext = _mm256_add_pd(fv, _mm256_mul_pd(v_omega, _mm256_sub_pd(vfeq, fv)));
                if O::FORCED {
                    let src = _mm256_add_pd(
                        _mm256_sub_pd(
                            _mm256_set1_pd(oc.sa[i]),
                            _mm256_mul_pd(_mm256_set1_pd(oc.sb[i]), vug),
                        ),
                        _mm256_mul_pd(_mm256_set1_pd(oc.sc[i]), vxi),
                    );
                    vnext = _mm256_add_pd(vnext, src);
                }
                let out = if bits == 0xF {
                    vnext
                } else {
                    let b = _mm256_loadu_pd(bp.add(oc.opp[i] * TILE_CELLS + off));
                    _mm256_blendv_pd(b, vnext, blend_mask)
                };
                _mm256_storeu_pd(dp.add(i * TILE_CELLS + off), out);
            }
        }
    }
}

/// Initialise every stored cell of every packed tile to the equilibrium of
/// `state(gx, gy, gz)` — the same `feq_i` evaluation as the dense
/// [`crate::init::from_macroscopic`] — then zero the *escaping* slots of
/// owned tiles (slot `i` of cell `P` where `P + c_i` falls in an
/// unallocated tile). Nothing ever reads an escaping slot and each step
/// rewrites it to the vacuum pull (zero), so zeroing them at init makes the
/// stored mass exactly conserved from step 0.
pub fn init_equilibrium(
    ctx: &KernelCtx,
    tiles: &SparseTiles,
    gt: &GatherTable,
    f: &mut SparseField,
    gdims: Dim3,
    state: impl Fn(usize, usize, usize) -> (f64, [f64; 3]),
) {
    let q = ctx.lat.q();
    assert_eq!(f.tile_count(), tiles.tile_count());
    for t in 0..tiles.tile_count() {
        let ti = tiles.tiles[t];
        let frame = f.frame_mut(t);
        for lx in 0..TILE_B {
            let gx = tiles.global_cell_x(ti.tx * TILE_B + lx, gdims.nx);
            for ly in 0..TILE_B {
                let gy = ti.ty * TILE_B + ly;
                for lz in 0..TILE_B {
                    let gz = ti.tz * TILE_B + lz;
                    let (rho, u) = state(gx, gy, gz);
                    let c = tile_cell(lx, ly, lz);
                    for i in 0..q {
                        frame[i * TILE_CELLS + c] = feq_i(&ctx.lat, ctx.order, i, rho, u);
                    }
                }
            }
        }
    }
    zero_escaping_slots(ctx, tiles, gt, f);
}

/// Zero the escaping slots of the owned tiles (see [`init_equilibrium`]).
/// Ghost tiles are skipped: their frames are overwritten by the halo
/// exchange before every step.
pub fn zero_escaping_slots(
    ctx: &KernelCtx,
    tiles: &SparseTiles,
    gt: &GatherTable,
    f: &mut SparseField,
) {
    let q = ctx.lat.q();
    // Slot i of cell c escapes iff the *forward* target tile is
    // unallocated; the forward offset of i is the pull offset of opp(i),
    // so reuse the gather table rows of the opposites.
    let opp: Vec<usize> = (0..q).map(|i| ctx.lat.opposite(i)).collect();
    for t in 0..tiles.owned_tiles {
        let nbrs = tiles.neighbors[t];
        let frame = f.frame_mut(t);
        for (i, &oi) in opp.iter().enumerate() {
            let row = gt.row(oi);
            for (c, &(slot, _)) in row.iter().enumerate() {
                if nbrs[slot as usize] < 0 {
                    frame[i * TILE_CELLS + c] = 0.0;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collision::Bgk;
    use crate::equilibrium::EqOrder;
    use crate::geometry::Geometry;
    use crate::index::wrap;
    use crate::lattice::LatticeKind;

    fn ctx_for(kind: LatticeKind) -> KernelCtx {
        let order = if kind == LatticeKind::D3Q39 {
            EqOrder::Third
        } else {
            EqOrder::Second
        };
        KernelCtx::new(kind, order, Bgk::new(0.8).unwrap())
    }

    fn smooth_state(d: Dim3) -> impl Fn(usize, usize, usize) -> (f64, [f64; 3]) {
        move |x, y, z| {
            let tau = std::f64::consts::TAU;
            let fx = x as f64 / d.nx as f64 * tau;
            let fy = y as f64 / d.ny as f64 * tau;
            let fz = z as f64 / d.nz as f64 * tau;
            (
                1.0 + 0.05 * fx.sin() * fy.cos(),
                [0.02 * fy.sin(), -0.01 * fz.cos(), 0.015 * fx.sin()],
            )
        }
    }

    /// Textbook dense periodic reference on the full box: pull-stream with
    /// vacuum outside the allocated tile set, bounce solids, collide fluid
    /// with the identical scalar arithmetic. Ground truth for the packed
    /// indirect-addressing machinery.
    struct DenseRef {
        d: Dim3,
        q: usize,
        stored: Vec<bool>,
        fluid: Vec<bool>,
        f: Vec<f64>, // [cell * q + i]
    }

    impl DenseRef {
        fn new(ctx: &KernelCtx, geom: &Geometry, tiles: &SparseTiles) -> Self {
            let d = geom.dims();
            let q = ctx.lat.q();
            let mut stored = vec![false; d.nx * d.ny * d.nz];
            let mut fluid = vec![false; d.nx * d.ny * d.nz];
            for x in 0..d.nx {
                for y in 0..d.ny {
                    for z in 0..d.nz {
                        let t = tiles.tile_of[tiles.tdims.idx(x / TILE_B, y / TILE_B, z / TILE_B)];
                        stored[d.idx(x, y, z)] = t >= 0;
                        fluid[d.idx(x, y, z)] = geom.is_fluid(x, y, z);
                    }
                }
            }
            Self {
                d,
                q,
                stored,
                fluid,
                f: vec![0.0; d.nx * d.ny * d.nz * q],
            }
        }

        fn init(
            &mut self,
            ctx: &KernelCtx,
            state: &impl Fn(usize, usize, usize) -> (f64, [f64; 3]),
        ) {
            let (d, q) = (self.d, self.q);
            for x in 0..d.nx {
                for y in 0..d.ny {
                    for z in 0..d.nz {
                        let cell = d.idx(x, y, z);
                        if !self.stored[cell] {
                            continue;
                        }
                        let (rho, u) = state(x, y, z);
                        for i in 0..q {
                            self.f[cell * q + i] = feq_i(&ctx.lat, ctx.order, i, rho, u);
                        }
                    }
                }
            }
            // Zero escaping slots like the sparse init.
            let next = self.escape_zeroed(ctx);
            self.f = next;
        }

        fn escape_zeroed(&self, ctx: &KernelCtx) -> Vec<f64> {
            let (d, q) = (self.d, self.q);
            let mut out = self.f.clone();
            for x in 0..d.nx {
                for y in 0..d.ny {
                    for z in 0..d.nz {
                        let cell = d.idx(x, y, z);
                        if !self.stored[cell] {
                            continue;
                        }
                        for (i, c) in ctx.lat.velocities().iter().enumerate() {
                            let tx = wrap(x, c[0], d.nx);
                            let ty = wrap(y, c[1], d.ny);
                            let tz = wrap(z, c[2], d.nz);
                            if !self.stored[d.idx(tx, ty, tz)] {
                                out[cell * q + i] = 0.0;
                            }
                        }
                    }
                }
            }
            out
        }

        fn step(&mut self, ctx: &KernelCtx, g: [f64; 3]) {
            let (d, q) = (self.d, self.q);
            let k = &ctx.consts;
            let omega = ctx.omega;
            let third = ctx.third_order();
            let oc = with_op!(g, |op| OpConsts::new(ctx, &op));
            let forced = g != [0.0; 3];
            let src = self.f.clone();
            let mut streamed = vec![0.0f64; MAX_Q];
            for x in 0..d.nx {
                for y in 0..d.ny {
                    for z in 0..d.nz {
                        let cell = d.idx(x, y, z);
                        if !self.stored[cell] {
                            continue;
                        }
                        for (i, c) in ctx.lat.velocities().iter().enumerate() {
                            let sx = wrap(x, -c[0], d.nx);
                            let sy = wrap(y, -c[1], d.ny);
                            let sz = wrap(z, -c[2], d.nz);
                            let s = d.idx(sx, sy, sz);
                            streamed[i] = if self.stored[s] { src[s * q + i] } else { 0.0 };
                        }
                        if !self.fluid[cell] {
                            for i in 0..q {
                                self.f[cell * q + i] = streamed[oc.opp[i]];
                            }
                            continue;
                        }
                        let mut rho = 0.0;
                        let (mut mx, mut my, mut mz) = (0.0, 0.0, 0.0);
                        for i in 0..q {
                            let cc = oc.cw[i];
                            let fv = streamed[i];
                            rho += fv;
                            mx += fv * cc[0];
                            my += fv * cc[1];
                            mz += fv * cc[2];
                        }
                        let inv = 1.0 / rho;
                        let (ux, uy, uz, ug);
                        if forced {
                            ux = (mx + oc.half_g[0]) * inv;
                            uy = (my + oc.half_g[1]) * inv;
                            uz = (mz + oc.half_g[2]) * inv;
                            ug = ux * oc.g[0] + uy * oc.g[1] + uz * oc.g[2];
                        } else {
                            ux = mx * inv;
                            uy = my * inv;
                            uz = mz * inv;
                            ug = 0.0;
                        }
                        let u2 = ux * ux + uy * uy + uz * uz;
                        for i in 0..q {
                            let cc = oc.cw[i];
                            let xi = cc[0] * ux + cc[1] * uy + cc[2] * uz;
                            let mut poly =
                                1.0 + xi * k.inv_cs2 + xi * xi * k.inv_2cs4 - u2 * k.inv_2cs2;
                            if third {
                                poly += xi * (xi * xi - 3.0 * k.cs2 * u2) * k.inv_6cs6;
                            }
                            let feq = cc[3] * rho * poly;
                            let fv = streamed[i];
                            let mut next = fv + omega * (feq - fv);
                            if forced {
                                next += oc.sa[i] - oc.sb[i] * ug + oc.sc[i] * xi;
                            }
                            self.f[cell * q + i] = next;
                        }
                    }
                }
            }
        }
    }

    fn sparse_setup(
        ctx: &KernelCtx,
        geom: &Geometry,
    ) -> (SparseTiles, GatherTable, SparseField, SparseField) {
        let tiles = SparseTiles::build_serial(geom).unwrap();
        let gt = GatherTable::new(&ctx.lat);
        let q = ctx.lat.q();
        let mut f = SparseField::new(q, tiles.tile_count()).unwrap();
        let dst = SparseField::new(q, tiles.tile_count()).unwrap();
        init_equilibrium(
            ctx,
            &tiles,
            &gt,
            &mut f,
            geom.dims(),
            smooth_state(geom.dims()),
        );
        (tiles, gt, f, dst)
    }

    fn assert_matches_dense(kind: LatticeKind, geom: &Geometry, g: [f64; 3], steps: usize) {
        let ctx = ctx_for(kind);
        let (tiles, gt, mut f, mut tmp) = sparse_setup(&ctx, geom);
        let mut dref = DenseRef::new(&ctx, geom, &tiles);
        let state = smooth_state(geom.dims());
        dref.init(&ctx, &state);
        for _ in 0..steps {
            step(&ctx, &tiles, &gt, &f, &mut tmp, g, false);
            std::mem::swap(&mut f, &mut tmp);
            dref.step(&ctx, g);
        }
        let q = ctx.lat.q();
        let d = geom.dims();
        let mut cell = vec![0.0f64; q];
        let mut checked = 0usize;
        for (t, ti) in tiles.tiles.iter().enumerate() {
            for lx in 0..TILE_B {
                for ly in 0..TILE_B {
                    for lz in 0..TILE_B {
                        let (x, y, z) = (
                            ti.tx * TILE_B + lx,
                            ti.ty * TILE_B + ly,
                            ti.tz * TILE_B + lz,
                        );
                        f.gather_cell(t, tile_cell(lx, ly, lz), &mut cell);
                        for i in 0..q {
                            let want = dref.f[d.idx(x, y, z) * q + i];
                            assert!(
                                cell[i].to_bits() == want.to_bits(),
                                "{kind:?} cell ({x},{y},{z}) i={i}: sparse {} dense {}",
                                cell[i],
                                want
                            );
                        }
                        checked += 1;
                    }
                }
            }
        }
        assert!(checked > 0);
    }

    #[test]
    fn sparse_matches_dense_reference_pipe() {
        let geom = Geometry::pipe(
            Dim3 {
                nx: 8,
                ny: 16,
                nz: 16,
            },
            5.0,
        )
        .unwrap();
        assert_matches_dense(LatticeKind::D3Q19, &geom, [0.0; 3], 3);
        assert_matches_dense(LatticeKind::D3Q19, &geom, [1e-5, 0.0, 0.0], 3);
        assert_matches_dense(LatticeKind::D3Q39, &geom, [0.0; 3], 2);
        assert_matches_dense(LatticeKind::D3Q39, &geom, [1e-5, 2e-6, 0.0], 2);
    }

    #[test]
    fn sparse_matches_dense_reference_porous_and_bifurcation() {
        let d = Dim3 {
            nx: 16,
            ny: 16,
            nz: 16,
        };
        let geom = Geometry::porous(d, 2.5, 0.15, 11).unwrap();
        assert_matches_dense(LatticeKind::D3Q27, &geom, [0.0, 1e-5, 0.0], 2);
        let geom = Geometry::bifurcation(
            Dim3 {
                nx: 24,
                ny: 24,
                nz: 16,
            },
            6.0,
            3.5,
        )
        .unwrap();
        assert_matches_dense(LatticeKind::D3Q15, &geom, [1e-5, 0.0, 0.0], 2);
    }

    #[test]
    fn simd_and_par_are_bitwise_equal_to_scalar() {
        for kind in [LatticeKind::D3Q19, LatticeKind::D3Q39] {
            let ctx = ctx_for(kind);
            let geom = Geometry::pipe(
                Dim3 {
                    nx: 8,
                    ny: 16,
                    nz: 16,
                },
                6.0,
            )
            .unwrap();
            let g = [1e-5, 0.0, 3e-6];
            let (tiles, gt, f, _) = sparse_setup(&ctx, &geom);
            let n = tiles.tile_count();
            let q = ctx.lat.q();
            let mut scalar = SparseField::new(q, n).unwrap();
            let mut simd = SparseField::new(q, n).unwrap();
            let mut par = SparseField::new(q, n).unwrap();
            step(&ctx, &tiles, &gt, &f, &mut scalar, g, false);
            step(&ctx, &tiles, &gt, &f, &mut simd, g, true);
            step_par(&ctx, &tiles, &gt, &f, &mut par, g, false);
            for t in 0..tiles.owned_tiles {
                assert_eq!(
                    scalar.frame(t),
                    par.frame(t),
                    "{kind:?} par tile {t} differs"
                );
                if sparse_simd_available() {
                    for (a, b) in scalar.frame(t).iter().zip(simd.frame(t)) {
                        assert!(
                            a.to_bits() == b.to_bits(),
                            "{kind:?} simd differs: {a} vs {b}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn stored_mass_is_conserved_exactly_in_structure() {
        // With escaping slots zeroed at init, no stored slot ever streams
        // to nowhere: total stored mass moves only through collide roundoff.
        let ctx = ctx_for(LatticeKind::D3Q19);
        let geom = Geometry::porous(
            Dim3 {
                nx: 16,
                ny: 16,
                nz: 16,
            },
            2.0,
            0.1,
            5,
        )
        .unwrap();
        let (tiles, gt, mut f, mut tmp) = sparse_setup(&ctx, &geom);
        let mass = |f: &SparseField| -> f64 {
            (0..tiles.owned_tiles)
                .map(|t| f.frame(t).iter().sum::<f64>())
                .sum()
        };
        let m0 = mass(&f);
        for _ in 0..20 {
            step(&ctx, &tiles, &gt, &f, &mut tmp, [1e-5, 0.0, 0.0], false);
            std::mem::swap(&mut f, &mut tmp);
        }
        let m1 = mass(&f);
        assert!(
            ((m1 - m0) / m0).abs() < 1e-12,
            "stored mass drifted: {m0} -> {m1}"
        );
    }

    #[test]
    fn single_fluid_cell_tile_stays_finite_and_conservative() {
        let ctx = ctx_for(LatticeKind::D3Q19);
        let geom = Geometry::from_fn(
            Dim3 {
                nx: 8,
                ny: 8,
                nz: 8,
            },
            |x, y, z| (x, y, z) == (4, 4, 4),
        )
        .unwrap();
        let (tiles, gt, mut f, mut tmp) = sparse_setup(&ctx, &geom);
        assert_eq!(tiles.owned_fluid_cells, 1);
        let mass = |f: &SparseField| -> f64 {
            (0..tiles.owned_tiles)
                .map(|t| f.frame(t).iter().sum::<f64>())
                .sum()
        };
        let m0 = mass(&f);
        for _ in 0..10 {
            step(&ctx, &tiles, &gt, &f, &mut tmp, [0.0; 3], false);
            std::mem::swap(&mut f, &mut tmp);
        }
        assert!(f.as_slice().iter().all(|v| v.is_finite()));
        // The cell trades populations with its bounce-back rim, but the
        // total stored mass is exact.
        assert!(((mass(&f) - m0) / m0).abs() < 1e-12);
        // And the fluid cell itself stays near unit density.
        let mut cell = vec![0.0f64; ctx.lat.q()];
        let t = tiles.tile_of[tiles.tdims.idx(1, 1, 1)] as usize;
        f.gather_cell(t, tile_cell(0, 0, 0), &mut cell);
        let rho: f64 = cell.iter().sum();
        assert!((rho - 1.0).abs() < 0.05, "rho {rho}");
    }

    #[test]
    fn gather_table_inverts_velocities() {
        let lat = Lattice::new(LatticeKind::D3Q39);
        let gt = GatherTable::new(&lat);
        // Pulling along i then pushing along i must return to the cell.
        for (i, c) in lat.velocities().iter().enumerate() {
            for lx in 0..TILE_B {
                for ly in 0..TILE_B {
                    for lz in 0..TILE_B {
                        let (slot, sc) = gt.row(i)[tile_cell(lx, ly, lz)];
                        let sc = sc as usize;
                        let (sx, sy, sz) = (sc / 16, (sc / 4) % 4, sc % 4);
                        // Reconstruct the absolute source coordinate from
                        // the slot's tile offset; it must equal dst - c.
                        let s = slot as isize;
                        let (dx, dy, dz) = (s / 9 - 1, (s / 3) % 3 - 1, s % 3 - 1);
                        assert_eq!(
                            dx * TILE_B as isize + sx as isize,
                            lx as isize - c[0] as isize
                        );
                        assert_eq!(
                            dy * TILE_B as isize + sy as isize,
                            ly as isize - c[1] as isize
                        );
                        assert_eq!(
                            dz * TILE_B as isize + sz as isize,
                            lz as isize - c[2] as isize
                        );
                    }
                }
            }
        }
    }
}
