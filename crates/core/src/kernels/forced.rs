//! Scenario collide: BGK with optional Guo forcing, restricted to fluid
//! cells (y-wall rows and masked cells skipped).
//!
//! This is the scalar-class collide half used by the `Orig`…`LoBr` rungs
//! whenever a run has boundary conditions or a body force — the
//! walled/driven flows that motivate the paper (§I). Since the
//! [`CollideOp`](crate::kernels::op::CollideOp) refactor these entry points
//! are thin instantiations of the shared boundary-aware drivers in
//! [`crate::kernels::op`] and [`crate::kernels::par`]: the per-cell rule is
//! [`GuoForced`] (half-force velocity shift `u = (Σ f c + G/2)/ρ`, BGK
//! relaxation toward `f^eq(ρ, u)`, source `S_i` post-relaxation) or, for
//! `G = 0`, the monomorphized [`PlainBgk`] rule — the identical code path
//! the periodic CF/LoBr collide compiles to.
//!
//! The serial and rayon drivers run the identical per-cell arithmetic in the
//! identical order over disjoint x-plane chunks, so threaded scenario runs
//! are bit-identical to serial runs — the same guarantee the periodic ladder
//! kernels give. The SIMD- and Fused-class scenario variants live in
//! [`crate::kernels::simd`] and [`crate::kernels::fused_simd`].

use crate::boundary::BoundarySpec;
use crate::field::DistField;
use crate::kernels::op;
use crate::kernels::KernelCtx;

/// Serial scenario collide over planes `x ∈ [x_lo, x_hi)`: BGK + Guo forcing
/// `g` on every fluid cell of `bounds`, leaving wall rows and masked cells
/// untouched (their post-stream state was already transformed by
/// [`BoundarySpec::apply`]).
pub fn collide_forced(
    ctx: &KernelCtx,
    f: &mut DistField,
    x_lo: usize,
    x_hi: usize,
    g: [f64; 3],
    bounds: &BoundarySpec,
) {
    op::with_op!(g, |rule| op::collide_cells(
        ctx, f, x_lo, x_hi, rule, bounds
    ));
}

/// Rayon-parallel scenario collide: disjoint x-plane chunks each running the
/// identical kernel as [`collide_forced`] (bit-identical to serial).
pub fn collide_forced_par(
    ctx: &KernelCtx,
    f: &mut DistField,
    x_lo: usize,
    x_hi: usize,
    g: [f64; 3],
    bounds: &BoundarySpec,
) {
    op::with_op!(g, |rule| super::par::collide_cells_par(
        ctx, f, x_lo, x_hi, rule, bounds, false
    ));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::boundary::{ChannelWalls, SectionMask};
    use crate::collision::Bgk;
    use crate::equilibrium::EqOrder;
    use crate::index::Dim3;
    use crate::lattice::LatticeKind;

    fn ctx(kind: LatticeKind) -> KernelCtx {
        let order = if kind == LatticeKind::D3Q39 {
            EqOrder::Third
        } else {
            EqOrder::Second
        };
        KernelCtx::new(kind, order, Bgk::new(0.9).unwrap())
    }

    fn random_field(q: usize, dims: Dim3, seed: u64) -> DistField {
        let mut f = DistField::new(q, dims, 0).unwrap();
        let mut state = seed | 1;
        for v in f.as_mut_slice() {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            *v = 0.02 + (state % 613) as f64 / 900.0;
        }
        f
    }

    #[test]
    fn unforced_periodic_matches_plain_collide() {
        // g = 0 and no boundaries: must agree with the naive BGK collide to
        // reassociation tolerance (different accumulation form).
        for kind in [LatticeKind::D3Q19, LatticeKind::D3Q39] {
            let c = ctx(kind);
            let dims = Dim3::new(5, 4, 6);
            let mut a = random_field(c.lat.q(), dims, 7);
            let mut b = a.clone();
            crate::kernels::naive::collide(&c, &mut a, 0, dims.nx);
            collide_forced(&c, &mut b, 0, dims.nx, [0.0; 3], &BoundarySpec::periodic());
            assert!(a.max_abs_diff_owned(&b) < 1e-14, "{kind:?}");
        }
    }

    #[test]
    fn forcing_injects_momentum_and_conserves_mass() {
        let c = ctx(LatticeKind::D3Q19);
        let dims = Dim3::new(4, 6, 5);
        let g = [3e-5, 0.0, 0.0];
        let mut f = random_field(c.lat.q(), dims, 11);
        let mass0: f64 = f.as_slice().iter().sum();
        let mom0: f64 = (0..c.lat.q())
            .map(|i| f.slab(i).iter().sum::<f64>() * c.consts.c[i][0])
            .sum();
        collide_forced(&c, &mut f, 0, dims.nx, g, &BoundarySpec::periodic());
        let mass1: f64 = f.as_slice().iter().sum();
        let mom1: f64 = (0..c.lat.q())
            .map(|i| f.slab(i).iter().sum::<f64>() * c.consts.c[i][0])
            .sum();
        assert!((mass0 - mass1).abs() < 1e-10 * mass0, "{mass0} vs {mass1}");
        // The Guo scheme injects exactly g per cell and step: the relaxation
        // toward the half-force-shifted equilibrium contributes ω·g/2 and
        // the source term the remaining (1 − ω/2)·g.
        let cells = (dims.nx * dims.ny * dims.nz) as f64;
        let want = mom0 + cells * g[0];
        assert!((mom1 - want).abs() < 1e-10, "{mom1} vs {want}");
    }

    #[test]
    fn wall_rows_and_masked_cells_are_skipped() {
        let c = ctx(LatticeKind::D3Q19);
        let dims = Dim3::new(3, 6, 4);
        let bounds = BoundarySpec::periodic()
            .with_walls(ChannelWalls::no_slip(1))
            .with_mask(SectionMask::from_fn(6, 4, |_y, z| z == 3));
        let mut f = random_field(c.lat.q(), dims, 23);
        let before = f.clone();
        collide_forced(&c, &mut f, 0, dims.nx, [1e-4, 0.0, 0.0], &bounds);
        let d = f.alloc_dims();
        for i in 0..c.lat.q() {
            for x in 0..dims.nx {
                for z in 0..dims.nz {
                    // Wall rows untouched.
                    for y in [0usize, 5] {
                        let lin = d.idx(x, y, z);
                        assert_eq!(f.slab(i)[lin], before.slab(i)[lin], "wall row");
                    }
                    // Fluid rows changed except the masked column.
                    let lin = d.idx(x, 2, z);
                    if z == 3 {
                        assert_eq!(f.slab(i)[lin], before.slab(i)[lin], "masked");
                    }
                }
            }
        }
        assert!(f.max_abs_diff_owned(&before) > 0.0, "fluid must collide");
    }

    #[test]
    fn parallel_is_bitwise_identical_to_serial() {
        for kind in [LatticeKind::D3Q19, LatticeKind::D3Q39] {
            let c = ctx(kind);
            let dims = Dim3::new(11, 8, 7);
            let bounds = BoundarySpec::periodic().with_walls(ChannelWalls::no_slip(3));
            let g = [2e-5, 0.0, 1e-5];
            let mut a = random_field(c.lat.q(), dims, 41);
            let mut b = a.clone();
            collide_forced(&c, &mut a, 0, dims.nx, g, &bounds);
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(5)
                .build()
                .unwrap();
            pool.install(|| collide_forced_par(&c, &mut b, 0, dims.nx, g, &bounds));
            assert_eq!(a.max_abs_diff_owned(&b), 0.0, "{kind:?}");
        }
    }

    #[test]
    fn respects_x_range_and_empty_range() {
        let c = ctx(LatticeKind::D3Q19);
        let dims = Dim3::new(6, 4, 4);
        let mut f = random_field(c.lat.q(), dims, 3);
        let before = f.clone();
        collide_forced(&c, &mut f, 2, 2, [0.0; 3], &BoundarySpec::periodic());
        assert_eq!(f.max_abs_diff_owned(&before), 0.0);
        collide_forced(&c, &mut f, 2, 4, [0.0; 3], &BoundarySpec::periodic());
        let d = f.alloc_dims();
        for i in 0..c.lat.q() {
            for x in (0..2).chain(4..6) {
                let b = d.idx(x, 0, 0);
                assert_eq!(
                    &f.slab(i)[b..b + d.plane()],
                    &before.slab(i)[b..b + d.plane()]
                );
            }
        }
    }
}
