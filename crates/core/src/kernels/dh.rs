//! `DH` — data-handling kernels (paper §V-B).
//!
//! The paper's biggest single-node win (30% on BG/P, 75% on BG/Q):
//!
//! * **stream**: loops reordered so each velocity slab is swept contiguously
//!   (“all velocities are iterated over followed by the z-, y- and
//!   x-coordinates in memory order”). Here that becomes one rotate-copy of
//!   each z-line: at most two `copy_from_slice` calls per (velocity, x, y)
//!   row — pure streaming stores that saturate load/store units;
//! * **collide**: z-line blocks processed in two passes over the velocity
//!   slabs (moment accumulation, then relax), with macroscopic division
//!   replaced by one reciprocal per cell and all equilibrium constants
//!   hoisted ([`crate::equilibrium::EqConsts`]).

use crate::field::DistField;
use crate::kernels::{KernelCtx, StreamTables};

/// z-block length for the line-blocked collide (fits L1 comfortably:
/// 8 stack lines × 64 × 8 B = 4 KiB).
pub(crate) const ZB: usize = 64;

/// Stream one velocity's slab over `x ∈ [x_lo, x_hi)` using rotate-copies.
///
/// Factored out so the rayon driver ([`crate::kernels::par`]) can run one
/// velocity per task — each task owns its destination slab exclusively.
pub fn stream_velocity(
    ctx: &KernelCtx,
    tables: &StreamTables,
    src_slab: &[f64],
    dst_slab: &mut [f64],
    dims: crate::index::Dim3,
    i: usize,
    x_lo: usize,
    x_hi: usize,
) {
    let c = ctx.lat.velocities()[i];
    let (cx, cy, cz) = (c[0], c[1], c[2]);
    let nz = dims.nz;
    let ty = tables.y_for(cy);
    for x in x_lo..x_hi {
        let xs = (x as isize - cx as isize) as usize;
        for y in 0..dims.ny {
            let ys = ty.src(y);
            let db = dims.idx(x, y, 0);
            let sb = dims.idx(xs, ys, 0);
            let dline = &mut dst_slab[db..db + nz];
            let sline = &src_slab[sb..sb + nz];
            if cz == 0 {
                dline.copy_from_slice(sline);
            } else if cz > 0 {
                let m = cz as usize;
                dline[m..].copy_from_slice(&sline[..nz - m]);
                dline[..m].copy_from_slice(&sline[nz - m..]);
            } else {
                let m = (-cz) as usize;
                dline[..nz - m].copy_from_slice(&sline[m..]);
                dline[nz - m..].copy_from_slice(&sline[..m]);
            }
        }
    }
}

/// Slab-ordered pull-stream over planes `x ∈ [x_lo, x_hi)` (halo contract as
/// in [`crate::kernels::ghost`]).
pub fn stream(
    ctx: &KernelCtx,
    tables: &StreamTables,
    src: &DistField,
    dst: &mut DistField,
    x_lo: usize,
    x_hi: usize,
) {
    let dims = src.alloc_dims();
    debug_assert!(x_lo >= ctx.lat.reach());
    debug_assert!(x_hi + ctx.lat.reach() <= dims.nx);
    for i in 0..ctx.lat.q() {
        // Split borrows: each velocity reads slab i of src, writes slab i of dst.
        let src_slab = src.slab(i);
        let dst_slab = dst.slab_mut(i);
        stream_velocity(ctx, tables, src_slab, dst_slab, dims, i, x_lo, x_hi);
    }
}

/// Line-blocked two-pass BGK collide over planes `x ∈ [x_lo, x_hi)`.
pub fn collide(ctx: &KernelCtx, f: &mut DistField, x_lo: usize, x_hi: usize) {
    if ctx.third_order() {
        collide_impl::<true>(ctx, f, x_lo, x_hi);
    } else {
        collide_impl::<false>(ctx, f, x_lo, x_hi);
    }
}

fn collide_impl<const THIRD: bool>(ctx: &KernelCtx, f: &mut DistField, x_lo: usize, x_hi: usize) {
    let d = f.alloc_dims();
    let q = ctx.lat.q();
    let k = &ctx.consts;
    let omega = ctx.omega;
    let slab_len = f.slab_stride();
    let data = f.as_mut_slice();

    let mut rho = [0.0f64; ZB];
    let mut mx = [0.0f64; ZB];
    let mut my = [0.0f64; ZB];
    let mut mz = [0.0f64; ZB];
    let mut ux = [0.0f64; ZB];
    let mut uy = [0.0f64; ZB];
    let mut uz = [0.0f64; ZB];
    let mut u2 = [0.0f64; ZB];

    for x in x_lo..x_hi {
        for y in 0..d.ny {
            let base = d.idx(x, y, 0);
            let mut z0 = 0;
            while z0 < d.nz {
                let blk = (d.nz - z0).min(ZB);
                rho[..blk].fill(0.0);
                mx[..blk].fill(0.0);
                my[..blk].fill(0.0);
                mz[..blk].fill(0.0);
                // Pass 1: accumulate moments, one contiguous slab segment at
                // a time.
                for i in 0..q {
                    let c = k.c[i];
                    let off = i * slab_len + base + z0;
                    let s = &data[off..off + blk];
                    for (j, &fv) in s.iter().enumerate() {
                        rho[j] += fv;
                        mx[j] += fv * c[0];
                        my[j] += fv * c[1];
                        mz[j] += fv * c[2];
                    }
                }
                // One reciprocal per cell (the paper's division removal).
                for j in 0..blk {
                    let inv = 1.0 / rho[j];
                    ux[j] = mx[j] * inv;
                    uy[j] = my[j] * inv;
                    uz[j] = mz[j] * inv;
                    u2[j] = ux[j] * ux[j] + uy[j] * uy[j] + uz[j] * uz[j];
                }
                // Pass 2: equilibrium + relax per slab segment.
                for i in 0..q {
                    let c = k.c[i];
                    let w = k.w[i];
                    let off = i * slab_len + base + z0;
                    let s = &mut data[off..off + blk];
                    for (j, fv) in s.iter_mut().enumerate() {
                        let xi = c[0] * ux[j] + c[1] * uy[j] + c[2] * uz[j];
                        let mut poly =
                            1.0 + xi * k.inv_cs2 + xi * xi * k.inv_2cs4 - u2[j] * k.inv_2cs2;
                        if THIRD {
                            poly += xi * (xi * xi - 3.0 * k.cs2 * u2[j]) * k.inv_6cs6;
                        }
                        let feq = w * rho[j] * poly;
                        *fv += omega * (feq - *fv);
                    }
                }
                z0 += blk;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collision::Bgk;
    use crate::equilibrium::EqOrder;
    use crate::index::Dim3;
    use crate::kernels::{ghost, naive};
    use crate::lattice::LatticeKind;

    fn ctx(kind: LatticeKind) -> KernelCtx {
        let order = if kind == LatticeKind::D3Q39 {
            EqOrder::Third
        } else {
            EqOrder::Second
        };
        KernelCtx::new(kind, order, Bgk::new(1.1).unwrap())
    }

    fn random_field(q: usize, dims: Dim3, halo: usize, seed: u64) -> DistField {
        let mut f = DistField::new(q, dims, halo).unwrap();
        let mut state = seed | 1;
        for v in f.as_mut_slice() {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            *v = 0.05 + (state % 997) as f64 / 1500.0;
        }
        f
    }

    #[test]
    fn dh_stream_matches_ghost_stream() {
        for kind in [LatticeKind::D3Q19, LatticeKind::D3Q39] {
            let c = ctx(kind);
            let k = c.lat.reach();
            let dims = Dim3::new(6, 5, 9);
            let src = random_field(c.lat.q(), dims, k, 99);
            let tables = StreamTables::new(dims.ny, dims.nz);
            let mut a = DistField::new(c.lat.q(), dims, k).unwrap();
            let mut b = DistField::new(c.lat.q(), dims, k).unwrap();
            ghost::stream(&c, &tables, &src, &mut a, k, k + dims.nx);
            stream(&c, &tables, &src, &mut b, k, k + dims.nx);
            assert_eq!(a.max_abs_diff_owned(&b), 0.0, "{kind:?}");
        }
    }

    #[test]
    fn dh_collide_matches_naive_within_reassociation() {
        for kind in [LatticeKind::D3Q19, LatticeKind::D3Q39] {
            let c = ctx(kind);
            let dims = Dim3::new(4, 3, 70); // exercise a partial z-block too
            let mut a = random_field(c.lat.q(), dims, 0, 5);
            let mut b = a.clone();
            naive::collide(&c, &mut a, 0, dims.nx);
            collide(&c, &mut b, 0, dims.nx);
            let diff = a.max_abs_diff_owned(&b);
            assert!(diff < 1e-13, "{kind:?}: {diff}");
        }
    }

    #[test]
    fn dh_collide_is_deterministic_across_range_splits() {
        // Collide [0,nx) must equal collide [0,2) then [2,nx) bitwise —
        // the property the deep-halo region schedule relies on.
        let c = ctx(LatticeKind::D3Q39);
        let dims = Dim3::new(5, 4, 6);
        let mut a = random_field(c.lat.q(), dims, 0, 11);
        let mut b = a.clone();
        collide(&c, &mut a, 0, dims.nx);
        collide(&c, &mut b, 0, 2);
        collide(&c, &mut b, 2, dims.nx);
        assert_eq!(a.max_abs_diff_owned(&b), 0.0);
    }
}
