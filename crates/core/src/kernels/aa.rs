//! AA-pattern in-place streaming — single-population storage
//! ([`crate::field::StorageMode::InPlaceAa`]).
//!
//! The two-grid ladder moves every population through a `distr`/`distr_adv`
//! double buffer; the AA pattern (Bailey et al.) keeps **one** resident
//! array `A` and alternates two access patterns, each of which touches, per
//! cell, a read set *equal to* its write set — which is what makes the
//! update safe in place and embarrassingly parallel at any granularity:
//!
//! * **even step** (first of each pair) — purely local: read the Q
//!   populations of cell `x` from their natural slots, apply the cell rule
//!   (collide, or the wall transform on solid rows), and write result `t_i`
//!   into the *opposite* slot `A[x][opp(i)]`. No neighbour access at all.
//! * **odd step** (second of the pair) — gather-swapped reads
//!   `a_i = A[x−c_i][opp(i)]`, apply the same cell rule, scatter-swapped
//!   writes `A[x+c_i][i] = t_i`. For each direction `i` the location read
//!   as `a_{opp(i)}` **is** the location written as `t_i` — so each cell
//!   touches exactly its own Q slots (`(x+c_j, j)` for all `j`, a bijection
//!   between cells and slots), reads them all before writing any, and no
//!   two cells ever share a slot. In-place, conflict-free, and bitwise
//!   deterministic under threading.
//!
//! ## Representation and two-grid correspondence
//!
//! At even time steps `A[x][i]` holds the *pre-collision arrivals*
//! `f_i(t, x)` — the pull-stream of the two-grid state: `A = S(F)` with
//! `F` the two-grid (post-collision) field and `S` the pull-stream
//! permutation. One even step later the state is the two-grid field with
//! slots reversed (`A[x][j] = F[x][opp(j)]`, no spatial shift). Because the
//! per-cell arithmetic below is shared with the two-grid kernels
//! ([`crate::kernels::op`]'s rules and constants), the scalar AA trajectory
//! is the *bitwise* streamed image of the scalar two-grid trajectory; the
//! AVX2+FMA drivers agree within FMA re-rounding, exactly like the
//! `Simd`/`Fused` rungs.
//!
//! ## Boundaries come for free
//!
//! Full-way bounce-back writes `t_i = a_{opp(i)}` — in both AA phases that
//! is a **no-op** (the value is already in the slot about to be written),
//! so bounce-back wall rows and masked solid cells are simply *skipped*.
//! Moving walls add the per-velocity momentum correction in place; diffuse
//! walls re-emit the gathered mass as wall equilibrium, identical
//! arithmetic to [`crate::boundary::BoundarySpec::apply`].
//!
//! ## Traffic
//!
//! Each step reads Q and writes Q doubles per cell in one array: `2·Q·8`
//! bytes/cell of model traffic (vs the paper's two-grid `3·Q·8`), and half
//! the resident population memory — see
//! [`crate::perf::model_bytes_per_cell`].

use crate::boundary::{BoundarySpec, WallKind};
use crate::equilibrium::{feq_i, EqOrder};
use crate::field::DistField;
use crate::index::Dim3;
use crate::kernels::op::{self, CollideOp, OpConsts};
use crate::kernels::{simd, KernelCtx, StreamTables, MAX_Q};

/// z-block for the AA sweeps (and the odd-step gather tile: Q×ZBA doubles on
/// the stack, ≈20 KiB at D3Q39 — the same working-set budget as the fused
/// kernel's tile).
pub(crate) const ZBA: usize = 64;

/// Tuning knobs for the AA drivers, threaded from the ladder dispatchers.
///
/// * `simd` — run the AVX2+FMA cell arithmetic (runtime-detected, scalar
///   fallback), exactly like the two-grid `Simd`/`Fused` rungs.
/// * `nt` — non-temporal stores for destination slots that are provably
///   write-only within the step: the even step's opposite-slot stores and
///   the odd step's scatter rows. Safe because the writer↦slot map is a
///   bijection — every slot is read (by its unique writer) before it is
///   written, and no slot is re-read after its write until the next step —
///   so bypassing the cache on the store changes no value, only traffic.
///   Runtime-gated on AVX2 (scalar stores otherwise); the drivers issue an
///   `sfence` before returning so the rayon chunks' bitwise
///   serial≡threaded guarantee survives the weakly-ordered stores.
///
/// Both knobs change *scheduling only*: every combination is
/// bitwise-identical to the same `simd` setting with `nt` off, and `simd`
/// agrees with scalar within FMA re-rounding (property-tested).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AaTune {
    /// AVX2+FMA collide arithmetic (with runtime detection + scalar
    /// fallback).
    pub simd: bool,
    /// Non-temporal stores on the write-only destination slots (runtime
    /// AVX2 gate; ignored where a step's store pattern cannot stream).
    pub nt: bool,
}

impl AaTune {
    /// Fully scalar: the bitwise reference configuration.
    pub const SCALAR: Self = Self {
        simd: false,
        nt: false,
    };

    /// Knobs for a ladder rung's kernel class: the vector classes
    /// (`Simd`/`Fused`) get the AVX2 tile *and* the NT-store path, the
    /// scalar classes neither.
    pub const fn for_class(simd: bool) -> Self {
        Self { simd, nt: false }
    }
}

/// How the odd sweep maps a writer plane `x` to its `±c_x`-shifted
/// gather/scatter planes.
///
/// Decomposed ranks shift straight into the halo margin and communicate;
/// a single rank owns the whole periodic x-axis, so it can wrap the shift
/// instead — no ghost planes read or written, no halo exchange, and no
/// duplicated writer planes. Both modes produce bitwise-identical owned
/// state: the margin path gathers from ghost *copies* of exactly the planes
/// the wrap path reads directly, and the writer↦slot bijection holds on the
/// torus just as it does on the open interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum XShift {
    /// Shift into the halo margin (requires `k` planes on each side).
    Margin,
    /// Periodic wrap inside `[lo, hi)` — the single-rank torus.
    Wrap {
        /// First plane of the periodic x-domain.
        lo: usize,
        /// One past the last plane of the periodic x-domain.
        hi: usize,
    },
}

impl XShift {
    /// The gather plane of velocity component `cx` for writer plane `x`.
    #[inline]
    fn src(self, x: usize, cx: i32) -> usize {
        match self {
            XShift::Margin => (x as isize - cx as isize) as usize,
            XShift::Wrap { lo, hi } => {
                let n = (hi - lo) as isize;
                (lo as isize + (x as isize - lo as isize - cx as isize).rem_euclid(n)) as usize
            }
        }
    }

    /// The scatter plane of velocity component `cx` for writer plane `x`.
    #[inline]
    fn dst(self, x: usize, cx: i32) -> usize {
        self.src(x, -cx)
    }
}

/// Whether the NT-store path is live: the knob is on *and* the CPU has AVX2
/// (the same runtime gate as the vector collide).
#[inline]
fn nt_active(tune: AaTune) -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        tune.nt && simd::simd_available()
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = tune;
        false
    }
}

/// Drain the write-combining buffers after a non-temporal store sequence.
/// Called once per driver invocation (i.e. per rayon chunk), *before* the
/// task completes: NT stores are weakly ordered, and the disjoint-chunk
/// bitwise guarantee needs every chunk's stores globally visible when its
/// task joins.
#[inline]
fn sfence() {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: SFENCE is baseline SSE, always present on x86_64.
    unsafe {
        std::arch::x86_64::_mm_sfence()
    };
}

/// Prefetch the next y-row of every velocity slab (the rows the sweep
/// touches next), `nz` doubles per slab starting at `next_base` — the AA
/// adaptation of `fused_simd`'s next-src-row prefetch. The even step's 2Q
/// concurrent unit-stride streams exceed the hardware stride prefetcher's
/// capacity; one software touch per row keeps them flowing.
#[inline]
fn prefetch_next_rows(
    base_ptr: *const f64,
    total: usize,
    slab_len: usize,
    q: usize,
    next_base: usize,
    nz: usize,
) {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: PREFETCHT0 is architecturally a hint and cannot fault; all
    // offsets are clamped to `total`.
    unsafe {
        use std::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
        for i in 0..q {
            let row = i * slab_len + next_base;
            let mut p = row;
            let end = (row + nz).min(total);
            while p < end {
                _mm_prefetch::<_MM_HINT_T0>(base_ptr.add(p) as *const i8);
                p += 8;
            }
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = (base_ptr, total, slab_len, q, next_base, nz);
    }
}

/// Prefetch the next y-row (`row + nz`) of every per-velocity gather row —
/// the odd-step variant of [`prefetch_next_rows`], where each velocity
/// reads a differently shifted plane/row so the row bases are irregular.
/// No separate destination prefetch is needed: the scatter row of velocity
/// `i` *is* the gather row of `opp(i)` (same slab, plane, and row), so
/// every store destination is already resident by the time it is written.
#[inline]
fn prefetch_rows_ahead(base_ptr: *const f64, total: usize, rows: &[usize], nz: usize) {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: PREFETCHT0 is architecturally a hint and cannot fault; all
    // offsets are clamped to `total`.
    unsafe {
        use std::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
        for &row in rows {
            let mut p = row + nz;
            let end = (row + 2 * nz).min(total);
            while p < end {
                _mm_prefetch::<_MM_HINT_T0>(base_ptr.add(p) as *const i8);
                p += 8;
            }
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = (base_ptr, total, rows, nz);
    }
}

/// One AA **even** step over planes `x ∈ [x_lo, x_hi)`: in place, per cell,
/// read-local/write-local (see module docs). The rule `op` is applied to
/// fluid cells of `bounds`; bounce-back wall rows and masked cells are
/// exact no-ops; moving/diffuse walls transform in place.
///
/// Fluid rows run the **tile-free velocity-pair update**: one moment pass
/// reading every slab row in place, then one relax pass over velocity
/// pairs `(i, opp(i))` that loads both rows, computes both post-collision
/// lines, and stores each into the other's slot — every population is
/// loaded twice (moments + relax) and stored exactly once, with no
/// gather-tile round trip. `tune` selects the AVX2+FMA arithmetic and the
/// NT-store path (both runtime-detected, scalar fallback); the data
/// movement and results are identical either way (see [`AaTune`]).
pub fn even_cells<O: CollideOp>(
    ctx: &KernelCtx,
    f: &mut DistField,
    x_lo: usize,
    x_hi: usize,
    op: O,
    bounds: &BoundarySpec,
    tune: AaTune,
) {
    if x_lo >= x_hi {
        return;
    }
    let d = f.alloc_dims();
    assert!(
        x_hi <= d.nx,
        "even x-range [{x_lo}, {x_hi}) exceeds nx {}",
        d.nx
    );
    let total = f.as_slice().len();
    let slab_len = f.slab_stride();
    let ptr = f.as_mut_ptr();
    let oc = OpConsts::new(ctx, &op);
    // SAFETY: exclusive &mut access to the whole field; the x-range is
    // checked above and every offset below stays inside `total`.
    unsafe { even_cells_raw::<O>(ptr, total, slab_len, ctx, &oc, bounds, d, x_lo, x_hi, tune) }
}

/// One AA **odd** step over *writer* planes `x ∈ [x_lo, x_hi)`:
/// gather-swapped reads, collide/transform, scatter-swapped writes (see
/// module docs). Requires `x_lo ≥ k` and `x_hi + k ≤ nx` (the sweep reads
/// and writes up to `k` planes outside the writer range).
///
/// The double-shifted gather software-prefetches each velocity's next
/// y-row (the AA adaptation of `fused_simd`'s next-src-row + RFO pattern;
/// the scatter rows *are* the gather rows of the opposite velocities, so
/// the gather prefetch covers the destinations too). With `tune.nt` the
/// scatter streams past the cache — each scatter row was fully consumed by
/// this writer's own gather before the store (see [`AaTune`]).
pub fn odd_cells<O: CollideOp>(
    ctx: &KernelCtx,
    tables: &StreamTables,
    f: &mut DistField,
    x_lo: usize,
    x_hi: usize,
    op: O,
    bounds: &BoundarySpec,
    tune: AaTune,
) {
    if x_lo >= x_hi {
        return;
    }
    check_odd_bounds(ctx, f, x_lo, x_hi);
    let d = f.alloc_dims();
    let total = f.as_slice().len();
    let slab_len = f.slab_stride();
    let ptr = f.as_mut_ptr();
    let oc = OpConsts::new(ctx, &op);
    // SAFETY: exclusive &mut access; the bounds check above keeps every
    // gather/scatter plane inside the allocation.
    unsafe {
        odd_cells_raw::<O>(
            ptr,
            total,
            slab_len,
            ctx,
            &oc,
            tables,
            bounds,
            d,
            x_lo,
            x_hi,
            XShift::Margin,
            tune,
        )
    }
}

/// One AA **odd** step over writer planes `x ∈ [x_lo, x_hi)` with the
/// x-shift wrapped *inside that range* — the single-rank periodic sweep.
///
/// Equivalent to filling `k` ghost planes per side from the periodic images
/// and running [`odd_cells`] over `[x_lo − k, x_hi + k)`, but with no halo
/// copies and no duplicated writer planes: the owned result is bitwise
/// identical (the margin path reads ghost *copies* of exactly the planes
/// this sweep reads in place — see [`XShift`]) while ghost slots are simply
/// never touched.
pub fn odd_cells_periodic<O: CollideOp>(
    ctx: &KernelCtx,
    tables: &StreamTables,
    f: &mut DistField,
    x_lo: usize,
    x_hi: usize,
    op: O,
    bounds: &BoundarySpec,
    tune: AaTune,
) {
    if x_lo >= x_hi {
        return;
    }
    let d = f.alloc_dims();
    assert!(
        x_hi <= d.nx,
        "odd writer range [{x_lo}, {x_hi}) exceeds nx {}",
        d.nx
    );
    let total = f.as_slice().len();
    let slab_len = f.slab_stride();
    let ptr = f.as_mut_ptr();
    let oc = OpConsts::new(ctx, &op);
    let xw = XShift::Wrap { lo: x_lo, hi: x_hi };
    // SAFETY: exclusive &mut access; wrapped shifts stay inside
    // `[x_lo, x_hi)` which the assert keeps inside the allocation.
    unsafe {
        odd_cells_raw::<O>(
            ptr, total, slab_len, ctx, &oc, tables, bounds, d, x_lo, x_hi, xw, tune,
        )
    }
}

/// Hard bounds check shared by the safe odd-step entry points: the raw
/// kernels write through pointers up to `k` planes outside the writer
/// range, so an out-of-range sweep must fail loudly in release builds too.
pub(crate) fn check_odd_bounds(ctx: &KernelCtx, f: &DistField, x_lo: usize, x_hi: usize) {
    let k = ctx.lat.reach();
    let nx = f.alloc_dims().nx;
    assert!(
        x_lo >= k && x_hi + k <= nx,
        "odd writer range [{x_lo}, {x_hi}) needs k = {k} planes of margin inside nx = {nx}"
    );
}

/// Raw-pointer even step, shared with the rayon driver.
///
/// # Safety
/// `base_ptr` must point to `total = q·slab_len` initialised doubles laid
/// out as consecutive velocity slabs of a field with allocated dims `d`;
/// the caller must guarantee exclusive access to the x-planes
/// `[x_lo, x_hi)` (the even step touches no other planes).
#[allow(clippy::too_many_arguments)]
pub(crate) unsafe fn even_cells_raw<O: CollideOp>(
    base_ptr: *mut f64,
    total: usize,
    slab_len: usize,
    ctx: &KernelCtx,
    oc: &OpConsts,
    bounds: &BoundarySpec,
    d: Dim3,
    x_lo: usize,
    x_hi: usize,
    tune: AaTune,
) {
    let q = ctx.lat.q();
    let nz = d.nz;
    let mask = bounds.mask();
    let nt = nt_active(tune);
    let mut fq = [[0.0f64; ZBA]; MAX_Q]; // wall rows only (O(boundary))

    for x in x_lo..x_hi {
        for y in 0..d.ny {
            let wall = bounds.wall_row_kind(d.ny, y);
            if matches!(wall, Some(WallKind::BounceBack)) {
                continue; // AA even bounce-back is the identity
            }
            let dbase = d.idx(x, y, 0);
            if let Some(kind) = wall {
                let mut z0 = 0usize;
                while z0 < nz {
                    let blk = (nz - z0).min(ZBA);
                    for (i, line) in fq.iter_mut().enumerate().take(q) {
                        let off = i * slab_len + dbase + z0;
                        debug_assert!(off + blk <= total);
                        // SAFETY: off+blk ≤ total per the layout contract.
                        unsafe {
                            std::ptr::copy_nonoverlapping(
                                base_ptr.add(off) as *const f64,
                                line.as_mut_ptr(),
                                blk,
                            )
                        };
                    }
                    // SAFETY: same offsets as the gather above.
                    unsafe {
                        store_wall_even(
                            ctx, kind, &fq, oc, q, base_ptr, total, slab_len, dbase, z0, blk,
                        )
                    };
                    z0 += blk;
                }
                continue;
            }
            // Fluid row, tile-free: one software touch of the next y-row
            // per slab (2Q unit-stride streams overwhelm the hardware
            // stride prefetcher), then the velocity-pair blocks in place.
            // Masked solid cells are exact AA no-ops, so the sweep simply
            // visits the fluid z-runs (identical run logic to every other
            // boundary-aware driver).
            prefetch_next_rows(base_ptr, total, slab_len, q, dbase + nz, nz);
            let mut zs = 0usize;
            while let Some((run_lo, run_hi)) = op::next_fluid_run(mask, y, nz, &mut zs) {
                let mut z0 = run_lo;
                while z0 < run_hi {
                    let blk = (run_hi - z0).min(ZBA);
                    // SAFETY: every row offset i·slab_len + dbase + z0 + blk
                    // is ≤ total per the layout contract; writes stay inside
                    // this caller's exclusive x-planes.
                    unsafe {
                        even_block::<O>(ctx, oc, base_ptr, total, slab_len, dbase, z0, blk, tune)
                    };
                    z0 += blk;
                }
            }
        }
    }
    if nt {
        sfence();
    }
}

/// One tile-free even z-block: moment pass over all q rows in place, then
/// the velocity-pair relax (each row loaded twice, stored once — no
/// gather-tile round trip). Dispatches the AVX2+FMA or scalar body.
///
/// # Safety
/// Layout contract as for [`even_cells_raw`]; `dbase + z0 + blk` within
/// every slab and inside the caller's exclusive x-planes.
#[allow(clippy::too_many_arguments)]
#[inline]
unsafe fn even_block<O: CollideOp>(
    ctx: &KernelCtx,
    oc: &OpConsts,
    base_ptr: *mut f64,
    total: usize,
    slab_len: usize,
    dbase: usize,
    z0: usize,
    blk: usize,
    tune: AaTune,
) {
    #[cfg(target_arch = "x86_64")]
    {
        if tune.simd && simd::simd_available() {
            // SAFETY: feature presence checked; contract forwarded.
            unsafe {
                if ctx.third_order() {
                    even_block_avx2::<true, O>(
                        ctx, oc, base_ptr, total, slab_len, dbase, z0, blk, tune.nt,
                    );
                } else {
                    even_block_avx2::<false, O>(
                        ctx, oc, base_ptr, total, slab_len, dbase, z0, blk, tune.nt,
                    );
                }
            }
            return;
        }
    }
    // SAFETY: contract forwarded.
    unsafe {
        if ctx.third_order() {
            even_block_scalar::<true, O>(ctx, oc, base_ptr, total, slab_len, dbase, z0, blk);
        } else {
            even_block_scalar::<false, O>(ctx, oc, base_ptr, total, slab_len, dbase, z0, blk);
        }
    }
}

/// The per-(cell, velocity) relax expression — identical accumulation
/// order and operations to the shared two-grid scalar body
/// ([`op::collide_cells`]), so every driver built on it stays bitwise the
/// streamed image of the two-grid trajectory.
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn relax_one<const THIRD: bool, O: CollideOp>(
    k: &crate::equilibrium::EqConsts,
    oc: &OpConsts,
    i: usize,
    omega: f64,
    rho: f64,
    ux: f64,
    uy: f64,
    uz: f64,
    u2: f64,
    ug: f64,
    fv: f64,
) -> f64 {
    let c = oc.cw[i];
    let xi = c[0] * ux + c[1] * uy + c[2] * uz;
    let mut poly = 1.0 + xi * k.inv_cs2 + xi * xi * k.inv_2cs4 - u2 * k.inv_2cs2;
    if THIRD {
        poly += xi * (xi * xi - 3.0 * k.cs2 * u2) * k.inv_6cs6;
    }
    let feq = c[3] * rho * poly;
    let mut next = fv + omega * (feq - fv);
    if O::FORCED {
        next += oc.sa[i] - oc.sb[i] * ug + oc.sc[i] * xi;
    }
    next
}

/// Scalar tile-free even z-block — the shared relax arithmetic applied
/// directly to the field rows, no gather tile: the moment pass
/// reads each row once, the pair pass reads each row once more, computes
/// `t_i` and `t_opp(i)`, and stores each into the other's slot.
///
/// # Safety
/// See [`even_block`].
#[allow(clippy::too_many_arguments)]
unsafe fn even_block_scalar<const THIRD: bool, O: CollideOp>(
    ctx: &KernelCtx,
    oc: &OpConsts,
    base_ptr: *mut f64,
    total: usize,
    slab_len: usize,
    dbase: usize,
    z0: usize,
    blk: usize,
) {
    let q = ctx.lat.q();
    let k = &ctx.consts;
    let omega = ctx.omega;
    let hg = oc.half_g;
    let g = oc.g;

    let mut rho = [0.0f64; ZBA];
    let mut mx = [0.0f64; ZBA];
    let mut my = [0.0f64; ZBA];
    let mut mz = [0.0f64; ZBA];
    let mut ux = [0.0f64; ZBA];
    let mut uy = [0.0f64; ZBA];
    let mut uz = [0.0f64; ZBA];
    let mut u2 = [0.0f64; ZBA];
    let mut ug = [0.0f64; ZBA];

    rho[..blk].fill(0.0);
    mx[..blk].fill(0.0);
    my[..blk].fill(0.0);
    mz[..blk].fill(0.0);
    for i in 0..q {
        let c = oc.cw[i];
        let off = i * slab_len + dbase + z0;
        debug_assert!(off + blk <= total);
        // SAFETY: off+blk ≤ total per the layout contract.
        let p = unsafe { base_ptr.add(off) as *const f64 };
        for j in 0..blk {
            let fv = unsafe { *p.add(j) };
            rho[j] += fv;
            mx[j] += fv * c[0];
            my[j] += fv * c[1];
            mz[j] += fv * c[2];
        }
    }
    for j in 0..blk {
        let inv = 1.0 / rho[j];
        if O::FORCED {
            ux[j] = (mx[j] + hg[0]) * inv;
            uy[j] = (my[j] + hg[1]) * inv;
            uz[j] = (mz[j] + hg[2]) * inv;
            ug[j] = ux[j] * g[0] + uy[j] * g[1] + uz[j] * g[2];
        } else {
            ux[j] = mx[j] * inv;
            uy[j] = my[j] * inv;
            uz[j] = mz[j] * inv;
        }
        u2[j] = ux[j] * ux[j] + uy[j] * uy[j] + uz[j] * uz[j];
    }
    // Relax in velocity pairs: rows i and opp(i) are each other's
    // destination, so the pair is loaded, collided, and cross-stored in one
    // loop — each slot is read before either is overwritten.
    for i in 0..q {
        let o = oc.opp[i];
        if o < i {
            continue; // pair already done
        }
        let off_i = i * slab_len + dbase + z0;
        let off_o = o * slab_len + dbase + z0;
        debug_assert!(off_i + blk <= total && off_o + blk <= total);
        // SAFETY: offsets bounded above; rows of a pair are touched by
        // this pair alone, inside the caller's exclusive x-planes.
        let pi = unsafe { base_ptr.add(off_i) };
        if o == i {
            // Self-opposite (rest velocity): in place.
            for j in 0..blk {
                // SAFETY: j < blk ≤ row length.
                unsafe {
                    let fv = *pi.add(j);
                    *pi.add(j) = relax_one::<THIRD, O>(
                        k, oc, i, omega, rho[j], ux[j], uy[j], uz[j], u2[j], ug[j], fv,
                    );
                }
            }
        } else {
            let po = unsafe { base_ptr.add(off_o) };
            for j in 0..blk {
                // SAFETY: j < blk ≤ row length; both loads precede both
                // stores.
                unsafe {
                    let fi = *pi.add(j);
                    let fo = *po.add(j);
                    let ti = relax_one::<THIRD, O>(
                        k, oc, i, omega, rho[j], ux[j], uy[j], uz[j], u2[j], ug[j], fi,
                    );
                    let to = relax_one::<THIRD, O>(
                        k, oc, o, omega, rho[j], ux[j], uy[j], uz[j], u2[j], ug[j], fo,
                    );
                    *po.add(j) = ti;
                    *pi.add(j) = to;
                }
            }
        }
    }
}

/// AVX2+FMA tile-free even z-block: the canonical vector recipe (moment
/// fmadds, one vector reciprocal via division, equilibrium polynomial, two
/// extra fmas for the Guo source)
/// applied directly to the field rows, with the relax pass over velocity
/// pairs cross-storing into the opposite slots. With `nt` the pair stores
/// stream past the cache when the block start is 32-byte aligned (the
/// destination rows are write-only for the rest of the step).
///
/// # Safety
/// Caller must ensure AVX2+FMA are available; layout contract as for
/// [`even_block`].
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
#[allow(clippy::too_many_arguments)]
unsafe fn even_block_avx2<const THIRD: bool, O: CollideOp>(
    ctx: &KernelCtx,
    oc: &OpConsts,
    base_ptr: *mut f64,
    total: usize,
    slab_len: usize,
    dbase: usize,
    z0: usize,
    blk: usize,
    nt: bool,
) {
    use std::arch::x86_64::*;

    const LANES: usize = 4;
    let q = ctx.lat.q();
    debug_assert!((q - 1) * slab_len + dbase + z0 + blk <= total);
    let _ = total;
    let k = &ctx.consts;
    let omega = ctx.omega;
    let hg = oc.half_g;
    let g = oc.g;

    let mut rho = [0.0f64; ZBA];
    let mut vux = [0.0f64; ZBA];
    let mut vuy = [0.0f64; ZBA];
    let mut vuz = [0.0f64; ZBA];
    let mut vu2 = [0.0f64; ZBA];
    let mut vug = [0.0f64; ZBA];

    // SAFETY: every row offset i·slab_len + dbase + z0 + blk is ≤ total per
    // the layout contract; moment-array accesses stay below blk ≤ ZBA.
    unsafe {
        let v_one = _mm256_set1_pd(1.0);
        let v_omega = _mm256_set1_pd(omega);
        let v_inv_cs2 = _mm256_set1_pd(k.inv_cs2);
        let v_inv_2cs4 = _mm256_set1_pd(k.inv_2cs4);
        let v_inv_2cs2 = _mm256_set1_pd(k.inv_2cs2);
        let v_inv_6cs6 = _mm256_set1_pd(k.inv_6cs6);
        let v_3cs2 = _mm256_set1_pd(3.0 * k.cs2);

        let vec_end = blk - blk % LANES;
        let mut z = 0usize;
        while z < vec_end {
            let mut vrho = _mm256_setzero_pd();
            let mut vmx = _mm256_setzero_pd();
            let mut vmy = _mm256_setzero_pd();
            let mut vmz = _mm256_setzero_pd();
            for i in 0..q {
                let c = oc.cw[i];
                let fv = _mm256_loadu_pd(base_ptr.add(i * slab_len + dbase + z0 + z) as *const f64);
                vrho = _mm256_add_pd(vrho, fv);
                if c[0] != 0.0 {
                    vmx = _mm256_fmadd_pd(fv, _mm256_set1_pd(c[0]), vmx);
                }
                if c[1] != 0.0 {
                    vmy = _mm256_fmadd_pd(fv, _mm256_set1_pd(c[1]), vmy);
                }
                if c[2] != 0.0 {
                    vmz = _mm256_fmadd_pd(fv, _mm256_set1_pd(c[2]), vmz);
                }
            }
            let vinv = _mm256_div_pd(v_one, vrho);
            if O::FORCED {
                vmx = _mm256_add_pd(vmx, _mm256_set1_pd(hg[0]));
                vmy = _mm256_add_pd(vmy, _mm256_set1_pd(hg[1]));
                vmz = _mm256_add_pd(vmz, _mm256_set1_pd(hg[2]));
            }
            let ux = _mm256_mul_pd(vmx, vinv);
            let uy = _mm256_mul_pd(vmy, vinv);
            let uz = _mm256_mul_pd(vmz, vinv);
            let u2 = _mm256_fmadd_pd(ux, ux, _mm256_fmadd_pd(uy, uy, _mm256_mul_pd(uz, uz)));
            let ugv = if O::FORCED {
                _mm256_fmadd_pd(
                    ux,
                    _mm256_set1_pd(g[0]),
                    _mm256_fmadd_pd(
                        uy,
                        _mm256_set1_pd(g[1]),
                        _mm256_mul_pd(uz, _mm256_set1_pd(g[2])),
                    ),
                )
            } else {
                _mm256_setzero_pd()
            };
            _mm256_storeu_pd(rho.as_mut_ptr().add(z), vrho);
            _mm256_storeu_pd(vux.as_mut_ptr().add(z), ux);
            _mm256_storeu_pd(vuy.as_mut_ptr().add(z), uy);
            _mm256_storeu_pd(vuz.as_mut_ptr().add(z), uz);
            _mm256_storeu_pd(vu2.as_mut_ptr().add(z), u2);
            _mm256_storeu_pd(vug.as_mut_ptr().add(z), ugv);
            z += LANES;
        }
        // Scalar tail for the moment pass (reciprocal form, as in `simd`).
        while z < blk {
            let mut r = 0.0;
            let mut m = [0.0f64; 3];
            for i in 0..q {
                let c = oc.cw[i];
                let fv = *base_ptr.add(i * slab_len + dbase + z0 + z);
                r += fv;
                m[0] += fv * c[0];
                m[1] += fv * c[1];
                m[2] += fv * c[2];
            }
            let inv = 1.0 / r;
            let u = if O::FORCED {
                [
                    (m[0] + hg[0]) * inv,
                    (m[1] + hg[1]) * inv,
                    (m[2] + hg[2]) * inv,
                ]
            } else {
                [m[0] * inv, m[1] * inv, m[2] * inv]
            };
            rho[z] = r;
            vux[z] = u[0];
            vuy[z] = u[1];
            vuz[z] = u[2];
            vu2[z] = u[0] * u[0] + u[1] * u[1] + u[2] * u[2];
            vug[z] = u[0] * g[0] + u[1] * g[1] + u[2] * g[2];
            z += 1;
        }

        // Vector main: lane-group-outer, pair-inner — the six moment
        // vectors are loaded once per group and reused by every velocity
        // pair (pairs touch distinct slots, so any processing order gives
        // the same per-lane operation sequence).
        let mut z = 0usize;
        while z < vec_end {
            let m_ux = _mm256_loadu_pd(vux.as_ptr().add(z));
            let m_uy = _mm256_loadu_pd(vuy.as_ptr().add(z));
            let m_uz = _mm256_loadu_pd(vuz.as_ptr().add(z));
            let m_u2 = _mm256_loadu_pd(vu2.as_ptr().add(z));
            let m_rho = _mm256_loadu_pd(rho.as_ptr().add(z));
            let m_ug = if O::FORCED {
                _mm256_loadu_pd(vug.as_ptr().add(z))
            } else {
                _mm256_setzero_pd()
            };
            // `relax_vec` with the moments pinned in registers.
            macro_rules! relax_reg {
                ($c:expr, $i:expr, $fv:expr) => {{
                    let c = $c;
                    let mut vxi = _mm256_setzero_pd();
                    if c[0] != 0.0 {
                        vxi = _mm256_fmadd_pd(_mm256_set1_pd(c[0]), m_ux, vxi);
                    }
                    if c[1] != 0.0 {
                        vxi = _mm256_fmadd_pd(_mm256_set1_pd(c[1]), m_uy, vxi);
                    }
                    if c[2] != 0.0 {
                        vxi = _mm256_fmadd_pd(_mm256_set1_pd(c[2]), m_uz, vxi);
                    }
                    let mut vpoly = _mm256_fmadd_pd(vxi, v_inv_cs2, v_one);
                    vpoly = _mm256_fmadd_pd(_mm256_mul_pd(vxi, vxi), v_inv_2cs4, vpoly);
                    vpoly = _mm256_fnmadd_pd(m_u2, v_inv_2cs2, vpoly);
                    if THIRD {
                        let t = _mm256_fnmadd_pd(v_3cs2, m_u2, _mm256_mul_pd(vxi, vxi));
                        vpoly = _mm256_fmadd_pd(_mm256_mul_pd(vxi, t), v_inv_6cs6, vpoly);
                    }
                    let vfeq = _mm256_mul_pd(_mm256_mul_pd(_mm256_set1_pd(c[3]), m_rho), vpoly);
                    let fv = $fv;
                    let mut out = _mm256_fmadd_pd(v_omega, _mm256_sub_pd(vfeq, fv), fv);
                    if O::FORCED {
                        let vs = _mm256_fmadd_pd(
                            _mm256_set1_pd(oc.sc[$i]),
                            vxi,
                            _mm256_fnmadd_pd(
                                _mm256_set1_pd(oc.sb[$i]),
                                m_ug,
                                _mm256_set1_pd(oc.sa[$i]),
                            ),
                        );
                        out = _mm256_add_pd(out, vs);
                    }
                    out
                }};
            }
            for i in 0..q {
                let o = oc.opp[i];
                if o < i {
                    continue; // pair already done
                }
                let pi = base_ptr.add(i * slab_len + dbase + z0 + z);
                // 32B-aligned stores may stream; the lane stride (32B)
                // keeps a row's alignment invariant across groups, so this
                // matches the per-pair block-start check exactly.
                let nt_pi = nt && (pi as usize) & 31 == 0;
                let out_i = relax_reg!(oc.cw[i], i, _mm256_loadu_pd(pi));
                if o == i {
                    // Self-opposite (rest velocity): in place.
                    if nt_pi {
                        _mm256_stream_pd(pi, out_i);
                    } else {
                        _mm256_storeu_pd(pi, out_i);
                    }
                } else {
                    let po = base_ptr.add(o * slab_len + dbase + z0 + z);
                    let nt_po = nt && (po as usize) & 31 == 0;
                    let out_o = relax_reg!(oc.cw[o], o, _mm256_loadu_pd(po));
                    if nt_po {
                        _mm256_stream_pd(po, out_i);
                    } else {
                        _mm256_storeu_pd(po, out_i);
                    }
                    if nt_pi {
                        _mm256_stream_pd(pi, out_o);
                    } else {
                        _mm256_storeu_pd(pi, out_o);
                    }
                }
            }
            z += LANES;
        }
        // Scalar tail, same pair order.
        for i in 0..q {
            let o = oc.opp[i];
            if o < i {
                continue; // pair already done
            }
            let pi = base_ptr.add(i * slab_len + dbase + z0);
            if o == i {
                let mut z = vec_end;
                while z < blk {
                    let fv = *pi.add(z);
                    *pi.add(z) = relax_one::<THIRD, O>(
                        k, oc, i, omega, rho[z], vux[z], vuy[z], vuz[z], vu2[z], vug[z], fv,
                    );
                    z += 1;
                }
            } else {
                let po = base_ptr.add(o * slab_len + dbase + z0);
                let mut z = vec_end;
                while z < blk {
                    let fi = *pi.add(z);
                    let fo = *po.add(z);
                    let ti = relax_one::<THIRD, O>(
                        k, oc, i, omega, rho[z], vux[z], vuy[z], vuz[z], vu2[z], vug[z], fi,
                    );
                    let to = relax_one::<THIRD, O>(
                        k, oc, o, omega, rho[z], vux[z], vuy[z], vuz[z], vu2[z], vug[z], fo,
                    );
                    *po.add(z) = ti;
                    *pi.add(z) = to;
                    z += 1;
                }
            }
        }
    }
}

/// Raw-pointer odd step, shared with the rayon driver.
///
/// # Safety
/// Layout contract as for [`even_cells_raw`]; additionally every shifted
/// plane `xw.src(x, ±c_x)` must lie inside the allocation (with
/// [`XShift::Margin`] that means `x_lo ≥ k` and `x_hi + k ≤ d.nx`; a wrap
/// range inside the allocation satisfies it by construction), and the
/// caller must guarantee that no other thread concurrently touches any slot
/// `(x + c_i, i)` for writer cells `x ∈ [x_lo, x_hi)`. Because the
/// writer↦slot map is a bijection (cell `x` owns exactly the slots
/// `(x + c_j, j)` — on the torus under `Wrap`), partitioning writers into
/// disjoint x-ranges satisfies this even though the written *planes*
/// overlap chunk boundaries.
#[allow(clippy::too_many_arguments)]
pub(crate) unsafe fn odd_cells_raw<O: CollideOp>(
    base_ptr: *mut f64,
    total: usize,
    slab_len: usize,
    ctx: &KernelCtx,
    oc: &OpConsts,
    tables: &StreamTables,
    bounds: &BoundarySpec,
    d: Dim3,
    x_lo: usize,
    x_hi: usize,
    xw: XShift,
    tune: AaTune,
) {
    let q = ctx.lat.q();
    let nz = d.nz;
    let mask = bounds.mask();
    let nt = nt_active(tune);
    let vel = ctx.lat.velocities().to_vec();
    let mut fq = [[0.0f64; ZBA]; MAX_Q];

    for x in x_lo..x_hi {
        for y in 0..d.ny {
            let wall = bounds.wall_row_kind(d.ny, y);
            if matches!(wall, Some(WallKind::BounceBack)) {
                continue; // AA odd bounce-back is the identity
            }
            // Prefetch on the first z-block of each row only (the later
            // blocks of the row hit the rows the first block touched).
            let mut prefetch = true;
            if let Some(kind) = wall {
                let mut z0 = 0usize;
                while z0 < nz {
                    let blk = (nz - z0).min(ZBA);
                    // SAFETY: gather planes x−c are inside the allocation
                    // per the odd-bounds contract.
                    unsafe {
                        gather_swapped(
                            base_ptr, total, slab_len, &vel, oc, tables, d, q, x, y, z0, blk,
                            &mut fq, prefetch, xw,
                        )
                    };
                    prefetch = false;
                    // SAFETY: scatter planes x+c inside the allocation.
                    unsafe {
                        store_wall_odd(
                            ctx, kind, &fq, oc, &vel, tables, d, q, base_ptr, total, slab_len, x,
                            y, z0, blk, xw,
                        )
                    };
                    z0 += blk;
                }
                continue;
            }
            // Fluid row, tile-free: the gather row of velocity `i` (slab
            // `opp(i)`, plane `x−cx_i`, row `wrap(y−cy_i)`, z shifted by
            // `−cz_i`) is *also* the scatter destination of `t_opp(i)` —
            // the scatter row of `o = opp(i)` is slab `o`, plane
            // `x+cx_o = x−cx_i`, row `wrap(y+cy_o) = wrap(y−cy_i)`, start
            // `wrap(z0+cz_o) = wrap(z0−cz_i)`. So the odd step, like the
            // even step, is a pure velocity-pair in-place swap — just on
            // double-shifted rows — and needs no gather-tile round trip.
            let mut rows = [0usize; MAX_Q];
            for (i, c) in vel.iter().enumerate().take(q) {
                let xs = xw.src(x, c[0]);
                let ys = tables.y_for(c[1]).src(y);
                rows[i] = oc.opp[i] * slab_len + d.idx(xs, ys, 0);
                debug_assert!(rows[i] + nz <= total);
            }
            prefetch_rows_ahead(base_ptr, total, &rows[..q], nz);
            let mut zs = 0usize;
            while let Some((run_lo, run_hi)) = op::next_fluid_run(mask, y, nz, &mut zs) {
                let mut z0 = run_lo;
                while z0 < run_hi {
                    let blk = (run_hi - z0).min(ZBA);
                    let mut starts = [0usize; MAX_Q];
                    for (i, c) in vel.iter().enumerate().take(q) {
                        starts[i] = (z0 as isize - c[2] as isize).rem_euclid(nz as isize) as usize;
                    }
                    // SAFETY: every gather row is inside the allocation per
                    // the odd-bounds contract; the pair swap touches exactly
                    // the slots this writer owns.
                    unsafe { odd_block::<O>(ctx, oc, base_ptr, &rows, &starts, nz, blk, tune) };
                    z0 += blk;
                }
            }
        }
    }
    if nt {
        sfence();
    }
}

/// Gather the swapped arrivals of one z-block into `fq`:
/// `fq[i][j] = A[x−c_i][wrap(y−cy_i)][wrap(z0+j−cz_i)][opp(i)]`.
///
/// With `prefetch` (once per row), each velocity's *next* y-row source is
/// software-prefetched — the AA adaptation of `fused_simd`'s
/// next-src-row-plus-destination-RFO pattern. The 2Q double-shifted streams defeat the
/// hardware stride prefetcher, and no separate destination prefetch is
/// needed: the scatter row of velocity `i` at `(x, y)` *is* this gather's
/// row for `opp(i)` (same slab `i`, same plane `x + cx_i`, same row
/// `wrap(y + cy_i)`), so every scatter destination is already resident.
///
/// # Safety
/// Layout contract as for [`odd_cells_raw`]; `x ± k` must be valid planes.
#[allow(clippy::too_many_arguments)]
unsafe fn gather_swapped(
    base_ptr: *mut f64,
    total: usize,
    slab_len: usize,
    vel: &[[i32; 3]],
    oc: &OpConsts,
    tables: &StreamTables,
    d: Dim3,
    q: usize,
    x: usize,
    y: usize,
    z0: usize,
    blk: usize,
    fq: &mut [[f64; ZBA]; MAX_Q],
    prefetch: bool,
    xw: XShift,
) {
    let nz = d.nz;
    for (i, c) in vel.iter().enumerate().take(q) {
        let xs = xw.src(x, c[0]);
        let ys = tables.y_for(c[1]).src(y);
        let row = oc.opp[i] * slab_len + d.idx(xs, ys, 0);
        debug_assert!(row + nz <= total);
        #[cfg(target_arch = "x86_64")]
        if prefetch {
            // SAFETY: PREFETCHT0 is a hint and cannot fault; clamped below.
            unsafe {
                use std::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
                let mut p = row + nz;
                let end = (row + 2 * nz).min(total);
                while p < end {
                    _mm_prefetch::<_MM_HINT_T0>(base_ptr.add(p) as *const i8);
                    p += 8;
                }
            }
        }
        let start = (z0 as isize - c[2] as isize).rem_euclid(nz as isize) as usize;
        let line = fq[i].as_mut_ptr();
        // SAFETY: row+nz ≤ total; both rotate segments stay inside the row.
        unsafe {
            let src = base_ptr.add(row) as *const f64;
            if start + blk <= nz {
                std::ptr::copy_nonoverlapping(src.add(start), line, blk);
            } else {
                let first = nz - start;
                std::ptr::copy_nonoverlapping(src.add(start), line, first);
                std::ptr::copy_nonoverlapping(src, line.add(first), blk - first);
            }
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = prefetch;
}

/// Rotate-copy `blk` doubles from `line` into a field row of length `nz`
/// starting at (wrapped) `start`. With `nt` the contiguous segments stream
/// past the cache (caller guarantees AVX and that the destination is
/// write-only for the rest of the step).
///
/// # Safety
/// `row_ptr` must be valid for `nz` doubles; `blk ≤ nz`; `nt` only when
/// AVX is available.
unsafe fn scatter_line(
    line: *const f64,
    row_ptr: *mut f64,
    start: usize,
    blk: usize,
    nz: usize,
    nt: bool,
) {
    // SAFETY: both segments stay inside the row per the contract.
    unsafe {
        if start + blk <= nz {
            copy_segment(line, row_ptr.add(start), blk, nt);
        } else {
            let first = nz - start;
            copy_segment(line, row_ptr.add(start), first, nt);
            copy_segment(line.add(first), row_ptr, blk - first, nt);
        }
    }
}

/// Copy `n` doubles, optionally via non-temporal stores (unaligned head
/// and tail fall back to regular stores; values are identical either way).
///
/// # Safety
/// `src`/`dst` valid for `n` doubles, non-overlapping; `nt` only when AVX
/// is available.
#[inline]
unsafe fn copy_segment(src: *const f64, dst: *mut f64, n: usize, nt: bool) {
    #[cfg(target_arch = "x86_64")]
    if nt {
        // SAFETY: AVX presence guaranteed by the caller (`nt_active`).
        unsafe { copy_segment_nt(src, dst, n) };
        return;
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = nt;
    // SAFETY: forwarded contract.
    unsafe { std::ptr::copy_nonoverlapping(src, dst, n) };
}

/// Streaming copy: scalar head until the destination is 32-byte aligned,
/// 4-lane `MOVNTPD` middle, scalar tail.
///
/// # Safety
/// AVX must be available; `src`/`dst` valid for `n` doubles,
/// non-overlapping.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx")]
unsafe fn copy_segment_nt(src: *const f64, dst: *mut f64, n: usize) {
    use std::arch::x86_64::{_mm256_loadu_pd, _mm256_stream_pd};
    // SAFETY: all offsets below stay inside [0, n).
    unsafe {
        let mut i = 0usize;
        while i < n && (dst.add(i) as usize) & 31 != 0 {
            *dst.add(i) = *src.add(i);
            i += 1;
        }
        while i + 4 <= n {
            _mm256_stream_pd(dst.add(i), _mm256_loadu_pd(src.add(i)));
            i += 4;
        }
        while i < n {
            *dst.add(i) = *src.add(i);
            i += 1;
        }
    }
}

/// AA even-step wall transform for one z-block of a solid row, written to
/// the *swapped* local slots: slot `m` receives `t_{opp(m)}` (bounce-back
/// rows never reach here — they are exact no-ops). Identical per-cell
/// arithmetic to [`crate::boundary::BoundarySpec::apply`].
///
/// # Safety
/// Layout contract as for [`even_cells_raw`]; `dbase + z0 + blk` within
/// every slab and inside the caller's exclusive x-planes.
#[allow(clippy::too_many_arguments)]
unsafe fn store_wall_even(
    ctx: &KernelCtx,
    kind: WallKind,
    fq: &[[f64; ZBA]; MAX_Q],
    oc: &OpConsts,
    q: usize,
    base_ptr: *mut f64,
    total: usize,
    slab_len: usize,
    dbase: usize,
    z0: usize,
    blk: usize,
) {
    let cs2 = ctx.lat.cs2();
    match kind {
        WallKind::BounceBack => unreachable!("bounce-back rows are skipped"),
        WallKind::Moving { u, rho } => {
            // Slot m ← a_m + corr_{opp(m)}: the swapped-slot image of
            // `new[i] = old[opp(i)] + corr_i`.
            for m in 0..q {
                let i = oc.opp[m];
                let c = ctx.lat.velocities()[i];
                let cu = c[0] as f64 * u[0] + c[1] as f64 * u[1] + c[2] as f64 * u[2];
                let corr = 2.0 * ctx.lat.weights()[i] * rho * cu / cs2;
                let off = m * slab_len + dbase + z0;
                debug_assert!(off + blk <= total);
                let line = &fq[m];
                for j in 0..blk {
                    // SAFETY: off+blk ≤ total per the caller's contract.
                    unsafe { *base_ptr.add(off + j) = line[j] + corr };
                }
            }
        }
        WallKind::Diffuse { u } => {
            // Arriving mass in velocity-index order (matches the two-grid
            // boundary apply), re-emitted as wall equilibrium.
            let mut mass = [0.0f64; ZBA];
            for line in fq.iter().take(q) {
                for j in 0..blk {
                    mass[j] += line[j];
                }
            }
            for m in 0..q {
                let i = oc.opp[m];
                let off = m * slab_len + dbase + z0;
                debug_assert!(off + blk <= total);
                for (j, mj) in mass.iter().enumerate().take(blk) {
                    // SAFETY: as above.
                    unsafe { *base_ptr.add(off + j) = feq_i(&ctx.lat, EqOrder::Second, i, *mj, u) };
                }
            }
        }
    }
}

/// AA odd-step wall transform for one z-block of a solid row: `t_i` from
/// the gathered swapped arrivals, scatter-stored to `A[x+c_i][i]`
/// (bounce-back rows never reach here — exact no-ops).
///
/// # Safety
/// Layout contract as for [`odd_cells_raw`]; `x ± k` valid planes.
#[allow(clippy::too_many_arguments)]
unsafe fn store_wall_odd(
    ctx: &KernelCtx,
    kind: WallKind,
    fq: &[[f64; ZBA]; MAX_Q],
    oc: &OpConsts,
    vel: &[[i32; 3]],
    tables: &StreamTables,
    d: Dim3,
    q: usize,
    base_ptr: *mut f64,
    total: usize,
    slab_len: usize,
    x: usize,
    y: usize,
    z0: usize,
    blk: usize,
    xw: XShift,
) {
    let cs2 = ctx.lat.cs2();
    let nz = d.nz;
    let mut t = [0.0f64; ZBA];
    let mut mass = [0.0f64; ZBA];
    if matches!(kind, WallKind::Diffuse { .. }) {
        mass[..blk].fill(0.0);
        for line in fq.iter().take(q) {
            for j in 0..blk {
                mass[j] += line[j];
            }
        }
    }
    for (i, c) in vel.iter().enumerate().take(q) {
        match kind {
            WallKind::BounceBack => unreachable!("bounce-back rows are skipped"),
            WallKind::Moving { u, rho } => {
                let cu = c[0] as f64 * u[0] + c[1] as f64 * u[1] + c[2] as f64 * u[2];
                let corr = 2.0 * ctx.lat.weights()[i] * rho * cu / cs2;
                let line = &fq[oc.opp[i]];
                for j in 0..blk {
                    t[j] = line[j] + corr;
                }
            }
            WallKind::Diffuse { u } => {
                for (j, mj) in mass.iter().enumerate().take(blk) {
                    t[j] = feq_i(&ctx.lat, EqOrder::Second, i, *mj, u);
                }
            }
        }
        let xd = xw.dst(x, c[0]);
        let yd = tables.y_for(-c[1]).src(y);
        let row = i * slab_len + d.idx(xd, yd, 0);
        debug_assert!(row + nz <= total);
        let start = (z0 as isize + c[2] as isize).rem_euclid(nz as isize) as usize;
        // SAFETY: row+nz ≤ total; segments inside the row (wall rows keep
        // regular stores — O(boundary) work).
        unsafe { scatter_line(t.as_ptr(), base_ptr.add(row), start, blk, nz, false) };
    }
}

/// One tile-free odd z-block: the velocity-pair in-place swap on
/// double-shifted rows. `rows[i]` is the gather row of velocity `i` (slab
/// `opp(i)`, plane `x−cx_i`, row `wrap(y−cy_i)`) and `starts[i]` its
/// z-rotation `wrap(z0−cz_i)`; the same (row, rotation) is the scatter
/// destination of `t_opp(i)`, so the moment pass reads every row in place
/// and the relax pass cross-stores each pair — no gather/scatter tile.
/// Dispatches the AVX2+FMA or scalar body.
///
/// # Safety
/// Every `rows[i] + nz` must be ≤ the allocation length; `blk ≤ nz`; the
/// caller owns all slots `(x + c_j, j)` of this writer row exclusively.
#[allow(clippy::too_many_arguments)]
#[inline]
unsafe fn odd_block<O: CollideOp>(
    ctx: &KernelCtx,
    oc: &OpConsts,
    base_ptr: *mut f64,
    rows: &[usize; MAX_Q],
    starts: &[usize; MAX_Q],
    nz: usize,
    blk: usize,
    tune: AaTune,
) {
    #[cfg(target_arch = "x86_64")]
    {
        if tune.simd && simd::simd_available() {
            // SAFETY: feature presence checked; contract forwarded.
            unsafe {
                if ctx.third_order() {
                    odd_block_avx2::<true, O>(ctx, oc, base_ptr, rows, starts, nz, blk, tune.nt);
                } else {
                    odd_block_avx2::<false, O>(ctx, oc, base_ptr, rows, starts, nz, blk, tune.nt);
                }
            }
            return;
        }
    }
    // SAFETY: contract forwarded.
    unsafe {
        if ctx.third_order() {
            odd_block_scalar::<true, O>(ctx, oc, base_ptr, rows, starts, nz, blk);
        } else {
            odd_block_scalar::<false, O>(ctx, oc, base_ptr, rows, starts, nz, blk);
        }
    }
}

/// Scalar tile-free odd z-block — identical accumulation order and
/// expressions as the shared two-grid scalar body ([`op::collide_cells`]),
/// applied to the rotated gather rows, so scalar AA runs stay bitwise the
/// streamed image of scalar two-grid runs.
///
/// # Safety
/// See [`odd_block`].
#[allow(clippy::too_many_arguments)]
unsafe fn odd_block_scalar<const THIRD: bool, O: CollideOp>(
    ctx: &KernelCtx,
    oc: &OpConsts,
    base_ptr: *mut f64,
    rows: &[usize; MAX_Q],
    starts: &[usize; MAX_Q],
    nz: usize,
    blk: usize,
) {
    let q = ctx.lat.q();
    let k = &ctx.consts;
    let omega = ctx.omega;
    let hg = oc.half_g;
    let g = oc.g;

    let mut rho = [0.0f64; ZBA];
    let mut mx = [0.0f64; ZBA];
    let mut my = [0.0f64; ZBA];
    let mut mz = [0.0f64; ZBA];
    let mut ux = [0.0f64; ZBA];
    let mut uy = [0.0f64; ZBA];
    let mut uz = [0.0f64; ZBA];
    let mut u2 = [0.0f64; ZBA];
    let mut ug = [0.0f64; ZBA];

    rho[..blk].fill(0.0);
    mx[..blk].fill(0.0);
    my[..blk].fill(0.0);
    mz[..blk].fill(0.0);
    for i in 0..q {
        let c = oc.cw[i];
        let s = starts[i];
        // SAFETY: rows[i] + nz ≤ total per the contract; both rotation
        // segments stay inside the row.
        let p = unsafe { base_ptr.add(rows[i]) as *const f64 };
        let l1 = blk.min(nz - s);
        for j in 0..l1 {
            let fv = unsafe { *p.add(s + j) };
            rho[j] += fv;
            mx[j] += fv * c[0];
            my[j] += fv * c[1];
            mz[j] += fv * c[2];
        }
        for j in l1..blk {
            let fv = unsafe { *p.add(j - l1) };
            rho[j] += fv;
            mx[j] += fv * c[0];
            my[j] += fv * c[1];
            mz[j] += fv * c[2];
        }
    }
    for j in 0..blk {
        let inv = 1.0 / rho[j];
        if O::FORCED {
            ux[j] = (mx[j] + hg[0]) * inv;
            uy[j] = (my[j] + hg[1]) * inv;
            uz[j] = (mz[j] + hg[2]) * inv;
            ug[j] = ux[j] * g[0] + uy[j] * g[1] + uz[j] * g[2];
        } else {
            ux[j] = mx[j] * inv;
            uy[j] = my[j] * inv;
            uz[j] = mz[j] * inv;
        }
        u2[j] = ux[j] * ux[j] + uy[j] * uy[j] + uz[j] * uz[j];
    }
    // Relax in velocity pairs: the row holding a_i receives t_opp(i), so
    // each pair is loaded, collided, and cross-stored in one rotation-aware
    // loop — both loads precede both stores at every lane.
    for i in 0..q {
        let o = oc.opp[i];
        if o < i {
            continue; // pair already done
        }
        // SAFETY: offsets bounded by rows[·] + nz ≤ total; the running
        // rotation indices stay < nz.
        let pi = unsafe { base_ptr.add(rows[i]) };
        let mut zi = starts[i];
        if o == i {
            // Self-opposite (rest velocity): unshifted, in place.
            for j in 0..blk {
                // SAFETY: zi < nz.
                unsafe {
                    let fv = *pi.add(zi);
                    *pi.add(zi) = relax_one::<THIRD, O>(
                        k, oc, i, omega, rho[j], ux[j], uy[j], uz[j], u2[j], ug[j], fv,
                    );
                }
                zi += 1;
                if zi == nz {
                    zi = 0;
                }
            }
        } else {
            let po = unsafe { base_ptr.add(rows[o]) };
            let mut zo = starts[o];
            for j in 0..blk {
                // SAFETY: zi, zo < nz; both loads precede both stores.
                unsafe {
                    let fi = *pi.add(zi);
                    let fo = *po.add(zo);
                    let ti = relax_one::<THIRD, O>(
                        k, oc, i, omega, rho[j], ux[j], uy[j], uz[j], u2[j], ug[j], fi,
                    );
                    let to = relax_one::<THIRD, O>(
                        k, oc, o, omega, rho[j], ux[j], uy[j], uz[j], u2[j], ug[j], fo,
                    );
                    *po.add(zo) = ti;
                    *pi.add(zi) = to;
                }
                zi += 1;
                if zi == nz {
                    zi = 0;
                }
                zo += 1;
                if zo == nz {
                    zo = 0;
                }
            }
        }
    }
}

/// AVX2+FMA tile-free odd z-block: the same vector recipe as
/// [`even_block_avx2`] with every load/store routed through the per-row
/// z-rotation (contiguous 4-lane accesses away from the wrap seam, lane
/// assembly across it — at most one seam group per row per block, and the
/// lane grid matches the unrotated kernels so the arithmetic is identical).
/// With `nt`, aligned contiguous pair stores stream past the cache.
///
/// # Safety
/// Caller must ensure AVX2+FMA are available; layout contract as for
/// [`odd_block`].
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
#[allow(clippy::too_many_arguments)]
unsafe fn odd_block_avx2<const THIRD: bool, O: CollideOp>(
    ctx: &KernelCtx,
    oc: &OpConsts,
    base_ptr: *mut f64,
    rows: &[usize; MAX_Q],
    starts: &[usize; MAX_Q],
    nz: usize,
    blk: usize,
    nt: bool,
) {
    use std::arch::x86_64::*;

    const LANES: usize = 4;
    let q = ctx.lat.q();
    let k = &ctx.consts;
    let omega = ctx.omega;
    let hg = oc.half_g;
    let g = oc.g;

    let mut rho = [0.0f64; ZBA];
    let mut vux = [0.0f64; ZBA];
    let mut vuy = [0.0f64; ZBA];
    let mut vuz = [0.0f64; ZBA];
    let mut vu2 = [0.0f64; ZBA];
    let mut vug = [0.0f64; ZBA];

    // SAFETY: every access below stays inside `rows[·] + nz ≤ total` (the
    // rotation keeps indices < nz; 4-lane groups only run where blk ≥ 4,
    // which forces nz ≥ 4 so the wrapped lane index needs one subtraction).
    unsafe {
        // 4 lanes of `row[wrap(s + z .. s + z + 4)]`.
        macro_rules! load4_rot {
            ($p:expr, $s:expr, $z:expr) => {{
                let t = $s + $z;
                if t + LANES <= nz {
                    _mm256_loadu_pd($p.add(t))
                } else if t >= nz {
                    _mm256_loadu_pd($p.add(t - nz))
                } else {
                    let i1 = if t + 1 >= nz { t + 1 - nz } else { t + 1 };
                    let i2 = if t + 2 >= nz { t + 2 - nz } else { t + 2 };
                    let i3 = if t + 3 >= nz { t + 3 - nz } else { t + 3 };
                    _mm256_setr_pd(*$p.add(t), *$p.add(i1), *$p.add(i2), *$p.add(i3))
                }
            }};
        }
        // The rotated store mirror; `$nt` streams aligned contiguous groups.
        macro_rules! store4_rot {
            ($p:expr, $s:expr, $z:expr, $v:expr, $nt:expr) => {{
                let t = $s + $z;
                if t + LANES <= nz || t >= nz {
                    let dst = $p.add(if t >= nz { t - nz } else { t });
                    if $nt && (dst as usize) & 31 == 0 {
                        _mm256_stream_pd(dst, $v);
                    } else {
                        _mm256_storeu_pd(dst, $v);
                    }
                } else {
                    let mut tmp = [0.0f64; LANES];
                    _mm256_storeu_pd(tmp.as_mut_ptr(), $v);
                    for (l, val) in tmp.iter().enumerate() {
                        let mut u = t + l;
                        if u >= nz {
                            u -= nz;
                        }
                        *$p.add(u) = *val;
                    }
                }
            }};
        }

        let v_one = _mm256_set1_pd(1.0);
        let v_omega = _mm256_set1_pd(omega);
        let v_inv_cs2 = _mm256_set1_pd(k.inv_cs2);
        let v_inv_2cs4 = _mm256_set1_pd(k.inv_2cs4);
        let v_inv_2cs2 = _mm256_set1_pd(k.inv_2cs2);
        let v_inv_6cs6 = _mm256_set1_pd(k.inv_6cs6);
        let v_3cs2 = _mm256_set1_pd(3.0 * k.cs2);

        let vec_end = blk - blk % LANES;

        // Seam analysis: writer runs never wrap in z (`run_hi ≤ nz`), so a
        // velocity's rotated source can cross the row seam only within the
        // first |cz| lanes (when `starts[i]` sits at the top of the row) or
        // the last |cz| lanes (when the run reaches it) — never mid-block.
        // Groups in `[mid_lo, mid_hi)` are therefore seam-free for *every*
        // velocity and run branchless on pre-offset pointers `fp[i]`; only
        // the first and last lane groups take the 3-way rotated path.
        let mut fp = [base_ptr as *const f64; MAX_Q];
        let mut mid_hi = vec_end;
        for i in 0..q {
            let s = starts[i];
            // After the head group, sources with `s + LANES > nz` have
            // wrapped for good: constant offset `s − nz`. Others sit at `s`.
            let off = if s + LANES > nz {
                s as isize - nz as isize
            } else {
                s as isize
            };
            fp[i] = base_ptr.add(rows[i]).offset(off) as *const f64;
            if s + LANES <= nz && s + vec_end > nz {
                // Wraps at lane nz−s near the block end: stop the fast
                // range at the last whole group before the seam.
                mid_hi = mid_hi.min((nz - s) & !(LANES - 1));
            }
        }
        let mid_lo = LANES.min(vec_end);
        let mid_hi = mid_hi.max(mid_lo);

        // One moment lane group at `z`; `$fast` selects the seam-free
        // pre-offset loads (the two variants read identical lane values).
        macro_rules! moment_group {
            ($z:expr, $fast:expr) => {{
                let z = $z;
                let mut vrho = _mm256_setzero_pd();
                let mut vmx = _mm256_setzero_pd();
                let mut vmy = _mm256_setzero_pd();
                let mut vmz = _mm256_setzero_pd();
                for i in 0..q {
                    let c = oc.cw[i];
                    let fv = if $fast {
                        _mm256_loadu_pd(fp[i].add(z))
                    } else {
                        load4_rot!(base_ptr.add(rows[i]) as *const f64, starts[i], z)
                    };
                    vrho = _mm256_add_pd(vrho, fv);
                    if c[0] != 0.0 {
                        vmx = _mm256_fmadd_pd(fv, _mm256_set1_pd(c[0]), vmx);
                    }
                    if c[1] != 0.0 {
                        vmy = _mm256_fmadd_pd(fv, _mm256_set1_pd(c[1]), vmy);
                    }
                    if c[2] != 0.0 {
                        vmz = _mm256_fmadd_pd(fv, _mm256_set1_pd(c[2]), vmz);
                    }
                }
                let vinv = _mm256_div_pd(v_one, vrho);
                if O::FORCED {
                    vmx = _mm256_add_pd(vmx, _mm256_set1_pd(hg[0]));
                    vmy = _mm256_add_pd(vmy, _mm256_set1_pd(hg[1]));
                    vmz = _mm256_add_pd(vmz, _mm256_set1_pd(hg[2]));
                }
                let ux = _mm256_mul_pd(vmx, vinv);
                let uy = _mm256_mul_pd(vmy, vinv);
                let uz = _mm256_mul_pd(vmz, vinv);
                let u2 = _mm256_fmadd_pd(ux, ux, _mm256_fmadd_pd(uy, uy, _mm256_mul_pd(uz, uz)));
                let ugv = if O::FORCED {
                    _mm256_fmadd_pd(
                        ux,
                        _mm256_set1_pd(g[0]),
                        _mm256_fmadd_pd(
                            uy,
                            _mm256_set1_pd(g[1]),
                            _mm256_mul_pd(uz, _mm256_set1_pd(g[2])),
                        ),
                    )
                } else {
                    _mm256_setzero_pd()
                };
                _mm256_storeu_pd(rho.as_mut_ptr().add(z), vrho);
                _mm256_storeu_pd(vux.as_mut_ptr().add(z), ux);
                _mm256_storeu_pd(vuy.as_mut_ptr().add(z), uy);
                _mm256_storeu_pd(vuz.as_mut_ptr().add(z), uz);
                _mm256_storeu_pd(vu2.as_mut_ptr().add(z), u2);
                _mm256_storeu_pd(vug.as_mut_ptr().add(z), ugv);
            }};
        }

        let mut z = 0usize;
        while z < mid_lo {
            moment_group!(z, false);
            z += LANES;
        }
        while z < mid_hi {
            moment_group!(z, true);
            z += LANES;
        }
        while z < vec_end {
            moment_group!(z, false);
            z += LANES;
        }
        // Scalar tail for the moment pass (reciprocal form, as in `simd`).
        while z < blk {
            let mut r = 0.0;
            let mut m = [0.0f64; 3];
            for i in 0..q {
                let c = oc.cw[i];
                let mut t = starts[i] + z;
                if t >= nz {
                    t -= nz;
                }
                let fv = *base_ptr.add(rows[i] + t);
                r += fv;
                m[0] += fv * c[0];
                m[1] += fv * c[1];
                m[2] += fv * c[2];
            }
            let inv = 1.0 / r;
            let u = if O::FORCED {
                [
                    (m[0] + hg[0]) * inv,
                    (m[1] + hg[1]) * inv,
                    (m[2] + hg[2]) * inv,
                ]
            } else {
                [m[0] * inv, m[1] * inv, m[2] * inv]
            };
            rho[z] = r;
            vux[z] = u[0];
            vuy[z] = u[1];
            vuz[z] = u[2];
            vu2[z] = u[0] * u[0] + u[1] * u[1] + u[2] * u[2];
            vug[z] = u[0] * g[0] + u[1] * g[1] + u[2] * g[2];
            z += 1;
        }

        // Relax pass in velocity pairs, cross-storing through the rotation
        // (identical per-lane operation sequence to [`even_block_avx2`]).
        // `relax_vec_m!` takes the lane group's moment vectors as operands
        // so the z-outer interior loop can load them once per group.
        macro_rules! relax_vec_m {
            ($c:expr, $i:expr, $fv:expr, $ux:expr, $uy:expr, $uz:expr, $u2:expr, $vrho:expr,
             $ug:expr) => {{
                let c = $c;
                let ux = $ux;
                let uy = $uy;
                let uz = $uz;
                let u2 = $u2;
                let vrho = $vrho;
                let mut vxi = _mm256_setzero_pd();
                if c[0] != 0.0 {
                    vxi = _mm256_fmadd_pd(_mm256_set1_pd(c[0]), ux, vxi);
                }
                if c[1] != 0.0 {
                    vxi = _mm256_fmadd_pd(_mm256_set1_pd(c[1]), uy, vxi);
                }
                if c[2] != 0.0 {
                    vxi = _mm256_fmadd_pd(_mm256_set1_pd(c[2]), uz, vxi);
                }
                let mut vpoly = _mm256_fmadd_pd(vxi, v_inv_cs2, v_one);
                vpoly = _mm256_fmadd_pd(_mm256_mul_pd(vxi, vxi), v_inv_2cs4, vpoly);
                vpoly = _mm256_fnmadd_pd(u2, v_inv_2cs2, vpoly);
                if THIRD {
                    let t = _mm256_fnmadd_pd(v_3cs2, u2, _mm256_mul_pd(vxi, vxi));
                    vpoly = _mm256_fmadd_pd(_mm256_mul_pd(vxi, t), v_inv_6cs6, vpoly);
                }
                let vfeq = _mm256_mul_pd(_mm256_mul_pd(_mm256_set1_pd(c[3]), vrho), vpoly);
                let fv = $fv;
                let mut out = _mm256_fmadd_pd(v_omega, _mm256_sub_pd(vfeq, fv), fv);
                if O::FORCED {
                    let ugv = $ug;
                    let vs = _mm256_fmadd_pd(
                        _mm256_set1_pd(oc.sc[$i]),
                        vxi,
                        _mm256_fnmadd_pd(_mm256_set1_pd(oc.sb[$i]), ugv, _mm256_set1_pd(oc.sa[$i])),
                    );
                    out = _mm256_add_pd(out, vs);
                }
                out
            }};
        }
        macro_rules! relax_vec {
            ($c:expr, $i:expr, $fv:expr, $z:expr) => {{
                let mux = _mm256_loadu_pd(vux.as_ptr().add($z));
                let muy = _mm256_loadu_pd(vuy.as_ptr().add($z));
                let muz = _mm256_loadu_pd(vuz.as_ptr().add($z));
                let mu2 = _mm256_loadu_pd(vu2.as_ptr().add($z));
                let mrho = _mm256_loadu_pd(rho.as_ptr().add($z));
                let mug = if O::FORCED {
                    _mm256_loadu_pd(vug.as_ptr().add($z))
                } else {
                    _mm256_setzero_pd()
                };
                relax_vec_m!($c, $i, $fv, mux, muy, muz, mu2, mrho, mug)
            }};
        }

        // Interior fast range: z-outer / pair-inner. One load of the six
        // moment vectors feeds every velocity pair of the lane group while
        // they are hot in registers, and the group's Q row touches cluster
        // in time instead of being strided across Q separate row sweeps.
        // Bitwise-neutral: each (velocity, z) slot is read and written by
        // exactly one pair, so the loop interchange permutes independent
        // lane-group updates without reassociating any arithmetic.
        let mut z = mid_lo;
        while z < mid_hi {
            let mux = _mm256_loadu_pd(vux.as_ptr().add(z));
            let muy = _mm256_loadu_pd(vuy.as_ptr().add(z));
            let muz = _mm256_loadu_pd(vuz.as_ptr().add(z));
            let mu2 = _mm256_loadu_pd(vu2.as_ptr().add(z));
            let mrho = _mm256_loadu_pd(rho.as_ptr().add(z));
            let mug = if O::FORCED {
                _mm256_loadu_pd(vug.as_ptr().add(z))
            } else {
                _mm256_setzero_pd()
            };
            // Regular (write-back) stores on purpose: this order touches one
            // 32-byte group in each of ~Q distinct rows per iteration, so
            // `_mm256_stream_pd` would spread partial lines across more
            // write-combining buffers than the core has and flush them
            // half-full — measured as a double-digit MFlup/s loss at Q=19.
            for i in 0..q {
                let o = oc.opp[i];
                if o < i {
                    continue; // pair already done
                }
                let fv_i = _mm256_loadu_pd(fp[i].add(z));
                if o == i {
                    let out = relax_vec_m!(oc.cw[i], i, fv_i, mux, muy, muz, mu2, mrho, mug);
                    _mm256_storeu_pd((fp[i] as *mut f64).add(z), out);
                } else {
                    let fv_o = _mm256_loadu_pd(fp[o].add(z));
                    let out_i = relax_vec_m!(oc.cw[i], i, fv_i, mux, muy, muz, mu2, mrho, mug);
                    let out_o = relax_vec_m!(oc.cw[o], o, fv_o, mux, muy, muz, mu2, mrho, mug);
                    _mm256_storeu_pd((fp[o] as *mut f64).add(z), out_i);
                    _mm256_storeu_pd((fp[i] as *mut f64).add(z), out_o);
                }
            }
            z += LANES;
        }

        for i in 0..q {
            let o = oc.opp[i];
            if o < i {
                continue; // pair already done
            }
            let pi = base_ptr.add(rows[i]);
            let si = starts[i];
            let ci = oc.cw[i];
            if o == i {
                // Self-opposite (rest velocity): unshifted, in place. The
                // interior groups were done by the z-outer pass above.
                let mut z = 0usize;
                while z < mid_lo {
                    let out = relax_vec!(ci, i, load4_rot!(pi as *const f64, si, z), z);
                    store4_rot!(pi, si, z, out, nt);
                    z += LANES;
                }
                z = mid_hi;
                while z < vec_end {
                    let out = relax_vec!(ci, i, load4_rot!(pi as *const f64, si, z), z);
                    store4_rot!(pi, si, z, out, nt);
                    z += LANES;
                }
                while z < blk {
                    let mut t = si + z;
                    if t >= nz {
                        t -= nz;
                    }
                    let fv = *pi.add(t);
                    *pi.add(t) = relax_one::<THIRD, O>(
                        k, oc, i, omega, rho[z], vux[z], vuy[z], vuz[z], vu2[z], vug[z], fv,
                    );
                    z += 1;
                }
            } else {
                let po = base_ptr.add(rows[o]);
                let so = starts[o];
                let co = oc.cw[o];
                let mut z = 0usize;
                while z < mid_lo {
                    let out_i = relax_vec!(ci, i, load4_rot!(pi as *const f64, si, z), z);
                    let out_o = relax_vec!(co, o, load4_rot!(po as *const f64, so, z), z);
                    store4_rot!(po, so, z, out_i, nt);
                    store4_rot!(pi, si, z, out_o, nt);
                    z += LANES;
                }
                // Interior groups were done by the z-outer pass above.
                z = mid_hi;
                while z < vec_end {
                    let out_i = relax_vec!(ci, i, load4_rot!(pi as *const f64, si, z), z);
                    let out_o = relax_vec!(co, o, load4_rot!(po as *const f64, so, z), z);
                    store4_rot!(po, so, z, out_i, nt);
                    store4_rot!(pi, si, z, out_o, nt);
                    z += LANES;
                }
                while z < blk {
                    let mut ti_idx = si + z;
                    if ti_idx >= nz {
                        ti_idx -= nz;
                    }
                    let mut to_idx = so + z;
                    if to_idx >= nz {
                        to_idx -= nz;
                    }
                    let fi = *pi.add(ti_idx);
                    let fo = *po.add(to_idx);
                    let ti = relax_one::<THIRD, O>(
                        k, oc, i, omega, rho[z], vux[z], vuy[z], vuz[z], vu2[z], vug[z], fi,
                    );
                    let to = relax_one::<THIRD, O>(
                        k, oc, o, omega, rho[z], vux[z], vuy[z], vuz[z], vu2[z], vug[z], fo,
                    );
                    *po.add(to_idx) = ti;
                    *pi.add(ti_idx) = to;
                    z += 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::boundary::ChannelWalls;
    use crate::collision::Bgk;
    use crate::equilibrium::EqOrder;
    use crate::kernels::op::{GuoForced, PlainBgk};
    use crate::kernels::{dh, fused, OptLevel};
    use crate::lattice::LatticeKind;

    fn ctx(kind: LatticeKind) -> KernelCtx {
        let order = if kind == LatticeKind::D3Q39 {
            EqOrder::Third
        } else {
            EqOrder::Second
        };
        KernelCtx::new(kind, order, Bgk::new(0.8).unwrap())
    }

    fn random_field(q: usize, dims: Dim3, halo: usize, seed: u64) -> DistField {
        let mut f = DistField::new(q, dims, halo).unwrap();
        let mut s = seed | 1;
        for v in f.as_mut_slice() {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            *v = 0.03 + (s % 709) as f64 / 1000.0;
        }
        f
    }

    /// Swap every cell's slots by the bounce-back permutation:
    /// `out[x][i] = in[x][opp(i)]`.
    fn unswap(ctx: &KernelCtx, f: &DistField) -> DistField {
        let mut out = f.clone();
        for i in 0..ctx.lat.q() {
            let o = ctx.lat.opposite(i);
            out.slab_mut(i).copy_from_slice(f.slab(o));
        }
        out
    }

    #[test]
    fn even_step_is_the_swapped_collide() {
        // even(A)[x][opp(i)] must equal collide(A)[x][i] bitwise (scalar).
        for kind in [LatticeKind::D3Q19, LatticeKind::D3Q39] {
            let c = ctx(kind);
            let dims = Dim3::new(4, 5, 70); // straddles a z-block boundary
            let a0 = random_field(c.lat.q(), dims, 0, 11);

            let mut collided = a0.clone();
            op::collide_cells(
                &c,
                &mut collided,
                0,
                dims.nx,
                PlainBgk,
                &BoundarySpec::periodic(),
            );

            let mut aa = a0.clone();
            even_cells(
                &c,
                &mut aa,
                0,
                dims.nx,
                PlainBgk,
                &BoundarySpec::periodic(),
                AaTune::SCALAR,
            );

            let expect = unswap(&c, &collided);
            assert_eq!(aa.max_abs_diff_owned(&expect), 0.0, "{kind:?}");
        }
    }

    #[test]
    fn even_step_forced_matches_forced_collide() {
        let c = ctx(LatticeKind::D3Q19);
        let dims = Dim3::new(3, 9, 12);
        let bounds = BoundarySpec::periodic()
            .with_walls(ChannelWalls::no_slip(1))
            .with_mask(crate::boundary::SectionMask::from_fn(9, 12, |_y, z| z == 7));
        let g = [2e-5, -1e-5, 3e-5];
        let a0 = random_field(c.lat.q(), dims, 0, 17);

        let mut collided = a0.clone();
        op::collide_cells(&c, &mut collided, 0, dims.nx, GuoForced { g }, &bounds);
        // Fluid cells of `collided` hold the forced collide; wall rows and
        // masked cells are untouched there. In AA-even, wall rows
        // (bounce-back) and masked cells are *no-ops* so they keep A's
        // natural values — the swapped comparison must account for both.
        let mut aa = a0.clone();
        even_cells(
            &c,
            &mut aa,
            0,
            dims.nx,
            GuoForced { g },
            &bounds,
            AaTune::SCALAR,
        );

        let d = aa.alloc_dims();
        for i in 0..c.lat.q() {
            let o = c.lat.opposite(i);
            for x in 0..dims.nx {
                for y in 0..dims.ny {
                    for z in 0..dims.nz {
                        let lin = d.idx(x, y, z);
                        let solid = y == 0 || y == dims.ny - 1 || z == 7;
                        let want = if solid {
                            a0.slab(i)[lin] // no-op at solid cells
                        } else {
                            collided.slab(o)[lin] // swapped collide
                        };
                        assert_eq!(aa.slab(i)[lin], want, "i={i} ({x},{y},{z})");
                    }
                }
            }
        }
    }

    #[test]
    fn odd_step_is_the_streamed_fused_pass() {
        // With B the swapped post-collision state and N = unswap(B),
        // odd(B)[x][i] must equal fused(N)[x − c_i][i] (pull-stream of the
        // fused output) — bitwise in scalar.
        for kind in [LatticeKind::D3Q19, LatticeKind::D3Q39] {
            let c = ctx(kind);
            let k = c.lat.reach();
            let dims = Dim3::new(8, 7, 9);
            let b = random_field(c.lat.q(), dims, 2 * k, 23);
            let n = unswap(&c, &b);
            let tables = StreamTables::new(dims.ny, dims.nz);
            let alloc_nx = b.alloc_dims().nx;

            // Two-grid pipeline: fused pass, then a pure pull-stream.
            let mut fused_out = DistField::new(c.lat.q(), dims, 2 * k).unwrap();
            fused::stream_collide(&c, &tables, &n, &mut fused_out, k, alloc_nx - k);
            let mut expect = DistField::new(c.lat.q(), dims, 2 * k).unwrap();
            dh::stream(
                &c,
                &tables,
                &fused_out,
                &mut expect,
                2 * k,
                alloc_nx - 2 * k,
            );

            // AA odd pass in place over the same writer range.
            let mut aa = b.clone();
            odd_cells(
                &c,
                &tables,
                &mut aa,
                k,
                alloc_nx - k,
                PlainBgk,
                &BoundarySpec::periodic(),
                AaTune::SCALAR,
            );

            // Planes [2k, alloc−2k) of `aa` are complete (all writers
            // swept); compare those against the streamed fused output.
            let d = aa.alloc_dims();
            let mut max: f64 = 0.0;
            for i in 0..c.lat.q() {
                for x in 2 * k..alloc_nx - 2 * k {
                    let base = d.idx(x, 0, 0);
                    for p in 0..d.plane() {
                        max = max.max((aa.slab(i)[base + p] - expect.slab(i)[base + p]).abs());
                    }
                }
            }
            assert_eq!(max, 0.0, "{kind:?}");
        }
    }

    #[test]
    fn periodic_odd_matches_margin_odd_with_filled_halo() {
        // The wrap path must reproduce, bitwise, what the decomposed path
        // computes from periodic ghost copies and 2k ghost writer planes —
        // fluid rows, wall transforms, and masked runs alike.
        for kind in [LatticeKind::D3Q19, LatticeKind::D3Q39] {
            let c = ctx(kind);
            let q = c.lat.q();
            let k = c.lat.reach();
            let h = 2 * k;
            let dims = Dim3::new(8, 9, 11);
            let bounds = BoundarySpec::periodic()
                .with_walls(ChannelWalls {
                    low: WallKind::Moving {
                        u: [0.01, 0.0, -0.005],
                        rho: 1.0,
                    },
                    high: WallKind::Diffuse { u: [0.0; 3] },
                    layers: k,
                })
                .with_mask(crate::boundary::SectionMask::from_fn(9, 11, |_y, z| z == 4));
            let tables = StreamTables::new(dims.ny, dims.nz);
            let m0 = random_field(q, dims, h, 37);
            let da = m0.alloc_dims();
            let plane = dims.ny * dims.nz;

            // Periodic sweep on the halo-free image of the same state.
            let mut p = DistField::new(q, dims, 0).unwrap();
            let dp = p.alloc_dims();
            for i in 0..q {
                for x in 0..dims.nx {
                    let s = da.idx(x + h, 0, 0);
                    let t = dp.idx(x, 0, 0);
                    p.slab_mut(i)[t..t + plane].copy_from_slice(&m0.slab(i)[s..s + plane]);
                }
            }
            odd_cells_periodic(
                &c,
                &tables,
                &mut p,
                0,
                dims.nx,
                PlainBgk,
                &bounds,
                AaTune::SCALAR,
            );

            // Margin sweep with periodically filled ghosts, writers extended
            // k planes into them, exactly as the decomposed solver runs it.
            let mut m = m0.clone();
            for i in 0..q {
                for gx in 0..h {
                    for (dst, src) in [(gx, gx + dims.nx), (h + dims.nx + gx, h + gx)] {
                        let s = da.idx(src, 0, 0);
                        let row: Vec<f64> = m.slab(i)[s..s + plane].to_vec();
                        let t = da.idx(dst, 0, 0);
                        m.slab_mut(i)[t..t + plane].copy_from_slice(&row);
                    }
                }
            }
            odd_cells(
                &c,
                &tables,
                &mut m,
                h - k,
                h + dims.nx + k,
                PlainBgk,
                &bounds,
                AaTune::SCALAR,
            );

            for i in 0..q {
                for x in 0..dims.nx {
                    for y in 0..dims.ny {
                        for z in 0..dims.nz {
                            assert_eq!(
                                p.slab(i)[dp.idx(x, y, z)].to_bits(),
                                m.slab(i)[da.idx(x + h, y, z)].to_bits(),
                                "{kind:?} i={i} ({x},{y},{z})"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn bounce_back_rows_and_masked_cells_are_exact_noops() {
        let c = ctx(LatticeKind::D3Q19);
        let k = c.lat.reach();
        let dims = Dim3::new(6, 8, 9);
        let bounds = BoundarySpec::periodic()
            .with_walls(ChannelWalls::no_slip(k))
            .with_mask(crate::boundary::SectionMask::from_fn(8, 9, |_y, z| z >= 7));
        let tables = StreamTables::new(dims.ny, dims.nz);
        let mut f = random_field(c.lat.q(), dims, 2 * k, 31);
        let before = f.clone();
        even_cells(
            &c,
            &mut f,
            2 * k,
            2 * k + dims.nx,
            PlainBgk,
            &bounds,
            AaTune::SCALAR,
        );
        let d = f.alloc_dims();
        for i in 0..c.lat.q() {
            for x in 2 * k..2 * k + dims.nx {
                for z in 0..dims.nz {
                    for y in [0usize, dims.ny - 1] {
                        let lin = d.idx(x, y, z);
                        assert_eq!(f.slab(i)[lin], before.slab(i)[lin], "wall row");
                    }
                    if z >= 7 {
                        let lin = d.idx(x, 3, z);
                        assert_eq!(f.slab(i)[lin], before.slab(i)[lin], "masked");
                    }
                }
            }
        }
        // Odd step: wall/masked slots keep their (post-even) values too.
        let before_odd = f.clone();
        let alloc_nx = f.alloc_dims().nx;
        odd_cells(
            &c,
            &tables,
            &mut f,
            k,
            alloc_nx - k,
            PlainBgk,
            &bounds,
            AaTune::SCALAR,
        );
        // In the odd step, a slot `(y, i)` is written by writer cell
        // `y − c_i`; slots whose writer is itself a bounce-back wall cell
        // must be untouched (slots with fluid writers legitimately receive
        // the fluid populations streaming into the wall).
        for (i, cv) in c.lat.velocities().iter().enumerate() {
            for x in 2 * k + k..2 * k + dims.nx - k {
                for z in 0..dims.nz {
                    for y in [0usize, dims.ny - 1] {
                        let wy =
                            (y as isize - cv[1] as isize).rem_euclid(dims.ny as isize) as usize;
                        let writer_is_wall = wy < k || wy >= dims.ny - k;
                        if !writer_is_wall {
                            continue;
                        }
                        let lin = d.idx(x, y, z);
                        assert_eq!(
                            f.slab(i)[lin],
                            before_odd.slab(i)[lin],
                            "wall-writer slot i={i} ({x},{y},{z})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn moving_and_diffuse_walls_match_the_two_grid_transform() {
        use crate::boundary::WallKind;
        // even(A) at a moving/diffuse wall row must equal the swapped
        // BoundarySpec::apply of A, bitwise.
        let c = ctx(LatticeKind::D3Q19);
        let dims = Dim3::new(3, 8, 9);
        let bounds = BoundarySpec::periodic().with_walls(ChannelWalls {
            low: WallKind::Diffuse { u: [0.0; 3] },
            high: WallKind::Moving {
                u: [0.03, 0.0, 0.01],
                rho: 1.0,
            },
            layers: 1,
        });
        let a0 = random_field(c.lat.q(), dims, 0, 41);

        let mut two_grid = a0.clone();
        bounds.apply(&c, &mut two_grid, 0, dims.nx);

        let mut aa = a0.clone();
        even_cells(&c, &mut aa, 0, dims.nx, PlainBgk, &bounds, AaTune::SCALAR);

        let d = aa.alloc_dims();
        for i in 0..c.lat.q() {
            let o = c.lat.opposite(i);
            for x in 0..dims.nx {
                for y in [0usize, dims.ny - 1] {
                    for z in 0..dims.nz {
                        let lin = d.idx(x, y, z);
                        assert_eq!(
                            aa.slab(i)[lin],
                            two_grid.slab(o)[lin],
                            "i={i} ({x},{y},{z})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn simd_tile_matches_scalar_within_fma_tolerance() {
        if !simd::simd_available() {
            return;
        }
        for kind in [LatticeKind::D3Q19, LatticeKind::D3Q39] {
            let c = ctx(kind);
            let k = c.lat.reach();
            let dims = Dim3::new(6, 7, 11); // scalar tail
            let bounds = BoundarySpec::periodic();
            let tables = StreamTables::new(dims.ny, dims.nz);
            let g = [3e-5, 0.0, -1e-5];

            let a0 = random_field(c.lat.q(), dims, 2 * k, 53);
            let mut s = a0.clone();
            let mut v = a0.clone();
            even_cells(
                &c,
                &mut s,
                2 * k,
                2 * k + dims.nx,
                GuoForced { g },
                &bounds,
                AaTune::SCALAR,
            );
            even_cells(
                &c,
                &mut v,
                2 * k,
                2 * k + dims.nx,
                GuoForced { g },
                &bounds,
                AaTune::for_class(true),
            );
            let diff = s.max_abs_diff_owned(&v);
            assert!(diff < 1e-13, "{kind:?} even: {diff}");

            let alloc_nx = s.alloc_dims().nx;
            odd_cells(
                &c,
                &tables,
                &mut s,
                k,
                alloc_nx - k,
                GuoForced { g },
                &bounds,
                AaTune::SCALAR,
            );
            odd_cells(
                &c,
                &tables,
                &mut v,
                k,
                alloc_nx - k,
                GuoForced { g },
                &bounds,
                AaTune::for_class(true),
            );
            let diff = s.max_abs_diff_owned(&v);
            assert!(diff < 1e-12, "{kind:?} odd: {diff}");
        }
    }

    #[test]
    fn pair_conserves_mass_on_fully_wrapped_field() {
        // A halo-free single-plane-decomposition stand-in: run the pair on
        // a field whose halo planes mirror the periodic wrap, then check
        // the owned mass drift.
        let c = ctx(LatticeKind::D3Q27);
        let k = c.lat.reach();
        let dims = Dim3::new(8, 6, 6);
        let mut f = random_field(c.lat.q(), dims, 2 * k, 3);
        let d = f.alloc_dims();
        let (own_lo, own_hi) = (2 * k, 2 * k + dims.nx);
        let tables = StreamTables::new(dims.ny, dims.nz);
        let bounds = BoundarySpec::periodic();

        even_cells(
            &c,
            &mut f,
            own_lo,
            own_hi,
            PlainBgk,
            &bounds,
            AaTune::SCALAR,
        );
        // Refresh halos from the owned wrap (what the solver's exchange
        // does), then run the odd writers.
        for i in 0..c.lat.q() {
            for p in 0..2 * k {
                let left_halo = d.idx(p, 0, 0);
                let right_src = d.idx(own_hi - 2 * k + p, 0, 0);
                let row: Vec<f64> = f.slab(i)[right_src..right_src + d.plane()].to_vec();
                f.slab_mut(i)[left_halo..left_halo + d.plane()].copy_from_slice(&row);
                let right_halo = d.idx(own_hi + p, 0, 0);
                let left_src = d.idx(own_lo + p, 0, 0);
                let row: Vec<f64> = f.slab(i)[left_src..left_src + d.plane()].to_vec();
                f.slab_mut(i)[right_halo..right_halo + d.plane()].copy_from_slice(&row);
            }
        }
        let mass_mid = f.owned_mass();
        odd_cells(
            &c,
            &tables,
            &mut f,
            k,
            d.nx - k,
            PlainBgk,
            &bounds,
            AaTune::SCALAR,
        );
        let mass_after = f.owned_mass();
        // The even step conserves mass cell-locally; the odd step moves
        // mass between cells but the wrapped halo bookkeeping keeps the
        // owned total fixed.
        assert!(
            (mass_mid - mass_after).abs() < 1e-9 * mass_mid,
            "{mass_mid} vs {mass_after}"
        );
    }

    #[test]
    #[should_panic(expected = "planes of margin")]
    fn odd_step_rejects_out_of_range_sweeps() {
        let c = ctx(LatticeKind::D3Q19);
        let dims = Dim3::new(4, 7, 8);
        let tables = StreamTables::new(dims.ny, dims.nz);
        let mut f = random_field(c.lat.q(), dims, 1, 5);
        let nx = f.alloc_dims().nx;
        odd_cells(
            &c,
            &tables,
            &mut f,
            0, // must be ≥ k
            nx,
            PlainBgk,
            &BoundarySpec::periodic(),
            AaTune::SCALAR,
        );
    }

    #[test]
    fn nt_stores_are_bitwise_identical_for_both_parities() {
        // The NT path changes only *how* the destination slots are stored,
        // never the values: scalar+nt ≡ scalar (odd scatter streams) and
        // simd+nt ≡ simd (even pair stores + odd scatter stream) must be
        // exact, across walls, mask, and force.
        use crate::boundary::SectionMask;
        for kind in [LatticeKind::D3Q19, LatticeKind::D3Q39] {
            let c = ctx(kind);
            let k = c.lat.reach();
            let dims = Dim3::new(7, 9, 12);
            let bounds = BoundarySpec::periodic()
                .with_walls(ChannelWalls::no_slip(k))
                .with_mask(SectionMask::from_fn(9, 12, |_y, z| z == 5));
            let tables = StreamTables::new(dims.ny, dims.nz);
            let g = [2e-5, -1e-5, 0.0];
            let a0 = random_field(c.lat.q(), dims, 2 * k, 71);

            for simd in [false, true] {
                let plain = AaTune { simd, nt: false };
                let nt = AaTune { simd, nt: true };
                let mut a = a0.clone();
                let mut b = a0.clone();
                even_cells(
                    &c,
                    &mut a,
                    2 * k,
                    2 * k + dims.nx,
                    GuoForced { g },
                    &bounds,
                    plain,
                );
                even_cells(
                    &c,
                    &mut b,
                    2 * k,
                    2 * k + dims.nx,
                    GuoForced { g },
                    &bounds,
                    nt,
                );
                assert_eq!(a.max_abs_diff_owned(&b), 0.0, "{kind:?} even simd={simd}");

                let nx = a.alloc_dims().nx;
                odd_cells(
                    &c,
                    &tables,
                    &mut a,
                    k,
                    nx - k,
                    GuoForced { g },
                    &bounds,
                    plain,
                );
                odd_cells(&c, &tables, &mut b, k, nx - k, GuoForced { g }, &bounds, nt);
                assert_eq!(a.max_abs_diff_owned(&b), 0.0, "{kind:?} odd simd={simd}");
            }
        }
    }

    #[test]
    fn level_dispatch_covers_both_parities() {
        // The mod-level dispatchers run scalar below Simd and the AVX2 tile
        // at Simd/Fused; both must agree within FMA tolerance.
        let c = ctx(LatticeKind::D3Q19);
        let k = c.lat.reach();
        let dims = Dim3::new(6, 7, 9);
        let tables = StreamTables::new(dims.ny, dims.nz);
        let bounds = BoundarySpec::periodic();
        let a0 = random_field(c.lat.q(), dims, 2 * k, 7);
        let mut lo = a0.clone();
        let mut hi = a0.clone();
        crate::kernels::aa_even_scenario(
            OptLevel::LoBr,
            &c,
            &mut lo,
            2 * k,
            2 * k + dims.nx,
            [0.0; 3],
            &bounds,
        );
        crate::kernels::aa_even_scenario(
            OptLevel::Fused,
            &c,
            &mut hi,
            2 * k,
            2 * k + dims.nx,
            [0.0; 3],
            &bounds,
        );
        assert!(lo.max_abs_diff_owned(&hi) < 1e-13);
        let nx = lo.alloc_dims().nx;
        crate::kernels::aa_odd_scenario(
            OptLevel::LoBr,
            &c,
            &tables,
            &mut lo,
            k,
            nx - k,
            [0.0; 3],
            &bounds,
        );
        crate::kernels::aa_odd_scenario(
            OptLevel::Fused,
            &c,
            &tables,
            &mut hi,
            k,
            nx - k,
            [0.0; 3],
            &bounds,
        );
        assert!(lo.max_abs_diff_owned(&hi) < 1e-12);
    }
}
