//! AA-pattern in-place streaming — single-population storage
//! ([`crate::field::StorageMode::InPlaceAa`]).
//!
//! The two-grid ladder moves every population through a `distr`/`distr_adv`
//! double buffer; the AA pattern (Bailey et al.) keeps **one** resident
//! array `A` and alternates two access patterns, each of which touches, per
//! cell, a read set *equal to* its write set — which is what makes the
//! update safe in place and embarrassingly parallel at any granularity:
//!
//! * **even step** (first of each pair) — purely local: read the Q
//!   populations of cell `x` from their natural slots, apply the cell rule
//!   (collide, or the wall transform on solid rows), and write result `t_i`
//!   into the *opposite* slot `A[x][opp(i)]`. No neighbour access at all.
//! * **odd step** (second of the pair) — gather-swapped reads
//!   `a_i = A[x−c_i][opp(i)]`, apply the same cell rule, scatter-swapped
//!   writes `A[x+c_i][i] = t_i`. For each direction `i` the location read
//!   as `a_{opp(i)}` **is** the location written as `t_i` — so each cell
//!   touches exactly its own Q slots (`(x+c_j, j)` for all `j`, a bijection
//!   between cells and slots), reads them all before writing any, and no
//!   two cells ever share a slot. In-place, conflict-free, and bitwise
//!   deterministic under threading.
//!
//! ## Representation and two-grid correspondence
//!
//! At even time steps `A[x][i]` holds the *pre-collision arrivals*
//! `f_i(t, x)` — the pull-stream of the two-grid state: `A = S(F)` with
//! `F` the two-grid (post-collision) field and `S` the pull-stream
//! permutation. One even step later the state is the two-grid field with
//! slots reversed (`A[x][j] = F[x][opp(j)]`, no spatial shift). Because the
//! per-cell arithmetic below is shared with the two-grid kernels
//! ([`crate::kernels::op`]'s rules and constants), the scalar AA trajectory
//! is the *bitwise* streamed image of the scalar two-grid trajectory; the
//! AVX2+FMA drivers agree within FMA re-rounding, exactly like the
//! `Simd`/`Fused` rungs.
//!
//! ## Boundaries come for free
//!
//! Full-way bounce-back writes `t_i = a_{opp(i)}` — in both AA phases that
//! is a **no-op** (the value is already in the slot about to be written),
//! so bounce-back wall rows and masked solid cells are simply *skipped*.
//! Moving walls add the per-velocity momentum correction in place; diffuse
//! walls re-emit the gathered mass as wall equilibrium, identical
//! arithmetic to [`crate::boundary::BoundarySpec::apply`].
//!
//! ## Traffic
//!
//! Each step reads Q and writes Q doubles per cell in one array: `2·Q·8`
//! bytes/cell of model traffic (vs the paper's two-grid `3·Q·8`), and half
//! the resident population memory — see
//! [`crate::perf::model_bytes_per_cell`].

use crate::boundary::{BoundarySpec, WallKind};
use crate::equilibrium::{feq_i, EqOrder};
use crate::field::DistField;
use crate::index::Dim3;
use crate::kernels::op::{self, CollideOp, OpConsts};
use crate::kernels::{simd, KernelCtx, StreamTables, MAX_Q};

/// z-block for the AA gather tiles (Q×ZBA doubles on the stack, ≈20 KiB at
/// D3Q39 — the same working-set budget as the fused kernel's tile).
pub(crate) const ZBA: usize = 64;

/// One AA **even** step over planes `x ∈ [x_lo, x_hi)`: in place, per cell,
/// read-local/write-local (see module docs). The rule `op` is applied to
/// fluid cells of `bounds`; bounce-back wall rows and masked cells are
/// exact no-ops; moving/diffuse walls transform in place.
///
/// With `use_simd` the tile collide runs AVX2+FMA when the CPU has it
/// (scalar fallback); the data movement is identical either way.
pub fn even_cells<O: CollideOp>(
    ctx: &KernelCtx,
    f: &mut DistField,
    x_lo: usize,
    x_hi: usize,
    op: O,
    bounds: &BoundarySpec,
    use_simd: bool,
) {
    if x_lo >= x_hi {
        return;
    }
    let d = f.alloc_dims();
    assert!(
        x_hi <= d.nx,
        "even x-range [{x_lo}, {x_hi}) exceeds nx {}",
        d.nx
    );
    let total = f.as_slice().len();
    let slab_len = f.slab_len();
    let ptr = f.as_mut_ptr();
    let oc = OpConsts::new(ctx, &op);
    // SAFETY: exclusive &mut access to the whole field; the x-range is
    // checked above and every offset below stays inside `total`.
    unsafe {
        even_cells_raw::<O>(
            ptr, total, slab_len, ctx, &oc, bounds, d, x_lo, x_hi, use_simd,
        )
    }
}

/// One AA **odd** step over *writer* planes `x ∈ [x_lo, x_hi)`:
/// gather-swapped reads, collide/transform, scatter-swapped writes (see
/// module docs). Requires `x_lo ≥ k` and `x_hi + k ≤ nx` (the sweep reads
/// and writes up to `k` planes outside the writer range).
pub fn odd_cells<O: CollideOp>(
    ctx: &KernelCtx,
    tables: &StreamTables,
    f: &mut DistField,
    x_lo: usize,
    x_hi: usize,
    op: O,
    bounds: &BoundarySpec,
    use_simd: bool,
) {
    if x_lo >= x_hi {
        return;
    }
    check_odd_bounds(ctx, f, x_lo, x_hi);
    let d = f.alloc_dims();
    let total = f.as_slice().len();
    let slab_len = f.slab_len();
    let ptr = f.as_mut_ptr();
    let oc = OpConsts::new(ctx, &op);
    // SAFETY: exclusive &mut access; the bounds check above keeps every
    // gather/scatter plane inside the allocation.
    unsafe {
        odd_cells_raw::<O>(
            ptr, total, slab_len, ctx, &oc, tables, bounds, d, x_lo, x_hi, use_simd,
        )
    }
}

/// Hard bounds check shared by the safe odd-step entry points: the raw
/// kernels write through pointers up to `k` planes outside the writer
/// range, so an out-of-range sweep must fail loudly in release builds too.
pub(crate) fn check_odd_bounds(ctx: &KernelCtx, f: &DistField, x_lo: usize, x_hi: usize) {
    let k = ctx.lat.reach();
    let nx = f.alloc_dims().nx;
    assert!(
        x_lo >= k && x_hi + k <= nx,
        "odd writer range [{x_lo}, {x_hi}) needs k = {k} planes of margin inside nx = {nx}"
    );
}

/// Raw-pointer even step, shared with the rayon driver.
///
/// # Safety
/// `base_ptr` must point to `total = q·slab_len` initialised doubles laid
/// out as consecutive velocity slabs of a field with allocated dims `d`;
/// the caller must guarantee exclusive access to the x-planes
/// `[x_lo, x_hi)` (the even step touches no other planes).
#[allow(clippy::too_many_arguments)]
pub(crate) unsafe fn even_cells_raw<O: CollideOp>(
    base_ptr: *mut f64,
    total: usize,
    slab_len: usize,
    ctx: &KernelCtx,
    oc: &OpConsts,
    bounds: &BoundarySpec,
    d: Dim3,
    x_lo: usize,
    x_hi: usize,
    use_simd: bool,
) {
    let q = ctx.lat.q();
    let nz = d.nz;
    let mask = bounds.mask();
    let mut fq = [[0.0f64; ZBA]; MAX_Q];

    for x in x_lo..x_hi {
        for y in 0..d.ny {
            let wall = bounds.wall_row_kind(d.ny, y);
            if matches!(wall, Some(WallKind::BounceBack)) {
                continue; // AA even bounce-back is the identity
            }
            let dbase = d.idx(x, y, 0);
            if let Some(kind) = wall {
                let mut z0 = 0usize;
                while z0 < nz {
                    let blk = (nz - z0).min(ZBA);
                    for (i, line) in fq.iter_mut().enumerate().take(q) {
                        let off = i * slab_len + dbase + z0;
                        debug_assert!(off + blk <= total);
                        // SAFETY: off+blk ≤ total per the layout contract.
                        unsafe {
                            std::ptr::copy_nonoverlapping(
                                base_ptr.add(off) as *const f64,
                                line.as_mut_ptr(),
                                blk,
                            )
                        };
                    }
                    // SAFETY: same offsets as the gather above.
                    unsafe {
                        store_wall_even(
                            ctx, kind, &fq, oc, q, base_ptr, total, slab_len, dbase, z0, blk,
                        )
                    };
                    z0 += blk;
                }
                continue;
            }
            // Fluid row: masked solid cells are exact AA no-ops, so the
            // sweep simply visits the fluid z-runs (identical run logic to
            // every other boundary-aware driver).
            let mut zs = 0usize;
            while let Some((run_lo, run_hi)) = op::next_fluid_run(mask, y, nz, &mut zs) {
                let mut z0 = run_lo;
                while z0 < run_hi {
                    let blk = (run_hi - z0).min(ZBA);
                    for (i, line) in fq.iter_mut().enumerate().take(q) {
                        let off = i * slab_len + dbase + z0;
                        debug_assert!(off + blk <= total);
                        // SAFETY: off+blk ≤ total.
                        unsafe {
                            std::ptr::copy_nonoverlapping(
                                base_ptr.add(off) as *const f64,
                                line.as_mut_ptr(),
                                blk,
                            )
                        };
                    }
                    // SAFETY: tile fully initialised for 0..blk.
                    unsafe { collide_tile::<O>(ctx, oc, &mut fq, blk, use_simd) };
                    // Store t_i into the opposite slot — contiguous rows.
                    for i in 0..q {
                        let off = oc.opp[i] * slab_len + dbase + z0;
                        debug_assert!(off + blk <= total);
                        // SAFETY: off+blk ≤ total; writes stay inside this
                        // caller's exclusive x-planes.
                        unsafe {
                            std::ptr::copy_nonoverlapping(fq[i].as_ptr(), base_ptr.add(off), blk)
                        };
                    }
                    z0 += blk;
                }
            }
        }
    }
}

/// Raw-pointer odd step, shared with the rayon driver.
///
/// # Safety
/// Layout contract as for [`even_cells_raw`]; additionally
/// `x_lo ≥ k`, `x_hi + k ≤ d.nx`, and the caller must guarantee that no
/// other thread concurrently touches any slot `(x + c_i, i)` for writer
/// cells `x ∈ [x_lo, x_hi)`. Because the writer↦slot map is a bijection
/// (cell `x` owns exactly the slots `(x + c_j, j)`), partitioning writers
/// into disjoint x-ranges satisfies this even though the written *planes*
/// overlap chunk boundaries.
#[allow(clippy::too_many_arguments)]
pub(crate) unsafe fn odd_cells_raw<O: CollideOp>(
    base_ptr: *mut f64,
    total: usize,
    slab_len: usize,
    ctx: &KernelCtx,
    oc: &OpConsts,
    tables: &StreamTables,
    bounds: &BoundarySpec,
    d: Dim3,
    x_lo: usize,
    x_hi: usize,
    use_simd: bool,
) {
    let q = ctx.lat.q();
    let nz = d.nz;
    let mask = bounds.mask();
    let vel = ctx.lat.velocities().to_vec();
    let mut fq = [[0.0f64; ZBA]; MAX_Q];

    for x in x_lo..x_hi {
        for y in 0..d.ny {
            let wall = bounds.wall_row_kind(d.ny, y);
            if matches!(wall, Some(WallKind::BounceBack)) {
                continue; // AA odd bounce-back is the identity
            }
            if let Some(kind) = wall {
                let mut z0 = 0usize;
                while z0 < nz {
                    let blk = (nz - z0).min(ZBA);
                    // SAFETY: gather planes x−c are inside the allocation
                    // per the odd-bounds contract.
                    unsafe {
                        gather_swapped(
                            base_ptr, total, slab_len, &vel, oc, tables, d, q, x, y, z0, blk,
                            &mut fq,
                        )
                    };
                    // SAFETY: scatter planes x+c inside the allocation.
                    unsafe {
                        store_wall_odd(
                            ctx, kind, &fq, oc, &vel, tables, d, q, base_ptr, total, slab_len, x,
                            y, z0, blk,
                        )
                    };
                    z0 += blk;
                }
                continue;
            }
            let mut zs = 0usize;
            while let Some((run_lo, run_hi)) = op::next_fluid_run(mask, y, nz, &mut zs) {
                let mut z0 = run_lo;
                while z0 < run_hi {
                    let blk = (run_hi - z0).min(ZBA);
                    // SAFETY: as above.
                    unsafe {
                        gather_swapped(
                            base_ptr, total, slab_len, &vel, oc, tables, d, q, x, y, z0, blk,
                            &mut fq,
                        )
                    };
                    // SAFETY: tile initialised for 0..blk.
                    unsafe { collide_tile::<O>(ctx, oc, &mut fq, blk, use_simd) };
                    // Scatter-swapped store: t_i → A[x+c_i][i]. The slots
                    // written are exactly the slots gathered above (the
                    // per-cell read-set == write-set identity).
                    for (i, c) in vel.iter().enumerate().take(q) {
                        let xd = (x as isize + c[0] as isize) as usize;
                        let yd = tables.y_for(-c[1]).src(y);
                        let row = i * slab_len + d.idx(xd, yd, 0);
                        debug_assert!(row + nz <= total);
                        let start = (z0 as isize + c[2] as isize).rem_euclid(nz as isize) as usize;
                        // SAFETY: row+nz ≤ total and both segments stay
                        // inside the row.
                        unsafe { scatter_line(fq[i].as_ptr(), base_ptr.add(row), start, blk, nz) };
                    }
                    z0 += blk;
                }
            }
        }
    }
}

/// Gather the swapped arrivals of one z-block into `fq`:
/// `fq[i][j] = A[x−c_i][wrap(y−cy_i)][wrap(z0+j−cz_i)][opp(i)]`.
///
/// # Safety
/// Layout contract as for [`odd_cells_raw`]; `x ± k` must be valid planes.
#[allow(clippy::too_many_arguments)]
unsafe fn gather_swapped(
    base_ptr: *mut f64,
    total: usize,
    slab_len: usize,
    vel: &[[i32; 3]],
    oc: &OpConsts,
    tables: &StreamTables,
    d: Dim3,
    q: usize,
    x: usize,
    y: usize,
    z0: usize,
    blk: usize,
    fq: &mut [[f64; ZBA]; MAX_Q],
) {
    let nz = d.nz;
    for (i, c) in vel.iter().enumerate().take(q) {
        let xs = (x as isize - c[0] as isize) as usize;
        let ys = tables.y_for(c[1]).src(y);
        let row = oc.opp[i] * slab_len + d.idx(xs, ys, 0);
        debug_assert!(row + nz <= total);
        let start = (z0 as isize - c[2] as isize).rem_euclid(nz as isize) as usize;
        let line = fq[i].as_mut_ptr();
        // SAFETY: row+nz ≤ total; both rotate segments stay inside the row.
        unsafe {
            let src = base_ptr.add(row) as *const f64;
            if start + blk <= nz {
                std::ptr::copy_nonoverlapping(src.add(start), line, blk);
            } else {
                let first = nz - start;
                std::ptr::copy_nonoverlapping(src.add(start), line, first);
                std::ptr::copy_nonoverlapping(src, line.add(first), blk - first);
            }
        }
    }
}

/// Rotate-copy `blk` doubles from `line` into a field row of length `nz`
/// starting at (wrapped) `start`.
///
/// # Safety
/// `row_ptr` must be valid for `nz` doubles; `blk ≤ nz`.
unsafe fn scatter_line(line: *const f64, row_ptr: *mut f64, start: usize, blk: usize, nz: usize) {
    // SAFETY: both segments stay inside the row per the contract.
    unsafe {
        if start + blk <= nz {
            std::ptr::copy_nonoverlapping(line, row_ptr.add(start), blk);
        } else {
            let first = nz - start;
            std::ptr::copy_nonoverlapping(line, row_ptr.add(start), first);
            std::ptr::copy_nonoverlapping(line.add(first), row_ptr, blk - first);
        }
    }
}

/// AA even-step wall transform for one z-block of a solid row, written to
/// the *swapped* local slots: slot `m` receives `t_{opp(m)}` (bounce-back
/// rows never reach here — they are exact no-ops). Identical per-cell
/// arithmetic to [`crate::boundary::BoundarySpec::apply`].
///
/// # Safety
/// Layout contract as for [`even_cells_raw`]; `dbase + z0 + blk` within
/// every slab and inside the caller's exclusive x-planes.
#[allow(clippy::too_many_arguments)]
unsafe fn store_wall_even(
    ctx: &KernelCtx,
    kind: WallKind,
    fq: &[[f64; ZBA]; MAX_Q],
    oc: &OpConsts,
    q: usize,
    base_ptr: *mut f64,
    total: usize,
    slab_len: usize,
    dbase: usize,
    z0: usize,
    blk: usize,
) {
    let cs2 = ctx.lat.cs2();
    match kind {
        WallKind::BounceBack => unreachable!("bounce-back rows are skipped"),
        WallKind::Moving { u, rho } => {
            // Slot m ← a_m + corr_{opp(m)}: the swapped-slot image of
            // `new[i] = old[opp(i)] + corr_i`.
            for m in 0..q {
                let i = oc.opp[m];
                let c = ctx.lat.velocities()[i];
                let cu = c[0] as f64 * u[0] + c[1] as f64 * u[1] + c[2] as f64 * u[2];
                let corr = 2.0 * ctx.lat.weights()[i] * rho * cu / cs2;
                let off = m * slab_len + dbase + z0;
                debug_assert!(off + blk <= total);
                let line = &fq[m];
                for j in 0..blk {
                    // SAFETY: off+blk ≤ total per the caller's contract.
                    unsafe { *base_ptr.add(off + j) = line[j] + corr };
                }
            }
        }
        WallKind::Diffuse { u } => {
            // Arriving mass in velocity-index order (matches the two-grid
            // boundary apply), re-emitted as wall equilibrium.
            let mut mass = [0.0f64; ZBA];
            for line in fq.iter().take(q) {
                for j in 0..blk {
                    mass[j] += line[j];
                }
            }
            for m in 0..q {
                let i = oc.opp[m];
                let off = m * slab_len + dbase + z0;
                debug_assert!(off + blk <= total);
                for (j, mj) in mass.iter().enumerate().take(blk) {
                    // SAFETY: as above.
                    unsafe { *base_ptr.add(off + j) = feq_i(&ctx.lat, EqOrder::Second, i, *mj, u) };
                }
            }
        }
    }
}

/// AA odd-step wall transform for one z-block of a solid row: `t_i` from
/// the gathered swapped arrivals, scatter-stored to `A[x+c_i][i]`
/// (bounce-back rows never reach here — exact no-ops).
///
/// # Safety
/// Layout contract as for [`odd_cells_raw`]; `x ± k` valid planes.
#[allow(clippy::too_many_arguments)]
unsafe fn store_wall_odd(
    ctx: &KernelCtx,
    kind: WallKind,
    fq: &[[f64; ZBA]; MAX_Q],
    oc: &OpConsts,
    vel: &[[i32; 3]],
    tables: &StreamTables,
    d: Dim3,
    q: usize,
    base_ptr: *mut f64,
    total: usize,
    slab_len: usize,
    x: usize,
    y: usize,
    z0: usize,
    blk: usize,
) {
    let cs2 = ctx.lat.cs2();
    let nz = d.nz;
    let mut t = [0.0f64; ZBA];
    let mut mass = [0.0f64; ZBA];
    if matches!(kind, WallKind::Diffuse { .. }) {
        mass[..blk].fill(0.0);
        for line in fq.iter().take(q) {
            for j in 0..blk {
                mass[j] += line[j];
            }
        }
    }
    for (i, c) in vel.iter().enumerate().take(q) {
        match kind {
            WallKind::BounceBack => unreachable!("bounce-back rows are skipped"),
            WallKind::Moving { u, rho } => {
                let cu = c[0] as f64 * u[0] + c[1] as f64 * u[1] + c[2] as f64 * u[2];
                let corr = 2.0 * ctx.lat.weights()[i] * rho * cu / cs2;
                let line = &fq[oc.opp[i]];
                for j in 0..blk {
                    t[j] = line[j] + corr;
                }
            }
            WallKind::Diffuse { u } => {
                for (j, mj) in mass.iter().enumerate().take(blk) {
                    t[j] = feq_i(&ctx.lat, EqOrder::Second, i, *mj, u);
                }
            }
        }
        let xd = (x as isize + c[0] as isize) as usize;
        let yd = tables.y_for(-c[1]).src(y);
        let row = i * slab_len + d.idx(xd, yd, 0);
        debug_assert!(row + nz <= total);
        let start = (z0 as isize + c[2] as isize).rem_euclid(nz as isize) as usize;
        // SAFETY: row+nz ≤ total; segments inside the row.
        unsafe { scatter_line(t.as_ptr(), base_ptr.add(row), start, blk, nz) };
    }
}

/// Collide one gathered tile in place: `fq[i][j]` holds the arrivals on
/// entry and the post-rule populations `t_i` on exit. Shared by the even
/// and odd drivers, so the AA cell arithmetic exists exactly once.
///
/// # Safety
/// `fq[0..q][0..blk]` must be initialised; `blk ≤ ZBA`.
unsafe fn collide_tile<O: CollideOp>(
    ctx: &KernelCtx,
    oc: &OpConsts,
    fq: &mut [[f64; ZBA]; MAX_Q],
    blk: usize,
    use_simd: bool,
) {
    #[cfg(target_arch = "x86_64")]
    {
        if use_simd && simd::simd_available() {
            // SAFETY: feature presence checked; contract forwarded.
            unsafe {
                if ctx.third_order() {
                    collide_tile_avx2::<true, O>(ctx, oc, fq, blk);
                } else {
                    collide_tile_avx2::<false, O>(ctx, oc, fq, blk);
                }
            }
            return;
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = use_simd;
    if ctx.third_order() {
        collide_tile_scalar::<true, O>(ctx, oc, fq, blk);
    } else {
        collide_tile_scalar::<false, O>(ctx, oc, fq, blk);
    }
}

/// Scalar tile collide — the identical accumulation order and expressions
/// as the shared two-grid scalar body ([`op::collide_cells`]), so scalar AA
/// runs are bitwise the streamed image of scalar two-grid runs.
fn collide_tile_scalar<const THIRD: bool, O: CollideOp>(
    ctx: &KernelCtx,
    oc: &OpConsts,
    fq: &mut [[f64; ZBA]; MAX_Q],
    blk: usize,
) {
    let q = ctx.lat.q();
    let k = &ctx.consts;
    let omega = ctx.omega;
    let hg = oc.half_g;
    let g = oc.g;

    let mut rho = [0.0f64; ZBA];
    let mut mx = [0.0f64; ZBA];
    let mut my = [0.0f64; ZBA];
    let mut mz = [0.0f64; ZBA];
    let mut ux = [0.0f64; ZBA];
    let mut uy = [0.0f64; ZBA];
    let mut uz = [0.0f64; ZBA];
    let mut u2 = [0.0f64; ZBA];
    let mut ug = [0.0f64; ZBA];

    rho[..blk].fill(0.0);
    mx[..blk].fill(0.0);
    my[..blk].fill(0.0);
    mz[..blk].fill(0.0);
    for i in 0..q {
        let c = oc.cw[i];
        let line = &fq[i];
        for j in 0..blk {
            let fv = line[j];
            rho[j] += fv;
            mx[j] += fv * c[0];
            my[j] += fv * c[1];
            mz[j] += fv * c[2];
        }
    }
    for j in 0..blk {
        let inv = 1.0 / rho[j];
        if O::FORCED {
            ux[j] = (mx[j] + hg[0]) * inv;
            uy[j] = (my[j] + hg[1]) * inv;
            uz[j] = (mz[j] + hg[2]) * inv;
            ug[j] = ux[j] * g[0] + uy[j] * g[1] + uz[j] * g[2];
        } else {
            ux[j] = mx[j] * inv;
            uy[j] = my[j] * inv;
            uz[j] = mz[j] * inv;
        }
        u2[j] = ux[j] * ux[j] + uy[j] * uy[j] + uz[j] * uz[j];
    }
    for i in 0..q {
        let c = oc.cw[i];
        let w = c[3];
        let line = &mut fq[i];
        for j in 0..blk {
            let xi = c[0] * ux[j] + c[1] * uy[j] + c[2] * uz[j];
            let mut poly = 1.0 + xi * k.inv_cs2 + xi * xi * k.inv_2cs4 - u2[j] * k.inv_2cs2;
            if THIRD {
                poly += xi * (xi * xi - 3.0 * k.cs2 * u2[j]) * k.inv_6cs6;
            }
            let feq = w * rho[j] * poly;
            let fv = line[j];
            let mut next = fv + omega * (feq - fv);
            if O::FORCED {
                next += oc.sa[i] - oc.sb[i] * ug[j] + oc.sc[i] * xi;
            }
            line[j] = next;
        }
    }
}

/// AVX2+FMA tile collide: four z-cells per lane group, the same vector
/// recipe as the `Simd` rung's collide (moment fmadds, one vector
/// reciprocal via division, equilibrium polynomial, two extra fmas for the
/// Guo source), with a scalar tail in reciprocal form.
///
/// # Safety
/// Caller must ensure AVX2+FMA are available; `fq[0..q][0..blk]`
/// initialised, `blk ≤ ZBA`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn collide_tile_avx2<const THIRD: bool, O: CollideOp>(
    ctx: &KernelCtx,
    oc: &OpConsts,
    fq: &mut [[f64; ZBA]; MAX_Q],
    blk: usize,
) {
    use std::arch::x86_64::*;

    const LANES: usize = 4;
    let q = ctx.lat.q();
    let k = &ctx.consts;
    let omega = ctx.omega;
    let hg = oc.half_g;
    let g = oc.g;

    let mut rho = [0.0f64; ZBA];
    let mut vux = [0.0f64; ZBA];
    let mut vuy = [0.0f64; ZBA];
    let mut vuz = [0.0f64; ZBA];
    let mut vu2 = [0.0f64; ZBA];
    let mut vug = [0.0f64; ZBA];

    // SAFETY: every load/store below is within the first `blk ≤ ZBA`
    // doubles of a tile row or moment array.
    unsafe {
        let v_one = _mm256_set1_pd(1.0);
        let v_omega = _mm256_set1_pd(omega);
        let v_inv_cs2 = _mm256_set1_pd(k.inv_cs2);
        let v_inv_2cs4 = _mm256_set1_pd(k.inv_2cs4);
        let v_inv_2cs2 = _mm256_set1_pd(k.inv_2cs2);
        let v_inv_6cs6 = _mm256_set1_pd(k.inv_6cs6);
        let v_3cs2 = _mm256_set1_pd(3.0 * k.cs2);

        let vec_end = blk - blk % LANES;
        let mut z = 0usize;
        while z < vec_end {
            let mut vrho = _mm256_setzero_pd();
            let mut vmx = _mm256_setzero_pd();
            let mut vmy = _mm256_setzero_pd();
            let mut vmz = _mm256_setzero_pd();
            for i in 0..q {
                let c = oc.cw[i];
                let fv = _mm256_loadu_pd(fq[i].as_ptr().add(z));
                vrho = _mm256_add_pd(vrho, fv);
                if c[0] != 0.0 {
                    vmx = _mm256_fmadd_pd(fv, _mm256_set1_pd(c[0]), vmx);
                }
                if c[1] != 0.0 {
                    vmy = _mm256_fmadd_pd(fv, _mm256_set1_pd(c[1]), vmy);
                }
                if c[2] != 0.0 {
                    vmz = _mm256_fmadd_pd(fv, _mm256_set1_pd(c[2]), vmz);
                }
            }
            let vinv = _mm256_div_pd(v_one, vrho);
            if O::FORCED {
                vmx = _mm256_add_pd(vmx, _mm256_set1_pd(hg[0]));
                vmy = _mm256_add_pd(vmy, _mm256_set1_pd(hg[1]));
                vmz = _mm256_add_pd(vmz, _mm256_set1_pd(hg[2]));
            }
            let ux = _mm256_mul_pd(vmx, vinv);
            let uy = _mm256_mul_pd(vmy, vinv);
            let uz = _mm256_mul_pd(vmz, vinv);
            let u2 = _mm256_fmadd_pd(ux, ux, _mm256_fmadd_pd(uy, uy, _mm256_mul_pd(uz, uz)));
            let ugv = if O::FORCED {
                _mm256_fmadd_pd(
                    ux,
                    _mm256_set1_pd(g[0]),
                    _mm256_fmadd_pd(
                        uy,
                        _mm256_set1_pd(g[1]),
                        _mm256_mul_pd(uz, _mm256_set1_pd(g[2])),
                    ),
                )
            } else {
                _mm256_setzero_pd()
            };
            _mm256_storeu_pd(rho.as_mut_ptr().add(z), vrho);
            _mm256_storeu_pd(vux.as_mut_ptr().add(z), ux);
            _mm256_storeu_pd(vuy.as_mut_ptr().add(z), uy);
            _mm256_storeu_pd(vuz.as_mut_ptr().add(z), uz);
            _mm256_storeu_pd(vu2.as_mut_ptr().add(z), u2);
            _mm256_storeu_pd(vug.as_mut_ptr().add(z), ugv);
            z += LANES;
        }
        // Scalar tail for the moment pass (reciprocal form, as in `simd`).
        while z < blk {
            let mut r = 0.0;
            let mut m = [0.0f64; 3];
            for i in 0..q {
                let c = oc.cw[i];
                let fv = fq[i][z];
                r += fv;
                m[0] += fv * c[0];
                m[1] += fv * c[1];
                m[2] += fv * c[2];
            }
            let inv = 1.0 / r;
            let u = if O::FORCED {
                [
                    (m[0] + hg[0]) * inv,
                    (m[1] + hg[1]) * inv,
                    (m[2] + hg[2]) * inv,
                ]
            } else {
                [m[0] * inv, m[1] * inv, m[2] * inv]
            };
            rho[z] = r;
            vux[z] = u[0];
            vuy[z] = u[1];
            vuz[z] = u[2];
            vu2[z] = u[0] * u[0] + u[1] * u[1] + u[2] * u[2];
            vug[z] = u[0] * g[0] + u[1] * g[1] + u[2] * g[2];
            z += 1;
        }

        // Relax pass: vector main + scalar tail, writing back into the tile.
        for i in 0..q {
            let c = oc.cw[i];
            let line = fq[i].as_mut_ptr();
            let mut z = 0usize;
            while z < vec_end {
                let ux = _mm256_loadu_pd(vux.as_ptr().add(z));
                let uy = _mm256_loadu_pd(vuy.as_ptr().add(z));
                let uz = _mm256_loadu_pd(vuz.as_ptr().add(z));
                let u2 = _mm256_loadu_pd(vu2.as_ptr().add(z));
                let vrho = _mm256_loadu_pd(rho.as_ptr().add(z));
                let mut vxi = _mm256_setzero_pd();
                if c[0] != 0.0 {
                    vxi = _mm256_fmadd_pd(_mm256_set1_pd(c[0]), ux, vxi);
                }
                if c[1] != 0.0 {
                    vxi = _mm256_fmadd_pd(_mm256_set1_pd(c[1]), uy, vxi);
                }
                if c[2] != 0.0 {
                    vxi = _mm256_fmadd_pd(_mm256_set1_pd(c[2]), uz, vxi);
                }
                let mut vpoly = _mm256_fmadd_pd(vxi, v_inv_cs2, v_one);
                vpoly = _mm256_fmadd_pd(_mm256_mul_pd(vxi, vxi), v_inv_2cs4, vpoly);
                vpoly = _mm256_fnmadd_pd(u2, v_inv_2cs2, vpoly);
                if THIRD {
                    let t = _mm256_fnmadd_pd(v_3cs2, u2, _mm256_mul_pd(vxi, vxi));
                    vpoly = _mm256_fmadd_pd(_mm256_mul_pd(vxi, t), v_inv_6cs6, vpoly);
                }
                let vfeq = _mm256_mul_pd(_mm256_mul_pd(_mm256_set1_pd(c[3]), vrho), vpoly);
                let fv = _mm256_loadu_pd(line.add(z));
                let mut out = _mm256_fmadd_pd(v_omega, _mm256_sub_pd(vfeq, fv), fv);
                if O::FORCED {
                    let ugv = _mm256_loadu_pd(vug.as_ptr().add(z));
                    let vs = _mm256_fmadd_pd(
                        _mm256_set1_pd(oc.sc[i]),
                        vxi,
                        _mm256_fnmadd_pd(_mm256_set1_pd(oc.sb[i]), ugv, _mm256_set1_pd(oc.sa[i])),
                    );
                    out = _mm256_add_pd(out, vs);
                }
                _mm256_storeu_pd(line.add(z), out);
                z += LANES;
            }
            while z < blk {
                let xi = c[0] * vux[z] + c[1] * vuy[z] + c[2] * vuz[z];
                let mut poly = 1.0 + xi * k.inv_cs2 + xi * xi * k.inv_2cs4 - vu2[z] * k.inv_2cs2;
                if THIRD {
                    poly += xi * (xi * xi - 3.0 * k.cs2 * vu2[z]) * k.inv_6cs6;
                }
                let feq = c[3] * rho[z] * poly;
                let fv = *line.add(z);
                let mut next = fv + omega * (feq - fv);
                if O::FORCED {
                    next += oc.sa[i] - oc.sb[i] * vug[z] + oc.sc[i] * xi;
                }
                *line.add(z) = next;
                z += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::boundary::ChannelWalls;
    use crate::collision::Bgk;
    use crate::equilibrium::EqOrder;
    use crate::kernels::op::{GuoForced, PlainBgk};
    use crate::kernels::{dh, fused, OptLevel};
    use crate::lattice::LatticeKind;

    fn ctx(kind: LatticeKind) -> KernelCtx {
        let order = if kind == LatticeKind::D3Q39 {
            EqOrder::Third
        } else {
            EqOrder::Second
        };
        KernelCtx::new(kind, order, Bgk::new(0.8).unwrap())
    }

    fn random_field(q: usize, dims: Dim3, halo: usize, seed: u64) -> DistField {
        let mut f = DistField::new(q, dims, halo).unwrap();
        let mut s = seed | 1;
        for v in f.as_mut_slice() {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            *v = 0.03 + (s % 709) as f64 / 1000.0;
        }
        f
    }

    /// Swap every cell's slots by the bounce-back permutation:
    /// `out[x][i] = in[x][opp(i)]`.
    fn unswap(ctx: &KernelCtx, f: &DistField) -> DistField {
        let mut out = f.clone();
        for i in 0..ctx.lat.q() {
            let o = ctx.lat.opposite(i);
            out.slab_mut(i).copy_from_slice(f.slab(o));
        }
        out
    }

    #[test]
    fn even_step_is_the_swapped_collide() {
        // even(A)[x][opp(i)] must equal collide(A)[x][i] bitwise (scalar).
        for kind in [LatticeKind::D3Q19, LatticeKind::D3Q39] {
            let c = ctx(kind);
            let dims = Dim3::new(4, 5, 70); // straddles a z-block boundary
            let a0 = random_field(c.lat.q(), dims, 0, 11);

            let mut collided = a0.clone();
            op::collide_cells(
                &c,
                &mut collided,
                0,
                dims.nx,
                PlainBgk,
                &BoundarySpec::periodic(),
            );

            let mut aa = a0.clone();
            even_cells(
                &c,
                &mut aa,
                0,
                dims.nx,
                PlainBgk,
                &BoundarySpec::periodic(),
                false,
            );

            let expect = unswap(&c, &collided);
            assert_eq!(aa.max_abs_diff_owned(&expect), 0.0, "{kind:?}");
        }
    }

    #[test]
    fn even_step_forced_matches_forced_collide() {
        let c = ctx(LatticeKind::D3Q19);
        let dims = Dim3::new(3, 9, 12);
        let bounds = BoundarySpec::periodic()
            .with_walls(ChannelWalls::no_slip(1))
            .with_mask(crate::boundary::SectionMask::from_fn(9, 12, |_y, z| z == 7));
        let g = [2e-5, -1e-5, 3e-5];
        let a0 = random_field(c.lat.q(), dims, 0, 17);

        let mut collided = a0.clone();
        op::collide_cells(&c, &mut collided, 0, dims.nx, GuoForced { g }, &bounds);
        // Fluid cells of `collided` hold the forced collide; wall rows and
        // masked cells are untouched there. In AA-even, wall rows
        // (bounce-back) and masked cells are *no-ops* so they keep A's
        // natural values — the swapped comparison must account for both.
        let mut aa = a0.clone();
        even_cells(&c, &mut aa, 0, dims.nx, GuoForced { g }, &bounds, false);

        let d = aa.alloc_dims();
        for i in 0..c.lat.q() {
            let o = c.lat.opposite(i);
            for x in 0..dims.nx {
                for y in 0..dims.ny {
                    for z in 0..dims.nz {
                        let lin = d.idx(x, y, z);
                        let solid = y == 0 || y == dims.ny - 1 || z == 7;
                        let want = if solid {
                            a0.slab(i)[lin] // no-op at solid cells
                        } else {
                            collided.slab(o)[lin] // swapped collide
                        };
                        assert_eq!(aa.slab(i)[lin], want, "i={i} ({x},{y},{z})");
                    }
                }
            }
        }
    }

    #[test]
    fn odd_step_is_the_streamed_fused_pass() {
        // With B the swapped post-collision state and N = unswap(B),
        // odd(B)[x][i] must equal fused(N)[x − c_i][i] (pull-stream of the
        // fused output) — bitwise in scalar.
        for kind in [LatticeKind::D3Q19, LatticeKind::D3Q39] {
            let c = ctx(kind);
            let k = c.lat.reach();
            let dims = Dim3::new(8, 7, 9);
            let b = random_field(c.lat.q(), dims, 2 * k, 23);
            let n = unswap(&c, &b);
            let tables = StreamTables::new(dims.ny, dims.nz);
            let alloc_nx = b.alloc_dims().nx;

            // Two-grid pipeline: fused pass, then a pure pull-stream.
            let mut fused_out = DistField::new(c.lat.q(), dims, 2 * k).unwrap();
            fused::stream_collide(&c, &tables, &n, &mut fused_out, k, alloc_nx - k);
            let mut expect = DistField::new(c.lat.q(), dims, 2 * k).unwrap();
            dh::stream(
                &c,
                &tables,
                &fused_out,
                &mut expect,
                2 * k,
                alloc_nx - 2 * k,
            );

            // AA odd pass in place over the same writer range.
            let mut aa = b.clone();
            odd_cells(
                &c,
                &tables,
                &mut aa,
                k,
                alloc_nx - k,
                PlainBgk,
                &BoundarySpec::periodic(),
                false,
            );

            // Planes [2k, alloc−2k) of `aa` are complete (all writers
            // swept); compare those against the streamed fused output.
            let d = aa.alloc_dims();
            let mut max: f64 = 0.0;
            for i in 0..c.lat.q() {
                for x in 2 * k..alloc_nx - 2 * k {
                    let base = d.idx(x, 0, 0);
                    for p in 0..d.plane() {
                        max = max.max((aa.slab(i)[base + p] - expect.slab(i)[base + p]).abs());
                    }
                }
            }
            assert_eq!(max, 0.0, "{kind:?}");
        }
    }

    #[test]
    fn bounce_back_rows_and_masked_cells_are_exact_noops() {
        let c = ctx(LatticeKind::D3Q19);
        let k = c.lat.reach();
        let dims = Dim3::new(6, 8, 9);
        let bounds = BoundarySpec::periodic()
            .with_walls(ChannelWalls::no_slip(k))
            .with_mask(crate::boundary::SectionMask::from_fn(8, 9, |_y, z| z >= 7));
        let tables = StreamTables::new(dims.ny, dims.nz);
        let mut f = random_field(c.lat.q(), dims, 2 * k, 31);
        let before = f.clone();
        even_cells(&c, &mut f, 2 * k, 2 * k + dims.nx, PlainBgk, &bounds, false);
        let d = f.alloc_dims();
        for i in 0..c.lat.q() {
            for x in 2 * k..2 * k + dims.nx {
                for z in 0..dims.nz {
                    for y in [0usize, dims.ny - 1] {
                        let lin = d.idx(x, y, z);
                        assert_eq!(f.slab(i)[lin], before.slab(i)[lin], "wall row");
                    }
                    if z >= 7 {
                        let lin = d.idx(x, 3, z);
                        assert_eq!(f.slab(i)[lin], before.slab(i)[lin], "masked");
                    }
                }
            }
        }
        // Odd step: wall/masked slots keep their (post-even) values too.
        let before_odd = f.clone();
        let alloc_nx = f.alloc_dims().nx;
        odd_cells(
            &c,
            &tables,
            &mut f,
            k,
            alloc_nx - k,
            PlainBgk,
            &bounds,
            false,
        );
        // In the odd step, a slot `(y, i)` is written by writer cell
        // `y − c_i`; slots whose writer is itself a bounce-back wall cell
        // must be untouched (slots with fluid writers legitimately receive
        // the fluid populations streaming into the wall).
        for (i, cv) in c.lat.velocities().iter().enumerate() {
            for x in 2 * k + k..2 * k + dims.nx - k {
                for z in 0..dims.nz {
                    for y in [0usize, dims.ny - 1] {
                        let wy =
                            (y as isize - cv[1] as isize).rem_euclid(dims.ny as isize) as usize;
                        let writer_is_wall = wy < k || wy >= dims.ny - k;
                        if !writer_is_wall {
                            continue;
                        }
                        let lin = d.idx(x, y, z);
                        assert_eq!(
                            f.slab(i)[lin],
                            before_odd.slab(i)[lin],
                            "wall-writer slot i={i} ({x},{y},{z})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn moving_and_diffuse_walls_match_the_two_grid_transform() {
        use crate::boundary::WallKind;
        // even(A) at a moving/diffuse wall row must equal the swapped
        // BoundarySpec::apply of A, bitwise.
        let c = ctx(LatticeKind::D3Q19);
        let dims = Dim3::new(3, 8, 9);
        let bounds = BoundarySpec::periodic().with_walls(ChannelWalls {
            low: WallKind::Diffuse { u: [0.0; 3] },
            high: WallKind::Moving {
                u: [0.03, 0.0, 0.01],
                rho: 1.0,
            },
            layers: 1,
        });
        let a0 = random_field(c.lat.q(), dims, 0, 41);

        let mut two_grid = a0.clone();
        bounds.apply(&c, &mut two_grid, 0, dims.nx);

        let mut aa = a0.clone();
        even_cells(&c, &mut aa, 0, dims.nx, PlainBgk, &bounds, false);

        let d = aa.alloc_dims();
        for i in 0..c.lat.q() {
            let o = c.lat.opposite(i);
            for x in 0..dims.nx {
                for y in [0usize, dims.ny - 1] {
                    for z in 0..dims.nz {
                        let lin = d.idx(x, y, z);
                        assert_eq!(
                            aa.slab(i)[lin],
                            two_grid.slab(o)[lin],
                            "i={i} ({x},{y},{z})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn simd_tile_matches_scalar_within_fma_tolerance() {
        if !simd::simd_available() {
            return;
        }
        for kind in [LatticeKind::D3Q19, LatticeKind::D3Q39] {
            let c = ctx(kind);
            let k = c.lat.reach();
            let dims = Dim3::new(6, 7, 11); // scalar tail
            let bounds = BoundarySpec::periodic();
            let tables = StreamTables::new(dims.ny, dims.nz);
            let g = [3e-5, 0.0, -1e-5];

            let a0 = random_field(c.lat.q(), dims, 2 * k, 53);
            let mut s = a0.clone();
            let mut v = a0.clone();
            even_cells(
                &c,
                &mut s,
                2 * k,
                2 * k + dims.nx,
                GuoForced { g },
                &bounds,
                false,
            );
            even_cells(
                &c,
                &mut v,
                2 * k,
                2 * k + dims.nx,
                GuoForced { g },
                &bounds,
                true,
            );
            let diff = s.max_abs_diff_owned(&v);
            assert!(diff < 1e-13, "{kind:?} even: {diff}");

            let alloc_nx = s.alloc_dims().nx;
            odd_cells(
                &c,
                &tables,
                &mut s,
                k,
                alloc_nx - k,
                GuoForced { g },
                &bounds,
                false,
            );
            odd_cells(
                &c,
                &tables,
                &mut v,
                k,
                alloc_nx - k,
                GuoForced { g },
                &bounds,
                true,
            );
            let diff = s.max_abs_diff_owned(&v);
            assert!(diff < 1e-12, "{kind:?} odd: {diff}");
        }
    }

    #[test]
    fn pair_conserves_mass_on_fully_wrapped_field() {
        // A halo-free single-plane-decomposition stand-in: run the pair on
        // a field whose halo planes mirror the periodic wrap, then check
        // the owned mass drift.
        let c = ctx(LatticeKind::D3Q27);
        let k = c.lat.reach();
        let dims = Dim3::new(8, 6, 6);
        let mut f = random_field(c.lat.q(), dims, 2 * k, 3);
        let d = f.alloc_dims();
        let (own_lo, own_hi) = (2 * k, 2 * k + dims.nx);
        let tables = StreamTables::new(dims.ny, dims.nz);
        let bounds = BoundarySpec::periodic();

        even_cells(&c, &mut f, own_lo, own_hi, PlainBgk, &bounds, false);
        // Refresh halos from the owned wrap (what the solver's exchange
        // does), then run the odd writers.
        for i in 0..c.lat.q() {
            for p in 0..2 * k {
                let left_halo = d.idx(p, 0, 0);
                let right_src = d.idx(own_hi - 2 * k + p, 0, 0);
                let row: Vec<f64> = f.slab(i)[right_src..right_src + d.plane()].to_vec();
                f.slab_mut(i)[left_halo..left_halo + d.plane()].copy_from_slice(&row);
                let right_halo = d.idx(own_hi + p, 0, 0);
                let left_src = d.idx(own_lo + p, 0, 0);
                let row: Vec<f64> = f.slab(i)[left_src..left_src + d.plane()].to_vec();
                f.slab_mut(i)[right_halo..right_halo + d.plane()].copy_from_slice(&row);
            }
        }
        let mass_mid = f.owned_mass();
        odd_cells(&c, &tables, &mut f, k, d.nx - k, PlainBgk, &bounds, false);
        let mass_after = f.owned_mass();
        // The even step conserves mass cell-locally; the odd step moves
        // mass between cells but the wrapped halo bookkeeping keeps the
        // owned total fixed.
        assert!(
            (mass_mid - mass_after).abs() < 1e-9 * mass_mid,
            "{mass_mid} vs {mass_after}"
        );
    }

    #[test]
    #[should_panic(expected = "planes of margin")]
    fn odd_step_rejects_out_of_range_sweeps() {
        let c = ctx(LatticeKind::D3Q19);
        let dims = Dim3::new(4, 7, 8);
        let tables = StreamTables::new(dims.ny, dims.nz);
        let mut f = random_field(c.lat.q(), dims, 1, 5);
        let nx = f.alloc_dims().nx;
        odd_cells(
            &c,
            &tables,
            &mut f,
            0, // must be ≥ k
            nx,
            PlainBgk,
            &BoundarySpec::periodic(),
            false,
        );
    }

    #[test]
    fn level_dispatch_covers_both_parities() {
        // The mod-level dispatchers run scalar below Simd and the AVX2 tile
        // at Simd/Fused; both must agree within FMA tolerance.
        let c = ctx(LatticeKind::D3Q19);
        let k = c.lat.reach();
        let dims = Dim3::new(6, 7, 9);
        let tables = StreamTables::new(dims.ny, dims.nz);
        let bounds = BoundarySpec::periodic();
        let a0 = random_field(c.lat.q(), dims, 2 * k, 7);
        let mut lo = a0.clone();
        let mut hi = a0.clone();
        crate::kernels::aa_even_scenario(
            OptLevel::LoBr,
            &c,
            &mut lo,
            2 * k,
            2 * k + dims.nx,
            [0.0; 3],
            &bounds,
        );
        crate::kernels::aa_even_scenario(
            OptLevel::Fused,
            &c,
            &mut hi,
            2 * k,
            2 * k + dims.nx,
            [0.0; 3],
            &bounds,
        );
        assert!(lo.max_abs_diff_owned(&hi) < 1e-13);
        let nx = lo.alloc_dims().nx;
        crate::kernels::aa_odd_scenario(
            OptLevel::LoBr,
            &c,
            &tables,
            &mut lo,
            k,
            nx - k,
            [0.0; 3],
            &bounds,
        );
        crate::kernels::aa_odd_scenario(
            OptLevel::Fused,
            &c,
            &tables,
            &mut hi,
            k,
            nx - k,
            [0.0; 3],
            &bounds,
        );
        assert!(lo.max_abs_diff_owned(&hi) < 1e-12);
    }
}
