//! Rayon-parallel kernel drivers — the intra-rank threading substrate for
//! the paper's hybrid MPI/OpenMP experiments (§VI-B, Fig. 11).
//!
//! * **stream**: one task per velocity. Each task reads slab *i* of the
//!   source and owns slab *i* of the destination exclusively
//!   ([`DistField::slabs_mut`] hands out disjoint `&mut [f64]`) — fully safe.
//! * **collide**: one task per x-plane chunk, running the same line-blocked
//!   single-pass update as the serial CF/LoBr collide. Collide is purely
//!   cell-local, so tasks partitioning the x-range write disjoint offsets of
//!   every velocity slab; that disjointness is the safety argument for the
//!   one raw-pointer wrapper below (the memory-traffic-doubling alternative
//!   — a staged moment-field collide — costs ~2× on a bandwidth-bound
//!   kernel, which is exactly what this paper is about avoiding).
//! * **fused stream+collide**: one task per x-plane chunk of the
//!   *destination*, each running the single-pass fused kernel; the source is
//!   shared read-only, so only the destination needs the disjoint-chunk
//!   argument.
//!
//! The parallel collide performs the identical per-cell arithmetic in the
//! identical order as the serial DH/CF/LoBr collide, so threaded runs are
//! bit-identical to serial runs — which is what lets the Fig. 11 experiments
//! compare configurations on time alone.

use rayon::prelude::*;

use crate::boundary::BoundarySpec;
use crate::field::DistField;
use crate::kernels::op::{self, CollideOp, OpConsts, PlainBgk};
use crate::kernels::{aa, dh, fused_simd, simd, KernelCtx, StreamTables};

/// Parallel pull-stream over `x ∈ [x_lo, x_hi)` (one velocity per task),
/// using the DH rotate-copy row routine.
pub fn stream_par(
    ctx: &KernelCtx,
    tables: &StreamTables,
    src: &DistField,
    dst: &mut DistField,
    x_lo: usize,
    x_hi: usize,
) {
    let dims = src.alloc_dims();
    debug_assert!(x_lo >= ctx.lat.reach());
    debug_assert!(x_hi + ctx.lat.reach() <= dims.nx);
    let dst_slabs: Vec<&mut [f64]> = dst.slabs_mut().collect();
    dst_slabs
        .into_par_iter()
        .enumerate()
        .for_each(|(i, dst_slab)| {
            dh::stream_velocity(ctx, tables, src.slab(i), dst_slab, dims, i, x_lo, x_hi);
        });
}

/// Shareable base pointer for disjoint-x-chunk kernel tasks (used by the
/// parallel collide drivers here and in [`super::forced`]).
#[derive(Clone, Copy)]
pub(crate) struct SendPtr(pub(crate) *mut f64);
// SAFETY: tasks created from this pointer write only to x-plane ranges that
// partition [x_lo, x_hi) — enforced by `chunk_bounds` chunking at every use
// site — so no two tasks touch the same element.
unsafe impl Send for SendPtr {}
unsafe impl Sync for SendPtr {}

/// Balanced x-plane partition: chunk `c` of `chunks` over
/// `[x_lo, x_lo + planes)`. Every chunk is non-empty when
/// `chunks ≤ planes` and chunk sizes differ by at most one plane — unlike a
/// `div_ceil`-sized split, which can strand empty tail chunks (and hence
/// idle workers) whenever `planes` barely exceeds `chunks`.
pub(crate) fn chunk_bounds(x_lo: usize, planes: usize, chunks: usize, c: usize) -> (usize, usize) {
    debug_assert!(c < chunks);
    (x_lo + c * planes / chunks, x_lo + (c + 1) * planes / chunks)
}

/// Chunk count for an `[x_lo, x_hi)` sweep: a few chunks per worker for load
/// balance, never more chunks than planes.
fn chunk_count(planes: usize) -> usize {
    let threads = rayon::current_num_threads().max(1);
    (threads * 4).min(planes).max(1)
}

/// Parallel single-pass BGK collide over `x ∈ [x_lo, x_hi)`.
///
/// Bit-identical to the serial CF collide (same accumulation order, same
/// reciprocal form, same z-blocking) — the [`PlainBgk`] instantiation of the
/// shared boundary-aware driver.
pub fn collide_par(ctx: &KernelCtx, f: &mut DistField, x_lo: usize, x_hi: usize) {
    collide_cells_par(
        ctx,
        f,
        x_lo,
        x_hi,
        PlainBgk,
        &BoundarySpec::periodic(),
        false,
    );
}

/// Rayon-parallel boundary-aware collide: disjoint x-plane chunks each
/// running the rule `op` over the fluid cells of `bounds`, bit-identical to
/// the matching serial driver. With `use_simd` the chunks run the AVX2+FMA
/// kernel of [`crate::kernels::simd`] (scalar fallback when unavailable);
/// otherwise the shared scalar body of [`crate::kernels::op`].
pub fn collide_cells_par<O: CollideOp>(
    ctx: &KernelCtx,
    f: &mut DistField,
    x_lo: usize,
    x_hi: usize,
    op: O,
    bounds: &BoundarySpec,
    use_simd: bool,
) {
    let d = f.alloc_dims();
    debug_assert!(x_hi <= d.nx);
    if x_lo >= x_hi {
        return;
    }
    let slab_len = f.slab_stride();
    let total = f.as_slice().len();
    let base = SendPtr(f.as_mut_ptr());
    let oc = OpConsts::new(ctx, &op);

    let planes = x_hi - x_lo;
    let chunks = chunk_count(planes);

    (0..chunks).into_par_iter().for_each(|c| {
        let (lo, hi) = chunk_bounds(x_lo, planes, chunks, c);
        if lo >= hi {
            return;
        }
        let p = base;
        // SAFETY: [lo, hi) ranges partition [x_lo, x_hi); each task writes
        // only offsets i·slab_len + idx(x,·,·) with x ∈ [lo, hi), which are
        // disjoint between tasks; `total`/`slab_len` bound all offsets.
        unsafe {
            if use_simd {
                simd::collide_cells_raw::<O>(p.0, total, slab_len, ctx, &oc, bounds, d, lo, hi);
            } else {
                op::collide_cells_raw::<O>(p.0, total, slab_len, ctx, &oc, bounds, d, lo, hi);
            }
        }
    });
}

/// Parallel fused stream+collide over `x ∈ [x_lo, x_hi)`: the `Fused` rung's
/// threading substrate.
///
/// Tasks split the destination into disjoint x-plane chunks; `src` is shared
/// read-only (the pull-stream reads `[lo − k, hi + k)` of `src`, which may
/// overlap between tasks, but no task ever writes `src`) — a simpler safety
/// story than the in-place `collide_par`, where read and write ranges live
/// in the same field. Each task runs the full fused kernel (AVX2+FMA when
/// available), so threaded results are bit-identical to single-threaded
/// fused runs.
///
/// Halo contract as for [`fused_simd::stream_collide`]: `src` valid on
/// `[x_lo − k, x_hi + k)`.
pub fn stream_collide_par(
    ctx: &KernelCtx,
    tables: &StreamTables,
    src: &DistField,
    dst: &mut DistField,
    x_lo: usize,
    x_hi: usize,
) {
    if x_lo >= x_hi {
        return;
    }
    crate::kernels::fused::check_fused_bounds(ctx, src, dst, x_lo, x_hi);
    let total = dst.as_slice().len();
    let base = SendPtr(dst.as_mut_ptr());
    let planes = x_hi - x_lo;
    let chunks = chunk_count(planes);

    (0..chunks).into_par_iter().for_each(|c| {
        let (lo, hi) = chunk_bounds(x_lo, planes, chunks, c);
        if lo >= hi {
            return;
        }
        let p = base;
        // SAFETY: [lo, hi) ranges partition [x_lo, x_hi), which the bounds
        // check above confines to the allocation, so tasks write disjoint
        // in-bounds x-planes of `dst`; `src` is only read and never aliases
        // `dst` (distinct fields).
        unsafe { fused_simd::stream_collide_raw(ctx, tables, src, p.0, total, lo, hi) }
    });
}

/// Rayon-parallel *scenario* fused stream+collide over `x ∈ [x_lo, x_hi)`:
/// the boundary-aware single pass (wall rows transformed, masked cells
/// bounced, fluid cells collided under `op`) per disjoint destination
/// x-chunk. Bit-identical to the serial scenario fused kernel.
///
/// Halo contract as for [`fused_simd::stream_collide`].
#[allow(clippy::too_many_arguments)]
pub fn stream_collide_cells_par<O: CollideOp>(
    ctx: &KernelCtx,
    tables: &StreamTables,
    src: &DistField,
    dst: &mut DistField,
    x_lo: usize,
    x_hi: usize,
    op: O,
    bounds: &BoundarySpec,
) {
    if x_lo >= x_hi {
        return;
    }
    crate::kernels::fused::check_fused_bounds(ctx, src, dst, x_lo, x_hi);
    let total = dst.as_slice().len();
    let base = SendPtr(dst.as_mut_ptr());
    let planes = x_hi - x_lo;
    let chunks = chunk_count(planes);

    (0..chunks).into_par_iter().for_each(|c| {
        let (lo, hi) = chunk_bounds(x_lo, planes, chunks, c);
        if lo >= hi {
            return;
        }
        let p = base;
        // SAFETY: as in `stream_collide_par` — disjoint in-bounds dst
        // x-planes per task, `src` read-only and non-aliasing.
        unsafe {
            fused_simd::stream_collide_cells_raw(ctx, tables, src, p.0, total, lo, hi, op, bounds)
        }
    });
}

/// Rayon-parallel AA-pattern **even** step over `x ∈ [x_lo, x_hi)`: the
/// step is purely cell-local, so disjoint x-plane chunks partition the
/// writes exactly as in [`collide_cells_par`] — bit-identical to serial.
pub fn aa_even_cells_par<O: CollideOp>(
    ctx: &KernelCtx,
    f: &mut DistField,
    x_lo: usize,
    x_hi: usize,
    op: O,
    bounds: &BoundarySpec,
    tune: aa::AaTune,
) {
    let d = f.alloc_dims();
    assert!(
        x_hi <= d.nx,
        "even x-range [{x_lo}, {x_hi}) exceeds nx {}",
        d.nx
    );
    if x_lo >= x_hi {
        return;
    }
    let slab_len = f.slab_stride();
    let total = f.as_slice().len();
    let base = SendPtr(f.as_mut_ptr());
    let oc = OpConsts::new(ctx, &op);
    let planes = x_hi - x_lo;
    let chunks = chunk_count(planes);
    (0..chunks).into_par_iter().for_each(|c| {
        let (lo, hi) = chunk_bounds(x_lo, planes, chunks, c);
        if lo >= hi {
            return;
        }
        let p = base;
        // SAFETY: [lo, hi) ranges partition [x_lo, x_hi); the even step
        // reads and writes only planes in its own range.
        unsafe {
            aa::even_cells_raw::<O>(p.0, total, slab_len, ctx, &oc, bounds, d, lo, hi, tune);
        }
    });
}

/// Rayon-parallel AA-pattern **odd** step over writer planes
/// `x ∈ [x_lo, x_hi)`.
///
/// Unlike every other parallel driver here, the written *planes* of two
/// adjacent chunks overlap (a writer at a chunk edge scatters up to `k`
/// planes outward). The partition is still conflict-free at element
/// granularity: slot `(x + c_j, j)` belongs to writer cell `x` and to no
/// other (the AA bijection — see [`crate::kernels::aa`]), each writer reads
/// all of its slots before writing any, and writers are partitioned by
/// x-plane. Hence no slot is touched by two tasks and the result is
/// bit-identical to serial.
#[allow(clippy::too_many_arguments)]
pub fn aa_odd_cells_par<O: CollideOp>(
    ctx: &KernelCtx,
    tables: &StreamTables,
    f: &mut DistField,
    x_lo: usize,
    x_hi: usize,
    op: O,
    bounds: &BoundarySpec,
    tune: aa::AaTune,
) {
    if x_lo >= x_hi {
        return;
    }
    aa::check_odd_bounds(ctx, f, x_lo, x_hi);
    aa_odd_chunked(
        ctx,
        tables,
        f,
        x_lo,
        x_hi,
        aa::XShift::Margin,
        op,
        bounds,
        tune,
    );
}

/// Rayon-parallel [`aa::odd_cells_periodic`]: the single-rank periodic odd
/// sweep, chunked by writer plane. The writer↦slot bijection holds on the
/// torus exactly as on the open interval (each slot has one writer), so the
/// chunked sweep is conflict-free and bit-identical to serial.
#[allow(clippy::too_many_arguments)]
pub fn aa_odd_cells_periodic_par<O: CollideOp>(
    ctx: &KernelCtx,
    tables: &StreamTables,
    f: &mut DistField,
    x_lo: usize,
    x_hi: usize,
    op: O,
    bounds: &BoundarySpec,
    tune: aa::AaTune,
) {
    if x_lo >= x_hi {
        return;
    }
    let d = f.alloc_dims();
    assert!(
        x_hi <= d.nx,
        "odd writer range [{x_lo}, {x_hi}) exceeds nx {}",
        d.nx
    );
    let xw = aa::XShift::Wrap { lo: x_lo, hi: x_hi };
    aa_odd_chunked(ctx, tables, f, x_lo, x_hi, xw, op, bounds, tune);
}

/// Shared chunked odd sweep behind the margin and periodic drivers (bounds
/// already validated by the caller).
#[allow(clippy::too_many_arguments)]
fn aa_odd_chunked<O: CollideOp>(
    ctx: &KernelCtx,
    tables: &StreamTables,
    f: &mut DistField,
    x_lo: usize,
    x_hi: usize,
    xw: aa::XShift,
    op: O,
    bounds: &BoundarySpec,
    tune: aa::AaTune,
) {
    let d = f.alloc_dims();
    let slab_len = f.slab_stride();
    let total = f.as_slice().len();
    let base = SendPtr(f.as_mut_ptr());
    let oc = OpConsts::new(ctx, &op);
    let planes = x_hi - x_lo;
    let chunks = chunk_count(planes);
    (0..chunks).into_par_iter().for_each(|c| {
        let (lo, hi) = chunk_bounds(x_lo, planes, chunks, c);
        if lo >= hi {
            return;
        }
        let p = base;
        // SAFETY: writer ranges partition [x_lo, x_hi); the writer↦slot
        // bijection makes the touched slots of different tasks disjoint
        // (see the driver docs above); all offsets are bounded by the
        // caller's bounds check (margin or wrap).
        unsafe {
            aa::odd_cells_raw::<O>(
                p.0, total, slab_len, ctx, &oc, tables, bounds, d, lo, hi, xw, tune,
            );
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collision::Bgk;
    use crate::equilibrium::EqOrder;
    use crate::index::Dim3;
    use crate::lattice::LatticeKind;

    fn ctx(kind: LatticeKind) -> KernelCtx {
        let order = if kind == LatticeKind::D3Q39 {
            EqOrder::Third
        } else {
            EqOrder::Second
        };
        KernelCtx::new(kind, order, Bgk::new(0.9).unwrap())
    }

    fn random_field(q: usize, dims: Dim3, halo: usize, seed: u64) -> DistField {
        let mut f = DistField::new(q, dims, halo).unwrap();
        let mut state = seed | 1;
        for v in f.as_mut_slice() {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            *v = 0.02 + (state % 613) as f64 / 900.0;
        }
        f
    }

    #[test]
    fn parallel_stream_bitwise_equals_serial() {
        for kind in [LatticeKind::D3Q19, LatticeKind::D3Q39] {
            let c = ctx(kind);
            let k = c.lat.reach();
            let dims = Dim3::new(8, 6, 10);
            let src = random_field(c.lat.q(), dims, k, 41);
            let tables = StreamTables::new(dims.ny, dims.nz);
            let mut a = DistField::new(c.lat.q(), dims, k).unwrap();
            let mut b = DistField::new(c.lat.q(), dims, k).unwrap();
            dh::stream(&c, &tables, &src, &mut a, k, k + dims.nx);
            stream_par(&c, &tables, &src, &mut b, k, k + dims.nx);
            assert_eq!(a.max_abs_diff_owned(&b), 0.0, "{kind:?}");
        }
    }

    #[test]
    fn parallel_collide_bitwise_equals_serial_cf() {
        for kind in [LatticeKind::D3Q19, LatticeKind::D3Q39] {
            let c = ctx(kind);
            let dims = Dim3::new(11, 5, 70); // odd plane count, partial z-block
            let mut a = random_field(c.lat.q(), dims, 0, 29);
            let mut b = a.clone();
            crate::kernels::cf::collide(&c, &mut a, 0, dims.nx);
            collide_par(&c, &mut b, 0, dims.nx);
            assert_eq!(a.max_abs_diff_owned(&b), 0.0, "{kind:?}");
        }
    }

    #[test]
    fn parallel_collide_respects_x_range() {
        let c = ctx(LatticeKind::D3Q19);
        let dims = Dim3::new(6, 4, 4);
        let mut f = random_field(c.lat.q(), dims, 0, 3);
        let before = f.clone();
        collide_par(&c, &mut f, 2, 4);
        let d = f.alloc_dims();
        for i in 0..c.lat.q() {
            for x in (0..2).chain(4..6) {
                let b = d.idx(x, 0, 0);
                assert_eq!(
                    &f.slab(i)[b..b + d.plane()],
                    &before.slab(i)[b..b + d.plane()]
                );
            }
        }
    }

    #[test]
    fn chunk_bounds_partition_is_balanced_and_gapless() {
        // Adversarial combos, including the div_ceil failure shapes
        // (planes barely above chunks) and planes < chunks.
        for planes in 1usize..40 {
            for chunks in 1usize..20 {
                let mut expect = 5; // x_lo
                let (mut min_sz, mut max_sz) = (usize::MAX, 0);
                for c in 0..chunks {
                    let (lo, hi) = chunk_bounds(5, planes, chunks, c);
                    assert_eq!(lo, expect, "gap at chunk {c} ({planes}/{chunks})");
                    assert!(hi >= lo);
                    expect = hi;
                    min_sz = min_sz.min(hi - lo);
                    max_sz = max_sz.max(hi - lo);
                }
                assert_eq!(expect, 5 + planes, "coverage ({planes}/{chunks})");
                assert!(max_sz - min_sz <= 1, "imbalance ({planes}/{chunks})");
                if chunks <= planes {
                    assert!(min_sz >= 1, "empty chunk ({planes}/{chunks})");
                }
            }
        }
    }

    #[test]
    fn parallel_collide_with_fewer_planes_than_threads() {
        // Regression: planes < threads (and planes barely above the old
        // div_ceil chunk count) must still partition correctly.
        let c = ctx(LatticeKind::D3Q19);
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(8)
            .build()
            .unwrap();
        for nx in [1usize, 2, 3, 5, 9, 33] {
            let dims = Dim3::new(nx, 4, 11);
            let mut a = random_field(c.lat.q(), dims, 0, 57);
            let mut b = a.clone();
            crate::kernels::cf::collide(&c, &mut a, 0, nx);
            pool.install(|| collide_par(&c, &mut b, 0, nx));
            assert_eq!(a.max_abs_diff_owned(&b), 0.0, "nx={nx}");
        }
    }

    #[test]
    fn parallel_fused_matches_serial_fused() {
        for kind in [LatticeKind::D3Q19, LatticeKind::D3Q39] {
            let c = ctx(kind);
            let k = c.lat.reach();
            let dims = Dim3::new(9, 7, 13);
            let src = random_field(c.lat.q(), dims, k, 83);
            let tables = StreamTables::new(dims.ny, dims.nz);
            let mut serial = DistField::new(c.lat.q(), dims, k).unwrap();
            crate::kernels::fused_simd::stream_collide(
                &c,
                &tables,
                &src,
                &mut serial,
                k,
                k + dims.nx,
            );
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(5)
                .build()
                .unwrap();
            let mut par = DistField::new(c.lat.q(), dims, k).unwrap();
            pool.install(|| stream_collide_par(&c, &tables, &src, &mut par, k, k + dims.nx));
            assert_eq!(serial.max_abs_diff_owned(&par), 0.0, "{kind:?}");
        }
    }

    #[test]
    fn parallel_fused_respects_x_range_and_empty() {
        let c = ctx(LatticeKind::D3Q19);
        let dims = Dim3::new(8, 6, 8);
        let src = random_field(c.lat.q(), dims, 1, 3);
        let tables = StreamTables::new(dims.ny, dims.nz);
        let mut dst = DistField::new(c.lat.q(), dims, 1).unwrap();
        let before = dst.clone();
        stream_collide_par(&c, &tables, &src, &mut dst, 4, 4); // empty
        assert_eq!(dst.max_abs_diff_owned(&before), 0.0);
        stream_collide_par(&c, &tables, &src, &mut dst, 3, 5);
        let d = dst.alloc_dims();
        for i in 0..c.lat.q() {
            for x in (1..3).chain(5..9) {
                let b = d.idx(x, 0, 0);
                assert_eq!(
                    &dst.slab(i)[b..b + d.plane()],
                    &before.slab(i)[b..b + d.plane()],
                    "x={x}"
                );
            }
        }
    }

    #[test]
    fn parallel_aa_steps_are_bitwise_identical_to_serial() {
        use crate::boundary::ChannelWalls;
        for kind in [LatticeKind::D3Q19, LatticeKind::D3Q39] {
            let c = ctx(kind);
            let k = c.lat.reach();
            let dims = Dim3::new(9, 9, 11);
            let bounds =
                crate::boundary::BoundarySpec::periodic().with_walls(ChannelWalls::no_slip(k));
            let tables = StreamTables::new(dims.ny, dims.nz);
            let a0 = random_field(c.lat.q(), dims, 2 * k, 61);
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(5)
                .build()
                .unwrap();

            let mut serial = a0.clone();
            let mut par = a0.clone();
            let op = crate::kernels::op::GuoForced {
                g: [2e-5, 0.0, 0.0],
            };
            aa::even_cells(
                &c,
                &mut serial,
                2 * k,
                2 * k + dims.nx,
                op,
                &bounds,
                aa::AaTune::SCALAR,
            );
            pool.install(|| {
                aa_even_cells_par(
                    &c,
                    &mut par,
                    2 * k,
                    2 * k + dims.nx,
                    op,
                    &bounds,
                    aa::AaTune::SCALAR,
                )
            });
            assert_eq!(serial.max_abs_diff_owned(&par), 0.0, "{kind:?} even");

            let nx = serial.alloc_dims().nx;
            aa::odd_cells(
                &c,
                &tables,
                &mut serial,
                k,
                nx - k,
                op,
                &bounds,
                aa::AaTune::SCALAR,
            );
            pool.install(|| {
                aa_odd_cells_par(
                    &c,
                    &tables,
                    &mut par,
                    k,
                    nx - k,
                    op,
                    &bounds,
                    aa::AaTune::SCALAR,
                )
            });
            assert_eq!(serial.max_abs_diff_owned(&par), 0.0, "{kind:?} odd");
        }
    }

    #[test]
    fn parallel_collide_handles_empty_and_single_plane() {
        let c = ctx(LatticeKind::D3Q19);
        let dims = Dim3::new(4, 4, 4);
        let mut f = random_field(c.lat.q(), dims, 0, 9);
        let before = f.clone();
        collide_par(&c, &mut f, 2, 2); // empty
        assert_eq!(f.max_abs_diff_owned(&before), 0.0);
        collide_par(&c, &mut f, 1, 2); // one plane
        let mut g = before.clone();
        crate::kernels::cf::collide(&c, &mut g, 1, 2);
        assert_eq!(f.max_abs_diff_owned(&g), 0.0);
    }
}
