//! `Orig` — the naive kernels (paper Fig. 3/4 structure, pre-optimization).
//!
//! Deliberately written the way the paper describes its starting point:
//!
//! * loop nest `x → y → z → velocity` with the velocity loop *innermost*,
//!   so every population access strides across distant slabs (poor cache
//!   reuse — exactly what the DH rung later fixes);
//! * periodic wrapping decided by per-cell `if` branches (the
//!   `boundary_conditions()` call in the paper's Fig. 3 — what LoBr later
//!   eliminates);
//! * macroscopic velocity and equilibrium computed with *divisions* and no
//!   hoisted temporaries (what DH's reciprocal trick later removes);
//! * a defensive density branch in the collide loop.
//!
//! Streaming is pull-form `dst[x] ← src[x−c]`, the mirror image of the
//! paper's push — the permutation is identical (property-tested against
//! [`crate::kernels::reference`]), and pull is what the deep-halo region
//! bookkeeping of `lbm-sim` needs.

use crate::equilibrium::feq_i;
use crate::field::DistField;
use crate::kernels::{KernelCtx, MAX_Q};

/// Naive pull-stream over planes `x ∈ [x_lo, x_hi)`.
///
/// Wraps on all three axes with branches; works both on halo-free
/// single-rank fields (branches do the periodic wrap) and on halo-filled
/// decomposed fields (branches never fire for x).
pub fn stream(ctx: &KernelCtx, src: &DistField, dst: &mut DistField, x_lo: usize, x_hi: usize) {
    let d = src.alloc_dims();
    let q = ctx.lat.q();
    let vel = ctx.lat.velocities();
    let (nx, ny, nz) = (d.nx as i64, d.ny as i64, d.nz as i64);
    for x in x_lo..x_hi {
        for y in 0..d.ny {
            for z in 0..d.nz {
                let t = d.idx(x, y, z);
                for i in 0..q {
                    let c = vel[i];
                    let mut xs = x as i64 - c[0] as i64;
                    if xs < 0 {
                        xs += nx;
                    } else if xs >= nx {
                        xs -= nx;
                    }
                    let mut ys = y as i64 - c[1] as i64;
                    if ys < 0 {
                        ys += ny;
                    } else if ys >= ny {
                        ys -= ny;
                    }
                    let mut zs = z as i64 - c[2] as i64;
                    if zs < 0 {
                        zs += nz;
                    } else if zs >= nz {
                        zs -= nz;
                    }
                    let s = d.idx(xs as usize, ys as usize, zs as usize);
                    dst.slab_mut(i)[t] = src.slab(i)[s];
                }
            }
        }
    }
}

/// Naive per-cell BGK collide over planes `x ∈ [x_lo, x_hi)` (division form).
pub fn collide(ctx: &KernelCtx, f: &mut DistField, x_lo: usize, x_hi: usize) {
    let d = f.alloc_dims();
    let q = ctx.lat.q();
    let vel = ctx.lat.velocities();
    let mut cell = [0.0f64; MAX_Q];
    for x in x_lo..x_hi {
        for y in 0..d.ny {
            for z in 0..d.nz {
                let lin = d.idx(x, y, z);
                for (i, c) in cell[..q].iter_mut().enumerate() {
                    *c = f.slab(i)[lin];
                }
                // calc_rho_and_vel(), divisions and all (paper Fig. 4).
                let mut rho = 0.0;
                let mut m = [0.0f64; 3];
                for (i, fv) in cell[..q].iter().enumerate() {
                    rho += fv;
                    m[0] += fv * vel[i][0] as f64;
                    m[1] += fv * vel[i][1] as f64;
                    m[2] += fv * vel[i][2] as f64;
                }
                if rho <= 0.0 {
                    continue; // defensive branch, naive-code style
                }
                let u = [m[0] / rho, m[1] / rho, m[2] / rho];
                for (i, c) in cell[..q].iter_mut().enumerate() {
                    let fe = feq_i(&ctx.lat, ctx.order, i, rho, u);
                    *c += ctx.omega * (fe - *c);
                }
                for (i, c) in cell[..q].iter().enumerate() {
                    f.slab_mut(i)[lin] = *c;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collision::Bgk;
    use crate::equilibrium::EqOrder;
    use crate::index::Dim3;
    use crate::kernels::reference;
    use crate::lattice::LatticeKind;

    fn ctx(kind: LatticeKind) -> KernelCtx {
        let order = if kind == LatticeKind::D3Q39 {
            EqOrder::Third
        } else {
            EqOrder::Second
        };
        KernelCtx::new(kind, order, Bgk::new(0.93).unwrap())
    }

    fn random_field(q: usize, dims: Dim3, seed: u64) -> DistField {
        let mut f = DistField::new(q, dims, 0).unwrap();
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        for v in f.as_mut_slice() {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            *v = 0.05 + (state % 1000) as f64 / 2000.0;
        }
        f
    }

    #[test]
    fn pull_stream_matches_reference_push() {
        for kind in [LatticeKind::D3Q19, LatticeKind::D3Q39] {
            let c = ctx(kind);
            let dims = Dim3::new(6, 5, 7);
            let f = random_field(c.lat.q(), dims, 42);
            let mut a = DistField::new(c.lat.q(), dims, 0).unwrap();
            let mut b = DistField::new(c.lat.q(), dims, 0).unwrap();
            reference::stream_push_periodic(&c, &f, &mut a);
            stream(&c, &f, &mut b, 0, dims.nx);
            assert_eq!(a.max_abs_diff_owned(&b), 0.0, "{kind:?}");
        }
    }

    #[test]
    fn collide_matches_reference_bitwise() {
        for kind in [LatticeKind::D3Q19, LatticeKind::D3Q39] {
            let c = ctx(kind);
            let dims = Dim3::new(4, 3, 5);
            let mut a = random_field(c.lat.q(), dims, 7);
            let mut b = a.clone();
            reference::collide_periodic(&c, &mut a);
            collide(&c, &mut b, 0, dims.nx);
            assert_eq!(a.max_abs_diff_owned(&b), 0.0, "{kind:?}");
        }
    }

    #[test]
    fn partial_range_touches_only_that_range() {
        let c = ctx(LatticeKind::D3Q19);
        let dims = Dim3::new(6, 4, 4);
        let mut f = random_field(c.lat.q(), dims, 3);
        let before = f.clone();
        collide(&c, &mut f, 2, 4);
        // Planes outside [2,4) must be untouched.
        let d = f.alloc_dims();
        for i in 0..c.lat.q() {
            for x in (0..2).chain(4..6) {
                for yz in 0..d.plane() {
                    let lin = d.idx(x, 0, 0) + yz;
                    assert_eq!(f.slab(i)[lin], before.slab(i)[lin]);
                }
            }
        }
    }
}
