//! Vectorized fused stream+collide — the `Fused` rung's AVX2+FMA path.
//!
//! Same single-pass data flow as the scalar [`crate::kernels::fused`] kernel
//! (`2·Q·8` bytes/cell: one read and one write per velocity), with the
//! moment accumulation, reciprocal, equilibrium polynomial and relaxation
//! performed on 4-wide `f64` z-lanes over the gathered tile — the same
//! vectorization the paper hand-coded for the collide function (§V-G),
//! applied to the kernel shape its conclusion (§VII) asks for.
//!
//! Like the scalar variant, the kernel is generic over the cell operator
//! ([`crate::kernels::op::CollideOp`]) and boundary-aware: the Guo force is
//! broadcast into the vectorized moment accumulation (half-force shift, then
//! the hoisted source `sa_i − sb_i (u·G) + sc_i ξ_i` in the store pass), wall
//! rows store the wall transform of the gathered tile instead of colliding,
//! and masked cells are fixed up with full-way bounce-back after the vector
//! stores — so forced/walled scenarios run the full fused rung.
//!
//! The gather phase is the scalar rotate-copy (it is already a memcpy, which
//! the platform vectorizes); the tile then stays cache-resident for the two
//! vector passes. Feature detection happens at runtime; without AVX2+FMA the
//! rung falls back to the scalar fused kernel, so the crate stays portable.

use crate::boundary::BoundarySpec;
use crate::field::DistField;
use crate::kernels::fused::{self, ZBF};
use crate::kernels::op::{CollideOp, PlainBgk};
use crate::kernels::simd::simd_available;
use crate::kernels::{KernelCtx, StreamTables};

/// One fused LBM step `dst ← collide(pull(src))` over planes
/// `x ∈ [x_lo, x_hi)`, vectorized when the host supports AVX2+FMA and
/// falling back to the scalar fused kernel otherwise.
///
/// Halo contract identical to [`fused::stream_collide`]: `src` must be valid
/// on `[x_lo − k, x_hi + k)`; `src` is read-only.
pub fn stream_collide(
    ctx: &KernelCtx,
    tables: &StreamTables,
    src: &DistField,
    dst: &mut DistField,
    x_lo: usize,
    x_hi: usize,
) {
    stream_collide_cells(
        ctx,
        tables,
        src,
        dst,
        x_lo,
        x_hi,
        PlainBgk,
        &BoundarySpec::periodic(),
    );
}

/// Boundary-aware vectorized fused step: the rule `op` on the fluid cells of
/// `bounds`, the wall/mask transforms on its solid cells, in one pass.
#[allow(clippy::too_many_arguments)]
pub fn stream_collide_cells<O: CollideOp>(
    ctx: &KernelCtx,
    tables: &StreamTables,
    src: &DistField,
    dst: &mut DistField,
    x_lo: usize,
    x_hi: usize,
    op: O,
    bounds: &BoundarySpec,
) {
    fused::check_fused_bounds(ctx, src, dst, x_lo, x_hi);
    let total = dst.as_slice().len();
    let dst_ptr = dst.as_mut_ptr();
    // SAFETY: `&mut dst` grants exclusive access to all `total` doubles, and
    // the bounds check above keeps every raw write inside them.
    unsafe { stream_collide_cells_raw(ctx, tables, src, dst_ptr, total, x_lo, x_hi, op, bounds) }
}

/// Raw-destination dispatch of the plain periodic step, shared with the
/// rayon fused driver: AVX2+FMA when available, scalar fused otherwise.
///
/// # Safety
/// Same contract as [`fused::stream_collide_cells_raw`].
pub(crate) unsafe fn stream_collide_raw(
    ctx: &KernelCtx,
    tables: &StreamTables,
    src: &DistField,
    dst_ptr: *mut f64,
    total: usize,
    x_lo: usize,
    x_hi: usize,
) {
    // SAFETY: forwarded contract.
    unsafe {
        stream_collide_cells_raw(
            ctx,
            tables,
            src,
            dst_ptr,
            total,
            x_lo,
            x_hi,
            PlainBgk,
            &BoundarySpec::periodic(),
        )
    }
}

/// Raw-destination dispatch of the boundary-aware step, shared with the
/// rayon scenario driver.
///
/// # Safety
/// Same contract as [`fused::stream_collide_cells_raw`].
#[allow(clippy::too_many_arguments)]
pub(crate) unsafe fn stream_collide_cells_raw<O: CollideOp>(
    ctx: &KernelCtx,
    tables: &StreamTables,
    src: &DistField,
    dst_ptr: *mut f64,
    total: usize,
    x_lo: usize,
    x_hi: usize,
    op: O,
    bounds: &BoundarySpec,
) {
    #[cfg(target_arch = "x86_64")]
    {
        if simd_available() {
            // SAFETY: feature presence checked above; contract forwarded.
            unsafe {
                if ctx.third_order() {
                    fused_avx2::<true, O>(ctx, tables, src, dst_ptr, total, x_lo, x_hi, op, bounds);
                } else {
                    fused_avx2::<false, O>(
                        ctx, tables, src, dst_ptr, total, x_lo, x_hi, op, bounds,
                    );
                }
            }
            return;
        }
    }
    // SAFETY: contract forwarded.
    unsafe {
        fused::stream_collide_cells_raw(ctx, tables, src, dst_ptr, total, x_lo, x_hi, op, bounds)
    }
}

/// # Safety
/// Caller must ensure AVX2+FMA are available and the layout/exclusivity
/// contract of [`fused::stream_collide_cells_raw`] holds.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
#[allow(clippy::too_many_arguments)]
unsafe fn fused_avx2<const THIRD: bool, O: CollideOp>(
    ctx: &KernelCtx,
    tables: &StreamTables,
    src: &DistField,
    dst_ptr: *mut f64,
    total: usize,
    x_lo: usize,
    x_hi: usize,
    op: O,
    bounds: &BoundarySpec,
) {
    use std::arch::x86_64::*;

    use crate::kernels::op::OpConsts;
    use crate::kernels::MAX_Q;

    const LANES: usize = 4;
    let d = src.alloc_dims();
    debug_assert!(x_lo >= ctx.lat.reach());
    debug_assert!(x_hi + ctx.lat.reach() <= d.nx);
    let q = ctx.lat.q();
    let k = &ctx.consts;
    let omega = ctx.omega;
    let nz = d.nz;
    let slab_len = src.slab_stride();
    let vel = ctx.lat.velocities();
    let mask = bounds.mask();

    // The one shared per-invocation hoist: equilibrium-constant rows, the
    // bounce-back permutation, the force terms, and the Guo source
    // coefficients when forced — see `kernels::op`.
    let oc = OpConsts::new(ctx, &op);
    let g = oc.g;
    let hg = oc.half_g;

    // Gather tile plus per-lane moment scratch; everything stays L1/L2-hot.
    let mut fq = [[0.0f64; ZBF]; MAX_Q];
    let mut rho = [0.0f64; ZBF];
    let mut ux = [0.0f64; ZBF];
    let mut uy = [0.0f64; ZBF];
    let mut uz = [0.0f64; ZBF];
    let mut u2 = [0.0f64; ZBF];
    let mut ug = [0.0f64; ZBF];

    let src_data = src.as_slice();

    // SAFETY: all raw offsets below are i·slab_len + dbase + z0 + j with
    // j < blk and z0 + blk ≤ nz, hence within `total`; debug-asserted per
    // row. Tile/scratch loads index stack arrays within ZBF.
    unsafe {
        let v_one = _mm256_set1_pd(1.0);
        let v_omega = _mm256_set1_pd(omega);
        let v_inv_cs2 = _mm256_set1_pd(k.inv_cs2);
        let v_inv_2cs4 = _mm256_set1_pd(k.inv_2cs4);
        let v_inv_2cs2 = _mm256_set1_pd(k.inv_2cs2);
        let v_inv_6cs6 = _mm256_set1_pd(k.inv_6cs6);
        let v_3cs2 = _mm256_set1_pd(3.0 * k.cs2);
        let v_hg0 = _mm256_set1_pd(hg[0]);
        let v_hg1 = _mm256_set1_pd(hg[1]);
        let v_hg2 = _mm256_set1_pd(hg[2]);
        let v_g0 = _mm256_set1_pd(g[0]);
        let v_g1 = _mm256_set1_pd(g[1]);
        let v_g2 = _mm256_set1_pd(g[2]);

        // Balanced z-blocks (sizes differ by ≤ 1) instead of a short tail
        // block: with the row prefetch below hiding the gather latency, the
        // full-ZBF tile wins even for the high-Q lattices, and balanced
        // blocks keep the per-row copy overhead even across blocks.
        let nblocks = nz.div_ceil(ZBF);

        for x in x_lo..x_hi {
            for y in 0..d.ny {
                let wall = bounds.wall_row_kind(d.ny, y);
                let dbase = d.idx(x, y, 0);
                for b in 0..nblocks {
                    let z0 = b * nz / nblocks;
                    let blk = (b + 1) * nz / nblocks - z0;
                    // Round the accumulate/finalize loops up to whole lane
                    // groups: lanes in [blk, vec_end) compute garbage (rho 0
                    // → ±inf/NaN macroscopics — IEEE arithmetic on them has
                    // no penalty) and are never stored to `dst`.
                    let vec_end = blk.div_ceil(LANES) * LANES;
                    // Phase 1 — pull + accumulate: rotate-copy each
                    // velocity's shifted z-segment into the tile (at most
                    // two contiguous memcpys per row, as in the scalar
                    // fused kernel) and immediately fold the L1-hot row
                    // into the moment arrays. Interleaving keeps the tile
                    // from being traversed a second cold time — decisive
                    // for the high-Q lattices whose tile outgrows L1. Wall
                    // rows only gather: their arrivals are transformed.
                    for i in 0..q {
                        let c = vel[i];
                        let xs = (x as isize - c[0] as isize) as usize;
                        let ys = tables.y_for(c[1]).src(y);
                        let row_off = i * slab_len + d.idx(xs, ys, 0);
                        let srow = &src_data[row_off..][..nz];
                        if b == 0 {
                            // Software-prefetch this velocity's *next* y-row:
                            // the gather cycles Q short interleaved streams,
                            // which defeats the hardware streamer exactly for
                            // the high-Q lattices; one row of lookahead per
                            // stream hides the L3 latency. (Clamped in-bounds;
                            // the wrap rows it occasionally misses are noise.)
                            let mut p = row_off + nz;
                            let end = (row_off + 2 * nz).min(src_data.len());
                            while p < end {
                                _mm_prefetch::<_MM_HINT_T0>(src_data.as_ptr().add(p) as *const i8);
                                p += 8;
                            }
                            // …and this velocity's destination row, so the
                            // phase-3 store's read-for-ownership overlaps
                            // the gather instead of stalling the writes.
                            let mut p = i * slab_len + dbase;
                            let end = (p + nz).min(total);
                            while p < end {
                                _mm_prefetch::<_MM_HINT_T0>(dst_ptr.add(p) as *const i8);
                                p += 8;
                            }
                        }
                        let line = &mut fq[i];
                        let start = (z0 as isize - c[2] as isize).rem_euclid(nz as isize) as usize;
                        if start + blk <= nz {
                            line[..blk].copy_from_slice(&srow[start..start + blk]);
                        } else {
                            let first = nz - start;
                            line[..first].copy_from_slice(&srow[start..]);
                            line[first..blk].copy_from_slice(&srow[..blk - first]);
                        }
                        if wall.is_some() {
                            continue;
                        }
                        line[blk..vec_end].fill(0.0);
                        let cf = oc.cw[i];
                        let vcx = _mm256_set1_pd(cf[0]);
                        let vcy = _mm256_set1_pd(cf[1]);
                        let vcz = _mm256_set1_pd(cf[2]);
                        let first_vel = i == 0;
                        let mut j = 0;
                        while j < vec_end {
                            let fv = _mm256_loadu_pd(line.as_ptr().add(j));
                            // rho/ux/uy/uz hold the running moment sums
                            // (velocity division happens after the loop).
                            let (vr, vx, vy, vz) = if first_vel {
                                (
                                    _mm256_setzero_pd(),
                                    _mm256_setzero_pd(),
                                    _mm256_setzero_pd(),
                                    _mm256_setzero_pd(),
                                )
                            } else {
                                (
                                    _mm256_loadu_pd(rho.as_ptr().add(j)),
                                    _mm256_loadu_pd(ux.as_ptr().add(j)),
                                    _mm256_loadu_pd(uy.as_ptr().add(j)),
                                    _mm256_loadu_pd(uz.as_ptr().add(j)),
                                )
                            };
                            _mm256_storeu_pd(rho.as_mut_ptr().add(j), _mm256_add_pd(vr, fv));
                            _mm256_storeu_pd(ux.as_mut_ptr().add(j), _mm256_fmadd_pd(fv, vcx, vx));
                            _mm256_storeu_pd(uy.as_mut_ptr().add(j), _mm256_fmadd_pd(fv, vcy, vy));
                            _mm256_storeu_pd(uz.as_mut_ptr().add(j), _mm256_fmadd_pd(fv, vcz, vz));
                            j += LANES;
                        }
                    }
                    if let Some(kind) = wall {
                        // Solid wall row: store the transform of the tile —
                        // the in-pass form of the split boundary apply.
                        // SAFETY: dbase+z0+blk inside every slab, within
                        // this caller's exclusive x-planes.
                        fused::store_wall_block(
                            ctx, kind, &fq, &oc.opp, q, dst_ptr, total, slab_len, dbase, z0, blk,
                        );
                        continue;
                    }
                    // Phase 2 — finalize macroscopics: one short vector pass
                    // turning the moment sums into velocities (Guo half-force
                    // shift applied to the momentum when forced).
                    let mut j = 0;
                    while j < vec_end {
                        let vrho = _mm256_loadu_pd(rho.as_ptr().add(j));
                        let vinv = _mm256_div_pd(v_one, vrho);
                        let mut vmx = _mm256_loadu_pd(ux.as_ptr().add(j));
                        let mut vmy = _mm256_loadu_pd(uy.as_ptr().add(j));
                        let mut vmz = _mm256_loadu_pd(uz.as_ptr().add(j));
                        if O::FORCED {
                            vmx = _mm256_add_pd(vmx, v_hg0);
                            vmy = _mm256_add_pd(vmy, v_hg1);
                            vmz = _mm256_add_pd(vmz, v_hg2);
                        }
                        let vux = _mm256_mul_pd(vmx, vinv);
                        let vuy = _mm256_mul_pd(vmy, vinv);
                        let vuz = _mm256_mul_pd(vmz, vinv);
                        let vu2 = _mm256_fmadd_pd(
                            vux,
                            vux,
                            _mm256_fmadd_pd(vuy, vuy, _mm256_mul_pd(vuz, vuz)),
                        );
                        _mm256_storeu_pd(ux.as_mut_ptr().add(j), vux);
                        _mm256_storeu_pd(uy.as_mut_ptr().add(j), vuy);
                        _mm256_storeu_pd(uz.as_mut_ptr().add(j), vuz);
                        _mm256_storeu_pd(u2.as_mut_ptr().add(j), vu2);
                        if O::FORCED {
                            let vug = _mm256_fmadd_pd(
                                vux,
                                v_g0,
                                _mm256_fmadd_pd(vuy, v_g1, _mm256_mul_pd(vuz, v_g2)),
                            );
                            _mm256_storeu_pd(ug.as_mut_ptr().add(j), vug);
                        }
                        j += LANES;
                    }
                    // Phase 3 — relax + store: per velocity the broadcasts
                    // are hoisted out of the lane loop, and the row write is
                    // the step's only memory write traffic. Only whole lane
                    // groups inside `blk` are stored vectorized; the last
                    // partial group finishes scalar.
                    let store_end = blk - blk % LANES;
                    for i in 0..q {
                        let c = oc.cw[i];
                        let off = i * slab_len + dbase + z0;
                        debug_assert!(off + blk <= total);
                        let vcx = _mm256_set1_pd(c[0]);
                        let vcy = _mm256_set1_pd(c[1]);
                        let vcz = _mm256_set1_pd(c[2]);
                        let vw = _mm256_set1_pd(c[3]);
                        let mut j = 0;
                        while j < store_end {
                            let vux = _mm256_loadu_pd(ux.as_ptr().add(j));
                            let vuy = _mm256_loadu_pd(uy.as_ptr().add(j));
                            let vuz = _mm256_loadu_pd(uz.as_ptr().add(j));
                            let vu2 = _mm256_loadu_pd(u2.as_ptr().add(j));
                            let vrho = _mm256_loadu_pd(rho.as_ptr().add(j));
                            let vxi = _mm256_fmadd_pd(
                                vcx,
                                vux,
                                _mm256_fmadd_pd(vcy, vuy, _mm256_mul_pd(vcz, vuz)),
                            );
                            // poly = 1 + ξ/cs² + ξ²/(2cs⁴) − u²/(2cs²) [+3rd]
                            let mut vpoly = _mm256_fmadd_pd(vxi, v_inv_cs2, v_one);
                            vpoly = _mm256_fmadd_pd(_mm256_mul_pd(vxi, vxi), v_inv_2cs4, vpoly);
                            vpoly = _mm256_fnmadd_pd(vu2, v_inv_2cs2, vpoly);
                            if THIRD {
                                let t = _mm256_fnmadd_pd(v_3cs2, vu2, _mm256_mul_pd(vxi, vxi));
                                vpoly = _mm256_fmadd_pd(_mm256_mul_pd(vxi, t), v_inv_6cs6, vpoly);
                            }
                            let vfeq = _mm256_mul_pd(_mm256_mul_pd(vw, vrho), vpoly);
                            let fv = _mm256_loadu_pd(fq[i].as_ptr().add(j));
                            let mut out = _mm256_fmadd_pd(v_omega, _mm256_sub_pd(vfeq, fv), fv);
                            if O::FORCED {
                                // S_i = sa_i − sb_i (u·G) + sc_i ξ_i.
                                let vug = _mm256_loadu_pd(ug.as_ptr().add(j));
                                let vs = _mm256_fmadd_pd(
                                    _mm256_set1_pd(oc.sc[i]),
                                    vxi,
                                    _mm256_fnmadd_pd(
                                        _mm256_set1_pd(oc.sb[i]),
                                        vug,
                                        _mm256_set1_pd(oc.sa[i]),
                                    ),
                                );
                                out = _mm256_add_pd(out, vs);
                            }
                            _mm256_storeu_pd(dst_ptr.add(off + j), out);
                            j += LANES;
                        }
                        while j < blk {
                            let xi = c[0] * ux[j] + c[1] * uy[j] + c[2] * uz[j];
                            let mut poly =
                                1.0 + xi * k.inv_cs2 + xi * xi * k.inv_2cs4 - u2[j] * k.inv_2cs2;
                            if THIRD {
                                poly += xi * (xi * xi - 3.0 * k.cs2 * u2[j]) * k.inv_6cs6;
                            }
                            let feq = c[3] * rho[j] * poly;
                            let fv = fq[i][j];
                            let mut next = fv + omega * (feq - fv);
                            if O::FORCED {
                                next += oc.sa[i] - oc.sb[i] * ug[j] + oc.sc[i] * xi;
                            }
                            *dst_ptr.add(off + j) = next;
                            j += 1;
                        }
                    }
                    // Masked solid cells inside a fluid row: overwrite the
                    // collided garbage with the full-way bounce-back of the
                    // gathered arrivals (shared with the scalar kernel).
                    if let Some(m) = mask {
                        fused::store_masked_cells(
                            m, &fq, &oc.opp, q, dst_ptr, total, slab_len, y, dbase, z0, blk,
                        );
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::boundary::{ChannelWalls, SectionMask};
    use crate::collision::Bgk;
    use crate::equilibrium::EqOrder;
    use crate::index::Dim3;
    use crate::kernels::op::GuoForced;
    use crate::kernels::{dh, OptLevel};
    use crate::lattice::LatticeKind;

    fn ctx(kind: LatticeKind, order: EqOrder) -> KernelCtx {
        KernelCtx::new(kind, order, Bgk::new(0.8).unwrap())
    }

    fn random_field(q: usize, dims: Dim3, halo: usize, seed: u64) -> DistField {
        let mut f = DistField::new(q, dims, halo).unwrap();
        let mut s = seed | 1;
        for v in f.as_mut_slice() {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            *v = 0.03 + (s % 811) as f64 / 1100.0;
        }
        f
    }

    #[test]
    fn fused_simd_matches_split_within_fma_tolerance() {
        for (kind, order) in [
            (LatticeKind::D3Q19, EqOrder::Second),
            (LatticeKind::D3Q27, EqOrder::Second),
            (LatticeKind::D3Q39, EqOrder::Third),
        ] {
            let c = ctx(kind, order);
            let k = c.lat.reach();
            // nz = 13 forces both a tile boundary path and a scalar tail.
            let dims = Dim3::new(5, 7, 13);
            let src = random_field(c.lat.q(), dims, k, 91);
            let tables = StreamTables::new(dims.ny, dims.nz);

            let mut split = DistField::new(c.lat.q(), dims, k).unwrap();
            dh::stream(&c, &tables, &src, &mut split, k, k + dims.nx);
            crate::kernels::collide(OptLevel::Dh, &c, &mut split, k, k + dims.nx);

            let mut fused = DistField::new(c.lat.q(), dims, k).unwrap();
            stream_collide(&c, &tables, &src, &mut fused, k, k + dims.nx);

            let diff = split.max_abs_diff_owned(&fused);
            // FMA re-rounding only: a few ulps of O(1) values.
            assert!(diff < 1e-13, "{kind:?}: {diff}");
        }
    }

    #[test]
    fn fused_simd_matches_fused_scalar_closely() {
        let c = ctx(LatticeKind::D3Q39, EqOrder::Third);
        let k = c.lat.reach();
        let dims = Dim3::new(4, 7, 37);
        let src = random_field(c.lat.q(), dims, k, 17);
        let tables = StreamTables::new(dims.ny, dims.nz);
        let mut a = DistField::new(c.lat.q(), dims, k).unwrap();
        let mut b = DistField::new(c.lat.q(), dims, k).unwrap();
        fused::stream_collide(&c, &tables, &src, &mut a, k, k + dims.nx);
        stream_collide(&c, &tables, &src, &mut b, k, k + dims.nx);
        assert!(a.max_abs_diff_owned(&b) < 1e-13);
    }

    #[test]
    fn fused_simd_scenario_matches_fused_scalar_scenario_closely() {
        for (kind, order) in [
            (LatticeKind::D3Q19, EqOrder::Second),
            (LatticeKind::D3Q39, EqOrder::Third),
        ] {
            let c = ctx(kind, order);
            let k = c.lat.reach();
            let dims = Dim3::new(4, 9, 13);
            let bounds = BoundarySpec::periodic()
                .with_walls(ChannelWalls::no_slip(k))
                .with_mask(SectionMask::from_fn(9, 13, |_y, z| z >= 10));
            let op = GuoForced {
                g: [4e-5, 0.0, -1e-5],
            };
            let src = random_field(c.lat.q(), dims, k, 39);
            let tables = StreamTables::new(dims.ny, dims.nz);
            let mut a = DistField::new(c.lat.q(), dims, k).unwrap();
            let mut b = DistField::new(c.lat.q(), dims, k).unwrap();
            fused::stream_collide_cells(&c, &tables, &src, &mut a, k, k + dims.nx, op, &bounds);
            stream_collide_cells(&c, &tables, &src, &mut b, k, k + dims.nx, op, &bounds);
            let diff = a.max_abs_diff_owned(&b);
            assert!(diff < 1e-13, "{kind:?}: {diff}");
            // Wall rows and masked cells are pure copies/transforms of the
            // same gathered arrivals: bitwise equal even under FMA.
            let d = a.alloc_dims();
            for i in 0..c.lat.q() {
                for x in k..k + dims.nx {
                    for z in 0..dims.nz {
                        for y in (0..k).chain(9 - k..9) {
                            let lin = d.idx(x, y, z);
                            assert_eq!(a.slab(i)[lin], b.slab(i)[lin], "wall row");
                        }
                        if z >= 10 {
                            let lin = d.idx(x, 4, z);
                            assert_eq!(a.slab(i)[lin], b.slab(i)[lin], "masked");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn fused_simd_respects_x_range() {
        let c = ctx(LatticeKind::D3Q19, EqOrder::Second);
        let dims = Dim3::new(8, 7, 9);
        let src = random_field(c.lat.q(), dims, 1, 3);
        let tables = StreamTables::new(dims.ny, dims.nz);
        let mut dst = DistField::new(c.lat.q(), dims, 1).unwrap();
        let before = dst.clone();
        stream_collide(&c, &tables, &src, &mut dst, 3, 5);
        let d = dst.alloc_dims();
        for i in 0..c.lat.q() {
            for x in (1..3).chain(5..9) {
                let b = d.idx(x, 0, 0);
                assert_eq!(
                    &dst.slab(i)[b..b + d.plane()],
                    &before.slab(i)[b..b + d.plane()],
                    "x={x}"
                );
            }
        }
    }
}
