//! Composable cell operators: the per-cell collide rule, factored out of the
//! drivers.
//!
//! Every rung of the ladder runs the same *data movement* (in-place sweep,
//! AVX2 lanes, fused single pass, rayon chunks) around one of two per-cell
//! *rules*: plain BGK relaxation, or the Guo-forced variant (half-force
//! velocity shift plus a post-relaxation source). A [`CollideOp`] names the
//! rule; the drivers are generic over it and monomorphize, so the unforced
//! instantiation compiles to exactly the code the dedicated plain kernels
//! used to be — the `O::FORCED` branches fold away at compile time.
//!
//! The module also owns the two pieces every driver used to duplicate by
//! hand:
//!
//! * [`OpConsts`] — the per-invocation stack hoist of the equilibrium
//!   constants (`[cx, cy, cz, w]` per velocity, previously copy-pasted in
//!   `fused.rs`/`fused_simd.rs`) plus the precomputed Guo source
//!   coefficients, so there is exactly one equilibrium-constant path;
//! * [`collide_cells_raw`] — the z-blocked, boundary-aware scalar collide
//!   body shared by the serial scalar driver, the rayon chunks, and the
//!   non-AVX2 fallback of the SIMD rung. Wall rows are skipped and masked
//!   cells excluded via fluid z-runs, so walled/masked scenarios reuse the
//!   identical line-blocked loop the periodic kernels run.
//!
//! ## The Guo source, hoisted
//!
//! `S_i = (1 − ω/2) w_i [ (c_i−u)/c_s² + (c_i·u) c_i/c_s⁴ ] · G` expands to
//! `S_i = sa_i − sb_i (u·G) + sc_i ξ_i` with `ξ_i = c_i·u` and per-velocity
//! constants `sa_i = p_i (c_i·G)/c_s²`, `sb_i = p_i/c_s²`,
//! `sc_i = p_i (c_i·G)/c_s⁴`, `p_i = (1 − ω/2) w_i`. Only `u·G` and `ξ_i`
//! vary per cell — and `ξ_i` is already computed for the equilibrium — so
//! the forced path costs two extra fmas per (cell, velocity) in both the
//! scalar and AVX2 drivers.

use crate::boundary::{BoundarySpec, SectionMask};
use crate::field::DistField;
use crate::kernels::dh::ZB;
use crate::kernels::{KernelCtx, MAX_Q};

/// A per-cell collide rule, threaded through every kernel driver.
///
/// Implementations carry only the rule's parameters (e.g. the force
/// density); the drivers do the sweeping. `FORCED` is an associated const
/// so the plain instantiation monomorphizes to branch-free unforced code.
pub trait CollideOp: Copy + Send + Sync {
    /// Whether this rule applies a body force (compile-time: `false`
    /// instantiations compile to the plain BGK update).
    const FORCED: bool;

    /// The force density `G` (zero for plain BGK).
    fn g(&self) -> [f64; 3];
}

/// Plain BGK relaxation — the rule of the periodic ladder kernels.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlainBgk;

impl CollideOp for PlainBgk {
    const FORCED: bool = false;

    #[inline(always)]
    fn g(&self) -> [f64; 3] {
        [0.0; 3]
    }
}

/// Guo-forced BGK: half-force velocity shift `u = (Σ f c + G/2)/ρ`, BGK
/// relaxation toward `f^eq(ρ, u)`, and the second-order source `S_i` added
/// post-relaxation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GuoForced {
    /// Force density `G` (lattice units).
    pub g: [f64; 3],
}

impl CollideOp for GuoForced {
    const FORCED: bool = true;

    #[inline(always)]
    fn g(&self) -> [f64; 3] {
        self.g
    }
}

/// Per-invocation hoisted constants shared by every collide driver: the
/// equilibrium-constant stack cache plus (when forced) the Guo source
/// coefficients. Built once per kernel call, outside the cell loops.
#[derive(Debug, Clone)]
pub struct OpConsts {
    /// `[cx, cy, cz, w]` per velocity — the dense stack row the hot loops
    /// read instead of chasing the two `EqConsts` heap vectors.
    pub cw: [[f64; 4]; MAX_Q],
    /// Opposite-velocity index per velocity (the bounce-back permutation
    /// the boundary-aware drivers apply to wall rows and masked cells).
    pub opp: [usize; MAX_Q],
    /// The force density `G`.
    pub g: [f64; 3],
    /// `G/2` — the Guo velocity-shift numerator term.
    pub half_g: [f64; 3],
    /// Source coefficient `sa_i = (1 − ω/2) w_i (c_i·G)/c_s²`.
    pub sa: [f64; MAX_Q],
    /// Source coefficient `sb_i = (1 − ω/2) w_i/c_s²` (multiplies `u·G`).
    pub sb: [f64; MAX_Q],
    /// Source coefficient `sc_i = (1 − ω/2) w_i (c_i·G)/c_s⁴` (multiplies
    /// `ξ_i`).
    pub sc: [f64; MAX_Q],
}

impl OpConsts {
    /// Hoist the constants for `op` under `ctx`.
    pub fn new<O: CollideOp>(ctx: &KernelCtx, op: &O) -> Self {
        let k = &ctx.consts;
        let q = ctx.lat.q();
        let mut cw = [[0.0f64; 4]; MAX_Q];
        for (i, slot) in cw.iter_mut().enumerate().take(q) {
            *slot = [k.c[i][0], k.c[i][1], k.c[i][2], k.w[i]];
        }
        let mut opp = [0usize; MAX_Q];
        for (i, o) in opp.iter_mut().enumerate().take(q) {
            *o = ctx.lat.opposite(i);
        }
        let g = op.g();
        let mut sa = [0.0f64; MAX_Q];
        let mut sb = [0.0f64; MAX_Q];
        let mut sc = [0.0f64; MAX_Q];
        if O::FORCED {
            let pref = 1.0 - 0.5 * ctx.omega;
            let inv_cs4 = k.inv_cs2 * k.inv_cs2;
            for i in 0..q {
                let cg = cw[i][0] * g[0] + cw[i][1] * g[1] + cw[i][2] * g[2];
                let p = pref * k.w[i];
                sa[i] = p * cg * k.inv_cs2;
                sb[i] = p * k.inv_cs2;
                sc[i] = p * cg * inv_cs4;
            }
        }
        Self {
            cw,
            opp,
            g,
            half_g: [0.5 * g[0], 0.5 * g[1], 0.5 * g[2]],
            sa,
            sb,
            sc,
        }
    }
}

/// Monomorphize a block over the force vector: `g = 0` binds the operator
/// to [`PlainBgk`] (compiling to the branch-free unforced kernels), any
/// other `g` to [`GuoForced`]. The single place the zero-force fast-path
/// rule lives — every public `g`-taking entry point routes through it.
macro_rules! with_op {
    ($g:expr, |$op:ident| $body:expr) => {{
        let g = $g;
        if g == [0.0; 3] {
            let $op = $crate::kernels::op::PlainBgk;
            $body
        } else {
            let $op = $crate::kernels::op::GuoForced { g };
            $body
        }
    }};
}
pub(crate) use with_op;

/// Advance `zs` to the next fluid z-run of row `y` and return its bounds,
/// or `None` when the row is exhausted. With no mask the whole row is one
/// run. Shared by every boundary-aware driver (scalar body, AVX2 collide),
/// so the run boundaries cannot drift between the kernel classes.
#[inline]
pub(crate) fn next_fluid_run(
    mask: Option<&SectionMask>,
    y: usize,
    nz: usize,
    zs: &mut usize,
) -> Option<(usize, usize)> {
    if *zs >= nz {
        return None;
    }
    match mask {
        None => {
            // Honour the cursor even without a mask, so a caller starting
            // mid-row gets the remainder of the row, never cells it (or
            // someone else) already swept.
            let lo = *zs;
            *zs = nz;
            Some((lo, nz))
        }
        Some(m) => {
            while *zs < nz && m.is_solid(y, *zs) {
                *zs += 1;
            }
            if *zs == nz {
                return None;
            }
            let lo = *zs;
            while *zs < nz && !m.is_solid(y, *zs) {
                *zs += 1;
            }
            Some((lo, *zs))
        }
    }
}

/// Serial boundary-aware collide over planes `x ∈ [x_lo, x_hi)`: the rule
/// `op` applied to every fluid cell of `bounds` (wall rows and masked cells
/// untouched). With periodic `bounds` and [`PlainBgk`] this is exactly the
/// CF/LoBr line-blocked collide.
pub fn collide_cells<O: CollideOp>(
    ctx: &KernelCtx,
    f: &mut DistField,
    x_lo: usize,
    x_hi: usize,
    op: O,
    bounds: &BoundarySpec,
) {
    if x_lo >= x_hi {
        return;
    }
    let d = f.alloc_dims();
    debug_assert!(x_hi <= d.nx);
    let total = f.as_slice().len();
    let slab_len = f.slab_stride();
    let ptr = f.as_mut_ptr();
    // SAFETY: exclusive &mut access to the whole field; offsets bounded by
    // the layout contract checked in collide_cells_raw.
    unsafe {
        collide_cells_raw::<O>(
            ptr,
            total,
            slab_len,
            ctx,
            &OpConsts::new(ctx, &op),
            bounds,
            d,
            x_lo,
            x_hi,
        )
    }
}

/// The shared z-blocked scalar collide body, against a raw base pointer so
/// the rayon drivers can run it per disjoint x-chunk.
///
/// # Safety
/// `base_ptr` must point to `total = q·slab_len` initialised doubles laid
/// out as consecutive velocity slabs of a field with allocated dims `d`; the
/// caller must guarantee exclusive access to the x-planes `[x_lo, x_hi)`.
#[allow(clippy::too_many_arguments)]
pub(crate) unsafe fn collide_cells_raw<O: CollideOp>(
    base_ptr: *mut f64,
    total: usize,
    slab_len: usize,
    ctx: &KernelCtx,
    oc: &OpConsts,
    bounds: &BoundarySpec,
    d: crate::index::Dim3,
    x_lo: usize,
    x_hi: usize,
) {
    // SAFETY: forwarded contract.
    unsafe {
        if ctx.third_order() {
            collide_cells_impl::<true, O>(
                base_ptr, total, slab_len, ctx, oc, bounds, d, x_lo, x_hi,
            );
        } else {
            collide_cells_impl::<false, O>(
                base_ptr, total, slab_len, ctx, oc, bounds, d, x_lo, x_hi,
            );
        }
    }
}

/// # Safety
/// See [`collide_cells_raw`].
#[allow(clippy::too_many_arguments)]
unsafe fn collide_cells_impl<const THIRD: bool, O: CollideOp>(
    base_ptr: *mut f64,
    total: usize,
    slab_len: usize,
    ctx: &KernelCtx,
    oc: &OpConsts,
    bounds: &BoundarySpec,
    d: crate::index::Dim3,
    x_lo: usize,
    x_hi: usize,
) {
    let q = ctx.lat.q();
    let k = &ctx.consts;
    let omega = ctx.omega;
    let fluid_y = bounds.fluid_y(d.ny);
    let mask = bounds.mask();
    let hg = oc.half_g;
    let g = oc.g;

    let mut rho = [0.0f64; ZB];
    let mut mx = [0.0f64; ZB];
    let mut my = [0.0f64; ZB];
    let mut mz = [0.0f64; ZB];
    let mut ux = [0.0f64; ZB];
    let mut uy = [0.0f64; ZB];
    let mut uz = [0.0f64; ZB];
    let mut u2 = [0.0f64; ZB];
    let mut ug = [0.0f64; ZB];

    for x in x_lo..x_hi {
        for y in fluid_y.clone() {
            let base = d.idx(x, y, 0);
            // Fluid z-runs of this row (one full run when there is no mask),
            // each swept with the CF/LoBr z-blocking.
            let mut zs = 0usize;
            while let Some((run_lo, run_hi)) = next_fluid_run(mask, y, d.nz, &mut zs) {
                let mut z0 = run_lo;
                while z0 < run_hi {
                    let blk = (run_hi - z0).min(ZB);
                    rho[..blk].fill(0.0);
                    mx[..blk].fill(0.0);
                    my[..blk].fill(0.0);
                    mz[..blk].fill(0.0);
                    for i in 0..q {
                        let c = oc.cw[i];
                        let off = i * slab_len + base + z0;
                        debug_assert!(off + blk <= total);
                        // SAFETY: off+blk ≤ total per the layout contract.
                        let p = unsafe { base_ptr.add(off) as *const f64 };
                        for j in 0..blk {
                            let fv = unsafe { *p.add(j) };
                            rho[j] += fv;
                            mx[j] += fv * c[0];
                            my[j] += fv * c[1];
                            mz[j] += fv * c[2];
                        }
                    }
                    for j in 0..blk {
                        let inv = 1.0 / rho[j];
                        if O::FORCED {
                            ux[j] = (mx[j] + hg[0]) * inv;
                            uy[j] = (my[j] + hg[1]) * inv;
                            uz[j] = (mz[j] + hg[2]) * inv;
                            ug[j] = ux[j] * g[0] + uy[j] * g[1] + uz[j] * g[2];
                        } else {
                            ux[j] = mx[j] * inv;
                            uy[j] = my[j] * inv;
                            uz[j] = mz[j] * inv;
                        }
                        u2[j] = ux[j] * ux[j] + uy[j] * uy[j] + uz[j] * uz[j];
                    }
                    for i in 0..q {
                        let c = oc.cw[i];
                        let w = c[3];
                        let off = i * slab_len + base + z0;
                        debug_assert!(off + blk <= total);
                        // SAFETY: as above; writes stay within this caller's
                        // exclusive x range.
                        let p = unsafe { base_ptr.add(off) };
                        for j in 0..blk {
                            let xi = c[0] * ux[j] + c[1] * uy[j] + c[2] * uz[j];
                            let mut poly =
                                1.0 + xi * k.inv_cs2 + xi * xi * k.inv_2cs4 - u2[j] * k.inv_2cs2;
                            if THIRD {
                                poly += xi * (xi * xi - 3.0 * k.cs2 * u2[j]) * k.inv_6cs6;
                            }
                            let feq = w * rho[j] * poly;
                            unsafe {
                                let fv = *p.add(j);
                                let mut next = fv + omega * (feq - fv);
                                if O::FORCED {
                                    next += oc.sa[i] - oc.sb[i] * ug[j] + oc.sc[i] * xi;
                                }
                                *p.add(j) = next;
                            }
                        }
                    }
                    z0 += blk;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::boundary::{ChannelWalls, SectionMask};
    use crate::collision::Bgk;
    use crate::equilibrium::EqOrder;
    use crate::index::Dim3;
    use crate::lattice::LatticeKind;

    fn ctx(kind: LatticeKind) -> KernelCtx {
        let order = if kind == LatticeKind::D3Q39 {
            EqOrder::Third
        } else {
            EqOrder::Second
        };
        KernelCtx::new(kind, order, Bgk::new(0.9).unwrap())
    }

    fn random_field(q: usize, dims: Dim3, seed: u64) -> DistField {
        let mut f = DistField::new(q, dims, 0).unwrap();
        let mut state = seed | 1;
        for v in f.as_mut_slice() {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            *v = 0.02 + (state % 613) as f64 / 900.0;
        }
        f
    }

    #[test]
    fn plain_op_is_bitwise_the_cf_collide() {
        for kind in [LatticeKind::D3Q19, LatticeKind::D3Q39] {
            let c = ctx(kind);
            let dims = Dim3::new(4, 5, 130); // straddles two z-blocks
            let mut a = random_field(c.lat.q(), dims, 31);
            let mut b = a.clone();
            crate::kernels::dh::collide(&c, &mut a, 0, dims.nx);
            collide_cells(&c, &mut b, 0, dims.nx, PlainBgk, &BoundarySpec::periodic());
            assert_eq!(a.max_abs_diff_owned(&b), 0.0, "{kind:?}");
        }
    }

    #[test]
    fn guo_with_zero_force_is_bitwise_plain() {
        let c = ctx(LatticeKind::D3Q19);
        let dims = Dim3::new(3, 6, 9);
        let bounds = BoundarySpec::periodic().with_walls(ChannelWalls::no_slip(1));
        let mut a = random_field(c.lat.q(), dims, 7);
        let mut b = a.clone();
        collide_cells(&c, &mut a, 0, dims.nx, PlainBgk, &bounds);
        collide_cells(&c, &mut b, 0, dims.nx, GuoForced { g: [0.0; 3] }, &bounds);
        assert_eq!(a.max_abs_diff_owned(&b), 0.0);
    }

    #[test]
    fn fluid_runs_respect_mask_and_walls() {
        let c = ctx(LatticeKind::D3Q19);
        let dims = Dim3::new(3, 6, 5);
        let bounds = BoundarySpec::periodic()
            .with_walls(ChannelWalls::no_slip(1))
            .with_mask(SectionMask::from_fn(6, 5, |_y, z| z == 2));
        let mut f = random_field(c.lat.q(), dims, 23);
        let before = f.clone();
        collide_cells(
            &c,
            &mut f,
            0,
            dims.nx,
            GuoForced {
                g: [1e-4, 0.0, 0.0],
            },
            &bounds,
        );
        let d = f.alloc_dims();
        for i in 0..c.lat.q() {
            for x in 0..dims.nx {
                for z in 0..dims.nz {
                    for y in [0usize, 5] {
                        let lin = d.idx(x, y, z);
                        assert_eq!(f.slab(i)[lin], before.slab(i)[lin], "wall row");
                    }
                    let lin = d.idx(x, 3, z);
                    if z == 2 {
                        assert_eq!(f.slab(i)[lin], before.slab(i)[lin], "masked");
                    }
                }
            }
        }
        assert!(f.max_abs_diff_owned(&before) > 0.0, "fluid must collide");
    }

    #[test]
    fn source_coefficients_reproduce_guo_source() {
        // sa − sb(u·G) + sc·ξ must equal guo_source_i to rounding.
        for kind in [LatticeKind::D3Q19, LatticeKind::D3Q39] {
            let c = ctx(kind);
            let g = [3e-4, -2e-4, 1e-4];
            let oc = OpConsts::new(&c, &GuoForced { g });
            let u = [0.05, -0.02, 0.03];
            let ug = u[0] * g[0] + u[1] * g[1] + u[2] * g[2];
            for i in 0..c.lat.q() {
                let cf = oc.cw[i];
                let xi = cf[0] * u[0] + cf[1] * u[1] + cf[2] * u[2];
                let s = oc.sa[i] - oc.sb[i] * ug + oc.sc[i] * xi;
                let want = crate::collision::guo_source_i(&c.lat, i, u, g, c.omega);
                assert!(
                    (s - want).abs() < 1e-18 + 1e-12 * want.abs(),
                    "{kind:?} i={i}: {s} vs {want}"
                );
            }
        }
    }
}
