//! Fused stream+collide — the paper's future-work direction implemented.
//!
//! The paper's conclusion (§VII) singles out "methods to alter the algorithm
//! as to reduce the memory accesses per lattice update" as the way past the
//! bandwidth wall. The classic answer is to *fuse* the two sweeps: pull the
//! shifted populations, relax them, and store the post-collision state in a
//! single pass. Per step this moves `2·Q·8` bytes per cell (one read, one
//! write per velocity) instead of the split pipeline's `4·Q·8` (stream
//! read+write, collide read+write) — halving the traffic that Table II
//! proves is the binding constraint.
//!
//! The kernel is generic over the cell operator
//! ([`crate::kernels::op::CollideOp`]) *and* boundary-aware, so the fused
//! top rung also runs walled/forced scenarios in one pass. The key
//! observation is that the split scenario pipeline's three phases touch
//! disjoint state: the boundary transform rewrites only *solid* cells from
//! their own arrivals, and the collide rewrites only *fluid* cells from
//! their own arrivals — so one sweep can dispatch per row/cell:
//!
//! * fluid cells — gather (= the pull-stream), accumulate moments, relax
//!   under the operator (plain or Guo-forced), store;
//! * wall rows — gather, then store the wall transform of the gathered
//!   arrivals (bounce-back / moving / Maxwell-diffuse — identical
//!   arithmetic to [`crate::boundary::BoundarySpec::apply`]);
//! * masked cells — the full-way bounce-back of their gathered arrivals.
//!
//! The result is bitwise identical to the split stream → boundary-apply →
//! forced-collide pipeline while keeping the fused rung's `2·Q·8` traffic.
//!
//! This module holds the scalar variant, [`crate::kernels::fused_simd`] the
//! AVX2+FMA one, and [`crate::kernels::par`] the threaded drivers. The
//! ablation benchmark (`cargo bench -p lbm-bench kernels`) quantifies what
//! the paper predicted.

use crate::boundary::{BoundarySpec, WallKind};
use crate::equilibrium::{feq_i, EqOrder};
use crate::field::DistField;
use crate::kernels::op::{CollideOp, OpConsts, PlainBgk};
use crate::kernels::{KernelCtx, StreamTables, MAX_Q};

/// z-block for the fused gather (the whole Q×ZBF tile lives on the stack:
/// 39×64×8 B ≈ 20 KiB; larger blocks amortise the per-row gather setup).
pub(crate) const ZBF: usize = 64;

/// One fused LBM step over planes `x ∈ [x_lo, x_hi)`: `dst ← collide(pull(src))`.
///
/// Halo contract identical to [`crate::kernels::dh::stream`]: `src` must be
/// valid on `[x_lo − k, x_hi + k)`. `src` is read-only (the double-buffer
/// swap is the caller's, as with the split kernels).
pub fn stream_collide(
    ctx: &KernelCtx,
    tables: &StreamTables,
    src: &DistField,
    dst: &mut DistField,
    x_lo: usize,
    x_hi: usize,
) {
    stream_collide_cells(
        ctx,
        tables,
        src,
        dst,
        x_lo,
        x_hi,
        PlainBgk,
        &BoundarySpec::periodic(),
    );
}

/// Boundary-aware fused step: the rule `op` on the fluid cells of `bounds`,
/// the wall/mask transforms on its solid cells, all in one pass.
#[allow(clippy::too_many_arguments)]
pub fn stream_collide_cells<O: CollideOp>(
    ctx: &KernelCtx,
    tables: &StreamTables,
    src: &DistField,
    dst: &mut DistField,
    x_lo: usize,
    x_hi: usize,
    op: O,
    bounds: &BoundarySpec,
) {
    check_fused_bounds(ctx, src, dst, x_lo, x_hi);
    let total = dst.as_slice().len();
    let dst_ptr = dst.as_mut_ptr();
    // SAFETY: `&mut dst` grants exclusive access to all `total` doubles, and
    // the bounds check above keeps every raw write inside them.
    unsafe { stream_collide_cells_raw(ctx, tables, src, dst_ptr, total, x_lo, x_hi, op, bounds) }
}

/// Hard bounds/shape checks shared by the safe fused entry points: the raw
/// kernels write through pointers, so an out-of-range `x_hi` must fail loudly
/// here (in release builds too) rather than corrupt memory.
pub(crate) fn check_fused_bounds(
    ctx: &KernelCtx,
    src: &DistField,
    dst: &DistField,
    x_lo: usize,
    x_hi: usize,
) {
    assert_eq!(src.alloc_dims(), dst.alloc_dims(), "src/dst shape mismatch");
    assert_eq!(src.q(), dst.q(), "src/dst velocity-count mismatch");
    let k = ctx.lat.reach();
    assert!(
        x_lo >= k && x_hi + k <= src.alloc_dims().nx,
        "fused x-range [{x_lo}, {x_hi}) needs k = {k} halo planes inside nx = {}",
        src.alloc_dims().nx
    );
}

/// Raw-destination form of the boundary-aware fused step, shared with the
/// rayon scenario driver and the SIMD fallback.
///
/// # Safety
/// `dst_ptr` must point to `total` initialised doubles laid out exactly like
/// `src` (same `alloc_dims`, same `q`, consecutive velocity slabs), and the
/// caller must guarantee exclusive access to the x-planes `[x_lo, x_hi)` of
/// every slab. `src` must be valid on `[x_lo − k, x_hi + k)` and must not
/// alias the destination.
#[allow(clippy::too_many_arguments)]
pub(crate) unsafe fn stream_collide_cells_raw<O: CollideOp>(
    ctx: &KernelCtx,
    tables: &StreamTables,
    src: &DistField,
    dst_ptr: *mut f64,
    total: usize,
    x_lo: usize,
    x_hi: usize,
    op: O,
    bounds: &BoundarySpec,
) {
    // SAFETY: forwarded contract.
    unsafe {
        if ctx.third_order() {
            fused_impl::<true, O>(ctx, tables, src, dst_ptr, total, x_lo, x_hi, op, bounds);
        } else {
            fused_impl::<false, O>(ctx, tables, src, dst_ptr, total, x_lo, x_hi, op, bounds);
        }
    }
}

/// Store the wall transform of the gathered arrivals for one z-block of a
/// solid wall row — the tile-resident form of
/// [`crate::boundary::BoundarySpec::apply`]'s per-row transform (identical
/// per-cell arithmetic, so fused and split scenario paths agree bitwise).
///
/// # Safety
/// `dst_ptr`/`total`/`slab_len` as in [`stream_collide_cells_raw`];
/// `dbase + z0 + blk` must stay within every slab and inside the caller's
/// exclusive x-plane range; `blk ≤ ZBF`.
#[allow(clippy::too_many_arguments)]
pub(crate) unsafe fn store_wall_block(
    ctx: &KernelCtx,
    kind: WallKind,
    fq: &[[f64; ZBF]; MAX_Q],
    opp: &[usize; MAX_Q],
    q: usize,
    dst_ptr: *mut f64,
    total: usize,
    slab_len: usize,
    dbase: usize,
    z0: usize,
    blk: usize,
) {
    let cs2 = ctx.lat.cs2();
    match kind {
        WallKind::BounceBack => {
            for i in 0..q {
                let off = i * slab_len + dbase + z0;
                debug_assert!(off + blk <= total);
                let line = &fq[opp[i]];
                for j in 0..blk {
                    // SAFETY: off+blk ≤ total per the caller's contract.
                    unsafe { *dst_ptr.add(off + j) = line[j] };
                }
            }
        }
        WallKind::Moving { u, rho } => {
            for i in 0..q {
                let c = ctx.lat.velocities()[i];
                let cu = c[0] as f64 * u[0] + c[1] as f64 * u[1] + c[2] as f64 * u[2];
                // The identical expression BoundarySpec::apply evaluates per
                // cell; it is constant per velocity, so hoisting it out of
                // the z loop preserves every bit.
                let corr = 2.0 * ctx.lat.weights()[i] * rho * cu / cs2;
                let off = i * slab_len + dbase + z0;
                debug_assert!(off + blk <= total);
                let line = &fq[opp[i]];
                for j in 0..blk {
                    // SAFETY: as above.
                    unsafe { *dst_ptr.add(off + j) = line[j] + corr };
                }
            }
        }
        WallKind::Diffuse { u } => {
            // Per-cell arriving mass, accumulated over velocities in index
            // order — the same summation order BoundarySpec::apply uses.
            let mut mass = [0.0f64; ZBF];
            for line in fq.iter().take(q) {
                for j in 0..blk {
                    mass[j] += line[j];
                }
            }
            for i in 0..q {
                let off = i * slab_len + dbase + z0;
                debug_assert!(off + blk <= total);
                for (j, m) in mass.iter().enumerate().take(blk) {
                    // feq sums to its density argument, so emitting
                    // feq(mass, u_wall) conserves the arriving mass.
                    // SAFETY: as above.
                    unsafe { *dst_ptr.add(off + j) = feq_i(&ctx.lat, EqOrder::Second, i, *m, u) };
                }
            }
        }
    }
}

/// Overwrite the masked solid cells of one fluid-row z-block with the
/// full-way bounce-back of their gathered arrivals — shared by the scalar
/// and AVX2 fused kernels so the mask convention cannot drift between them.
///
/// # Safety
/// `dst_ptr`/`total`/`slab_len` as in [`stream_collide_cells_raw`];
/// `dbase + z0 + blk` must stay within every slab and inside the caller's
/// exclusive x-plane range; `blk ≤ ZBF`.
#[allow(clippy::too_many_arguments)]
pub(crate) unsafe fn store_masked_cells(
    mask: &crate::boundary::SectionMask,
    fq: &[[f64; ZBF]; MAX_Q],
    opp: &[usize; MAX_Q],
    q: usize,
    dst_ptr: *mut f64,
    total: usize,
    slab_len: usize,
    y: usize,
    dbase: usize,
    z0: usize,
    blk: usize,
) {
    for j in 0..blk {
        if mask.is_solid(y, z0 + j) {
            for i in 0..q {
                let off = i * slab_len + dbase + z0 + j;
                debug_assert!(off < total);
                // SAFETY: off < total per the caller's contract.
                unsafe { *dst_ptr.add(off) = fq[opp[i]][j] };
            }
        }
    }
}

/// # Safety
/// See [`stream_collide_cells_raw`].
#[allow(clippy::too_many_arguments)]
unsafe fn fused_impl<const THIRD: bool, O: CollideOp>(
    ctx: &KernelCtx,
    tables: &StreamTables,
    src: &DistField,
    dst_ptr: *mut f64,
    total: usize,
    x_lo: usize,
    x_hi: usize,
    op: O,
    bounds: &BoundarySpec,
) {
    let d = src.alloc_dims();
    debug_assert!(x_lo >= ctx.lat.reach());
    debug_assert!(x_hi + ctx.lat.reach() <= d.nx);
    let q = ctx.lat.q();
    let k = &ctx.consts;
    let omega = ctx.omega;
    let nz = d.nz;
    let slab_len = src.slab_stride();
    let vel = ctx.lat.velocities();
    let mask = bounds.mask();

    // The one shared per-invocation hoist: equilibrium-constant rows, the
    // bounce-back permutation, the force terms, and the Guo source
    // coefficients when forced — see `kernels::op`.
    let oc = OpConsts::new(ctx, &op);
    let g = oc.g;
    let hg = oc.half_g;

    // Gather tile: pulled populations for one z-block, all velocities.
    let mut fq = [[0.0f64; ZBF]; MAX_Q];
    let mut rho = [0.0f64; ZBF];
    let mut mx = [0.0f64; ZBF];
    let mut my = [0.0f64; ZBF];
    let mut mz = [0.0f64; ZBF];
    let mut ux = [0.0f64; ZBF];
    let mut uy = [0.0f64; ZBF];
    let mut uz = [0.0f64; ZBF];
    let mut u2 = [0.0f64; ZBF];
    let mut ug = [0.0f64; ZBF];

    let src_data = src.as_slice();

    for x in x_lo..x_hi {
        for y in 0..d.ny {
            let wall = bounds.wall_row_kind(d.ny, y);
            let dbase = d.idx(x, y, 0);
            let mut z0 = 0;
            while z0 < nz {
                let blk = (nz - z0).min(ZBF);
                rho[..blk].fill(0.0);
                mx[..blk].fill(0.0);
                my[..blk].fill(0.0);
                mz[..blk].fill(0.0);
                // Pull + accumulate: for each velocity, gather the shifted
                // z-segment as at most two contiguous copies (the rotate-copy
                // of the optimized stream, not per-element wrap lookups) and
                // fold it into the moments (wall rows only gather — their
                // arrivals are transformed, not collided).
                for i in 0..q {
                    let c = vel[i];
                    let xs = (x as isize - c[0] as isize) as usize;
                    let ys = tables.y_for(c[1]).src(y);
                    let srow = &src_data[i * slab_len + d.idx(xs, ys, 0)..][..nz];
                    let line = &mut fq[i];
                    // Source start for dst index z0: (z0 − cz) mod nz.
                    let start = (z0 as isize - c[2] as isize).rem_euclid(nz as isize) as usize;
                    if start + blk <= nz {
                        line[..blk].copy_from_slice(&srow[start..start + blk]);
                    } else {
                        let first = nz - start;
                        line[..first].copy_from_slice(&srow[start..]);
                        line[first..blk].copy_from_slice(&srow[..blk - first]);
                    }
                    if wall.is_none() {
                        let cf = oc.cw[i];
                        for j in 0..blk {
                            let fv = line[j];
                            rho[j] += fv;
                            mx[j] += fv * cf[0];
                            my[j] += fv * cf[1];
                            mz[j] += fv * cf[2];
                        }
                    }
                }
                if let Some(kind) = wall {
                    // Solid wall row: the arrivals are transformed, not
                    // collided — the in-pass form of the split pipeline's
                    // boundary-apply step.
                    // SAFETY: dbase+z0+blk is inside every slab (same
                    // bound as the stores below), within this caller's
                    // exclusive x-planes.
                    unsafe {
                        store_wall_block(
                            ctx, kind, &fq, &oc.opp, q, dst_ptr, total, slab_len, dbase, z0, blk,
                        )
                    };
                    z0 += blk;
                    continue;
                }
                for j in 0..blk {
                    let inv = 1.0 / rho[j];
                    if O::FORCED {
                        ux[j] = (mx[j] + hg[0]) * inv;
                        uy[j] = (my[j] + hg[1]) * inv;
                        uz[j] = (mz[j] + hg[2]) * inv;
                        ug[j] = ux[j] * g[0] + uy[j] * g[1] + uz[j] * g[2];
                    } else {
                        ux[j] = mx[j] * inv;
                        uy[j] = my[j] * inv;
                        uz[j] = mz[j] * inv;
                    }
                    u2[j] = ux[j] * ux[j] + uy[j] * uy[j] + uz[j] * uz[j];
                }
                // Relax and store — the only write traffic of the step.
                for i in 0..q {
                    let cf = oc.cw[i];
                    let line = &fq[i];
                    let off = i * slab_len + dbase + z0;
                    debug_assert!(off + blk <= total);
                    // SAFETY: off+blk ≤ total per the layout contract, and
                    // x ∈ [x_lo, x_hi) keeps writes inside this caller's
                    // exclusive plane range.
                    let out = unsafe { std::slice::from_raw_parts_mut(dst_ptr.add(off), blk) };
                    for (j, o) in out.iter_mut().enumerate() {
                        let xi = cf[0] * ux[j] + cf[1] * uy[j] + cf[2] * uz[j];
                        let mut poly =
                            1.0 + xi * k.inv_cs2 + xi * xi * k.inv_2cs4 - u2[j] * k.inv_2cs2;
                        if THIRD {
                            poly += xi * (xi * xi - 3.0 * k.cs2 * u2[j]) * k.inv_6cs6;
                        }
                        let feq = cf[3] * rho[j] * poly;
                        let fv = line[j];
                        let mut next = fv + omega * (feq - fv);
                        if O::FORCED {
                            next += oc.sa[i] - oc.sb[i] * ug[j] + oc.sc[i] * xi;
                        }
                        *o = next;
                    }
                }
                // Masked solid cells inside a fluid row: overwrite the
                // collided garbage with the full-way bounce-back of their
                // gathered arrivals (sparse — cavity side walls and carved
                // geometry).
                if let Some(m) = mask {
                    // SAFETY: as for the stores above.
                    unsafe {
                        store_masked_cells(
                            m, &fq, &oc.opp, q, dst_ptr, total, slab_len, y, dbase, z0, blk,
                        )
                    };
                }
                z0 += blk;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::boundary::ChannelWalls;
    use crate::collision::Bgk;
    use crate::equilibrium::EqOrder;
    use crate::index::Dim3;
    use crate::kernels::op::GuoForced;
    use crate::kernels::{dh, OptLevel};
    use crate::lattice::LatticeKind;

    fn ctx(kind: LatticeKind) -> KernelCtx {
        let order = if kind == LatticeKind::D3Q39 {
            EqOrder::Third
        } else {
            EqOrder::Second
        };
        KernelCtx::new(kind, order, Bgk::new(0.75).unwrap())
    }

    fn random_field(q: usize, dims: Dim3, halo: usize, seed: u64) -> DistField {
        let mut f = DistField::new(q, dims, halo).unwrap();
        let mut s = seed | 1;
        for v in f.as_mut_slice() {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            *v = 0.03 + (s % 709) as f64 / 1000.0;
        }
        f
    }

    #[test]
    fn fused_equals_split_stream_then_collide() {
        for kind in [LatticeKind::D3Q19, LatticeKind::D3Q39] {
            let c = ctx(kind);
            let k = c.lat.reach();
            // nz = 37 straddles a fused block boundary.
            let dims = Dim3::new(6, 7, 37);
            let src = random_field(c.lat.q(), dims, k, 77);
            let tables = StreamTables::new(dims.ny, dims.nz);

            let mut split = DistField::new(c.lat.q(), dims, k).unwrap();
            dh::stream(&c, &tables, &src, &mut split, k, k + dims.nx);
            crate::kernels::collide(OptLevel::Dh, &c, &mut split, k, k + dims.nx);

            let mut fused = DistField::new(c.lat.q(), dims, k).unwrap();
            stream_collide(&c, &tables, &src, &mut fused, k, k + dims.nx);

            assert_eq!(split.max_abs_diff_owned(&fused), 0.0, "{kind:?}");
        }
    }

    #[test]
    fn fused_scenario_equals_split_scenario_bitwise() {
        // The boundary-aware fused pass must reproduce the split pipeline
        // (stream → boundary apply → forced collide) bit for bit.
        for kind in [LatticeKind::D3Q19, LatticeKind::D3Q39] {
            let c = ctx(kind);
            let k = c.lat.reach();
            let dims = Dim3::new(5, 9, 13);
            let bounds = BoundarySpec::periodic()
                .with_walls(ChannelWalls::no_slip(k))
                .with_mask(crate::boundary::SectionMask::from_fn(9, 13, |_y, z| {
                    z >= 10
                }));
            let g = [3e-5, 0.0, 1e-5];
            let src = random_field(c.lat.q(), dims, k, 51);
            let tables = StreamTables::new(dims.ny, dims.nz);

            let mut split = DistField::new(c.lat.q(), dims, k).unwrap();
            dh::stream(&c, &tables, &src, &mut split, k, k + dims.nx);
            bounds.apply(&c, &mut split, k, k + dims.nx);
            crate::kernels::forced::collide_forced(&c, &mut split, k, k + dims.nx, g, &bounds);

            let mut fused = DistField::new(c.lat.q(), dims, k).unwrap();
            stream_collide_cells(
                &c,
                &tables,
                &src,
                &mut fused,
                k,
                k + dims.nx,
                GuoForced { g },
                &bounds,
            );
            assert_eq!(split.max_abs_diff_owned(&fused), 0.0, "{kind:?}");
        }
    }

    #[test]
    fn fused_scenario_handles_moving_and_diffuse_walls_bitwise() {
        use crate::boundary::WallKind;
        let c = ctx(LatticeKind::D3Q19);
        let k = c.lat.reach();
        let dims = Dim3::new(4, 8, 9);
        let bounds = BoundarySpec::periodic().with_walls(ChannelWalls {
            low: WallKind::Diffuse { u: [0.0; 3] },
            high: WallKind::Moving {
                u: [0.04, 0.0, 0.02],
                rho: 1.0,
            },
            layers: 1,
        });
        let src = random_field(c.lat.q(), dims, k, 67);
        let tables = StreamTables::new(dims.ny, dims.nz);

        let mut split = DistField::new(c.lat.q(), dims, k).unwrap();
        dh::stream(&c, &tables, &src, &mut split, k, k + dims.nx);
        bounds.apply(&c, &mut split, k, k + dims.nx);
        crate::kernels::forced::collide_forced(&c, &mut split, k, k + dims.nx, [0.0; 3], &bounds);

        let mut fused = DistField::new(c.lat.q(), dims, k).unwrap();
        stream_collide_cells(
            &c,
            &tables,
            &src,
            &mut fused,
            k,
            k + dims.nx,
            PlainBgk,
            &bounds,
        );
        assert_eq!(split.max_abs_diff_owned(&fused), 0.0);
    }

    #[test]
    fn fused_respects_x_range() {
        let c = ctx(LatticeKind::D3Q19);
        let dims = Dim3::new(8, 6, 8);
        let src = random_field(c.lat.q(), dims, 1, 3);
        let tables = StreamTables::new(dims.ny, dims.nz);
        let mut dst = DistField::new(c.lat.q(), dims, 1).unwrap();
        let before = dst.clone();
        stream_collide(&c, &tables, &src, &mut dst, 3, 5);
        let d = dst.alloc_dims();
        for i in 0..c.lat.q() {
            for x in (1..3).chain(5..9) {
                let b = d.idx(x, 0, 0);
                assert_eq!(
                    &dst.slab(i)[b..b + d.plane()],
                    &before.slab(i)[b..b + d.plane()],
                    "x={x}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "halo planes")]
    fn fused_rejects_out_of_range_x_in_release_too() {
        // The raw-pointer kernels must never be reachable with a range that
        // walks off the allocation: the safe wrapper asserts (not
        // debug-asserts) the halo contract.
        let c = ctx(LatticeKind::D3Q19);
        let dims = Dim3::new(4, 7, 8);
        let src = random_field(c.lat.q(), dims, 1, 5);
        let tables = StreamTables::new(dims.ny, dims.nz);
        let mut dst = DistField::new(c.lat.q(), dims, 1).unwrap();
        // alloc nx = 6, k = 1: x_hi may be at most 5.
        stream_collide(&c, &tables, &src, &mut dst, 1, 6);
    }

    #[test]
    fn fused_is_split_invariant() {
        let c = ctx(LatticeKind::D3Q39);
        let dims = Dim3::new(8, 7, 9);
        let k = c.lat.reach();
        let src = random_field(c.lat.q(), dims, k, 21);
        let tables = StreamTables::new(dims.ny, dims.nz);
        let mut whole = DistField::new(c.lat.q(), dims, k).unwrap();
        stream_collide(&c, &tables, &src, &mut whole, k, k + dims.nx);
        let mut parts = DistField::new(c.lat.q(), dims, k).unwrap();
        stream_collide(&c, &tables, &src, &mut parts, k, k + 3);
        stream_collide(&c, &tables, &src, &mut parts, k + 3, k + dims.nx);
        assert_eq!(whole.max_abs_diff_owned(&parts), 0.0);
    }
}
