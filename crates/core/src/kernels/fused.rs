//! Fused stream+collide — the paper's future-work direction implemented.
//!
//! The paper's conclusion (§VII) singles out "methods to alter the algorithm
//! as to reduce the memory accesses per lattice update" as the way past the
//! bandwidth wall. The classic answer is to *fuse* the two sweeps: pull the
//! shifted populations, relax them, and store the post-collision state in a
//! single pass. Per step this moves `2·Q·8` bytes per cell (one read, one
//! write per velocity) instead of the split pipeline's `4·Q·8` (stream
//! read+write, collide read+write) — halving the traffic that Table II
//! proves is the binding constraint.
//!
//! The fused kernel is the `Fused` top rung of the extended ladder
//! ([`crate::kernels::OptLevel::Fused`]): this module holds the scalar
//! variant, [`crate::kernels::fused_simd`] the AVX2+FMA one, and
//! [`crate::kernels::par::stream_collide_par`] the threaded driver. The
//! ablation benchmark (`cargo bench -p lbm-bench kernels`) quantifies what
//! the paper predicted.

use crate::field::DistField;
use crate::kernels::{KernelCtx, StreamTables, MAX_Q};

/// z-block for the fused gather (the whole Q×ZBF tile lives on the stack:
/// 39×64×8 B ≈ 20 KiB; larger blocks amortise the per-row gather setup).
pub(crate) const ZBF: usize = 64;

/// One fused LBM step over planes `x ∈ [x_lo, x_hi)`: `dst ← collide(pull(src))`.
///
/// Halo contract identical to [`crate::kernels::dh::stream`]: `src` must be
/// valid on `[x_lo − k, x_hi + k)`. `src` is read-only (the double-buffer
/// swap is the caller's, as with the split kernels).
pub fn stream_collide(
    ctx: &KernelCtx,
    tables: &StreamTables,
    src: &DistField,
    dst: &mut DistField,
    x_lo: usize,
    x_hi: usize,
) {
    check_fused_bounds(ctx, src, dst, x_lo, x_hi);
    let total = dst.as_slice().len();
    let dst_ptr = dst.as_mut_ptr();
    // SAFETY: `&mut dst` grants exclusive access to all `total` doubles, and
    // the bounds check above keeps every raw write inside them.
    unsafe { stream_collide_raw(ctx, tables, src, dst_ptr, total, x_lo, x_hi) }
}

/// Hard bounds/shape checks shared by the safe fused entry points: the raw
/// kernels write through pointers, so an out-of-range `x_hi` must fail loudly
/// here (in release builds too) rather than corrupt memory.
pub(crate) fn check_fused_bounds(
    ctx: &KernelCtx,
    src: &DistField,
    dst: &DistField,
    x_lo: usize,
    x_hi: usize,
) {
    assert_eq!(src.alloc_dims(), dst.alloc_dims(), "src/dst shape mismatch");
    assert_eq!(src.q(), dst.q(), "src/dst velocity-count mismatch");
    let k = ctx.lat.reach();
    assert!(
        x_lo >= k && x_hi + k <= src.alloc_dims().nx,
        "fused x-range [{x_lo}, {x_hi}) needs k = {k} halo planes inside nx = {}",
        src.alloc_dims().nx
    );
}

/// Raw-destination form shared with the rayon fused driver: identical
/// arithmetic, writing through `dst_ptr` instead of a `&mut DistField`.
///
/// # Safety
/// `dst_ptr` must point to `total` initialised doubles laid out exactly like
/// `src` (same `alloc_dims`, same `q`, consecutive velocity slabs), and the
/// caller must guarantee exclusive access to the x-planes `[x_lo, x_hi)` of
/// every slab. `src` must be valid on `[x_lo − k, x_hi + k)` and must not
/// alias the destination.
pub(crate) unsafe fn stream_collide_raw(
    ctx: &KernelCtx,
    tables: &StreamTables,
    src: &DistField,
    dst_ptr: *mut f64,
    total: usize,
    x_lo: usize,
    x_hi: usize,
) {
    // SAFETY: forwarded contract.
    unsafe {
        if ctx.third_order() {
            fused_impl::<true>(ctx, tables, src, dst_ptr, total, x_lo, x_hi);
        } else {
            fused_impl::<false>(ctx, tables, src, dst_ptr, total, x_lo, x_hi);
        }
    }
}

/// # Safety
/// See [`stream_collide_raw`].
unsafe fn fused_impl<const THIRD: bool>(
    ctx: &KernelCtx,
    tables: &StreamTables,
    src: &DistField,
    dst_ptr: *mut f64,
    total: usize,
    x_lo: usize,
    x_hi: usize,
) {
    let d = src.alloc_dims();
    debug_assert!(x_lo >= ctx.lat.reach());
    debug_assert!(x_hi + ctx.lat.reach() <= d.nx);
    let q = ctx.lat.q();
    let k = &ctx.consts;
    let omega = ctx.omega;
    let nz = d.nz;
    let slab_len = src.slab_len();
    let vel = ctx.lat.velocities();

    // Stack-cache the per-velocity equilibrium constants once, outside the
    // cell loops: `[cx, cy, cz, w]` per velocity, so the hot loops read a
    // dense local array instead of chasing the two `EqConsts` heap vectors
    // per z-block (the same hoist the SIMD collide applies).
    let mut cw = [[0.0f64; 4]; MAX_Q];
    for (i, slot) in cw.iter_mut().enumerate().take(q) {
        *slot = [k.c[i][0], k.c[i][1], k.c[i][2], k.w[i]];
    }

    // Gather tile: pulled populations for one z-block, all velocities.
    let mut fq = [[0.0f64; ZBF]; MAX_Q];
    let mut rho = [0.0f64; ZBF];
    let mut mx = [0.0f64; ZBF];
    let mut my = [0.0f64; ZBF];
    let mut mz = [0.0f64; ZBF];
    let mut ux = [0.0f64; ZBF];
    let mut uy = [0.0f64; ZBF];
    let mut uz = [0.0f64; ZBF];
    let mut u2 = [0.0f64; ZBF];

    let src_data = src.as_slice();

    for x in x_lo..x_hi {
        for y in 0..d.ny {
            let dbase = d.idx(x, y, 0);
            let mut z0 = 0;
            while z0 < nz {
                let blk = (nz - z0).min(ZBF);
                rho[..blk].fill(0.0);
                mx[..blk].fill(0.0);
                my[..blk].fill(0.0);
                mz[..blk].fill(0.0);
                // Pull + accumulate: for each velocity, gather the shifted
                // z-segment as at most two contiguous copies (the rotate-copy
                // of the optimized stream, not per-element wrap lookups) and
                // fold it into the moments.
                for i in 0..q {
                    let c = vel[i];
                    let xs = (x as isize - c[0] as isize) as usize;
                    let ys = tables.y_for(c[1]).src(y);
                    let srow = &src_data[i * slab_len + d.idx(xs, ys, 0)..][..nz];
                    let line = &mut fq[i];
                    // Source start for dst index z0: (z0 − cz) mod nz.
                    let start = (z0 as isize - c[2] as isize).rem_euclid(nz as isize) as usize;
                    if start + blk <= nz {
                        line[..blk].copy_from_slice(&srow[start..start + blk]);
                    } else {
                        let first = nz - start;
                        line[..first].copy_from_slice(&srow[start..]);
                        line[first..blk].copy_from_slice(&srow[..blk - first]);
                    }
                    let cf = cw[i];
                    for j in 0..blk {
                        let fv = line[j];
                        rho[j] += fv;
                        mx[j] += fv * cf[0];
                        my[j] += fv * cf[1];
                        mz[j] += fv * cf[2];
                    }
                }
                for j in 0..blk {
                    let inv = 1.0 / rho[j];
                    ux[j] = mx[j] * inv;
                    uy[j] = my[j] * inv;
                    uz[j] = mz[j] * inv;
                    u2[j] = ux[j] * ux[j] + uy[j] * uy[j] + uz[j] * uz[j];
                }
                // Relax and store — the only write traffic of the step.
                for i in 0..q {
                    let cf = cw[i];
                    let line = &fq[i];
                    let off = i * slab_len + dbase + z0;
                    debug_assert!(off + blk <= total);
                    // SAFETY: off+blk ≤ total per the layout contract, and
                    // x ∈ [x_lo, x_hi) keeps writes inside this caller's
                    // exclusive plane range.
                    let out = unsafe { std::slice::from_raw_parts_mut(dst_ptr.add(off), blk) };
                    for (j, o) in out.iter_mut().enumerate() {
                        let xi = cf[0] * ux[j] + cf[1] * uy[j] + cf[2] * uz[j];
                        let mut poly =
                            1.0 + xi * k.inv_cs2 + xi * xi * k.inv_2cs4 - u2[j] * k.inv_2cs2;
                        if THIRD {
                            poly += xi * (xi * xi - 3.0 * k.cs2 * u2[j]) * k.inv_6cs6;
                        }
                        let feq = cf[3] * rho[j] * poly;
                        let fv = line[j];
                        *o = fv + omega * (feq - fv);
                    }
                }
                z0 += blk;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collision::Bgk;
    use crate::equilibrium::EqOrder;
    use crate::index::Dim3;
    use crate::kernels::{dh, OptLevel};
    use crate::lattice::LatticeKind;

    fn ctx(kind: LatticeKind) -> KernelCtx {
        let order = if kind == LatticeKind::D3Q39 {
            EqOrder::Third
        } else {
            EqOrder::Second
        };
        KernelCtx::new(kind, order, Bgk::new(0.75).unwrap())
    }

    fn random_field(q: usize, dims: Dim3, halo: usize, seed: u64) -> DistField {
        let mut f = DistField::new(q, dims, halo).unwrap();
        let mut s = seed | 1;
        for v in f.as_mut_slice() {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            *v = 0.03 + (s % 709) as f64 / 1000.0;
        }
        f
    }

    #[test]
    fn fused_equals_split_stream_then_collide() {
        for kind in [LatticeKind::D3Q19, LatticeKind::D3Q39] {
            let c = ctx(kind);
            let k = c.lat.reach();
            // nz = 37 straddles a fused block boundary.
            let dims = Dim3::new(6, 7, 37);
            let src = random_field(c.lat.q(), dims, k, 77);
            let tables = StreamTables::new(dims.ny, dims.nz);

            let mut split = DistField::new(c.lat.q(), dims, k).unwrap();
            dh::stream(&c, &tables, &src, &mut split, k, k + dims.nx);
            crate::kernels::collide(OptLevel::Dh, &c, &mut split, k, k + dims.nx);

            let mut fused = DistField::new(c.lat.q(), dims, k).unwrap();
            stream_collide(&c, &tables, &src, &mut fused, k, k + dims.nx);

            assert_eq!(split.max_abs_diff_owned(&fused), 0.0, "{kind:?}");
        }
    }

    #[test]
    fn fused_respects_x_range() {
        let c = ctx(LatticeKind::D3Q19);
        let dims = Dim3::new(8, 6, 8);
        let src = random_field(c.lat.q(), dims, 1, 3);
        let tables = StreamTables::new(dims.ny, dims.nz);
        let mut dst = DistField::new(c.lat.q(), dims, 1).unwrap();
        let before = dst.clone();
        stream_collide(&c, &tables, &src, &mut dst, 3, 5);
        let d = dst.alloc_dims();
        for i in 0..c.lat.q() {
            for x in (1..3).chain(5..9) {
                let b = d.idx(x, 0, 0);
                assert_eq!(
                    &dst.slab(i)[b..b + d.plane()],
                    &before.slab(i)[b..b + d.plane()],
                    "x={x}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "halo planes")]
    fn fused_rejects_out_of_range_x_in_release_too() {
        // The raw-pointer kernels must never be reachable with a range that
        // walks off the allocation: the safe wrapper asserts (not
        // debug-asserts) the halo contract.
        let c = ctx(LatticeKind::D3Q19);
        let dims = Dim3::new(4, 7, 8);
        let src = random_field(c.lat.q(), dims, 1, 5);
        let tables = StreamTables::new(dims.ny, dims.nz);
        let mut dst = DistField::new(c.lat.q(), dims, 1).unwrap();
        // alloc nx = 6, k = 1: x_hi may be at most 5.
        stream_collide(&c, &tables, &src, &mut dst, 1, 6);
    }

    #[test]
    fn fused_is_split_invariant() {
        let c = ctx(LatticeKind::D3Q39);
        let dims = Dim3::new(8, 7, 9);
        let k = c.lat.reach();
        let src = random_field(c.lat.q(), dims, k, 21);
        let tables = StreamTables::new(dims.ny, dims.nz);
        let mut whole = DistField::new(c.lat.q(), dims, k).unwrap();
        stream_collide(&c, &tables, &src, &mut whole, k, k + dims.nx);
        let mut parts = DistField::new(c.lat.q(), dims, k).unwrap();
        stream_collide(&c, &tables, &src, &mut parts, k, k + 3);
        stream_collide(&c, &tables, &src, &mut parts, k + 3, k + dims.nx);
        assert_eq!(whole.max_abs_diff_owned(&parts), 0.0);
    }
}
