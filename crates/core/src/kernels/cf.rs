//! `CF` — compiler-optimization analogue (paper §V-C).
//!
//! On Blue Gene the paper reached for XL/C's `-O5` and `qipa=2` (whole-
//! program alias analysis, loop unrolling, scheduling). The Rust analogue is
//! to *hand the optimizer proof*: force-inlined helpers and bounds-check-free
//! inner loops over raw slab pointers, so LLVM sees exactly the dependence
//! structure IPA had to discover. The arithmetic is identical to the DH rung;
//! only the indexing discipline changes.
//!
//! Safety: every pointer offset is derived from the same `(slab, base, blk)`
//! arithmetic the checked DH kernel uses, with the containment proved by the
//! `debug_assert!`s at entry and exercised by the equivalence tests.

use crate::boundary::BoundarySpec;
use crate::field::DistField;
use crate::kernels::op::{self, PlainBgk};
use crate::kernels::{KernelCtx, StreamTables};

/// CF stream: the DH rotate-copy structure with unchecked row slicing.
pub fn stream(
    ctx: &KernelCtx,
    tables: &StreamTables,
    src: &DistField,
    dst: &mut DistField,
    x_lo: usize,
    x_hi: usize,
) {
    let dims = src.alloc_dims();
    debug_assert!(x_lo >= ctx.lat.reach());
    debug_assert!(x_hi + ctx.lat.reach() <= dims.nx);
    let nz = dims.nz;
    let slab_len = src.slab_len();
    for i in 0..ctx.lat.q() {
        let c = ctx.lat.velocities()[i];
        let (cx, cy, cz) = (c[0], c[1], c[2]);
        let ty = tables.y_for(cy);
        let src_slab = src.slab(i);
        let dst_slab = dst.slab_mut(i);
        debug_assert_eq!(src_slab.len(), slab_len);
        for x in x_lo..x_hi {
            let xs = (x as isize - cx as isize) as usize;
            for y in 0..dims.ny {
                let ys = ty.src(y);
                let db = dims.idx(x, y, 0);
                let sb = dims.idx(xs, ys, 0);
                // SAFETY: db+nz ≤ slab_len and sb+nz ≤ slab_len by
                // construction (x, xs < dims.nx; y, ys < ny; rows are whole
                // z-lines), asserted in debug builds.
                debug_assert!(db + nz <= slab_len && sb + nz <= slab_len);
                let (dline, sline) = unsafe {
                    (
                        std::slice::from_raw_parts_mut(dst_slab.as_mut_ptr().add(db), nz),
                        std::slice::from_raw_parts(src_slab.as_ptr().add(sb), nz),
                    )
                };
                if cz == 0 {
                    dline.copy_from_slice(sline);
                } else if cz > 0 {
                    let m = cz as usize;
                    dline[m..].copy_from_slice(&sline[..nz - m]);
                    dline[..m].copy_from_slice(&sline[nz - m..]);
                } else {
                    let m = (-cz) as usize;
                    dline[..nz - m].copy_from_slice(&sline[m..]);
                    dline[nz - m..].copy_from_slice(&sline[..m]);
                }
            }
        }
    }
}

/// CF collide: DH's two-pass line-blocked update over raw slab pointers —
/// the [`PlainBgk`] periodic instantiation of the shared cell-operator body
/// in [`crate::kernels::op`] (the same code the scenario drivers
/// monomorphize with walls, masks and forcing plugged in).
pub fn collide(ctx: &KernelCtx, f: &mut DistField, x_lo: usize, x_hi: usize) {
    op::collide_cells(ctx, f, x_lo, x_hi, PlainBgk, &BoundarySpec::periodic());
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collision::Bgk;
    use crate::equilibrium::EqOrder;
    use crate::index::Dim3;
    use crate::kernels::dh;
    use crate::lattice::LatticeKind;

    fn ctx(kind: LatticeKind) -> KernelCtx {
        let order = if kind == LatticeKind::D3Q39 {
            EqOrder::Third
        } else {
            EqOrder::Second
        };
        KernelCtx::new(kind, order, Bgk::new(0.77).unwrap())
    }

    fn random_field(q: usize, dims: Dim3, halo: usize, seed: u64) -> DistField {
        let mut f = DistField::new(q, dims, halo).unwrap();
        let mut state = seed | 1;
        for v in f.as_mut_slice() {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            *v = 0.02 + (state % 1009) as f64 / 1700.0;
        }
        f
    }

    #[test]
    fn cf_stream_bitwise_equals_dh_stream() {
        for kind in [LatticeKind::D3Q19, LatticeKind::D3Q39] {
            let c = ctx(kind);
            let k = c.lat.reach();
            let dims = Dim3::new(7, 6, 11);
            let src = random_field(c.lat.q(), dims, k, 17);
            let tables = StreamTables::new(dims.ny, dims.nz);
            let mut a = DistField::new(c.lat.q(), dims, k).unwrap();
            let mut b = DistField::new(c.lat.q(), dims, k).unwrap();
            dh::stream(&c, &tables, &src, &mut a, k, k + dims.nx);
            stream(&c, &tables, &src, &mut b, k, k + dims.nx);
            assert_eq!(a.max_abs_diff_owned(&b), 0.0, "{kind:?}");
        }
    }

    #[test]
    fn cf_collide_bitwise_equals_dh_collide() {
        for kind in [LatticeKind::D3Q19, LatticeKind::D3Q39] {
            let c = ctx(kind);
            let dims = Dim3::new(4, 5, 130); // straddles two z-blocks
            let mut a = random_field(c.lat.q(), dims, 0, 23);
            let mut b = a.clone();
            dh::collide(&c, &mut a, 0, dims.nx);
            collide(&c, &mut b, 0, dims.nx);
            assert_eq!(a.max_abs_diff_owned(&b), 0.0, "{kind:?}");
        }
    }
}
