//! `GC` — ghost-cell kernels (paper §V-A).
//!
//! First rung above naive: the halo layers are now *trusted*, so the
//! per-cell `if` wrap checks disappear from the stream — x pulls straight
//! from the (pre-filled) ghost planes and y/z wrap through precomputed index
//! tables. Loop order and the division-form collide are still naive; those
//! fall to the DH rung. The measured delta Orig→GC is therefore the cost of
//! branchy wrapping (plus, at the `lbm-sim` level, the exchange moving to
//! the end of the time step).

use crate::field::DistField;
use crate::kernels::{naive, KernelCtx, StreamTables};

/// Branch-free pull-stream over planes `x ∈ [x_lo, x_hi)`.
///
/// Requires `src` valid on `[x_lo − k, x_hi + k)` — i.e. halos filled (the
/// ghost-cell contract).
pub fn stream(
    ctx: &KernelCtx,
    tables: &StreamTables,
    src: &DistField,
    dst: &mut DistField,
    x_lo: usize,
    x_hi: usize,
) {
    let d = src.alloc_dims();
    let q = ctx.lat.q();
    let vel = ctx.lat.velocities();
    debug_assert!(x_lo >= ctx.lat.reach(), "stream would read below plane 0");
    debug_assert!(
        x_hi + ctx.lat.reach() <= d.nx,
        "stream would read past the last allocated plane"
    );
    for x in x_lo..x_hi {
        for y in 0..d.ny {
            for z in 0..d.nz {
                let t = d.idx(x, y, z);
                for i in 0..q {
                    let c = vel[i];
                    let xs = (x as isize - c[0] as isize) as usize;
                    let ys = tables.y_for(c[1]).src(y);
                    let zs = tables.z_for(c[2]).src(z);
                    let s = d.idx(xs, ys, zs);
                    dst.slab_mut(i)[t] = src.slab(i)[s];
                }
            }
        }
    }
}

/// GC collide is the naive collide (re-exported for the dispatch table);
/// the rung's collide-side improvements arrive only at DH.
pub use naive::collide;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collision::Bgk;
    use crate::equilibrium::EqOrder;
    use crate::index::{wrap, Dim3};
    use crate::kernels::reference;
    use crate::lattice::LatticeKind;

    fn ctx(kind: LatticeKind) -> KernelCtx {
        let order = if kind == LatticeKind::D3Q39 {
            EqOrder::Third
        } else {
            EqOrder::Second
        };
        KernelCtx::new(kind, order, Bgk::new(0.7).unwrap())
    }

    /// Fill a halo-extended single-rank field's ghosts by periodic wrap.
    fn fill_halo_periodic(f: &mut DistField) {
        let d = f.alloc_dims();
        let h = f.halo();
        let owned_nx = f.owned_dims().nx;
        let plane = d.plane();
        for i in 0..f.q() {
            for g in 0..h {
                // Left ghost g mirrors owned plane owned_nx-h+g (global wrap).
                let src_x = h + wrap(0, (owned_nx - h + g) as i32, owned_nx);
                let dst_x = g;
                let (s, t) = (d.idx(src_x, 0, 0), d.idx(dst_x, 0, 0));
                let slab = f.slab_mut(i);
                slab.copy_within(s..s + plane, t);
                // Right ghost mirrors owned plane g.
                let src_x = h + g;
                let dst_x = h + owned_nx + g;
                let (s, t) = (d.idx(src_x, 0, 0), d.idx(dst_x, 0, 0));
                let slab = f.slab_mut(i);
                slab.copy_within(s..s + plane, t);
            }
        }
    }

    #[test]
    fn ghost_stream_equals_reference_on_periodic_box() {
        for kind in [LatticeKind::D3Q19, LatticeKind::D3Q39] {
            let c = ctx(kind);
            let k = c.lat.reach();
            let dims = Dim3::new(8, 5, 6);
            // Reference on halo-free field.
            let mut flat = DistField::new(c.lat.q(), dims, 0).unwrap();
            let mut state = 123u64;
            for v in flat.as_mut_slice() {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                *v = 0.1 + (state >> 33) as f64 / u32::MAX as f64;
            }
            let mut ref_out = DistField::new(c.lat.q(), dims, 0).unwrap();
            reference::stream_push_periodic(&c, &flat, &mut ref_out);

            // Same data in a halo-extended field.
            let mut halod = DistField::new(c.lat.q(), dims, k).unwrap();
            let d0 = flat.alloc_dims();
            let d1 = halod.alloc_dims();
            for i in 0..c.lat.q() {
                for x in 0..dims.nx {
                    let s = d0.idx(x, 0, 0);
                    let t = d1.idx(x + k, 0, 0);
                    let row = flat.slab(i)[s..s + d0.plane()].to_vec();
                    halod.slab_mut(i)[t..t + d0.plane()].copy_from_slice(&row);
                }
            }
            fill_halo_periodic(&mut halod);
            let tables = StreamTables::new(dims.ny, dims.nz);
            let mut out = DistField::new(c.lat.q(), dims, k).unwrap();
            stream(&c, &tables, &halod, &mut out, k, k + dims.nx);

            // Compare owned regions.
            let mut max = 0.0f64;
            for i in 0..c.lat.q() {
                for x in 0..dims.nx {
                    let rs = d0.idx(x, 0, 0);
                    let os = d1.idx(x + k, 0, 0);
                    for j in 0..d0.plane() {
                        max = max.max((ref_out.slab(i)[rs + j] - out.slab(i)[os + j]).abs());
                    }
                }
            }
            assert_eq!(max, 0.0, "{kind:?}");
        }
    }
}
