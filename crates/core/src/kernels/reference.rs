//! Reference implementation: the paper's Fig. 2/3/4 pseudocode, verbatim.
//!
//! Push-form streaming over a *global periodic* box (no halos), followed by
//! a per-cell BGK collide. Deliberately simple and obviously correct: this
//! is the oracle every optimized kernel — and the whole distributed deep-halo
//! machinery — is tested against. Never used on a hot path.

use crate::equilibrium::feq_i;
use crate::field::DistField;
use crate::index::wrap;
use crate::kernels::{KernelCtx, MAX_Q};
use crate::moments::Moments;

/// Push-stream the whole periodic box: `distr_adv[x+c] ← distr[x]`
/// (paper Fig. 3). `src` and `dst` must be halo-free fields of equal shape.
pub fn stream_push_periodic(ctx: &KernelCtx, src: &DistField, dst: &mut DistField) {
    assert_eq!(src.halo(), 0, "reference kernel is halo-free");
    assert_eq!(dst.halo(), 0);
    let d = src.alloc_dims();
    let q = ctx.lat.q();
    let vel = ctx.lat.velocities();
    for x in 0..d.nx {
        for y in 0..d.ny {
            for z in 0..d.nz {
                let s = d.idx(x, y, z);
                for i in 0..q {
                    let c = vel[i];
                    let xa = wrap(x, c[0], d.nx);
                    let ya = wrap(y, c[1], d.ny);
                    let za = wrap(z, c[2], d.nz);
                    let t = d.idx(xa, ya, za);
                    dst.slab_mut(i)[t] = src.slab(i)[s];
                }
            }
        }
    }
}

/// Per-cell BGK collide over the whole box (paper Fig. 4).
pub fn collide_periodic(ctx: &KernelCtx, f: &mut DistField) {
    assert_eq!(f.halo(), 0, "reference kernel is halo-free");
    let d = f.alloc_dims();
    let q = ctx.lat.q();
    let mut cell = [0.0f64; MAX_Q];
    for x in 0..d.nx {
        for y in 0..d.ny {
            for z in 0..d.nz {
                let lin = d.idx(x, y, z);
                f.gather_cell(lin, &mut cell[..q]);
                let m = Moments::of_cell(&ctx.lat, &cell[..q]);
                for (i, c) in cell[..q].iter_mut().enumerate() {
                    let fe = feq_i(&ctx.lat, ctx.order, i, m.rho, m.u);
                    *c += ctx.omega * (fe - *c);
                }
                f.scatter_cell(lin, &cell[..q]);
            }
        }
    }
}

/// One full reference time step: stream into `tmp`, collide, and leave the
/// post-collision state in `f` (swaps the buffers, like the paper's Fig. 2
/// loop).
pub fn step_periodic(ctx: &KernelCtx, f: &mut DistField, tmp: &mut DistField) {
    stream_push_periodic(ctx, f, tmp);
    collide_periodic(ctx, tmp);
    std::mem::swap(f, tmp);
}

/// Initialise a halo-free field to equilibrium with the given density and
/// velocity everywhere (test helper).
pub fn fill_uniform_equilibrium(ctx: &KernelCtx, f: &mut DistField, rho: f64, u: [f64; 3]) {
    let q = ctx.lat.q();
    let mut cell = [0.0f64; MAX_Q];
    for (i, c) in cell[..q].iter_mut().enumerate() {
        *c = feq_i(&ctx.lat, ctx.order, i, rho, u);
    }
    let n = f.slab_len();
    for i in 0..q {
        f.slab_mut(i)[..n].fill(cell[i]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collision::Bgk;
    use crate::equilibrium::EqOrder;
    use crate::index::Dim3;
    use crate::lattice::LatticeKind;

    fn ctx(kind: LatticeKind) -> KernelCtx {
        let order = if kind == LatticeKind::D3Q39 {
            EqOrder::Third
        } else {
            EqOrder::Second
        };
        KernelCtx::new(kind, order, Bgk::new(0.8).unwrap())
    }

    #[test]
    fn stream_is_a_permutation_conserving_mass() {
        for kind in [LatticeKind::D3Q19, LatticeKind::D3Q39] {
            let c = ctx(kind);
            let dims = Dim3::new(5, 4, 6);
            let mut f = DistField::new(c.lat.q(), dims, 0).unwrap();
            // Distinct values everywhere.
            for i in 0..c.lat.q() {
                for (j, v) in f.slab_mut(i).iter_mut().enumerate() {
                    *v = (i * 1000 + j) as f64;
                }
            }
            let mass_before: f64 = f.as_slice().iter().sum();
            let mut g = DistField::new(c.lat.q(), dims, 0).unwrap();
            stream_push_periodic(&c, &f, &mut g);
            let mass_after: f64 = g.as_slice().iter().sum();
            assert_eq!(mass_before, mass_after, "{kind:?}");
            // Per-slab it is a permutation: sorted values match.
            for i in 0..c.lat.q() {
                let mut a: Vec<f64> = f.slab(i).to_vec();
                let mut b: Vec<f64> = g.slab(i).to_vec();
                a.sort_by(f64::total_cmp);
                b.sort_by(f64::total_cmp);
                assert_eq!(a, b, "{kind:?} slab {i}");
            }
        }
    }

    #[test]
    fn stream_moves_populations_by_velocity() {
        let c = ctx(LatticeKind::D3Q19);
        let dims = Dim3::new(4, 4, 4);
        let mut f = DistField::new(c.lat.q(), dims, 0).unwrap();
        // Tag the cell (1,2,3) in every slab.
        let lin = dims.idx(1, 2, 3);
        for i in 0..c.lat.q() {
            f.slab_mut(i)[lin] = (i + 1) as f64;
        }
        let mut g = DistField::new(c.lat.q(), dims, 0).unwrap();
        stream_push_periodic(&c, &f, &mut g);
        for (i, cvec) in c.lat.velocities().iter().enumerate() {
            let t = dims.idx(
                wrap(1, cvec[0], 4),
                wrap(2, cvec[1], 4),
                wrap(3, cvec[2], 4),
            );
            assert_eq!(g.slab(i)[t], (i + 1) as f64, "slab {i}");
        }
    }

    #[test]
    fn collide_conserves_mass_and_momentum() {
        for kind in [LatticeKind::D3Q19, LatticeKind::D3Q39] {
            let c = ctx(kind);
            let dims = Dim3::new(3, 3, 3);
            let mut f = DistField::new(c.lat.q(), dims, 0).unwrap();
            // Non-equilibrium, positive populations.
            for i in 0..c.lat.q() {
                for (j, v) in f.slab_mut(i).iter_mut().enumerate() {
                    *v = 0.01 + ((i * 37 + j * 11) % 17) as f64 * 0.013;
                }
            }
            let q = c.lat.q();
            let mut pre = Vec::new();
            let mut cell = [0.0; MAX_Q];
            for lin in 0..dims.len() {
                f.gather_cell(lin, &mut cell[..q]);
                pre.push(Moments::of_cell(&c.lat, &cell[..q]));
            }
            collide_periodic(&c, &mut f);
            for (lin, was) in pre.iter().enumerate() {
                f.gather_cell(lin, &mut cell[..q]);
                let now = Moments::of_cell(&c.lat, &cell[..q]);
                assert!((now.rho - was.rho).abs() < 1e-12, "{kind:?}");
                for a in 0..3 {
                    assert!(
                        (now.rho * now.u[a] - was.rho * was.u[a]).abs() < 1e-12,
                        "{kind:?} axis {a}"
                    );
                }
            }
        }
    }

    #[test]
    fn uniform_equilibrium_is_a_fixed_point() {
        for kind in [LatticeKind::D3Q19, LatticeKind::D3Q39] {
            let c = ctx(kind);
            let dims = Dim3::cube(4);
            let mut f = DistField::new(c.lat.q(), dims, 0).unwrap();
            let mut tmp = DistField::new(c.lat.q(), dims, 0).unwrap();
            fill_uniform_equilibrium(&c, &mut f, 1.0, [0.02, 0.01, -0.03]);
            let before = f.clone();
            for _ in 0..3 {
                step_periodic(&c, &mut f, &mut tmp);
            }
            // A uniform equilibrium streams into itself and collides to itself.
            assert!(
                f.max_abs_diff_owned(&before) < 1e-13,
                "{kind:?}: {}",
                f.max_abs_diff_owned(&before)
            );
        }
    }
}
