//! Macroscopic moments of the particle distribution.
//!
//! Density and momentum are the conserved moments driving the BGK collision;
//! the *higher kinetic moments* (deviatoric stress, heat flux) are exactly
//! what the extended D3Q39 model resolves beyond Navier–Stokes (paper §I:
//! “the contributions from higher kinetic moments are no longer negligible”),
//! so they are first-class observables here.

use crate::lattice::Lattice;

/// Conserved moments of one lattice cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Moments {
    /// Mass density ρ = Σ f_i.
    pub rho: f64,
    /// Macroscopic velocity u = (Σ f_i c_i)/ρ.
    pub u: [f64; 3],
}

impl Moments {
    /// Compute ρ and u from the cell's populations (`f.len() == Q`).
    pub fn of_cell(lat: &Lattice, f: &[f64]) -> Self {
        debug_assert_eq!(f.len(), lat.q());
        let mut rho = 0.0;
        let mut m = [0.0; 3];
        for (fi, c) in f.iter().zip(lat.velocities()) {
            rho += fi;
            m[0] += fi * c[0] as f64;
            m[1] += fi * c[1] as f64;
            m[2] += fi * c[2] as f64;
        }
        // Plain division (not reciprocal-multiply) so this stays bit-identical
        // to the naive kernel's `calc_rho_and_vel`; the optimized kernels'
        // reciprocal form is compared against it under tolerance.
        Self {
            rho,
            u: [m[0] / rho, m[1] / rho, m[2] / rho],
        }
    }

    /// Momentum density ρu.
    pub fn momentum(&self) -> [f64; 3] {
        [
            self.rho * self.u[0],
            self.rho * self.u[1],
            self.rho * self.u[2],
        ]
    }

    /// Kinetic energy density ½ρu².
    pub fn kinetic_energy(&self) -> f64 {
        0.5 * self.rho * (self.u[0] * self.u[0] + self.u[1] * self.u[1] + self.u[2] * self.u[2])
    }
}

/// Symmetric rank-2 tensor stored as `[xx, yy, zz, xy, xz, yz]`.
pub type Sym3 = [f64; 6];

/// Momentum-flux tensor `Π_ab = Σ f_i c_a c_b` of one cell.
pub fn momentum_flux(lat: &Lattice, f: &[f64]) -> Sym3 {
    debug_assert_eq!(f.len(), lat.q());
    let mut p = [0.0; 6];
    for (fi, c) in f.iter().zip(lat.velocities()) {
        let cx = c[0] as f64;
        let cy = c[1] as f64;
        let cz = c[2] as f64;
        p[0] += fi * cx * cx;
        p[1] += fi * cy * cy;
        p[2] += fi * cz * cz;
        p[3] += fi * cx * cy;
        p[4] += fi * cx * cz;
        p[5] += fi * cy * cz;
    }
    p
}

/// Non-equilibrium part of the momentum flux, `Π^neq = Σ (f_i − f_i^eq) c c`,
/// proportional to the viscous stress in the hydrodynamic limit.
pub fn noneq_stress(lat: &Lattice, order: crate::equilibrium::EqOrder, f: &[f64]) -> Sym3 {
    let m = Moments::of_cell(lat, f);
    let mut feq = vec![0.0; lat.q()];
    crate::equilibrium::feq(lat, order, m.rho, m.u, &mut feq);
    let mut p = [0.0; 6];
    for ((fi, fe), c) in f.iter().zip(&feq).zip(lat.velocities()) {
        let d = fi - fe;
        let cx = c[0] as f64;
        let cy = c[1] as f64;
        let cz = c[2] as f64;
        p[0] += d * cx * cx;
        p[1] += d * cy * cy;
        p[2] += d * cz * cz;
        p[3] += d * cx * cy;
        p[4] += d * cx * cz;
        p[5] += d * cy * cz;
    }
    p
}

/// Peculiar-velocity heat flux `q_a = ½ Σ f_i |c_i − u|² (c_i − u)_a` —
/// a third-order moment that only the beyond-Navier-Stokes model transports
/// with controlled error.
pub fn heat_flux(lat: &Lattice, f: &[f64], rho_u: &Moments) -> [f64; 3] {
    debug_assert_eq!(f.len(), lat.q());
    let u = rho_u.u;
    let mut q = [0.0; 3];
    for (fi, c) in f.iter().zip(lat.velocities()) {
        let v = [c[0] as f64 - u[0], c[1] as f64 - u[1], c[2] as f64 - u[2]];
        let v2 = v[0] * v[0] + v[1] * v[1] + v[2] * v[2];
        for a in 0..3 {
            q[a] += 0.5 * fi * v2 * v[a];
        }
    }
    q
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::equilibrium::{feq, EqOrder};
    use crate::lattice::LatticeKind;

    #[test]
    fn moments_recover_equilibrium_inputs() {
        for kind in [LatticeKind::D3Q19, LatticeKind::D3Q39] {
            let lat = Lattice::new(kind);
            let rho = 1.07;
            let u = [0.05, -0.03, 0.01];
            let mut f = vec![0.0; lat.q()];
            feq(&lat, EqOrder::Second, rho, u, &mut f);
            let m = Moments::of_cell(&lat, &f);
            assert!((m.rho - rho).abs() < 1e-13);
            for a in 0..3 {
                assert!((m.u[a] - u[a]).abs() < 1e-13);
            }
        }
    }

    #[test]
    fn equilibrium_has_zero_noneq_stress() {
        for (kind, order) in [
            (LatticeKind::D3Q19, EqOrder::Second),
            (LatticeKind::D3Q39, EqOrder::Third),
        ] {
            let lat = Lattice::new(kind);
            let mut f = vec![0.0; lat.q()];
            feq(&lat, order, 1.0, [0.04, 0.02, -0.01], &mut f);
            let s = noneq_stress(&lat, order, &f);
            for v in s {
                assert!(v.abs() < 1e-13, "{kind:?}: {s:?}");
            }
        }
    }

    #[test]
    fn momentum_flux_of_rest_gas_is_isotropic_pressure() {
        let lat = Lattice::new(LatticeKind::D3Q39);
        let mut f = vec![0.0; lat.q()];
        feq(&lat, EqOrder::Third, 2.0, [0.0; 3], &mut f);
        let p = momentum_flux(&lat, &f);
        let expect = 2.0 * lat.cs2();
        for d in 0..3 {
            assert!((p[d] - expect).abs() < 1e-13);
        }
        for od in 3..6 {
            assert!(p[od].abs() < 1e-14);
        }
    }

    #[test]
    fn heat_flux_vanishes_at_equilibrium_rest() {
        // For a resting Maxwellian the odd central moments vanish.
        for kind in [LatticeKind::D3Q19, LatticeKind::D3Q39] {
            let lat = Lattice::new(kind);
            let mut f = vec![0.0; lat.q()];
            feq(&lat, EqOrder::Second, 1.0, [0.0; 3], &mut f);
            let m = Moments::of_cell(&lat, &f);
            let q = heat_flux(&lat, &f, &m);
            for a in 0..3 {
                assert!(q[a].abs() < 1e-13, "{kind:?}: {q:?}");
            }
        }
    }

    #[test]
    fn kinetic_energy_and_momentum_helpers() {
        let m = Moments {
            rho: 2.0,
            u: [0.1, 0.0, 0.0],
        };
        assert!((m.kinetic_energy() - 0.5 * 2.0 * 0.01).abs() < 1e-15);
        assert_eq!(m.momentum(), [0.2, 0.0, 0.0]);
    }
}
