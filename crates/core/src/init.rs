//! Initial conditions.
//!
//! All initialisers set the field to the local equilibrium of a prescribed
//! macroscopic state — the standard LBM start that avoids initial
//! transients beyond the physical ones.
//!
//! The `*_streamed` variants build the *arrivals* representation the
//! AA-pattern storage mode ([`crate::field::StorageMode::InPlaceAa`]) stores
//! at even steps: population `i` of a cell holds the equilibrium evaluated
//! at the **upwind** site `x − c_i` (periodically wrapped), i.e. the
//! pull-stream of the two-grid initial field. Initialising AA this way makes
//! the in-place trajectory site-for-site the streamed image of the two-grid
//! trajectory, which is what the `aa ≡ two_grid` parity suites compare.

use crate::equilibrium::feq_i;
use crate::field::DistField;
use crate::index::Dim3;
use crate::kernels::{KernelCtx, MAX_Q};

/// Periodic wrap of a possibly-negative coordinate into `[0, n)`.
#[inline]
fn wrap_coord(i: isize, n: usize) -> usize {
    i.rem_euclid(n as isize) as usize
}

/// Set every owned and halo cell to equilibrium at `(rho, u)`.
pub fn uniform(ctx: &KernelCtx, f: &mut DistField, rho: f64, u: [f64; 3]) {
    let q = ctx.lat.q();
    let mut cell = [0.0f64; MAX_Q];
    for (i, c) in cell[..q].iter_mut().enumerate() {
        *c = feq_i(&ctx.lat, ctx.order, i, rho, u);
    }
    for i in 0..q {
        let v = cell[i];
        f.slab_mut(i).fill(v);
    }
}

/// Set each cell to equilibrium of a macroscopic state given by a closure of
/// *global* coordinates (the subdomain mapping is the caller's business; the
/// closure receives allocation-local coordinates here).
pub fn from_macroscopic<F>(ctx: &KernelCtx, f: &mut DistField, mut state: F)
where
    F: FnMut(usize, usize, usize) -> (f64, [f64; 3]),
{
    let d = f.alloc_dims();
    let q = ctx.lat.q();
    let mut cell = [0.0f64; MAX_Q];
    for x in 0..d.nx {
        for y in 0..d.ny {
            for z in 0..d.nz {
                let (rho, u) = state(x, y, z);
                for (i, c) in cell[..q].iter_mut().enumerate() {
                    *c = feq_i(&ctx.lat, ctx.order, i, rho, u);
                }
                let lin = d.idx(x, y, z);
                f.scatter_cell(lin, &cell[..q]);
            }
        }
    }
}

/// AA-pattern (arrivals) initialisation: set population `i` of every
/// allocated cell to the equilibrium of the macroscopic state at its
/// *upwind* site — `f_i(x) = f^eq_i(state(x − c_i))`, coordinates wrapped
/// over the **global** periodic box.
///
/// `state` receives wrapped global coordinates; `x_start` is this rank's
/// first owned global x plane (allocation-local `x` maps to global
/// `x_start + x − halo` before the upwind shift and wrap). `global.ny` /
/// `global.nz` must equal the allocated cross-section (the decomposition
/// cuts x only).
pub fn from_macroscopic_streamed<F>(
    ctx: &KernelCtx,
    f: &mut DistField,
    global: Dim3,
    x_start: isize,
    mut state: F,
) where
    F: FnMut(usize, usize, usize) -> (f64, [f64; 3]),
{
    let d = f.alloc_dims();
    debug_assert_eq!(d.ny, global.ny, "decomposition cuts x only");
    debug_assert_eq!(d.nz, global.nz, "decomposition cuts x only");
    let halo = f.halo() as isize;
    let q = ctx.lat.q();
    let vel = ctx.lat.velocities().to_vec();
    for x in 0..d.nx {
        let gx = x_start + x as isize - halo;
        for y in 0..d.ny {
            for z in 0..d.nz {
                let lin = d.idx(x, y, z);
                for (i, c) in vel.iter().enumerate().take(q) {
                    let ux = wrap_coord(gx - c[0] as isize, global.nx);
                    let uy = wrap_coord(y as isize - c[1] as isize, global.ny);
                    let uz = wrap_coord(z as isize - c[2] as isize, global.nz);
                    let (rho, u) = state(ux, uy, uz);
                    f.slab_mut(i)[lin] = feq_i(&ctx.lat, ctx.order, i, rho, u);
                }
            }
        }
    }
}

/// Taylor–Green-like vortex in the x–y plane (z-invariant), the classic
/// viscosity-validation flow:
///
/// `u_x =  u0 · cos(κx̂) · sin(κŷ)`,
/// `u_y = −u0 · sin(κx̂) · cos(κŷ)`, with `x̂ = 2π(x+offset_x)/n`.
///
/// `global_nx`/`global_ny` set the wavelength; `x_offset` maps local to
/// global x so decomposed ranks initialise consistently.
#[allow(clippy::too_many_arguments)]
pub fn taylor_green(
    ctx: &KernelCtx,
    f: &mut DistField,
    rho0: f64,
    u0: f64,
    global_nx: usize,
    global_ny: usize,
    x_offset: isize,
    halo: usize,
) {
    let kx = 2.0 * std::f64::consts::PI / global_nx as f64;
    let ky = 2.0 * std::f64::consts::PI / global_ny as f64;
    from_macroscopic(ctx, f, |x, y, _z| {
        let gx = (x as isize - halo as isize + x_offset) as f64;
        let gy = y as f64;
        let ux = u0 * (kx * gx).cos() * (ky * gy).sin();
        let uy = -u0 * (kx * gx).sin() * (ky * gy).cos();
        (rho0, [ux, uy, 0.0])
    });
}

/// [`taylor_green`] in the AA arrivals representation (see
/// [`from_macroscopic_streamed`]): the streamed image of the two-grid
/// Taylor–Green start, for [`crate::field::StorageMode::InPlaceAa`] runs.
pub fn taylor_green_streamed(
    ctx: &KernelCtx,
    f: &mut DistField,
    rho0: f64,
    u0: f64,
    global: Dim3,
    x_start: isize,
) {
    let kx = 2.0 * std::f64::consts::PI / global.nx as f64;
    let ky = 2.0 * std::f64::consts::PI / global.ny as f64;
    from_macroscopic_streamed(ctx, f, global, x_start, |gx, gy, _gz| {
        let gx = gx as f64;
        let gy = gy as f64;
        let ux = u0 * (kx * gx).cos() * (ky * gy).sin();
        let uy = -u0 * (kx * gx).sin() * (ky * gy).cos();
        (rho0, [ux, uy, 0.0])
    });
}

/// A shear wave `u_x(y) = u0 sin(2πy/ny)` whose decay rate measures ν.
pub fn shear_wave(ctx: &KernelCtx, f: &mut DistField, rho0: f64, u0: f64, global_ny: usize) {
    let k = 2.0 * std::f64::consts::PI / global_ny as f64;
    from_macroscopic(ctx, f, |_x, y, _z| {
        (rho0, [u0 * (k * y as f64).sin(), 0.0, 0.0])
    });
}

/// A Gaussian density pulse at the box centre (acoustic test / Fig. 1-style
/// visual).
pub fn density_pulse(ctx: &KernelCtx, f: &mut DistField, rho0: f64, amplitude: f64, width: f64) {
    let d = f.alloc_dims();
    let cx = d.nx as f64 / 2.0;
    let cy = d.ny as f64 / 2.0;
    let cz = d.nz as f64 / 2.0;
    from_macroscopic(ctx, f, |x, y, z| {
        let r2 = (x as f64 - cx).powi(2) + (y as f64 - cy).powi(2) + (z as f64 - cz).powi(2);
        (
            rho0 + amplitude * (-r2 / (2.0 * width * width)).exp(),
            [0.0; 3],
        )
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collision::Bgk;
    use crate::equilibrium::EqOrder;
    use crate::index::Dim3;
    use crate::lattice::LatticeKind;
    use crate::moments::Moments;

    fn ctx() -> KernelCtx {
        KernelCtx::new(LatticeKind::D3Q19, EqOrder::Second, Bgk::new(0.8).unwrap())
    }

    #[test]
    fn uniform_sets_exact_equilibrium_everywhere() {
        let c = ctx();
        let mut f = DistField::new(c.lat.q(), Dim3::cube(4), 1).unwrap();
        uniform(&c, &mut f, 1.2, [0.01, 0.02, 0.03]);
        let mut cell = [0.0; MAX_Q];
        let lin = f.idx(3, 2, 1);
        f.gather_cell(lin, &mut cell[..c.lat.q()]);
        let m = Moments::of_cell(&c.lat, &cell[..c.lat.q()]);
        assert!((m.rho - 1.2).abs() < 1e-13);
        assert!((m.u[0] - 0.01).abs() < 1e-13);
    }

    #[test]
    fn taylor_green_has_zero_net_momentum() {
        let c = ctx();
        let n = 8;
        let mut f = DistField::new(c.lat.q(), Dim3::cube(n), 0).unwrap();
        taylor_green(&c, &mut f, 1.0, 0.03, n, n, 0, 0);
        let mut mom = [0.0f64; 3];
        let mut cell = [0.0; MAX_Q];
        for lin in 0..f.slab_len() {
            f.gather_cell(lin, &mut cell[..c.lat.q()]);
            let m = Moments::of_cell(&c.lat, &cell[..c.lat.q()]);
            for a in 0..3 {
                mom[a] += m.rho * m.u[a];
            }
        }
        for a in 0..3 {
            assert!(mom[a].abs() < 1e-10, "axis {a}: {}", mom[a]);
        }
    }

    #[test]
    fn density_pulse_peaks_at_centre() {
        let c = ctx();
        let n = 9;
        let mut f = DistField::new(c.lat.q(), Dim3::cube(n), 0).unwrap();
        density_pulse(&c, &mut f, 1.0, 0.1, 2.0);
        let d = f.alloc_dims();
        let mut cell = [0.0; MAX_Q];
        f.gather_cell(d.idx(4, 4, 4), &mut cell[..c.lat.q()]);
        let centre = Moments::of_cell(&c.lat, &cell[..c.lat.q()]).rho;
        f.gather_cell(d.idx(0, 0, 0), &mut cell[..c.lat.q()]);
        let corner = Moments::of_cell(&c.lat, &cell[..c.lat.q()]).rho;
        assert!(centre > corner + 0.05, "{centre} vs {corner}");
    }

    #[test]
    fn streamed_init_is_the_gather_of_the_plain_init() {
        // AA arrivals init must equal the pull-stream of the two-grid init:
        // f_i(x) = F0[wrap(x − c_i)][i], site for site, bitwise.
        let c = ctx();
        let g = Dim3::new(6, 7, 5);
        let mut plain = DistField::new(c.lat.q(), g, 0).unwrap();
        taylor_green(&c, &mut plain, 1.0, 0.03, g.nx, g.ny, 0, 0);
        let mut streamed = DistField::new(c.lat.q(), g, 0).unwrap();
        taylor_green_streamed(&c, &mut streamed, 1.0, 0.03, g, 0);
        let d = plain.alloc_dims();
        for (i, cv) in c.lat.velocities().iter().enumerate() {
            for x in 0..g.nx {
                for y in 0..g.ny {
                    for z in 0..g.nz {
                        let ux = wrap_coord(x as isize - cv[0] as isize, g.nx);
                        let uy = wrap_coord(y as isize - cv[1] as isize, g.ny);
                        let uz = wrap_coord(z as isize - cv[2] as isize, g.nz);
                        assert_eq!(
                            streamed.slab(i)[d.idx(x, y, z)],
                            plain.slab(i)[d.idx(ux, uy, uz)],
                            "i={i} ({x},{y},{z})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn decomposed_taylor_green_matches_global() {
        // Two ranks initialising with offsets must reproduce the global field.
        let c = ctx();
        let n = 8;
        let mut whole = DistField::new(c.lat.q(), Dim3::cube(n), 0).unwrap();
        taylor_green(&c, &mut whole, 1.0, 0.04, n, n, 0, 0);
        let mut part = DistField::new(c.lat.q(), Dim3::new(4, n, n), 0).unwrap();
        taylor_green(&c, &mut part, 1.0, 0.04, n, n, 4, 0); // right half
        let dw = whole.alloc_dims();
        let dp = part.alloc_dims();
        for i in 0..c.lat.q() {
            for x in 0..4 {
                let a = dw.idx(x + 4, 0, 0);
                let b = dp.idx(x, 0, 0);
                assert_eq!(
                    &whole.slab(i)[a..a + dw.plane()],
                    &part.slab(i)[b..b + dp.plane()]
                );
            }
        }
    }
}
