//! Initial conditions.
//!
//! All initialisers set the field to the local equilibrium of a prescribed
//! macroscopic state — the standard LBM start that avoids initial
//! transients beyond the physical ones.

use crate::equilibrium::feq_i;
use crate::field::DistField;
use crate::kernels::{KernelCtx, MAX_Q};

/// Set every owned and halo cell to equilibrium at `(rho, u)`.
pub fn uniform(ctx: &KernelCtx, f: &mut DistField, rho: f64, u: [f64; 3]) {
    let q = ctx.lat.q();
    let mut cell = [0.0f64; MAX_Q];
    for (i, c) in cell[..q].iter_mut().enumerate() {
        *c = feq_i(&ctx.lat, ctx.order, i, rho, u);
    }
    for i in 0..q {
        let v = cell[i];
        f.slab_mut(i).fill(v);
    }
}

/// Set each cell to equilibrium of a macroscopic state given by a closure of
/// *global* coordinates (the subdomain mapping is the caller's business; the
/// closure receives allocation-local coordinates here).
pub fn from_macroscopic<F>(ctx: &KernelCtx, f: &mut DistField, mut state: F)
where
    F: FnMut(usize, usize, usize) -> (f64, [f64; 3]),
{
    let d = f.alloc_dims();
    let q = ctx.lat.q();
    let mut cell = [0.0f64; MAX_Q];
    for x in 0..d.nx {
        for y in 0..d.ny {
            for z in 0..d.nz {
                let (rho, u) = state(x, y, z);
                for (i, c) in cell[..q].iter_mut().enumerate() {
                    *c = feq_i(&ctx.lat, ctx.order, i, rho, u);
                }
                let lin = d.idx(x, y, z);
                f.scatter_cell(lin, &cell[..q]);
            }
        }
    }
}

/// Taylor–Green-like vortex in the x–y plane (z-invariant), the classic
/// viscosity-validation flow:
///
/// `u_x =  u0 · cos(κx̂) · sin(κŷ)`,
/// `u_y = −u0 · sin(κx̂) · cos(κŷ)`, with `x̂ = 2π(x+offset_x)/n`.
///
/// `global_nx`/`global_ny` set the wavelength; `x_offset` maps local to
/// global x so decomposed ranks initialise consistently.
#[allow(clippy::too_many_arguments)]
pub fn taylor_green(
    ctx: &KernelCtx,
    f: &mut DistField,
    rho0: f64,
    u0: f64,
    global_nx: usize,
    global_ny: usize,
    x_offset: isize,
    halo: usize,
) {
    let kx = 2.0 * std::f64::consts::PI / global_nx as f64;
    let ky = 2.0 * std::f64::consts::PI / global_ny as f64;
    from_macroscopic(ctx, f, |x, y, _z| {
        let gx = (x as isize - halo as isize + x_offset) as f64;
        let gy = y as f64;
        let ux = u0 * (kx * gx).cos() * (ky * gy).sin();
        let uy = -u0 * (kx * gx).sin() * (ky * gy).cos();
        (rho0, [ux, uy, 0.0])
    });
}

/// A shear wave `u_x(y) = u0 sin(2πy/ny)` whose decay rate measures ν.
pub fn shear_wave(ctx: &KernelCtx, f: &mut DistField, rho0: f64, u0: f64, global_ny: usize) {
    let k = 2.0 * std::f64::consts::PI / global_ny as f64;
    from_macroscopic(ctx, f, |_x, y, _z| {
        (rho0, [u0 * (k * y as f64).sin(), 0.0, 0.0])
    });
}

/// A Gaussian density pulse at the box centre (acoustic test / Fig. 1-style
/// visual).
pub fn density_pulse(ctx: &KernelCtx, f: &mut DistField, rho0: f64, amplitude: f64, width: f64) {
    let d = f.alloc_dims();
    let cx = d.nx as f64 / 2.0;
    let cy = d.ny as f64 / 2.0;
    let cz = d.nz as f64 / 2.0;
    from_macroscopic(ctx, f, |x, y, z| {
        let r2 = (x as f64 - cx).powi(2) + (y as f64 - cy).powi(2) + (z as f64 - cz).powi(2);
        (
            rho0 + amplitude * (-r2 / (2.0 * width * width)).exp(),
            [0.0; 3],
        )
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collision::Bgk;
    use crate::equilibrium::EqOrder;
    use crate::index::Dim3;
    use crate::lattice::LatticeKind;
    use crate::moments::Moments;

    fn ctx() -> KernelCtx {
        KernelCtx::new(LatticeKind::D3Q19, EqOrder::Second, Bgk::new(0.8).unwrap())
    }

    #[test]
    fn uniform_sets_exact_equilibrium_everywhere() {
        let c = ctx();
        let mut f = DistField::new(c.lat.q(), Dim3::cube(4), 1).unwrap();
        uniform(&c, &mut f, 1.2, [0.01, 0.02, 0.03]);
        let mut cell = [0.0; MAX_Q];
        let lin = f.idx(3, 2, 1);
        f.gather_cell(lin, &mut cell[..c.lat.q()]);
        let m = Moments::of_cell(&c.lat, &cell[..c.lat.q()]);
        assert!((m.rho - 1.2).abs() < 1e-13);
        assert!((m.u[0] - 0.01).abs() < 1e-13);
    }

    #[test]
    fn taylor_green_has_zero_net_momentum() {
        let c = ctx();
        let n = 8;
        let mut f = DistField::new(c.lat.q(), Dim3::cube(n), 0).unwrap();
        taylor_green(&c, &mut f, 1.0, 0.03, n, n, 0, 0);
        let mut mom = [0.0f64; 3];
        let mut cell = [0.0; MAX_Q];
        for lin in 0..f.slab_len() {
            f.gather_cell(lin, &mut cell[..c.lat.q()]);
            let m = Moments::of_cell(&c.lat, &cell[..c.lat.q()]);
            for a in 0..3 {
                mom[a] += m.rho * m.u[a];
            }
        }
        for a in 0..3 {
            assert!(mom[a].abs() < 1e-10, "axis {a}: {}", mom[a]);
        }
    }

    #[test]
    fn density_pulse_peaks_at_centre() {
        let c = ctx();
        let n = 9;
        let mut f = DistField::new(c.lat.q(), Dim3::cube(n), 0).unwrap();
        density_pulse(&c, &mut f, 1.0, 0.1, 2.0);
        let d = f.alloc_dims();
        let mut cell = [0.0; MAX_Q];
        f.gather_cell(d.idx(4, 4, 4), &mut cell[..c.lat.q()]);
        let centre = Moments::of_cell(&c.lat, &cell[..c.lat.q()]).rho;
        f.gather_cell(d.idx(0, 0, 0), &mut cell[..c.lat.q()]);
        let corner = Moments::of_cell(&c.lat, &cell[..c.lat.q()]).rho;
        assert!(centre > corner + 0.05, "{centre} vs {corner}");
    }

    #[test]
    fn decomposed_taylor_green_matches_global() {
        // Two ranks initialising with offsets must reproduce the global field.
        let c = ctx();
        let n = 8;
        let mut whole = DistField::new(c.lat.q(), Dim3::cube(n), 0).unwrap();
        taylor_green(&c, &mut whole, 1.0, 0.04, n, n, 0, 0);
        let mut part = DistField::new(c.lat.q(), Dim3::new(4, n, n), 0).unwrap();
        taylor_green(&c, &mut part, 1.0, 0.04, n, n, 4, 0); // right half
        let dw = whole.alloc_dims();
        let dp = part.alloc_dims();
        for i in 0..c.lat.q() {
            for x in 0..4 {
                let a = dw.idx(x + 4, 0, 0);
                let b = dp.idx(x, 0, 0);
                assert_eq!(
                    &whole.slab(i)[a..a + dw.plane()],
                    &part.slab(i)[b..b + dp.plane()]
                );
            }
        }
    }
}
