//! Minimal JSON emitter for the machine-readable benchmark artifacts.
//!
//! The workspace is offline (no `serde_json`); the harness needs only to
//! *write* JSON, so this module provides a tiny value tree with a renderer.
//! Numbers are emitted via Rust's shortest-roundtrip float formatting;
//! non-finite floats become `null` (JSON has no NaN/Inf).

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone)]
pub enum Json {
    /// `null`.
    Null,
    /// `true`/`false`.
    Bool(bool),
    /// Integer (kept exact, unlike going through f64).
    Int(i64),
    /// Float; non-finite renders as `null`.
    Num(f64),
    /// String (escaped on render).
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for object values.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Convenience constructor for string values.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Render as compact JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Render with 2-space indentation (stable, diff-friendly artifacts).
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Num(v) => {
                if v.is_finite() {
                    let _ = write!(out, "{v:?}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => write_seq(out, indent, depth, '[', ']', items.len(), |out, i| {
                items[i].write(out, indent, depth + 1)
            }),
            Json::Obj(pairs) => write_seq(out, indent, depth, '{', '}', pairs.len(), |out, i| {
                write_escaped(out, &pairs[i].0);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                pairs[i].1.write(out, indent, depth + 1)
            }),
        }
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * (depth + 1)));
        }
        item(out, i);
    }
    if len > 0 {
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * depth));
        }
    }
    out.push(close);
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_scalars_and_nesting() {
        let v = Json::obj(vec![
            ("name", Json::str("D3Q19")),
            ("mflups", Json::Num(12.5)),
            ("steps", Json::Int(8)),
            ("ok", Json::Bool(true)),
            ("none", Json::Null),
            ("arr", Json::Arr(vec![Json::Int(1), Json::Int(2)])),
        ]);
        assert_eq!(
            v.render(),
            r#"{"name":"D3Q19","mflups":12.5,"steps":8,"ok":true,"none":null,"arr":[1,2]}"#
        );
    }

    #[test]
    fn escapes_strings_and_maps_nonfinite_to_null() {
        let v = Json::Arr(vec![
            Json::str("a\"b\\c\nd"),
            Json::Num(f64::NAN),
            Json::Num(f64::INFINITY),
        ]);
        assert_eq!(v.render(), r#"["a\"b\\c\nd",null,null]"#);
    }

    #[test]
    fn pretty_output_is_indented_and_reparsable_shape() {
        let v = Json::obj(vec![("k", Json::Arr(vec![Json::Int(1)]))]);
        let s = v.render_pretty();
        assert!(s.contains("\"k\": [\n"));
        assert!(s.ends_with("}\n"));
        // Float roundtrip formatting keeps full precision.
        let f = Json::Num(0.1 + 0.2);
        assert_eq!(f.render(), format!("{:?}", 0.1f64 + 0.2f64));
    }

    #[test]
    fn empty_containers_stay_compact() {
        assert_eq!(Json::Arr(vec![]).render_pretty(), "[]\n");
        assert_eq!(Json::Obj(vec![]).render(), "{}");
    }
}
