//! Minimal JSON emitter and parser for the machine-readable benchmark
//! artifacts.
//!
//! The workspace is offline (no `serde_json`); this module provides a tiny
//! value tree with a renderer, plus the recursive-descent parser the
//! perf-regression gate needs to *read* committed artifacts back. Numbers
//! are emitted via Rust's shortest-roundtrip float formatting; non-finite
//! floats become `null` (JSON has no NaN/Inf).

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone)]
pub enum Json {
    /// `null`.
    Null,
    /// `true`/`false`.
    Bool(bool),
    /// Integer (kept exact, unlike going through f64).
    Int(i64),
    /// Float; non-finite renders as `null`.
    Num(f64),
    /// String (escaped on render).
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for object values.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Convenience constructor for string values.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Render as compact JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Render with 2-space indentation (stable, diff-friendly artifacts).
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    /// Parse a JSON document. Integers without fraction/exponent parse as
    /// [`Json::Int`], everything else numeric as [`Json::Num`]. Returns a
    /// byte offset + message on malformed input.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let v = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(v)
    }

    /// Object field lookup (`None` for non-objects and missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric value as f64 (`Int` widened), else `None`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            Json::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// String value, else `None`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Num(v) => {
                if v.is_finite() {
                    let _ = write!(out, "{v:?}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => write_seq(out, indent, depth, '[', ']', items.len(), |out, i| {
                items[i].write(out, indent, depth + 1)
            }),
            Json::Obj(pairs) => write_seq(out, indent, depth, '{', '}', pairs.len(), |out, i| {
                write_escaped(out, &pairs[i].0);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                pairs[i].1.write(out, indent, depth + 1)
            }),
        }
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * (depth + 1)));
        }
        item(out, i);
    }
    if len > 0 {
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * depth));
        }
    }
    out.push(close);
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("expected {lit:?} at byte {pos}", pos = *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'n') => expect(bytes, pos, "null").map(|()| Json::Null),
        Some(b't') => expect(bytes, pos, "true").map(|()| Json::Bool(true)),
        Some(b'f') => expect(bytes, pos, "false").map(|()| Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, ":")?;
                pairs.push((key, parse_value(bytes, pos)?));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(pairs));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}", pos = *pos));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or_else(|| "truncated \\u escape".to_string())?;
                        let cp = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("bad \\u escape {hex:?}"))?;
                        // Artifacts never contain surrogate pairs; map
                        // unpaired surrogates to the replacement char.
                        out.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    other => return Err(format!("bad escape {other:?}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Copy one UTF-8 scalar (multi-byte sequences intact).
                let s = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| "invalid UTF-8 in string".to_string())?;
                let ch = s.chars().next().unwrap();
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut fractional = false;
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                fractional = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).unwrap();
    if *pos == start {
        return Err(format!("expected value at byte {start}"));
    }
    if !fractional {
        if let Ok(i) = text.parse::<i64>() {
            return Ok(Json::Int(i));
        }
    }
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("bad number {text:?} at byte {start}"))
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_scalars_and_nesting() {
        let v = Json::obj(vec![
            ("name", Json::str("D3Q19")),
            ("mflups", Json::Num(12.5)),
            ("steps", Json::Int(8)),
            ("ok", Json::Bool(true)),
            ("none", Json::Null),
            ("arr", Json::Arr(vec![Json::Int(1), Json::Int(2)])),
        ]);
        assert_eq!(
            v.render(),
            r#"{"name":"D3Q19","mflups":12.5,"steps":8,"ok":true,"none":null,"arr":[1,2]}"#
        );
    }

    #[test]
    fn escapes_strings_and_maps_nonfinite_to_null() {
        let v = Json::Arr(vec![
            Json::str("a\"b\\c\nd"),
            Json::Num(f64::NAN),
            Json::Num(f64::INFINITY),
        ]);
        assert_eq!(v.render(), r#"["a\"b\\c\nd",null,null]"#);
    }

    #[test]
    fn pretty_output_is_indented_and_reparsable_shape() {
        let v = Json::obj(vec![("k", Json::Arr(vec![Json::Int(1)]))]);
        let s = v.render_pretty();
        assert!(s.contains("\"k\": [\n"));
        assert!(s.ends_with("}\n"));
        // Float roundtrip formatting keeps full precision.
        let f = Json::Num(0.1 + 0.2);
        assert_eq!(f.render(), format!("{:?}", 0.1f64 + 0.2f64));
    }

    #[test]
    fn empty_containers_stay_compact() {
        assert_eq!(Json::Arr(vec![]).render_pretty(), "[]\n");
        assert_eq!(Json::Obj(vec![]).render(), "{}");
    }

    #[test]
    fn parse_roundtrips_rendered_artifacts() {
        let doc = Json::obj(vec![
            ("schema", Json::str("lbm-bench/kernels-mflups/v5")),
            ("ok", Json::Bool(true)),
            ("none", Json::Null),
            ("n", Json::Int(-42)),
            ("x", Json::Num(0.7118)),
            (
                "summary",
                Json::obj(vec![(
                    "D3Q19",
                    Json::obj(vec![("aa_over_two_grid", Json::Num(0.86))]),
                )]),
            ),
            ("arr", Json::Arr(vec![Json::Int(1), Json::Num(2.5)])),
        ]);
        for rendered in [doc.render(), doc.render_pretty()] {
            let back = Json::parse(&rendered).unwrap();
            assert_eq!(back.render(), doc.render());
        }
    }

    #[test]
    fn parse_accessors_walk_nested_objects() {
        let v =
            Json::parse(r#"{"summary":{"D3Q19":{"aa_over_two_grid":0.86,"name":"aa"}}}"#).unwrap();
        let entry = v.get("summary").and_then(|s| s.get("D3Q19")).unwrap();
        assert_eq!(
            entry.get("aa_over_two_grid").and_then(Json::as_f64),
            Some(0.86)
        );
        assert_eq!(entry.get("name").and_then(Json::as_str), Some("aa"));
        assert_eq!(v.get("missing").map(|_| ()), None);
    }

    #[test]
    fn parse_handles_escapes_and_rejects_garbage() {
        let v = Json::parse(r#"["a\"b\\c\nd", "A"]"#).unwrap();
        match v {
            Json::Arr(items) => {
                assert_eq!(items[0].as_str(), Some("a\"b\\c\nd"));
                assert_eq!(items[1].as_str(), Some("A"));
            }
            other => panic!("expected array, got {other:?}"),
        }
        assert!(Json::parse("{\"k\": }").is_err());
        assert!(Json::parse("[1, 2").is_err());
        assert!(Json::parse("true false").is_err());
    }

    #[test]
    fn parse_distinguishes_ints_from_floats() {
        assert!(matches!(Json::parse("7").unwrap(), Json::Int(7)));
        assert!(matches!(Json::parse("-7").unwrap(), Json::Int(-7)));
        assert!(matches!(Json::parse("7.0").unwrap(), Json::Num(_)));
        assert!(matches!(Json::parse("1e3").unwrap(), Json::Num(_)));
        // i64-overflowing integers degrade to floats instead of failing.
        assert!(matches!(
            Json::parse("99999999999999999999").unwrap(),
            Json::Num(_)
        ));
    }
}
