//! Perf-regression smoke gate over `bench_mflups` artifacts.
//!
//! Compares the *machine-relative* ratio metrics of a freshly measured
//! artifact against a committed baseline and fails (exit 1) when any
//! shared summary entry regresses beyond the tolerance band. Absolute
//! MFlup/s are not compared — they track the host, not the code — but the
//! summary ratios (`aa_over_two_grid`, `fused_over_simd`,
//! `sparse_over_dense_per_fluid_cell`) divide out the machine and are
//! comparable across hosts to within measurement noise, which the
//! tolerance band absorbs.
//!
//! ```text
//! perf_gate --baseline BENCH_kernels.json --measured fresh.json \
//!           [--tolerance 0.25] [--metrics aa_over_two_grid,fused_over_simd]
//! ```
//!
//! Entries present in only one artifact are skipped (the smoke sweep may
//! run a subset of the committed lattice matrix); a gate run that finds
//! *no* comparable entry fails loudly rather than passing vacuously.

use std::process::ExitCode;

use lbm_bench::json::Json;

struct Args {
    baseline: String,
    measured: String,
    tolerance: f64,
    metrics: Vec<String>,
}

fn usage(err: &str) -> ! {
    eprintln!("error: {err}");
    eprintln!(
        "usage: perf_gate --baseline PATH --measured PATH \
         [--tolerance T] [--metrics M1,M2]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut a = Args {
        baseline: String::new(),
        measured: String::new(),
        tolerance: 0.25,
        metrics: vec![
            "aa_over_two_grid".to_string(),
            "fused_over_simd".to_string(),
            "sparse_over_dense_per_fluid_cell".to_string(),
        ],
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let take = |argv: &[String], i: &mut usize, flag: &str| -> String {
        *i += 1;
        argv.get(*i)
            .unwrap_or_else(|| usage(&format!("{flag} needs a value")))
            .clone()
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--baseline" => a.baseline = take(&argv, &mut i, "--baseline"),
            "--measured" => a.measured = take(&argv, &mut i, "--measured"),
            "--tolerance" => {
                a.tolerance = take(&argv, &mut i, "--tolerance")
                    .parse()
                    .ok()
                    .filter(|t: &f64| t.is_finite() && (0.0..1.0).contains(t))
                    .unwrap_or_else(|| usage("--tolerance needs a fraction in [0, 1)"));
            }
            "--metrics" => {
                a.metrics = take(&argv, &mut i, "--metrics")
                    .split(',')
                    .map(|s| s.trim().to_string())
                    .filter(|s| !s.is_empty())
                    .collect();
            }
            other => usage(&format!("unknown argument {other:?}")),
        }
        i += 1;
    }
    if a.baseline.is_empty() || a.measured.is_empty() {
        usage("--baseline and --measured are required");
    }
    if a.metrics.is_empty() {
        usage("--metrics needs at least one metric name");
    }
    a
}

fn load(path: &str) -> Json {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| usage(&format!("cannot read {path}: {e}")));
    Json::parse(&text).unwrap_or_else(|e| usage(&format!("cannot parse {path}: {e}")))
}

/// Finite metric value of one summary entry, `None` when absent or null.
fn metric(doc: &Json, key: &str, name: &str) -> Option<f64> {
    doc.get("summary")?
        .get(key)?
        .get(name)
        .and_then(Json::as_f64)
        .filter(|v| v.is_finite())
}

fn main() -> ExitCode {
    let args = parse_args();
    let baseline = load(&args.baseline);
    let measured = load(&args.measured);
    let Some(Json::Obj(base_summary)) = baseline.get("summary").cloned() else {
        usage(&format!("{} has no summary object", args.baseline));
    };

    println!(
        "== perf gate: {} vs baseline {} (tolerance {:.0}%) ==\n",
        args.measured,
        args.baseline,
        args.tolerance * 100.0
    );
    let mut compared = 0usize;
    let mut failures = Vec::new();
    for (key, _) in &base_summary {
        for name in &args.metrics {
            let (Some(base), Some(meas)) =
                (metric(&baseline, key, name), metric(&measured, key, name))
            else {
                continue;
            };
            let floor = base * (1.0 - args.tolerance);
            let ok = meas >= floor;
            compared += 1;
            println!(
                "  {key:>24} {name:<20} baseline {base:.4}  measured {meas:.4}  \
                 floor {floor:.4}  {}",
                if ok { "ok" } else { "REGRESSED" }
            );
            if !ok {
                failures.push(format!("{key}/{name}: {meas:.4} < floor {floor:.4}"));
            }
        }
    }
    println!();
    if compared == 0 {
        eprintln!(
            "perf gate: no comparable summary entries between {} and {} \
             (metrics: {:?}) — refusing to pass vacuously",
            args.baseline, args.measured, args.metrics
        );
        return ExitCode::FAILURE;
    }
    if failures.is_empty() {
        println!(
            "perf gate: {compared} entr{} within tolerance",
            plural(compared)
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("perf gate: {} regression(s):", failures.len());
        for f in &failures {
            eprintln!("  {f}");
        }
        ExitCode::FAILURE
    }
}

fn plural(n: usize) -> &'static str {
    if n == 1 {
        "y"
    } else {
        "ies"
    }
}
