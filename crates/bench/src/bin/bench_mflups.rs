//! Machine-readable MFLUPS harness: per-lattice, per-rung throughput and
//! traffic accounting, emitted as `BENCH_kernels.json` so the performance
//! trajectory is regression-checkable from CI.
//!
//! Runs the full extended optimization ladder (`Orig` … `Fused`) through the
//! distributed solver for each requested lattice × scenario × storage mode
//! and records MFLUPS, the per-rung bytes/cell traffic model (`4·Q·8` for
//! the split two-grid pipeline, `2·Q·8` for the fused top rung and for
//! every AA-mode rung), the resident population bytes, the implied achieved
//! bandwidth, and the mass-conservation drift. The summary block carries
//! the headline ratios per (lattice, scenario) — `fused_over_simd` /
//! `fused_over_lobr` from the two-grid ladder, and `aa_over_two_grid`
//! (same-rung MFLUPS ratio at the topmost rung run in both modes) plus
//! `aa_resident_over_two_grid` (the footprint halving) when both storage
//! modes were measured.
//!
//! ```sh
//! cargo run --release -p lbm-bench --bin bench_mflups -- \
//!     [--global NX NY NZ] [--steps S] [--warmup W] [--repeats N] \
//!     [--ranks R] [--threads T] [--lattices D3Q19,D3Q39] \
//!     [--levels SIMD,Fused] [--scenario taylor_green,poiseuille] \
//!     [--storage two_grid,aa] [--out BENCH_kernels.json]
//! ```
//!
//! Defaults: every lattice at a DRAM-resident per-lattice box, the periodic
//! `taylor_green` scenario, two-grid storage, single rank, single thread,
//! best of 2 repeats, output to `BENCH_kernels.json`. `--scenario
//! poiseuille` (walled + forced), `couette`, `cavity` and `knudsen`
//! exercise the boundary-aware kernel variants; wall layers adapt to each
//! lattice's reach. `--storage two_grid,aa` measures both storage modes
//! and emits the `aa_over_two_grid` comparison.
//!
//! `--geometry [F1,F2,..]` switches the harness into sparse tiled-geometry
//! mode: for each lattice × storage mode it measures a dense forced-flow
//! baseline, then a circular-pipe `Geometry` sized to each target fluid
//! fraction (percent; default `5,10,50,100`) on the sparse fluid-tile
//! backend. Rows carry the measured fluid fraction, the sparse resident
//! footprint and the `sparse_resident_over_dense` ratio; the per-lattice
//! summary records the ratio at every fraction plus the headline
//! `sparse_over_dense_per_fluid_cell` (same-storage MFlup/s ratio at the
//! densest fraction — MFlup/s counts *fluid* updates only, so this IS the
//! per-fluid-cell cost ratio). `--storage two_grid,aa` sweeps both modes
//! and records `sparse_aa_resident_over_two_grid` (one tile frame instead
//! of two).
//!
//! `--append` merges the new runs and summary entries into an existing
//! `--out` artifact instead of overwriting it, so the committed
//! `BENCH_kernels.json` can carry the dense ladder *and* the geometry
//! sweep from two invocations.

use std::process::ExitCode;

use lbm_bench::json::Json;
use lbm_bench::{f, Table};
use lbm_comm::CostModel;
use lbm_core::equilibrium::EqOrder;
use lbm_core::field::StorageMode;
use lbm_core::geometry::TILE_B;
use lbm_core::index::Dim3;
use lbm_core::kernels::{simd, KernelClass, OptLevel};
use lbm_core::lattice::{Lattice, LatticeKind};
use lbm_core::Geometry;
use lbm_sim::scenario::{
    CouetteFlow, ForcedFlow, KnudsenMicrochannel, LidDrivenCavity, PoiseuilleChannel,
    ScenarioHandle,
};
use lbm_sim::{RunReport, Simulation};

struct Args {
    global: Option<Dim3>,
    steps: usize,
    warmup: usize,
    repeats: usize,
    /// Minimum measured wall time per entry in seconds (0 disables): after
    /// the first timed run, the repeat count is raised until the projected
    /// total measurement span reaches this floor, so short-running entries
    /// aren't decided by a single noisy sample.
    min_secs: f64,
    ranks: usize,
    threads: usize,
    lattices: Vec<LatticeKind>,
    levels: Vec<OptLevel>,
    scenarios: Vec<String>,
    storages: Vec<StorageMode>,
    /// Equilibrium-order override (`None` = each lattice's natural order).
    order: Option<EqOrder>,
    /// Sparse tiled-geometry mode: target fluid fractions in (0, 1].
    geometry: Option<Vec<f64>>,
    /// Whether `--levels` was given explicitly (geometry mode defaults to
    /// the two sparse kernel classes instead of the full dense ladder).
    levels_explicit: bool,
    /// Merge into an existing `--out` artifact instead of overwriting.
    append: bool,
    out: String,
}

fn usage(err: &str) -> ! {
    eprintln!("error: {err}");
    eprintln!(
        "usage: bench_mflups [--global NX NY NZ] [--steps S] [--warmup W] \
         [--repeats N] [--min-secs SECS] [--ranks R] [--threads T] \
         [--lattices A,B] [--levels L1,L2] [--scenario S1,S2] \
         [--storage two_grid,aa] [--order O2|O3] [--geometry [F1,F2,..]] \
         [--append] [--out PATH]\n\
         scenarios: taylor_green (default), poiseuille, couette, cavity, knudsen\n\
         storage modes: two_grid (default), aa\n\
         --min-secs: raise the repeat count per entry until the measured \
         span reaches this many seconds (0 = fixed --repeats)\n\
         --geometry: sparse tiled-pipe sweep at the given fluid-fraction \
         percents (default 5,10,50,100)\n\
         --append: merge runs/summary into an existing --out artifact"
    );
    std::process::exit(2);
}

/// Resolve a scenario name for one lattice: `None` is the legacy periodic
/// Taylor–Green fast path; walled scenarios get wall layers matching the
/// lattice reach so every lattice runs a valid configuration.
fn scenario_for(name: &str, kind: LatticeKind) -> (&'static str, Option<ScenarioHandle>) {
    let layers = Lattice::new(kind).reach();
    match name {
        "taylor_green" | "tg" => ("taylor_green", None),
        "poiseuille" | "poiseuille_channel" => (
            "poiseuille_channel",
            Some(ScenarioHandle::new(
                PoiseuilleChannel::new(1e-5).with_layers(layers),
            )),
        ),
        "couette" | "couette_flow" => (
            "couette_flow",
            Some(ScenarioHandle::new(
                CouetteFlow::new(0.04).with_layers(layers),
            )),
        ),
        "cavity" | "lid_driven_cavity" => (
            "lid_driven_cavity",
            Some(ScenarioHandle::new(
                LidDrivenCavity::new(100.0).with_layers(layers),
            )),
        ),
        "knudsen" | "knudsen_microchannel" => (
            "knudsen_microchannel",
            Some(ScenarioHandle::new(
                KnudsenMicrochannel::new(0.1).with_layers(layers.max(3)),
            )),
        ),
        other => usage(&format!("unknown scenario {other:?}")),
    }
}

fn parse_args() -> Args {
    let mut a = Args {
        global: None,
        steps: 6,
        warmup: 1,
        repeats: 2,
        min_secs: 0.0,
        ranks: 1,
        threads: 1,
        lattices: LatticeKind::ALL.to_vec(),
        levels: OptLevel::ALL.to_vec(),
        scenarios: vec!["taylor_green".to_string()],
        storages: vec![StorageMode::TwoGrid],
        order: None,
        geometry: None,
        levels_explicit: false,
        append: false,
        out: "BENCH_kernels.json".to_string(),
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let num = |argv: &[String], i: &mut usize, flag: &str| -> usize {
        *i += 1;
        argv.get(*i)
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| usage(&format!("{flag} needs a number")))
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--global" => {
                let nx = num(&argv, &mut i, "--global");
                let ny = num(&argv, &mut i, "--global");
                let nz = num(&argv, &mut i, "--global");
                a.global = Some(Dim3::new(nx, ny, nz));
            }
            "--steps" => a.steps = num(&argv, &mut i, "--steps"),
            "--warmup" => a.warmup = num(&argv, &mut i, "--warmup"),
            "--repeats" => a.repeats = num(&argv, &mut i, "--repeats").max(1),
            "--min-secs" => {
                i += 1;
                a.min_secs = argv
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .filter(|s: &f64| s.is_finite() && *s >= 0.0)
                    .unwrap_or_else(|| usage("--min-secs needs a non-negative number of seconds"));
            }
            "--ranks" => a.ranks = num(&argv, &mut i, "--ranks"),
            "--threads" => a.threads = num(&argv, &mut i, "--threads"),
            "--lattices" => {
                i += 1;
                let spec = argv
                    .get(i)
                    .unwrap_or_else(|| usage("--lattices needs a list"));
                a.lattices = spec
                    .split(',')
                    .map(|s| {
                        LatticeKind::parse(s)
                            .unwrap_or_else(|| usage(&format!("unknown lattice {s:?}")))
                    })
                    .collect();
            }
            "--levels" => {
                i += 1;
                let spec = argv
                    .get(i)
                    .unwrap_or_else(|| usage("--levels needs a list"));
                a.levels = spec
                    .split(',')
                    .map(|s| {
                        OptLevel::parse(s)
                            .unwrap_or_else(|| usage(&format!("unknown opt level {s:?}")))
                    })
                    .collect();
                a.levels_explicit = true;
            }
            "--scenario" | "--scenarios" => {
                i += 1;
                let spec = argv
                    .get(i)
                    .unwrap_or_else(|| usage("--scenario needs a list"));
                a.scenarios = spec.split(',').map(|s| s.trim().to_string()).collect();
                // Validate eagerly — a typo must fail here, not mid-run
                // after minutes of benchmarking with no JSON written.
                for s in &a.scenarios {
                    let _ = scenario_for(s, LatticeKind::D3Q19);
                }
            }
            "--storage" | "--storages" => {
                i += 1;
                let spec = argv
                    .get(i)
                    .unwrap_or_else(|| usage("--storage needs a list"));
                a.storages = spec
                    .split(',')
                    .map(|s| {
                        StorageMode::parse(s)
                            .unwrap_or_else(|| usage(&format!("unknown storage mode {s:?}")))
                    })
                    .collect();
            }
            "--geometry" => {
                // Optional comma list of fluid-fraction percents; a bare
                // `--geometry` takes the default sweep.
                let fracs = match argv.get(i + 1) {
                    Some(next) if !next.starts_with("--") => {
                        i += 1;
                        next.split(',')
                            .map(|s| {
                                let pct: f64 = s.trim().parse().unwrap_or_else(|_| {
                                    usage(&format!("bad fluid-fraction percent {s:?}"))
                                });
                                if !(0.0..=100.0).contains(&pct) || pct == 0.0 {
                                    usage(&format!("fluid fraction {pct}% outside (0, 100]"));
                                }
                                pct / 100.0
                            })
                            .collect()
                    }
                    _ => vec![0.05, 0.10, 0.50, 1.0],
                };
                a.geometry = Some(fracs);
            }
            "--order" => {
                i += 1;
                a.order = match argv.get(i).map(String::as_str) {
                    Some("O2") | Some("o2") | Some("2") => Some(EqOrder::Second),
                    Some("O3") | Some("o3") | Some("3") => Some(EqOrder::Third),
                    _ => usage("--order needs O2 or O3"),
                };
            }
            "--append" => a.append = true,
            "--out" => {
                i += 1;
                a.out = argv
                    .get(i)
                    .unwrap_or_else(|| usage("--out needs a path"))
                    .clone();
            }
            other => usage(&format!("unknown argument {other:?}")),
        }
        i += 1;
    }
    a
}

/// DRAM-resident default box per lattice (double-buffered working set
/// ≈ 35–50 MB): the fused rung's advantage is memory traffic, invisible at
/// cache-resident sizes.
fn default_box(kind: LatticeKind) -> Dim3 {
    match kind {
        LatticeKind::D3Q15 => Dim3::new(64, 48, 48),
        LatticeKind::D3Q19 => Dim3::new(64, 48, 48),
        LatticeKind::D3Q27 => Dim3::new(56, 44, 44),
        LatticeKind::D3Q39 => Dim3::new(48, 40, 40),
    }
}

/// The per-rung traffic model in bytes per cell update. Two-grid: the
/// split two-array pipeline moves `4·Q·8` (stream read+write, collide
/// read+write) and the fused single pass `2·Q·8` (one read, one write per
/// velocity). AA: every rung is a single in-place pass — `2·Q·8` at every
/// level.
fn model_bytes_per_cell(level: OptLevel, q: usize, storage: StorageMode) -> usize {
    match (storage, level.kernel_class()) {
        (StorageMode::InPlaceAa, _) | (StorageMode::TwoGrid, KernelClass::Fused) => 2 * q * 8,
        (StorageMode::TwoGrid, _) => 4 * q * 8,
    }
}

/// Repeat count actually used for one entry: at least `--repeats`, and —
/// when `--min-secs` is set — enough repeats of a run the length of the
/// first timed sample for the total measured span to reach that floor.
/// Calibrating off the first sample keeps the warm-up cost at one run; a
/// degenerate zero-length first sample falls back to the fixed count.
fn calibrated_repeats(args: &Args, first_wall_secs: f64) -> usize {
    if args.min_secs <= 0.0 || first_wall_secs <= 0.0 {
        return args.repeats;
    }
    let needed = (args.min_secs / first_wall_secs).ceil() as usize;
    args.repeats.max(needed)
}

/// Best-of-N over `calibrated_repeats` timed runs (standard practice:
/// minimum wall time, i.e. maximum MFlup/s). Returns the best report and
/// the repeat count actually used so the artifact can record it.
fn best_of_calibrated(args: &Args, sim: &mut Simulation, steps: usize) -> (RunReport, usize) {
    let first = sim.run(steps).expect("run");
    let repeats = calibrated_repeats(args, first.wall_secs);
    let best = std::iter::once(first)
        .chain((1..repeats).map(|_| sim.run(steps).expect("run")))
        .max_by(|a, b| a.mflups.total_cmp(&b.mflups))
        .unwrap();
    (best, repeats)
}

/// Host description for the artifact header: the machine's detected logical
/// core count *and* the parallelism this invocation actually used — without
/// both, a stored artifact can't distinguish "slow machine" from "ran on
/// one of many cores" when two JSON files are compared.
fn host_block(args: &Args) -> Json {
    Json::obj(vec![
        (
            "logical_cores",
            Json::Int(
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1) as i64,
            ),
        ),
        ("ranks", Json::Int(args.ranks as i64)),
        ("threads_per_rank", Json::Int(args.threads as i64)),
        (
            "threads_used",
            Json::Int((args.ranks * args.threads) as i64),
        ),
        ("simd_avx2_fma", Json::Bool(simd::simd_available())),
    ])
}

/// Write the artifact, honouring `--append`: new runs extend the existing
/// file's run list and new summary entries replace same-key ones, so a
/// ladder invocation and a geometry invocation can share one committed
/// JSON (the host block is taken from the *latest* invocation).
fn write_artifact(args: &Args, runs: Vec<Json>, summaries: Vec<(String, Json)>) {
    let (mut all_runs, mut all_summaries) = if args.append {
        let doc = std::fs::read_to_string(&args.out)
            .ok()
            .and_then(|t| Json::parse(&t).ok());
        match doc {
            Some(doc) => {
                let runs = match doc.get("runs") {
                    Some(Json::Arr(r)) => r.clone(),
                    _ => Vec::new(),
                };
                let sums = match doc.get("summary") {
                    Some(Json::Obj(s)) => s.clone(),
                    _ => Vec::new(),
                };
                (runs, sums)
            }
            None => (Vec::new(), Vec::new()),
        }
    } else {
        (Vec::new(), Vec::new())
    };
    all_runs.extend(runs);
    for (key, val) in summaries {
        if let Some(slot) = all_summaries.iter_mut().find(|(k, _)| *k == key) {
            slot.1 = val;
        } else {
            all_summaries.push((key, val));
        }
    }
    let doc = Json::obj(vec![
        ("schema", Json::str("lbm-bench/kernels-mflups/v5")),
        ("host", host_block(args)),
        ("runs", Json::Arr(all_runs)),
        ("summary", Json::Obj(all_summaries)),
    ]);
    std::fs::write(&args.out, doc.render_pretty()).expect("write JSON artifact");
    println!("wrote {}", args.out);
}

fn run_entry(
    args: &Args,
    kind: LatticeKind,
    level: OptLevel,
    storage: StorageMode,
    scenario: &Option<ScenarioHandle>,
) -> (RunReport, Json, f64) {
    let global = args.global.unwrap_or_else(|| default_box(kind));
    let mut builder = Simulation::builder(kind, global)
        .ranks(args.ranks)
        .threads(args.threads)
        .warmup(args.warmup)
        .level(level)
        .storage(storage)
        .cost(CostModel::free());
    if let Some(s) = scenario {
        builder = builder.scenario(s.clone());
    }
    if let Some(order) = args.order {
        builder = builder.order(order);
    }
    let mut sim = builder.build().expect("config");
    let eq_order = sim.config().eq_order();
    let (rep, repeats) = best_of_calibrated(args, &mut sim, args.steps);
    let q = Lattice::new(kind).q();
    let bytes = model_bytes_per_cell(level, q, storage);
    let achieved_gbs = rep.mflups * 1e6 * bytes as f64 / 1e9;
    let expected_mass = (global.nx * global.ny * global.nz) as f64;
    let mass_rel_err = ((rep.mass - expected_mass) / expected_mass).abs();
    let entry = Json::obj(vec![
        ("lattice", Json::str(kind.name())),
        ("q", Json::Int(q as i64)),
        ("scenario", Json::str(rep.scenario.clone())),
        ("level", Json::str(level.name())),
        ("storage", Json::str(storage.name())),
        ("eq_order", Json::str(eq_order.label())),
        ("kernel", Json::str(format!("{:?}", level.kernel_class()))),
        ("strategy", Json::str(rep.strategy.clone())),
        ("ranks", Json::Int(rep.ranks as i64)),
        ("threads_per_rank", Json::Int(rep.threads_per_rank as i64)),
        (
            "global",
            Json::Arr(vec![
                Json::Int(global.nx as i64),
                Json::Int(global.ny as i64),
                Json::Int(global.nz as i64),
            ]),
        ),
        ("steps", Json::Int(rep.steps as i64)),
        ("repeats", Json::Int(repeats as i64)),
        ("wall_secs", Json::Num(rep.wall_secs)),
        ("mflups", Json::Num(rep.mflups)),
        ("mflups_with_ghost", Json::Num(rep.mflups_with_ghost)),
        ("bytes_per_cell_model", Json::Int(bytes as i64)),
        (
            "resident_population_bytes",
            Json::Int(rep.resident_population_bytes() as i64),
        ),
        ("achieved_gbs_model", Json::Num(achieved_gbs)),
        ("mass_rel_err", Json::Num(mass_rel_err)),
    ]);
    (rep, entry, mass_rel_err)
}

/// Geometry-mode default box: a pipe long enough to decompose over ranks
/// with a cross-section wide enough that a 5%-fluid lumen still spans many
/// 4³ tiles. Cross-sections shrink with Q to keep the dense baseline's
/// resident set bounded.
fn geometry_default_box(kind: LatticeKind) -> Dim3 {
    match kind {
        LatticeKind::D3Q15 | LatticeKind::D3Q19 => Dim3::new(32, 256, 256),
        LatticeKind::D3Q27 => Dim3::new(32, 224, 224),
        LatticeKind::D3Q39 => Dim3::new(32, 192, 192),
    }
}

/// Pipe radius hitting a target fluid fraction on an `ny`×`nz`
/// cross-section. A target of 100% returns a radius past the corners so
/// every voxel is fluid (a circle inscribed by area alone leaves the
/// corners solid).
fn radius_for(frac: f64, ny: usize, nz: usize) -> f64 {
    if frac >= 0.999 {
        ((ny * ny + nz * nz) as f64).sqrt()
    } else {
        (frac * ny as f64 * nz as f64 / std::f64::consts::PI).sqrt()
    }
}

/// One geometry-mode measurement: forced flow through `geom` (sparse
/// tiles) or the dense periodic box (`None`), best of `repeats`.
fn run_geometry_entry(
    args: &Args,
    kind: LatticeKind,
    global: Dim3,
    level: OptLevel,
    storage: StorageMode,
    geom: Option<&Geometry>,
) -> RunReport {
    let mut builder = Simulation::builder(kind, global)
        .scenario(ForcedFlow::new(1e-5))
        .ranks(args.ranks)
        .threads(args.threads)
        .warmup(args.warmup)
        .level(level)
        .storage(storage)
        .cost(CostModel::free());
    if let Some(g) = geom {
        builder = builder.geometry(g.clone());
    }
    if let Some(order) = args.order {
        builder = builder.order(order);
    }
    let mut sim = builder.build().expect("config");
    best_of_calibrated(args, &mut sim, args.steps).0
}

/// Sparse tiled-geometry sweep: per lattice, a dense forced-flow baseline
/// plus a circular pipe at each target fluid fraction, measured at every
/// requested rung. Emits per-fraction rows and the
/// `sparse_resident_over_dense` summary.
fn geometry_mode(args: &Args, fracs: &[f64]) -> ExitCode {
    // The sparse path has exactly two kernel classes — scalar (every rung
    // below SIMD) and AVX2 (SIMD and above) — so the default sweep runs
    // one representative of each instead of the dense 9-rung ladder.
    let levels: Vec<OptLevel> = if args.levels_explicit {
        args.levels.clone()
    } else {
        vec![OptLevel::LoBr, OptLevel::Simd]
    };
    let top = *levels.last().expect("at least one level");
    // Deterministic storage order (two-grid before AA) so the AA summary
    // can reference the two-grid sweep from the same invocation.
    let storages: Vec<StorageMode> = StorageMode::ALL
        .iter()
        .copied()
        .filter(|s| args.storages.contains(s))
        .collect();
    println!("== MFLUPS harness: sparse tiled-geometry mode ==\n");

    let mut runs = Vec::new();
    let mut summaries = Vec::new();
    let mut low_fraction_ok = true;

    for &kind in &args.lattices {
        let global = args.global.unwrap_or_else(|| geometry_default_box(kind));
        if global.nx % TILE_B != 0 || global.ny % TILE_B != 0 || global.nz % TILE_B != 0 {
            usage(&format!(
                "--global {}×{}×{} is not a multiple of the {TILE_B}-cell tile edge",
                global.nx, global.ny, global.nz
            ));
        }
        let q = Lattice::new(kind).q();
        let global_json = || {
            Json::Arr(vec![
                Json::Int(global.nx as i64),
                Json::Int(global.ny as i64),
                Json::Int(global.nz as i64),
            ])
        };

        // Top-rung sparse resident bytes per target fraction from the
        // two-grid sweep, for the AA summary's footprint-halving ratio.
        let mut two_grid_resident: Vec<(f64, u64)> = Vec::new();

        for &storage in &storages {
            // Dense forced-flow baseline at the top requested rung under
            // the *same* storage mode: the resident-footprint and
            // fluid-throughput yardstick.
            let dense = run_geometry_entry(args, kind, global, top, storage, None);
            let dense_resident = dense.resident_population_bytes();
            println!(
                "{} / geometry / {} (box {}×{}×{}, {} rank(s) × {} thread(s), {} steps, best of {}):",
                kind.name(),
                storage.name(),
                global.nx,
                global.ny,
                global.nz,
                args.ranks,
                args.threads,
                args.steps,
                args.repeats
            );
            println!(
                "  dense baseline at {}: {} MFlup/s, {} MB resident",
                top.name(),
                f(dense.mflups, 1),
                f(dense_resident as f64 / 1e6, 1)
            );
            runs.push(Json::obj(vec![
                ("lattice", Json::str(kind.name())),
                ("q", Json::Int(q as i64)),
                ("scenario", Json::str(dense.scenario.clone())),
                ("level", Json::str(top.name())),
                ("storage", Json::str(dense.storage.clone())),
                ("kernel", Json::str(format!("{:?}", top.kernel_class()))),
                ("ranks", Json::Int(dense.ranks as i64)),
                ("threads_per_rank", Json::Int(dense.threads_per_rank as i64)),
                ("global", global_json()),
                ("steps", Json::Int(dense.steps as i64)),
                ("wall_secs", Json::Num(dense.wall_secs)),
                ("mflups", Json::Num(dense.mflups)),
                ("fluid_fraction", Json::Num(dense.fluid_fraction)),
                (
                    "resident_population_bytes",
                    Json::Int(dense_resident as i64),
                ),
            ]));

            let mut t = Table::new(vec![
                "fluid %".to_string(),
                "radius".to_string(),
                "rung".to_string(),
                "MFlup/s".to_string(),
                "resident MB".to_string(),
                "vs dense resident".to_string(),
                "vs dense MFlup/s".to_string(),
            ]);
            let mut frac_rows = Vec::new();
            let mut headline: Option<(f64, f64)> = None; // (target, ratio)
            let mut densest: Option<(f64, RunReport)> = None; // (target, top-rung rep)
            for &target in fracs {
                let radius = radius_for(target, global.ny, global.nz);
                let geom = Geometry::pipe(global, radius).expect("pipe geometry");
                let fluid_fraction = geom.fluid_fraction();
                let mut top_rep: Option<RunReport> = None;
                for &level in &levels {
                    let rep = run_geometry_entry(args, kind, global, level, storage, Some(&geom));
                    let resident = rep.resident_population_bytes();
                    let ratio = resident as f64 / dense_resident as f64;
                    t.row(vec![
                        format!("{:.1}", 100.0 * fluid_fraction),
                        format!("{radius:.1}"),
                        level.name().to_string(),
                        f(rep.mflups, 1),
                        f(resident as f64 / 1e6, 1),
                        format!("{ratio:.3}x"),
                        format!("{:.2}x", rep.mflups / dense.mflups),
                    ]);
                    runs.push(Json::obj(vec![
                        ("lattice", Json::str(kind.name())),
                        ("q", Json::Int(q as i64)),
                        ("scenario", Json::str(rep.scenario.clone())),
                        ("level", Json::str(level.name())),
                        ("storage", Json::str(rep.storage.clone())),
                        ("kernel", Json::str(format!("{:?}", level.kernel_class()))),
                        ("ranks", Json::Int(rep.ranks as i64)),
                        ("threads_per_rank", Json::Int(rep.threads_per_rank as i64)),
                        ("global", global_json()),
                        ("geometry", Json::str("pipe")),
                        ("pipe_radius", Json::Num(radius)),
                        ("target_fluid_fraction", Json::Num(target)),
                        ("fluid_fraction", Json::Num(fluid_fraction)),
                        ("steps", Json::Int(rep.steps as i64)),
                        ("wall_secs", Json::Num(rep.wall_secs)),
                        ("mflups", Json::Num(rep.mflups)),
                        ("resident_population_bytes", Json::Int(resident as i64)),
                        (
                            "dense_resident_population_bytes",
                            Json::Int(dense_resident as i64),
                        ),
                        ("sparse_resident_over_dense", Json::Num(ratio)),
                        (
                            "sparse_over_dense_mflups",
                            Json::Num(rep.mflups / dense.mflups),
                        ),
                    ]));
                    if level == top {
                        top_rep = Some(rep);
                    }
                }
                let rep = top_rep.expect("top rung measured");
                let resident = rep.resident_population_bytes();
                let ratio = resident as f64 / dense_resident as f64;
                // The acceptance signal: fluid-cell-cost storage must pay
                // < 0.15 of the dense footprint in vascular territory.
                if target <= 0.10 + 1e-9 && ratio >= 0.15 {
                    low_fraction_ok = false;
                }
                if headline.is_none_or(|(t0, _)| target < t0) {
                    headline = Some((target, ratio));
                }
                if storage == StorageMode::TwoGrid {
                    two_grid_resident.push((target, resident));
                }
                frac_rows.push(Json::obj(vec![
                    ("target_fluid_fraction", Json::Num(target)),
                    ("fluid_fraction", Json::Num(fluid_fraction)),
                    ("pipe_radius", Json::Num(radius)),
                    ("sparse_mflups", Json::Num(rep.mflups)),
                    ("resident_population_bytes", Json::Int(resident as i64)),
                    ("sparse_resident_over_dense", Json::Num(ratio)),
                    (
                        "sparse_over_dense_mflups",
                        Json::Num(rep.mflups / dense.mflups),
                    ),
                ]));
                if densest.as_ref().is_none_or(|(t0, _)| target > *t0) {
                    densest = Some((target, rep));
                }
            }
            t.print();

            // The headline per-fluid-cell ratio, taken at the densest
            // fraction swept: MFlup/s counts fluid updates only, so the
            // same-storage MFLUPS ratio *is* the per-fluid-cell cost
            // ratio, and the densest row is where the full-tile fast path
            // must close the gap on the direct-addressed dense kernel.
            let per_fluid = densest
                .as_ref()
                .filter(|_| dense.mflups > 0.0)
                .map(|(_, rep)| rep.mflups / dense.mflups);
            // AA footprint vs the two-grid sweep at the same (densest)
            // fraction — one tile frame instead of src/dst pairs.
            let aa_resident_over = match (storage, &densest) {
                (StorageMode::InPlaceAa, Some((target, rep))) => two_grid_resident
                    .iter()
                    .find(|(t0, _)| t0 == target)
                    .filter(|(_, tg)| *tg > 0)
                    .map(|(_, tg)| rep.resident_population_bytes() as f64 / *tg as f64),
                _ => None,
            };
            if let Some(r) = per_fluid {
                println!(
                    "  sparse vs dense per fluid cell at {} ({}): {r:.2}x",
                    top.name(),
                    storage.name()
                );
            }
            if let Some(r) = aa_resident_over {
                println!("  sparse AA resident vs sparse two-grid: {r:.2}x");
            }
            println!();
            let key = match storage {
                StorageMode::TwoGrid => format!("{}@geometry", kind.name()),
                StorageMode::InPlaceAa => format!("{}@geometry_aa", kind.name()),
            };
            summaries.push((
                key,
                Json::obj(vec![
                    ("scenario", Json::str("forced_flow")),
                    ("geometry", Json::str("pipe")),
                    ("storage", Json::str(storage.name())),
                    ("dense_level", Json::str(top.name())),
                    ("dense_mflups", Json::Num(dense.mflups)),
                    ("dense_resident_bytes", Json::Int(dense_resident as i64)),
                    ("fractions", Json::Arr(frac_rows)),
                    (
                        "sparse_resident_over_dense",
                        headline.map(|(_, r)| Json::Num(r)).unwrap_or(Json::Null),
                    ),
                    (
                        "sparse_over_dense_per_fluid_cell",
                        per_fluid.map(Json::Num).unwrap_or(Json::Null),
                    ),
                    (
                        "sparse_aa_resident_over_two_grid",
                        aa_resident_over.map(Json::Num).unwrap_or(Json::Null),
                    ),
                ]),
            ));
        }
    }

    write_artifact(args, runs, summaries);
    if !low_fraction_ok {
        println!("note: sparse_resident_over_dense >= 0.15 at a <=10% fluid fraction (tiny box?)");
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args = parse_args();
    if let Some(fracs) = args.geometry.clone() {
        return geometry_mode(&args, &fracs);
    }
    println!("== MFLUPS harness: extended ladder, machine-readable ==\n");

    let mut runs = Vec::new();
    let mut summaries = Vec::new();
    let mut fused_meets_target = true;

    for &kind in &args.lattices {
        for scenario_arg in &args.scenarios {
            let (scenario_name, scenario) = scenario_for(scenario_arg, kind);
            let global = args.global.unwrap_or_else(|| default_box(kind));
            // (storage, level) → (mflups, resident bytes).
            let mut measured: Vec<(StorageMode, OptLevel, f64, u64)> = Vec::new();
            for &storage in &args.storages {
                println!(
                    "{} / {} / {} (box {}×{}×{}, {} rank(s) × {} thread(s), {} steps, best of {}):",
                    kind.name(),
                    scenario_name,
                    storage.name(),
                    global.nx,
                    global.ny,
                    global.nz,
                    args.ranks,
                    args.threads,
                    args.steps,
                    args.repeats
                );
                // The speedup column baselines against the first level
                // actually run (the whole ladder by default, i.e. Orig) —
                // label it honestly.
                let base_name = args.levels.first().map(|l| l.name()).unwrap_or("-");
                let mut t = Table::new(vec![
                    "rung".to_string(),
                    "kernel".to_string(),
                    "MFlup/s".to_string(),
                    "B/cell".to_string(),
                    "~GB/s".to_string(),
                    format!("vs {base_name}"),
                    "resident MB".to_string(),
                    "mass err".to_string(),
                ]);
                let mut orig: Option<f64> = None;
                for &level in &args.levels {
                    let (rep, entry, mass_err) = run_entry(&args, kind, level, storage, &scenario);
                    let base = *orig.get_or_insert(rep.mflups);
                    let q = Lattice::new(kind).q();
                    let bytes = model_bytes_per_cell(level, q, storage);
                    let resident = rep.resident_population_bytes();
                    t.row(vec![
                        level.name().to_string(),
                        format!("{:?}", level.kernel_class()),
                        f(rep.mflups, 1),
                        format!("{bytes}"),
                        f(rep.mflups * 1e6 * bytes as f64 / 1e9, 1),
                        format!("{:.2}x", rep.mflups / base),
                        f(resident as f64 / 1e6, 1),
                        format!("{mass_err:.1e}"),
                    ]);
                    measured.push((storage, level, rep.mflups, resident));
                    runs.push(entry);
                }
                t.print();
            }

            // Headline ratios from the rungs *actually run* in this
            // (lattice, scenario) sweep — never a ratio borrowed from a
            // different scenario's ladder. Ladder ratios come from the
            // two-grid sweep (the paper's ladder); the storage comparison
            // is same-rung AA vs two-grid at the topmost common rung.
            let find = |st: StorageMode, l: OptLevel| {
                measured
                    .iter()
                    .find(|(s, x, _, _)| *s == st && *x == l)
                    .map(|(_, _, m, b)| (*m, *b))
            };
            let tg = StorageMode::TwoGrid;
            let aa = StorageMode::InPlaceAa;
            let simd_m = find(tg, OptLevel::Simd).map(|(m, _)| m);
            let fused_m = find(tg, OptLevel::Fused).map(|(m, _)| m);
            let lobr_m = find(tg, OptLevel::LoBr).map(|(m, _)| m);
            let ratio = match (simd_m, fused_m) {
                (Some(s), Some(fu)) if s > 0.0 => Some(fu / s),
                _ => None,
            };
            let ratio_lobr = match (lobr_m, fused_m) {
                (Some(s), Some(fu)) if s > 0.0 => Some(fu / s),
                _ => None,
            };
            if let Some(r) = ratio {
                println!("  Fused vs SIMD ({scenario_name}): {r:.2}x");
                // The 1.2x regression signal is calibrated for the periodic
                // ladder; walled scenarios legitimately pay boundary work in
                // the fused pass and must not trip it.
                if r < 1.2 && scenario_name == "taylor_green" {
                    fused_meets_target = false;
                }
            }
            if let Some(r) = ratio_lobr {
                println!("  Fused vs LoBr ({scenario_name}): {r:.2}x");
            }
            // Same-rung AA vs two-grid at the topmost rung run in both.
            let top_common = args
                .levels
                .iter()
                .rev()
                .find(|l| find(tg, **l).is_some() && find(aa, **l).is_some())
                .copied();
            let mut aa_over = None;
            let mut aa_resident_over = None;
            let mut aa_top = None;
            if let Some(level) = top_common {
                let (tg_m, tg_b) = find(tg, level).unwrap();
                let (aa_m, aa_b) = find(aa, level).unwrap();
                if tg_m > 0.0 {
                    aa_over = Some(aa_m / tg_m);
                }
                if tg_b > 0 {
                    aa_resident_over = Some(aa_b as f64 / tg_b as f64);
                }
                aa_top = Some(aa_m);
                println!(
                    "  AA vs two-grid at {} ({scenario_name}): {:.2}x MFlup/s, {:.2}x resident",
                    level.name(),
                    aa_over.unwrap_or(0.0),
                    aa_resident_over.unwrap_or(0.0)
                );
            }
            println!();
            let key = if scenario_name == "taylor_green" {
                kind.name().to_string()
            } else {
                format!("{}@{}", kind.name(), scenario_name)
            };
            summaries.push((
                key,
                Json::obj(vec![
                    ("scenario", Json::str(scenario_name)),
                    ("lobr_mflups", lobr_m.map(Json::Num).unwrap_or(Json::Null)),
                    ("simd_mflups", simd_m.map(Json::Num).unwrap_or(Json::Null)),
                    ("fused_mflups", fused_m.map(Json::Num).unwrap_or(Json::Null)),
                    (
                        "fused_over_simd",
                        ratio.map(Json::Num).unwrap_or(Json::Null),
                    ),
                    (
                        "fused_over_lobr",
                        ratio_lobr.map(Json::Num).unwrap_or(Json::Null),
                    ),
                    ("aa_mflups", aa_top.map(Json::Num).unwrap_or(Json::Null)),
                    (
                        "aa_over_two_grid",
                        aa_over.map(Json::Num).unwrap_or(Json::Null),
                    ),
                    (
                        "aa_resident_over_two_grid",
                        aa_resident_over.map(Json::Num).unwrap_or(Json::Null),
                    ),
                ]),
            ));
        }
    }

    write_artifact(&args, runs, summaries);
    if !fused_meets_target {
        println!("note: Fused < 1.2x SIMD on at least one lattice (cache-resident box?)");
    }
    ExitCode::SUCCESS
}
