//! Regenerates **Fig. 11** — impact of hybrid rank × thread execution on
//! both velocity models.
//!
//! * `bgp` mode (Fig. 11a): a fixed rank count with 1–4 threads per rank,
//!   plus "virtual node" mode (4× the ranks, 1 thread) — the paper's
//!   1T/2T/3T/4T/VN axis. For each configuration the minimum runtime over
//!   ghost depths 1–3 is reported, exactly as the paper plots "the time of
//!   the minimal ghost cell implementation".
//! * `bgq` mode (Fig. 11b): a tasks–threads grid.
//!
//! Shape expectations: threading helps both models; for D3Q39 the hybrid
//! configuration beats max-rank flat mode because halving the domain count
//! halves the (k = 3)-deep ghost footprint (§VI-B).
//!
//! ```sh
//! cargo run --release -p lbm-bench --bin fig11_hybrid -- [bgp|bgq]
//! ```

use std::time::Duration;

use lbm_bench::{f, Table};
use lbm_comm::CostModel;
use lbm_core::index::Dim3;
use lbm_core::kernels::OptLevel;
use lbm_core::lattice::LatticeKind;
use lbm_sim::hybrid::{bgp_sweep, bgq_sweep, HybridConfig};
use lbm_sim::{CommStrategy, Simulation};

fn best_over_depths(
    kind: LatticeKind,
    global: Dim3,
    hc: HybridConfig,
    steps: usize,
) -> Option<(f64, usize)> {
    let cost = CostModel::torus_ramp(Duration::from_micros(200), 1.5e9, hc.ranks, 2.0);
    let mut best: Option<(f64, usize)> = None;
    for depth in 1..=3usize {
        let mut sim = Simulation::builder(kind, global)
            .ranks(hc.ranks)
            .threads(hc.threads)
            .warmup(3)
            .ghost_depth(depth)
            .level(OptLevel::Simd)
            .strategy(CommStrategy::OverlapGhostCollide)
            .cost(cost.clone())
            .jitter(0.05)
            .build();
        // Best of two runs per point (perf-measurement practice).
        for _ in 0..2 {
            if let Ok(rep) = sim.as_mut().ok().map_or_else(
                || Err(lbm_core::Error::BadParameter("build failed".into())),
                |s| s.run(steps),
            ) {
                let cand = (rep.wall_secs, depth);
                best = Some(match best {
                    Some(b) if b.0 <= cand.0 => b,
                    _ => cand,
                });
            }
        }
    }
    best
}

fn main() {
    let mode = std::env::args().nth(1).unwrap_or_else(|| "bgp".into());
    let steps = 24usize;

    if mode == "bgq" {
        // Fig. 11b: tasks-threads grid.
        let max_cpus = lbm_bench::host_threads().min(16);
        let global = Dim3::new(96, 40, 40);
        println!("== Fig. 11b: tasks-threads grid (bounded by {max_cpus} CPUs) ==\n");
        let mut t = Table::new(vec!["tasks-threads", "D3Q19 time(ms)", "D3Q39 time(ms)"]);
        for hc in bgq_sweep(max_cpus, 8) {
            let a = best_over_depths(LatticeKind::D3Q19, global, hc, steps);
            let b = best_over_depths(LatticeKind::D3Q39, global, hc, steps);
            t.row(vec![
                hc.label(),
                a.map_or("-".into(), |(s, d)| format!("{} (GC{d})", f(s * 1e3, 1))),
                b.map_or("-".into(), |(s, d)| format!("{} (GC{d})", f(s * 1e3, 1))),
            ]);
        }
        t.print();
        println!("\npaper: the optimal pairing on BG/Q was 4 tasks × 16 threads for *both*");
        println!("models — high threading minimises ghost-cell overhead per node.");
        return;
    }

    // Fig. 11a: 1T..4T vs virtual-node mode.
    let base_ranks = 4usize;
    let global = Dim3::new(96, 40, 40);
    println!(
        "== Fig. 11a: threading impact, {base_ranks} base ranks (VN = {}×1) ==\n",
        base_ranks * 4
    );
    let mut t = Table::new(vec![
        "config",
        "ranks×threads",
        "D3Q19 time(ms)",
        "D3Q39 time(ms)",
    ]);
    let mut q39_times: Vec<(String, f64)> = Vec::new();
    for (label, hc) in bgp_sweep(base_ranks) {
        let a = best_over_depths(LatticeKind::D3Q19, global, hc, steps);
        let b = best_over_depths(LatticeKind::D3Q39, global, hc, steps);
        if let Some((s, _)) = b {
            q39_times.push((label.clone(), s));
        }
        t.row(vec![
            label,
            format!("{}×{}", hc.ranks, hc.threads),
            a.map_or("(halo too wide)".into(), |(s, d)| {
                format!("{} (GC{d})", f(s * 1e3, 1))
            }),
            b.map_or("(halo too wide)".into(), |(s, d)| {
                format!("{} (GC{d})", f(s * 1e3, 1))
            }),
        ]);
    }
    t.print();

    if let (Some(t4), Some(vn)) = (
        q39_times.iter().find(|(l, _)| l == "4T").map(|(_, s)| *s),
        q39_times.iter().find(|(l, _)| l == "VN").map(|(_, s)| *s),
    ) {
        println!(
            "\nD3Q39 hybrid 4T vs flat VN: {:.1} ms vs {:.1} ms — {}",
            t4 * 1e3,
            vn * 1e3,
            if t4 < vn {
                "hybrid wins, as the paper found (ghost-footprint reduction)"
            } else {
                "VN wins on this host (see EXPERIMENTS.md commentary)"
            }
        );
    }
    println!("\npaper: D3Q19 ≈ tie between 4T and VN; D3Q39's 4T (with 2 ghost cells)");
    println!("outperformed VN because fewer subdomains mean fewer k=3-deep ghost planes.");
}
