//! Ensemble-throughput harness: many small jobs through the job runtime vs
//! the same jobs run back-to-back, emitted as `BENCH_ensemble.json` plus a
//! JSONL event stream.
//!
//! The sweep is the paper's weak spot turned into a feature: small grids
//! cannot saturate a node on their own (§VI), so the [`EnsembleRunner`]
//! packs several of them per core. This harness measures the resulting
//! ensemble speedup — serial wall time over scheduled wall time for an
//! 8-job small-grid parameter sweep — and records it machine-readably. On
//! hosts with more than 2 CPUs a ≥ 2× speedup is asserted (exit code 1 on
//! miss); on smaller hosts the ratio is recorded but not enforced.
//!
//! `--smoke` runs the CI-sized variant instead: a 4-job sweep where one
//! checkpointing job is cancelled mid-flight, resumed from its checkpoint,
//! and verified **bitwise** against an uninterrupted reference — exit
//! code 1 on any mismatch.
//!
//! ```sh
//! cargo run --release -p lbm-bench --bin ensemble_sweep -- \
//!     [--jobs N] [--steps S] [--slots K] [--smoke] \
//!     [--out BENCH_ensemble.json] [--events ensemble_events.jsonl]
//! ```

use std::io::Write as _;
use std::process::ExitCode;
use std::time::Instant;

use lbm_bench::json::Json;
use lbm_bench::{f, Table};
use lbm_core::index::Dim3;
use lbm_core::lattice::LatticeKind;
use lbm_sim::runtime::{EnsembleRunner, EventRecord, JobEvent, JobOutcome, JobSpec};
use lbm_sim::scenario::ScenarioSpec;
use lbm_sim::Simulation;

struct Args {
    jobs: usize,
    steps: usize,
    slots: Option<usize>,
    smoke: bool,
    out: String,
    events: String,
}

fn usage(err: &str) -> ! {
    eprintln!("error: {err}");
    eprintln!(
        "usage: ensemble_sweep [--jobs N] [--steps S] [--slots K] [--smoke] \
         [--out PATH] [--events PATH]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut a = Args {
        jobs: 8,
        steps: 60,
        slots: None,
        smoke: false,
        out: "BENCH_ensemble.json".to_string(),
        events: "ensemble_events.jsonl".to_string(),
    };
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        let mut num = |name: &str| -> usize {
            argv.next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| usage(&format!("{name} needs a number")))
        };
        match arg.as_str() {
            "--jobs" => a.jobs = num("--jobs").max(1),
            "--steps" => a.steps = num("--steps").max(1),
            "--slots" => a.slots = Some(num("--slots").max(1)),
            "--smoke" => a.smoke = true,
            "--out" => a.out = argv.next().unwrap_or_else(|| usage("--out needs a path")),
            "--events" => {
                a.events = argv
                    .next()
                    .unwrap_or_else(|| usage("--events needs a path"))
            }
            other => usage(&format!("unknown argument `{other}`")),
        }
    }
    a
}

/// The sweep: Taylor–Green viscosity scan on a small grid — the classic
/// many-small-jobs ensemble shape.
fn sweep_jobs(n: usize, steps: usize) -> Vec<JobSpec> {
    (0..n)
        .map(|i| {
            let mut j = JobSpec::new(
                format!("tg-{i:02}"),
                LatticeKind::D3Q19,
                Dim3::new(16, 16, 16),
                steps,
            );
            j.scenario = Some(ScenarioSpec::TaylorGreen {
                rho0: 1.0,
                u0: 0.01 + 0.002 * i as f64,
            });
            j.tau = Some(0.6 + 0.05 * i as f64);
            j
        })
        .collect()
}

fn drain_events(events: &std::sync::mpsc::Receiver<EventRecord>, path: &str) -> Vec<EventRecord> {
    let all: Vec<EventRecord> = events.try_iter().collect();
    let mut out = std::fs::File::create(path).expect("create events file");
    for rec in &all {
        writeln!(out, "{}", rec.to_json_line()).expect("write event line");
    }
    all
}

/// The throughput measurement: serial wall vs scheduled wall for the same
/// job list, with bitwise-equal results demanded along the way.
fn run_sweep(args: &Args) -> ExitCode {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let slots = args.slots.unwrap_or(cores);
    let jobs = sweep_jobs(args.jobs, args.steps);
    println!(
        "== ensemble sweep: {} jobs × {} steps, {} slots ({} cores) ==\n",
        args.jobs, args.steps, slots, cores
    );

    // Serial reference: the identical jobs back-to-back on one core.
    let t0 = Instant::now();
    let serial: Vec<_> = jobs
        .iter()
        .map(|j| {
            let mut sim = j.to_builder().and_then(|b| b.build()).expect("config");
            sim.run(j.steps).expect("serial run")
        })
        .collect();
    let serial_wall = t0.elapsed().as_secs_f64();

    // The same jobs through the scheduler.
    let mut runner = EnsembleRunner::with_slots(slots);
    let events = runner.events();
    let t0 = Instant::now();
    for j in &jobs {
        runner.submit(j.clone()).expect("submit");
    }
    let outcomes = runner.join();
    let ensemble_wall = t0.elapsed().as_secs_f64();
    drain_events(&events, &args.events);

    let mut t = Table::new(vec!["job", "steps", "MFLUPS", "mass drift", "match"]);
    let mut all_match = true;
    for ((_, outcome), (job, reference)) in outcomes.iter().zip(jobs.iter().zip(&serial)) {
        let report = match outcome {
            JobOutcome::Finished(r) => r,
            other => {
                println!("{}: job did not finish: {other:?}", job.name);
                all_match = false;
                continue;
            }
        };
        let bitwise = report.mass.to_bits() == reference.mass.to_bits();
        all_match &= bitwise;
        let expected = job.cells() as f64;
        t.row(vec![
            job.name.clone(),
            report.steps.to_string(),
            f(report.mflups, 1),
            format!("{:.1e}", ((report.mass - expected) / expected).abs()),
            if bitwise {
                "bitwise".into()
            } else {
                "DIVERGED".to_string()
            },
        ]);
    }
    t.print();

    let speedup = serial_wall / ensemble_wall;
    println!(
        "\nserial {:.2} s → ensemble {:.2} s: {:.2}× throughput",
        serial_wall, ensemble_wall, speedup
    );

    let doc = Json::obj(vec![
        ("harness", Json::str("ensemble_sweep")),
        ("jobs", Json::Int(args.jobs as i64)),
        ("steps", Json::Int(args.steps as i64)),
        ("slots", Json::Int(slots as i64)),
        ("host_cores", Json::Int(cores as i64)),
        ("serial_wall_secs", Json::Num(serial_wall)),
        ("ensemble_wall_secs", Json::Num(ensemble_wall)),
        ("speedup", Json::Num(speedup)),
        ("bitwise_match", Json::Bool(all_match)),
        (
            "speedup_enforced",
            Json::Bool(cores > 2 && args.slots.is_none()),
        ),
    ]);
    std::fs::write(&args.out, doc.render_pretty()).expect("write JSON artifact");
    println!("wrote {} and {}", args.out, args.events);

    if !all_match {
        println!("FAIL: ensemble results diverged from serial runs");
        return ExitCode::FAILURE;
    }
    // The throughput claim only holds where there is parallelism to win;
    // single/dual-core hosts record the ratio without enforcing it.
    if cores > 2 && args.slots.is_none() && speedup < 2.0 {
        println!("FAIL: expected ≥ 2× ensemble speedup on {cores} cores, got {speedup:.2}×");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// The CI smoke: 4 jobs, one checkpointing job killed mid-flight, resumed
/// from its checkpoint and verified bitwise against an uninterrupted run.
fn run_smoke(args: &Args) -> ExitCode {
    let steps = args.steps.clamp(8, 20);
    let ckpt_dir = std::env::temp_dir().join(format!("lbm-ens-smoke-{}", std::process::id()));
    std::fs::create_dir_all(&ckpt_dir).expect("mkdir");
    println!("== ensemble smoke: 4 jobs, kill + resume one from checkpoint ==\n");

    let mut jobs = sweep_jobs(3, steps);
    // The victim runs 10× longer than the sweep jobs so the cancel issued
    // at its first checkpoint reliably lands while it still has work left
    // (rotation keeps pruning generations along the way).
    let mut victim = JobSpec::new(
        "victim",
        LatticeKind::D3Q19,
        Dim3::new(16, 16, 16),
        steps * 10,
    );
    victim.scenario = Some(ScenarioSpec::TaylorGreen {
        rho0: 1.0,
        u0: 0.02,
    });
    victim.progress_every = steps / 4;
    victim.checkpoint_every = steps / 4;
    jobs.push(victim.clone());

    let mut runner = EnsembleRunner::with_slots(2).with_checkpoint_dir(&ckpt_dir);
    let events = runner.events();
    let mut victim_id = None;
    for j in &jobs {
        let id = runner.submit(j.clone()).expect("submit");
        if j.name == "victim" {
            victim_id = Some(id);
        }
    }
    let victim_id = victim_id.expect("victim submitted");

    // Cancel the victim as soon as its first checkpoint lands; forward the
    // stream to the JSONL file as we watch it. The runner keeps its event
    // sender alive, so we count terminal events rather than waiting for the
    // channel to close.
    let mut lines = Vec::new();
    let mut cancelled = false;
    let mut terminal = 0;
    while terminal < jobs.len() {
        let rec = events.recv().expect("event stream ended early");
        lines.push(rec.to_json_line());
        match &rec.event {
            JobEvent::Checkpointed { job, .. } if *job == victim_id && !cancelled => {
                cancelled = true;
                runner.cancel(victim_id);
            }
            JobEvent::Finished { .. } | JobEvent::Failed { .. } | JobEvent::Cancelled { .. } => {
                terminal += 1;
            }
            _ => {}
        }
    }
    let outcomes = runner.join();
    let mut out = std::fs::File::create(&args.events).expect("create events file");
    for line in &lines {
        writeln!(out, "{line}").expect("write event line");
    }

    let cancelled_at =
        outcomes
            .iter()
            .find(|(id, _)| *id == victim_id)
            .and_then(|(_, o)| match o {
                JobOutcome::Cancelled { steps_done } => Some(*steps_done),
                _ => None,
            });
    let Some(cancelled_at) = cancelled_at else {
        println!("FAIL: victim was not cancelled (outcomes: {outcomes:?})");
        return ExitCode::FAILURE;
    };
    println!("victim cancelled at step {cancelled_at}; resuming from checkpoint");

    // Resume the victim from its newest surviving generation (rotation
    // retains the last two) and run it to the original horizon.
    assert!(cancelled, "checkpoint event seen");
    let (_, ckpt_path) = lbm_sim::runtime::checkpoint::list_generations(&ckpt_dir, &victim.name)
        .into_iter()
        .last()
        .expect("a retained generation survives rotation");
    let mut resumed = Simulation::resume(&ckpt_path).expect("resume checkpoint");
    let resumed_from = resumed.steps_done() as usize;
    resumed
        .run(victim.steps - resumed_from)
        .expect("run resumed victim");
    let final_state = resumed.checkpoint().expect("final state");

    // Uninterrupted reference for the bitwise verdict.
    let mut reference = victim.to_builder().and_then(|b| b.build()).expect("config");
    reference.run(victim.steps).expect("reference run");
    let reference_state = reference.checkpoint().expect("reference state");

    let bitwise = final_state == reference_state;
    let others_ok = outcomes
        .iter()
        .filter(|(id, _)| *id != victim_id)
        .all(|(_, o)| matches!(o, JobOutcome::Finished(_)));

    let doc = Json::obj(vec![
        ("harness", Json::str("ensemble_sweep --smoke")),
        ("jobs", Json::Int(jobs.len() as i64)),
        ("steps", Json::Int(steps as i64)),
        ("cancelled_at", Json::Int(cancelled_at as i64)),
        ("resumed_from", Json::Int(resumed_from as i64)),
        ("resume_bitwise_identical", Json::Bool(bitwise)),
        ("other_jobs_finished", Json::Bool(others_ok)),
    ]);
    std::fs::write(&args.out, doc.render_pretty()).expect("write JSON artifact");
    println!("wrote {} and {}", args.out, args.events);
    std::fs::remove_dir_all(&ckpt_dir).ok();

    if !bitwise {
        println!("FAIL: resumed trajectory is not bitwise identical to the reference");
        return ExitCode::FAILURE;
    }
    if !others_ok {
        println!("FAIL: a bystander job did not finish");
        return ExitCode::FAILURE;
    }
    println!("resume verified bitwise identical; all bystander jobs finished");
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args = parse_args();
    if args.smoke {
        run_smoke(&args)
    } else {
        run_sweep(&args)
    }
}
