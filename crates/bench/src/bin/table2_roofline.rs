//! Regenerates **Table II** — maximum attainable MFlup/s on Blue Gene/P and
//! Blue Gene/Q for both lattices (Eq. 5), the §III-C torus lower bounds and
//! hardware-efficiency ceilings — and adds a *measured* row for this host
//! (STREAM triad + FMA peak), applying the identical methodology.

use lbm_bench::{f, host_threads, paper, Table};
use lbm_machine::roofline::{self, Limiter};
use lbm_machine::{measure, MachineSpec};

fn main() {
    println!("== Table II: maximum attainable MFlup/s (paper Eq. 5) ==\n");
    println!(
        "measuring host (STREAM triad + FMA peak, {} threads)…\n",
        host_threads()
    );
    let host = measure::measure_host(host_threads());

    let machines = vec![MachineSpec::bgp(), MachineSpec::bgq(), host.clone()];
    let rows = roofline::table2(&machines);

    let mut t = Table::new(vec![
        "lattice",
        "system",
        "Bm GB/s",
        "P(Bm) MFlup/s",
        "Ppeak GF/s",
        "P(Ppeak) MFlup/s",
        "limiter",
        "torus bound",
        "eff. ceiling",
    ]);
    for r in &rows {
        t.row(vec![
            r.lattice.clone(),
            r.system.clone(),
            f(r.bm_gbs, 1),
            f(r.p_bm, 1),
            f(r.ppeak_gflops, 1),
            f(r.p_ppeak, 1),
            match r.limiter {
                Limiter::Bandwidth => "bandwidth".to_string(),
                Limiter::Compute => "compute".to_string(),
            },
            r.torus_bound.map_or("-".to_string(), |b| f(b, 1)),
            format!("{:.0}%", 100.0 * r.efficiency_bound),
        ]);
    }
    t.print();

    println!("\npaper's printed values (Table II / §III-C):");
    let mut p = Table::new(vec![
        "system",
        "lattice",
        "P(Bm)",
        "P(Ppeak)",
        "torus bound",
    ]);
    for ((sys, lat, p_bm, p_pp), (_, _, tb)) in paper::TABLE2.iter().zip(paper::TORUS_BOUNDS.iter())
    {
        p.row(vec![
            sys.to_string(),
            lat.to_string(),
            f(*p_bm, 1),
            f(*p_pp, 1),
            f(*tb, 1),
        ]);
    }
    p.print();

    println!("\nconclusions reproduced:");
    println!("  * every Blue Gene case is bandwidth-limited (red cells of the paper's table);");
    println!(
        "  * efficiency ceilings on BG/P: {:.0}% (D3Q19) and {:.0}% (D3Q39) — paper: 38% / 20%;",
        100.0 * rows[0].efficiency_bound,
        100.0 * rows[3].efficiency_bound
    );
    println!(
        "  * machine balance decline BG/P → BG/Q: {:.2} → {:.2} bytes/flop (the paper's closing point);",
        MachineSpec::bgp().balance_bytes_per_flop(),
        MachineSpec::bgq().balance_bytes_per_flop()
    );
    println!(
        "  * this host: balance {:.2} bytes/flop ⇒ LBM here is {} — same structural conclusion.",
        host.balance_bytes_per_flop(),
        if host.balance_bytes_per_flop() < 2.56 {
            "also bandwidth-limited"
        } else {
            "compute-limited"
        }
    );
}
