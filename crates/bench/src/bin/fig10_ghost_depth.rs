//! Regenerates **Fig. 10** — runtime (normalized to ghost depth 1) for
//! ghost-cell depths 1–4 across a sweep of fluid-system sizes.
//!
//! The paper sweeps the partitioned dimension at fixed rank count (2048 on
//! BG/P for D3Q19; 256 tasks on BG/Q for D3Q39), i.e. a sweep of the
//! points-per-rank ratio R. The trade it measures has two first-order
//! ingredients — extra halo computation `k·(d−1)` planes/step versus one
//! latency payment per `d` steps — whose *balance* depends on where the
//! machine sits. We therefore print the sweep in both regimes:
//!
//! * **compute-bound** (cheap network, the small-size side of the paper's
//!   plot): deep halos only add surface computation → ratios > 1, worst at
//!   small R and for D3Q39's k = 3 — the paper's left-side shape;
//! * **latency-bound** (expensive network, the scaled-out side): the
//!   message-count reduction dominates → depths ≥ 2 win — the paper's
//!   large-size behaviour.
//!
//! The paper's single sweep crosses between these regimes with size because
//! its 2 GB nodes add memory pressure at deep halos; see EXPERIMENTS.md.
//! The GC=4 "OOM" wall at the smallest sizes is reproduced structurally
//! (halo wider than the subdomain is rejected).
//!
//! ```sh
//! cargo run --release -p lbm-bench --bin fig10_ghost_depth -- [q19|q39]
//! ```

use std::time::Duration;

use lbm_bench::{f, paper, Table};
use lbm_comm::CostModel;
use lbm_core::index::Dim3;
use lbm_core::kernels::OptLevel;
use lbm_core::lattice::{Lattice, LatticeKind};
use lbm_sim::{CommStrategy, Simulation};

fn sweep(kind: LatticeKind, ranks: usize, steps: usize, rs: &[usize], cost: &CostModel) -> Table {
    let mut t = Table::new(vec![
        "size (global x)",
        "R/rank",
        "GC=1",
        "GC=2",
        "GC=3",
        "GC=4",
    ]);
    for &r in rs {
        let global = Dim3::new(ranks * r, 16, 16);
        let mut cells: Vec<String> = vec![format!("{}", global.nx), format!("{r}")];
        let mut base = None;
        for depth in 1..=4usize {
            let result = Simulation::builder(kind, global)
                .ranks(ranks)
                .warmup(4)
                .ghost_depth(depth)
                .level(OptLevel::Simd)
                .strategy(CommStrategy::NonBlockingGhost)
                .cost(cost.clone())
                .jitter(0.05)
                .build()
                .map_err(lbm_core::Error::from)
                .and_then(|mut sim| sim.run(steps));
            match result {
                Ok(rep) => {
                    let b = *base.get_or_insert(rep.wall_secs);
                    cells.push(f(rep.wall_secs / b, 3));
                }
                Err(_) => cells.push("OOM*".to_string()),
            }
        }
        t.row(cells);
    }
    t
}

fn main() {
    let kind = std::env::args()
        .nth(1)
        .and_then(|s| LatticeKind::parse(&s))
        .unwrap_or(LatticeKind::D3Q19);
    let lat = Lattice::new(kind);
    let ranks = 8usize;
    let steps = 60usize; // paper: 300; scaled with the cost model
    let rs: &[usize] = match kind {
        LatticeKind::D3Q39 => &[8, 16, 32, 64, 96],
        _ => &[4, 8, 16, 32, 64],
    };

    println!(
        "== Fig. 10{}: runtime vs ghost-cell depth, normalized to GC=1 ==",
        if kind == LatticeKind::D3Q19 { "a" } else { "b" }
    );
    println!(
        "   {} (k = {}), {ranks} ranks, {steps} steps\n",
        lat.name(),
        lat.reach()
    );

    println!("-- compute-bound regime (α = 2 µs): the paper's small-size behaviour --");
    sweep(
        kind,
        ranks,
        steps,
        rs,
        &CostModel::uniform(Duration::from_micros(2), 4e9),
    )
    .print();

    println!("\n-- latency-bound regime (α = 500 µs, β = 1.5 GB/s): the scaled-out behaviour --");
    sweep(
        kind,
        ranks,
        steps,
        rs,
        &CostModel::torus_ramp(Duration::from_micros(500), 1.5e9, ranks, 2.0),
    )
    .print();

    println!("\n  (*) halo exceeds the per-rank subdomain — the reproduction's analogue of");
    println!("      the paper's out-of-memory failure at GC=4 on the 133k case.");
    println!("\n{}", paper::FIG10_NOTE);
}
