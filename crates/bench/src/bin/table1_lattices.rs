//! Regenerates **Table I** — parameters of the two discrete velocity models
//! (shells, weights, neighbour order, distance) — directly from the lattice
//! definitions, and checks them against the printed values (including the
//! 1/432 correction of the paper's misprinted (2,2,0) weight).

use lbm_bench::Table;
use lbm_core::lattice::{Lattice, LatticeKind};

fn shell_table(kind: LatticeKind) -> Table {
    let lat = Lattice::new(kind);
    let mut t = Table::new(vec![
        "c_s^2",
        "xi_i (repr.)",
        "w_i",
        "count",
        "neighbor order",
        "distance",
    ]);
    for s in lat.shells() {
        t.row(vec![
            format!("{:.4}", lat.cs2()),
            format!(
                "({},{},{})",
                s.representative[0], s.representative[1], s.representative[2]
            ),
            format!("{:.6e}", s.weight),
            format!("{}", s.multiplicity),
            format!("{}", s.neighbor_order),
            format!("{:.4}", s.distance),
        ]);
    }
    t
}

fn main() {
    println!("== Table I: parameters of the discrete velocity models ==\n");
    for kind in [LatticeKind::D3Q19, LatticeKind::D3Q39] {
        let lat = Lattice::new(kind);
        println!(
            "{} lattice  (Q = {}, streaming reach k = {}, quadrature degree {}):",
            lat.name(),
            lat.q(),
            lat.reach(),
            lbm_core::lattice::hermite::quadrature_degree(&lat, 9),
        );
        shell_table(kind).print();
        let wsum: f64 = lat.weights().iter().sum();
        println!("   Σ w_i = {wsum:.15}\n");
    }
    println!("notes:");
    println!(
        "  * rest velocity stored last (\"the 19th and 39th values are the lattice point itself\")"
    );
    println!(
        "  * (2,2,0) weight is 1/432 = {:.6e}; the paper's Table I misprints it as 1/142",
        1.0 / 432.0
    );
    println!(
        "  * D3Q39 reaches distance 3 ⇒ fundamental ghost unit k = 3 (the paper's prose says 2;"
    );
    println!("    its own (3,0,0) shell requires 3 — see DESIGN.md)");
}
