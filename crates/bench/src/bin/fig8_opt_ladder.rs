//! Regenerates **Fig. 8** — MFlup/s achieved at each optimization rung for
//! both velocity models, against the machine-model peak.
//!
//! The paper ran 128 Blue Gene nodes; here the ladder runs on host ranks
//! (default 8 × 1 thread) and is normalised against the *measured* host
//! roofline, applying the paper's exact methodology (Table II model → % of
//! predicted peak). Shape expectations: monotone non-decreasing ladder,
//! D3Q39 ≈ half the MFlup/s of D3Q19 (B ratio 936/456), biggest single-node
//! jumps at DH/CF, final rungs approaching the bandwidth roofline.
//!
//! The ladder is extended past the paper by the `Fused` top rung (single-pass
//! stream+collide, §VII future work), which can exceed the paper's
//! split-pipeline model peak because it halves the bytes moved per update.
//!
//! ```sh
//! cargo run --release -p lbm-bench --bin fig8_opt_ladder [ranks]
//! ```

use lbm_bench::{f, paper, Table};
use lbm_comm::CostModel;
use lbm_core::index::Dim3;
use lbm_core::kernels::OptLevel;
use lbm_core::lattice::{Lattice, LatticeKind};
use lbm_machine::{attainable, measure, KernelTraffic};
use lbm_sim::Simulation;

fn main() {
    let ranks: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(8);

    println!("== Fig. 8: optimization ladder (host analogue of 8a/8b) ==\n");
    println!("measuring host roofline with {ranks} active cores…");
    let host = measure::measure_host(ranks);
    println!(
        "  host({} cores): {:.1} GB/s, {:.1} GFlop/s\n",
        ranks, host.mem_bw_gbs, host.peak_gflops
    );

    for (kind, global, steps) in [
        (LatticeKind::D3Q19, Dim3::new(96, 56, 56), 14usize),
        (LatticeKind::D3Q39, Dim3::new(64, 40, 40), 10),
    ] {
        let lat = Lattice::new(kind);
        let traffic = KernelTraffic::lbm(
            lat.q(),
            lat.flops_per_cell(),
            lbm_core::field::StorageMode::TwoGrid,
        );
        let bound = attainable(&host, &traffic);
        println!(
            "{}  (box {}×{}×{}, {} ranks, {} steps; host model peak {} MFlup/s):",
            lat.name(),
            global.nx,
            global.ny,
            global.nz,
            ranks,
            steps,
            f(bound.mflups(), 1)
        );
        let mut t = Table::new(vec![
            "rung",
            "kernel",
            "schedule",
            "MFlup/s",
            "vs Orig",
            "% of model peak",
        ]);
        let mut orig = None;
        let mut last = 0.0;
        for level in OptLevel::ALL {
            let mut sim = Simulation::builder(kind, global)
                .ranks(ranks)
                .warmup(2)
                .level(level)
                .cost(CostModel::free())
                .build()
                .expect("config");
            // Best of three runs per rung (perf-measurement practice).
            let rep = (0..3)
                .map(|_| sim.run(steps).expect("run"))
                .max_by(|a, b| a.mflups.total_cmp(&b.mflups))
                .unwrap();
            let base = *orig.get_or_insert(rep.mflups);
            last = rep.mflups;
            t.row(vec![
                level.name().to_string(),
                format!("{:?}", level.kernel_class()),
                rep.strategy.clone(),
                f(rep.mflups, 1),
                format!("{:.2}x", rep.mflups / base),
                format!("{:.1}%", 100.0 * rep.mflups / bound.mflups()),
            ]);
        }
        t.print();
        let improvement = last / orig.unwrap();
        let top = OptLevel::ALL[OptLevel::ALL.len() - 1].name();
        println!(
            "  ladder improvement Orig→{top}: {:.1}x   (paper: {}x Orig→SIMD on BG/P, {}x on BG/Q)",
            improvement,
            paper::LADDER_IMPROVEMENT[0].1,
            paper::LADDER_IMPROVEMENT[1].1
        );
        println!(
            "  final fraction of model peak: {:.0}%   (paper: 92%/83% BG/P, 85%/79% BG/Q)\n",
            100.0 * last / bound.mflups()
        );
    }

    println!("notes:");
    println!("  * the per-cell traffic accounting is the paper's B = 3·Q·8; a two-array");
    println!("    stream+collide implementation actually moves more like 5·Q·8 per step,");
    println!("    so the achievable fraction of P(Bm) on cached hardware is lower than the");
    println!("    Blue Gene numbers — the *shape* (monotone ladder, ~2x D3Q19:D3Q39 gap,");
    println!("    bandwidth-bound plateau) is the reproduced result. See EXPERIMENTS.md.");
}
