//! Fault-injection matrix for the supervised ensemble runtime, emitted as
//! `BENCH_faults.json` plus a JSONL event stream.
//!
//! Every cell scripts one disturbance — a worker panic, a checkpoint
//! bit-flip or torn write, a watchdog-visible stall, or NaN poisoning —
//! at an early/mid/late point of a 12-step job, across storage modes
//! (two-grid and AA in-place) and rank counts. The supervisor must land
//! in one of exactly two places:
//!
//! - **recovered**: the job finishes and its final checkpoint generation
//!   is **bitwise identical** to an undisturbed serial run's state (the
//!   final report's mass matches to the bit as well), or
//! - **terminal**: the failure is deterministic (NaN divergence) and the
//!   job ends `Failed(diverged)` without consuming any retry budget.
//!
//! Any other landing — wrong bytes, wrong classification, burned budget —
//! fails the cell and the process exits nonzero.
//!
//! ```sh
//! cargo run --release -p lbm-bench --bin ensemble_faults -- \
//!     [--smoke] [--out BENCH_faults.json] [--events fault_events.jsonl]
//! ```
//!
//! `--smoke` runs the CI-sized subset (one config per fault family);
//! the default runs the full matrix.

use std::process::ExitCode;
use std::time::Duration;

use lbm_bench::json::Json;
use lbm_bench::Table;
use lbm_core::field::StorageMode;
use lbm_core::index::Dim3;
use lbm_core::lattice::LatticeKind;
use lbm_sim::runtime::checkpoint::list_generations;
use lbm_sim::runtime::{
    CorruptMode, EnsembleRunner, FailureKind, FaultPlan, JobEvent, JobOutcome, JobSpec,
};
use lbm_sim::scenario::ScenarioSpec;
use lbm_sim::GeometrySpec;

const STEPS: usize = 12;

struct Args {
    smoke: bool,
    out: String,
    events: String,
}

fn parse_args() -> Args {
    let mut a = Args {
        smoke: false,
        out: "BENCH_faults.json".to_string(),
        events: "fault_events.jsonl".to_string(),
    };
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--smoke" => a.smoke = true,
            "--out" => a.out = argv.next().expect("--out needs a path"),
            "--events" => a.events = argv.next().expect("--events needs a path"),
            other => {
                eprintln!("error: unknown argument `{other}`");
                eprintln!("usage: ensemble_faults [--smoke] [--out PATH] [--events PATH]");
                std::process::exit(2);
            }
        }
    }
    a
}

/// One execution environment for a victim job.
#[derive(Clone, Copy)]
struct Config {
    storage: StorageMode,
    ranks: usize,
    /// Run on the sparse tiled path (pipe geometry + forced flow) instead
    /// of the dense Taylor–Green box.
    sparse: bool,
}

impl Config {
    fn label(&self) -> String {
        let s = if self.sparse {
            "sparse_tiles"
        } else {
            match self.storage {
                StorageMode::TwoGrid => "two_grid",
                StorageMode::InPlaceAa => "aa",
            }
        };
        format!("{s}x{}", self.ranks)
    }
}

/// One fault family at one point of the trajectory. Step faults fire at
/// chunk boundaries (progress cadence 2); checkpoint generations land at
/// steps 4, 8 and (final) 12.
#[derive(Clone, Copy)]
enum Fault {
    /// Worker panic at the given chunk boundary.
    Panic(u64),
    /// Bit-rot the newest generation then panic: resume must fall back.
    CorruptNewest,
    /// Damage every generation then panic: resume must restart fresh.
    CorruptAll,
    /// Sleep through the watchdog deadline at the given boundary.
    Stall(u64),
    /// Poison the state with NaN: deterministic, terminal, unretried.
    Nan,
}

impl Fault {
    fn label(&self) -> String {
        match self {
            Fault::Panic(at) => format!("panic@{at}"),
            Fault::CorruptNewest => "corrupt-newest".into(),
            Fault::CorruptAll => "corrupt-all".into(),
            Fault::Stall(at) => format!("stall@{at}"),
            Fault::Nan => "nan".into(),
        }
    }

    fn plan(&self) -> FaultPlan {
        match *self {
            Fault::Panic(at) => FaultPlan::new().panic_at(at),
            // Generation 1 (step 8) rots on disk; the panic at the final
            // boundary (before generation 2 is written) forces the resume.
            Fault::CorruptNewest => FaultPlan::new()
                .corrupt_checkpoint(1, CorruptMode::FlipBit { bit: 99_991 })
                .panic_at(STEPS as u64),
            Fault::CorruptAll => FaultPlan::new()
                .corrupt_checkpoint(0, CorruptMode::Truncate { keep: 23 })
                .corrupt_checkpoint(1, CorruptMode::FlipBit { bit: 54_321 })
                .panic_at(STEPS as u64),
            Fault::Stall(at) => FaultPlan::new().stall_at(at, Duration::from_millis(1500)),
            Fault::Nan => FaultPlan::new().nan_at(8),
        }
    }

    /// Whether the supervisor is expected to recover (vs terminate).
    fn recovers(&self) -> bool {
        !matches!(self, Fault::Nan)
    }
}

fn victim(name: &str, cfg: Config, fault: &Fault) -> JobSpec {
    let global = if cfg.sparse {
        Dim3::new(16, 16, 16)
    } else {
        Dim3::new(16, 8, 8)
    };
    let mut j = JobSpec::new(name, LatticeKind::D3Q19, global, STEPS);
    if cfg.sparse {
        j.scenario = Some(ScenarioSpec::ForcedFlow {
            g: 4e-6,
            pulse_amp: 0.5,
            pulse_period: 8,
        });
        j.geometry = Some(GeometrySpec::Pipe { radius: 5.0 });
    } else {
        j.scenario = Some(ScenarioSpec::TaylorGreen {
            rho0: 1.0,
            u0: 0.02,
        });
    }
    j.storage = cfg.storage;
    j.ranks = cfg.ranks;
    j.progress_every = 2;
    j.checkpoint_every = 4;
    j.max_retries = 2;
    j.backoff_ms = 1;
    j.retention = lbm_sim::runtime::RetentionPolicy::keep(3);
    if matches!(fault, Fault::Stall(_)) {
        j.watchdog_secs = 0.5;
    }
    j
}

struct CellResult {
    config: String,
    fault: String,
    verdict: &'static str,
    detail: String,
    retries: u64,
    ok: bool,
}

/// Run one matrix cell: victim + scripted fault through a single-slot
/// runner, verdict against the undisturbed serial reference.
fn run_cell(cfg: Config, fault: &Fault, events_out: &mut impl std::io::Write) -> CellResult {
    let name = format!("{}-{}", cfg.label(), fault.label()).replace('@', "-");
    let job = victim(&name, cfg, fault);

    // Undisturbed reference: the same spec through the plain Simulation
    // API, final state captured as checkpoint bytes.
    let mut reference = job.to_builder().and_then(|b| b.build()).expect("config");
    let ref_report = reference.run(STEPS).expect("reference run");
    let ref_state = reference.checkpoint().expect("reference state");

    let dir = std::env::temp_dir().join(format!("lbm-faultbench-{}-{name}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    let mut runner = EnsembleRunner::with_slots(1).with_checkpoint_dir(&dir);
    let events = runner.events();
    runner
        .submit_with_faults(job.clone(), fault.plan())
        .expect("submit");
    let outcomes = runner.join();
    let evs: Vec<JobEvent> = events
        .try_iter()
        .map(|rec| {
            writeln!(events_out, "{}", rec.to_json_line()).expect("write event line");
            rec.event
        })
        .collect();
    let retries = evs
        .iter()
        .filter(|e| matches!(e, JobEvent::Retried { .. }))
        .count() as u64;
    let final_bytes = list_generations(&dir, &name)
        .into_iter()
        .last()
        .map(|(_, path)| std::fs::read(path).expect("read final generation"));
    std::fs::remove_dir_all(&dir).ok();

    let outcome = &outcomes[0].1;
    let (verdict, detail, ok) = if fault.recovers() {
        match outcome {
            JobOutcome::Finished(report) => {
                let bytes_ok = final_bytes.as_deref() == Some(ref_state.as_slice());
                let mass_ok = report.mass.to_bits() == ref_report.mass.to_bits();
                if bytes_ok && mass_ok && report.steps == STEPS {
                    ("recovered", "bitwise identical".to_string(), true)
                } else {
                    (
                        "MISMATCH",
                        format!(
                            "bytes_ok={bytes_ok} mass_ok={mass_ok} steps={}",
                            report.steps
                        ),
                        false,
                    )
                }
            }
            other => ("FAILED", format!("{other:?}"), false),
        }
    } else {
        match outcome {
            JobOutcome::Failed {
                reason: FailureKind::Diverged,
                ..
            } if retries == 0 => ("terminal", "diverged, no retries burned".to_string(), true),
            JobOutcome::Failed { reason, .. } => (
                "MISCLASSIFIED",
                format!("{reason:?}, retries={retries}"),
                false,
            ),
            other => ("SURVIVED", format!("{other:?}"), false),
        }
    };
    CellResult {
        config: cfg.label(),
        fault: fault.label(),
        verdict,
        detail,
        retries,
        ok,
    }
}

fn main() -> ExitCode {
    let args = parse_args();
    let full = [
        Config {
            storage: StorageMode::TwoGrid,
            ranks: 1,
            sparse: false,
        },
        Config {
            storage: StorageMode::InPlaceAa,
            ranks: 1,
            sparse: false,
        },
        Config {
            storage: StorageMode::TwoGrid,
            ranks: 2,
            sparse: false,
        },
        Config {
            storage: StorageMode::InPlaceAa,
            ranks: 2,
            sparse: false,
        },
        Config {
            storage: StorageMode::TwoGrid,
            ranks: 2,
            sparse: true,
        },
    ];
    let faults = [
        Fault::Panic(6),
        Fault::Panic(10),
        Fault::Panic(STEPS as u64),
        Fault::CorruptNewest,
        Fault::CorruptAll,
        Fault::Stall(6),
        Fault::Nan,
    ];

    // The smoke subset covers every fault family once plus every config
    // once; the full matrix is the cross product.
    let cells: Vec<(Config, Fault)> = if args.smoke {
        faults
            .iter()
            .enumerate()
            .map(|(i, f)| (full[i % full.len()], *f))
            .collect()
    } else {
        full.iter()
            .flat_map(|c| faults.iter().map(move |f| (*c, *f)))
            .collect()
    };

    println!(
        "== ensemble fault matrix: {} cells ({}) ==\n",
        cells.len(),
        if args.smoke { "smoke" } else { "full" }
    );
    // Injected panics are the harness working as intended; keep their
    // backtraces out of the log. Anything else still prints.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let injected = info
            .payload()
            .downcast_ref::<String>()
            .is_some_and(|m| m.contains("injected fault"))
            || info
                .payload()
                .downcast_ref::<&str>()
                .is_some_and(|m| m.contains("injected fault"));
        if !injected {
            default_hook(info);
        }
    }));
    let mut events_out = std::fs::File::create(&args.events).expect("create events file");
    let mut table = Table::new(vec!["config", "fault", "verdict", "retries", "detail"]);
    let mut rows = Vec::new();
    let mut all_ok = true;
    for (cfg, fault) in &cells {
        let r = run_cell(*cfg, fault, &mut events_out);
        all_ok &= r.ok;
        table.row(vec![
            r.config.clone(),
            r.fault.clone(),
            r.verdict.to_string(),
            r.retries.to_string(),
            r.detail.clone(),
        ]);
        rows.push(Json::obj(vec![
            ("config", Json::str(&r.config)),
            ("fault", Json::str(&r.fault)),
            ("verdict", Json::str(r.verdict)),
            ("retries", Json::Int(r.retries as i64)),
            ("ok", Json::Bool(r.ok)),
        ]));
    }
    table.print();

    let doc = Json::obj(vec![
        ("harness", Json::str("ensemble_faults")),
        ("mode", Json::str(if args.smoke { "smoke" } else { "full" })),
        ("cells", Json::Int(cells.len() as i64)),
        ("all_ok", Json::Bool(all_ok)),
        ("results", Json::Arr(rows)),
    ]);
    std::fs::write(&args.out, doc.render_pretty()).expect("write JSON artifact");
    println!("\nwrote {} and {}", args.out, args.events);

    if !all_ok {
        println!("FAIL: at least one fault cell did not recover or classify correctly");
        return ExitCode::FAILURE;
    }
    println!(
        "all {} cells verified (bitwise recovery or typed terminal)",
        cells.len()
    );
    ExitCode::SUCCESS
}
