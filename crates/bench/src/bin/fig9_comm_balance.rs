//! Regenerates **Fig. 9** — time spent in communication by the ranks with
//! the minimum, median and maximum communication time, across the three
//! schedules (NB-C, NB-C & GC, GC-C), for both velocity models.
//!
//! The Blue Gene torus imbalance is emulated by the link-cost model's skew
//! ramp (rank-dependent link delay, DESIGN.md §1). Shape expectations from
//! the paper: a steep min→max slope for bare NB-C (4.8 s … 40 s there),
//! reduced imbalance with ghost cells, and a collapsed 3–5 s-style band for
//! GC-C where the interior collide hides the latency.
//!
//! ```sh
//! cargo run --release -p lbm-bench --bin fig9_comm_balance
//! ```

use std::time::Duration;

use lbm_bench::{f, paper, Table};
use lbm_comm::CostModel;
use lbm_core::index::Dim3;
use lbm_core::kernels::OptLevel;
use lbm_core::lattice::LatticeKind;
use lbm_sim::{CommStrategy, Simulation};

fn main() {
    let ranks = 8usize;
    let steps = 40usize;
    // Torus stand-in: 400 µs latency floor, 2 GB/s links, mild 2x link skew.
    let cost = CostModel::torus_ramp(Duration::from_micros(400), 2e9, ranks, 2.0);
    // Node-heterogeneity stand-in: the last rank computes 60% slower — this
    // is what turns into the min→max wait gradient at the sync points.
    let compute_skew = 0.6;

    println!("== Fig. 9: communication-time balance (min / median / max) ==");
    println!(
        "   {ranks} ranks, {steps} steps, α = 400 µs (2x link skew), {}% compute-skew ramp\n",
        (compute_skew * 100.0) as u32
    );

    let mut t = Table::new(vec![
        "model",
        "schedule",
        "min (ms)",
        "median (ms)",
        "max (ms)",
        "max/min",
    ]);
    for kind in [LatticeKind::D3Q19, LatticeKind::D3Q39] {
        for strategy in [
            CommStrategy::NonBlockingEager,    // the paper's bare "NB-C"
            CommStrategy::NonBlockingGhost,    // "NB-C & GC"
            CommStrategy::OverlapGhostCollide, // "GC-C"
        ] {
            let rep = Simulation::builder(kind, Dim3::new(64, 24, 24))
                .ranks(ranks)
                .warmup(4)
                .level(OptLevel::Simd)
                .strategy(strategy)
                .cost(cost.clone())
                .compute_skew(compute_skew)
                .jitter(0.05)
                .build()
                .expect("config")
                .run(steps)
                .expect("run");
            t.row(vec![
                kind.name().to_string(),
                strategy.label().to_string(),
                f(rep.comm_min_secs * 1e3, 1),
                f(rep.comm_median_secs * 1e3, 1),
                f(rep.comm_max_secs * 1e3, 1),
                format!("{:.1}", rep.comm_max_secs / rep.comm_min_secs.max(1e-9)),
            ]);
        }
    }
    t.print();

    println!(
        "\npaper (D3Q19, wall-clock seconds at scale): NB-C spanned {}–{} s;",
        paper::FIG9_NBC_RANGE_S.0,
        paper::FIG9_NBC_RANGE_S.1
    );
    println!(
        "GC-C collapsed the spread to {}–{} s. The reproduced shape is the same:",
        paper::FIG9_GCC_RANGE_S.0,
        paper::FIG9_GCC_RANGE_S.1
    );
    println!("large max/min under the eager schedule, a reduced spread with ghost cells,");
    println!("and a near-flat band once the separate ghost-cell collide overlaps the");
    println!("messages with interior computation.");
}
