//! Regenerates **Fig. 1** — "Fluid density in the aorta" (illustration).
//!
//! The paper's figure is a rendering of its hemodynamics application; the
//! reproduction drives a pulsatile pipe (circular lumen carved by the solid
//! mask) and writes the density field to `target/fig1_aorta_density.ppm`.
//!
//! ```sh
//! cargo run --release -p lbm-bench --bin fig1_aorta
//! ```

use lbm_core::boundary::ChannelWalls;
use lbm_core::collision::BodyForce;
use lbm_core::index::Dim3;
use lbm_core::lattice::LatticeKind;
use lbm_sim::output;
use lbm_sim::physics::ChannelSim;

fn main() {
    let fluid = Dim3::new(64, 25, 25);
    let mut sim = ChannelSim::new(
        LatticeKind::D3Q19,
        0.7,
        fluid,
        ChannelWalls::no_slip(1),
        BodyForce::along_x(4e-6),
    )
    .expect("pipe");
    let (cy, cz, r) = (13.0, 12.0, 11.0);
    sim.set_mask(|y, z| {
        let dy = y as f64 - cy;
        let dz = z as f64 - cz;
        (dy * dy + dz * dz).sqrt() > r
    });

    // One systolic pulse.
    let period = 300usize;
    let omega = 2.0 * std::f64::consts::PI / period as f64;
    for step in 0..period {
        let g = 4e-6 * (1.0 + 0.8 * (omega * step as f64).sin());
        sim.set_force(BodyForce::along_x(g));
        sim.step();
    }

    let rho = lbm_sim::observables::density_slice(&sim.ctx, sim.field(), fluid.nz / 2);
    std::fs::create_dir_all("target").expect("mkdir");
    let path = std::path::Path::new("target/fig1_aorta_density.ppm");
    output::write_ppm(path, &rho).expect("write");
    let (_, u) = lbm_sim::observables::macro_fields(&sim.ctx, sim.field());
    println!("Fig. 1 analogue written to {}", path.display());
    println!(
        "axis velocity {:.3e}, density range rendered blue→red (see paper Fig. 1)",
        u.get(fluid.nx / 2, 13, 12)[0]
    );
}
