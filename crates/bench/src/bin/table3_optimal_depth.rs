//! Regenerates **Tables III and IV** — the optimal ghost-cell depth as a
//! function of the lattice-points-per-rank ratio R, for D3Q19 (Table III)
//! and D3Q39 (Table IV).
//!
//! For each R the harness times depths 1–4 (where they fit) in both the
//! compute-bound and latency-bound regimes (see `fig10_ghost_depth`) and
//! reports the argmin, alongside the paper's printed bands. The paper's
//! headline — the optimal depth is not 1 and not monotone in R — appears in
//! the latency regime; the compute regime shows why depth 1 wins when the
//! network is cheap relative to the halo surface work.
//!
//! ```sh
//! cargo run --release -p lbm-bench --bin table3_optimal_depth -- [q19|q39]
//! ```

use std::time::Duration;

use lbm_bench::{f, paper, Table};
use lbm_comm::CostModel;
use lbm_core::index::Dim3;
use lbm_core::kernels::OptLevel;
use lbm_core::lattice::{Lattice, LatticeKind};
use lbm_sim::{CommStrategy, Simulation};

fn best_depth(
    kind: LatticeKind,
    ranks: usize,
    r: usize,
    steps: usize,
    cost: &CostModel,
) -> (Vec<Option<f64>>, usize) {
    let global = Dim3::new(ranks * r, 16, 16);
    let mut times = Vec::new();
    for depth in 1..=4usize {
        let result = Simulation::builder(kind, global)
            .ranks(ranks)
            .warmup(4)
            .ghost_depth(depth)
            .level(OptLevel::Simd)
            .strategy(CommStrategy::NonBlockingGhost)
            .cost(cost.clone())
            .jitter(0.05)
            .build()
            .ok()
            .and_then(|mut sim| sim.run(steps).ok());
        times.push(result.map(|rep| rep.wall_secs));
    }
    let best = times
        .iter()
        .enumerate()
        .filter_map(|(i, t)| t.map(|t| (i + 1, t)))
        .min_by(|a, b| a.1.total_cmp(&b.1))
        .map(|(d, _)| d)
        .unwrap_or(1);
    (times, best)
}

fn main() {
    let kind = std::env::args()
        .nth(1)
        .and_then(|s| LatticeKind::parse(&s))
        .unwrap_or(LatticeKind::D3Q19);
    let lat = Lattice::new(kind);
    let ranks = 8usize;
    let steps = 50usize;
    let rs: &[usize] = match kind {
        LatticeKind::D3Q39 => &[8, 12, 16, 24, 32, 48, 64],
        _ => &[4, 6, 8, 12, 16, 24, 32, 48, 64],
    };

    println!(
        "== Table {}: optimal ghost-cell depth vs points/rank ratio ({}) ==\n",
        if kind == LatticeKind::D3Q19 {
            "III"
        } else {
            "IV"
        },
        lat.name()
    );

    let compute_cost = CostModel::uniform(Duration::from_micros(2), 4e9);
    let latency_cost = CostModel::torus_ramp(Duration::from_micros(500), 1.5e9, ranks, 2.0);

    let mut t = Table::new(vec![
        "R (planes/rank)",
        "t(GC1) ms",
        "GC2/GC1",
        "GC3/GC1",
        "GC4/GC1",
        "opt (compute)",
        "opt (latency)",
    ]);
    for &r in rs {
        let (ct, cbest) = best_depth(kind, ranks, r, steps, &compute_cost);
        let (_, lbest) = best_depth(kind, ranks, r, steps, &latency_cost);
        let t1 = ct[0].expect("GC=1 must run");
        let mut cells = vec![format!("{r}"), f(t1 * 1e3, 1)];
        for d in 1..4 {
            cells.push(match ct[d] {
                Some(td) => format!("{:.3}x", td / t1),
                None => "OOM*".into(),
            });
        }
        cells.push(format!("{cbest}"));
        cells.push(format!("{lbest}"));
        t.row(cells);
    }
    t.print();
    println!("  (ratio columns show the compute-bound regime)");

    println!("\npaper's printed bands:");
    match kind {
        LatticeKind::D3Q19 => {
            for (band, d) in paper::TABLE3_BANDS {
                println!("  {band:>14} -> depth {d}");
            }
        }
        _ => {
            for (band, d) in paper::TABLE4_BANDS {
                println!("  {band:>16} -> depth {d}");
            }
        }
    }
    println!("\n  (*) halo would exceed the per-rank subdomain (paper: OOM).");
    println!("  Reproduced headline: the optimal depth is set by the latency-amortisation");
    println!("  vs halo-compute trade — depth 1 when the network is cheap (compute column),");
    println!("  depths 2-4 when latency dominates (latency column). The paper's bands mix");
    println!("  both regimes through its nodes' memory pressure; see EXPERIMENTS.md.");
}
