//! # lbm-bench
//!
//! The experiment harness that regenerates **every table and figure** of the
//! paper's evaluation (see DESIGN.md §4 for the per-experiment index):
//!
//! | Binary | Artifact |
//! |--------|----------|
//! | `table1_lattices`     | Table I — discrete velocity model parameters |
//! | `table2_roofline`     | Table II + §III-C torus bounds (+ measured host row) |
//! | `fig8_opt_ladder`     | Fig. 8a/b — optimization ladder MFlup/s vs model peak |
//! | `fig9_comm_balance`   | Fig. 9 — min/median/max communication time |
//! | `fig10_ghost_depth`   | Fig. 10a/b — runtime vs ghost-cell depth |
//! | `table3_optimal_depth`| Tables III/IV — optimal depth vs points/rank |
//! | `fig11_hybrid`        | Fig. 11a/b — rank × thread sweeps |
//! | `fig1_aorta`          | Fig. 1 — density field illustration |
//! | `bench_mflups`        | Machine-readable per-lattice/per-rung MFLUPS (`BENCH_kernels.json`) |
//!
//! Criterion microbenchmarks (`benches/`) complement the binaries with
//! kernel-level measurements: per-rung stream/collide, equilibrium order
//! cost, halo pack/unpack, and fabric latency.

pub mod json;
pub mod paper;

/// Simple fixed-width table printer for harness output.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Self {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header count).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let ncol = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut s = String::new();
            for i in 0..ncol {
                if i > 0 {
                    s.push_str("  ");
                }
                s.push_str(&format!("{:>width$}", cells[i], width = widths[i]));
            }
            s
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncol - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Format a float with fixed precision.
pub fn f(v: f64, prec: usize) -> String {
    format!("{v:.prec$}")
}

/// Threads available on this host.
pub fn host_threads() -> usize {
    std::thread::available_parallelism().map_or(4, |n| n.get())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(vec!["a", "bbbb"]);
        t.row(vec!["1", "2"]);
        t.row(vec!["333", "4"]);
        let s = t.render();
        let lines: Vec<_> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains('a') && lines[0].contains("bbbb"));
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["only one"]);
    }

    #[test]
    fn float_format() {
        assert_eq!(f(12.3456, 2), "12.35");
    }
}
