//! Reference values from the paper, for side-by-side reporting.
//!
//! Bar-chart values (Figs. 8–11) are eyeballed from the plots and marked as
//! approximate; table values are exact as printed.

/// Table II, as printed (MFlup/s): `(system, lattice, p_bm, p_ppeak)`.
pub const TABLE2: [(&str, &str, f64, f64); 4] = [
    ("BG/P", "D3Q19", 29.0, 76.4),
    ("BG/Q", "D3Q19", 94.0, 1150.0),
    ("BG/P", "D3Q39", 14.5, 71.5),
    ("BG/Q", "D3Q39", 45.0, 1077.0),
];

/// §III-C torus lower bounds (MFlup/s): `(system, lattice, bound)`.
pub const TORUS_BOUNDS: [(&str, &str, f64); 4] = [
    ("BG/P", "D3Q19", 11.1),
    ("BG/Q", "D3Q19", 70.0),
    ("BG/P", "D3Q39", 5.4),
    ("BG/Q", "D3Q39", 34.0),
];

/// Fraction of the model-predicted peak achieved by the fully tuned code
/// (paper §VI): `(system, lattice, fraction)`.
pub const PEAK_FRACTIONS: [(&str, &str, f64); 4] = [
    ("BG/P", "D3Q19", 0.92),
    ("BG/P", "D3Q39", 0.83),
    ("BG/Q", "D3Q19", 0.85),
    ("BG/Q", "D3Q39", 0.79),
];

/// Overall ladder improvement Orig → SIMD (paper abstract/§VI).
pub const LADDER_IMPROVEMENT: [(&str, f64); 2] = [("BG/P", 3.0), ("BG/Q", 7.5)];

/// Fig. 9 headline numbers (seconds): the NB-C imbalance range and the GC-C
/// collapsed range for D3Q19.
pub const FIG9_NBC_RANGE_S: (f64, f64) = (4.8, 40.0);
/// GC-C collapsed communication-time range for D3Q19 (seconds).
pub const FIG9_GCC_RANGE_S: (f64, f64) = (3.0, 5.0);

/// Table III — optimal D3Q19 ghost depth per points/proc band.
pub const TABLE3_BANDS: [(&str, usize); 3] =
    [("R <= 16", 1), ("16 < R <= 32", 3), ("32 < R <= 66", 2)];

/// Table IV — optimal D3Q39 ghost depth per points/proc band (as printed;
/// the paper's band edges overlap oddly — reproduced verbatim).
pub const TABLE4_BANDS: [(&str, &str); 4] = [
    ("R < 256", "1"),
    ("256 < R <= 532", "3"),
    ("532 < R <= 680", "2"),
    ("680 < R <= 800", "2 or 3"),
];

/// The paper's qualitative Fig. 10 findings, used in harness commentary.
pub const FIG10_NOTE: &str = "paper: GC=1 optimal at small sizes; depths 2-3 \
become optimal at the largest sizes (64k/133k); GC=4 ran out of memory at 133k";

#[cfg(test)]
mod tests {
    use lbm_machine::{attainable, KernelTraffic, MachineSpec};

    /// The constants transcribed here must agree with the analytic model —
    /// guards against transcription typos in either place.
    #[test]
    fn table2_constants_match_model() {
        for (sys, lat, p_bm, p_pp) in super::TABLE2 {
            let spec = if sys == "BG/P" {
                MachineSpec::bgp()
            } else {
                MachineSpec::bgq()
            };
            let t = if lat == "D3Q19" {
                KernelTraffic::d3q19()
            } else {
                KernelTraffic::d3q39()
            };
            let a = attainable(&spec, &t);
            // Paper rounds aggressively (29.8→29, 1150.6→1150 etc.).
            assert!(
                (a.p_bandwidth - p_bm).abs() < 1.0,
                "{sys} {lat}: {} vs {p_bm}",
                a.p_bandwidth
            );
            assert!(
                (a.p_flops - p_pp).abs() < 1.5,
                "{sys} {lat}: {} vs {p_pp}",
                a.p_flops
            );
        }
    }

    #[test]
    fn torus_constants_match_model() {
        for (sys, lat, bound) in super::TORUS_BOUNDS {
            let spec = if sys == "BG/P" {
                MachineSpec::bgp()
            } else {
                MachineSpec::bgq()
            };
            let t = if lat == "D3Q19" {
                KernelTraffic::d3q19()
            } else {
                KernelTraffic::d3q39()
            };
            let b = lbm_machine::roofline::torus_lower_bound(&spec, &t).unwrap();
            assert!((b - bound).abs() < 0.3, "{sys} {lat}: {b} vs {bound}");
        }
    }
}
