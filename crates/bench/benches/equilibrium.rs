//! Criterion microbenchmarks for the equilibrium computation: the cost of
//! the third-order Hermite term (paper Eq. 3 vs Eq. 2) and of the
//! reciprocal-form rewrite (the DH rung's arithmetic).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use lbm_core::equilibrium::{feq, feq_i_consts, EqConsts, EqOrder};
use lbm_core::lattice::{Lattice, LatticeKind};

fn bench_feq(c: &mut Criterion) {
    let states: Vec<(f64, [f64; 3])> = (0..256)
        .map(|i| {
            let t = i as f64 / 256.0;
            (1.0 + 0.1 * t, [0.05 * t, -0.03 * t, 0.02 * t])
        })
        .collect();

    for kind in [LatticeKind::D3Q19, LatticeKind::D3Q39] {
        let lat = Lattice::new(kind);
        let konst = EqConsts::new(&lat);
        let mut out = vec![0.0; lat.q()];
        let mut g = c.benchmark_group(format!("feq/{}", kind.name()));
        g.throughput(Throughput::Elements(states.len() as u64));

        let orders: &[EqOrder] = if kind == LatticeKind::D3Q39 {
            &[EqOrder::Second, EqOrder::Third]
        } else {
            &[EqOrder::Second]
        };
        for &order in orders {
            g.bench_function(BenchmarkId::new("division_form", order.label()), |b| {
                b.iter(|| {
                    let mut acc = 0.0;
                    for &(rho, u) in &states {
                        feq(&lat, order, rho, u, &mut out);
                        acc += out[0];
                    }
                    std::hint::black_box(acc)
                })
            });
            let third = order == EqOrder::Third;
            g.bench_function(BenchmarkId::new("reciprocal_form", order.label()), |b| {
                b.iter(|| {
                    let mut acc = 0.0;
                    for &(rho, u) in &states {
                        for i in 0..lat.q() {
                            acc += feq_i_consts(&konst, third, i, rho, u);
                        }
                    }
                    std::hint::black_box(acc)
                })
            });
        }
        g.finish();
    }
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_feq
}
criterion_main!(benches);
