//! Criterion microbenchmarks for the optimization-ladder kernels: per-rung
//! stream and collide throughput on both velocity models (the kernel-level
//! view of the paper's Fig. 8).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use lbm_core::collision::Bgk;
use lbm_core::equilibrium::EqOrder;
use lbm_core::field::DistField;
use lbm_core::index::Dim3;
use lbm_core::kernels::{self, KernelClass, KernelCtx, OptLevel, StreamTables};
use lbm_core::lattice::LatticeKind;

fn ctx_for(kind: LatticeKind) -> KernelCtx {
    let order = if kind == LatticeKind::D3Q39 {
        EqOrder::Third
    } else {
        EqOrder::Second
    };
    KernelCtx::new(kind, order, Bgk::new(0.8).unwrap())
}

fn seeded_field(q: usize, dims: Dim3, halo: usize) -> DistField {
    let mut f = DistField::new(q, dims, halo).unwrap();
    let mut s = 0x1234_5678_9abc_def1u64;
    for v in f.as_mut_slice() {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        *v = 0.02 + (s % 1000) as f64 / 1200.0;
    }
    f
}

/// Distinct kernel classes (deduplicating the rungs that share kernels).
const CLASSES: [(OptLevel, KernelClass); 6] = [
    (OptLevel::Orig, KernelClass::Naive),
    (OptLevel::Gc, KernelClass::Ghost),
    (OptLevel::Dh, KernelClass::Dh),
    (OptLevel::Cf, KernelClass::Cf),
    (OptLevel::LoBr, KernelClass::LoBr),
    (OptLevel::Simd, KernelClass::Simd),
];

fn bench_stream(c: &mut Criterion) {
    for kind in [LatticeKind::D3Q19, LatticeKind::D3Q39] {
        let ctx = ctx_for(kind);
        let k = ctx.lat.reach();
        let dims = Dim3::new(16, 24, 24);
        let src = seeded_field(ctx.lat.q(), dims, k);
        let mut dst = DistField::new(ctx.lat.q(), dims, k).unwrap();
        let tables = StreamTables::new(dims.ny, dims.nz);
        let mut g = c.benchmark_group(format!("stream/{}", kind.name()));
        g.throughput(Throughput::Elements(dims.len() as u64));
        for (level, class) in CLASSES {
            g.bench_function(BenchmarkId::from_parameter(format!("{class:?}")), |b| {
                b.iter(|| {
                    kernels::stream(level, &ctx, &tables, &src, &mut dst, k, k + dims.nx);
                    std::hint::black_box(dst.slab(0)[0])
                })
            });
        }
        g.finish();
    }
}

fn bench_collide(c: &mut Criterion) {
    for kind in [LatticeKind::D3Q19, LatticeKind::D3Q39] {
        let ctx = ctx_for(kind);
        let dims = Dim3::new(16, 24, 24);
        let mut g = c.benchmark_group(format!("collide/{}", kind.name()));
        g.throughput(Throughput::Elements(dims.len() as u64));
        for (level, class) in CLASSES {
            let mut f = seeded_field(ctx.lat.q(), dims, 0);
            g.bench_function(BenchmarkId::from_parameter(format!("{class:?}")), |b| {
                b.iter(|| {
                    kernels::collide(level, &ctx, &mut f, 0, dims.nx);
                    std::hint::black_box(f.slab(0)[0])
                })
            });
        }
        g.finish();
    }
}

/// Ablation for the paper's §VII future-work item: fused stream+collide
/// (2·Q·8 bytes/cell) vs the split pipeline (4·Q·8 bytes/cell).
fn bench_fused_ablation(c: &mut Criterion) {
    for kind in [LatticeKind::D3Q19, LatticeKind::D3Q39] {
        let ctx = ctx_for(kind);
        let k = ctx.lat.reach();
        // DRAM-resident working set (≈2×46 MB for D3Q39): the fused kernel's
        // advantage is memory traffic, invisible at cache-resident sizes.
        let dims = Dim3::new(48, 56, 56);
        let src = seeded_field(ctx.lat.q(), dims, k);
        let mut dst = DistField::new(ctx.lat.q(), dims, k).unwrap();
        let tables = StreamTables::new(dims.ny, dims.nz);
        let mut g = c.benchmark_group(format!("full_step/{}", kind.name()));
        g.throughput(Throughput::Elements(dims.len() as u64));
        g.bench_function("split_simd", |b| {
            b.iter(|| {
                kernels::stream(
                    OptLevel::Simd,
                    &ctx,
                    &tables,
                    &src,
                    &mut dst,
                    k,
                    k + dims.nx,
                );
                kernels::collide(OptLevel::Simd, &ctx, &mut dst, k, k + dims.nx);
                std::hint::black_box(dst.slab(0)[0])
            })
        });
        // Like-for-like scalar comparison (the fused kernel is scalar).
        g.bench_function("split_scalar", |b| {
            b.iter(|| {
                kernels::stream(
                    OptLevel::LoBr,
                    &ctx,
                    &tables,
                    &src,
                    &mut dst,
                    k,
                    k + dims.nx,
                );
                kernels::collide(OptLevel::LoBr, &ctx, &mut dst, k, k + dims.nx);
                std::hint::black_box(dst.slab(0)[0])
            })
        });
        g.bench_function("fused_scalar", |b| {
            b.iter(|| {
                kernels::fused::stream_collide(&ctx, &tables, &src, &mut dst, k, k + dims.nx);
                std::hint::black_box(dst.slab(0)[0])
            })
        });
        // The Fused rung proper: AVX2+FMA single pass (scalar fallback).
        g.bench_function("fused_simd", |b| {
            b.iter(|| {
                kernels::stream_collide(
                    OptLevel::Fused,
                    &ctx,
                    &tables,
                    &src,
                    &mut dst,
                    k,
                    k + dims.nx,
                );
                std::hint::black_box(dst.slab(0)[0])
            })
        });
        // Threaded fused driver (disjoint x-chunks over dst).
        g.bench_function("fused_par", |b| {
            b.iter(|| {
                kernels::par::stream_collide_par(&ctx, &tables, &src, &mut dst, k, k + dims.nx);
                std::hint::black_box(dst.slab(0)[0])
            })
        });
        g.finish();
    }
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_stream, bench_collide, bench_fused_ablation
}
criterion_main!(benches);
