//! Criterion microbenchmarks for halo pack/unpack: the per-exchange software
//! cost that deep halos amortise (paper §V-A), as a function of ghost depth
//! and velocity model.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use lbm_core::field::DistField;
use lbm_core::index::Dim3;
use lbm_core::lattice::{Lattice, LatticeKind};
use lbm_sim::halo::{pack_border, packed_len, unpack_halo, Side};

fn bench_pack_unpack(c: &mut Criterion) {
    for kind in [LatticeKind::D3Q19, LatticeKind::D3Q39] {
        let lat = Lattice::new(kind);
        let k = lat.reach();
        let dims = Dim3::new(32, 24, 24);
        let mut g = c.benchmark_group(format!("halo/{}", kind.name()));
        for depth in 1..=4usize {
            let h = depth * k;
            let mut f = DistField::new(lat.q(), dims, h).unwrap();
            for (i, v) in f.as_mut_slice().iter_mut().enumerate() {
                *v = i as f64;
            }
            let mut buf = Vec::new();
            g.throughput(Throughput::Bytes((packed_len(&f, h) * 8) as u64));
            g.bench_function(BenchmarkId::new("pack", format!("GC{depth}")), |b| {
                b.iter(|| {
                    pack_border(&f, Side::Left, h, &mut buf);
                    std::hint::black_box(buf.len())
                })
            });
            pack_border(&f, Side::Right, h, &mut buf);
            let data = buf.clone();
            g.bench_function(BenchmarkId::new("unpack", format!("GC{depth}")), |b| {
                b.iter(|| {
                    unpack_halo(&mut f, Side::Right, h, &data);
                    std::hint::black_box(f.slab(0)[0])
                })
            });
        }
        g.finish();
    }
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(150))
        .measurement_time(Duration::from_millis(400))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_pack_unpack
}
criterion_main!(benches);
