//! Criterion microbenchmarks for the message-passing fabric: ping-pong
//! latency, aggregated-message bandwidth, and collective costs — the runtime
//! floor under every communication schedule.

use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use lbm_comm::{CostModel, Universe};

/// Run `iters` ping-pongs of `len` doubles on a 2-rank universe and return
/// the elapsed time measured on rank 0.
fn ping_pong(iters: u64, len: usize) -> Duration {
    let outs = Universe::run(2, CostModel::free(), move |comm| {
        let peer = 1 - comm.rank();
        let payload = vec![1.0f64; len];
        let t0 = Instant::now();
        for k in 0..iters {
            if comm.rank() == 0 {
                comm.send(peer, k, payload.clone()).unwrap();
                let _ = comm.recv(peer, k).unwrap();
            } else {
                let got = comm.recv(peer, k).unwrap();
                comm.send(peer, k, got).unwrap();
            }
        }
        t0.elapsed()
    });
    outs[0]
}

fn bench_pingpong(c: &mut Criterion) {
    let mut g = c.benchmark_group("fabric/pingpong");
    for len in [1usize, 1024, 65536] {
        g.throughput(Throughput::Bytes((len * 8 * 2) as u64));
        g.bench_function(BenchmarkId::from_parameter(format!("{}B", len * 8)), |b| {
            b.iter_custom(|iters| ping_pong(iters.max(1), len))
        });
    }
    g.finish();
}

fn bench_barrier(c: &mut Criterion) {
    let mut g = c.benchmark_group("fabric/barrier");
    for ranks in [2usize, 4, 8] {
        g.bench_function(BenchmarkId::from_parameter(format!("{ranks}ranks")), |b| {
            b.iter_custom(|iters| {
                let outs = Universe::run(ranks, CostModel::free(), move |comm| {
                    let t0 = Instant::now();
                    for _ in 0..iters.max(1) {
                        comm.barrier();
                    }
                    t0.elapsed()
                });
                outs[0]
            })
        });
    }
    g.finish();
}

fn bench_allreduce(c: &mut Criterion) {
    let mut g = c.benchmark_group("fabric/allreduce");
    for ranks in [2usize, 8] {
        g.bench_function(BenchmarkId::from_parameter(format!("{ranks}ranks")), |b| {
            b.iter_custom(|iters| {
                let outs = Universe::run(ranks, CostModel::free(), move |comm| {
                    let vals = [comm.rank() as f64, 1.0, 2.0, 3.0];
                    let t0 = Instant::now();
                    for _ in 0..iters.max(1) {
                        std::hint::black_box(comm.allreduce_sum(&vals));
                    }
                    t0.elapsed()
                });
                outs[0]
            })
        });
    }
    g.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(150))
        .measurement_time(Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_pingpong, bench_barrier, bench_allreduce
}
criterion_main!(benches);
