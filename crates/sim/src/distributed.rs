//! The per-rank distributed solver: deep-halo stepping plus the paper's
//! communication schedules.
//!
//! ## Deep-halo cycle (paper §V-A)
//!
//! With ghost depth `d` (halo width `H = d·k`), halos are exchanged once per
//! `d` steps. After an exchange the field is valid on all `L + 2H` allocated
//! planes; each pull-stream+collide consumes `k` planes of validity per side,
//! so sub-step `j` computes on `[(j+1)·k, L + 2H − (j+1)·k)` — the interior
//! plus the still-needed part of the halo (the "extra computation" the paper
//! trades against message count). After `d` sub-steps exactly the owned
//! planes are valid and the next exchange refills the halos.
//!
//! ## Schedules (paper §V-E/F, Fig. 7/9)
//!
//! * [`CommStrategy::Blocking`] — exchange at cycle start, receives completed
//!   one link at a time (sum of delays).
//! * [`CommStrategy::NonBlockingEager`] — nonblocking posts, immediate
//!   waitall (max of delays, zero overlap): the no-ghost NB-C of Fig. 9.
//! * [`CommStrategy::NonBlockingGhost`] — sends posted at cycle end, waited
//!   at next cycle start (NB-C & GC).
//! * [`CommStrategy::OverlapGhostCollide`] — on the last sub-step the border
//!   planes are collided first, sends posted, and the interior collide
//!   overlaps the in-flight messages (GC-C, Fig. 7).
//!
//! ## Fused schedule (`OptLevel::Fused`)
//!
//! The fused top rung computes `dst ← collide(pull(src))` in one pass, so
//! there is no post-stream intermediate to exchange. The Fig. 7 overlap
//! still applies, re-ordered around the single pass: on the last sub-step
//! the *border* planes are fused first (their destination values are
//! complete post-collision state the moment they are written), the halo
//! sends are posted, and the fused interior + ghost-region sweep overlaps
//! the messages in flight. All pieces read only `src` and write disjoint
//! destination planes, so the re-ordering is exact, under both serial and
//! rayon-parallel drivers.
//!
//! ## AA-pattern storage (`StorageMode::InPlaceAa`)
//!
//! The AA mode replaces the whole double-buffer cycle machinery above with
//! the in-place pair of `lbm_core::kernels::aa`:
//!
//! * **even steps** are purely cell-local (read-local/write-local) and run
//!   on the owned planes only — **no exchange, ever**;
//! * **odd steps** gather-swapped/scatter-swapped over the writer planes
//!   `[own_lo − k, own_hi + k)`, which needs `2k` halo planes of post-even
//!   state: **one halo exchange per two steps**, shipping the
//!   swapped-direction populations the even step just produced, at any
//!   configured ghost depth.
//!
//! The Fig. 7 border-first overlap carries over: under the GC-C schedule
//! the even step computes the owned *border* planes first, posts the sends,
//! and computes the interior while the messages fly; the odd step waits,
//! unpacks and sweeps. Serial and rayon-parallel AA drivers are bitwise
//! identical (the odd step's writer↦slot bijection makes chunked execution
//! conflict-free), so the bitwise serial≡threaded guarantee holds in AA
//! mode too.
//!
//! The solver holds **one** population field in AA mode (no `tmp`), halving
//! resident population memory; see [`RankSolver::resident_population_bytes`].
//!
//! ## Scenario path (walls / masks / forcing)
//!
//! A [`crate::scenario::Scenario`] with boundaries or a body force runs at
//! any requested [`OptLevel`] with its rung's own kernel class, via the
//! composable cell operators of `lbm_core::kernels::op`:
//!
//! * the scalar rungs (`Orig`…`LoBr`/`NbC`/`GcC`) run the exact split
//!   pipeline — pull-stream `[lo, hi)` (all rows, solid included, so walls
//!   see the arrivals), the eager mid-step exchange when that schedule is
//!   active, [`BoundarySpec::apply`] over the same region, then the shared
//!   scalar Guo-forced fluid-row collide ([`kernels::collide_scenario`])
//!   with the Fig. 7 border-first split when the overlap schedule is on;
//! * the `Simd` rung runs the same split pipeline with the AVX2+FMA
//!   boundary-aware collide (force broadcast into the vectorized moment
//!   accumulation, `SectionMask`-aware row dispatch);
//! * the `Fused` rung runs the boundary-aware *single pass*
//!   ([`kernels::stream_collide_scenario`]): fluid cells are gathered,
//!   boundary-transformed-or-collided and stored in one sweep (the scalar
//!   pass bitwise identical to the split pipeline, the AVX2 pass within
//!   FMA re-rounding), scheduled exactly like the plain fused rung —
//!   owned borders fused first, sends posted, ghost + interior fused
//!   while the messages fly.
//!
//! Because the boundary spec is rank-local (the decomposition cuts x only),
//! ghost planes evolve identically to the neighbour's owned planes at any
//! ghost depth, under every class. Periodic unforced scenarios (e.g.
//! Taylor–Green) take the fast paths above unchanged.

use std::time::Instant;

use lbm_comm::comm::RecvRequest;
use lbm_comm::Comm;
use lbm_core::boundary::BoundarySpec;
use lbm_core::domain::{Decomp1d, Subdomain};
use lbm_core::equilibrium::EqOrder;
use lbm_core::field::{DistField, StorageMode};
use lbm_core::kernels::{self, KernelClass, KernelCtx, OptLevel, StreamTables, MAX_Q};
use lbm_core::moments::Moments;
use lbm_core::perf::PerfCounters;
use lbm_core::prelude::Bgk;
use lbm_core::{Error, Result};

use crate::config::{CommStrategy, SimConfig};
use crate::halo::{self, Side};
use crate::scenario::ScenarioHandle;

/// One rank's solver state.
pub struct RankSolver {
    /// Kernel context (lattice, equilibrium constants, ω).
    pub ctx: KernelCtx,
    /// This rank's subdomain.
    pub sub: Subdomain,
    level: OptLevel,
    strategy: CommStrategy,
    /// Population storage mode (two-grid double buffer vs in-place AA).
    storage: StorageMode,
    /// Lattice reach k.
    k: usize,
    /// Halo width: H = d·k (two-grid) or 2·k (AA).
    h: usize,
    /// Ghost depth d (two-grid exchange cadence; AA ignores it).
    depth: usize,
    f: DistField,
    /// The second (destination) buffer — `None` in AA mode, which is the
    /// storage mode's whole point.
    tmp: Option<DistField>,
    tables: StreamTables,
    pool: Option<rayon::ThreadPool>,
    /// Performance counters (owned vs ghost updates, compute time).
    pub counters: PerfCounters,
    jitter: f64,
    skew: f64,
    cycle: u64,
    send_buf: Vec<f64>,
    pending: Vec<RecvRequest>,
    /// The pluggable scenario (None = legacy periodic Taylor–Green).
    scenario: Option<ScenarioHandle>,
    /// The scenario's resolved boundary configuration.
    bounds: BoundarySpec,
    /// Time steps completed (drives time-varying forcing).
    step_no: u64,
}

/// Tag-space offset for the no-ghost mid-step (scatter) exchange, keeping it
/// disjoint from the cycle-boundary halo exchange tags.
const MIDSTEP_TAG_BASE: u64 = 1 << 40;

impl RankSolver {
    /// Build the solver for `rank` under `cfg` (assumed validated).
    pub fn new(cfg: &SimConfig, rank: usize) -> Result<Self> {
        cfg.validate()?;
        let order: EqOrder = cfg.eq_order();
        let ctx = KernelCtx::new(cfg.lattice, order, Bgk::new(cfg.tau)?);
        let k = ctx.lat.reach();
        let h = cfg.halo_width();
        let dec = Decomp1d::new(cfg.global, cfg.ranks)?;
        let sub = dec.subdomain(rank);
        let owned = sub.owned();
        let f = DistField::new(ctx.lat.q(), owned, h)?;
        let tmp = match cfg.storage {
            StorageMode::TwoGrid => Some(f.clone()),
            StorageMode::InPlaceAa => None,
        };
        let tables = StreamTables::new(owned.ny, owned.nz);
        let pool = if cfg.threads_per_rank > 1 {
            Some(
                rayon::ThreadPoolBuilder::new()
                    .num_threads(cfg.threads_per_rank)
                    .build()
                    .expect("rayon pool"),
            )
        } else {
            None
        };
        let scenario = cfg.scenario.clone();
        let bounds = scenario
            .as_ref()
            .map_or_else(BoundarySpec::periodic, |s| s.boundaries(cfg.global));
        let mut solver = Self {
            ctx,
            sub,
            level: cfg.level,
            strategy: cfg.comm_strategy(),
            storage: cfg.storage,
            k,
            h,
            depth: cfg.ghost_depth,
            f,
            tmp,
            tables,
            pool,
            counters: PerfCounters::new(),
            jitter: cfg.compute_jitter,
            skew: if cfg.ranks > 1 {
                cfg.compute_skew * rank as f64 / (cfg.ranks - 1) as f64
            } else {
                0.0
            },
            cycle: 0,
            send_buf: Vec::new(),
            pending: Vec::new(),
            scenario,
            bounds,
            step_no: 0,
        };
        match solver.scenario.clone() {
            Some(s) => solver.init_scenario(&s),
            None => solver.init_taylor_green(1.0, cfg.init_u0),
        }
        Ok(solver)
    }

    /// Initialise every allocated cell (halos included) to the equilibrium
    /// of the scenario's macroscopic state at its *global* coordinate. The
    /// periodic wrap makes the halos exactly the neighbour's owned values,
    /// so the first cycle needs no exchange — for any scenario, since x is
    /// always the periodic decomposed direction.
    ///
    /// In AA mode the field stores *arrivals* (the pull-stream of the
    /// two-grid state), so each population is initialised to the
    /// equilibrium of its upwind site — which makes the AA trajectory the
    /// exact streamed image of the two-grid trajectory.
    fn init_scenario(&mut self, s: &ScenarioHandle) {
        let g = self.sub.global;
        let sub = self.sub;
        let h = self.h;
        match self.storage {
            StorageMode::TwoGrid => {
                lbm_core::init::from_macroscopic(&self.ctx, &mut self.f, |x, y, z| {
                    s.init(g, sub.global_x(x, h), y, z)
                });
            }
            StorageMode::InPlaceAa => {
                lbm_core::init::from_macroscopic_streamed(
                    &self.ctx,
                    &mut self.f,
                    g,
                    sub.x_start as isize,
                    |gx, gy, gz| s.init(g, gx, gy, gz),
                );
            }
        }
        self.cycle = 0;
        self.step_no = 0;
        self.pending.clear();
    }

    /// Initialise to a global Taylor–Green mode (halos included — trig
    /// periodicity makes the wrap-around halos exact, so the first cycle
    /// needs no exchange). AA mode initialises the arrivals representation
    /// (see [`Self::init_scenario`]).
    pub fn init_taylor_green(&mut self, rho0: f64, u0: f64) {
        let g = self.sub.global;
        let x_off = self.sub.x_start as isize;
        match self.storage {
            StorageMode::TwoGrid => {
                lbm_core::init::taylor_green(
                    &self.ctx,
                    &mut self.f,
                    rho0,
                    u0,
                    g.nx,
                    g.ny,
                    x_off,
                    self.h,
                );
            }
            StorageMode::InPlaceAa => {
                lbm_core::init::taylor_green_streamed(&self.ctx, &mut self.f, rho0, u0, g, x_off);
            }
        }
        self.cycle = 0;
        self.step_no = 0;
        self.pending.clear();
    }

    /// Time steps completed since initialisation.
    pub fn steps_done(&self) -> u64 {
        self.step_no
    }

    /// The configured storage mode.
    pub fn storage(&self) -> StorageMode {
        self.storage
    }

    /// Whether the current field stores slot-swapped populations: true
    /// exactly mid-pair in AA mode (after an even step, before the odd
    /// step), where `f[x][i]` holds the post-collision population of the
    /// *opposite* direction. Mass readings are unaffected; directed
    /// quantities (momentum, velocity profiles) flip sign.
    pub fn parity_swapped(&self) -> bool {
        self.storage == StorageMode::InPlaceAa && self.step_no % 2 == 1
    }

    /// Bytes of resident population storage this rank holds (both buffers
    /// in two-grid mode, the single array in AA mode) — the footprint the
    /// AA refactor halves.
    pub fn resident_population_bytes(&self) -> u64 {
        self.f.resident_bytes() + self.tmp.as_ref().map_or(0, DistField::resident_bytes)
    }

    /// The scenario's resolved boundary configuration.
    pub fn bounds(&self) -> &BoundarySpec {
        &self.bounds
    }

    /// Allocated x extent.
    fn alloc_nx(&self) -> usize {
        self.f.alloc_dims().nx
    }

    /// Owned region in allocation coordinates.
    fn owned(&self) -> (usize, usize) {
        (self.h, self.h + self.sub.nx)
    }

    /// Compute region for sub-step `j`.
    fn region(&self, j: usize) -> (usize, usize) {
        let lo = (j + 1) * self.k;
        let hi = self.alloc_nx() - (j + 1) * self.k;
        (lo, hi)
    }

    /// Message tags for the exchange consumed at the start of `cycle`:
    /// `(to_left, to_right)`.
    fn tags(cycle: u64) -> (u64, u64) {
        (cycle * 2, cycle * 2 + 1)
    }

    /// Run `steps` time steps.
    pub fn run(&mut self, comm: &mut Comm, steps: usize) {
        match self.storage {
            StorageMode::TwoGrid => self.run_two_grid(comm, steps),
            StorageMode::InPlaceAa => self.run_aa(comm, steps),
        }
    }

    /// The two-grid deep-halo cycle loop (see module docs).
    fn run_two_grid(&mut self, comm: &mut Comm, steps: usize) {
        let mut done = 0;
        while done < steps {
            let in_cycle = self.depth.min(steps - done);
            self.begin_cycle(comm);
            for j in 0..in_cycle {
                self.substep(comm, j, in_cycle);
            }
            self.end_cycle(comm);
            self.cycle += 1;
            done += in_cycle;
        }
    }

    /// The AA-pattern step loop: alternating local even steps and
    /// exchange-then-sweep odd steps, resuming mid-pair when the step
    /// count is odd.
    fn run_aa(&mut self, comm: &mut Comm, steps: usize) {
        for s in 0..steps {
            let t0 = Instant::now();
            let ghost_planes = if self.step_no % 2 == 0 {
                // Post-ahead only pays off when this run still executes the
                // pair's odd step; otherwise leave the exchange to the odd
                // step's just-in-time path (next `run` call, if any) so a
                // run ending mid-pair never strands posted requests.
                self.aa_even_step(comm, s + 1 < steps);
                0
            } else {
                self.aa_odd_step(comm)
            };
            let noise = self.step_no;
            self.step_no += 1;
            if self.step_no % 2 == 0 {
                self.cycle += 1; // one completed pair
            }
            let mut dt = t0.elapsed();
            if self.jitter > 0.0 || self.skew > 0.0 {
                let u = jitter_u01(self.sub.rank as u64, noise);
                let extra = dt.mul_f64(self.jitter * u + self.skew);
                spin_sleep(extra);
                dt += extra;
            }
            let plane = self.f.alloc_dims().plane() as u64;
            self.counters
                .record(self.sub.nx as u64 * plane, ghost_planes as u64 * plane, dt);
        }
    }

    /// AA even step: in-place local collide over the owned planes. Under
    /// the ghost schedules the halo sends for the upcoming odd step are
    /// posted here (when that odd step runs in this `run` call) — border
    /// planes first under GC-C, so the interior compute overlaps the
    /// messages in flight (Fig. 7, re-ordered around the pair).
    fn aa_even_step(&mut self, comm: &mut Comm, post_ahead: bool) {
        let (own_lo, own_hi) = self.owned();
        let g = self.aa_force();
        let multi = self.sub.ranks > 1 && post_ahead;
        match self.strategy {
            CommStrategy::OverlapGhostCollide if multi => {
                let (border_lo, border_hi) = self.overlap_borders();
                self.aa_even(border_lo.0, border_lo.1, g);
                self.aa_even(border_hi.0, border_hi.1, g);
                self.aa_post_border_sends(comm);
                self.aa_even(border_lo.1, border_hi.0, g);
            }
            CommStrategy::NonBlockingGhost if multi => {
                self.aa_even(own_lo, own_hi, g);
                self.aa_post_border_sends(comm);
            }
            _ => self.aa_even(own_lo, own_hi, g),
        }
    }

    /// AA odd step. Decomposed ranks complete the pair's halo exchange
    /// (post-even swapped borders, `2k` planes per side), then
    /// gather/collide/scatter over the writer planes
    /// `[own_lo − k, own_hi + k)` — the `2k` ghost writer planes are the
    /// (counted) duplicate compute that buys the once-per-pair exchange
    /// cadence. A single rank owns the whole periodic axis, so it wraps the
    /// sweep's x-shift instead: no halo fill, no ghost writer planes, and
    /// bitwise-identical owned state (see [`lbm_core::kernels::aa::XShift`]).
    /// Returns the ghost writer planes computed (the duplicate-work count
    /// fed to the throughput counters).
    fn aa_odd_step(&mut self, comm: &mut Comm) -> usize {
        let (own_lo, own_hi) = self.owned();
        let g = self.aa_force();
        if self.sub.ranks == 1 {
            self.aa_odd_periodic(own_lo, own_hi, g);
            return 0;
        }
        {
            let (to_left, to_right) = Self::tags(self.step_no / 2);
            let left = self.sub.left();
            let right = self.sub.right();
            match self.strategy {
                CommStrategy::Blocking => {
                    halo::pack_border(&self.f, Side::Left, self.h, &mut self.send_buf);
                    comm.send(left, to_left, self.send_buf.clone())
                        .expect("send");
                    halo::pack_border(&self.f, Side::Right, self.h, &mut self.send_buf);
                    comm.send(right, to_right, self.send_buf.clone())
                        .expect("send");
                    let from_left = comm.recv(left, to_right).expect("recv");
                    halo::unpack_halo(&mut self.f, Side::Left, self.h, &from_left);
                    let from_right = comm.recv(right, to_left).expect("recv");
                    halo::unpack_halo(&mut self.f, Side::Right, self.h, &from_right);
                }
                CommStrategy::NonBlockingEager => {
                    halo::pack_border(&self.f, Side::Left, self.h, &mut self.send_buf);
                    let _ = comm
                        .isend(left, to_left, self.send_buf.clone())
                        .expect("isend");
                    halo::pack_border(&self.f, Side::Right, self.h, &mut self.send_buf);
                    let _ = comm
                        .isend(right, to_right, self.send_buf.clone())
                        .expect("isend");
                    let rl = comm.irecv(left, to_right).expect("irecv");
                    let rr = comm.irecv(right, to_left).expect("irecv");
                    let msgs = comm.waitall(vec![rl, rr]).expect("waitall");
                    halo::unpack_halo(&mut self.f, Side::Left, self.h, &msgs[0]);
                    halo::unpack_halo(&mut self.f, Side::Right, self.h, &msgs[1]);
                }
                CommStrategy::NonBlockingGhost | CommStrategy::OverlapGhostCollide => {
                    // Sends and receives are normally posted during the
                    // even step; when the previous `run` call ended on that
                    // even step nothing was posted (no stranded requests),
                    // so fall back to a just-in-time exchange here.
                    let reqs = std::mem::take(&mut self.pending);
                    if reqs.is_empty() {
                        self.aa_post_border_sends(comm);
                    }
                    let reqs = if reqs.is_empty() {
                        std::mem::take(&mut self.pending)
                    } else {
                        reqs
                    };
                    debug_assert_eq!(reqs.len(), 2, "AA ghost schedule must have posted receives");
                    let msgs = comm.waitall(reqs).expect("waitall");
                    halo::unpack_halo(&mut self.f, Side::Left, self.h, &msgs[0]);
                    halo::unpack_halo(&mut self.f, Side::Right, self.h, &msgs[1]);
                }
            }
        }
        self.aa_odd(own_lo - self.k, own_hi + self.k, g);
        2 * self.k
    }

    /// Pack the post-even borders of the single AA field, post the
    /// nonblocking sends for this pair's odd step, and post the receives.
    fn aa_post_border_sends(&mut self, comm: &mut Comm) {
        let (to_left, to_right) = Self::tags(self.step_no / 2);
        let left = self.sub.left();
        let right = self.sub.right();
        halo::pack_border(&self.f, Side::Left, self.h, &mut self.send_buf);
        let _ = comm
            .isend(left, to_left, self.send_buf.clone())
            .expect("isend");
        halo::pack_border(&self.f, Side::Right, self.h, &mut self.send_buf);
        let _ = comm
            .isend(right, to_right, self.send_buf.clone())
            .expect("isend");
        let rl = comm.irecv(left, to_right).expect("irecv");
        let rr = comm.irecv(right, to_left).expect("irecv");
        self.pending = vec![rl, rr];
    }

    /// The scenario body force for the step about to run (zero without a
    /// scenario or forcing).
    fn aa_force(&self) -> [f64; 3] {
        self.scenario
            .as_ref()
            .and_then(|s| s.forcing(self.step_no))
            .map_or([0.0; 3], |b| b.g)
    }

    /// In-place AA even sweep over `x ∈ [lo, hi)` at this rank's rung,
    /// threaded when the rank has a pool — gated at `Dh` and above exactly
    /// like the two-grid split path, so per-rung AA vs two-grid
    /// comparisons stay like-for-like (bit-identical to serial either
    /// way).
    fn aa_even(&mut self, lo: usize, hi: usize, g: [f64; 3]) {
        if lo >= hi {
            return;
        }
        match &self.pool {
            Some(pool) if self.level >= OptLevel::Dh => pool.install(|| {
                kernels::aa_even_scenario_par(
                    self.level,
                    &self.ctx,
                    &mut self.f,
                    lo,
                    hi,
                    g,
                    &self.bounds,
                );
            }),
            _ => kernels::aa_even_scenario(
                self.level,
                &self.ctx,
                &mut self.f,
                lo,
                hi,
                g,
                &self.bounds,
            ),
        }
    }

    /// In-place AA odd sweep over writer planes `x ∈ [lo, hi)`, threaded
    /// when the rank has a pool (same `Dh`-and-above gate as
    /// [`Self::aa_even`]; bit-identical to serial).
    fn aa_odd(&mut self, lo: usize, hi: usize, g: [f64; 3]) {
        if lo >= hi {
            return;
        }
        match &self.pool {
            Some(pool) if self.level >= OptLevel::Dh => pool.install(|| {
                kernels::aa_odd_scenario_par(
                    self.level,
                    &self.ctx,
                    &self.tables,
                    &mut self.f,
                    lo,
                    hi,
                    g,
                    &self.bounds,
                );
            }),
            _ => kernels::aa_odd_scenario(
                self.level,
                &self.ctx,
                &self.tables,
                &mut self.f,
                lo,
                hi,
                g,
                &self.bounds,
            ),
        }
    }

    /// Single-rank periodic AA odd sweep over the owned planes
    /// `x ∈ [lo, hi)` — the x-shift wraps inside the range, so no ghost
    /// plane is read or written (same threading gate as [`Self::aa_odd`];
    /// bit-identical to serial).
    fn aa_odd_periodic(&mut self, lo: usize, hi: usize, g: [f64; 3]) {
        if lo >= hi {
            return;
        }
        match &self.pool {
            Some(pool) if self.level >= OptLevel::Dh => pool.install(|| {
                kernels::aa_odd_scenario_periodic_par(
                    self.level,
                    &self.ctx,
                    &self.tables,
                    &mut self.f,
                    lo,
                    hi,
                    g,
                    &self.bounds,
                );
            }),
            _ => kernels::aa_odd_scenario_periodic(
                self.level,
                &self.ctx,
                &self.tables,
                &mut self.f,
                lo,
                hi,
                g,
                &self.bounds,
            ),
        }
    }

    fn begin_cycle(&mut self, comm: &mut Comm) {
        if self.cycle == 0 {
            return; // halos valid from initialisation
        }
        if self.sub.ranks == 1 {
            halo::fill_periodic_self(&mut self.f, self.h);
            return;
        }
        let (to_left, to_right) = Self::tags(self.cycle);
        let left = self.sub.left();
        let right = self.sub.right();
        match self.strategy {
            CommStrategy::Blocking => {
                // Send both borders, then complete receives one at a time
                // (the naive sum-of-delays pattern).
                halo::pack_border(&self.f, Side::Left, self.h, &mut self.send_buf);
                comm.send(left, to_left, self.send_buf.clone())
                    .expect("send");
                halo::pack_border(&self.f, Side::Right, self.h, &mut self.send_buf);
                comm.send(right, to_right, self.send_buf.clone())
                    .expect("send");
                // My left halo comes from my left neighbour's to_right send.
                let from_left = comm.recv(left, to_right).expect("recv");
                halo::unpack_halo(&mut self.f, Side::Left, self.h, &from_left);
                let from_right = comm.recv(right, to_left).expect("recv");
                halo::unpack_halo(&mut self.f, Side::Right, self.h, &from_right);
            }
            CommStrategy::NonBlockingEager => {
                // Nonblocking posts but an immediate waitall: zero overlap.
                halo::pack_border(&self.f, Side::Left, self.h, &mut self.send_buf);
                let _ = comm
                    .isend(left, to_left, self.send_buf.clone())
                    .expect("isend");
                halo::pack_border(&self.f, Side::Right, self.h, &mut self.send_buf);
                let _ = comm
                    .isend(right, to_right, self.send_buf.clone())
                    .expect("isend");
                let rl = comm.irecv(left, to_right).expect("irecv");
                let rr = comm.irecv(right, to_left).expect("irecv");
                let msgs = comm.waitall(vec![rl, rr]).expect("waitall");
                halo::unpack_halo(&mut self.f, Side::Left, self.h, &msgs[0]);
                halo::unpack_halo(&mut self.f, Side::Right, self.h, &msgs[1]);
            }
            CommStrategy::NonBlockingGhost | CommStrategy::OverlapGhostCollide => {
                // Sends were posted at the end of the previous cycle —
                // except on the first cycle after a checkpoint restore,
                // where nothing is in flight (restores never strand posted
                // requests). Fall back to a just-in-time exchange of the
                // current borders: `f` has not changed since the previous
                // cycle's sends would have packed it, so the payload is
                // bitwise the one the pre-posted schedule carries.
                let mut reqs = std::mem::take(&mut self.pending);
                if reqs.is_empty() {
                    halo::pack_border(&self.f, Side::Left, self.h, &mut self.send_buf);
                    let _ = comm
                        .isend(left, to_left, self.send_buf.clone())
                        .expect("isend");
                    halo::pack_border(&self.f, Side::Right, self.h, &mut self.send_buf);
                    let _ = comm
                        .isend(right, to_right, self.send_buf.clone())
                        .expect("isend");
                    reqs = vec![
                        comm.irecv(left, to_right).expect("irecv"),
                        comm.irecv(right, to_left).expect("irecv"),
                    ];
                }
                debug_assert_eq!(reqs.len(), 2, "ghost schedule must have posted receives");
                let msgs = comm.waitall(reqs).expect("waitall");
                halo::unpack_halo(&mut self.f, Side::Left, self.h, &msgs[0]);
                halo::unpack_halo(&mut self.f, Side::Right, self.h, &msgs[1]);
            }
        }
    }

    fn end_cycle(&mut self, comm: &mut Comm) {
        if self.sub.ranks == 1 {
            return;
        }
        match self.strategy {
            CommStrategy::Blocking | CommStrategy::NonBlockingEager => {}
            CommStrategy::NonBlockingGhost => {
                // Post sends and receives for the next cycle now; the gap to
                // the next cycle's waitall is the (limited) overlap window.
                let (to_left, to_right) = Self::tags(self.cycle + 1);
                let left = self.sub.left();
                let right = self.sub.right();
                halo::pack_border(&self.f, Side::Left, self.h, &mut self.send_buf);
                let _ = comm
                    .isend(left, to_left, self.send_buf.clone())
                    .expect("isend");
                halo::pack_border(&self.f, Side::Right, self.h, &mut self.send_buf);
                let _ = comm
                    .isend(right, to_right, self.send_buf.clone())
                    .expect("isend");
                self.post_receives(comm);
            }
            CommStrategy::OverlapGhostCollide => {
                // Sends already posted inside the last sub-step; receives too.
                debug_assert_eq!(self.pending.len(), 2);
            }
        }
    }

    fn post_receives(&mut self, comm: &mut Comm) {
        let (to_left, to_right) = Self::tags(self.cycle + 1);
        let left = self.sub.left();
        let right = self.sub.right();
        let rl = comm.irecv(left, to_right).expect("irecv");
        let rr = comm.irecv(right, to_left).expect("irecv");
        self.pending = vec![rl, rr];
    }

    /// GC-C send posting: pack the freshly-updated borders of `tmp`, post
    /// the nonblocking sends for the next cycle, and post the receives.
    fn post_border_sends(&mut self, comm: &mut Comm) {
        let (to_left, to_right) = Self::tags(self.cycle + 1);
        let left = self.sub.left();
        let right = self.sub.right();
        let tmp = self.tmp.as_ref().expect("two-grid destination buffer");
        halo::pack_border(tmp, Side::Left, self.h, &mut self.send_buf);
        let _ = comm
            .isend(left, to_left, self.send_buf.clone())
            .expect("isend");
        halo::pack_border(tmp, Side::Right, self.h, &mut self.send_buf);
        let _ = comm
            .isend(right, to_right, self.send_buf.clone())
            .expect("isend");
        self.post_receives(comm);
    }

    /// The no-ghost-cells mid-step exchange (paper's bare NB-C): in push
    /// form the collide depends on the neighbours' *stream* output of this
    /// very step, so the exchange sits mid-step with zero overlap window.
    /// We exchange the current `tmp` borders and wait immediately — the
    /// unhideable stall that the GC rungs remove.
    fn midstep_exchange(&mut self, comm: &mut Comm, j: usize) {
        let step_tag = MIDSTEP_TAG_BASE + self.cycle * 64 + j as u64;
        let left = self.sub.left();
        let right = self.sub.right();
        let tmp = self.tmp.as_mut().expect("two-grid destination buffer");
        halo::pack_border(tmp, Side::Left, self.h, &mut self.send_buf);
        let _ = comm
            .isend(left, step_tag, self.send_buf.clone())
            .expect("isend");
        halo::pack_border(tmp, Side::Right, self.h, &mut self.send_buf);
        let _ = comm
            .isend(right, step_tag + 32, self.send_buf.clone())
            .expect("isend");
        let rl = comm.irecv(left, step_tag + 32).expect("irecv");
        let rr = comm.irecv(right, step_tag).expect("irecv");
        let msgs = comm.waitall(vec![rl, rr]).expect("waitall");
        halo::unpack_halo(tmp, Side::Left, self.h, &msgs[0]);
        halo::unpack_halo(tmp, Side::Right, self.h, &msgs[1]);
    }

    /// The owned-region border split used by the Fig. 7 overlap:
    /// `(left border, right border)` in allocation coordinates.
    fn overlap_borders(&self) -> ((usize, usize), (usize, usize)) {
        let (own_lo, own_hi) = self.owned();
        let b = self.h.min((own_hi - own_lo).div_ceil(2));
        ((own_lo, own_lo + b), ((own_hi - b).max(own_lo + b), own_hi))
    }

    fn substep(&mut self, comm: &mut Comm, j: usize, in_cycle: usize) {
        let t0 = Instant::now();
        let (lo, hi) = self.region(j);
        let (own_lo, own_hi) = self.owned();
        let overlap_now = self.strategy == CommStrategy::OverlapGhostCollide
            && j + 1 == in_cycle
            && self.sub.ranks > 1;
        let force = self
            .scenario
            .as_ref()
            .and_then(|s| s.forcing(self.step_no))
            .map_or([0.0; 3], |b| b.g);
        let plain = self.bounds.is_periodic() && force == [0.0; 3];

        if !plain {
            if self.level.kernel_class() == KernelClass::Fused {
                // Scenario single-pass schedule: the boundary-aware fused
                // kernel writes complete post-boundary/post-collision
                // planes (wall rows transformed, masked cells bounced,
                // fluid cells Guo-collided), so the Fig. 7 overlap applies
                // exactly as on the plain fused path.
                if overlap_now {
                    let (border_lo, border_hi) = self.overlap_borders();
                    self.fused_scenario(border_lo.0, border_lo.1, force);
                    self.fused_scenario(border_hi.0, border_hi.1, force);
                    self.post_border_sends(comm);
                    self.fused_scenario(lo, own_lo, force);
                    self.fused_scenario(border_lo.1, border_hi.0, force);
                    self.fused_scenario(own_hi, hi, force);
                } else {
                    self.fused_scenario(lo, hi, force);
                    if self.strategy == CommStrategy::NonBlockingEager && self.sub.ranks > 1 {
                        // The eager emulation pays its mid-step stall; as on
                        // the plain fused path the exchanged borders are
                        // final-state, which the next cycle's boundary
                        // exchange overwrites either way.
                        self.midstep_exchange(comm, j);
                    }
                }
            } else {
                // Scenario split pipeline (see module docs). Stream
                // everything (solid rows included, so walls see the
                // arrivals)…
                self.stream(lo, hi);
                if self.strategy == CommStrategy::NonBlockingEager && self.sub.ranks > 1 {
                    // …exchange the pre-boundary post-stream borders (both
                    // sides pack pre-boundary state, so ghost planes stay
                    // consistent)…
                    self.midstep_exchange(comm, j);
                }
                // …transform wall rows and masked cells over the same region…
                let tmp = self.tmp.as_mut().expect("two-grid destination buffer");
                self.bounds.apply(&self.ctx, tmp, lo, hi);
                if overlap_now {
                    // …then the Fig. 7 overlap: collide the owned borders
                    // first (their fluid rows are final after this — solid
                    // rows were finalised by the boundary transform), post
                    // the sends, and collide the rest while the messages
                    // fly.
                    let (border_lo, border_hi) = self.overlap_borders();
                    self.collide_scenario(border_lo.0, border_lo.1, force);
                    self.collide_scenario(border_hi.0, border_hi.1, force);
                    self.post_border_sends(comm);
                    self.collide_scenario(lo, own_lo, force);
                    self.collide_scenario(border_lo.1, border_hi.0, force);
                    self.collide_scenario(own_hi, hi, force);
                } else {
                    self.collide_scenario(lo, hi, force);
                }
            }
        } else if self.level.kernel_class() == KernelClass::Fused {
            // Single-pass schedule: the fused kernel writes complete
            // post-collision planes, so the Fig. 7 overlap computes the
            // owned borders first, posts the sends, and fuses the rest
            // (ghost regions + interior) while the messages fly. Pieces
            // read only `f` and write disjoint `tmp` planes, so any order
            // produces the identical field.
            if overlap_now {
                let (border_lo, border_hi) = self.overlap_borders();
                self.fused(border_lo.0, border_lo.1);
                self.fused(border_hi.0, border_hi.1);
                self.post_border_sends(comm);
                self.fused(lo, own_lo);
                self.fused(border_lo.1, border_hi.0);
                self.fused(own_hi, hi);
            } else {
                self.fused(lo, hi);
                if self.strategy == CommStrategy::NonBlockingEager && self.sub.ranks > 1 {
                    // The eager emulation still pays its mid-step stall; the
                    // exchanged borders are post-collision here (there is no
                    // post-stream intermediate), which the next cycle's
                    // boundary exchange overwrites either way.
                    self.midstep_exchange(comm, j);
                }
            }
        } else {
            self.stream(lo, hi);

            if self.strategy == CommStrategy::NonBlockingEager && self.sub.ranks > 1 {
                self.midstep_exchange(comm, j);
            }

            if overlap_now {
                // GC-C (paper Fig. 7): collide the border planes of the
                // *owned* region first so their new state can be sent
                // immediately…
                let (border_lo, border_hi) = self.overlap_borders();
                self.collide(border_lo.0, border_lo.1);
                if border_hi.0 < border_hi.1 {
                    self.collide(border_hi.0, border_hi.1);
                }
                self.post_border_sends(comm);
                // …then collide everything else while the messages fly: the
                // ghost-region planes plus the interior.
                if lo < own_lo {
                    self.collide(lo, own_lo);
                }
                if border_lo.1 < border_hi.0 {
                    self.collide(border_lo.1, border_hi.0);
                }
                if own_hi < hi {
                    self.collide(own_hi, hi);
                }
            } else {
                self.collide(lo, hi);
            }
        }

        std::mem::swap(
            &mut self.f,
            self.tmp.as_mut().expect("two-grid destination buffer"),
        );
        self.step_no += 1;

        let mut dt = t0.elapsed();
        if self.jitter > 0.0 || self.skew > 0.0 {
            let u = jitter_u01(self.sub.rank as u64, self.cycle * 64 + j as u64);
            let extra = dt.mul_f64(self.jitter * u + self.skew);
            spin_sleep(extra);
            dt += extra;
        }
        let plane = self.f.alloc_dims().plane() as u64;
        let owned_cells = (own_hi - own_lo) as u64 * plane;
        let ghost_cells = ((hi - lo) as u64 - (own_hi - own_lo) as u64) * plane;
        self.counters.record(owned_cells, ghost_cells, dt);
    }

    fn stream(&mut self, lo: usize, hi: usize) {
        let tmp = self.tmp.as_mut().expect("two-grid destination buffer");
        match &self.pool {
            Some(pool) if self.level >= OptLevel::Dh => pool.install(|| {
                kernels::par::stream_par(&self.ctx, &self.tables, &self.f, tmp, lo, hi);
            }),
            _ => kernels::stream(self.level, &self.ctx, &self.tables, &self.f, tmp, lo, hi),
        }
    }

    fn collide(&mut self, lo: usize, hi: usize) {
        if lo >= hi {
            return;
        }
        let tmp = self.tmp.as_mut().expect("two-grid destination buffer");
        match &self.pool {
            Some(pool) if self.level >= OptLevel::Dh => pool.install(|| {
                kernels::par::collide_par(&self.ctx, tmp, lo, hi);
            }),
            _ => kernels::collide(self.level, &self.ctx, tmp, lo, hi),
        }
    }

    /// Scenario collide: BGK + Guo forcing over the fluid cells of
    /// `x ∈ [lo, hi)` (wall rows and masked cells skipped), running the
    /// rung's kernel class (scalar below `Simd`, AVX2+FMA at `Simd` and
    /// above) and threaded when the rank has a pool — bit-identical to
    /// serial either way.
    fn collide_scenario(&mut self, lo: usize, hi: usize, g: [f64; 3]) {
        if lo >= hi {
            return;
        }
        let tmp = self.tmp.as_mut().expect("two-grid destination buffer");
        match &self.pool {
            Some(pool) if self.level >= OptLevel::Dh => pool.install(|| {
                kernels::collide_scenario_par(self.level, &self.ctx, tmp, lo, hi, g, &self.bounds);
            }),
            _ => kernels::collide_scenario(self.level, &self.ctx, tmp, lo, hi, g, &self.bounds),
        }
    }

    /// One boundary-aware fused pass `tmp ← boundary+collide(pull(f))` over
    /// `x ∈ [lo, hi)` — the scenario form of [`Self::fused`], threaded when
    /// the rank has a pool (bit-identical to serial).
    fn fused_scenario(&mut self, lo: usize, hi: usize, g: [f64; 3]) {
        if lo >= hi {
            return;
        }
        let tmp = self.tmp.as_mut().expect("two-grid destination buffer");
        match &self.pool {
            Some(pool) => pool.install(|| {
                kernels::stream_collide_scenario_par(
                    &self.ctx,
                    &self.tables,
                    &self.f,
                    tmp,
                    lo,
                    hi,
                    g,
                    &self.bounds,
                );
            }),
            None => kernels::stream_collide_scenario(
                &self.ctx,
                &self.tables,
                &self.f,
                tmp,
                lo,
                hi,
                g,
                &self.bounds,
            ),
        }
    }

    /// One fused stream+collide pass `tmp ← collide(pull(f))` over
    /// `x ∈ [lo, hi)`, threaded when the rank has a pool.
    fn fused(&mut self, lo: usize, hi: usize) {
        if lo >= hi {
            return;
        }
        let tmp = self.tmp.as_mut().expect("two-grid destination buffer");
        match &self.pool {
            Some(pool) => pool.install(|| {
                kernels::par::stream_collide_par(&self.ctx, &self.tables, &self.f, tmp, lo, hi);
            }),
            None => {
                kernels::stream_collide(self.level, &self.ctx, &self.tables, &self.f, tmp, lo, hi)
            }
        }
    }

    /// Owned-region mass and momentum, summed across ranks.
    pub fn global_invariants(&self, comm: &mut Comm) -> (f64, [f64; 3]) {
        let (mass, mom) = self.local_invariants();
        let v = comm.allreduce_sum(&[mass, mom[0], mom[1], mom[2]]);
        (v[0], [v[1], v[2], v[3]])
    }

    /// Owned-region mass and momentum on this rank. Mid-pair AA states
    /// store slot-swapped populations (see [`Self::parity_swapped`]); the
    /// momentum sign is corrected here so the reading is always the
    /// physical one.
    pub fn local_invariants(&self) -> (f64, [f64; 3]) {
        let d = self.f.alloc_dims();
        let q = self.ctx.lat.q();
        let (lo, hi) = self.owned();
        let mut cell = [0.0f64; MAX_Q];
        let mut mass = 0.0;
        let mut mom = [0.0f64; 3];
        for x in lo..hi {
            for y in 0..d.ny {
                for z in 0..d.nz {
                    let lin = d.idx(x, y, z);
                    self.f.gather_cell(lin, &mut cell[..q]);
                    let m = Moments::of_cell(&self.ctx.lat, &cell[..q]);
                    mass += m.rho;
                    for a in 0..3 {
                        mom[a] += m.rho * m.u[a];
                    }
                }
            }
        }
        if self.parity_swapped() {
            // Slot-swapped storage: Σ c_i f_{opp(i)} = −Σ c_i f_i.
            for a in &mut mom {
                *a = -*a;
            }
        }
        (mass, mom)
    }

    /// Copy of the owned planes (halo-free), for cross-run comparisons.
    pub fn owned_snapshot(&self) -> DistField {
        let owned = self.sub.owned();
        let mut out = DistField::new(self.ctx.lat.q(), owned, 0).expect("snapshot alloc");
        let ds = self.f.alloc_dims();
        let dd = out.alloc_dims();
        for i in 0..self.ctx.lat.q() {
            for x in 0..owned.nx {
                let s = ds.idx(x + self.h, 0, 0);
                let t = dd.idx(x, 0, 0);
                let row = self.f.slab(i)[s..s + ds.plane()].to_vec();
                out.slab_mut(i)[t..t + dd.plane()].copy_from_slice(&row);
            }
        }
        out
    }

    /// Restore this rank from a checkpointed owned snapshot: overwrite the
    /// owned planes with `snap` (halo-free, bitwise) and fast-forward the
    /// step/cycle counters. Pending receives are cleared — the first cycle
    /// (or odd AA step) after a restore re-exchanges halos just in time,
    /// which the deep-halo invariant makes bitwise-equivalent to the
    /// uninterrupted schedule.
    pub fn restore_owned(&mut self, snap: &DistField, step_no: u64, cycle: u64) -> Result<()> {
        let owned = self.sub.owned();
        if snap.q() != self.ctx.lat.q() || snap.owned_dims() != owned || snap.halo() != 0 {
            return Err(Error::Mismatch(format!(
                "snapshot shape {}×{:?} (halo {}) does not fit rank {}: want {}×{:?} halo 0",
                snap.q(),
                snap.owned_dims(),
                snap.halo(),
                self.sub.rank,
                self.ctx.lat.q(),
                owned,
            )));
        }
        let ds = self.f.alloc_dims();
        let dd = snap.alloc_dims();
        for i in 0..self.ctx.lat.q() {
            for x in 0..owned.nx {
                let t = ds.idx(x + self.h, 0, 0);
                let s = dd.idx(x, 0, 0);
                let row = snap.slab(i)[s..s + dd.plane()].to_vec();
                self.f.slab_mut(i)[t..t + ds.plane()].copy_from_slice(&row);
            }
        }
        self.step_no = step_no;
        self.cycle = cycle;
        self.pending.clear();
        self.reset_counters();
        Ok(())
    }

    /// Completed exchange cycles (checkpointed alongside
    /// [`Self::steps_done`] so a restore resumes the tag sequence).
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Reset the performance counters (after warmup).
    pub fn reset_counters(&mut self) {
        self.counters = PerfCounters::new();
    }

    /// The current field (owned + halos) — test/diagnostic access.
    pub fn field(&self) -> &DistField {
        &self.f
    }

    /// Mutable field access for the fault-injection harness.
    pub(crate) fn field_mut(&mut self) -> &mut DistField {
        &mut self.f
    }
}

/// Deterministic `[0,1)` hash noise for compute jitter.
pub(crate) fn jitter_u01(rank: u64, step: u64) -> f64 {
    let mut x = rank
        .wrapping_mul(0x9E3779B97F4A7C15)
        .wrapping_add(step)
        .wrapping_mul(0xBF58476D1CE4E5B9);
    x ^= x >> 31;
    x = x.wrapping_mul(0x94D049BB133111EB);
    x ^= x >> 29;
    (x >> 11) as f64 / (1u64 << 53) as f64
}

pub(crate) fn spin_sleep(d: std::time::Duration) {
    let deadline = Instant::now() + d;
    while Instant::now() < deadline {
        std::hint::spin_loop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbm_comm::{CostModel, Universe};
    use lbm_core::index::Dim3;
    use lbm_core::lattice::LatticeKind;

    use crate::simulation::Simulation;

    /// Reference: run the same problem on one rank with the reference
    /// kernels (global periodic push-stream).
    fn reference_run(cfg: &SimConfig, steps: usize) -> DistField {
        let ctx = KernelCtx::new(cfg.lattice, cfg.eq_order(), Bgk::new(cfg.tau).unwrap());
        let mut f = DistField::new(ctx.lat.q(), cfg.global, 0).unwrap();
        lbm_core::init::taylor_green(
            &ctx,
            &mut f,
            1.0,
            cfg.init_u0,
            cfg.global.nx,
            cfg.global.ny,
            0,
            0,
        );
        let mut tmp = f.clone();
        for _ in 0..steps {
            lbm_core::kernels::reference::step_periodic(&ctx, &mut f, &mut tmp);
        }
        f
    }

    fn distributed_owned(cfg: &SimConfig, steps: usize) -> Vec<DistField> {
        Universe::run(cfg.ranks, cfg.cost.clone(), |comm| {
            let mut s = RankSolver::new(cfg, comm.rank()).unwrap();
            s.run(comm, steps);
            s.owned_snapshot()
        })
    }

    fn compare_to_reference(cfg: &SimConfig, steps: usize, tol: f64) {
        let reference = reference_run(cfg, steps);
        let snaps = distributed_owned(cfg, steps);
        let dref = reference.alloc_dims();
        let mut x0 = 0usize;
        let mut max_diff: f64 = 0.0;
        for snap in snaps {
            let ds = snap.alloc_dims();
            for i in 0..snap.q() {
                for x in 0..ds.nx {
                    let a = dref.idx(x0 + x, 0, 0);
                    let b = ds.idx(x, 0, 0);
                    for p in 0..dref.plane() {
                        max_diff =
                            max_diff.max((reference.slab(i)[a + p] - snap.slab(i)[b + p]).abs());
                    }
                }
            }
            x0 += ds.nx;
        }
        assert!(
            max_diff <= tol,
            "distributed differs from reference by {max_diff} (cfg: {:?} ranks={} depth={} level={:?} strat={:?})",
            cfg.lattice, cfg.ranks, cfg.ghost_depth, cfg.level, cfg.comm_strategy()
        );
    }

    #[test]
    fn single_rank_matches_reference_q19() {
        let cfg = Simulation::builder(LatticeKind::D3Q19, Dim3::new(12, 8, 8))
            .level(OptLevel::Gc)
            .build_config()
            .unwrap();
        compare_to_reference(&cfg, 5, 1e-13);
    }

    #[test]
    fn multi_rank_matches_reference_q19_all_strategies() {
        for strategy in [
            CommStrategy::Blocking,
            CommStrategy::NonBlockingEager,
            CommStrategy::NonBlockingGhost,
            CommStrategy::OverlapGhostCollide,
        ] {
            let cfg = Simulation::builder(LatticeKind::D3Q19, Dim3::new(12, 8, 8))
                .ranks(3)
                .level(OptLevel::LoBr)
                .strategy(strategy)
                .build_config()
                .unwrap();
            compare_to_reference(&cfg, 6, 1e-12);
        }
    }

    #[test]
    fn deep_halo_matches_reference_q19() {
        for depth in [1usize, 2, 3] {
            let cfg = Simulation::builder(LatticeKind::D3Q19, Dim3::new(16, 8, 8))
                .ranks(2)
                .ghost_depth(depth)
                .level(OptLevel::Cf)
                .strategy(CommStrategy::NonBlockingGhost)
                .build_config()
                .unwrap();
            compare_to_reference(&cfg, 7, 1e-12);
        }
    }

    #[test]
    fn deep_halo_matches_reference_q39() {
        // k = 3: depth 2 means 6-plane halos.
        for depth in [1usize, 2] {
            let cfg = Simulation::builder(LatticeKind::D3Q39, Dim3::new(16, 8, 8))
                .ranks(2)
                .ghost_depth(depth)
                .level(OptLevel::Simd)
                .strategy(CommStrategy::OverlapGhostCollide)
                .build_config()
                .unwrap();
            compare_to_reference(&cfg, 5, 1e-11);
        }
    }

    #[test]
    fn orig_level_matches_reference_multirank() {
        let cfg = Simulation::builder(LatticeKind::D3Q19, Dim3::new(12, 8, 8))
            .ranks(4)
            .level(OptLevel::Orig)
            .build_config()
            .unwrap();
        compare_to_reference(&cfg, 4, 1e-12);
    }

    #[test]
    fn fused_rung_matches_reference_q19_all_strategies() {
        for strategy in [
            CommStrategy::Blocking,
            CommStrategy::NonBlockingEager,
            CommStrategy::NonBlockingGhost,
            CommStrategy::OverlapGhostCollide,
        ] {
            let cfg = Simulation::builder(LatticeKind::D3Q19, Dim3::new(12, 8, 8))
                .ranks(3)
                .level(OptLevel::Fused)
                .strategy(strategy)
                .build_config()
                .unwrap();
            compare_to_reference(&cfg, 6, 1e-12);
        }
    }

    #[test]
    fn fused_deep_halo_matches_reference_q39() {
        // k = 3: the fused kernel must honour the shrinking deep-halo
        // regions and the Fig. 7 overlap split.
        for depth in [1usize, 2] {
            let cfg = Simulation::builder(LatticeKind::D3Q39, Dim3::new(16, 8, 8))
                .ranks(2)
                .ghost_depth(depth)
                .level(OptLevel::Fused)
                .build_config()
                .unwrap();
            compare_to_reference(&cfg, 5, 1e-11);
        }
    }

    #[test]
    fn fused_hybrid_threads_match_reference() {
        let cfg = Simulation::builder(LatticeKind::D3Q19, Dim3::new(12, 8, 8))
            .ranks(2)
            .threads(3)
            .level(OptLevel::Fused)
            .build_config()
            .unwrap();
        compare_to_reference(&cfg, 5, 1e-11);
    }

    #[test]
    fn fused_threads_are_bitwise_identical_to_serial_fused() {
        // The threaded fused driver runs the identical kernel per chunk, so
        // rank-local threading must not change a single bit.
        let base = Simulation::builder(LatticeKind::D3Q19, Dim3::new(12, 8, 8))
            .ranks(2)
            .level(OptLevel::Fused);
        let serial = distributed_owned(&base.clone().threads(1).build_config().unwrap(), 6);
        let threaded = distributed_owned(&base.threads(4).build_config().unwrap(), 6);
        for (a, b) in serial.iter().zip(&threaded) {
            assert_eq!(a.max_abs_diff_owned(b), 0.0);
        }
    }

    #[test]
    fn hybrid_threads_match_reference() {
        let cfg = Simulation::builder(LatticeKind::D3Q19, Dim3::new(12, 8, 8))
            .ranks(2)
            .threads(3)
            .level(OptLevel::Simd)
            .strategy(CommStrategy::OverlapGhostCollide)
            .build_config()
            .unwrap();
        compare_to_reference(&cfg, 5, 1e-11);
    }

    #[test]
    fn rank_count_invariance_is_bitwise_per_level() {
        // The same kernel class must produce identical owned fields
        // regardless of decomposition (1 vs 4 ranks).
        let base = Simulation::builder(LatticeKind::D3Q19, Dim3::new(12, 8, 8))
            .level(OptLevel::LoBr)
            .strategy(CommStrategy::NonBlockingGhost);
        let single = distributed_owned(&base.clone().ranks(1).build_config().unwrap(), 6);
        let multi = distributed_owned(&base.ranks(4).build_config().unwrap(), 6);
        let whole = &single[0];
        let dw = whole.alloc_dims();
        let mut x0 = 0;
        for part in multi {
            let dp = part.alloc_dims();
            for i in 0..part.q() {
                for x in 0..dp.nx {
                    let a = dw.idx(x0 + x, 0, 0);
                    let b = dp.idx(x, 0, 0);
                    assert_eq!(
                        &whole.slab(i)[a..a + dw.plane()],
                        &part.slab(i)[b..b + dp.plane()],
                        "slab {i} plane {x}"
                    );
                }
            }
            x0 += dp.nx;
        }
    }

    #[test]
    fn invariants_conserved_across_run() {
        let cfg = Simulation::builder(LatticeKind::D3Q39, Dim3::new(12, 8, 8))
            .ranks(2)
            .ghost_depth(1)
            .level(OptLevel::Simd)
            .build_config()
            .unwrap();
        let out = Universe::run(cfg.ranks, CostModel::free(), |comm| {
            let mut s = RankSolver::new(&cfg, comm.rank()).unwrap();
            let before = s.global_invariants(comm);
            s.run(comm, 8);
            let after = s.global_invariants(comm);
            (before, after)
        });
        for (before, after) in out {
            assert!((before.0 - after.0).abs() < 1e-9 * before.0, "mass");
            for a in 0..3 {
                assert!((before.1[a] - after.1[a]).abs() < 1e-9, "momentum {a}");
            }
        }
    }

    /// Concatenate owned snapshots along x into one global, halo-free field.
    fn assemble_global(snaps: &[DistField], global: Dim3) -> DistField {
        let mut out = DistField::new(snaps[0].q(), global, 0).unwrap();
        let dg = out.alloc_dims();
        let mut x0 = 0usize;
        for snap in snaps {
            let ds = snap.alloc_dims();
            for i in 0..snap.q() {
                for x in 0..ds.nx {
                    let s = ds.idx(x, 0, 0);
                    let t = dg.idx(x0 + x, 0, 0);
                    let row = snap.slab(i)[s..s + ds.plane()].to_vec();
                    out.slab_mut(i)[t..t + dg.plane()].copy_from_slice(&row);
                }
            }
            x0 += ds.nx;
        }
        out
    }

    /// After an even number of steps the AA state is the pull-stream of
    /// the two-grid state: `aa[x][i] = tg[wrap(x − c_i)][i]`. Returns the
    /// max abs deviation from that correspondence.
    fn aa_vs_streamed_two_grid(ctx: &KernelCtx, aa: &DistField, tg: &DistField) -> f64 {
        let d = aa.alloc_dims();
        let mut max: f64 = 0.0;
        for (i, c) in ctx.lat.velocities().iter().enumerate() {
            for x in 0..d.nx {
                let ux = (x as isize - c[0] as isize).rem_euclid(d.nx as isize) as usize;
                for y in 0..d.ny {
                    let uy = (y as isize - c[1] as isize).rem_euclid(d.ny as isize) as usize;
                    for z in 0..d.nz {
                        let uz = (z as isize - c[2] as isize).rem_euclid(d.nz as isize) as usize;
                        let a = aa.slab(i)[d.idx(x, y, z)];
                        let b = tg.slab(i)[d.idx(ux, uy, uz)];
                        max = max.max((a - b).abs());
                    }
                }
            }
        }
        max
    }

    #[test]
    fn aa_matches_two_grid_across_levels_ranks_and_threads() {
        use lbm_core::field::StorageMode;
        let global = Dim3::new(16, 8, 8);
        for (kind, level, ranks, threads) in [
            (LatticeKind::D3Q19, OptLevel::LoBr, 2usize, 1usize),
            (LatticeKind::D3Q19, OptLevel::Fused, 3, 1),
            (LatticeKind::D3Q39, OptLevel::Simd, 2, 2),
        ] {
            let base = Simulation::builder(kind, global)
                .level(level)
                .ranks(ranks)
                .threads(threads);
            let steps = 6;
            let ctx = KernelCtx::new(
                kind,
                base.clone().build_config().unwrap().eq_order(),
                Bgk::new(0.8).unwrap(),
            );
            let tg_cfg = base.clone().build_config().unwrap();
            let aa_cfg = base
                .clone()
                .storage(StorageMode::InPlaceAa)
                .build_config()
                .unwrap();
            let tg = assemble_global(&distributed_owned(&tg_cfg, steps), global);
            let aa = assemble_global(&distributed_owned(&aa_cfg, steps), global);
            let diff = aa_vs_streamed_two_grid(&ctx, &aa, &tg);
            assert!(
                diff <= 1e-11,
                "{kind:?} {} ranks={ranks} threads={threads}: {diff}",
                level.name()
            );
        }
    }

    #[test]
    fn aa_threads_are_bitwise_identical_to_serial_aa() {
        use lbm_core::field::StorageMode;
        let base = Simulation::builder(LatticeKind::D3Q19, Dim3::new(12, 8, 8))
            .ranks(2)
            .level(OptLevel::Fused)
            .storage(StorageMode::InPlaceAa);
        let serial = distributed_owned(&base.clone().threads(1).build_config().unwrap(), 7);
        let threaded = distributed_owned(&base.threads(4).build_config().unwrap(), 7);
        for (a, b) in serial.iter().zip(&threaded) {
            assert_eq!(a.max_abs_diff_owned(b), 0.0);
        }
    }

    #[test]
    fn aa_exchanges_once_per_pair_and_conserves_invariants() {
        use lbm_core::field::StorageMode;
        let cfg = Simulation::builder(LatticeKind::D3Q19, Dim3::new(16, 8, 8))
            .ranks(2)
            .level(OptLevel::Simd)
            .storage(StorageMode::InPlaceAa)
            .build_config()
            .unwrap();
        let out = Universe::run(cfg.ranks, CostModel::free(), |comm| {
            let mut s = RankSolver::new(&cfg, comm.rank()).unwrap();
            let before = s.global_invariants(comm);
            s.run(comm, 8);
            let after = s.global_invariants(comm);
            let timers = comm.take_timers();
            (before, after, timers.messages_sent)
        });
        for (before, after, messages) in out {
            assert!((before.0 - after.0).abs() < 1e-9 * before.0, "mass");
            for a in 0..3 {
                assert!((before.1[a] - after.1[a]).abs() < 1e-9, "momentum {a}");
            }
            // 8 steps = 4 pairs × 2 sides = 8 messages (two-grid at depth 1
            // would send 2 per step); allreduce traffic is not counted in
            // messages_sent point-to-point... if it is, stay ≤ a pair's
            // worth of slack.
            assert!(
                (8..=12).contains(&(messages as usize)),
                "one exchange per two steps expected, got {messages} messages"
            );
        }
    }

    #[test]
    fn aa_resumes_mid_pair_across_run_calls_bitwise() {
        // A run ending on an even step posts no exchange; the next run's
        // odd step must fall back to the just-in-time exchange and produce
        // exactly the same flow as one continuous run — under both ghost
        // schedules and the blocking one.
        use lbm_core::field::StorageMode;
        for strategy in [
            CommStrategy::Blocking,
            CommStrategy::NonBlockingGhost,
            CommStrategy::OverlapGhostCollide,
        ] {
            let cfg = Simulation::builder(LatticeKind::D3Q19, Dim3::new(12, 8, 8))
                .ranks(2)
                .level(OptLevel::Fused)
                .storage(StorageMode::InPlaceAa)
                .strategy(strategy)
                .build_config()
                .unwrap();
            let whole = Universe::run(cfg.ranks, CostModel::free(), |comm| {
                let mut s = RankSolver::new(&cfg, comm.rank()).unwrap();
                s.run(comm, 6);
                s.owned_snapshot()
            });
            let chunked = Universe::run(cfg.ranks, CostModel::free(), |comm| {
                let mut s = RankSolver::new(&cfg, comm.rank()).unwrap();
                for n in [1usize, 2, 1, 2] {
                    s.run(comm, n);
                }
                s.owned_snapshot()
            });
            for (a, b) in whole.iter().zip(&chunked) {
                assert_eq!(a.max_abs_diff_owned(b), 0.0, "{strategy:?}");
            }
        }
    }

    #[test]
    fn aa_parity_flips_momentum_sign_mid_pair() {
        use lbm_core::field::StorageMode;
        let cfg = Simulation::builder(LatticeKind::D3Q19, Dim3::new(12, 8, 8))
            .storage(StorageMode::InPlaceAa)
            .build_config()
            .unwrap();
        let ok = Universe::run(1, CostModel::free(), |comm| {
            let mut s = RankSolver::new(&cfg, comm.rank()).unwrap();
            s.run(comm, 3); // mid-pair: swapped parity
            assert!(s.parity_swapped());
            let (_, mom_odd) = s.local_invariants();
            s.run(comm, 1); // complete the pair
            assert!(!s.parity_swapped());
            let (_, mom_even) = s.local_invariants();
            // Taylor–Green has ~zero net momentum; the parity fix must keep
            // both readings physical (tiny), not sign-flipped garbage.
            mom_odd
                .iter()
                .chain(mom_even.iter())
                .all(|m| m.abs() < 1e-9)
        });
        assert!(ok[0]);
    }

    #[test]
    fn aa_halves_resident_population_memory() {
        use lbm_core::field::StorageMode;
        let base = Simulation::builder(LatticeKind::D3Q39, Dim3::new(32, 10, 10)).ranks(2);
        let bytes = |storage: StorageMode| {
            let cfg = base.clone().storage(storage).build_config().unwrap();
            Universe::run(cfg.ranks, CostModel::free(), |comm| {
                RankSolver::new(&cfg, comm.rank())
                    .unwrap()
                    .resident_population_bytes()
            })
            .into_iter()
            .sum::<u64>()
        };
        let tg = bytes(StorageMode::TwoGrid);
        let aa = bytes(StorageMode::InPlaceAa);
        // Two-grid: 2 × (16 + 2·3) planes per rank; AA: 1 × (16 + 4·3).
        // 28/44 ≈ 0.64 on this box; the asymptotic ratio is ½.
        assert!(
            (aa as f64) < 0.66 * tg as f64,
            "AA resident {aa} vs two-grid {tg}"
        );
    }

    #[test]
    fn counters_track_ghost_overhead() {
        let cfg = Simulation::builder(LatticeKind::D3Q19, Dim3::new(16, 8, 8))
            .ranks(2)
            .ghost_depth(2)
            .level(OptLevel::Cf)
            .strategy(CommStrategy::NonBlockingGhost)
            .build_config()
            .unwrap();
        let counters = Universe::run(cfg.ranks, CostModel::free(), |comm| {
            let mut s = RankSolver::new(&cfg, comm.rank()).unwrap();
            s.run(comm, 4);
            (s.counters.updates, s.counters.ghost_updates)
        });
        for (owned, ghost) in counters {
            // 4 steps × 8 owned planes × 64 cells.
            assert_eq!(owned, 4 * 8 * 64);
            // Depth 2 (k=1): per cycle extra = k·d(d−1) = 2 planes; 2 cycles.
            assert_eq!(ghost, 2 * 2 * 64);
        }
    }
}
